// Quickstart: build the smart-card platform at two abstraction layers,
// run the same program on both, and compare timing and energy — the
// hierarchical-model workflow in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/platform"
)

// The program sums 1..100 through memory (every add round-trips over
// the EC bus to RAM) and prints the result over the UART as a byte.
const program = `
	lui  $s0, 0x000C      # RAM base
	li   $t0, 100         # i
	sw   $zero, 0($s0)    # acc = 0
loop:
	blez $t0, done
	nop
	lw   $t1, 0($s0)
	addu $t1, $t1, $t0
	sw   $t1, 0($s0)
	addiu $t0, $t0, -1
	b    loop
	nop
done:
	lw   $v0, 0($s0)      # 5050
	lui  $s1, 0x000F      # UART
	li   $t2, 1
	sw   $t2, 0xC($s1)    # enable
	andi $t3, $v0, 0xFF
	sw   $t3, 0x0($s1)    # transmit low byte
	break
`

func run(layer platform.Layer) (*platform.Platform, uint64) {
	p := platform.New(platform.Config{Layer: layer, Energy: true, ICache: true})
	words, err := cpu.Assemble(platform.ROMBase, program)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.LoadProgram(words, true); err != nil {
		log.Fatal(err)
	}
	cycles, halted := p.Run(1_000_000)
	if !halted {
		log.Fatalf("%v: did not halt", layer)
	}
	if err := p.CPU.Fault(); err != nil {
		log.Fatalf("%v: %v", layer, err)
	}
	return p, cycles
}

func main() {
	fmt.Println("quickstart: sum(1..100) on the smart-card platform")
	fmt.Println()
	for _, layer := range []platform.Layer{platform.Layer1, platform.Layer2} {
		p, cycles := run(layer)
		fmt.Printf("%-12v  result=%d  cycles=%d  bus=%.1f pJ  peripherals=%.1f pJ\n",
			layer, p.CPU.Reg(2), cycles, p.BusEnergy()*1e12, p.PeripheralEnergy()*1e12)
	}
	fmt.Println()
	fmt.Println("Layer 1 is cycle accurate; layer 2 trades a small timing and")
	fmt.Println("energy error for faster simulation (paper Tables 1-3).")
}
