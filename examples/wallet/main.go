// Wallet session: a complete terminal <-> card transaction over the
// simulated contact interface — APDUs through the UART, balance
// persisted in EEPROM — with the energy bill itemized by the
// hierarchical bus models. This is the end-to-end workload the paper's
// power budget concerns (GSM's 10 mA limit, contact-less RF supply) are
// about.
package main

import (
	"fmt"
	"log"

	"repro/internal/apdu"
	"repro/internal/platform"
)

func run(layer platform.Layer) {
	p := platform.New(platform.Config{Layer: layer, Energy: true})
	if err := p.EEPROM.LoadWords(0, []uint32{1000}); err != nil {
		log.Fatal(err)
	}
	card := apdu.NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase)

	cmds := []apdu.Command{
		{CLA: apdu.ClaWallet, INS: apdu.InsSelect, Data: append([]byte{}, apdu.WalletAID...)},
		{CLA: apdu.ClaWallet, INS: apdu.InsBalance, Le: 2},
		{CLA: apdu.ClaWallet, INS: apdu.InsDebit, Data: []byte{0x00, 0x64}},  // -100
		{CLA: apdu.ClaWallet, INS: apdu.InsCredit, Data: []byte{0x01, 0x2C}}, // +300
		{CLA: apdu.ClaWallet, INS: apdu.InsBalance, Le: 2},
	}
	resps, err := card.Session(p.UART, cmds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("--- %v ---\n", layer)
	for i, r := range resps {
		fmt.Printf("  %-40s -> SW=%04X", cmds[i], r.SW)
		if len(r.Data) == 2 {
			fmt.Printf("  balance=%d", uint16(r.Data[0])<<8|uint16(r.Data[1]))
		}
		fmt.Println()
	}
	fmt.Printf("  session: %d cycles, %d bus transactions, %d EEPROM programs\n",
		p.Kernel.Cycle(), card.Transactions, p.EEPROM.Programs())
	fmt.Printf("  energy: bus %.1f pJ + peripherals %.1f pJ = %.1f pJ\n\n",
		p.BusEnergy()*1e12, p.PeripheralEnergy()*1e12, p.TotalEnergy()*1e12)
}

func main() {
	fmt.Println("wallet: terminal/card APDU session with hierarchical energy estimation")
	fmt.Println()
	for _, layer := range []platform.Layer{platform.Layer1, platform.Layer2} {
		run(layer)
	}
	fmt.Println("The EEPROM's self-timed programming dominates the debit/credit")
	fmt.Println("latency; the balance reads that follow stall until it completes —")
	fmt.Println("timing the layer models reproduce (layer 1 exactly, layer 2 timed).")
}
