// Wallet session: a complete terminal <-> card transaction over the
// simulated contact interface — APDUs through the UART, balance
// persisted in EEPROM — with the energy bill itemized by the
// hierarchical bus models. This is the end-to-end workload the paper's
// power budget concerns (GSM's 10 mA limit, contact-less RF supply) are
// about.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/apdu"
	"repro/internal/journal"
	"repro/internal/platform"
	"repro/internal/tear"
)

func run(layer platform.Layer) {
	p := platform.New(platform.Config{Layer: layer, Energy: true})
	if err := p.EEPROM.LoadWords(0, []uint32{1000}); err != nil {
		log.Fatal(err)
	}
	card := apdu.NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase)

	cmds := []apdu.Command{
		{CLA: apdu.ClaWallet, INS: apdu.InsSelect, Data: append([]byte{}, apdu.WalletAID...)},
		{CLA: apdu.ClaWallet, INS: apdu.InsBalance, Le: 2},
		{CLA: apdu.ClaWallet, INS: apdu.InsDebit, Data: []byte{0x00, 0x64}},  // -100
		{CLA: apdu.ClaWallet, INS: apdu.InsCredit, Data: []byte{0x01, 0x2C}}, // +300
		{CLA: apdu.ClaWallet, INS: apdu.InsBalance, Le: 2},
	}
	resps, err := card.Session(p.UART, cmds)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("--- %v ---\n", layer)
	for i, r := range resps {
		fmt.Printf("  %-40s -> SW=%04X", cmds[i], r.SW)
		if len(r.Data) == 2 {
			fmt.Printf("  balance=%d", uint16(r.Data[0])<<8|uint16(r.Data[1]))
		}
		fmt.Println()
	}
	fmt.Printf("  session: %d cycles, %d bus transactions, %d EEPROM programs\n",
		p.Kernel.Cycle(), card.Transactions, p.EEPROM.Programs())
	fmt.Printf("  energy: bus %.1f pJ + peripherals %.1f pJ = %.1f pJ\n\n",
		p.BusEnergy()*1e12, p.PeripheralEnergy()*1e12, p.TotalEnergy()*1e12)
}

// runTorn replays the paper's card-tear scenario: the same session,
// journaled, with the supply cut mid-way. The committed transactions
// survive the tear; the power-up replay's energy is metered by the same
// bit-exact meter as the session itself.
func runTorn(layer platform.Layer) {
	plan, _ := tear.Named("tear-mid")
	strat, _ := journal.Named("word-eager")
	res, err := tear.RunSession(layer, plan, strat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %v, torn (%s, %s) ---\n", layer, "tear-mid", "word-eager")
	fmt.Printf("  power lost at cycle %d after %d completed command(s)\n",
		res.CutCycle, len(res.Responses))
	fmt.Printf("  replay: %d frame(s) applied, %d torn tail frame(s) discarded\n",
		res.Recovery.Applied, res.Recovery.Discarded)
	addrs := make([]uint64, 0, len(res.Committed))
	for addr := range res.Committed {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		fmt.Printf("  recovered word @%#06x = %#08x\n", addr, res.Committed[addr])
	}
	fmt.Printf("  energy: session %.1f pJ + recovery %.1f pJ = %.1f pJ\n\n",
		res.SessionJ*1e12, res.RecoveryJ*1e12, res.TotalJ*1e12)
}

func main() {
	fmt.Println("wallet: terminal/card APDU session with hierarchical energy estimation")
	fmt.Println()
	for _, layer := range []platform.Layer{platform.Layer1, platform.Layer2} {
		run(layer)
	}
	runTorn(platform.Layer1)
	fmt.Println("The EEPROM's self-timed programming dominates the debit/credit")
	fmt.Println("latency; the balance reads that follow stall until it completes —")
	fmt.Println("timing the layer models reproduce (layer 1 exactly, layer 2 timed).")
	fmt.Println("Torn sessions lose the uncommitted tail but never a committed word:")
	fmt.Println("the redo-log replay at power-up restores them, at a metered energy cost.")
}
