// Power analysis (the paper's second motivation): "If smart cards are
// not protected against these attacks, it is possible to find out crypto
// keys by using such methods."
//
// This example mounts SPA and DPA on the crypto coprocessor's power
// traces and then evaluates the trace-misalignment countermeasure.
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/crypto"
)

func main() {
	key := uint64(0x0F1E2D3C4B5A6978)

	// SPA: one low-noise trace reveals the round structure.
	spaLeak := crypto.DefaultLeak()
	spaLeak.NoiseJ = 1e-12
	traces, _ := analysis.CollectTraces(1, key, spaLeak, 3)
	fmt.Println("SPA: single-trace round structure")
	fmt.Printf("  trace: %d samples = %d rounds x %d cycles\n",
		len(traces[0]), crypto.Rounds, crypto.CyclesPerRound)
	fmt.Printf("  autocorrelation within a round: %.2f, across rounds: %.2f\n\n",
		analysis.Autocorr(traces[0], crypto.CyclesPerRound-1),
		analysis.Autocorr(traces[0], crypto.CyclesPerRound))

	// DPA: 2000 noisy traces recover the round-1 subkey.
	traces, pts := analysis.CollectTraces(2000, key, crypto.DefaultLeak(), 7)
	recovered, results := analysis.RecoverSubkey(traces, pts, []int{0, 1})
	want := crypto.Subkey(key, 0)
	fmt.Printf("DPA: difference-of-means over %d traces\n", len(traces))
	for _, r := range results {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("  recovered round-1 subkey %#08x (actual %#08x) — match: %v\n\n",
		recovered, want, recovered == want)

	// Countermeasure: random trace misalignment.
	blurred := analysis.Misalign(traces, 8, 99)
	rec2, _ := analysis.RecoverSubkey(blurred, pts, []int{0, 1})
	aligned := analysis.DPA(traces, pts, 0, []int{0, 1})
	smeared := analysis.DPA(blurred, pts, 0, []int{0, 1})
	fmt.Println("countermeasure: random misalignment (process interrupts)")
	fmt.Printf("  DPA peak: %.3g -> %.3g J (%.0f%% reduction)\n",
		aligned.Peak, smeared.Peak, 100*(1-smeared.Peak/aligned.Peak))
	fmt.Printf("  recovered subkey under countermeasure: %#08x — match: %v\n",
		rec2, rec2 == want)
	fmt.Println()
	fmt.Println("The per-cycle energy profile the layer-1 model provides (paper §3.3,")
	fmt.Println("EnergyLastCycle) is what lets designers run exactly this evaluation")
	fmt.Println("before silicon.")
}
