// Coprocessor HW/SW interface evaluation: the paper's motivating
// scenario — "algorithms with high computational effort, like
// cryptographic algorithms, are often supported by dedicated
// coprocessors. The chosen HW/SW interface to control these coprocessors
// influences both system performance and power consumption."
//
// This example encrypts a message two ways on the same platform:
//
//  1. software cipher on the MIPS core (pure loads/stores/ALU), and
//  2. the crypto coprocessor driven over its SFR interface,
//
// and compares cycles and energy at the cycle-accurate layer.
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/crypto"
	"repro/internal/platform"
)

// swCipher is a deliberately simple software round loop standing in for
// a bitsliced software implementation: 16 rounds of xor/rotate over two
// words kept in RAM (so the data traffic is visible on the bus).
const swCipher = `
	lui  $s0, 0x000C       # RAM: block at 0($s0), 4($s0); key at 8($s0)
	li   $t0, 0x5678
	sw   $t0, 0($s0)
	sw   $zero, 4($s0)
	li   $t0, 0x1234
	sw   $t0, 8($s0)
	li   $t3, 16           # rounds
round:
	blez $t3, done
	nop
	lw   $t0, 0($s0)       # l
	lw   $t1, 4($s0)       # r
	lw   $t2, 8($s0)       # k
	xor  $t4, $t1, $t2     # r ^ k
	sll  $t5, $t4, 11
	srl  $t6, $t4, 21
	or   $t4, $t5, $t6     # rot11
	xor  $t4, $t4, $t0     # ^ l
	sw   $t1, 0($s0)       # l' = r
	sw   $t4, 4($s0)       # r' = f
	sll  $t2, $t2, 1       # key schedule-ish
	sw   $t2, 8($s0)
	addiu $t3, $t3, -1
	b    round
	nop
done:
	lw   $v0, 4($s0)
	break
`

// hwDriven programs the coprocessor and polls for completion.
const hwDriven = `
	lui  $s4, 0x000F
	ori  $s4, $s4, 0x0500  # crypto SFRs
	li   $t0, 0x1234
	sw   $t0, 0x00($s4)    # KEY0
	sw   $zero, 0x04($s4)  # KEY1
	li   $t0, 0x5678
	sw   $t0, 0x08($s4)    # DATA0
	sw   $zero, 0x0C($s4)  # DATA1
	li   $t0, 1
	sw   $t0, 0x10($s4)    # start
poll:
	lw   $t1, 0x14($s4)
	andi $t1, $t1, 2
	beq  $t1, $zero, poll
	nop
	lw   $v0, 0x18($s4)
	break
`

func run(src string) (*platform.Platform, uint64) {
	p := platform.New(platform.Config{Layer: platform.Layer1, Energy: true, ICache: true})
	words, err := cpu.Assemble(platform.ROMBase, src)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.LoadProgram(words, true); err != nil {
		log.Fatal(err)
	}
	cycles, halted := p.Run(10_000_000)
	if !halted || p.CPU.Fault() != nil {
		log.Fatalf("run failed: halted=%v fault=%v", halted, p.CPU.Fault())
	}
	return p, cycles
}

func main() {
	sw, swCycles := run(swCipher)
	hw, hwCycles := run(hwDriven)

	fmt.Println("coprocessor HW/SW interface evaluation (layer 1, cycle accurate)")
	fmt.Println()
	fmt.Printf("%-22s %10s %14s %14s %14s\n", "variant", "cycles", "bus[pJ]", "engine[pJ]", "total[pJ]")
	fmt.Printf("%-22s %10d %14.1f %14.1f %14.1f\n", "software rounds", swCycles,
		sw.BusEnergy()*1e12, sw.Crypto.TraceEnergy()*1e12, sw.TotalEnergy()*1e12)
	fmt.Printf("%-22s %10d %14.1f %14.1f %14.1f\n", "coprocessor via SFRs", hwCycles,
		hw.BusEnergy()*1e12, hw.Crypto.TraceEnergy()*1e12, hw.TotalEnergy()*1e12)
	fmt.Println()

	// Cross-check the coprocessor against the reference software model.
	want := crypto.Encrypt(0x1234, 0x5678)
	fmt.Printf("coprocessor result $v0 = %#x (reference Encrypt low word: %#x)\n",
		hw.CPU.Reg(2), uint32(want))
	fmt.Println()
	fmt.Printf("speedup from the coprocessor: %.1fx fewer cycles; the polling SFR\n",
		float64(swCycles)/float64(hwCycles))
	fmt.Println("interface spends its energy on the bus — exactly the trade-off the")
	fmt.Println("paper's hierarchical bus models are built to expose early.")
}
