// Java Card case study (paper §4.3, Fig. 7): refine the VM's operand
// stack from a functional model to a hardware slave behind the TLM bus,
// then explore the HW/SW interface — SFR organization and address map —
// for the best time/energy point.
package main

import (
	"fmt"
	"log"

	"repro/internal/explore"
	"repro/internal/javacard"
	"repro/internal/platform"
)

func main() {
	// Step 1: the untimed functional model (Fig. 7a).
	prog, mm, fw := javacard.Wallet(1000, 7, 40)
	vm := javacard.NewVM(prog, &javacard.SoftStack{}, mm, fw)
	if err := vm.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional model: wallet balance = %d after %d bytecodes (no time, no energy)\n\n",
		vm.Static(0), vm.Steps)

	// Step 2: communication refinement (Fig. 7b) — same interpreter,
	// stack behind the cycle-accurate bus via the master adapter.
	char := platform.DefaultCharTable()
	r, err := explore.Run(explore.Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near"},
		javacard.Workload{
			Name:    "wallet",
			Program: func() javacard.Program { return javacard.WalletProgram(1000, 7, 40) },
			Runtime: javacard.WalletRuntime,
		}, char)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined model (halfword SFRs): %d cycles, %.1f pJ bus energy, %d transactions\n\n",
		r.Cycles, r.BusEnergyJ*1e12, r.Transactions)

	// Step 3: the exploration the models exist for.
	results, err := explore.Sweep([]int{1}, javacard.Organizations, explore.AddrMaps,
		javacard.Workloads())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exploration sweep (layer 1):")
	fmt.Print(explore.Table(results))
	fmt.Println("\nPareto frontier:")
	fmt.Print(explore.Table(explore.Pareto(results)))
}
