#!/bin/sh
# bench.sh — the estimation-throughput benchmark table: the Table-3
# model-throughput family plus the BatchCorpus whole-corpus campaign
# family (serial reference vs batched engine across lane widths and
# memory organizations), with a machine-readable BENCH_6.json emitted
# alongside the usual go test output.
#
#   BENCHTIME=20x ./scripts/bench.sh       # per-benchmark time/iterations
#   BENCH_OUT=path.json ./scripts/bench.sh # where the JSON table goes
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
BENCH_OUT="${BENCH_OUT:-BENCH_6.json}"

out=$(go test -run '^$' -bench 'BenchmarkTable3_|BenchmarkBatchCorpus_' \
	-benchtime "$BENCHTIME" -benchmem .)
echo "$out"

echo "$out" | awk -v outfile="$BENCH_OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = "null"; kts = "null"; allocs = "null"
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "kT/s") kts = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	rows[++n] = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"kt_per_s\": %s, \"allocs_per_op\": %s}",
		name, ns, kts, allocs)
}
END {
	print "[" > outfile
	for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "") >> outfile
	print "]" >> outfile
}
'
echo "bench: wrote $BENCH_OUT"
