#!/bin/sh
# bench.sh — the estimation-throughput benchmark table: the Table-3
# model-throughput family, the BatchCorpus whole-corpus campaign
# family (serial reference vs batched engine across lane widths and
# memory organizations) and the multi-fidelity sweep family (analytic
# per-config screening, screened-pruned-confirmed sweep vs exhaustive
# sweep on the enlarged design space), the cluster cached-hit
# serving family (1-node vs 2-node replay throughput) and the
# card-tear session family (torn session + power-up replay per
# journaling strategy), with a machine-readable JSON table emitted
# alongside the usual go test output.
#
#   BENCHTIME=20x ./scripts/bench.sh       # per-benchmark time/iterations
#   BENCH_OUT=path.json ./scripts/bench.sh # where the JSON table goes
#   BENCH_RE='BenchmarkSweep' ./scripts/bench.sh  # benchmark selection
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
BENCH_OUT="${BENCH_OUT:-BENCH_10.json}"
BENCH_RE="${BENCH_RE:-BenchmarkTable3_|BenchmarkBatchCorpus_|BenchmarkScreenConfig|BenchmarkSweepMultiFidelity|BenchmarkSweepExhaustive|BenchmarkClusterCached|BenchmarkTearSession}"

out=$(go test -run '^$' -bench "$BENCH_RE" \
	-benchtime "$BENCHTIME" -benchmem .)
echo "$out"

echo "$out" | awk -v outfile="$BENCH_OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = "null"; kts = "null"; allocs = "null"; ests = "null"
	screened = "null"; pruned = "null"; confirmed = "null"; screenus = "null"
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "kT/s") kts = $i
		if ($(i + 1) == "allocs/op") allocs = $i
		if ($(i + 1) == "ests/s") ests = $i
		if ($(i + 1) == "screened") screened = $i
		if ($(i + 1) == "pruned") pruned = $i
		if ($(i + 1) == "confirmed") confirmed = $i
		if ($(i + 1) == "screen_us/config") screenus = $i
	}
	row = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"kt_per_s\": %s, \"allocs_per_op\": %s",
		name, ns, kts, allocs)
	if (screened != "null")
		row = row sprintf(", \"screened\": %s, \"pruned\": %s, \"confirmed\": %s, \"screen_us_per_config\": %s",
			screened, pruned, confirmed, screenus)
	if (ests != "null")
		row = row sprintf(", \"ests_per_s\": %s", ests)
	if (name == "BenchmarkSweepExhaustive") exhaustive_ns = ns
	if (name == "BenchmarkSweepMultiFidelity") multifi_ns = ns
	rows[++n] = row "}"
}
END {
	print "[" > outfile
	for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "") >> outfile
	print "]" >> outfile
	if (exhaustive_ns != "" && multifi_ns != "" && multifi_ns + 0 > 0)
		printf "bench: multi-fidelity speedup %.1fx over exhaustive\n", exhaustive_ns / multifi_ns
}
'
echo "bench: wrote $BENCH_OUT"
