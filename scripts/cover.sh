#!/bin/sh
# cover.sh — per-package coverage floors for the packages whose tests
# carry the observability, fault-injection and batched-equivalence
# contracts. Prints every package's line, fails if any floored
# package is below its floor.
set -eu
cd "$(dirname "$0")/.."

# pkg:floor pairs, floor in whole percent.
FLOORS="
repro/internal/metrics:70
repro/internal/fault:70
repro/internal/checker:70
repro/internal/batch:70
repro/internal/tlm3:70
repro/internal/calib:70
repro/internal/cluster:70
repro/internal/arb:70
repro/internal/dma:70
repro/internal/apdu:70
repro/internal/journal:70
repro/internal/tear:70
"

out=$(go test -cover ./internal/metrics/ ./internal/fault/ ./internal/checker/ ./internal/batch/ ./internal/tlm3/ ./internal/calib/ ./internal/cluster/ ./internal/arb/ ./internal/dma/ ./internal/apdu/ ./internal/journal/ ./internal/tear/)
echo "$out"

fail=0
for spec in $FLOORS; do
	pkg=${spec%:*}
	floor=${spec#*:}
	line=$(echo "$out" | grep "	$pkg	" || true)
	if [ -z "$line" ]; then
		echo "cover: no result for $pkg" >&2
		fail=1
		continue
	fi
	pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "cover: no coverage figure for $pkg" >&2
		fail=1
		continue
	fi
	# Integer compare on the whole-percent part is enough for a floor.
	whole=${pct%%.*}
	if [ "$whole" -lt "$floor" ]; then
		echo "cover: $pkg at $pct% is below the $floor% floor" >&2
		fail=1
	fi
done
[ "$fail" -eq 0 ] && echo "cover: OK"
exit "$fail"
