#!/bin/sh
# verify.sh — the full pre-merge gate:
#   tier-1 (build + all tests), vet, the race gate for the concurrent
#   packages, coverage floors, a short fuzz pass over every fuzz
#   target, and a 1-iteration benchmark smoke so every benchmark keeps
#   compiling and running.
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: build + tests"
go build ./...
go test ./...

echo "== vet"
go vet ./...

echo "== race gate (explore, sim, fault, serve, batch)"
go test -race ./internal/explore/... ./internal/sim/... ./internal/fault/... ./internal/serve/... ./internal/batch/...

echo "== coverage floors"
./scripts/cover.sh

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzPlanParse$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzWithoutReadErrors$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzCheckerRules$' -fuzztime 10s ./internal/checker/

echo "== fault-plan smoke (ecbench)"
go run ./cmd/ecbench -fault grind > /dev/null

echo "== benchmark smoke (1 iteration each)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "== bench table smoke (bench.sh, 1 iteration)"
BENCHTIME=1x BENCH_OUT=/tmp/bench6_smoke.json ./scripts/bench.sh > /dev/null

echo "verify: OK"
