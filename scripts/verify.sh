#!/bin/sh
# verify.sh — the full pre-merge gate:
#   tier-1 (build + all tests), vet, the race gate for the concurrent
#   packages, coverage floors, a short fuzz pass over every fuzz
#   target, and a 1-iteration benchmark smoke so every benchmark keeps
#   compiling and running.
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: build + tests"
go build ./...
go test ./...

echo "== vet"
go vet ./...

echo "== race gate (explore, sim, fault, serve, batch, tlm3, calib, cluster, arb, dma, crypto, tear, journal)"
go test -race ./internal/explore/... ./internal/sim/... ./internal/fault/... ./internal/serve/... ./internal/batch/... ./internal/tlm3/... ./internal/calib/... ./internal/cluster/... ./internal/arb/... ./internal/dma/... ./internal/crypto/... ./internal/tear/... ./internal/journal/...

echo "== coverage floors"
./scripts/cover.sh

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzPlanParse$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzWithoutReadErrors$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzCheckerRules$' -fuzztime 10s ./internal/checker/
go test -run '^$' -fuzz '^FuzzArbiterGrant$' -fuzztime 10s ./internal/arb/

echo "== fault-plan smoke (ecbench)"
go run ./cmd/ecbench -fault grind > /dev/null

echo "== card-tear smoke (seeded tear -> replay; a lost committed word fails the run)"
# tear.RunSession verifies every committed word against the recovered
# device, so a torn grid cell completing at all is the recovery check.
tearout=$(go run ./cmd/ecbench -tear none,tear-mid -journal word-eager,page-lazy)
echo "$tearout" | head -3
echo "$tearout" | grep -q " true " || {
	echo "verify: tear grid produced no torn cell" >&2; exit 1; }
go run ./cmd/jcexplore -layer 1 -workload wallet -tear tear-mid -journal word-eager \
	| grep -q "tear-mid/word-eager" || {
	echo "verify: jcexplore tear axis rows missing" >&2; exit 1; }

echo "== multi-fidelity smoke (jcexplore -fidelity confirm)"
mf=$(go run ./cmd/jcexplore -fidelity confirm -workload arith-loop | head -1)
echo "$mf"
screened=$(echo "$mf" | sed -n 's/.*screened \([0-9]*\).*/\1/p')
confirmed=$(echo "$mf" | sed -n 's/.*confirmed \([0-9]*\).*/\1/p')
if [ -z "$screened" ] || [ -z "$confirmed" ] || \
   [ "$confirmed" -le 0 ] || [ "$screened" -le "$confirmed" ]; then
	echo "verify: multi-fidelity smoke wants screened > confirmed > 0, got screened=$screened confirmed=$confirmed" >&2
	exit 1
fi

echo "== arbitration smoke (jcexplore -arb, both policies)"
arbout=$(go run ./cmd/jcexplore -arb fixed,rr -workload stack-churn -layer 1)
echo "$arbout" | head -4
for pol in fixed rr; do
	echo "$arbout" | grep -q "/$pol\b" || {
		echo "verify: arbitration smoke missing $pol rows" >&2; exit 1; }
done

echo "== cluster smoke (2 nodes, SIGKILL one mid-sweep)"
tmpd=$(mktemp -d)
A_PID=""; B_PID=""; C_PID=""
trap 'kill -9 $A_PID $B_PID $C_PID 2>/dev/null || true; rm -rf "$tmpd"' EXIT
go build -o "$tmpd/ecserved" ./cmd/ecserved
SWEEP='{"layers":[1],"workloads":["arith-loop","stack-churn"]}'

scrape_url() { # scrape_url <logfile>
	for _ in $(seq 1 100); do
		url=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$1")
		[ -n "$url" ] && { echo "$url"; return 0; }
		sleep 0.1
	done
	echo "verify: no listen line in $1" >&2
	return 1
}

# Single-node reference bytes.
"$tmpd/ecserved" -addr 127.0.0.1:0 -workers 2 > "$tmpd/c.log" 2>&1 &
C_PID=$!
C_URL=$(scrape_url "$tmpd/c.log")
curl -sS -X POST -d "$SWEEP" "$C_URL/v1/sweep" -o "$tmpd/ref.ndjson"
kill "$C_PID" 2>/dev/null || true

# Two-node cluster: B plain, A peering with B (A coordinates; A only
# needs to reach B for work stealing).
"$tmpd/ecserved" -addr 127.0.0.1:0 -workers 2 > "$tmpd/b.log" 2>&1 &
B_PID=$!
B_URL=$(scrape_url "$tmpd/b.log")
"$tmpd/ecserved" -addr 127.0.0.1:0 -workers 2 -peers "$B_URL" > "$tmpd/a.log" 2>&1 &
A_PID=$!
A_URL=$(scrape_url "$tmpd/a.log")

# Sweep through A; SIGKILL B mid-flight. The work-stealing loop must
# requeue whatever B held and still assemble the identical bytes.
curl -sS -X POST -d "$SWEEP" "$A_URL/v1/sweep" -o "$tmpd/got.ndjson" &
CURL_PID=$!
sleep 0.3
kill -9 "$B_PID" 2>/dev/null || true
wait "$CURL_PID"
if ! cmp -s "$tmpd/ref.ndjson" "$tmpd/got.ndjson"; then
	echo "verify: cluster sweep bytes differ from single-node reference" >&2
	diff "$tmpd/ref.ndjson" "$tmpd/got.ndjson" | head -5 >&2
	exit 1
fi
# A must keep serving (and now replay the assembled body from cache).
curl -sS -X POST -d "$SWEEP" "$A_URL/v1/sweep" -o "$tmpd/again.ndjson"
cmp -s "$tmpd/ref.ndjson" "$tmpd/again.ndjson" || {
	echo "verify: cluster replay after peer death differs" >&2; exit 1; }
kill "$A_PID" 2>/dev/null || true
echo "cluster smoke: OK (bytes identical, survivor kept serving)"

echo "== benchmark smoke (1 iteration each)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "== bench table smoke (bench.sh, 1 iteration)"
BENCHTIME=1x BENCH_OUT=/tmp/bench_smoke.json ./scripts/bench.sh > /dev/null

echo "verify: OK"
