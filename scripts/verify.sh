#!/bin/sh
# verify.sh — the full pre-merge gate:
#   tier-1 (build + all tests), vet, the race gate for the concurrent
#   packages, coverage floors, a short fuzz pass over every fuzz
#   target, and a 1-iteration benchmark smoke so every benchmark keeps
#   compiling and running.
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: build + tests"
go build ./...
go test ./...

echo "== vet"
go vet ./...

echo "== race gate (explore, sim, fault, serve, batch, tlm3, calib)"
go test -race ./internal/explore/... ./internal/sim/... ./internal/fault/... ./internal/serve/... ./internal/batch/... ./internal/tlm3/... ./internal/calib/...

echo "== coverage floors"
./scripts/cover.sh

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzPlanParse$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzWithoutReadErrors$' -fuzztime 10s ./internal/fault/
go test -run '^$' -fuzz '^FuzzCheckerRules$' -fuzztime 10s ./internal/checker/

echo "== fault-plan smoke (ecbench)"
go run ./cmd/ecbench -fault grind > /dev/null

echo "== multi-fidelity smoke (jcexplore -fidelity confirm)"
mf=$(go run ./cmd/jcexplore -fidelity confirm -workload arith-loop | head -1)
echo "$mf"
screened=$(echo "$mf" | sed -n 's/.*screened \([0-9]*\).*/\1/p')
confirmed=$(echo "$mf" | sed -n 's/.*confirmed \([0-9]*\).*/\1/p')
if [ -z "$screened" ] || [ -z "$confirmed" ] || \
   [ "$confirmed" -le 0 ] || [ "$screened" -le "$confirmed" ]; then
	echo "verify: multi-fidelity smoke wants screened > confirmed > 0, got screened=$screened confirmed=$confirmed" >&2
	exit 1
fi

echo "== benchmark smoke (1 iteration each)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "== bench table smoke (bench.sh, 1 iteration)"
BENCHTIME=1x BENCH_OUT=/tmp/bench_smoke.json ./scripts/bench.sh > /dev/null

echo "verify: OK"
