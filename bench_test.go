// Package repro's root benchmarks regenerate the paper's
// simulation-performance evaluation under `go test -bench`. One
// benchmark family exists per evaluation artifact:
//
//   - BenchmarkTable3_*: simulation throughput (transactions/s) of the
//     transaction-level models with and without energy estimation, plus
//     the layer-0 reference — the paper's Table 3. The per-op metric
//     kT/s is reported explicitly.
//   - BenchmarkTable1_*/BenchmarkTable2_*: the simulations behind the
//     timing- and energy-accuracy tables (the accuracy itself is
//     asserted in tests; these measure the cost of obtaining it).
//   - BenchmarkFigure6_Sampling: the layer-2 sampling scenario.
//   - BenchmarkCaseStudy_*: one §4.3 exploration point per iteration.
//   - BenchmarkAblation_*: cost of the design choices DESIGN.md calls
//     out (per-cycle vs per-phase power model, instruction cache).
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ecbus"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/javacard"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tear"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
	"repro/internal/tlm3"
)

var lay = core.Layout{Fast: 0, Slow: 0x10000}

func newMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

// benchLayer drives n transactions of the Table-3 workload through one
// bus configuration per iteration and reports kT/s.
func benchLayer(b *testing.B, layer int, energy bool) {
	b.Helper()
	char := platform.DefaultCharTable()
	const n = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := core.PerfCorpus(lay, n)
		k := sim.New(0)
		var bus core.Initiator
		switch layer {
		case 0:
			rb := rtlbus.New(k, newMap())
			if energy {
				est := gatepower.NewEstimator(gatepower.DefaultConfig())
				k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(rb.Wires()) }, est.ObserveIdle)
			}
			bus = rb
		case 1:
			tb := tlm1.New(k, newMap())
			if energy {
				tb.AttachPower(tlm1.NewPowerModel(char))
			}
			bus = tb
		default:
			tb := tlm2.New(k, newMap())
			if energy {
				tb.AttachPower(tlm2.NewPowerModel(char))
			}
			bus = tb
		}
		b.StartTimer()
		m, _ := core.RunScript(k, bus, items, 10_000_000)
		if !m.Done() {
			b.Fatal("run incomplete")
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e3, "kT/s")
}

func BenchmarkTable3_TL1_WithEnergy(b *testing.B)    { benchLayer(b, 1, true) }
func BenchmarkTable3_TL1_WithoutEnergy(b *testing.B) { benchLayer(b, 1, false) }
func BenchmarkTable3_TL2_WithEnergy(b *testing.B)    { benchLayer(b, 2, true) }
func BenchmarkTable3_TL2_WithoutEnergy(b *testing.B) { benchLayer(b, 2, false) }
func BenchmarkTable3_L0_WithEnergy(b *testing.B)     { benchLayer(b, 0, true) }
func BenchmarkTable3_L0_WithoutEnergy(b *testing.B)  { benchLayer(b, 0, false) }

// Table-1 simulations: verification corpus at each layer (timing only).
func benchTable1(b *testing.B, layer int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := core.VerificationCorpus(lay)
		k := sim.New(0)
		var bus core.Initiator
		switch layer {
		case 0:
			bus = rtlbus.New(k, newMap())
		case 1:
			bus = tlm1.New(k, newMap())
		default:
			bus = tlm2.New(k, newMap())
		}
		b.StartTimer()
		m, _ := core.RunScript(k, bus, items, 10_000_000)
		if !m.Done() {
			b.Fatal("run incomplete")
		}
	}
}

func BenchmarkTable1_Layer0(b *testing.B) { benchTable1(b, 0) }
func BenchmarkTable1_Layer1(b *testing.B) { benchTable1(b, 1) }
func BenchmarkTable1_Layer2(b *testing.B) { benchTable1(b, 2) }

// Table-2 simulations: the same corpus under each energy estimator.
func BenchmarkTable2_GateLevelEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := core.VerificationCorpus(lay)
		k := sim.New(0)
		rb := rtlbus.New(k, newMap())
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(rb.Wires()) }, est.ObserveIdle)
		b.StartTimer()
		m, _ := core.RunScript(k, rb, items, 10_000_000)
		if !m.Done() || est.TotalEnergy() <= 0 {
			b.Fatal("estimation failed")
		}
	}
}

func BenchmarkTable2_TL1Estimation(b *testing.B) {
	char := platform.DefaultCharTable()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := core.VerificationCorpus(lay)
		k := sim.New(0)
		tb := tlm1.New(k, newMap()).AttachPower(tlm1.NewPowerModel(char))
		b.StartTimer()
		m, _ := core.RunScript(k, tb, items, 10_000_000)
		if !m.Done() || tb.Power().TotalEnergy() <= 0 {
			b.Fatal("estimation failed")
		}
	}
}

func BenchmarkTable2_TL2Estimation(b *testing.B) {
	char := platform.DefaultCharTable()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := core.VerificationCorpus(lay)
		k := sim.New(0)
		tb := tlm2.New(k, newMap()).AttachPower(tlm2.NewPowerModel(char))
		b.StartTimer()
		m, _ := core.RunScript(k, tb, items, 10_000_000)
		if !m.Done() || tb.Power().TotalEnergy() <= 0 {
			b.Fatal("estimation failed")
		}
	}
}

// Figure-6 scenario: three requests with mid-stream energy sampling.
func BenchmarkFigure6_Sampling(b *testing.B) {
	char := platform.DefaultCharTable()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := sim.New(0)
		bus := tlm2.New(k, newMap()).AttachPower(tlm2.NewPowerModel(char))
		tr1, _ := ecbus.NewSingle(1, ecbus.Read, lay.Slow, ecbus.W32, 0)
		tr2, _ := ecbus.NewSingle(2, ecbus.Write, lay.Slow+4, ecbus.W32, 1)
		tr3, _ := ecbus.NewSingle(3, ecbus.Read, lay.Slow+8, ecbus.W32, 0)
		items := []core.Item{{Tr: tr1}, {Tr: tr2}, {Tr: tr3}}
		m := core.NewScriptMaster(k, bus, items)
		b.StartTimer()
		var sampled float64
		for !m.Done() {
			k.Step()
			sampled += bus.Power().EnergySince()
		}
		if sampled <= 0 {
			b.Fatal("no energy sampled")
		}
	}
}

// Case-study exploration: one configuration evaluation per iteration.
func benchCaseStudy(b *testing.B, layer int, org javacard.Organization) {
	b.Helper()
	char := platform.DefaultCharTable()
	w := javacard.Workload{
		Name:    "stack-churn",
		Program: func() javacard.Program { return javacard.StackChurn(8, 10) },
		Runtime: javacard.DefaultRuntime,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := explore.Run(explore.Config{Layer: layer, Org: org, AddrMap: "near"}, w, char)
		if err != nil || r.BusEnergyJ <= 0 {
			b.Fatalf("exploration failed: %v", err)
		}
	}
}

func BenchmarkCaseStudy_L1_Halfword(b *testing.B) { benchCaseStudy(b, 1, javacard.OrgHalf) }
func BenchmarkCaseStudy_L1_Burst(b *testing.B)    { benchCaseStudy(b, 1, javacard.OrgBurst) }
func BenchmarkCaseStudy_L2_Halfword(b *testing.B) { benchCaseStudy(b, 2, javacard.OrgHalf) }

// Full §4.3 sweep (2 layers × 4 organizations × 2 maps × 3 workloads =
// 48 configurations) per iteration, serial vs parallel — the
// exploration-throughput metric the TL models exist for. The table
// output is asserted identical across worker counts, so the speedup is
// free of result drift.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	platform.DefaultCharTable() // hoist the one-time characterization
	wls := javacard.Workloads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := explore.SweepWith(explore.SweepOpts{Workers: workers},
			[]int{1, 2}, javacard.Organizations, explore.AddrMaps, wls)
		if err != nil || len(results) != 2*len(javacard.Organizations)*len(explore.AddrMaps)*len(wls) {
			b.Fatalf("sweep failed: %d results, %v", len(results), err)
		}
	}
	b.ReportMetric(float64(2*len(javacard.Organizations)*len(explore.AddrMaps)*len(wls))*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}

func BenchmarkSweep_Serial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweep_Parallel(b *testing.B) { benchSweep(b, 0) }

// Ablation: the layer-1 power model's per-cycle transition counting vs
// the layer-2 per-phase booking — the cost difference behind Table 3's
// with-energy factors.
func BenchmarkAblation_PerCyclePowerModel(b *testing.B) {
	char := platform.DefaultCharTable()
	p := tlm1.NewPowerModel(char)
	k := sim.New(0)
	bus := tlm1.New(k, newMap()).AttachPower(p)
	items := core.PerfCorpus(lay, 512)
	m := core.NewScriptMaster(k, bus, items)
	k.RunUntil(1_000_000, m.Done)
	cycles := k.Cycle()
	b.ResetTimer()
	// Replay the pure power-model cost: simulate the same cycle count of
	// begin/calc pairs.
	for i := 0; i < b.N; i++ {
		for c := uint64(0); c < cycles; c++ {
			_ = p.EnergyLastCycle()
		}
	}
}

// Ablation: instruction cache on/off on a real program (bus traffic and
// runtime change; architectural results must not).
func benchICache(b *testing.B, icache bool) {
	b.Helper()
	prog := cpu.MustAssemble(platform.ROMBase, `
		li   $t0, 500
	loop:
		addiu $t0, $t0, -1
		bgtz $t0, loop
		nop
		break
	`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := platform.New(platform.Config{Layer: platform.Layer1})
		if err := p.LoadProgram(prog, icache); err != nil {
			b.Fatal(err)
		}
		if _, halted := p.Run(1_000_000); !halted {
			b.Fatal("did not halt")
		}
	}
}

func BenchmarkAblation_ICacheOn(b *testing.B)  { benchICache(b, true) }
func BenchmarkAblation_ICacheOff(b *testing.B) { benchICache(b, false) }

// Ablation: bus-invert coding of the write-data wires (related work [5])
// — encoding throughput and the savings metric per iteration.
func BenchmarkAblation_BusInvertCoding(b *testing.B) {
	r := logic.NewLFSR(17)
	seq := make([]uint64, 4096)
	for i := range seq {
		seq[i] = r.NextN(32)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := coding.Evaluate(seq, &coding.BusInvert{Bits: 32}, 32, 1e-13)
		if res.EncT >= res.RawT {
			b.Fatal("no savings on random data")
		}
	}
	b.SetBytes(int64(len(seq) * 8))
}

// Message-layer throughput: untimed layer-3 transfers per second, the
// speed ceiling of the hierarchy.
func BenchmarkLayer3MessageBus(b *testing.B) {
	m := ecbus.MustMap(mem.NewRAM("ram", 0, 0x4000, 0, 0))
	bus := tlm3.New(m)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bus.Write(uint64(i%32)*256, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

// Idle-cycle fast-forward: a sparse workload (transactions separated by
// long quiet gaps) where the kernel jumps between events instead of
// executing every cycle. The skipped-fraction metric shows how much of
// the simulated time was fast-forwarded.
func BenchmarkKernel_IdleSkip(b *testing.B) {
	char := platform.DefaultCharTable()
	const n, gap = 512, 200
	var skipped, total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var items []core.Item
		for j := 0; j < n; j++ {
			tr, err := ecbus.NewSingle(uint64(j+1), ecbus.Read, lay.Slow+uint64(4*(j%16)), ecbus.W32, 0)
			if err != nil {
				b.Fatal(err)
			}
			items = append(items, core.Item{Tr: tr, NotBefore: uint64(j) * gap})
		}
		k := sim.New(0)
		bus := tlm1.New(k, newMap()).AttachPower(tlm1.NewPowerModel(char))
		b.StartTimer()
		m, cycles := core.RunScript(k, bus, items, 10_000_000)
		if !m.Done() {
			b.Fatal("run incomplete")
		}
		skipped += k.SkippedCycles()
		total += cycles
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e3, "kT/s")
	b.ReportMetric(100*float64(skipped)/float64(total), "%skipped")
}

// Gate-level estimator observation cost at the two extremes: Sparse is
// the all-idle cycle (dirty mask empty, early-out), Dense has every
// interface signal toggling (full dirty iteration).
func BenchmarkObserve_Sparse(b *testing.B) {
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	var w ecbus.Bundle
	est.Observe(&w) // settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Observe(&w)
	}
}

func BenchmarkObserve_Dense(b *testing.B) {
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	var w ecbus.Bundle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flip := ^uint64(0) * uint64(i&1)
		for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
			w.Set(id, flip)
		}
		est.Observe(&w)
	}
}

// Ring-queue churn: back-to-back bursts rotating through the layer-1
// request, read and write queues with maximum occupancy turnover.
func BenchmarkTL1_QueueChurn(b *testing.B) {
	k := sim.New(0)
	bus := tlm1.New(k, newMap())
	const inFlight = 8
	trs := make([]*ecbus.Transaction, inFlight)
	for i := range trs {
		kind := ecbus.Read
		if i%2 == 1 {
			kind = ecbus.Write
		}
		tr, err := ecbus.NewBurst(uint64(i+1), kind, lay.Fast+uint64(16*i), make([]uint32, ecbus.BurstLen))
		if err != nil {
			b.Fatal(err)
		}
		trs[i] = tr
	}
	id := uint64(inFlight)
	completed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trs {
			if st := bus.Access(tr); st.Done() {
				completed++
				id++
				kind := ecbus.Read
				if id%2 == 1 {
					kind = ecbus.Write
				}
				if err := tr.ResetBurst(id, kind, lay.Fast+uint64(16*(id%8))); err != nil {
					b.Fatal(err)
				}
			}
		}
		k.Step()
	}
	if completed == 0 && b.N >= 100 {
		b.Fatal("no transactions completed")
	}
	b.ReportMetric(float64(completed)/float64(b.N), "tx/cycle")
}

// TestBenchHarnessSmoke keeps `go test ./...` covering this file's
// helpers without requiring -bench.
func TestBenchHarnessSmoke(t *testing.T) {
	rows, _ := bench.Table1()
	if len(rows) != 3 {
		t.Fatalf("table 1 rows = %d", len(rows))
	}
}

// benchBatchCorpus measures whole-corpus estimation — the campaign of
// BENCH_6 (64 runs x 256 transactions, seed 42) — through either the
// serial reference path (width 0) or the batched engine at the given
// lane width, against a memory organization. The corpus is cloned
// outside the timed window (estimation consumes its stimuli), so the
// figures compare estimation alone.
func benchBatchCorpus(b *testing.B, layer, width int, org bench.Organization) {
	const runs, n, seed = 64, 256, 42
	corpus := bench.CampaignRuns(seed, runs, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl := bench.CloneRuns(corpus)
		b.StartTimer()
		var err error
		if width == 0 {
			_, err = bench.CampaignEstimateSerialRunsOrg(layer, cl, fault.Plan{}, org)
		} else {
			_, err = bench.CampaignEstimateRunsOrg(layer, cl, fault.Plan{}, width, org)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runs*n)*float64(b.N)/b.Elapsed().Seconds()/1e3, "kT/s")
}

func BenchmarkBatchCorpus_SRAM_Serial(b *testing.B) { benchBatchCorpus(b, 0, 0, bench.OrgSRAM) }
func BenchmarkBatchCorpus_SRAM_W1(b *testing.B)     { benchBatchCorpus(b, 0, 1, bench.OrgSRAM) }
func BenchmarkBatchCorpus_SRAM_W8(b *testing.B)     { benchBatchCorpus(b, 0, 8, bench.OrgSRAM) }
func BenchmarkBatchCorpus_SRAM_W16(b *testing.B)    { benchBatchCorpus(b, 0, 16, bench.OrgSRAM) }
func BenchmarkBatchCorpus_SRAM_W64(b *testing.B)    { benchBatchCorpus(b, 0, 64, bench.OrgSRAM) }

func BenchmarkBatchCorpus_NVM_Serial(b *testing.B) { benchBatchCorpus(b, 0, 0, bench.OrgNVM) }
func BenchmarkBatchCorpus_NVM_W1(b *testing.B)     { benchBatchCorpus(b, 0, 1, bench.OrgNVM) }
func BenchmarkBatchCorpus_NVM_W8(b *testing.B)     { benchBatchCorpus(b, 0, 8, bench.OrgNVM) }
func BenchmarkBatchCorpus_NVM_W16(b *testing.B)    { benchBatchCorpus(b, 0, 16, bench.OrgNVM) }
func BenchmarkBatchCorpus_NVM_W64(b *testing.B)    { benchBatchCorpus(b, 0, 64, bench.OrgNVM) }

func BenchmarkBatchCorpus_NVM_L1_Serial(b *testing.B) { benchBatchCorpus(b, 1, 0, bench.OrgNVM) }
func BenchmarkBatchCorpus_NVM_L1_W64(b *testing.B)    { benchBatchCorpus(b, 1, 64, bench.OrgNVM) }

// Multi-fidelity benchmarks (BENCH_7): the enlarged design space the
// analytic layer-3 fast path exists for — 3 layers × 4 organizations ×
// 8 address maps × 4 fault plans × 3 workloads = 1152 configurations.
// The calibrated model is memoized process-wide and fitted outside the
// timer; iterations after the first also reuse the process-wide
// feature cache, so the steady-state (warm) figures are what the pair
// of sweep benchmarks compares. The headline speedup in EXPERIMENTS.md
// is BenchmarkSweepExhaustive time/op over BenchmarkSweepMultiFidelity
// time/op on this space.

func enlargedSpaceSize() int {
	return len(explore.SweepLayers) * len(javacard.Organizations) *
		len(explore.AllAddrMaps) * len(fault.Names) * len(javacard.Workloads())
}

func benchPrewarmModel(b *testing.B) {
	b.Helper()
	platform.DefaultCharTable()
	if _, err := explore.DefaultModel(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepExhaustive evaluates every configuration of the
// enlarged space at its requested layer — the cost the multi-fidelity
// sweep is measured against.
func BenchmarkSweepExhaustive(b *testing.B) {
	benchPrewarmModel(b)
	wls := javacard.Workloads()
	want := enlargedSpaceSize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := explore.SweepWith(explore.SweepOpts{Faults: fault.Names},
			explore.SweepLayers, javacard.Organizations, explore.AllAddrMaps, wls)
		if err != nil || len(results) != want {
			b.Fatalf("exhaustive sweep: %d results (want %d), %v", len(results), want, err)
		}
	}
	b.ReportMetric(float64(want)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}

// BenchmarkSweepMultiFidelity screens the same space analytically,
// prunes by calibrated ε-domination and confirms only the survivors.
// The screened/pruned/confirmed counts are reported as metrics so the
// pruning is visible in BENCH_7.json, never silent.
func BenchmarkSweepMultiFidelity(b *testing.B) {
	benchPrewarmModel(b)
	wls := javacard.Workloads()
	want := enlargedSpaceSize()
	var last explore.MultiFidelityResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mf, err := explore.SweepMultiFidelity(
			explore.MultiFidelityOpts{SweepOpts: explore.SweepOpts{Faults: fault.Names}},
			explore.SweepLayers, javacard.Organizations, explore.AllAddrMaps, wls)
		if err != nil || mf.ScreenedConfigs != want || mf.ConfirmedConfigs == 0 {
			b.Fatalf("multi-fidelity sweep: screened %d (want %d) confirmed %d, %v",
				mf.ScreenedConfigs, want, mf.ConfirmedConfigs, err)
		}
		last = mf
	}
	b.StopTimer()
	b.ReportMetric(float64(last.ScreenedConfigs), "screened")
	b.ReportMetric(float64(last.PrunedConfigs), "pruned")
	b.ReportMetric(float64(last.ConfirmedConfigs), "confirmed")
	b.ReportMetric(float64(last.ScreenTime.Microseconds())/float64(last.ScreenedConfigs), "screen_us/config")
	b.ReportMetric(float64(want)*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
}

// BenchmarkScreenConfig is the per-configuration analytic estimate in
// steady state (model fitted, features cached): one layer-3 Run per
// iteration, cycling through organizations and maps. The acceptance
// bar is ≤100µs per configuration.
func BenchmarkScreenConfig(b *testing.B) {
	benchPrewarmModel(b)
	char := platform.DefaultCharTable()
	wl := javacard.Workloads()[0]
	var cfgs []explore.Config
	for _, org := range javacard.Organizations {
		for _, m := range explore.AllAddrMaps {
			cfgs = append(cfgs, explore.Config{Layer: 3, Org: org, AddrMap: m})
		}
	}
	for _, cfg := range cfgs { // warm the feature cache
		if _, err := explore.Run(cfg, wl, char); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.Run(cfgs[i%len(cfgs)], wl, char); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTearSession is one complete tear-and-recover cycle per
// iteration: the multi-applet APDU session torn mid-flight, the EEPROM
// corrupted in the programming window, and the power-up replay
// restoring the committed prefix (verified every iteration).
func benchTearSession(b *testing.B, strategy string) {
	b.Helper()
	plan, _ := tear.Named("tear-mid")
	strat, _ := journal.Named(strategy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tear.RunSession(platform.Layer1, plan, strat)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Torn {
			b.Fatal("tear-mid did not fire")
		}
	}
}

func BenchmarkTearSession_WordEager(b *testing.B) { benchTearSession(b, "word-eager") }
func BenchmarkTearSession_PageLazy(b *testing.B)  { benchTearSession(b, "page-lazy") }
