// Package checker is an assertion-based protocol monitor for the EC
// interface: it watches the layer-0 wire bundle cycle by cycle and
// flags violations of the protocol invariants the models must uphold.
// It is the verification IP a bus-model methodology ships with — the
// executable form of the interface specification rules listed in
// package rtlbus.
//
// Checked invariants:
//
//	A1  ARdy only while AValid (no acceptance without a request).
//	A2  Address and controls stable from AValid assertion to ARdy
//	    (no mid-phase address changes).
//	A3  AValid never deasserts before ARdy (requests are not dropped).
//	D1  RdVal and RBErr never asserted together.
//	D2  WDRdy and WBErr never asserted together.
//	D3  Data beats only while a transaction of that direction is
//	    outstanding; a burst never delivers more beats than its length
//	    (an errored burst must terminate at the failing beat).
//	E1  Error strobes only during an active data phase of the matching
//	    direction, or on the acceptance cycle of the failing address
//	    phase; an error with no matching outstanding request is flagged.
//	O1  Wire-visible data-phase occupancy per category never exceeds
//	    ecbus.MaxOutstanding.
//	B1  BFirst only with Burst during address phases.
//
// The checker reconstructs outstanding transactions from the wires
// alone: every ARdy enqueues the accepted request (direction, category
// and burst length read off the address-phase wires) into a per-
// direction FIFO, the EC data units serve each direction strictly in
// order, and beats/errors retire FIFO heads. One wire-level ambiguity
// is unavoidable: a same-cycle coincidence of an address-phase abort
// and a data-phase error on the same direction cannot be split apart;
// the checker attributes the pulse to the oldest outstanding
// transaction (and otherwise to the aborted acceptance).
package checker

import (
	"fmt"

	"repro/internal/ecbus"
)

// Violation is one detected protocol violation.
type Violation struct {
	Cycle uint64
	Rule  string
	Info  string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Rule, v.Info)
}

// pendingTx is a transaction the checker reconstructed from its
// address-phase wires, awaiting its data beats.
type pendingTx struct {
	cat   ecbus.Category
	words int // expected beats
	beats int // delivered so far
}

// Checker watches the EC wire bundle.
type Checker struct {
	prev  ecbus.Bundle
	first bool
	cycle uint64

	inAddrPhase bool
	heldA       uint64
	heldCtl     [4]uint64 // Instr, Write, Burst, BE

	// Wire-reconstructed outstanding transactions, FIFO per direction.
	readTx  []pendingTx
	writeTx []pendingTx

	occupancy [ecbus.NumCategories]int

	violations []Violation
}

// New returns a checker; feed it Observe every Post phase.
func New() *Checker { return &Checker{first: true} }

// Violations returns all detected violations.
func (c *Checker) Violations() []Violation { return c.violations }

// Clean reports whether no violation was seen.
func (c *Checker) Clean() bool { return len(c.violations) == 0 }

func (c *Checker) flag(rule, format string, a ...any) {
	c.violations = append(c.violations, Violation{
		Cycle: c.cycle, Rule: rule, Info: fmt.Sprintf(format, a...),
	})
}

// Observe checks one cycle of wire state.
func (c *Checker) Observe(b *ecbus.Bundle) {
	defer func() {
		c.prev = *b
		c.first = false
		c.cycle++
	}()

	avalid := b.Bool(ecbus.SigAValid)
	ardy := b.Bool(ecbus.SigARdy)

	// A1: acceptance without request.
	if ardy && !avalid {
		c.flag("A1", "ARdy asserted without AValid")
	}

	// A2/A3: phase stability and no dropped requests.
	ctl := [4]uint64{
		b.Get(ecbus.SigInstr), b.Get(ecbus.SigWrite),
		b.Get(ecbus.SigBurst), b.Get(ecbus.SigBE),
	}
	switch {
	case avalid && !c.inAddrPhase:
		// Phase starts this cycle.
		c.inAddrPhase = true
		c.heldA = b.Get(ecbus.SigA)
		c.heldCtl = ctl
	case avalid && c.inAddrPhase:
		if b.Get(ecbus.SigA) != c.heldA {
			// A new phase may begin the cycle after an acceptance; a
			// change without an intervening ARdy is a violation.
			if !c.prev.Bool(ecbus.SigARdy) {
				c.flag("A2", "address changed mid-phase: %#x -> %#x", c.heldA, b.Get(ecbus.SigA))
			}
			c.heldA = b.Get(ecbus.SigA)
			c.heldCtl = ctl
		} else if ctl != c.heldCtl && !c.prev.Bool(ecbus.SigARdy) {
			c.flag("A2", "controls changed mid-phase")
		}
	case !avalid && c.inAddrPhase:
		if !c.prev.Bool(ecbus.SigARdy) {
			c.flag("A3", "AValid dropped before ARdy")
		}
		c.inAddrPhase = false
	}
	if ardy {
		// Acceptance ends the tracked phase (a new one may start next
		// cycle).
		c.inAddrPhase = false
	}

	// D1/D2: strobe exclusivity.
	if b.Bool(ecbus.SigRdVal) && b.Bool(ecbus.SigRBErr) {
		c.flag("D1", "RdVal and RBErr together")
	}
	if b.Bool(ecbus.SigWDRdy) && b.Bool(ecbus.SigWBErr) {
		c.flag("D2", "WDRdy and WBErr together")
	}

	// B1: burst qualifiers.
	if b.Bool(ecbus.SigBFirst) && !b.Bool(ecbus.SigBurst) && avalid {
		c.flag("B1", "BFirst without Burst during address phase")
	}

	c.trackTransactions(b, ardy)
}

// trackTransactions reconstructs the outstanding-transaction state and
// enforces the D3/E1/O1 rules. An accepted address phase is enqueued
// before this cycle's beats and errors are matched: the bus serves
// address unit first, so a zero-wait transaction may legally accept and
// deliver its first beat within one cycle.
func (c *Checker) trackTransactions(b *ecbus.Bundle, ardy bool) {
	accepted := false
	var tx pendingTx
	var toWrite bool
	if ardy {
		accepted = true
		toWrite = b.Bool(ecbus.SigWrite)
		words := 1
		if b.Bool(ecbus.SigBurst) {
			words = ecbus.BurstLen
		}
		cat := ecbus.CatDataRead
		switch {
		case toWrite:
			cat = ecbus.CatWrite
		case b.Bool(ecbus.SigInstr):
			cat = ecbus.CatInstrRead
		}
		tx = pendingTx{cat: cat, words: words}
	}

	// Error strobes retire the oldest outstanding transaction of their
	// direction; with none outstanding they must mark the abort of an
	// address phase accepted this very cycle (decode or rights error).
	if b.Bool(ecbus.SigRBErr) {
		switch {
		case len(c.readTx) > 0:
			c.retire(&c.readTx)
		case accepted && !toWrite:
			accepted = false // address-phase abort: never enters a data phase
		default:
			c.flag("E1", "RBErr with no outstanding read and no aborted acceptance")
		}
	}
	if b.Bool(ecbus.SigWBErr) {
		switch {
		case len(c.writeTx) > 0:
			c.retire(&c.writeTx)
		case accepted && toWrite:
			accepted = false
		default:
			c.flag("E1", "WBErr with no outstanding write and no aborted acceptance")
		}
	}

	if accepted {
		q := &c.readTx
		if toWrite {
			q = &c.writeTx
		}
		*q = append(*q, tx)
		c.occupancy[tx.cat]++
		if c.occupancy[tx.cat] > ecbus.MaxOutstanding {
			c.flag("O1", "%v data-phase occupancy %d exceeds limit %d",
				tx.cat, c.occupancy[tx.cat], ecbus.MaxOutstanding)
		}
	}

	if b.Bool(ecbus.SigRdVal) {
		c.beat(&c.readTx, "read")
	}
	if b.Bool(ecbus.SigWDRdy) {
		c.beat(&c.writeTx, "write")
	}
}

// retire removes the head transaction of a direction queue.
func (c *Checker) retire(q *[]pendingTx) {
	c.occupancy[(*q)[0].cat]--
	*q = (*q)[1:]
}

// beat attributes a delivered data beat to the head transaction of its
// direction, retiring it after its final beat.
func (c *Checker) beat(q *[]pendingTx, dir string) {
	if len(*q) == 0 {
		c.flag("D3", "%s beat with no outstanding %s transaction", dir, dir)
		return
	}
	head := &(*q)[0]
	head.beats++
	if head.beats >= head.words {
		c.retire(q)
	}
}

// Outstanding returns the number of wire-reconstructed transactions
// still awaiting beats, per direction. A clean trace of completed
// workloads ends with both at zero.
func (c *Checker) Outstanding() (reads, writes int) {
	return len(c.readTx), len(c.writeTx)
}
