// Package checker is an assertion-based protocol monitor for the EC
// interface: it watches the layer-0 wire bundle cycle by cycle and
// flags violations of the protocol invariants the models must uphold.
// It is the verification IP a bus-model methodology ships with — the
// executable form of the interface specification rules listed in
// package rtlbus.
//
// Checked invariants:
//
//	A1  ARdy only while AValid (no acceptance without a request).
//	A2  Address and controls stable from AValid assertion to ARdy
//	    (no mid-phase address changes).
//	A3  AValid never deasserts before ARdy (requests are not dropped).
//	D1  RdVal and RBErr never asserted together.
//	D2  WDRdy and WBErr never asserted together.
//	D3  Read data beats only while reads are outstanding; write
//	    accepts only while writes are outstanding (needs transaction
//	    hints; enabled when a tracker is attached).
//	B1  BFirst only with Burst during address phases.
package checker

import (
	"fmt"

	"repro/internal/ecbus"
)

// Violation is one detected protocol violation.
type Violation struct {
	Cycle uint64
	Rule  string
	Info  string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Rule, v.Info)
}

// Checker watches the EC wire bundle.
type Checker struct {
	prev  ecbus.Bundle
	first bool
	cycle uint64

	inAddrPhase bool
	heldA       uint64
	heldCtl     [4]uint64 // Instr, Write, Burst, BE

	violations []Violation
}

// New returns a checker; feed it Observe every Post phase.
func New() *Checker { return &Checker{first: true} }

// Violations returns all detected violations.
func (c *Checker) Violations() []Violation { return c.violations }

// Clean reports whether no violation was seen.
func (c *Checker) Clean() bool { return len(c.violations) == 0 }

func (c *Checker) flag(rule, format string, a ...any) {
	c.violations = append(c.violations, Violation{
		Cycle: c.cycle, Rule: rule, Info: fmt.Sprintf(format, a...),
	})
}

// Observe checks one cycle of wire state.
func (c *Checker) Observe(b *ecbus.Bundle) {
	defer func() {
		c.prev = *b
		c.first = false
		c.cycle++
	}()

	avalid := b.Bool(ecbus.SigAValid)
	ardy := b.Bool(ecbus.SigARdy)

	// A1: acceptance without request.
	if ardy && !avalid {
		c.flag("A1", "ARdy asserted without AValid")
	}

	// A2/A3: phase stability and no dropped requests.
	ctl := [4]uint64{
		b.Get(ecbus.SigInstr), b.Get(ecbus.SigWrite),
		b.Get(ecbus.SigBurst), b.Get(ecbus.SigBE),
	}
	switch {
	case avalid && !c.inAddrPhase:
		// Phase starts this cycle.
		c.inAddrPhase = true
		c.heldA = b.Get(ecbus.SigA)
		c.heldCtl = ctl
	case avalid && c.inAddrPhase:
		if b.Get(ecbus.SigA) != c.heldA {
			// A new phase may begin the cycle after an acceptance; a
			// change without an intervening ARdy is a violation.
			if !c.prev.Bool(ecbus.SigARdy) {
				c.flag("A2", "address changed mid-phase: %#x -> %#x", c.heldA, b.Get(ecbus.SigA))
			}
			c.heldA = b.Get(ecbus.SigA)
			c.heldCtl = ctl
		} else if ctl != c.heldCtl && !c.prev.Bool(ecbus.SigARdy) {
			c.flag("A2", "controls changed mid-phase")
		}
	case !avalid && c.inAddrPhase:
		if !c.prev.Bool(ecbus.SigARdy) {
			c.flag("A3", "AValid dropped before ARdy")
		}
		c.inAddrPhase = false
	}
	if ardy {
		// Acceptance ends the tracked phase (a new one may start next
		// cycle).
		c.inAddrPhase = false
	}

	// D1/D2: strobe exclusivity.
	if b.Bool(ecbus.SigRdVal) && b.Bool(ecbus.SigRBErr) {
		c.flag("D1", "RdVal and RBErr together")
	}
	if b.Bool(ecbus.SigWDRdy) && b.Bool(ecbus.SigWBErr) {
		c.flag("D2", "WDRdy and WBErr together")
	}

	// B1: burst qualifiers.
	if b.Bool(ecbus.SigBFirst) && !b.Bool(ecbus.SigBurst) && avalid {
		c.flag("B1", "BFirst without Burst during address phase")
	}
}
