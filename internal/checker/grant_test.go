package checker_test

import (
	"strings"
	"testing"

	"repro/internal/arb"
	"repro/internal/checker"
)

func rules(v []checker.Violation) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = x.Rule
	}
	return out
}

func TestGrantMonitorClean(t *testing.T) {
	m := checker.NewGrantMonitor(arb.RoundRobin, 3)
	// A legal rotation: every grant answers a request, one at a time,
	// nobody waits a full rotation.
	seq := []struct{ req, gnt uint32 }{
		{0b111, 0b001}, {0b111, 0b010}, {0b111, 0b100},
		{0b011, 0b001}, {0b010, 0b010}, {0b000, 0b000},
	}
	for c, s := range seq {
		m.Observe(uint64(c), s.req, s.gnt)
	}
	if !m.Clean() {
		t.Fatalf("legal sequence flagged: %v", m.Violations())
	}
	if m.Grants(0) != 2 || m.Grants(1) != 2 || m.Grants(2) != 1 {
		t.Fatalf("grant counts %d/%d/%d, want 2/2/1", m.Grants(0), m.Grants(1), m.Grants(2))
	}
}

func TestGrantMonitorG1(t *testing.T) {
	m := checker.NewGrantMonitor(arb.FixedPriority, 3)
	m.Observe(0, 0b001, 0b010) // grant to a silent master
	got := rules(m.Violations())
	if len(got) != 1 || got[0] != "G1" {
		t.Fatalf("violations = %v, want [G1]", got)
	}
	if !strings.Contains(m.Violations()[0].Info, "grant without request") {
		t.Fatalf("G1 info: %q", m.Violations()[0].Info)
	}
}

func TestGrantMonitorG2(t *testing.T) {
	m := checker.NewGrantMonitor(arb.FixedPriority, 3)
	m.Observe(5, 0b011, 0b011) // double grant
	got := rules(m.Violations())
	if len(got) != 1 || got[0] != "G2" {
		t.Fatalf("violations = %v, want [G2]", got)
	}
	if m.Violations()[0].Cycle != 5 {
		t.Fatalf("violation cycle %d, want 5", m.Violations()[0].Cycle)
	}
}

func TestGrantMonitorG3(t *testing.T) {
	m := checker.NewGrantMonitor(arb.RoundRobin, 3)
	// Master 2 requests continuously and is passed over for three
	// consecutive grants — one more than the n-1 rotation bound.
	m.Observe(0, 0b111, 0b001)
	m.Observe(1, 0b111, 0b010)
	if !m.Clean() {
		t.Fatalf("bound not yet exceeded, got %v", m.Violations())
	}
	m.Observe(2, 0b111, 0b001)
	got := rules(m.Violations())
	if len(got) != 1 || got[0] != "G3" {
		t.Fatalf("violations = %v, want [G3]", got)
	}
	// A request gap resets the window.
	m = checker.NewGrantMonitor(arb.RoundRobin, 3)
	m.Observe(0, 0b111, 0b001)
	m.Observe(1, 0b111, 0b010)
	m.Observe(2, 0b011, 0b001) // master 2 stops requesting
	m.Observe(3, 0b111, 0b010)
	m.Observe(4, 0b111, 0b001)
	if !m.Clean() {
		t.Fatalf("window not reset by request gap: %v", m.Violations())
	}
}

func TestGrantMonitorG3NotForFixed(t *testing.T) {
	m := checker.NewGrantMonitor(arb.FixedPriority, 2)
	// Fixed priority starves by design — no G3 however long the wait.
	for c := uint64(0); c < 100; c++ {
		m.Observe(c, 0b11, 0b01)
	}
	if !m.Clean() {
		t.Fatalf("fixed priority flagged for starvation: %v", m.Violations())
	}
}
