package checker

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
)

var lay = core.Layout{Fast: 0, Slow: 0x10000}

func busMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

// TestLayer0IsProtocolClean: the layer-0 model must satisfy every
// invariant on all corpora, including error cases.
func TestLayer0IsProtocolClean(t *testing.T) {
	corpora := map[string][]core.Item{
		"verification": core.VerificationCorpus(lay),
		"perf":         core.PerfCorpus(lay, 300),
	}
	for seed := uint64(1); seed <= 10; seed++ {
		corpora["random"] = core.RandomCorpus(seed, 300, lay)
		for name, items := range corpora {
			k := sim.New(0)
			b := rtlbus.New(k, busMap())
			c := New()
			k.At(sim.Post, "chk", func(uint64) { c.Observe(b.Wires()) })
			m, _ := core.RunScript(k, b, core.CloneItems(items), 1_000_000)
			if !m.Done() {
				t.Fatalf("%s: hung", name)
			}
			if !c.Clean() {
				for _, v := range c.Violations() {
					t.Log(v)
				}
				t.Fatalf("%s (seed %d): %d protocol violations", name, seed, len(c.Violations()))
			}
		}
	}
}

func TestLayer0CleanOnErrors(t *testing.T) {
	k := sim.New(0)
	b := rtlbus.New(k, busMap())
	c := New()
	k.At(sim.Post, "chk", func(uint64) { c.Observe(b.Wires()) })
	miss, _ := ecbus.NewSingle(1, ecbus.Read, 0x5000, ecbus.W32, 0)
	wr, _ := ecbus.NewSingle(2, ecbus.Write, 0x5000, ecbus.W32, 1)
	ok, _ := ecbus.NewSingle(3, ecbus.Read, lay.Fast, ecbus.W32, 0)
	m, _ := core.RunScript(k, b, []core.Item{{Tr: miss}, {Tr: wr}, {Tr: ok}}, 10000)
	if !m.Done() || m.Errors() != 2 {
		t.Fatal("error scenario wrong")
	}
	if !c.Clean() {
		t.Fatalf("violations on error path: %v", c.Violations())
	}
}

// Synthetic violation streams prove each rule actually fires.
func feed(bundles []ecbus.Bundle) *Checker {
	c := New()
	for i := range bundles {
		c.Observe(&bundles[i])
	}
	return c
}

func mkBundle(set func(b *ecbus.Bundle)) ecbus.Bundle {
	var b ecbus.Bundle
	set(&b)
	return b
}

func hasRule(c *Checker, rule string) bool {
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestRuleA1ARdyWithoutAValid(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigARdy, true) }),
	})
	if !hasRule(c, "A1") {
		t.Fatalf("A1 not flagged: %v", c.Violations())
	}
}

func TestRuleA2MidPhaseAddressChange(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x100) }),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x200) }),
	})
	if !hasRule(c, "A2") {
		t.Fatalf("A2 not flagged: %v", c.Violations())
	}
}

func TestRuleA2AllowsNewPhaseAfterAccept(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) {
			b.SetBool(ecbus.SigAValid, true)
			b.SetBool(ecbus.SigARdy, true)
			b.Set(ecbus.SigA, 0x100)
		}),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x200) }),
	})
	if !c.Clean() {
		t.Fatalf("back-to-back phases flagged: %v", c.Violations())
	}
}

func TestRuleA3DroppedRequest(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x100) }),
		mkBundle(func(b *ecbus.Bundle) {}),
	})
	if !hasRule(c, "A3") {
		t.Fatalf("A3 not flagged: %v", c.Violations())
	}
}

func TestRuleD1D2StrobeExclusivity(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRdVal, true); b.SetBool(ecbus.SigRBErr, true) }),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigWDRdy, true); b.SetBool(ecbus.SigWBErr, true) }),
	})
	if !hasRule(c, "D1") || !hasRule(c, "D2") {
		t.Fatalf("D1/D2 not flagged: %v", c.Violations())
	}
}

func TestRuleB1BFirstWithoutBurst(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) {
			b.SetBool(ecbus.SigAValid, true)
			b.SetBool(ecbus.SigBFirst, true)
		}),
	})
	if !hasRule(c, "B1") {
		t.Fatalf("B1 not flagged: %v", c.Violations())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Cycle: 7, Rule: "A1", Info: "x"}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}
