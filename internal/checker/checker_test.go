package checker

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
)

var lay = core.Layout{Fast: 0, Slow: 0x10000}

func busMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

// TestLayer0IsProtocolClean: the layer-0 model must satisfy every
// invariant on all corpora, including error cases.
func TestLayer0IsProtocolClean(t *testing.T) {
	corpora := map[string][]core.Item{
		"verification": core.VerificationCorpus(lay),
		"perf":         core.PerfCorpus(lay, 300),
	}
	for seed := uint64(1); seed <= 10; seed++ {
		corpora["random"] = core.RandomCorpus(seed, 300, lay)
		for name, items := range corpora {
			k := sim.New(0)
			b := rtlbus.New(k, busMap())
			c := New()
			k.At(sim.Post, "chk", func(uint64) { c.Observe(b.Wires()) })
			m, _ := core.RunScript(k, b, core.CloneItems(items), 1_000_000)
			if !m.Done() {
				t.Fatalf("%s: hung", name)
			}
			if !c.Clean() {
				for _, v := range c.Violations() {
					t.Log(v)
				}
				t.Fatalf("%s (seed %d): %d protocol violations", name, seed, len(c.Violations()))
			}
		}
	}
}

func TestLayer0CleanOnErrors(t *testing.T) {
	k := sim.New(0)
	b := rtlbus.New(k, busMap())
	c := New()
	k.At(sim.Post, "chk", func(uint64) { c.Observe(b.Wires()) })
	miss, _ := ecbus.NewSingle(1, ecbus.Read, 0x5000, ecbus.W32, 0)
	wr, _ := ecbus.NewSingle(2, ecbus.Write, 0x5000, ecbus.W32, 1)
	ok, _ := ecbus.NewSingle(3, ecbus.Read, lay.Fast, ecbus.W32, 0)
	m, _ := core.RunScript(k, b, []core.Item{{Tr: miss}, {Tr: wr}, {Tr: ok}}, 10000)
	if !m.Done() || m.Errors() != 2 {
		t.Fatal("error scenario wrong")
	}
	if !c.Clean() {
		t.Fatalf("violations on error path: %v", c.Violations())
	}
}

// Synthetic violation streams prove each rule actually fires.
func feed(bundles []ecbus.Bundle) *Checker {
	c := New()
	for i := range bundles {
		c.Observe(&bundles[i])
	}
	return c
}

func mkBundle(set func(b *ecbus.Bundle)) ecbus.Bundle {
	var b ecbus.Bundle
	set(&b)
	return b
}

func hasRule(c *Checker, rule string) bool {
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestRuleA1ARdyWithoutAValid(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigARdy, true) }),
	})
	if !hasRule(c, "A1") {
		t.Fatalf("A1 not flagged: %v", c.Violations())
	}
}

func TestRuleA2MidPhaseAddressChange(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x100) }),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x200) }),
	})
	if !hasRule(c, "A2") {
		t.Fatalf("A2 not flagged: %v", c.Violations())
	}
}

func TestRuleA2AllowsNewPhaseAfterAccept(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) {
			b.SetBool(ecbus.SigAValid, true)
			b.SetBool(ecbus.SigARdy, true)
			b.Set(ecbus.SigA, 0x100)
		}),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x200) }),
	})
	if !c.Clean() {
		t.Fatalf("back-to-back phases flagged: %v", c.Violations())
	}
}

func TestRuleA3DroppedRequest(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigAValid, true); b.Set(ecbus.SigA, 0x100) }),
		mkBundle(func(b *ecbus.Bundle) {}),
	})
	if !hasRule(c, "A3") {
		t.Fatalf("A3 not flagged: %v", c.Violations())
	}
}

func TestRuleD1D2StrobeExclusivity(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRdVal, true); b.SetBool(ecbus.SigRBErr, true) }),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigWDRdy, true); b.SetBool(ecbus.SigWBErr, true) }),
	})
	if !hasRule(c, "D1") || !hasRule(c, "D2") {
		t.Fatalf("D1/D2 not flagged: %v", c.Violations())
	}
}

func TestRuleB1BFirstWithoutBurst(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) {
			b.SetBool(ecbus.SigAValid, true)
			b.SetBool(ecbus.SigBFirst, true)
		}),
	})
	if !hasRule(c, "B1") {
		t.Fatalf("B1 not flagged: %v", c.Violations())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Cycle: 7, Rule: "A1", Info: "x"}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}

// accept returns a bundle carrying an accepted address phase.
func accept(addr uint64, write, burst bool) ecbus.Bundle {
	return mkBundle(func(b *ecbus.Bundle) {
		b.SetBool(ecbus.SigAValid, true)
		b.SetBool(ecbus.SigARdy, true)
		b.Set(ecbus.SigA, addr)
		if write {
			b.Set(ecbus.SigWrite, 1)
		}
		if burst {
			b.Set(ecbus.SigBurst, 1)
		}
	})
}

func TestRuleE1ErrorWithNothingOutstanding(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRBErr, true) }),
	})
	if !hasRule(c, "E1") {
		t.Fatalf("E1 not flagged for bare RBErr: %v", c.Violations())
	}
	c = feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigWBErr, true) }),
	})
	if !hasRule(c, "E1") {
		t.Fatalf("E1 not flagged for bare WBErr: %v", c.Violations())
	}
}

func TestRuleE1ErrorWrongDirection(t *testing.T) {
	// Only a write is outstanding; a read error strobe has no matching
	// request (and the acceptance is of the other direction, so it is
	// not an address-phase abort either).
	c := feed([]ecbus.Bundle{
		accept(0x100, true, false),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRBErr, true) }),
	})
	if !hasRule(c, "E1") {
		t.Fatalf("E1 not flagged for wrong-direction error: %v", c.Violations())
	}
}

func TestE1AllowsAddressPhaseAbort(t *testing.T) {
	// Decode error: acceptance and error strobe on the same cycle. Legal,
	// and the aborted request never becomes outstanding.
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) {
			b.SetBool(ecbus.SigAValid, true)
			b.SetBool(ecbus.SigARdy, true)
			b.Set(ecbus.SigA, 0x100)
			b.SetBool(ecbus.SigRBErr, true)
		}),
	})
	if !c.Clean() {
		t.Fatalf("address-phase abort flagged: %v", c.Violations())
	}
	if r, w := c.Outstanding(); r != 0 || w != 0 {
		t.Fatalf("aborted acceptance left outstanding state: %d/%d", r, w)
	}
}

func TestE1AllowsDataPhaseError(t *testing.T) {
	c := feed([]ecbus.Bundle{
		accept(0x100, false, false),
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRBErr, true) }),
	})
	if !c.Clean() {
		t.Fatalf("legal data-phase error flagged: %v", c.Violations())
	}
	if r, _ := c.Outstanding(); r != 0 {
		t.Fatalf("errored transaction not retired: %d outstanding", r)
	}
}

func TestRuleD3BeatWithNothingOutstanding(t *testing.T) {
	c := feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRdVal, true) }),
	})
	if !hasRule(c, "D3") {
		t.Fatalf("D3 not flagged for orphan read beat: %v", c.Violations())
	}
	c = feed([]ecbus.Bundle{
		mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigWDRdy, true) }),
	})
	if !hasRule(c, "D3") {
		t.Fatalf("D3 not flagged for orphan write beat: %v", c.Violations())
	}
}

func TestRuleD3BurstOverdelivery(t *testing.T) {
	beats := make([]ecbus.Bundle, 0, ecbus.BurstLen+2)
	beats = append(beats, accept(0x100, false, true))
	for i := 0; i <= ecbus.BurstLen; i++ {
		beats = append(beats, mkBundle(func(b *ecbus.Bundle) { b.SetBool(ecbus.SigRdVal, true) }))
	}
	c := feed(beats)
	if !hasRule(c, "D3") {
		t.Fatalf("D3 not flagged for beat %d of a %d-beat burst: %v",
			ecbus.BurstLen+1, ecbus.BurstLen, c.Violations())
	}
}

func TestRuleO1OccupancyLimit(t *testing.T) {
	var bundles []ecbus.Bundle
	for i := 0; i <= ecbus.MaxOutstanding; i++ {
		bundles = append(bundles, accept(uint64(0x100+16*i), false, false))
	}
	c := feed(bundles)
	if !hasRule(c, "O1") {
		t.Fatalf("O1 not flagged at occupancy %d: %v", ecbus.MaxOutstanding+1, c.Violations())
	}
	// Staying at the limit is legal.
	bundles = bundles[:ecbus.MaxOutstanding]
	if c := feed(bundles); !c.Clean() {
		t.Fatalf("occupancy at the limit flagged: %v", c.Violations())
	}
}
