package checker

import (
	"fmt"

	"repro/internal/journal"
)

// Persist is the persistence-protocol monitor: the journaling
// counterpart of the wire-level Checker. It consumes the journal's
// protocol events plus the data-window reads of the recovering
// application and enforces the two tearing-protection invariants:
//
//	J1  Write ordering. A frame's commit marker must come strictly
//	    after all of that frame's journal records, and its in-place
//	    data writes strictly after the marker — the record → marker →
//	    in-place discipline that makes a tear at any point recoverable.
//	    A marker sealing a frame with no records, or a stray in-place
//	    write with no preceding marker for its sequence, is flagged.
//	J2  No premature reads. A word left indeterminate by a tear (a
//	    partial NVM write) must not be read by the application before
//	    replay has completed (EvReplayDone) — before that point the
//	    word's value is garbage the journal has not yet repaired.
//
// Wire it up by setting a journal Writer's Obs (and the Replay obs) to
// Observe, feeding application-level data-window reads to ObserveRead,
// and marking each mem.TornWord with MarkTorn at the power cycle.
type Persist struct {
	cycle func() uint64

	records    map[uint32]int // open frames: seq -> records seen
	marked     map[uint32]bool
	torn       map[uint64]bool
	replayDone bool

	violations []Violation
}

// NewPersist returns a persistence monitor; cycle supplies the current
// simulation cycle for violation reports (nil is allowed and reports
// cycle 0).
func NewPersist(cycle func() uint64) *Persist {
	if cycle == nil {
		cycle = func() uint64 { return 0 }
	}
	return &Persist{
		cycle:   cycle,
		records: map[uint32]int{},
		marked:  map[uint32]bool{},
		torn:    map[uint64]bool{},
	}
}

// Violations returns all detected violations.
func (p *Persist) Violations() []Violation { return p.violations }

// Clean reports whether no violation was seen.
func (p *Persist) Clean() bool { return len(p.violations) == 0 }

func (p *Persist) flag(rule, format string, a ...any) {
	p.violations = append(p.violations, Violation{
		Cycle: p.cycle(), Rule: rule, Info: fmt.Sprintf(format, a...),
	})
}

// Observe consumes one journal protocol event.
func (p *Persist) Observe(e journal.Event) {
	switch e.Kind {
	case journal.EvRecord:
		if p.marked[e.Seq] {
			p.flag("J1", "journal record for frame %d after its commit marker", e.Seq)
		}
		p.records[e.Seq]++
	case journal.EvMarker:
		if p.marked[e.Seq] {
			p.flag("J1", "duplicate commit marker for frame %d", e.Seq)
		}
		if p.records[e.Seq] == 0 {
			p.flag("J1", "commit marker for frame %d with no preceding records", e.Seq)
		}
		p.marked[e.Seq] = true
	case journal.EvInPlace:
		if !p.marked[e.Seq] {
			p.flag("J1", "in-place write at %#x before frame %d's commit marker", e.Addr, e.Seq)
		}
	case journal.EvReplayApply:
		// Replay repairs the word: it is determinate again.
		delete(p.torn, e.Addr)
	case journal.EvReplayDone:
		p.replayDone = true
		p.torn = map[uint64]bool{}
	}
}

// MarkTorn records a word left indeterminate by a power loss; replay
// completion (or an explicit replay apply of the word) clears it.
func (p *Persist) MarkTorn(addr uint64) {
	p.torn[addr&^3] = true
	p.replayDone = false
}

// ObserveRead checks an application-level read of the data window
// against the J2 rule. Journal-area reads (the replay's own scan) must
// not be fed here — the replay legitimately reads before it is done.
func (p *Persist) ObserveRead(addr uint64) {
	if p.torn[addr&^3] && !p.replayDone {
		p.flag("J2", "read of torn word %#x before replay completed", addr&^3)
	}
}
