package checker

import (
	"reflect"
	"testing"

	"repro/internal/ecbus"
)

// Fuzz coverage for the protocol monitor on arbitrary signal sequences.
// The checker is the one component whose input space is not generated
// by our own bus models: it must hold up against any wire soup — never
// panic, never report a rule outside its specification, stay strictly
// deterministic, and still fire the queue-tracking rules (D3, E1, O1)
// whenever cheap independent oracles prove a violation is present.

// knownRules is the complete rule vocabulary from the package contract.
var knownRules = map[string]bool{
	"A1": true, "A2": true, "A3": true,
	"D1": true, "D2": true, "D3": true,
	"E1": true, "O1": true, "B1": true,
}

// fuzzCycles caps the decoded sequence length so a single fuzz input
// stays cheap.
const fuzzCycles = 512

// decodeBundles turns the raw fuzz payload into a wire sequence, three
// bytes per cycle: a control/strobe bitmask, an error/qualifier byte,
// and an address byte.
func decodeBundles(data []byte) []ecbus.Bundle {
	n := len(data) / 3
	if n > fuzzCycles {
		n = fuzzCycles
	}
	bundles := make([]ecbus.Bundle, n)
	for i := 0; i < n; i++ {
		b0, b1, b2 := data[3*i], data[3*i+1], data[3*i+2]
		b := &bundles[i]
		b.SetBool(ecbus.SigAValid, b0&0x01 != 0)
		b.SetBool(ecbus.SigARdy, b0&0x02 != 0)
		b.SetBool(ecbus.SigInstr, b0&0x04 != 0)
		b.SetBool(ecbus.SigWrite, b0&0x08 != 0)
		b.SetBool(ecbus.SigBurst, b0&0x10 != 0)
		b.SetBool(ecbus.SigBFirst, b0&0x20 != 0)
		b.SetBool(ecbus.SigRdVal, b0&0x40 != 0)
		b.SetBool(ecbus.SigWDRdy, b0&0x80 != 0)
		b.SetBool(ecbus.SigRBErr, b1&0x01 != 0)
		b.SetBool(ecbus.SigWBErr, b1&0x02 != 0)
		b.SetBool(ecbus.SigBLast, b1&0x04 != 0)
		b.Set(ecbus.SigBE, uint64(b1>>4))
		b.Set(ecbus.SigA, uint64(b2)<<2)
	}
	return bundles
}

// cat reads the accept category off a bundle's address-phase wires, the
// same way the checker does.
func cat(b *ecbus.Bundle) ecbus.Category {
	switch {
	case b.Bool(ecbus.SigWrite):
		return ecbus.CatWrite
	case b.Bool(ecbus.SigInstr):
		return ecbus.CatInstrRead
	default:
		return ecbus.CatDataRead
	}
}

func FuzzCheckerRules(f *testing.F) {
	// Legal single-word read: accept, then one beat.
	f.Add([]byte{0x03, 0x00, 0x10, 0x40, 0x00, 0x00})
	// Orphan beats and strobes (D3, E1 both directions).
	f.Add([]byte{0x40, 0x00, 0x00})
	f.Add([]byte{0x80, 0x00, 0x00})
	f.Add([]byte{0x00, 0x01, 0x00})
	f.Add([]byte{0x00, 0x02, 0x00})
	// Conflicting strobes (D1/D2) and burst qualifier abuse (B1).
	f.Add([]byte{0x40, 0x01, 0x00, 0x80, 0x02, 0x00, 0x21, 0x00, 0x00})
	// Five back-to-back accepts of one category (O1 overflow).
	f.Add([]byte{0x03, 0x00, 0x04, 0x03, 0x00, 0x08, 0x03, 0x00, 0x0c, 0x03, 0x00, 0x10, 0x03, 0x00, 0x14})
	// Mid-phase address change (A2) and dropped request (A3).
	f.Add([]byte{0x01, 0x00, 0x04, 0x01, 0x00, 0x08, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		bundles := decodeBundles(data)
		c := New()
		for i := range bundles {
			c.Observe(&bundles[i])
		}

		// Violations carry known rules, in-range cycles, and appear in
		// nondecreasing cycle order.
		last := uint64(0)
		for _, v := range c.Violations() {
			if !knownRules[v.Rule] {
				t.Fatalf("unknown rule %q: %v", v.Rule, v)
			}
			if v.Cycle >= uint64(len(bundles)) {
				t.Fatalf("violation cycle %d beyond %d observed cycles", v.Cycle, len(bundles))
			}
			if v.Cycle < last {
				t.Fatalf("violations out of cycle order: %v after cycle %d", v, last)
			}
			last = v.Cycle
			if v.String() == "" {
				t.Fatal("empty violation rendering")
			}
		}
		reads, writes := c.Outstanding()
		if reads < 0 || writes < 0 {
			t.Fatalf("negative outstanding counts: %d/%d", reads, writes)
		}

		// Determinism: the same wire soup yields the same verdicts.
		c2 := New()
		for i := range bundles {
			c2.Observe(&bundles[i])
		}
		if !reflect.DeepEqual(c.Violations(), c2.Violations()) {
			t.Fatal("checker verdicts not deterministic")
		}

		// Independent oracles over the prefix before the first strobe of
		// each direction. Until a RdVal/RBErr appears nothing can retire
		// a read, so a read beat or error strobe with no prior accept
		// must be flagged, and more than MaxOutstanding accepts of one
		// read category must overflow. (Same for writes with their
		// strobes.)
		var anyAccept bool
		var occ [ecbus.NumCategories]int
		readsOpen, writesOpen := true, true
		wantD3, wantE1, wantO1 := false, false, false
		for i := range bundles {
			b := &bundles[i]
			ardy := b.Bool(ecbus.SigARdy)
			rdval, rberr := b.Bool(ecbus.SigRdVal), b.Bool(ecbus.SigRBErr)
			wdrdy, wberr := b.Bool(ecbus.SigWDRdy), b.Bool(ecbus.SigWBErr)
			if rdval && !anyAccept && !ardy {
				wantD3 = true
			}
			if wdrdy && !anyAccept && !ardy {
				wantD3 = true
			}
			if rberr && !anyAccept && !ardy {
				wantE1 = true
			}
			if wberr && !anyAccept && !ardy {
				wantE1 = true
			}
			if ardy {
				anyAccept = true
				ct := cat(b)
				isWrite := ct == ecbus.CatWrite
				if (isWrite && writesOpen && !wberr) || (!isWrite && readsOpen && !rberr) {
					occ[ct]++
					if occ[ct] > ecbus.MaxOutstanding {
						wantO1 = true
					}
				}
			}
			if rdval || rberr {
				readsOpen = false
			}
			if wdrdy || wberr {
				writesOpen = false
			}
		}
		if wantD3 && !hasRule(c, "D3") {
			t.Fatalf("orphan beat with no accept ever, D3 not flagged: %v", c.Violations())
		}
		if wantE1 && !hasRule(c, "E1") {
			t.Fatalf("orphan error strobe with no accept ever, E1 not flagged: %v", c.Violations())
		}
		if wantO1 && !hasRule(c, "O1") {
			t.Fatalf("occupancy overflow before any retirement, O1 not flagged: %v", c.Violations())
		}
	})
}
