package checker

import (
	"fmt"
	"math/bits"

	"repro/internal/arb"
)

// GrantMonitor is the grant-protocol checker of the multi-master bus:
// it watches the arbiter's request/grant wires (arb.Mux.Observe) and
// flags violations of the arbitration invariants:
//
//	G1  A grant pulse only to a requesting master (no grant without
//	    request — the wire-level face of "no data phase without
//	    grant": the mux only starts a transaction's address phase on
//	    its grant cycle, so a grant to a silent port would hand the
//	    bus to nobody).
//	G2  At most one grant per cycle (the EC bus starts one address
//	    phase per falling edge; a double grant would collide phases).
//	G3  Starvation bound (round robin only): a master that requests
//	    continuously is granted within n-1 grants to other masters —
//	    one full rotation. Fixed priority starves by design, so G3 is
//	    not checked for it.
//
// The monitor shares the checker's Violation vocabulary so a
// contention run reports bus-protocol and grant-protocol violations
// through one channel.
type GrantMonitor struct {
	policy arb.Policy
	n      int

	// passedOver[i] counts grants to other masters since master i's
	// own last grant, while i has been requesting continuously; any gap
	// in i's request resets the count (a master that pauses re-queues).
	passedOver []int

	grants     []uint64
	violations []Violation
}

// NewGrantMonitor returns a monitor for an n-master arbiter under the
// given policy. Install its Observe on the mux.
func NewGrantMonitor(policy arb.Policy, n int) *GrantMonitor {
	return &GrantMonitor{policy: policy, n: n, passedOver: make([]int, n), grants: make([]uint64, n)}
}

// Violations returns all detected grant-protocol violations.
func (g *GrantMonitor) Violations() []Violation { return g.violations }

// Clean reports whether no violation was seen.
func (g *GrantMonitor) Clean() bool { return len(g.violations) == 0 }

// Grants returns the observed grant count of master i.
func (g *GrantMonitor) Grants(i int) uint64 { return g.grants[i] }

func (g *GrantMonitor) flag(cycle uint64, rule, format string, a ...any) {
	g.violations = append(g.violations, Violation{Cycle: cycle, Rule: rule, Info: fmt.Sprintf(format, a...)})
}

// Observe checks one arbitration cycle; wire it to arb.Mux.Observe.
func (g *GrantMonitor) Observe(cycle uint64, req, gnt uint32) {
	if bits.OnesCount32(gnt) > 1 {
		g.flag(cycle, "G2", "more than one grant asserted: gnt=%0*b", g.n, gnt)
	}
	if gnt&^req != 0 {
		g.flag(cycle, "G1", "grant without request: req=%0*b gnt=%0*b", g.n, req, g.n, gnt)
	}
	for i := 0; i < g.n; i++ {
		bit := uint32(1) << uint(i)
		switch {
		case gnt&bit != 0:
			g.grants[i]++
			g.passedOver[i] = 0
		case req&bit == 0:
			// Not requesting this cycle: the continuous-request window
			// restarts.
			g.passedOver[i] = 0
		case gnt != 0:
			// Requesting, but someone else won.
			g.passedOver[i]++
			if g.policy == arb.RoundRobin && g.passedOver[i] > g.n-1 {
				g.flag(cycle, "G3", "master %d passed over %d consecutive grants while requesting (bound %d)",
					i, g.passedOver[i], g.n-1)
			}
		}
	}
}
