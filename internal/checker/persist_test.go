package checker

import (
	"strings"
	"testing"

	"repro/internal/journal"
)

// ev is shorthand for building event traces in the rule tables.
func ev(k journal.EventKind, seq uint32, addr uint64) journal.Event {
	return journal.Event{Kind: k, Seq: seq, Addr: addr}
}

func TestPersistRuleTable(t *testing.T) {
	cases := []struct {
		name     string
		events   []journal.Event
		torn     []uint64 // MarkTorn before the reads
		reads    []uint64 // ObserveRead after the events
		wantRule string   // "" = clean
	}{
		{
			name: "clean frame",
			events: []journal.Event{
				ev(journal.EvRecord, 1, 0x100), ev(journal.EvRecord, 1, 0x104),
				ev(journal.EvMarker, 1, 0x108),
				ev(journal.EvInPlace, 1, 0x10),
			},
		},
		{
			name: "two interleaved clean frames",
			events: []journal.Event{
				ev(journal.EvRecord, 1, 0x100), ev(journal.EvMarker, 1, 0x104),
				ev(journal.EvInPlace, 1, 0x10),
				ev(journal.EvRecord, 2, 0x108), ev(journal.EvMarker, 2, 0x10C),
				ev(journal.EvInPlace, 2, 0x14),
			},
		},
		{
			name: "in-place before marker",
			events: []journal.Event{
				ev(journal.EvRecord, 1, 0x100),
				ev(journal.EvInPlace, 1, 0x10),
				ev(journal.EvMarker, 1, 0x104),
			},
			wantRule: "J1",
		},
		{
			name:     "marker without records",
			events:   []journal.Event{ev(journal.EvMarker, 1, 0x100)},
			wantRule: "J1",
		},
		{
			name: "record after its marker",
			events: []journal.Event{
				ev(journal.EvRecord, 1, 0x100), ev(journal.EvMarker, 1, 0x104),
				ev(journal.EvRecord, 1, 0x108),
			},
			wantRule: "J1",
		},
		{
			name: "duplicate marker",
			events: []journal.Event{
				ev(journal.EvRecord, 1, 0x100), ev(journal.EvMarker, 1, 0x104),
				ev(journal.EvMarker, 1, 0x108),
			},
			wantRule: "J1",
		},
		{
			name:     "in-place write with no marker at all",
			events:   []journal.Event{ev(journal.EvInPlace, 3, 0x10)},
			wantRule: "J1",
		},
		{
			name:     "read of torn word before replay",
			torn:     []uint64{0x20},
			reads:    []uint64{0x20},
			wantRule: "J2",
		},
		{
			name: "read of torn word after replay done",
			torn: []uint64{0x20},
			events: []journal.Event{
				ev(journal.EvRecord, 1, 0x100), ev(journal.EvMarker, 1, 0x104),
				ev(journal.EvReplayDone, 0, 0),
			},
			reads: []uint64{0x20},
		},
		{
			name:   "read of torn word repaired by replay apply",
			torn:   []uint64{0x20},
			events: []journal.Event{ev(journal.EvReplayApply, 1, 0x20)},
			reads:  []uint64{0x20},
		},
		{
			name:  "read of untorn word during recovery",
			torn:  []uint64{0x20},
			reads: []uint64{0x24},
		},
		{
			name:     "torn sub-word address folds to its word",
			torn:     []uint64{0x20},
			reads:    []uint64{0x22},
			wantRule: "J2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cyc uint64 = 7
			p := NewPersist(func() uint64 { return cyc })
			for _, a := range tc.torn {
				p.MarkTorn(a)
			}
			for _, e := range tc.events {
				p.Observe(e)
			}
			for _, a := range tc.reads {
				p.ObserveRead(a)
			}
			if tc.wantRule == "" {
				if !p.Clean() {
					t.Fatalf("want clean, got %v", p.Violations())
				}
				return
			}
			if p.Clean() {
				t.Fatalf("want a %s violation, got clean", tc.wantRule)
			}
			v := p.Violations()[0]
			if v.Rule != tc.wantRule {
				t.Fatalf("rule = %s, want %s (%v)", v.Rule, tc.wantRule, v)
			}
			if v.Cycle != 7 {
				t.Fatalf("violation cycle = %d, want the injected clock", v.Cycle)
			}
			if !strings.Contains(v.String(), tc.wantRule) {
				t.Fatalf("String() misses the rule: %s", v.String())
			}
		})
	}
}

// The monitor plugs straight into a journal Writer: a full write/tear/
// replay round trip over the real protocol must come out clean.
func TestPersistAgainstRealWriter(t *testing.T) {
	bus := &mapBus{words: map[uint64]uint32{}}
	reg := journal.Region{DataBase: 0x1000, JournalBase: 0x1100, JournalSize: 0x200}
	p := NewPersist(nil)

	s, _ := journal.Named("word-lazy")
	w := journal.NewWriter(s, reg, bus)
	w.Obs = p.Observe
	w.Begin()
	if err := w.Write(0x1000, 0xAB); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	p.MarkTorn(0x1000) // pretend the in-place write tore
	if _, err := journal.Replay(s, reg, bus, nil, p.Observe); err != nil {
		t.Fatal(err)
	}
	p.ObserveRead(0x1000) // safe: replay completed
	if !p.Clean() {
		t.Fatalf("round trip flagged: %v", p.Violations())
	}
}

// mapBus is a minimal journal.BusRW for the round-trip test.
type mapBus struct{ words map[uint64]uint32 }

func (b *mapBus) ReadWord(addr uint64) (uint32, error) { return b.words[addr], nil }
func (b *mapBus) WriteWord(addr uint64, data uint32) error {
	b.words[addr] = data
	return nil
}
