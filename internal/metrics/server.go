package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// ServeOutcome classifies how an estimation request was satisfied by
// the serving layer's content-addressed cache.
type ServeOutcome int

// Serve outcomes. Miss means the request led the compute (cold path);
// Dedup means it piggybacked on an identical in-flight compute; Hit
// means the result was already cached.
const (
	ServeMiss ServeOutcome = iota
	ServeDedup
	ServeHit
	NumServeOutcomes
)

// String returns the outcome mnemonic.
func (o ServeOutcome) String() string {
	switch o {
	case ServeMiss:
		return "miss"
	case ServeDedup:
		return "dedup"
	case ServeHit:
		return "hit"
	default:
		return "invalid"
	}
}

// ServerRegistry collects one estimation server's lifetime metrics:
// request and cache-outcome counters, compute accounting, backpressure
// rejections and per-outcome service latency. Unlike the per-run
// Registry it is long-lived and shared by concurrent handlers, so every
// method is safe for concurrent use. A nil *ServerRegistry is the
// disabled state, matching the package's nil-receiver discipline.
type ServerRegistry struct {
	mu sync.Mutex

	requests   map[string]uint64                    // by endpoint label
	outcomesBy map[string]*[NumServeOutcomes]uint64 // per-endpoint cache outcomes

	outcomes [NumServeOutcomes]uint64
	computes uint64 // computations actually executed
	failures uint64 // computations that returned an error
	evicted  uint64 // cache entries displaced by the capacity bound

	rejected429 uint64 // bounded-queue backpressure rejections
	rejected503 uint64 // refused while draining for shutdown

	// Cluster counters (multi-node ecserved; zero on a solo node).
	peerFetches uint64 // results served by fetching from a peer node
	peerErrors  uint64 // peer requests that failed (network, 5xx)
	steals      uint64 // sweep configurations computed for a remote coordinator
	requeues    uint64 // configurations requeued after a peer died mid-sweep

	latency [NumServeOutcomes]Histogram // service time in microseconds
}

// NewServer creates an enabled server registry.
func NewServer() *ServerRegistry {
	return &ServerRegistry{
		requests:   make(map[string]uint64),
		outcomesBy: make(map[string]*[NumServeOutcomes]uint64),
	}
}

// Request counts one request against an endpoint label ("estimate",
// "sweep", "jobs", ...).
func (s *ServerRegistry) Request(endpoint string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.requests[endpoint]++
	s.mu.Unlock()
}

// Outcome records how a request was satisfied — both globally and
// against its endpoint label — together with its service latency in
// microseconds. Every /v1/* route that consults the result cache must
// report through here, so per-endpoint hit/dedup/miss accounting stays
// complete as endpoints are added.
func (s *ServerRegistry) Outcome(endpoint string, o ServeOutcome, latencyUS uint64) {
	if s == nil || o < 0 || o >= NumServeOutcomes {
		return
	}
	s.mu.Lock()
	s.outcomes[o]++
	by := s.outcomesBy[endpoint]
	if by == nil {
		by = new([NumServeOutcomes]uint64)
		s.outcomesBy[endpoint] = by
	}
	by[o]++
	s.latency[o].Observe(latencyUS)
	s.mu.Unlock()
}

// PeerFetch records one result served by fetching the owning peer's
// cached or computed bytes instead of computing locally.
func (s *ServerRegistry) PeerFetch() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.peerFetches++
	s.mu.Unlock()
}

// PeerError records one failed peer request (connection refused, 5xx,
// truncated body) — the signal that routed work fell back to a local
// compute.
func (s *ServerRegistry) PeerError() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.peerErrors++
	s.mu.Unlock()
}

// Steal records one sweep configuration this node computed on behalf of
// a remote coordinator's work-stealing fan-out.
func (s *ServerRegistry) Steal() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.steals++
	s.mu.Unlock()
}

// Requeue records configurations put back on the work queue after the
// node computing them died mid-sweep.
func (s *ServerRegistry) Requeue(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.requeues += uint64(n)
	s.mu.Unlock()
}

// Compute records one executed computation and whether it failed.
func (s *ServerRegistry) Compute(failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.computes++
	if failed {
		s.failures++
	}
	s.mu.Unlock()
}

// Evicted records cache entries displaced by the capacity bound.
func (s *ServerRegistry) Evicted(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	s.evicted += uint64(n)
	s.mu.Unlock()
}

// Rejected records one backpressure rejection: a 429 when the bounded
// queue is full, a 503 when the server is draining for shutdown.
func (s *ServerRegistry) Rejected(status int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	switch status {
	case 429:
		s.rejected429++
	case 503:
		s.rejected503++
	}
	s.mu.Unlock()
}

// ServerSnapshot is an immutable copy of a server registry's state.
type ServerSnapshot struct {
	Requests   map[string]uint64
	OutcomesBy map[string][NumServeOutcomes]uint64

	Outcomes [NumServeOutcomes]uint64
	Computes uint64
	Failures uint64
	Evicted  uint64

	Rejected429 uint64
	Rejected503 uint64

	PeerFetches uint64
	PeerErrors  uint64
	Steals      uint64
	Requeues    uint64

	Latency [NumServeOutcomes]HistogramSnapshot
}

// Snapshot returns a copy of the registry's current state.
func (s *ServerRegistry) Snapshot() ServerSnapshot {
	if s == nil {
		return ServerSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ServerSnapshot{
		Requests:    make(map[string]uint64, len(s.requests)),
		OutcomesBy:  make(map[string][NumServeOutcomes]uint64, len(s.outcomesBy)),
		Outcomes:    s.outcomes,
		Computes:    s.computes,
		Failures:    s.failures,
		Evicted:     s.evicted,
		Rejected429: s.rejected429,
		Rejected503: s.rejected503,
		PeerFetches: s.peerFetches,
		PeerErrors:  s.peerErrors,
		Steals:      s.steals,
		Requeues:    s.requeues,
	}
	for k, v := range s.requests {
		snap.Requests[k] = v
	}
	for k, v := range s.outcomesBy {
		snap.OutcomesBy[k] = *v
	}
	for i := range s.latency {
		snap.Latency[i] = s.latency[i].snapshot()
	}
	return snap
}

// sortedKeys returns m's keys in lexical order — endpoint order in the
// rendered table must not depend on map iteration.
func sortedKeys[V any](m map[string]V) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// Table renders the snapshot as the /metricz text page.
func (s ServerSnapshot) Table() string {
	var sb strings.Builder
	sb.WriteString("estimation server metrics\n")
	eps := sortedKeys(s.Requests)
	sb.WriteString("  requests     ")
	if len(eps) == 0 {
		sb.WriteString("(none)")
	}
	for _, ep := range eps {
		fmt.Fprintf(&sb, " %s=%d", ep, s.Requests[ep])
	}
	sb.WriteString("\n")
	served := s.Outcomes[ServeHit] + s.Outcomes[ServeDedup] + s.Outcomes[ServeMiss]
	ratio := 0.0
	if served > 0 {
		ratio = 100 * float64(s.Outcomes[ServeHit]+s.Outcomes[ServeDedup]) / float64(served)
	}
	fmt.Fprintf(&sb, "  cache         hit=%d dedup=%d miss=%d evicted=%d (saved %.1f%%)\n",
		s.Outcomes[ServeHit], s.Outcomes[ServeDedup], s.Outcomes[ServeMiss], s.Evicted, ratio)
	for _, ep := range sortedKeys(s.OutcomesBy) {
		by := s.OutcomesBy[ep]
		fmt.Fprintf(&sb, "  cache[%s]%s hit=%d dedup=%d miss=%d\n",
			ep, strings.Repeat(" ", max(1, 6-len(ep))),
			by[ServeHit], by[ServeDedup], by[ServeMiss])
	}
	fmt.Fprintf(&sb, "  compute       runs=%d failures=%d\n", s.Computes, s.Failures)
	fmt.Fprintf(&sb, "  backpressure  429=%d 503=%d\n", s.Rejected429, s.Rejected503)
	if s.PeerFetches+s.PeerErrors+s.Steals+s.Requeues > 0 {
		fmt.Fprintf(&sb, "  cluster       peer-fetch=%d peer-err=%d steals=%d requeues=%d\n",
			s.PeerFetches, s.PeerErrors, s.Steals, s.Requeues)
	}
	for o := ServeMiss; o < NumServeOutcomes; o++ {
		h := s.Latency[o]
		fmt.Fprintf(&sb, "  latency-us    %-5s n=%-6d mean=%-10.1f max=%d\n",
			o.String(), h.Count, h.Mean(), h.Max)
	}
	return sb.String()
}
