package metrics

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ecbus"
)

func TestPhaseKindStrings(t *testing.T) {
	want := map[PhaseKind]string{
		PhaseAddress:   "address",
		PhaseReadData:  "read-data",
		PhaseWriteData: "write-data",
		PhaseError:     "error",
		PhaseIdle:      "idle",
		NumPhaseKinds:  "invalid",
		PhaseKind(-1):  "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("PhaseKind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestHistogramBucketsAndMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1 << 20} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 10+1<<20 || s.Max != 1<<20 {
		t.Fatalf("snapshot counters wrong: %+v", s)
	}
	// bits.Len64: 0→bucket0, 1→1, 2..3→2, 4..7→3; 1<<20 has Len 21,
	// clamped into the open last bucket.
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[3] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Counts)
	}
	if s.Counts[HistBuckets-1] != 1 {
		t.Fatalf("huge sample not in open bucket: %v", s.Counts)
	}
	if got, want := s.Mean(), float64(10+1<<20)/6; got != want {
		t.Fatalf("mean %g, want %g", got, want)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Fatal("empty histogram mean not 0")
	}
}

func TestRegistryCountersAndSpans(t *testing.T) {
	r := New("TL1")
	r.SetMaster("script")
	ring := NewRingSink(8)
	r.SetSink(ring)
	r.BindSlaves("fast", "slow")

	tr, err := ecbus.NewSingle(7, ecbus.Read, 0x40, ecbus.W32, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.IssueCycle, tr.AddrCycle, tr.DataCycle = 10, 12, 15
	r.TxAccepted(ecbus.CatDataRead, 1)
	r.TxRetired(tr, 0, false)
	bad, err := ecbus.NewSingle(8, ecbus.Write, 0x5000, ecbus.W32, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad.IssueCycle, bad.DataCycle = 20, 22
	r.TxAccepted(ecbus.CatWrite, 2)
	r.TxRetired(bad, -1, true)
	r.TxRejected()
	r.Retries(3)
	r.Beat()
	r.Beats(4)
	r.Beats(0) // no-op
	r.WaitCycle()
	r.WaitCycles(2)
	r.RecordKernel(100, 40, 5, 7)

	s := r.Snapshot()
	if s.Layer != "TL1" || s.Master != "script" {
		t.Fatalf("labels wrong: %+v", s)
	}
	if s.Accepted != 2 || s.Completed != 1 || s.Errored != 1 || s.Rejected != 1 {
		t.Fatalf("tx counters wrong: %+v", s)
	}
	if s.Retries != 3 || s.Beats != 5 || s.WaitCycles != 3 || s.Spans != 2 {
		t.Fatalf("flow counters wrong: %+v", s)
	}
	if s.Cycles != 100 || s.SkippedCycles != 40 || s.IdleSkips != 5 || s.ProcsRun != 7 {
		t.Fatalf("kernel accounting wrong: %+v", s)
	}
	if s.Latency.Count != 2 || s.Latency.Max != 5 {
		t.Fatalf("latency histogram wrong: %+v", s.Latency)
	}
	if s.Occupancy[ecbus.CatDataRead].Max != 1 || s.Occupancy[ecbus.CatWrite].Max != 2 {
		t.Fatalf("occupancy wrong: %+v", s.Occupancy)
	}
	if len(s.Slaves) != 2 || s.Slaves[0].Accesses != 1 || s.Slaves[1].Accesses != 0 {
		t.Fatalf("slave accesses wrong: %+v", s.Slaves)
	}

	spans := ring.Spans()
	if ring.Total() != 2 || len(spans) != 2 {
		t.Fatalf("ring saw %d/%d spans", ring.Total(), len(spans))
	}
	if spans[0].ID != 7 || spans[0].Slave != "fast" || spans[0].Err {
		t.Fatalf("first span wrong: %+v", spans[0])
	}
	if spans[1].ID != 8 || spans[1].Slave != "-" || !spans[1].Err {
		t.Fatalf("error span wrong: %+v", spans[1])
	}
	if r.SlaveName(1) != "slow" || r.SlaveName(-1) != "-" || r.SlaveName(99) != "-" {
		t.Fatal("SlaveName lookup wrong")
	}
}

func TestEnergyAttributionCarryAndFinalize(t *testing.T) {
	r := New("L0")
	r.BindSlaves("ram")
	r.EnergySample(PhaseAddress, 0, 1.0)   // 1.0 to address/ram
	r.EnergySample(PhaseIdle, -1, 1.5)     // carry: 0.5 still address
	r.EnergySample(PhaseIdle, -1, 1.75)    // carry spent: 0.25 idle
	r.EnergySample(PhaseReadData, 0, 1.75) // zero delta: classification only
	r.Finalize(2.0)                        // residual 0.25 idle/unattributed

	s := r.Snapshot()
	if s.TotalEnergyJ != 2.0 {
		t.Fatalf("total %g, want 2.0", s.TotalEnergyJ)
	}
	if s.EnergyJ[PhaseAddress] != 1.5 {
		t.Fatalf("address bucket %g, want 1.5 (carry rule)", s.EnergyJ[PhaseAddress])
	}
	if s.EnergyJ[PhaseIdle] != 0.5 {
		t.Fatalf("idle bucket %g, want 0.5", s.EnergyJ[PhaseIdle])
	}
	if s.EnergyJ[PhaseReadData] != 0 {
		t.Fatalf("read bucket %g, want 0 (zero delta books nothing)", s.EnergyJ[PhaseReadData])
	}
	if s.Slaves[0].EnergyJ != 1.0 || s.UnattributedJ != 1.0 {
		t.Fatalf("slave split wrong: %+v unattr %g", s.Slaves, s.UnattributedJ)
	}
	if sum := s.PhaseEnergySum(); math.Abs(sum-2.0) > 1e-15 {
		t.Fatalf("phase sum %g", sum)
	}
	// Finalize with no residual is a no-op.
	r.Finalize(2.0)
	if got := r.Snapshot().EnergyJ[PhaseIdle]; got != 0.5 {
		t.Fatalf("no-residual Finalize booked energy: %g", got)
	}
}

func TestFaultCounters(t *testing.T) {
	r := New("L2")
	r.FaultReadError()
	r.FaultWriteError()
	r.FaultWriteError()
	r.FaultCorruption()
	r.FaultExtraWait(3)
	r.FaultExtraWait(0) // no-op
	r.FaultStretch(2)
	r.FaultStretch(-1) // no-op
	f := r.Snapshot().Fault
	want := FaultCounters{ReadErrors: 1, WriteErrors: 2, Corruptions: 1, ExtraWaits: 3, Stretched: 2}
	if f != want {
		t.Fatalf("fault counters %+v, want %+v", f, want)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry enabled")
	}
	// Every method must be a no-op, not a panic.
	r.SetMaster("m")
	if r.SetSink(NewRingSink(1)) != nil {
		t.Fatal("nil SetSink returned non-nil")
	}
	r.BindSlaves("a")
	r.TxAccepted(0, 1)
	r.TxRejected()
	r.TxRetired(nil, 0, false)
	r.Retries(1)
	r.Beat()
	r.Beats(2)
	r.WaitCycle()
	r.WaitCycles(2)
	r.EnergySample(PhaseAddress, 0, 1)
	r.Finalize(1)
	r.RecordKernel(1, 2, 3, 4)
	r.FaultReadError()
	r.FaultWriteError()
	r.FaultCorruption()
	r.FaultExtraWait(1)
	r.FaultStretch(1)
	if r.SlaveName(0) != "-" {
		t.Fatal("nil SlaveName wrong")
	}
	if s := r.Snapshot(); s.Layer != "" || s.Cycles != 0 || s.TotalEnergyJ != 0 || len(s.Slaves) != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
}

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		ring.Emit(Span{ID: uint64(i)})
	}
	if ring.Total() != 5 {
		t.Fatalf("total %d", ring.Total())
	}
	got := ring.Spans()
	if len(got) != 3 || got[0].ID != 3 || got[1].ID != 4 || got[2].ID != 5 {
		t.Fatalf("ring kept %+v, want IDs 3,4,5 oldest first", got)
	}
	// Capacity is clamped to at least one slot.
	tiny := NewRingSink(0)
	tiny.Emit(Span{ID: 9})
	tiny.Emit(Span{ID: 10})
	if s := tiny.Spans(); len(s) != 1 || s[0].ID != 10 {
		t.Fatalf("clamped ring kept %+v", s)
	}
}

func TestNDJSONSinkOutput(t *testing.T) {
	var sb strings.Builder
	sink := NewNDJSONSink(&sb)
	sink.Emit(Span{
		ID: 3, Layer: "L0", Master: "m\"q", Slave: "ram",
		Kind: ecbus.Write, Burst: true, Attempt: 2,
		Issue: 5, Addr: 6, End: 9, Err: true,
	})
	sink.Emit(Span{ID: 4, Layer: "L0", Kind: ecbus.Read})
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var rec struct {
		ID      uint64 `json:"id"`
		Layer   string `json:"layer"`
		Master  string `json:"master"`
		Slave   string `json:"slave"`
		Kind    string `json:"kind"`
		Burst   bool   `json:"burst"`
		Attempt int32  `json:"attempt"`
		Issue   uint64 `json:"issue"`
		Addr    uint64 `json:"addr"`
		End     uint64 `json:"end"`
		Err     bool   `json:"err"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.ID != 3 || rec.Master != `m"q` || !rec.Burst || rec.Attempt != 2 ||
		rec.Issue != 5 || rec.Addr != 6 || rec.End != 9 || !rec.Err {
		t.Fatalf("decoded record wrong: %+v", rec)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk gone")
}

func TestNDJSONSinkStickyError(t *testing.T) {
	w := &failWriter{}
	sink := NewNDJSONSink(w)
	sink.Emit(Span{ID: 1})
	sink.Emit(Span{ID: 2})
	sink.Emit(Span{ID: 3})
	if sink.Err() == nil {
		t.Fatal("write error not reported")
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times after first failure, want 1", w.n)
	}
}

func TestTableRendering(t *testing.T) {
	r := New("L1")
	r.SetMaster("bench")
	r.BindSlaves("fast", "slow")
	r.TxAccepted(ecbus.CatDataRead, 1)
	tr, _ := ecbus.NewSingle(1, ecbus.Read, 0, ecbus.W32, 0)
	tr.DataCycle = 4
	r.TxRetired(tr, 0, false)
	r.EnergySample(PhaseReadData, 0, 2.5e-9)
	r.Finalize(3e-9)
	r.RecordKernel(50, 10, 2, 3)
	r.FaultReadError()

	tab := r.Snapshot().Table()
	for _, want := range []string{
		"run report: layer L1", "master bench",
		"cycles 50 (skipped 10 in 2 jumps, procs 3)",
		"accepted 1", "completed 1",
		"read-data", "idle", "per slave:", "fast", "(other)",
		"occupancy max:", "latency mean",
		"faults injected: 1 read err",
		"nJ",
	} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	// A clean snapshot omits the fault line.
	if tab := (Snapshot{Layer: "x"}).Table(); strings.Contains(tab, "faults injected") {
		t.Error("zero fault counters rendered")
	}
}

func TestFmtJUnits(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2e-6:    "uJ",
		3.5e-9:  "nJ",
		4.2e-12: "pJ",
	}
	for v, want := range cases {
		if got := fmtJ(v); !strings.Contains(got, want) {
			t.Errorf("fmtJ(%g) = %q, want unit %q", v, got, want)
		}
	}
}

func TestDiffRendering(t *testing.T) {
	a := Snapshot{
		Layer: "clean", Cycles: 100, Completed: 10, TotalEnergyJ: 1e-9,
		Slaves: []SlaveSnapshot{{Name: "ram", EnergyJ: 1e-9}},
	}
	x := a
	x.Layer = "storm"
	x.Cycles = 150
	x.Retries = 4
	x.TotalEnergyJ = 2e-9
	x.Slaves = []SlaveSnapshot{{Name: "ram", EnergyJ: 2e-9}}
	x.Fault.ExtraWaits = 30

	d := Diff(a, x)
	for _, want := range []string{
		"diff clean -> storm",
		"cycles", "+50", "(+50.0%)",
		"retries", "+4",
		"energy", "@ram", "flt-waits",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "completed") {
		t.Errorf("unchanged field rendered:\n%s", d)
	}
	// Identical snapshots say so, and empty layer labels get defaults.
	same := Diff(Snapshot{}, Snapshot{})
	if !strings.Contains(same, "diff A -> B") || !strings.Contains(same, "(no differences)") {
		t.Errorf("empty diff rendering wrong:\n%s", same)
	}
}

// TestKahanCompensation: a pathological sum (many tiny values onto a
// large one) must stay exact where naive summation drifts.
func TestKahanCompensation(t *testing.T) {
	var k kahan
	k.add(1e16)
	for i := 0; i < 1000; i++ {
		k.add(1.0)
	}
	if k.sum != 1e16+1000 {
		t.Fatalf("kahan sum %g, want %g", k.sum, 1e16+1000.0)
	}
}

func TestTxRetiredLatencyGuard(t *testing.T) {
	r := New("L2")
	tr, _ := ecbus.NewSingle(1, ecbus.Read, 0, ecbus.W32, 0)
	tr.IssueCycle, tr.DataCycle = 10, 3 // never completed a data phase
	r.TxRetired(tr, -1, true)
	if s := r.Snapshot(); s.Latency.Count != 0 {
		t.Fatalf("underflowing latency observed: %+v", s.Latency)
	}
}
