package metrics

import (
	"strings"
	"testing"
)

func TestTearAndJournalCounters(t *testing.T) {
	r := New("L1")
	r.TearCut(1234, 8, 1)
	r.JournalActivity(10, 3, 3, 5)
	r.JournalActivity(2, 1, 1, 1)
	r.JournalReplay(3, 1, 7, 1e-9, 2e-9, 0.5e-9)
	s := r.Snapshot()

	if s.Tear.Torn != 1 || s.Tear.CutCycle != 1234 || s.Tear.CutOp != 8 || s.Tear.CorruptWords != 1 {
		t.Fatalf("tear counters %+v", s.Tear)
	}
	j := s.Journal
	if j.Records != 12 || j.Markers != 4 || j.Commits != 4 || j.InPlaceWrites != 6 {
		t.Fatalf("journal activity %+v", j)
	}
	if j.FramesReplayed != 3 || j.FramesDiscarded != 1 || j.WordsApplied != 7 {
		t.Fatalf("replay counters %+v", j)
	}
	// The phase energies are stored verbatim, not re-accumulated.
	if j.ScanJ != 1e-9 || j.ApplyJ != 2e-9 || j.FinalizeJ != 0.5e-9 {
		t.Fatalf("phase energies %+v", j)
	}

	tbl := s.Table()
	for _, want := range []string{"tear: cut at cycle 1234", "journal: 12 records", "replay: 3 frames applied"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table misses %q:\n%s", want, tbl)
		}
	}
}

func TestTearAndJournalNilRegistry(t *testing.T) {
	var r *Registry
	r.TearCut(1, 1, 1)
	r.JournalActivity(1, 1, 1, 1)
	r.JournalReplay(1, 1, 1, 1, 1, 1)
	if s := r.Snapshot(); s.Tear != (TearCounters{}) || s.Journal != (JournalCounters{}) {
		t.Fatal("nil registry must record nothing")
	}
}

// A clean (untorn, unjournaled) snapshot must render no tear or
// journal lines at all — the axes stay invisible unless used, which is
// what keeps pre-PR table output byte-identical.
func TestTableOmitsZeroTearJournal(t *testing.T) {
	s := New("L1").Snapshot()
	tbl := s.Table()
	if strings.Contains(tbl, "tear:") || strings.Contains(tbl, "journal:") {
		t.Fatalf("zero counters rendered:\n%s", tbl)
	}
}
