// Package metrics is the observability layer shared by every
// abstraction level: monotonic counters and histograms for cycles, wait
// states, queue occupancy, retries and errored phases, plus energy
// attributed per phase kind (address / read-data / write-data / error /
// idle) and per slave.
//
// Energy attribution uses the same "energy since last call" discipline
// the paper specifies for the layer-2 power interface, but against the
// non-destructive TotalEnergy reading: at every sampling point the
// delta between the meter's running total and the registry's cursor is
// booked to exactly one phase bucket and one slave bucket. Because the
// cursor always holds the last sampled total verbatim, the attributed
// total equals the meter total bit-for-bit — no energy can escape or be
// double counted — while the per-bucket sums are Kahan-compensated so
// their recombination stays within a couple of ulps of the total.
//
// A nil *Registry is the disabled state: every method is a nil-receiver
// no-op, so instrumented hot paths pay a single predictable branch and
// zero allocations when observability is off.
package metrics

import (
	"math/bits"

	"repro/internal/ecbus"
)

// PhaseKind classifies where a unit of energy or time was spent, at any
// abstraction level.
type PhaseKind int

// Phase kinds. The order is the attribution priority used by the
// per-cycle classifiers of the signal-true layers: a cycle that both
// completes an address phase and delivers a data beat counts as data.
const (
	PhaseAddress PhaseKind = iota
	PhaseReadData
	PhaseWriteData
	PhaseError
	PhaseIdle
	NumPhaseKinds
)

// String returns the phase-kind mnemonic.
func (k PhaseKind) String() string {
	switch k {
	case PhaseAddress:
		return "address"
	case PhaseReadData:
		return "read-data"
	case PhaseWriteData:
		return "write-data"
	case PhaseError:
		return "error"
	case PhaseIdle:
		return "idle"
	default:
		return "invalid"
	}
}

// HistBuckets is the number of power-of-two histogram buckets; bucket i
// counts values v with bits.Len64(v) == i, the last bucket is open.
const HistBuckets = 17

// Histogram is a power-of-two-bucketed histogram of uint64 samples.
type Histogram struct {
	counts      [HistBuckets]uint64
	n, sum, max uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.counts[b]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// HistogramSnapshot is an immutable copy of a histogram.
type HistogramSnapshot struct {
	Counts [HistBuckets]uint64
	Count  uint64
	Sum    uint64
	Max    uint64
}

// Mean returns the arithmetic mean of the recorded samples (0 if none).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{Counts: h.counts, Count: h.n, Sum: h.sum, Max: h.max}
}

// kahan is a compensated accumulator: the running error of each
// addition is carried so a bucket's sum tracks the exact sum of its
// deltas to within one ulp regardless of sample count.
type kahan struct{ sum, c float64 }

func (k *kahan) add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// FidelityCounters attributes a multi-fidelity sweep's work between
// the analytic screen and the exact confirmation pass: configuration
// counts plus wall-clock nanoseconds per phase. The zero value means
// the run was not a multi-fidelity sweep and nothing is reported.
type FidelityCounters struct {
	Screened     uint64 // configurations evaluated analytically
	Pruned       uint64 // configurations dropped by ε-domination
	Confirmed    uint64 // configurations confirmed exactly
	ScreenNanos  uint64 // wall clock spent screening
	ConfirmNanos uint64 // wall clock spent confirming
}

// ArbCounters aggregates the multi-master arbitration activity of a
// run: committed grants, grant attempts the bus refused, contention
// windows (cycles with more than one requester), and the request/grant
// wire energy. The zero value means the run was single-master and
// nothing is reported.
type ArbCounters struct {
	Grants      uint64
	GrantWaits  uint64
	Contentions uint64
	EnergyJ     float64
}

// TearCounters records a run's card-tear outcome: whether the supply
// was cut, where, and how much corruption it left. The zero value
// means the run was never torn and nothing is reported.
type TearCounters struct {
	Torn         uint64 // 1 if the monitor latched
	CutCycle     uint64 // cycle the supply died at
	CutOp        uint64 // NVM programming-op ordinal the cut landed in (0 = cycle/joule trigger)
	CorruptWords uint64 // words left indeterminate by the partial write
}

// JournalCounters aggregates the transaction journal's activity — the
// write-path traffic and the power-up replay with its per-phase energy
// attribution. The phase figures are exact deltas of shared meter
// samples (see journal.Recovery), so they telescope bit-exactly. The
// zero value means the run was unjournaled and nothing is reported.
type JournalCounters struct {
	Records         uint64 // journal record words written
	Markers         uint64 // commit markers written
	Commits         uint64 // transactions made durable
	InPlaceWrites   uint64 // in-place data writes
	FramesReplayed  uint64 // frames the power-up scan found valid
	FramesDiscarded uint64 // torn tail frames discarded
	WordsApplied    uint64 // words rewritten by replay
	ScanJ           float64
	ApplyJ          float64
	FinalizeJ       float64
}

// FaultCounters aggregates injected-fault events observed by
// fault.Injector instances attached to the registry.
type FaultCounters struct {
	ReadErrors  uint64
	WriteErrors uint64
	Corruptions uint64
	ExtraWaits  uint64 // total injected wait cycles
	Stretched   uint64 // busy windows stretched
}

type slaveAcc struct {
	name     string
	energy   kahan
	accesses uint64
}

// Registry collects one run's metrics for one bus model instance. All
// methods are safe on a nil receiver (and then do nothing), which is
// the disabled state instrumented code paths are gated on.
type Registry struct {
	layer  string
	master string
	sink   SpanSink

	// Kernel accounting, recorded once at end of run.
	cycles    uint64
	skipped   uint64
	idleSkips uint64
	procsRun  uint64

	// Transaction counters.
	accepted  uint64
	completed uint64
	errored   uint64
	rejected  uint64
	retries   uint64
	beats     uint64
	waits     uint64
	spans     uint64

	occ     [ecbus.NumCategories]Histogram
	latency Histogram

	// Energy attribution state. cursor is the meter total at the last
	// sample; carry holds the previous cycle's classification so
	// trailing strobe falls land in the phase that raised the strobe.
	cursor float64
	carry  PhaseKind
	phase  [NumPhaseKinds]kahan
	slaves []slaveAcc
	unattr kahan

	fault    FaultCounters
	fidelity FidelityCounters
	arb      ArbCounters
	tear     TearCounters
	journal  JournalCounters
}

// New creates an enabled registry labelled with the abstraction layer
// it will observe (e.g. "L0", "TL1", "TL2").
func New(layer string) *Registry {
	return &Registry{layer: layer, carry: PhaseIdle}
}

// Enabled reports whether the registry collects anything.
func (r *Registry) Enabled() bool { return r != nil }

// SetMaster labels the master feeding this registry's spans.
func (r *Registry) SetMaster(name string) {
	if r == nil {
		return
	}
	r.master = name
}

// SetSink installs the span sink. A nil sink disables span emission
// while keeping counters and energy attribution active.
func (r *Registry) SetSink(s SpanSink) *Registry {
	if r == nil {
		return nil
	}
	r.sink = s
	return r
}

// BindSlaves sizes the per-slave energy table. The bus models call this
// from AttachMetrics with the address map's slave names in decode
// order, so the slave index used on the hot path is the map index.
func (r *Registry) BindSlaves(names ...string) {
	if r == nil {
		return
	}
	r.slaves = make([]slaveAcc, len(names))
	for i, n := range names {
		r.slaves[i].name = n
	}
}

// TxAccepted records a transaction accepted into the bus together with
// the outstanding-queue occupancy of its category after acceptance.
func (r *Registry) TxAccepted(cat ecbus.Category, occupancy int) {
	if r == nil {
		return
	}
	r.accepted++
	if cat >= 0 && cat < ecbus.NumCategories {
		r.occ[cat].Observe(uint64(occupancy))
	}
}

// TxRejected records a transaction the bus refused to accept this
// cycle (queue full); the master will re-present it.
func (r *Registry) TxRejected() {
	if r == nil {
		return
	}
	r.rejected++
}

// TxRetired records one completed attempt of a transaction: counters,
// completion latency, the per-slave access count, and — when a sink is
// installed — a structured span. slave is the address-map index, or -1
// for decode misses.
func (r *Registry) TxRetired(tr *ecbus.Transaction, slave int, errored bool) {
	if r == nil {
		return
	}
	if errored {
		r.errored++
	} else {
		r.completed++
	}
	if tr.DataCycle >= tr.IssueCycle {
		r.latency.Observe(tr.DataCycle - tr.IssueCycle)
	}
	if slave >= 0 && slave < len(r.slaves) {
		r.slaves[slave].accesses++
	}
	if r.sink != nil {
		r.spans++
		r.sink.Emit(Span{
			ID:      tr.ID,
			Layer:   r.layer,
			Master:  r.master,
			Slave:   r.SlaveName(slave),
			Kind:    tr.Kind,
			Burst:   tr.Burst,
			Attempt: tr.Retries,
			Issue:   tr.IssueCycle,
			Addr:    tr.AddrCycle,
			End:     tr.DataCycle,
			Err:     errored,
		})
	}
}

// SlaveName returns the bound name of a slave index, or "-" when the
// index is out of range (decode miss / unattributed).
func (r *Registry) SlaveName(i int) string {
	if r == nil || i < 0 || i >= len(r.slaves) {
		return "-"
	}
	return r.slaves[i].name
}

// Retries adds master-side re-issues of errored transactions.
func (r *Registry) Retries(n uint64) {
	if r == nil {
		return
	}
	r.retries += n
}

// Beat records one delivered data beat.
func (r *Registry) Beat() {
	if r == nil {
		return
	}
	r.beats++
}

// Beats records n delivered data beats at once (layer 2 books a whole
// data phase in one call).
func (r *Registry) Beats(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.beats += uint64(n)
}

// WaitCycle records one wait-state cycle observed on the bus.
func (r *Registry) WaitCycle() {
	if r == nil {
		return
	}
	r.waits++
}

// WaitCycles records n wait-state cycles at once.
func (r *Registry) WaitCycles(n uint64) {
	if r == nil {
		return
	}
	r.waits += n
}

// EnergySample attributes the energy dissipated since the previous
// sample — the delta between total (the meter's running total) and the
// registry cursor — to one phase bucket and one slave bucket. kind is
// the sampling point's classification of the interval; PhaseIdle
// intervals inherit the previous sample's classification once (the
// trailing-edge rule: strobe falls are priced one cycle after the
// phase that raised them). slave < 0 books the delta as unattributed.
func (r *Registry) EnergySample(kind PhaseKind, slave int, total float64) {
	if r == nil {
		return
	}
	d := total - r.cursor
	r.cursor = total
	if kind == PhaseIdle {
		kind, r.carry = r.carry, PhaseIdle
	} else {
		r.carry = kind
	}
	if d == 0 {
		return
	}
	r.phase[kind].add(d)
	if slave >= 0 && slave < len(r.slaves) {
		r.slaves[slave].energy.add(d)
	} else {
		r.unattr.add(d)
	}
}

// Finalize books any energy the meter accumulated after the last
// sampling point into the idle bucket and advances the cursor to the
// final total. Call it once with the meter's final TotalEnergy before
// taking the snapshot; afterwards Snapshot().TotalEnergyJ equals the
// meter total exactly (bit-for-bit).
func (r *Registry) Finalize(total float64) {
	if r == nil {
		return
	}
	d := total - r.cursor
	r.cursor = total
	if d != 0 {
		r.phase[PhaseIdle].add(d)
		r.unattr.add(d)
	}
}

// RecordKernel stores the kernel's cycle accounting for the run. It
// implements sim.RunObserver, so a registry can be handed straight to
// Kernel.SetRunObserver.
func (r *Registry) RecordKernel(cycles, skippedCycles, idleSkips, procsRun uint64) {
	if r == nil {
		return
	}
	r.cycles = cycles
	r.skipped = skippedCycles
	r.idleSkips = idleSkips
	r.procsRun = procsRun
}

// FidelityScreen records the analytic screening pass of a
// multi-fidelity sweep: configurations screened, configurations pruned
// by ε-domination, and the wall-clock nanoseconds spent.
func (r *Registry) FidelityScreen(screened, pruned, nanos uint64) {
	if r == nil {
		return
	}
	r.fidelity.Screened += screened
	r.fidelity.Pruned += pruned
	r.fidelity.ScreenNanos += nanos
}

// FidelityConfirm records the exact confirmation pass of a
// multi-fidelity sweep.
func (r *Registry) FidelityConfirm(confirmed, nanos uint64) {
	if r == nil {
		return
	}
	r.fidelity.Confirmed += confirmed
	r.fidelity.ConfirmNanos += nanos
}

// Arbitration books a run's multi-master arbitration totals: grants
// committed, grant attempts refused by the bus, contention windows and
// the arbitration-wire energy.
func (r *Registry) Arbitration(grants, grantWaits, contentions uint64, energyJ float64) {
	if r == nil {
		return
	}
	r.arb.Grants += grants
	r.arb.GrantWaits += grantWaits
	r.arb.Contentions += contentions
	r.arb.EnergyJ += energyJ
}

// FaultReadError counts one injected read error.
func (r *Registry) FaultReadError() {
	if r == nil {
		return
	}
	r.fault.ReadErrors++
}

// FaultWriteError counts one injected write error.
func (r *Registry) FaultWriteError() {
	if r == nil {
		return
	}
	r.fault.WriteErrors++
}

// FaultCorruption counts one injected data corruption.
func (r *Registry) FaultCorruption() {
	if r == nil {
		return
	}
	r.fault.Corruptions++
}

// FaultExtraWait counts n injected wait cycles.
func (r *Registry) FaultExtraWait(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.fault.ExtraWaits += uint64(n)
}

// FaultStretch counts one stretched busy window.
func (r *Registry) FaultStretch(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.fault.Stretched += uint64(n)
}

// TearCut books the card-tear outcome: the cut position and the number
// of words the partial write left indeterminate.
func (r *Registry) TearCut(cutCycle, cutOp, corruptWords uint64) {
	if r == nil {
		return
	}
	r.tear.Torn = 1
	r.tear.CutCycle = cutCycle
	r.tear.CutOp = cutOp
	r.tear.CorruptWords += corruptWords
}

// JournalActivity books the write-path journal traffic of a run.
func (r *Registry) JournalActivity(records, markers, commits, inPlace uint64) {
	if r == nil {
		return
	}
	r.journal.Records += records
	r.journal.Markers += markers
	r.journal.Commits += commits
	r.journal.InPlaceWrites += inPlace
}

// JournalReplay books a power-up replay: frame outcomes plus the
// per-phase recovery energy. The phase figures are stored verbatim —
// they are exact meter deltas and must stay bit-identical to the
// journal.Recovery that produced them.
func (r *Registry) JournalReplay(replayed, discarded, wordsApplied uint64, scanJ, applyJ, finalizeJ float64) {
	if r == nil {
		return
	}
	r.journal.FramesReplayed += replayed
	r.journal.FramesDiscarded += discarded
	r.journal.WordsApplied += wordsApplied
	r.journal.ScanJ = scanJ
	r.journal.ApplyJ = applyJ
	r.journal.FinalizeJ = finalizeJ
}
