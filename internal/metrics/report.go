package metrics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ecbus"
)

// SlaveSnapshot is one slave's share of a run.
type SlaveSnapshot struct {
	Name     string
	EnergyJ  float64
	Accesses uint64
}

// Snapshot is an immutable copy of a registry's state, the unit the
// report pipeline renders and diffs.
type Snapshot struct {
	Layer  string
	Master string

	Cycles        uint64
	SkippedCycles uint64
	IdleSkips     uint64
	ProcsRun      uint64

	Accepted   uint64
	Completed  uint64
	Errored    uint64
	Rejected   uint64
	Retries    uint64
	Beats      uint64
	WaitCycles uint64
	Spans      uint64

	// EnergyJ holds the per-phase-kind attribution; TotalEnergyJ is the
	// registry cursor, i.e. the meter total at Finalize, bit-for-bit.
	EnergyJ       [NumPhaseKinds]float64
	TotalEnergyJ  float64
	Slaves        []SlaveSnapshot
	UnattributedJ float64

	Occupancy [ecbus.NumCategories]HistogramSnapshot
	Latency   HistogramSnapshot

	Fault    FaultCounters
	Fidelity FidelityCounters
	Arb      ArbCounters
	Tear     TearCounters
	Journal  JournalCounters
}

// Snapshot returns a copy of the registry's current state. Call
// Finalize first so the energy attribution covers the whole run.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Layer:  r.layer,
		Master: r.master,

		Cycles:        r.cycles,
		SkippedCycles: r.skipped,
		IdleSkips:     r.idleSkips,
		ProcsRun:      r.procsRun,

		Accepted:   r.accepted,
		Completed:  r.completed,
		Errored:    r.errored,
		Rejected:   r.rejected,
		Retries:    r.retries,
		Beats:      r.beats,
		WaitCycles: r.waits,
		Spans:      r.spans,

		TotalEnergyJ:  r.cursor,
		UnattributedJ: r.unattr.sum,
		Latency:       r.latency.snapshot(),
		Fault:         r.fault,
		Fidelity:      r.fidelity,
		Arb:           r.arb,
		Tear:          r.tear,
		Journal:       r.journal,
	}
	for k := 0; k < int(NumPhaseKinds); k++ {
		s.EnergyJ[k] = r.phase[k].sum
	}
	for c := 0; c < int(ecbus.NumCategories); c++ {
		s.Occupancy[c] = r.occ[c].snapshot()
	}
	s.Slaves = make([]SlaveSnapshot, len(r.slaves))
	for i := range r.slaves {
		s.Slaves[i] = SlaveSnapshot{
			Name:     r.slaves[i].name,
			EnergyJ:  r.slaves[i].energy.sum,
			Accesses: r.slaves[i].accesses,
		}
	}
	return s
}

// PhaseEnergySum returns the sum of the per-phase buckets. The buckets
// are Kahan-compensated, so the result matches TotalEnergyJ to within
// a few ulps (the property suite pins the exact bound).
func (s *Snapshot) PhaseEnergySum() float64 {
	var sum float64
	for k := 0; k < int(NumPhaseKinds); k++ {
		sum += s.EnergyJ[k]
	}
	return sum
}

// fmtJ renders an energy in engineering units (the repo's tables work
// in nJ/pJ territory).
func fmtJ(v float64) string {
	a := math.Abs(v)
	switch {
	case a == 0:
		return "0"
	case a >= 1e-6:
		return fmt.Sprintf("%.4g uJ", v*1e6)
	case a >= 1e-9:
		return fmt.Sprintf("%.4g nJ", v*1e9)
	default:
		return fmt.Sprintf("%.4g pJ", v*1e12)
	}
}

func pct(part, whole float64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%5.1f%%", 100*part/whole)
}

// Table renders the per-run breakdown of one snapshot.
func (s Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report: layer %s", s.Layer)
	if s.Master != "" {
		fmt.Fprintf(&b, "  master %s", s.Master)
	}
	fmt.Fprintf(&b, "\n  cycles %d (skipped %d in %d jumps, procs %d)\n",
		s.Cycles, s.SkippedCycles, s.IdleSkips, s.ProcsRun)
	fmt.Fprintf(&b, "  tx accepted %d  completed %d  errored %d  rejected %d  retries %d\n",
		s.Accepted, s.Completed, s.Errored, s.Rejected, s.Retries)
	fmt.Fprintf(&b, "  beats %d  wait cycles %d  spans %d\n", s.Beats, s.WaitCycles, s.Spans)
	fmt.Fprintf(&b, "  energy %s\n", fmtJ(s.TotalEnergyJ))
	for k := 0; k < int(NumPhaseKinds); k++ {
		fmt.Fprintf(&b, "    %-10s %12s  %s\n",
			PhaseKind(k).String(), fmtJ(s.EnergyJ[k]), pct(s.EnergyJ[k], s.TotalEnergyJ))
	}
	if len(s.Slaves) > 0 {
		fmt.Fprintf(&b, "  per slave:\n")
		for _, sl := range s.Slaves {
			fmt.Fprintf(&b, "    %-10s %12s  %s  %d accesses\n",
				sl.Name, fmtJ(sl.EnergyJ), pct(sl.EnergyJ, s.TotalEnergyJ), sl.Accesses)
		}
		fmt.Fprintf(&b, "    %-10s %12s  %s\n",
			"(other)", fmtJ(s.UnattributedJ), pct(s.UnattributedJ, s.TotalEnergyJ))
	}
	fmt.Fprintf(&b, "  occupancy max:")
	for c := 0; c < int(ecbus.NumCategories); c++ {
		fmt.Fprintf(&b, "  %s %d/%d", ecbus.Category(c), s.Occupancy[c].Max, ecbus.MaxOutstanding)
	}
	fmt.Fprintf(&b, "\n  latency mean %.1f max %d cycles\n", s.Latency.Mean(), s.Latency.Max)
	if f := s.Fault; f != (FaultCounters{}) {
		fmt.Fprintf(&b, "  faults injected: %d read err  %d write err  %d corruptions  %d wait cycles  %d stretches\n",
			f.ReadErrors, f.WriteErrors, f.Corruptions, f.ExtraWaits, f.Stretched)
	}
	if a := s.Arb; a != (ArbCounters{}) {
		fmt.Fprintf(&b, "  arbitration: %d grants  %d grant waits  %d contention windows  %s wire energy\n",
			a.Grants, a.GrantWaits, a.Contentions, fmtJ(a.EnergyJ))
	}
	if fi := s.Fidelity; fi != (FidelityCounters{}) {
		fmt.Fprintf(&b, "  multi-fidelity: screened %d  pruned %d  confirmed %d  screen %.3fms  confirm %.3fms\n",
			fi.Screened, fi.Pruned, fi.Confirmed,
			float64(fi.ScreenNanos)/1e6, float64(fi.ConfirmNanos)/1e6)
	}
	if tc := s.Tear; tc != (TearCounters{}) {
		fmt.Fprintf(&b, "  tear: cut at cycle %d (program op %d)  %d words corrupted\n",
			tc.CutCycle, tc.CutOp, tc.CorruptWords)
	}
	if j := s.Journal; j != (JournalCounters{}) {
		fmt.Fprintf(&b, "  journal: %d records  %d markers  %d commits  %d in-place writes\n",
			j.Records, j.Markers, j.Commits, j.InPlaceWrites)
		if j.FramesReplayed+j.FramesDiscarded+j.WordsApplied > 0 {
			fmt.Fprintf(&b, "  replay: %d frames applied  %d discarded  %d words  scan %s  apply %s  finalize %s\n",
				j.FramesReplayed, j.FramesDiscarded, j.WordsApplied,
				fmtJ(j.ScanJ), fmtJ(j.ApplyJ), fmtJ(j.FinalizeJ))
		}
	}
	return b.String()
}

func diffU(b *strings.Builder, name string, a, x uint64) {
	if a == x {
		return
	}
	d := int64(x) - int64(a)
	fmt.Fprintf(b, "  %-12s %12d -> %-12d %+d", name, a, x, d)
	if a != 0 {
		fmt.Fprintf(b, " (%+.1f%%)", 100*float64(d)/float64(a))
	}
	b.WriteByte('\n')
}

func diffJ(b *strings.Builder, name string, a, x float64) {
	if a == x {
		return
	}
	d := x - a
	fmt.Fprintf(b, "  %-12s %12s -> %-12s %+s", name, fmtJ(a), fmtJ(x), fmtJ(d))
	if a != 0 {
		fmt.Fprintf(b, " (%+.1f%%)", 100*d/a)
	}
	b.WriteByte('\n')
}

// Diff renders the differences between two runs — clean vs fault plan,
// reference vs optimized, or layer vs layer. Identical fields are
// omitted; an empty body means the runs match on everything reported.
func Diff(a, x Snapshot) string {
	var b strings.Builder
	la, lx := a.Layer, x.Layer
	if la == "" {
		la = "A"
	}
	if lx == "" {
		lx = "B"
	}
	fmt.Fprintf(&b, "diff %s -> %s\n", la, lx)
	n := b.Len()
	diffU(&b, "cycles", a.Cycles, x.Cycles)
	diffU(&b, "skipped", a.SkippedCycles, x.SkippedCycles)
	diffU(&b, "accepted", a.Accepted, x.Accepted)
	diffU(&b, "completed", a.Completed, x.Completed)
	diffU(&b, "errored", a.Errored, x.Errored)
	diffU(&b, "rejected", a.Rejected, x.Rejected)
	diffU(&b, "retries", a.Retries, x.Retries)
	diffU(&b, "beats", a.Beats, x.Beats)
	diffU(&b, "wait-cycles", a.WaitCycles, x.WaitCycles)
	diffJ(&b, "energy", a.TotalEnergyJ, x.TotalEnergyJ)
	for k := 0; k < int(NumPhaseKinds); k++ {
		diffJ(&b, PhaseKind(k).String(), a.EnergyJ[k], x.EnergyJ[k])
	}
	for i := 0; i < len(a.Slaves) && i < len(x.Slaves); i++ {
		if a.Slaves[i].Name == x.Slaves[i].Name {
			diffJ(&b, "@"+a.Slaves[i].Name, a.Slaves[i].EnergyJ, x.Slaves[i].EnergyJ)
		}
	}
	diffU(&b, "arb-grants", a.Arb.Grants, x.Arb.Grants)
	diffU(&b, "arb-waits", a.Arb.GrantWaits, x.Arb.GrantWaits)
	diffU(&b, "arb-contend", a.Arb.Contentions, x.Arb.Contentions)
	diffJ(&b, "arb-energy", a.Arb.EnergyJ, x.Arb.EnergyJ)
	diffU(&b, "flt-rderr", a.Fault.ReadErrors, x.Fault.ReadErrors)
	diffU(&b, "flt-wrerr", a.Fault.WriteErrors, x.Fault.WriteErrors)
	diffU(&b, "flt-corrupt", a.Fault.Corruptions, x.Fault.Corruptions)
	diffU(&b, "flt-waits", a.Fault.ExtraWaits, x.Fault.ExtraWaits)
	diffU(&b, "flt-stretch", a.Fault.Stretched, x.Fault.Stretched)
	if b.Len() == n {
		fmt.Fprintf(&b, "  (no differences)\n")
	}
	return b.String()
}
