package metrics

import (
	"strings"
	"sync"
	"testing"
)

// A nil server registry is the free disabled state: every method is a
// no-op and the snapshot is zero.
func TestServerRegistryNil(t *testing.T) {
	var s *ServerRegistry
	s.Request("estimate")
	s.Outcome("estimate", ServeHit, 10)
	s.Compute(true)
	s.Evicted(3)
	s.Rejected(429)
	s.PeerFetch()
	s.PeerError()
	s.Steal()
	s.Requeue(2)
	snap := s.Snapshot()
	if snap.Computes != 0 || snap.Outcomes[ServeHit] != 0 || len(snap.Requests) != 0 ||
		snap.PeerFetches != 0 || snap.Requeues != 0 {
		t.Fatalf("nil registry recorded state: %+v", snap)
	}
}

func TestServerRegistryCounters(t *testing.T) {
	s := NewServer()
	s.Request("estimate")
	s.Request("estimate")
	s.Request("sweep")
	s.Outcome("estimate", ServeMiss, 1000)
	s.Outcome("estimate", ServeHit, 10)
	s.Outcome("sweep", ServeHit, 30)
	s.Outcome("sweep", ServeDedup, 500)
	s.Compute(false)
	s.Rejected(429)
	s.Rejected(503)
	s.Evicted(2)

	snap := s.Snapshot()
	if snap.Requests["estimate"] != 2 || snap.Requests["sweep"] != 1 {
		t.Fatalf("request counters wrong: %v", snap.Requests)
	}
	if snap.Outcomes[ServeHit] != 2 || snap.Outcomes[ServeMiss] != 1 || snap.Outcomes[ServeDedup] != 1 {
		t.Fatalf("outcome counters wrong: %v", snap.Outcomes)
	}
	if by := snap.OutcomesBy["estimate"]; by[ServeHit] != 1 || by[ServeMiss] != 1 || by[ServeDedup] != 0 {
		t.Fatalf("per-endpoint estimate outcomes wrong: %v", by)
	}
	if by := snap.OutcomesBy["sweep"]; by[ServeHit] != 1 || by[ServeDedup] != 1 || by[ServeMiss] != 0 {
		t.Fatalf("per-endpoint sweep outcomes wrong: %v", by)
	}
	if snap.Latency[ServeHit].Count != 2 || snap.Latency[ServeHit].Max != 30 {
		t.Fatalf("hit latency histogram wrong: %+v", snap.Latency[ServeHit])
	}
	if snap.Rejected429 != 1 || snap.Rejected503 != 1 || snap.Evicted != 2 {
		t.Fatalf("rejection/eviction counters wrong: %+v", snap)
	}
	text := snap.Table()
	for _, want := range []string{"estimate=2", "sweep=1", "hit=2", "dedup=1", "miss=1", "429=1", "503=1",
		"cache[estimate]", "cache[sweep]"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table() missing %q:\n%s", want, text)
		}
	}
	// A solo node's table carries no cluster line; the counters appear
	// once any of them is nonzero.
	if strings.Contains(text, "cluster") {
		t.Fatalf("solo snapshot rendered a cluster line:\n%s", text)
	}
}

func TestServerRegistryClusterCounters(t *testing.T) {
	s := NewServer()
	s.PeerFetch()
	s.PeerFetch()
	s.PeerError()
	s.Steal()
	s.Requeue(3)
	snap := s.Snapshot()
	if snap.PeerFetches != 2 || snap.PeerErrors != 1 || snap.Steals != 1 || snap.Requeues != 3 {
		t.Fatalf("cluster counters wrong: %+v", snap)
	}
	text := snap.Table()
	if !strings.Contains(text, "peer-fetch=2") || !strings.Contains(text, "requeues=3") {
		t.Fatalf("Table() missing cluster line:\n%s", text)
	}
}

// The registry is shared by concurrent handlers; hammer it under the
// race detector.
func TestServerRegistryConcurrent(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Request("estimate")
				s.Outcome("estimate", ServeOutcome(j%int(NumServeOutcomes)), uint64(j))
				s.Compute(j%10 == 0)
				s.Rejected(429)
				s.PeerFetch()
				s.Requeue(1)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Requests["estimate"] != 8000 || snap.Computes != 8000 || snap.Rejected429 != 8000 ||
		snap.PeerFetches != 8000 || snap.Requeues != 8000 {
		t.Fatalf("lost updates: %+v", snap)
	}
	var sum uint64
	for _, n := range snap.OutcomesBy["estimate"] {
		sum += n
	}
	if sum != 8000 {
		t.Fatalf("per-endpoint outcomes lost updates: %v", snap.OutcomesBy)
	}
}
