package metrics

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/ecbus"
)

func span(id uint64) Span {
	return Span{ID: id, Layer: "TL1", Master: "m", Slave: "fast", Kind: ecbus.Read,
		Issue: 1, Addr: 2, End: 3}
}

// failAfterWriter accepts n writes, then fails every subsequent one.
type failAfterWriter struct {
	n    int
	err  error
	got  bytes.Buffer
	post int // writes attempted after the first failure
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		w.post++
		return 0, w.err
	}
	w.n--
	return w.got.Write(p)
}

// A write error is sticky: the failing span is not retried, no further
// spans reach the writer, and Err reports the first failure verbatim.
func TestNDJSONSinkWriteErrorSticky(t *testing.T) {
	boom := errors.New("disk gone")
	w := &failAfterWriter{n: 2, err: boom}
	s := NewNDJSONSink(w)
	for i := uint64(0); i < 5; i++ {
		s.Emit(span(i))
	}
	if !errors.Is(s.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", s.Err(), boom)
	}
	if w.post != 1 {
		t.Fatalf("sink kept writing after the error: %d extra attempts", w.post)
	}
	lines := strings.Split(strings.TrimSuffix(w.got.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("writer holds %d records, want the 2 pre-error ones:\n%s", len(lines), w.got.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"id":`) || !strings.HasSuffix(l, "}") {
			t.Fatalf("pre-error record damaged: %q", l)
		}
	}
}

// shortWriter sinks half of every record and reports success — the
// io.Writer contract violation that used to truncate streams silently.
type shortWriter struct{ writes int }

func (w *shortWriter) Write(p []byte) (int, error) {
	w.writes++
	return len(p) / 2, nil
}

// A partial write with a nil error becomes a sticky io.ErrShortWrite:
// the stream stops instead of continuing past a torn record.
func TestNDJSONSinkPartialWrite(t *testing.T) {
	w := &shortWriter{}
	s := NewNDJSONSink(w)
	s.Emit(span(1))
	if !errors.Is(s.Err(), io.ErrShortWrite) {
		t.Fatalf("Err() = %v, want io.ErrShortWrite", s.Err())
	}
	s.Emit(span(2))
	s.Emit(span(3))
	if w.writes != 1 {
		t.Fatalf("sink kept writing after the short write: %d writes", w.writes)
	}
}

// The happy path stays allocation-free and well-formed after an
// interleaved error probe: a fresh sink on a good writer emits every
// span as one NDJSON line.
func TestNDJSONSinkRecoversOnFreshSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewNDJSONSink(&buf)
	for i := uint64(0); i < 3; i++ {
		s.Emit(span(i))
	}
	if s.Err() != nil {
		t.Fatalf("unexpected sink error: %v", s.Err())
	}
	if n := strings.Count(buf.String(), "\n"); n != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", n, buf.String())
	}
}
