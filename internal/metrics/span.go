package metrics

import (
	"io"
	"strconv"

	"repro/internal/ecbus"
)

// Span is one completed attempt of one bus transaction: the structured
// trace record emitted at retirement. A transaction that errors and is
// retried produces one span per attempt, distinguished by Attempt.
type Span struct {
	ID      uint64     // transaction ID
	Layer   string     // abstraction level label ("L0", "TL1", "TL2")
	Master  string     // master label (may be empty)
	Slave   string     // decoded slave name, "-" for a decode miss
	Kind    ecbus.Kind // fetch / read / write
	Burst   bool
	Attempt int32  // 0 for the first issue, N for the Nth retry
	Issue   uint64 // cycle the master first presented the request
	Addr    uint64 // cycle the address phase completed
	End     uint64 // cycle the final data phase completed
	Err     bool   // attempt ended in a bus error
}

// SpanSink receives completed spans. Implementations must not retain
// pointers into the span (it is passed by value and safe to keep).
type SpanSink interface {
	Emit(Span)
}

// RingSink is a fixed-capacity in-memory span sink for tests and
// interactive inspection: it keeps the most recent spans and counts
// the total ever emitted. The zero value is unusable; use NewRingSink.
type RingSink struct {
	buf   []Span
	next  int
	total uint64
}

// NewRingSink creates a ring sink retaining the last n spans (n >= 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Span, 0, n)}
}

// Emit implements SpanSink.
func (s *RingSink) Emit(sp Span) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, sp)
	} else {
		s.buf[s.next] = sp
	}
	s.next = (s.next + 1) % cap(s.buf)
	s.total++
}

// Total returns the number of spans ever emitted into the sink.
func (s *RingSink) Total() uint64 { return s.total }

// Spans returns the retained spans, oldest first, as a fresh slice.
func (s *RingSink) Spans() []Span {
	out := make([]Span, 0, len(s.buf))
	if len(s.buf) < cap(s.buf) {
		return append(out, s.buf...)
	}
	out = append(out, s.buf[s.next:]...)
	return append(out, s.buf[:s.next]...)
}

// NDJSONSink streams spans as newline-delimited JSON objects — one
// span per line — for offline tooling. Encoding is hand-rolled into a
// reused buffer so steady-state emission does not allocate. Write
// errors are sticky: the first one stops further output and is
// reported by Err.
type NDJSONSink struct {
	w   io.Writer
	buf []byte
	err error
}

// NewNDJSONSink creates an NDJSON sink writing to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, or nil.
func (s *NDJSONSink) Err() error { return s.err }

// Emit implements SpanSink.
func (s *NDJSONSink) Emit(sp Span) {
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, sp.ID, 10)
	b = append(b, `,"layer":`...)
	b = strconv.AppendQuote(b, sp.Layer)
	b = append(b, `,"master":`...)
	b = strconv.AppendQuote(b, sp.Master)
	b = append(b, `,"slave":`...)
	b = strconv.AppendQuote(b, sp.Slave)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, sp.Kind.String())
	b = append(b, `,"burst":`...)
	b = strconv.AppendBool(b, sp.Burst)
	b = append(b, `,"attempt":`...)
	b = strconv.AppendInt(b, int64(sp.Attempt), 10)
	b = append(b, `,"issue":`...)
	b = strconv.AppendUint(b, sp.Issue, 10)
	b = append(b, `,"addr":`...)
	b = strconv.AppendUint(b, sp.Addr, 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendUint(b, sp.End, 10)
	b = append(b, `,"err":`...)
	b = strconv.AppendBool(b, sp.Err)
	b = append(b, '}', '\n')
	s.buf = b
	n, err := s.w.Write(b)
	if err == nil && n < len(b) {
		// A writer that under-reports without erroring would silently
		// truncate the stream mid-record; treat it as the write error
		// the io.Writer contract says it should have returned.
		err = io.ErrShortWrite
	}
	if err != nil {
		s.err = err
	}
}
