package explore

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/javacard"
)

// The partial-failure contract of SweepWith: a failing workload or
// configuration never aborts the sweep, and the joined error is
// deterministic — preparation errors first in workload order, then
// per-configuration errors in cross-product (input) order, regardless
// of worker count or completion order.

// oversized returns a workload whose image cannot be prepared: the
// program exceeds the code ROM window, so rom.Load fails.
func oversized(name string) javacard.Workload {
	return javacard.Workload{
		Name:    name,
		Program: func() javacard.Program { return javacard.Program{Main: make([]byte, romSize+1)} },
		Runtime: javacard.DefaultRuntime,
	}
}

// unwrapJoin splits an errors.Join result back into its ordered parts.
func unwrapJoin(t *testing.T, err error) []error {
	t.Helper()
	if err == nil {
		t.Fatal("expected a joined error")
	}
	u, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("error %T does not unwrap to a list", err)
	}
	return u.Unwrap()
}

func TestSweepWithJoinOrdering(t *testing.T) {
	// The bad layer fails every configuration it appears in; the bad
	// workloads fail preparation before any configuration is built.
	cases := []struct {
		name      string
		workloads []javacard.Workload
		layers    []int
		// wantPrefix: substrings the first errors must carry, in order
		// (the preparation failures, in workload order).
		wantPrefix []string
		// wantJobs: for each subsequent error, substrings it must carry,
		// in cross-product order.
		wantJobs [][]string
		// wantResults: surviving results (both layer and count checked).
		wantResults int
	}{
		{
			name:        "prep errors precede config errors",
			workloads:   []javacard.Workload{oversized("too-big-a"), churn(), oversized("too-big-b")},
			layers:      []int{9},
			wantPrefix:  []string{"too-big-a", "too-big-b"},
			wantJobs:    jobErrWants(t, []string{"stack-churn"}, []int{9}),
			wantResults: 0,
		},
		{
			name:        "config errors in cross-product order",
			workloads:   []javacard.Workload{churn(), arith()},
			layers:      []int{9, 1},
			wantPrefix:  nil,
			wantJobs:    jobErrWants(t, []string{"stack-churn", "arith-loop"}, []int{9}),
			wantResults: 2 * len(javacard.Organizations) * len(AddrMaps),
		},
		{
			name:        "prep and config failures combine",
			workloads:   []javacard.Workload{oversized("too-big"), churn()},
			layers:      []int{1, 9},
			wantPrefix:  []string{"too-big"},
			wantJobs:    jobErrWants(t, []string{"stack-churn"}, []int{9}),
			wantResults: len(javacard.Organizations) * len(AddrMaps),
		},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers%d", tc.name, workers), func(t *testing.T) {
				results, err := SweepWith(SweepOpts{Workers: workers},
					tc.layers, javacard.Organizations, AddrMaps, tc.workloads)
				if len(results) != tc.wantResults {
					t.Fatalf("kept %d results, want %d", len(results), tc.wantResults)
				}
				for _, r := range results {
					if r.Layer == 9 {
						t.Fatalf("result leaked from failed layer: %+v", r)
					}
				}
				parts := unwrapJoin(t, err)
				want := len(tc.wantPrefix) + len(tc.wantJobs)
				if len(parts) != want {
					t.Fatalf("joined %d errors, want %d:\n%v", len(parts), want, err)
				}
				for i, sub := range tc.wantPrefix {
					if !strings.Contains(parts[i].Error(), sub) {
						t.Errorf("error %d = %q, want prep failure of %q", i, parts[i], sub)
					}
				}
				for i, subs := range tc.wantJobs {
					msg := parts[len(tc.wantPrefix)+i].Error()
					for _, sub := range subs {
						if !strings.Contains(msg, sub) {
							t.Errorf("error %d = %q missing %q", len(tc.wantPrefix)+i, msg, sub)
						}
					}
				}
			})
		}
	}
}

// jobErrWants builds the expected per-configuration error substrings in
// the sweep's input order: workload-major, then layer, organization and
// address map — exactly the loop nest SweepWith enqueues.
func jobErrWants(t *testing.T, badWorkloads []string, badLayers []int) [][]string {
	t.Helper()
	var wants [][]string
	for _, w := range badWorkloads {
		for _, l := range badLayers {
			for _, o := range javacard.Organizations {
				for _, m := range AddrMaps {
					wants = append(wants, []string{
						fmt.Sprintf("L%d/%v/%s", l, o, m),
						w,
						fmt.Sprintf("unsupported layer %d", l),
					})
				}
			}
		}
	}
	return wants
}

// TestSweepWithJoinMatchable: the joined error still answers errors.Is
// for sentinel inspection of individual failures.
func TestSweepWithJoinMatchable(t *testing.T) {
	sentinel := errors.New("probe")
	// A joined error built the same way SweepWith builds its result must
	// expose each part; this guards the contract the ordering test
	// relies on (errors.Join, not string concatenation).
	joined := errors.Join(fmt.Errorf("wrap: %w", sentinel), errors.New("other"))
	if !errors.Is(joined, sentinel) {
		t.Fatal("joined error lost wrapped sentinel")
	}
}
