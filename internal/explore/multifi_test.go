package explore

import (
	"math"
	"strings"
	"testing"

	"repro/internal/calib"
	"repro/internal/javacard"
	"repro/internal/metrics"
	"repro/internal/platform"
)

// mfSpace is the design space the multi-fidelity tests sweep: all three
// layers, every organization, the default maps, a clean and a faulted
// plan — large enough that pruning has something to do, small enough
// for the race detector.
func mfSpace() (layers []int, orgs []javacard.Organization, maps []string, faults []string, wls []javacard.Workload) {
	return []int{1, 2, 3}, javacard.Organizations, AddrMaps, []string{"", "flaky"}, javacard.Workloads()
}

func resultKey(r Result) string { return r.Config.String() + "|" + r.Workload }

// TestMultiFidelityFrontierFidelity is the pruning soundness
// regression: the confirmed set must contain every point of the
// exhaustive sweep's Pareto frontier, and each confirmed result must be
// bit-identical to its exhaustive counterpart.
func TestMultiFidelityFrontierFidelity(t *testing.T) {
	layers, orgs, maps, faults, wls := mfSpace()
	opts := SweepOpts{Faults: faults}

	exhaustive, err := SweepWith(opts, layers, orgs, maps, wls)
	if err != nil {
		t.Fatalf("exhaustive sweep: %v", err)
	}
	reg := metrics.New("sweep")
	mf, err := SweepMultiFidelity(MultiFidelityOpts{SweepOpts: opts, Registry: reg}, layers, orgs, maps, wls)
	if err != nil {
		t.Fatalf("multi-fidelity sweep: %v", err)
	}

	if mf.ScreenedConfigs != len(exhaustive) {
		t.Fatalf("screened %d configs, exhaustive evaluated %d", mf.ScreenedConfigs, len(exhaustive))
	}
	if mf.PrunedConfigs == 0 {
		t.Error("expected the screen to prune at least one configuration")
	}
	if mf.ConfirmedConfigs == 0 || mf.ConfirmedConfigs >= mf.ScreenedConfigs {
		t.Errorf("confirmed %d of %d screened: want 0 < confirmed < screened",
			mf.ConfirmedConfigs, mf.ScreenedConfigs)
	}
	if mf.PrunedConfigs+mf.ConfirmedConfigs != mf.ScreenedConfigs {
		t.Errorf("pruned %d + confirmed %d != screened %d",
			mf.PrunedConfigs, mf.ConfirmedConfigs, mf.ScreenedConfigs)
	}

	// Bit-identical confirmation: every confirmed result equals the
	// exhaustive evaluation of the same configuration, to the last bit.
	exact := map[string]Result{}
	for _, r := range exhaustive {
		exact[resultKey(r)] = r
	}
	for _, c := range mf.Confirmed {
		e, ok := exact[resultKey(c)]
		if !ok {
			t.Fatalf("confirmed %s not in exhaustive result set", resultKey(c))
		}
		if math.Float64bits(c.BusEnergyJ) != math.Float64bits(e.BusEnergyJ) ||
			c.Cycles != e.Cycles || c.Transactions != e.Transactions ||
			c.Retries != e.Retries || c.Steps != e.Steps {
			t.Errorf("%s: confirmed result differs from exhaustive:\n  confirmed %+v\n  exhaustive %+v",
				resultKey(c), c, e)
		}
	}

	// Frontier recall: the exhaustive Pareto frontier survives pruning.
	confirmed := map[string]bool{}
	for _, c := range mf.Confirmed {
		confirmed[resultKey(c)] = true
	}
	frontier := Pareto(exhaustive)
	if len(frontier) == 0 {
		t.Fatal("exhaustive frontier is empty")
	}
	for _, f := range frontier {
		if !confirmed[resultKey(f)] {
			t.Errorf("frontier point %s was pruned", resultKey(f))
		}
	}

	// The screening predictions cover the full space in cross-product
	// order, and Kept mirrors the confirmed set.
	if len(mf.Screened) != mf.ScreenedConfigs {
		t.Fatalf("Screened has %d entries, want %d", len(mf.Screened), mf.ScreenedConfigs)
	}
	for _, p := range mf.Screened {
		key := p.Config.String() + "|" + p.Workload
		if p.Kept != confirmed[key] {
			t.Errorf("%s: Kept=%v but confirmed=%v", key, p.Kept, confirmed[key])
		}
		if p.Kept && p.Config.Layer != 3 {
			// Sanity: predictions of kept timed configs should sit within
			// the layer band of the exact value.
			e := exact[key]
			rel := math.Abs(p.EnergyJ-e.BusEnergyJ) / e.BusEnergyJ
			if rel > mf.EpsEnergy[p.Config.Layer] {
				t.Errorf("%s: prediction off by %.4f, beyond ε=%.4f", key, rel, mf.EpsEnergy[p.Config.Layer])
			}
		}
	}

	// The registry carries the sweep-level fidelity attribution.
	fi := reg.Snapshot().Fidelity
	if fi.Screened != uint64(mf.ScreenedConfigs) || fi.Pruned != uint64(mf.PrunedConfigs) ||
		fi.Confirmed != uint64(mf.ConfirmedConfigs) {
		t.Errorf("registry fidelity counters %+v disagree with result %d/%d/%d",
			fi, mf.ScreenedConfigs, mf.PrunedConfigs, mf.ConfirmedConfigs)
	}
	if fi.ScreenNanos == 0 || fi.ConfirmNanos == 0 {
		t.Error("fidelity phase timings should be nonzero")
	}
}

// TestMultiFidelityEpsilonDerived: the pruning margins are the
// calibrated residual bands inflated by the safety factor — derived,
// never hand-picked.
func TestMultiFidelityEpsilonDerived(t *testing.T) {
	layers, orgs, maps, faults, wls := mfSpace()
	model, err := DefaultModel()
	if err != nil {
		t.Fatalf("DefaultModel: %v", err)
	}
	const safety = 3
	mf, err := SweepMultiFidelity(MultiFidelityOpts{SweepOpts: SweepOpts{Faults: faults}, Safety: safety},
		layers, orgs, maps, wls)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, l := range layers {
		target := l
		if l == 3 {
			target = AnalyticTargetLayer
		}
		var wantE, wantC float64
		for _, o := range orgs {
			lm, ok := model.Fits[calib.GroupKey{Layer: target, Group: calibGroup(o, "")}]
			if !ok {
				t.Fatalf("model has no fit for layer %d org %s", target, o)
			}
			wantE = math.Max(wantE, safety*lm.EnergyMaxRel)
			wantC = math.Max(wantC, safety*lm.CycleMaxRel)
		}
		if mf.EpsEnergy[l] != wantE || mf.EpsCycles[l] != wantC {
			t.Errorf("layer %d: ε = %g/%g, want safety×band = %g/%g",
				l, mf.EpsEnergy[l], mf.EpsCycles[l], wantE, wantC)
		}
		if mf.EpsEnergy[l] <= 0 {
			t.Errorf("layer %d: energy ε should be positive", l)
		}
	}
}

// TestMultiFidelityDeterministic: two runs with different worker counts
// agree bit-for-bit on predictions, pruning decisions and confirmed
// results.
func TestMultiFidelityDeterministic(t *testing.T) {
	layers, orgs, maps, faults, wls := mfSpace()
	run := func(workers int) MultiFidelityResult {
		mf, err := SweepMultiFidelity(MultiFidelityOpts{SweepOpts: SweepOpts{Faults: faults, Workers: workers}},
			layers, orgs, maps, wls)
		if err != nil {
			t.Fatalf("sweep (workers=%d): %v", workers, err)
		}
		return mf
	}
	a, b := run(1), run(7)
	if len(a.Screened) != len(b.Screened) || len(a.Confirmed) != len(b.Confirmed) {
		t.Fatalf("shape differs: %d/%d screened, %d/%d confirmed",
			len(a.Screened), len(b.Screened), len(a.Confirmed), len(b.Confirmed))
	}
	for i := range a.Screened {
		pa, pb := a.Screened[i], b.Screened[i]
		if pa.Config != pb.Config || pa.Workload != pb.Workload || pa.Kept != pb.Kept ||
			math.Float64bits(pa.EnergyJ) != math.Float64bits(pb.EnergyJ) ||
			math.Float64bits(pa.Cycles) != math.Float64bits(pb.Cycles) {
			t.Errorf("screened[%d] differs across worker counts: %+v vs %+v", i, pa, pb)
		}
	}
	for i := range a.Confirmed {
		ca, cb := a.Confirmed[i], b.Confirmed[i]
		if resultKey(ca) != resultKey(cb) || math.Float64bits(ca.BusEnergyJ) != math.Float64bits(cb.BusEnergyJ) ||
			ca.Cycles != cb.Cycles {
			t.Errorf("confirmed[%d] differs across worker counts: %s vs %s", i, resultKey(ca), resultKey(cb))
		}
	}
}

// TestRunLayer3Accuracy: the analytic layer's prediction of a clean
// configuration stays within the calibrated band of the exact TL2
// figure.
func TestRunLayer3Accuracy(t *testing.T) {
	model, err := DefaultModel()
	if err != nil {
		t.Fatalf("DefaultModel: %v", err)
	}
	char := platform.DefaultCharTable()
	for _, o := range javacard.Organizations {
		for _, m := range AddrMaps {
			w := javacard.Workloads()[0]
			exact, err := Run(Config{Layer: 2, Org: o, AddrMap: m}, w, char)
			if err != nil {
				t.Fatalf("L2 run: %v", err)
			}
			pred, err := Run(Config{Layer: 3, Org: o, AddrMap: m}, w, char)
			if err != nil {
				t.Fatalf("L3 run: %v", err)
			}
			lm := model.Fits[calib.GroupKey{Layer: 2, Group: calibGroup(o, "")}]
			relE := math.Abs(pred.BusEnergyJ-exact.BusEnergyJ) / exact.BusEnergyJ
			if relE > lm.EnergyMaxRel {
				t.Errorf("%s/%s: L3 energy off by %.5f, band %.5f", o, m, relE, lm.EnergyMaxRel)
			}
			relC := math.Abs(float64(pred.Cycles)-float64(exact.Cycles)) / float64(exact.Cycles)
			if relC > lm.CycleMaxRel+1.0/float64(exact.Cycles) { // rounding to integer cycles
				t.Errorf("%s/%s: L3 cycles off by %.2e, band %.2e", o, m, relC, lm.CycleMaxRel)
			}
			if pred.Transactions != exact.Transactions || pred.Retries != exact.Retries || pred.Steps != exact.Steps {
				t.Errorf("%s/%s: counting-run stats differ from timed run: %+v vs %+v", o, m, pred, exact)
			}
		}
	}
}

func TestParseFidelity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fidelity
	}{
		{"", FidelityExhaustive},
		{"exhaustive", FidelityExhaustive},
		{"screen", FidelityScreen},
		{"confirm", FidelityConfirm},
	} {
		got, err := ParseFidelity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFidelity(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseFidelity("quick"); err == nil || !strings.Contains(err.Error(), "valid: exhaustive, screen, confirm") {
		t.Errorf("ParseFidelity(quick) should fail with vocabulary, got %v", err)
	}
}

func TestParseLayersValidation(t *testing.T) {
	got, err := ParseLayers(" 1, 3 ,2")
	if err != nil {
		t.Fatalf("ParseLayers: %v", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Errorf("ParseLayers = %v, want [1 3 2]", got)
	}
	for _, bad := range []string{"0", "4", "two", "1,9", ""} {
		if _, err := ParseLayers(bad); err == nil {
			t.Errorf("ParseLayers(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "valid layers: 1, 2, 3") {
			t.Errorf("ParseLayers(%q) error should list valid layers, got %v", bad, err)
		}
	}
}

func TestBaseForMapVocabulary(t *testing.T) {
	seen := map[uint64]string{}
	for _, name := range AllAddrMaps {
		b, ok := BaseForMap(name)
		if !ok {
			t.Fatalf("BaseForMap(%q) missing", name)
		}
		if b%16 != 0 {
			t.Errorf("map %q base %#x not 16-byte aligned (burst org requires it)", name, b)
		}
		if prev, dup := seen[b]; dup {
			t.Errorf("maps %q and %q share base %#x", name, prev, b)
		}
		seen[b] = name
	}
	if _, ok := BaseForMap("nowhere"); ok {
		t.Error(`BaseForMap("nowhere") should not resolve`)
	}
	if AllAddrMaps[0] != "near" || AllAddrMaps[1] != "far" {
		t.Error("AllAddrMaps must keep the default pair first")
	}
}

func TestMultiFidelityRejectsBadLayer(t *testing.T) {
	_, _, _, _, wls := mfSpace()
	_, err := SweepMultiFidelity(MultiFidelityOpts{}, []int{1, 9}, javacard.Organizations, AddrMaps, wls)
	if err == nil || !strings.Contains(err.Error(), "valid layers: 1, 2, 3") {
		t.Errorf("bad layer should fail with vocabulary, got %v", err)
	}
}

func TestCalibrateRejectsLayer3(t *testing.T) {
	_, err := Calibrate(t.Context(), SweepOpts{}, []int{1, 3}, javacard.Organizations[:1], AddrMaps[:1], javacard.Workloads()[:1])
	if err == nil || !strings.Contains(err.Error(), "cannot calibrate against layer 3") {
		t.Errorf("calibrating against layer 3 should fail, got %v", err)
	}
}
