package explore

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/calib"
	"repro/internal/fault"
	"repro/internal/javacard"
	"repro/internal/tlm3"
)

// CalibrationFaults is the default fault axis of a calibration run: the
// full named plan vocabulary (clean included), so the fitted band
// covers every fault plan a sweep can ask the model to screen. A model
// calibrated on a narrower axis would carry an optimistically small
// residual band and could prune true frontier points of the plans it
// never saw.
var CalibrationFaults = fault.Names

// calibGroup is the calibration grouping: one independent regression
// per SFR organization, and per (organization, arbitration policy) for
// multi-master configurations. The organization changes how
// transactions are shaped (beat widths, burst framing, staging), i.e.
// the per-event pricing itself — exactly what a single linear
// coefficient set cannot absorb; an arbitration policy changes the
// traffic mix (three masters' interleaved streams plus the grant
// wires' own energy), so contended runs get their own coefficients.
// Single-master groups keep the historical org-only key, which keeps
// existing calibrations and content hashes stable.
func calibGroup(org javacard.Organization, arbPolicy string) string {
	if arbPolicy == "" || arbPolicy == "none" {
		return org.String()
	}
	return org.String() + "+arb:" + arbPolicy
}

// CalibrationArbs is the default arbitration axis of a calibration
// run: both arbiter policies, each calibrated clean-only (the fault ×
// arbitration cross product is exempt from ε-pruning, so its band is
// never consulted — see SweepMultiFidelityContext).
var CalibrationArbs = ArbPolicies

// Calibrate fits the layer-3 analytic model: it measures every
// configuration of the given axes exactly at the timed layers (the
// standard parallel sweep), counts each configuration's traffic once
// with the layer-3 counting bus, and regresses per-event-count
// coefficients per (layer, group) via deterministic least squares —
// one group per organization, plus one per (organization, arbitration
// policy) when opts.Arbs names policies. The faults axis comes from
// opts.Faults, defaulting to CalibrationFaults; arbitrated groups are
// measured on clean runs only.
//
// Calibration is strict about failures: a configuration that cannot be
// measured poisons the fit, so any sweep error aborts instead of
// fitting on a partial design.
func Calibrate(ctx context.Context, opts SweepOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) (calib.Model, error) {
	sweepOpts := opts
	sweepOpts.OnResult = nil
	sweepOpts.Metrics = false
	sweepOpts.Arbs = nil
	if len(sweepOpts.Faults) == 0 {
		sweepOpts.Faults = CalibrationFaults
	}
	for _, l := range layers {
		if l == 3 {
			return calib.Model{}, fmt.Errorf("explore: cannot calibrate against layer 3 (it is the model under calibration)")
		}
	}

	results, err := SweepContext(ctx, sweepOpts, layers, orgs, maps, workloads)
	if err != nil {
		return calib.Model{}, fmt.Errorf("explore: calibration sweep: %w", err)
	}

	// The arbitrated groups get their own clean-only measurement sweep:
	// the contended system's traffic (and the grant wires' energy) is
	// what their coefficients must price.
	var arbPolicies []string
	for _, a := range opts.Arbs {
		if canonArb(a) != "" {
			arbPolicies = append(arbPolicies, canonArb(a))
		}
	}
	if len(arbPolicies) > 0 {
		arbOpts := sweepOpts
		arbOpts.Faults = []string{""}
		arbOpts.Arbs = arbPolicies
		arbResults, err := SweepContext(ctx, arbOpts, layers, orgs, maps, workloads)
		if err != nil {
			return calib.Model{}, fmt.Errorf("explore: arbitration calibration sweep: %w", err)
		}
		results = append(results, arbResults...)
	}

	// One counting run per unique (workload, org, map, fault, arb): the
	// feature vector does not depend on the measured layer. The unique
	// shapes are collected from the measured results themselves so the
	// two sweeps above stay the single source of the calibrated space.
	preps := map[string]prepared{}
	for _, w := range workloads {
		p, err := prepare(w)
		if err != nil {
			return calib.Model{}, fmt.Errorf("explore: calibration %s: %w", w.Name, err)
		}
		preps[w.Name] = p
	}
	type fkey struct {
		wl            string
		org           javacard.Organization
		m, fault, arb string
	}
	feats := map[fkey][]float64{}
	for _, r := range results {
		k := fkey{r.Workload, r.Org, r.AddrMap, r.Fault, r.Arb}
		if _, ok := feats[k]; ok {
			continue
		}
		cfg := Config{Layer: 3, Org: r.Org, AddrMap: r.AddrMap, Fault: r.Fault, Arb: r.Arb}
		fv, _, err := countRun(ctx, cfg, preps[r.Workload])
		if err != nil {
			return calib.Model{}, fmt.Errorf("explore: calibration count %v/%s: %w", cfg, r.Workload, err)
		}
		feats[k] = fv.Vector()
	}

	samples := make([]calib.Sample, 0, len(results))
	for _, r := range results {
		x, ok := feats[fkey{r.Workload, r.Org, r.AddrMap, r.Fault, r.Arb}]
		if !ok {
			return calib.Model{}, fmt.Errorf("explore: calibration missing features for %v/%s", r.Config, r.Workload)
		}
		samples = append(samples, calib.Sample{
			Layer:   r.Layer,
			Group:   calibGroup(r.Org, r.Arb),
			Key:     r.Config.String() + "|" + r.Workload,
			X:       x,
			EnergyJ: r.BusEnergyJ,
			Cycles:  float64(r.Cycles),
		})
	}
	m, err := calib.Fit(tlm3.FeatureNames(), samples)
	if err != nil {
		return calib.Model{}, fmt.Errorf("explore: calibration fit: %w", err)
	}
	return m, nil
}

var (
	defaultModelOnce sync.Once
	defaultModelVal  calib.Model
	defaultModelErr  error
)

// DefaultModel returns the memoized calibration over the full default
// design space: timed layers 1 and 2, every SFR organization, every
// named address map, the standard workloads, the full fault-plan
// vocabulary, and both arbitration policies (clean-only). The first
// caller pays the calibration sweep (a few hundred milliseconds);
// everyone after shares the fitted value.
func DefaultModel() (*calib.Model, error) {
	defaultModelOnce.Do(func() {
		defaultModelVal, defaultModelErr = Calibrate(context.Background(), SweepOpts{Arbs: CalibrationArbs},
			[]int{1, 2}, javacard.Organizations, AllAddrMaps, javacard.Workloads())
	})
	if defaultModelErr != nil {
		return nil, defaultModelErr
	}
	return &defaultModelVal, nil
}
