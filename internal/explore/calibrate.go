package explore

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/calib"
	"repro/internal/fault"
	"repro/internal/javacard"
	"repro/internal/tlm3"
)

// CalibrationFaults is the default fault axis of a calibration run: the
// full named plan vocabulary (clean included), so the fitted band
// covers every fault plan a sweep can ask the model to screen. A model
// calibrated on a narrower axis would carry an optimistically small
// residual band and could prune true frontier points of the plans it
// never saw.
var CalibrationFaults = fault.Names

// calibGroup is the calibration grouping: one independent regression
// per SFR organization. The organization changes how transactions are
// shaped (beat widths, burst framing, staging), i.e. the per-event
// pricing itself — exactly what a single linear coefficient set cannot
// absorb. Grouping by it tightens the residual band by roughly two
// orders of magnitude, which is what makes ε-pruning decisive.
func calibGroup(org javacard.Organization) string { return org.String() }

// Calibrate fits the layer-3 analytic model: it measures every
// configuration of the given axes exactly at the timed layers (the
// standard parallel sweep), counts each configuration's traffic once
// with the layer-3 counting bus, and regresses per-event-count
// coefficients per (layer, organization) via deterministic least
// squares. The faults axis comes from opts.Faults, defaulting to
// CalibrationFaults.
//
// Calibration is strict about failures: a configuration that cannot be
// measured poisons the fit, so any sweep error aborts instead of
// fitting on a partial design.
func Calibrate(ctx context.Context, opts SweepOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) (calib.Model, error) {
	sweepOpts := opts
	sweepOpts.OnResult = nil
	sweepOpts.Metrics = false
	if len(sweepOpts.Faults) == 0 {
		sweepOpts.Faults = CalibrationFaults
	}
	for _, l := range layers {
		if l == 3 {
			return calib.Model{}, fmt.Errorf("explore: cannot calibrate against layer 3 (it is the model under calibration)")
		}
	}

	results, err := SweepContext(ctx, sweepOpts, layers, orgs, maps, workloads)
	if err != nil {
		return calib.Model{}, fmt.Errorf("explore: calibration sweep: %w", err)
	}

	// One counting run per unique (workload, org, map, fault): the
	// feature vector does not depend on the measured layer.
	type fkey struct {
		wl       string
		org      javacard.Organization
		m, fault string
	}
	feats := map[fkey][]float64{}
	for _, w := range workloads {
		p, err := prepare(w)
		if err != nil {
			return calib.Model{}, fmt.Errorf("explore: calibration %s: %w", w.Name, err)
		}
		for _, o := range orgs {
			for _, m := range maps {
				for _, f := range sweepOpts.Faults {
					cfg := Config{Layer: 3, Org: o, AddrMap: m, Fault: f}
					fv, _, err := countRun(ctx, cfg, p)
					if err != nil {
						return calib.Model{}, fmt.Errorf("explore: calibration count %v/%s: %w", cfg, w.Name, err)
					}
					feats[fkey{w.Name, o, m, f}] = fv.Vector()
				}
			}
		}
	}

	samples := make([]calib.Sample, 0, len(results))
	for _, r := range results {
		x, ok := feats[fkey{r.Workload, r.Org, r.AddrMap, r.Fault}]
		if !ok {
			return calib.Model{}, fmt.Errorf("explore: calibration missing features for %v/%s", r.Config, r.Workload)
		}
		samples = append(samples, calib.Sample{
			Layer:   r.Layer,
			Group:   calibGroup(r.Org),
			Key:     r.Config.String() + "|" + r.Workload,
			X:       x,
			EnergyJ: r.BusEnergyJ,
			Cycles:  float64(r.Cycles),
		})
	}
	m, err := calib.Fit(tlm3.FeatureNames(), samples)
	if err != nil {
		return calib.Model{}, fmt.Errorf("explore: calibration fit: %w", err)
	}
	return m, nil
}

var (
	defaultModelOnce sync.Once
	defaultModelVal  calib.Model
	defaultModelErr  error
)

// DefaultModel returns the memoized calibration over the full default
// design space: timed layers 1 and 2, every SFR organization, every
// named address map, the standard workloads, and the full fault-plan
// vocabulary. The first caller pays the calibration sweep (a few
// hundred milliseconds); everyone after shares the fitted value.
func DefaultModel() (*calib.Model, error) {
	defaultModelOnce.Do(func() {
		defaultModelVal, defaultModelErr = Calibrate(context.Background(), SweepOpts{},
			[]int{1, 2}, javacard.Organizations, AllAddrMaps, javacard.Workloads())
	})
	if defaultModelErr != nil {
		return nil, defaultModelErr
	}
	return &defaultModelVal, nil
}
