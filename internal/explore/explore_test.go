package explore

import (
	"strings"
	"testing"

	"repro/internal/javacard"
	"repro/internal/platform"
)

func churn() javacard.Workload {
	return javacard.Workload{Name: "stack-churn", Make: func() (javacard.Program, *javacard.MemoryManager, *javacard.Firewall) {
		return javacard.StackChurn(8, 10), javacard.NewMemoryManager(), javacard.NewFirewall()
	}}
}

func TestRunSingleConfig(t *testing.T) {
	r, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near"}, churn(), platform.DefaultCharTable())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.BusEnergyJ <= 0 || r.Transactions == 0 || r.Steps == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.EnergyPerStep() <= 0 {
		t.Fatal("no per-bytecode energy")
	}
}

func TestOrganizationEnergyOrdering(t *testing.T) {
	// On the stack-bound workload, the byte-staged organization costs
	// the most bus energy, burst batching the least — the case study's
	// headline observation.
	char := platform.DefaultCharTable()
	e := map[javacard.Organization]float64{}
	for _, org := range javacard.Organizations {
		r, err := Run(Config{Layer: 1, Org: org, AddrMap: "near"}, churn(), char)
		if err != nil {
			t.Fatal(err)
		}
		e[org] = r.BusEnergyJ
	}
	if !(e[javacard.OrgByte] > e[javacard.OrgHalf]) {
		t.Errorf("byte-staged (%.3e) not costlier than halfword (%.3e)",
			e[javacard.OrgByte], e[javacard.OrgHalf])
	}
	if !(e[javacard.OrgBurst] < e[javacard.OrgHalf]) {
		t.Errorf("burst (%.3e) not cheaper than halfword (%.3e)",
			e[javacard.OrgBurst], e[javacard.OrgHalf])
	}
}

func TestAddressMapAffectsEnergy(t *testing.T) {
	// With interleaved code fetches, a far (high-Hamming) stack base
	// toggles more address wires per alternation than a near one.
	char := platform.DefaultCharTable()
	near, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near"}, churn(), char)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "far"}, churn(), char)
	if err != nil {
		t.Fatal(err)
	}
	if far.BusEnergyJ <= near.BusEnergyJ {
		t.Errorf("far map (%.3e) not costlier than near map (%.3e)",
			far.BusEnergyJ, near.BusEnergyJ)
	}
	// Address map must not change functional cycles much (same protocol).
	if far.Transactions != near.Transactions {
		t.Errorf("transaction counts differ across maps: %d vs %d",
			far.Transactions, near.Transactions)
	}
}

func TestLayer2FasterToSimulateSameShape(t *testing.T) {
	// Layer 2 must agree with layer 1 on the ordering of organizations
	// even though its absolute numbers differ — that is what makes the
	// faster model usable for exploration.
	char := platform.DefaultCharTable()
	order := func(layer int) []javacard.Organization {
		type oe struct {
			o javacard.Organization
			e float64
		}
		var xs []oe
		for _, org := range javacard.Organizations {
			r, err := Run(Config{Layer: layer, Org: org, AddrMap: "near"}, churn(), char)
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, oe{org, r.BusEnergyJ})
		}
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if xs[j].e < xs[i].e {
					xs[i], xs[j] = xs[j], xs[i]
				}
			}
		}
		var out []javacard.Organization
		for _, x := range xs {
			out = append(out, x.o)
		}
		return out
	}
	o1, o2 := order(1), order(2)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("energy ordering differs between layers: L1 %v, L2 %v", o1, o2)
		}
	}
}

func TestSweepAndTable(t *testing.T) {
	results, err := Sweep([]int{1, 2}, javacard.Organizations, AddrMaps,
		[]javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(javacard.Organizations)*2 {
		t.Fatalf("sweep produced %d results", len(results))
	}
	tab := Table(results)
	for _, want := range []string{"stack-churn", "L1/", "L2/", "burst4", "near", "far"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	front := Pareto(results)
	if len(front) == 0 || len(front) >= len(results) {
		t.Fatalf("pareto front size %d of %d implausible", len(front), len(results))
	}
}

func TestRunRejectsBadLayer(t *testing.T) {
	if _, err := Run(Config{Layer: 0, Org: javacard.OrgHalf, AddrMap: "near"}, churn(), platform.DefaultCharTable()); err == nil {
		t.Fatal("layer 0 exploration should be rejected (no TLM power model)")
	}
}
