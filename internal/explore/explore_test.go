package explore

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/javacard"
	"repro/internal/platform"
)

func churn() javacard.Workload {
	return javacard.Workload{
		Name:    "stack-churn",
		Program: func() javacard.Program { return javacard.StackChurn(8, 10) },
		Runtime: javacard.DefaultRuntime,
	}
}

func TestRunSingleConfig(t *testing.T) {
	r, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near"}, churn(), platform.DefaultCharTable())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.BusEnergyJ <= 0 || r.Transactions == 0 || r.Steps == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.EnergyPerStep() <= 0 {
		t.Fatal("no per-bytecode energy")
	}
}

func TestOrganizationEnergyOrdering(t *testing.T) {
	// On the stack-bound workload, the byte-staged organization costs
	// the most bus energy, burst batching the least — the case study's
	// headline observation.
	char := platform.DefaultCharTable()
	e := map[javacard.Organization]float64{}
	for _, org := range javacard.Organizations {
		r, err := Run(Config{Layer: 1, Org: org, AddrMap: "near"}, churn(), char)
		if err != nil {
			t.Fatal(err)
		}
		e[org] = r.BusEnergyJ
	}
	if !(e[javacard.OrgByte] > e[javacard.OrgHalf]) {
		t.Errorf("byte-staged (%.3e) not costlier than halfword (%.3e)",
			e[javacard.OrgByte], e[javacard.OrgHalf])
	}
	if !(e[javacard.OrgBurst] < e[javacard.OrgHalf]) {
		t.Errorf("burst (%.3e) not cheaper than halfword (%.3e)",
			e[javacard.OrgBurst], e[javacard.OrgHalf])
	}
}

func TestAddressMapAffectsEnergy(t *testing.T) {
	// With interleaved code fetches, a far (high-Hamming) stack base
	// toggles more address wires per alternation than a near one.
	char := platform.DefaultCharTable()
	near, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near"}, churn(), char)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "far"}, churn(), char)
	if err != nil {
		t.Fatal(err)
	}
	if far.BusEnergyJ <= near.BusEnergyJ {
		t.Errorf("far map (%.3e) not costlier than near map (%.3e)",
			far.BusEnergyJ, near.BusEnergyJ)
	}
	// Address map must not change functional cycles much (same protocol).
	if far.Transactions != near.Transactions {
		t.Errorf("transaction counts differ across maps: %d vs %d",
			far.Transactions, near.Transactions)
	}
}

func TestLayer2FasterToSimulateSameShape(t *testing.T) {
	// Layer 2 must agree with layer 1 on the ordering of organizations
	// even though its absolute numbers differ — that is what makes the
	// faster model usable for exploration.
	char := platform.DefaultCharTable()
	order := func(layer int) []javacard.Organization {
		type oe struct {
			o javacard.Organization
			e float64
		}
		var xs []oe
		for _, org := range javacard.Organizations {
			r, err := Run(Config{Layer: layer, Org: org, AddrMap: "near"}, churn(), char)
			if err != nil {
				t.Fatal(err)
			}
			xs = append(xs, oe{org, r.BusEnergyJ})
		}
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if xs[j].e < xs[i].e {
					xs[i], xs[j] = xs[j], xs[i]
				}
			}
		}
		var out []javacard.Organization
		for _, x := range xs {
			out = append(out, x.o)
		}
		return out
	}
	o1, o2 := order(1), order(2)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("energy ordering differs between layers: L1 %v, L2 %v", o1, o2)
		}
	}
}

func TestSweepAndTable(t *testing.T) {
	results, err := Sweep([]int{1, 2}, javacard.Organizations, AddrMaps,
		[]javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(javacard.Organizations)*2 {
		t.Fatalf("sweep produced %d results", len(results))
	}
	tab := Table(results)
	for _, want := range []string{"stack-churn", "L1/", "L2/", "burst4", "near", "far"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	front := Pareto(results)
	if len(front) == 0 || len(front) >= len(results) {
		t.Fatalf("pareto front size %d of %d implausible", len(front), len(results))
	}
}

func TestRunRejectsBadLayer(t *testing.T) {
	if _, err := Run(Config{Layer: 0, Org: javacard.OrgHalf, AddrMap: "near"}, churn(), platform.DefaultCharTable()); err == nil {
		t.Fatal("layer 0 exploration should be rejected (no TLM power model)")
	}
}

// arith returns a second small workload so the determinism test covers
// the per-workload prepare/share path with more than one shared image.
func arith() javacard.Workload {
	return javacard.Workload{
		Name:    "arith-loop",
		Program: func() javacard.Program { return javacard.ArithLoop(20) },
		Runtime: javacard.DefaultRuntime,
	}
}

func TestSweepParallelDeterministic(t *testing.T) {
	// The parallel sweep must return results in input order, so its
	// rendered table is byte-identical to the serial sweep's.
	layers := []int{1, 2}
	wls := []javacard.Workload{churn(), arith()}
	serial, err := SweepWith(SweepOpts{Workers: 1}, layers, javacard.Organizations, AddrMaps, wls)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepWith(SweepOpts{Workers: 8}, layers, javacard.Organizations, AddrMaps, wls)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("result %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
	if ts, tp := Table(serial), Table(parallel); ts != tp {
		t.Fatalf("tables not byte-identical:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", ts, tp)
	}
}

func TestSweepStreamsEveryConfiguration(t *testing.T) {
	var streamed atomic.Int64
	_, err := SweepWith(SweepOpts{
		Workers:  4,
		OnResult: func(Result, error) { streamed.Add(1) },
	}, []int{1, 2}, javacard.Organizations, AddrMaps, []javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * len(javacard.Organizations) * len(AddrMaps))
	if streamed.Load() != want {
		t.Fatalf("OnResult fired %d times, want %d", streamed.Load(), want)
	}
}

func TestSweepContinuesPastFailures(t *testing.T) {
	// Layer 9 is unsupported, so half the cross product fails; the sweep
	// must still deliver every layer-1 result plus a joined error naming
	// the failed configurations.
	results, err := SweepWith(SweepOpts{Workers: 4}, []int{1, 9}, javacard.Organizations, AddrMaps,
		[]javacard.Workload{churn()})
	if err == nil {
		t.Fatal("expected joined error for unsupported layer")
	}
	if !strings.Contains(err.Error(), "unsupported layer 9") {
		t.Fatalf("error does not name the failing layer: %v", err)
	}
	want := len(javacard.Organizations) * len(AddrMaps)
	if len(results) != want {
		t.Fatalf("partial results %d, want %d (the layer-1 half)", len(results), want)
	}
	for _, r := range results {
		if r.Layer != 1 {
			t.Fatalf("unexpected result from failed layer: %+v", r)
		}
	}
}

func TestFetchTimeoutErrorType(t *testing.T) {
	e := &ErrFetchTimeout{Addr: 0xABC, Cycle: 42}
	var target *ErrFetchTimeout
	if !errors.As(error(e), &target) {
		t.Fatal("ErrFetchTimeout not matchable with errors.As")
	}
	msg := e.Error()
	for _, want := range []string{"0xabc", "42"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

// paretoQuadratic is the original O(n²) frontier, kept as the reference
// for the equivalence test of the sort-and-scan implementation.
func paretoQuadratic(results []Result) []Result {
	var front []Result
	for _, r := range results {
		dominated := false
		for _, o := range results {
			if o.Workload != r.Workload {
				continue
			}
			if o.Cycles <= r.Cycles && o.BusEnergyJ <= r.BusEnergyJ &&
				(o.Cycles < r.Cycles || o.BusEnergyJ < r.BusEnergyJ) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	return front
}

func TestParetoMatchesQuadraticReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	workloads := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(120)
		results := make([]Result, n)
		for i := range results {
			// Small value ranges force plenty of ties and exact
			// duplicates, the cases where dominance is subtle.
			results[i] = Result{
				Workload:   workloads[rng.Intn(len(workloads))],
				Cycles:     uint64(rng.Intn(12)),
				BusEnergyJ: float64(rng.Intn(12)) * 1e-12,
			}
		}
		got, want := Pareto(results), paretoQuadratic(results)
		if len(got) != len(want) {
			t.Fatalf("trial %d: frontier size %d, reference %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: frontier[%d] = %+v, reference %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestFaultAxisSweep exercises the fault-plan sweep axis: faulted
// configurations complete (retry policy absorbs the injected errors),
// cost at least as many cycles as their clean twins, and record the
// retries they needed. Fault wrapping also reuses the shared prepared
// image, so this doubles as the pooled-transaction leak check: retried
// fetches and SFR accesses run through the same pooled transaction
// objects and must still produce a deterministic result.
func TestFaultAxisSweep(t *testing.T) {
	opts := SweepOpts{Workers: 2, Faults: []string{"none", "flaky"}}
	results, err := SweepWith(opts, []int{1, 2}, []javacard.Organization{javacard.OrgBurst},
		[]string{"near"}, []javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("sweep produced %d results, want 4", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Config.String()] = r
	}
	for _, layer := range []string{"L1", "L2"} {
		clean, ok1 := byName[layer+"/burst4/near"]
		flaky, ok2 := byName[layer+"/burst4/near/flaky"]
		if !ok1 || !ok2 {
			t.Fatalf("missing sweep rows in %v", byName)
		}
		if clean.Retries != 0 {
			t.Fatalf("%s clean run recorded %d retries", layer, clean.Retries)
		}
		if flaky.Retries == 0 {
			t.Fatalf("%s flaky run recorded no retries — injection did not happen", layer)
		}
		if flaky.Cycles < clean.Cycles {
			t.Fatalf("%s flaky run (%d cycles) cheaper than clean (%d)", layer, flaky.Cycles, clean.Cycles)
		}
	}
	// Determinism under faults: a rerun reproduces cycles and retries
	// exactly (pooled transactions carry no state across runs).
	again, err := SweepWith(opts, []int{1, 2}, []javacard.Organization{javacard.OrgBurst},
		[]string{"near"}, []javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].Cycles != again[i].Cycles || results[i].Retries != again[i].Retries ||
			results[i].BusEnergyJ != again[i].BusEnergyJ {
			t.Fatalf("faulted sweep not reproducible: %+v vs %+v", results[i], again[i])
		}
	}
}

func TestRunRejectsUnknownFaultPlan(t *testing.T) {
	_, err := Run(Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near", Fault: "bogus"},
		churn(), platform.DefaultCharTable())
	if err == nil {
		t.Fatal("unknown fault plan accepted")
	}
}
