package explore

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/javacard"
	"repro/internal/platform"
)

func tornRun(t *testing.T, cfg Config, w javacard.Workload, metered bool) Result {
	t.Helper()
	p, err := prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := runPrepared(context.Background(), cfg, p, platform.DefaultCharTable(), metered)
	if err != nil {
		t.Fatalf("%v/%s: %v", cfg, w.Name, err)
	}
	return r
}

// The determinism gate, reference vs optimized: same (seed, plan)
// produces bit-identical cut cycle and IEEE-754 energy figures on the
// two bus paths.
func TestTornReferenceOptimizedBitIdentical(t *testing.T) {
	w := churn()
	for _, journal := range []string{"", "word-eager", "page-lazy"} {
		cfg := Config{Layer: 1, Org: javacard.Organizations[0], AddrMap: "near",
			Tear: "tear-mid", Journal: journal}

		core.SetReference(true)
		ref := tornRun(t, cfg, w, false)
		core.SetReference(false)
		opt := tornRun(t, cfg, w, false)

		if ref.Torn != opt.Torn || ref.CutCycle != opt.CutCycle || ref.Cycles != opt.Cycles {
			t.Fatalf("%s: cut diverges: ref %+v opt %+v", cfg, ref, opt)
		}
		if math.Float64bits(ref.BusEnergyJ) != math.Float64bits(opt.BusEnergyJ) {
			t.Fatalf("%s: energy differs: %x vs %x", cfg,
				math.Float64bits(ref.BusEnergyJ), math.Float64bits(opt.BusEnergyJ))
		}
		if math.Float64bits(ref.RecoveryJ) != math.Float64bits(opt.RecoveryJ) {
			t.Fatalf("%s: recovery energy differs: %x vs %x", cfg,
				math.Float64bits(ref.RecoveryJ), math.Float64bits(opt.RecoveryJ))
		}
	}
}

// The cross-layer half of the gate: the named plans cut in programming-
// op ordinal space, so the cut ordinal, the corruption extent and the
// journal's replay outcome are identical on layers 1 and 2 even though
// their cycle counts (and so the wall-clock cut positions) differ.
func TestTornCrossLayerOrdinalIdentity(t *testing.T) {
	w := churn()
	mk := func(layer int) Result {
		return tornRun(t, Config{Layer: layer, Org: javacard.Organizations[0], AddrMap: "near",
			Tear: "tear-mid", Journal: "word-eager"}, w, true)
	}
	l1, l2 := mk(1), mk(2)
	if !l1.Torn || !l2.Torn {
		t.Fatalf("both layers must tear: L1 %v L2 %v", l1.Torn, l2.Torn)
	}
	t1, t2 := l1.Metrics.Tear, l2.Metrics.Tear
	if t1.CutOp != t2.CutOp || t1.CutOp == 0 {
		t.Fatalf("cut ordinal differs across layers: L1 op %d, L2 op %d", t1.CutOp, t2.CutOp)
	}
	if t1.CorruptWords != t2.CorruptWords {
		t.Fatalf("corruption extent differs: %d vs %d", t1.CorruptWords, t2.CorruptWords)
	}
	j1, j2 := l1.Metrics.Journal, l2.Metrics.Journal
	if j1.Records != j2.Records || j1.Commits != j2.Commits ||
		j1.FramesReplayed != j2.FramesReplayed || j1.WordsApplied != j2.WordsApplied {
		t.Fatalf("replay outcome differs across layers:\nL1 %+v\nL2 %+v", j1, j2)
	}
}

// Per-phase recovery attribution: the metered snapshot's total is
// bit-for-bit the reported two-phase energy, the replay phases are
// present, and their figures sit inside the recovery total.
func TestTornMeteredAttribution(t *testing.T) {
	w := churn()
	r := tornRun(t, Config{Layer: 1, Org: javacard.Organizations[0], AddrMap: "near",
		Tear: "tear-mid", Journal: "word-lazy"}, w, true)
	if r.Metrics == nil {
		t.Fatal("metered run without snapshot")
	}
	if math.Float64bits(r.Metrics.TotalEnergyJ) != math.Float64bits(r.BusEnergyJ) {
		t.Fatalf("snapshot total %x != result energy %x",
			math.Float64bits(r.Metrics.TotalEnergyJ), math.Float64bits(r.BusEnergyJ))
	}
	j := r.Metrics.Journal
	if j.ScanJ <= 0 || j.ApplyJ <= 0 || j.FinalizeJ <= 0 {
		t.Fatalf("replay phases must each cost energy: %+v", j)
	}
	if r.RecoveryJ <= 0 || j.ScanJ >= r.RecoveryJ || j.ApplyJ >= r.RecoveryJ || j.FinalizeJ >= r.RecoveryJ {
		t.Fatalf("phase figures outside the recovery total %g: %+v", r.RecoveryJ, j)
	}
	if r.RecoveryJ >= r.BusEnergyJ {
		t.Fatalf("recovery %g not a fraction of the run %g", r.RecoveryJ, r.BusEnergyJ)
	}
	tbl := r.Metrics.Table()
	for _, want := range []string{"tear: cut at cycle", "journal:", "replay:"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("metered table misses %q:\n%s", want, tbl)
		}
	}
}

// An unjournaled torn run still completes (the tear is the experiment,
// recovery is simply impossible), and a journaled untorn run measures
// pure journaling overhead against the identical clean baseline.
func TestTornAndJournalAxesIndependent(t *testing.T) {
	w := churn()
	org := javacard.Organizations[0]

	bare := tornRun(t, Config{Layer: 1, Org: org, AddrMap: "near", Tear: "tear-early"}, w, false)
	if !bare.Torn {
		t.Fatal("tear-early must cut the unjournaled run")
	}
	if bare.RecoveryJ != 0 {
		t.Fatalf("unjournaled run has no replay: recovery %g", bare.RecoveryJ)
	}

	clean := tornRun(t, Config{Layer: 1, Org: org, AddrMap: "near"}, w, false)
	journaled := tornRun(t, Config{Layer: 1, Org: org, AddrMap: "near", Journal: "word-eager"}, w, false)
	if journaled.Torn {
		t.Fatal("untorn journaled run reported torn")
	}
	if journaled.BusEnergyJ <= clean.BusEnergyJ {
		t.Fatalf("journaling overhead missing: %g <= %g", journaled.BusEnergyJ, clean.BusEnergyJ)
	}
	if clean.Torn || clean.CutCycle != 0 || clean.RecoveryJ != 0 {
		t.Fatalf("clean config took the torn path: %+v", clean)
	}
}

// Tear plans that journal protects: the committed prefix survives.
// (runTorn verifies recovered words internally and errors on loss, so
// the assertion here is that every strategy × plan pair round-trips.)
// tear-late cuts at program op 32, which lazy word journaling may
// legitimately never reach — superseding buffered writes to the same
// address is the whole point of the strategy — so for that plan the
// runs only have to complete, and at least the eager strategies (which
// program per write) must still be cut.
func TestTornEveryStrategyRecovers(t *testing.T) {
	w := churn()
	lateFired := 0
	for _, plan := range []string{"tear-early", "tear-mid", "tear-late"} {
		for _, strat := range []string{"word-eager", "word-lazy", "page-eager", "page-lazy"} {
			cfg := Config{Layer: 1, Org: javacard.Organizations[0], AddrMap: "near",
				Tear: plan, Journal: strat}
			r := tornRun(t, cfg, w, false)
			switch {
			case plan == "tear-late":
				if r.Torn {
					lateFired++
				}
			case !r.Torn:
				t.Fatalf("%s: plan did not fire", cfg)
			}
		}
	}
	if lateFired < 2 {
		t.Fatalf("tear-late fired under %d strategies, want at least the two eager ones", lateFired)
	}
}

func TestTornRejectsUnsupportedCombos(t *testing.T) {
	p, err := prepare(churn())
	if err != nil {
		t.Fatal(err)
	}
	char := platform.DefaultCharTable()
	org := javacard.Organizations[0]

	if _, err := runPrepared(context.Background(), Config{Layer: 3, Org: org, AddrMap: "near",
		Tear: "tear-mid"}, p, char, false); err == nil || !strings.Contains(err.Error(), "timed layer") {
		t.Fatalf("layer 3 + tear must be rejected, got %v", err)
	}
	if _, err := runPrepared(context.Background(), Config{Layer: 1, Org: org, AddrMap: "near",
		Tear: "tear-mid", Arb: "rr"}, p, char, false); err == nil || !strings.Contains(err.Error(), "single-master") {
		t.Fatalf("arb + tear must be rejected, got %v", err)
	}
}

func TestSweepTearAxes(t *testing.T) {
	var rows []Result
	opts := SweepOpts{
		Workers:  1,
		Tears:    []string{"", "tear-early"},
		Journals: []string{"", "word-eager"},
	}
	res, err := SweepWith(opts, []int{1}, []javacard.Organization{javacard.Organizations[0]},
		[]string{"near"}, []javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	rows = res
	if len(rows) != 4 {
		t.Fatalf("want 2×2 axis cross product, got %d rows", len(rows))
	}
	// Canonical order: tears outer, journals inner.
	wantCfg := []string{"", "word-eager", "tear-early", "tear-early/word-eager"}
	for i, r := range rows {
		s := r.Config.String()
		suffix := strings.TrimPrefix(s, "L1/"+javacard.Organizations[0].String()+"/near")
		suffix = strings.TrimPrefix(suffix, "/")
		if suffix != wantCfg[i] {
			t.Fatalf("row %d config = %q, want suffix %q", i, s, wantCfg[i])
		}
	}
}

func TestParseTearsAndJournals(t *testing.T) {
	tears, err := ParseTears("none,tear-mid")
	if err != nil {
		t.Fatal(err)
	}
	if len(tears) != 2 || tears[0] != "" || tears[1] != "tear-mid" {
		t.Fatalf("tears = %q", tears)
	}
	if _, err := ParseTears("tear-sideways"); err == nil {
		t.Fatal("unknown tear plan accepted")
	}
	js, err := ParseJournals("none, word-lazy")
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 2 || js[0] != "" || js[1] != "word-lazy" {
		t.Fatalf("journals = %q", js)
	}
	if _, err := ParseJournals("page-sometimes"); err == nil {
		t.Fatal("unknown journal strategy accepted")
	}
}
