package explore

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arb"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/dma"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/javacard"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// The contended system's extra slaves: the APDU command buffer (fast
// RAM) and the EEPROM-backed data store the platform copies command
// payloads into. Both sit far above every stack SFR base so no address
// map collides with them.
const (
	ApduBase = 0x0600_0000
	EEBase   = 0x0700_0000

	contendedBufSize = 0x1000
)

// cryptoMasterKey is the fixed key of the contended system's crypto
// bus master. The sweep measures bus traffic, not secrecy; a fixed key
// keeps every run deterministic.
const cryptoMasterKey = 0x0123_4567_89AB_CDEF

// contendedDescriptors is the DMA engine's fixed programme: the APDU
// payload moved into the EEPROM store — one burst-aligned block and one
// deliberately misaligned tail that exercises the word-by-word path.
func contendedDescriptors() []dma.Descriptor {
	return []dma.Descriptor{
		{Src: ApduBase + 0x000, Dst: EEBase + 0x000, Words: 16},
		{Src: ApduBase + 0x100, Dst: EEBase + 0x104, Words: 8},
	}
}

// contendedJobs is the crypto master's fixed programme: two 64-bit
// blocks of the APDU buffer encrypted into the EEPROM store.
func contendedJobs() []crypto.Job {
	return []crypto.Job{{Src: ApduBase + 0x200, Dst: EEBase + 0x200, Blocks: 2}}
}

// fillApdu preloads the APDU buffer with the deterministic payload the
// DMA and crypto masters consume.
func fillApdu(r *mem.RAM) {
	for i := 0; i < contendedBufSize/4; i++ {
		r.WriteWord(ApduBase+uint64(4*i), 0xC0DE_0000|uint32(i*2654435761), ecbus.W32)
	}
}

// buildContendedMap is buildMap extended with the APDU buffer and the
// EEPROM store. An active fault plan wraps all four slaves (the buffer
// RAMs have idempotent reads, so they take the full plan; the stack
// keeps its side-effect-safe projection).
func buildContendedMap(cfg Config, p prepared, reg *metrics.Registry) (uint64, *ecbus.Map, core.RetryPolicy, error) {
	base, ok := BaseForMap(cfg.AddrMap)
	if !ok {
		return 0, nil, core.RetryPolicy{}, fmt.Errorf("explore: unknown address map %q", cfg.AddrMap)
	}
	hs := javacard.NewHardStack("stack", base)
	apdu := mem.NewRAM("apdu", ApduBase, contendedBufSize, 0, 0)
	ee := mem.NewNVRAM("ee", EEBase, contendedBufSize, 1, 2, 8)
	fillApdu(apdu)

	plan, ok := fault.Named(cfg.Fault)
	if !ok {
		return 0, nil, core.RetryPolicy{}, fmt.Errorf("explore: unknown fault plan %q", cfg.Fault)
	}
	var retry core.RetryPolicy
	rom, stack := ecbus.Slave(p.rom), ecbus.Slave(hs)
	apduS, eeS := ecbus.Slave(apdu), ecbus.Slave(ee)
	if !plan.Empty() {
		rom = fault.Wrap(rom, plan).AttachMetrics(reg)
		stack = fault.Wrap(stack, plan.WithoutReadErrors()).AttachMetrics(reg)
		apduS = fault.Wrap(apduS, plan).AttachMetrics(reg)
		eeS = fault.Wrap(eeS, plan).AttachMetrics(reg)
		retry = SweepRetry
	}
	bmap, err := ecbus.NewMap(rom, stack, apduS, eeS)
	if err != nil {
		return 0, nil, core.RetryPolicy{}, err
	}
	return base, bmap, retry, nil
}

// Mux port assignment of the contended system. The CPU keeps the
// highest fixed priority (its stalls serialize the interpreter), the
// DMA engine the lowest (its transfers are the most latency-tolerant).
const (
	portCPU = iota
	portCrypto
	portDMA
	contendedMasters
)

// attachContenders registers the crypto and DMA masters on their mux
// ports with the run's retry policy.
func attachContenders(k *sim.Kernel, mux *arb.Mux, retry core.RetryPolicy, reg *metrics.Registry) (*crypto.Master, *dma.Engine) {
	cm := crypto.NewMaster(k, mux.Port(portCrypto), cryptoMasterKey, contendedJobs())
	cm.Retry, cm.Metrics = retry, reg
	de := dma.New(k, mux.Port(portDMA), contendedDescriptors())
	de.Retry, de.Metrics = retry, reg
	return cm, de
}

// contendedDrainBudget bounds the post-VM drain of the autonomous
// masters; reaching it means a grant-protocol deadlock, not slowness.
const contendedDrainBudget = 2_000_000

// drainContenders runs the kernel until the autonomous masters and the
// mux are idle.
func drainContenders(k *sim.Kernel, mux *arb.Mux, cm *crypto.Master, de *dma.Engine) error {
	_, done := k.RunUntil(contendedDrainBudget, func() bool {
		return cm.Done() && de.Done() && mux.Drained()
	})
	if !done {
		return errors.New("explore: contended run did not drain (grant-protocol deadlock?)")
	}
	return nil
}

// runContended evaluates a multi-master configuration at a timed
// layer: the CPU (interpreter + code fetcher), the crypto master and
// the DMA engine contend for the bus through an arbitration mux under
// cfg.Arb. Reported energy is the bus energy plus the arbitration
// wires' own switching energy; transactions and retries sum over all
// three masters.
func runContended(ctx context.Context, cfg Config, p prepared, char gatepower.CharTable, metered bool) (Result, error) {
	policy, err := arb.ParsePolicy(cfg.Arb)
	if err != nil {
		return Result{}, err
	}
	var reg *metrics.Registry
	if metered {
		reg = metrics.New(fmt.Sprintf("L%d+%s", cfg.Layer, cfg.Arb))
		reg.SetMaster(p.w.Name)
	}
	k := sim.New(0)
	// The mux's falling-edge proc must register before the bus model's
	// so a grant's address phase starts on the grant cycle.
	mux := arb.NewMux(k, policy, contendedMasters)
	base, bmap, retry, err := buildContendedMap(cfg, p, reg)
	if err != nil {
		return Result{}, err
	}

	var bus core.Initiator
	var energy func() float64
	switch cfg.Layer {
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		bus, energy = b, b.Power().TotalEnergy
	case 2:
		b := tlm2.New(k, bmap).AttachPower(tlm2.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		bus, energy = b, b.Power().TotalEnergy
	default:
		return Result{}, fmt.Errorf("explore: unsupported layer %d for arbitration (valid: 1, 2, 3)", cfg.Layer)
	}
	mux.Bind(bus)

	cm, de := attachContenders(k, mux, retry, reg)
	adapter := javacard.NewMasterAdapter(k, mux.Port(portCPU), base, cfg.Org)
	adapter.Retry = retry
	fetcher := &blockingMaster{k: k, bus: mux.Port(portCPU), retry: retry}
	mm, fw := p.w.Runtime()
	vm := javacard.NewVM(p.prog, adapter, mm, fw)
	vm.FetchHook = func(pc int) {
		_ = fetcher.read8(uint64(pc) % romSize)
	}
	if err := runVM(ctx, vm); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return Result{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
		}
		return Result{}, err
	}
	if err := adapter.Flush(); err != nil {
		return Result{}, err
	}
	if err := drainContenders(k, mux, cm, de); err != nil {
		return Result{}, err
	}
	res := Result{
		Config:       cfg,
		Workload:     p.w.Name,
		Cycles:       k.Cycle(),
		BusEnergyJ:   energy() + mux.TotalEnergy(),
		Transactions: adapter.Transactions + fetcher.n + cm.Transactions + de.Transactions,
		Retries:      adapter.Retries + fetcher.retries + cm.Retries + de.Retries,
		Steps:        vm.Steps,
	}
	if reg != nil {
		reg.Retries(adapter.Retries + fetcher.retries)
		mux.ReportMetrics(reg)
		reg.RecordKernel(k.Cycle(), k.SkippedCycles(), k.IdleSkips(), k.ProcsRun())
		reg.Finalize(res.BusEnergyJ)
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}
