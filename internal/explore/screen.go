package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/arb"
	"repro/internal/javacard"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tlm3"
)

// AnalyticTargetLayer is the timed layer the analytic model's layer-3
// predictions target: the calibrated coefficients map event counts onto
// TL2's energy and cycle figures, the cheapest timed layer with the
// full per-phase analytic power interface.
const AnalyticTargetLayer = 2

// countStats carries the exact (non-predicted) byproducts of a
// counting run: the traffic is functionally identical to the timed
// run's, so transactions, retries and executed bytecodes are true
// values, not estimates.
type countStats struct {
	tx      uint64
	retries uint64
	steps   uint64
	cycles  uint64 // untimed protocol-minimum cycle tally
}

// featKey identifies a traffic shape for the feature cache: the
// workload's program fingerprint plus every configuration axis that
// shapes traffic. The layer is deliberately absent — features do not
// depend on it, which is exactly the sharing the cache exploits. The
// arbitration policy IS present: a contended run carries the crypto
// and DMA masters' traffic on top of the CPU's, so two configurations
// differing only in arb policy must never share a cache entry.
type featKey struct {
	fp    uint64
	org   javacard.Organization
	amap  string
	fault string
	arb   string
}

// featCache memoizes counting runs process-wide. Counting is fully
// deterministic (the fault injectors are seeded hashes of the access
// stream), so a hit returns bit-identical features; the cache turns the
// screening phase of a repeated or overlapping sweep into pure model
// arithmetic. Bounded so pathological workload churn cannot grow it
// without limit — on overflow new shapes are computed but not stored.
var (
	featMu    sync.Mutex
	featCache = map[featKey]struct {
		f  tlm3.Features
		st countStats
	}{}
)

const featCacheCap = 8192

// countRun returns one configuration's feature vector and exact
// traffic stats, via the cache when the shape has been counted before.
func countRun(ctx context.Context, cfg Config, p prepared) (tlm3.Features, countStats, error) {
	key := featKey{fp: p.fp, org: cfg.Org, amap: cfg.AddrMap, fault: canonFault(cfg.Fault), arb: canonArb(cfg.Arb)}
	featMu.Lock()
	v, ok := featCache[key]
	featMu.Unlock()
	if ok {
		return v.f, v.st, nil
	}
	f, st, err := countRunUncached(ctx, cfg, p)
	if err != nil {
		return f, st, err
	}
	featMu.Lock()
	if len(featCache) < featCacheCap {
		featCache[key] = struct {
			f  tlm3.Features
			st countStats
		}{f, st}
	}
	featMu.Unlock()
	return f, st, nil
}

// canonFault folds the two spellings of a clean run ("" and "none")
// into one cache identity, matching fault.Named's resolution.
func canonFault(f string) string {
	if f == "none" {
		return ""
	}
	return f
}

// canonArb folds the two spellings of the single-master system ("" and
// "none") into one cache identity, matching ParseArbs's resolution.
func canonArb(a string) string {
	if a == "none" {
		return ""
	}
	return a
}

// countRunUncached executes one configuration's workload against the
// layer-3 counting bus: the full interpreter run with the same masters,
// fault injectors and retry policy as a timed evaluation, but with
// every transaction completing in zero simulated time. It returns the
// feature vector of the traffic in microseconds instead of
// milliseconds. The features do not depend on cfg.Layer.
func countRunUncached(ctx context.Context, cfg Config, p prepared) (tlm3.Features, countStats, error) {
	if err := ctx.Err(); err != nil {
		return tlm3.Features{}, countStats{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
	}
	if canonArb(cfg.Arb) != "" {
		return countRunContended(ctx, cfg, p)
	}
	k := sim.New(0)
	base, bmap, retry, err := buildMap(cfg, p, nil)
	if err != nil {
		return tlm3.Features{}, countStats{}, err
	}
	counter := tlm3.NewCounter(bmap)
	adapter := javacard.NewMasterAdapter(k, counter, base, cfg.Org)
	adapter.Retry = retry
	fetcher := &blockingMaster{k: k, bus: counter, retry: retry}
	mm, fw := p.w.Runtime()
	vm := javacard.NewVM(p.prog, adapter, mm, fw)
	vm.FetchHook = func(pc int) {
		_ = fetcher.read8(uint64(pc) % romSize)
	}
	if err := runVM(ctx, vm); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return tlm3.Features{}, countStats{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
		}
		return tlm3.Features{}, countStats{}, err
	}
	if err := adapter.Flush(); err != nil {
		return tlm3.Features{}, countStats{}, err
	}
	st := countStats{
		tx:      adapter.Transactions + fetcher.n,
		retries: adapter.Retries + fetcher.retries,
		steps:   vm.Steps,
		cycles:  counter.Cycles(),
	}
	return counter.Features(), st, nil
}

// countRunContended is the multi-master counting run: the same three
// masters as runContended drive the layer-3 counting bus through an
// arbitration mux. The Counter completes each transaction at its grant
// cycle, so the counted event stream is the contended traffic — the
// CPU's plus the crypto and DMA masters' — and the mux's grant and
// contention tallies land in the Counter's arbitration counts.
func countRunContended(ctx context.Context, cfg Config, p prepared) (tlm3.Features, countStats, error) {
	policy, err := arb.ParsePolicy(canonArb(cfg.Arb))
	if err != nil {
		return tlm3.Features{}, countStats{}, err
	}
	k := sim.New(0)
	mux := arb.NewMux(k, policy, contendedMasters)
	base, bmap, retry, err := buildContendedMap(cfg, p, nil)
	if err != nil {
		return tlm3.Features{}, countStats{}, err
	}
	counter := tlm3.NewCounter(bmap)
	mux.Bind(counter)
	cm, de := attachContenders(k, mux, retry, nil)
	adapter := javacard.NewMasterAdapter(k, mux.Port(portCPU), base, cfg.Org)
	adapter.Retry = retry
	fetcher := &blockingMaster{k: k, bus: mux.Port(portCPU), retry: retry}
	mm, fw := p.w.Runtime()
	vm := javacard.NewVM(p.prog, adapter, mm, fw)
	vm.FetchHook = func(pc int) {
		_ = fetcher.read8(uint64(pc) % romSize)
	}
	if err := runVM(ctx, vm); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return tlm3.Features{}, countStats{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
		}
		return tlm3.Features{}, countStats{}, err
	}
	if err := adapter.Flush(); err != nil {
		return tlm3.Features{}, countStats{}, err
	}
	if err := drainContenders(k, mux, cm, de); err != nil {
		return tlm3.Features{}, countStats{}, err
	}
	counter.RecordArb(mux.TotalGrants(), mux.Contentions())
	st := countStats{
		tx:      adapter.Transactions + fetcher.n + cm.Transactions + de.Transactions,
		retries: adapter.Retries + fetcher.retries + cm.Retries + de.Retries,
		steps:   vm.Steps,
		cycles:  counter.Cycles(),
	}
	return counter.Features(), st, nil
}

// runAnalytic evaluates a layer-3 configuration: one counting run
// (cached across sweeps) plus one evaluation of the calibrated model.
// Cycles and BusEnergyJ are the model's predictions of the
// AnalyticTargetLayer figures; Transactions, Retries and Steps are
// exact (the counting run executes the real workload against the real
// slaves).
func runAnalytic(ctx context.Context, cfg Config, p prepared, metered bool) (Result, error) {
	model, err := DefaultModel()
	if err != nil {
		return Result{}, fmt.Errorf("explore: layer-3 calibration: %w", err)
	}
	f, st, err := countRun(ctx, cfg, p)
	if err != nil {
		return Result{}, err
	}
	energyJ, cycles, err := model.Predict(AnalyticTargetLayer, calibGroup(cfg.Org, cfg.Arb), f.Vector())
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Config:       cfg,
		Workload:     p.w.Name,
		Cycles:       uint64(math.Round(math.Max(cycles, 0))),
		BusEnergyJ:   energyJ,
		Transactions: st.tx,
		Retries:      st.retries,
		Steps:        st.steps,
	}
	if metered {
		reg := metrics.New("L3")
		reg.SetMaster(p.w.Name)
		reg.Retries(res.Retries)
		reg.RecordKernel(st.cycles, 0, 0, 0)
		reg.Finalize(energyJ)
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}
