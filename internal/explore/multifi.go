package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/calib"
	"repro/internal/javacard"
	"repro/internal/metrics"
)

// Fidelity selects how a sweep spends its time across the model
// hierarchy.
type Fidelity string

// Fidelity modes. Exhaustive is the historical behaviour: every
// configuration evaluated at its requested layer. Screen evaluates
// everything with the calibrated analytic model only (microseconds per
// configuration, predictions not exact numbers). Confirm screens the
// full space, prunes configurations that certainly cannot reach the
// Pareto frontier, and evaluates only the survivors exactly.
const (
	FidelityExhaustive Fidelity = "exhaustive"
	FidelityScreen     Fidelity = "screen"
	FidelityConfirm    Fidelity = "confirm"
)

// Fidelities lists the valid modes.
var Fidelities = []Fidelity{FidelityExhaustive, FidelityScreen, FidelityConfirm}

// ParseFidelity validates a fidelity name upfront, mirroring
// fault.ParseNames: unknown names fail loudly with the vocabulary.
func ParseFidelity(s string) (Fidelity, error) {
	switch Fidelity(s) {
	case FidelityExhaustive, FidelityScreen, FidelityConfirm:
		return Fidelity(s), nil
	case "":
		return FidelityExhaustive, nil
	}
	return "", fmt.Errorf("explore: unknown fidelity %q (valid: exhaustive, screen, confirm)", s)
}

// DefaultSafety is the band inflation applied to the calibrated
// residuals when deriving the pruning ε: predictions are trusted to
// twice the worst relative error observed during calibration.
const DefaultSafety = 2

// MultiFidelityOpts tunes SweepMultiFidelity. The embedded SweepOpts
// applies to the confirmation pass (workers, metrics, streaming,
// faults axis).
type MultiFidelityOpts struct {
	SweepOpts

	// Model is the calibrated analytic model; nil uses DefaultModel()
	// (fitting it on first use if needed).
	Model *calib.Model

	// Safety inflates the calibrated error band into the pruning ε:
	// ε = Safety × (fitted max relative error). <= 0 selects
	// DefaultSafety. The ε is therefore derived from measured
	// residuals, never hand-picked.
	Safety float64

	// Registry, when non-nil, receives the sweep-level screen/confirm
	// attribution: configuration counts and wall-clock nanoseconds per
	// phase.
	Registry *metrics.Registry

	// SkipConfirm stops after the screening phase: Screened carries
	// every prediction with its keep/prune decision, Confirmed stays
	// empty. This is the "screen" fidelity — a reconnaissance pass over
	// a design space too large to confirm.
	SkipConfirm bool
}

// Prediction is one configuration's analytic screening outcome.
type Prediction struct {
	Config
	Workload string
	EnergyJ  float64 // predicted energy at the confirmation layer
	Cycles   float64 // predicted cycles at the confirmation layer
	Kept     bool    // survived ε-pruning (or is exempt) → confirmed
}

// MultiFidelityResult is the outcome of a multi-fidelity sweep, with
// the screened-vs-confirmed accounting first-class so pruning is never
// silent.
type MultiFidelityResult struct {
	// Confirmed holds the exact results of the kept configurations in
	// cross-product order — bit-identical to the same configurations'
	// results under an exhaustive sweep.
	Confirmed []Result

	// Screened holds every enumerated configuration's prediction in
	// cross-product order, including the pruned ones.
	Screened []Prediction

	// ScreenedConfigs counts every enumerated configuration;
	// PrunedConfigs those dropped by ε-domination; ConfirmedConfigs the
	// exact evaluations that completed successfully.
	ScreenedConfigs  int
	PrunedConfigs    int
	ConfirmedConfigs int

	// EpsEnergy / EpsCycles summarize the pruning margins derived from
	// the calibrated error band, per layer: the worst case across the
	// swept organizations (pruning itself uses the tighter per-(layer,
	// organization) bands).
	EpsEnergy map[int]float64
	EpsCycles map[int]float64

	// ScreenTime and ConfirmTime attribute the sweep's wall clock.
	ScreenTime  time.Duration
	ConfirmTime time.Duration
}

// SweepMultiFidelity screens the full cross product with the calibrated
// layer-3 analytic model, prunes configurations that certainly cannot
// reach the per-workload Pareto frontier even under worst-case model
// error, and confirms the survivors exactly at their requested layers.
// See SweepMultiFidelityContext.
func SweepMultiFidelity(opts MultiFidelityOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) (MultiFidelityResult, error) {
	return SweepMultiFidelityContext(context.Background(), opts, layers, orgs, maps, workloads)
}

// SweepMultiFidelityContext is the context-aware multi-fidelity sweep.
//
// Soundness of the pruning: a configuration p is dropped only if some
// configuration q in the same workload *certainly* dominates it — the
// upper bounds of q's true energy and cycles (prediction inflated by
// q's layer ε) sit at or below the lower bounds of p's (prediction
// deflated by p's layer ε), strictly on at least one axis. If the
// calibrated error band holds, every true frontier point survives, so
// the confirmed set is a superset of the exhaustive frontier. Layer-3
// configurations and configurations whose screening failed are never
// pruned (confirming them costs microseconds and exactness
// respectively). Partial failures follow the sweep contract: the error
// is the errors.Join of per-configuration failures, alongside the
// results that did complete.
func SweepMultiFidelityContext(ctx context.Context, opts MultiFidelityOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) (MultiFidelityResult, error) {
	var out MultiFidelityResult

	for _, l := range layers {
		if !ValidLayer(l) {
			return out, fmt.Errorf("explore: unsupported layer %d (valid layers: %s)", l, LayerVocab())
		}
	}
	model := opts.Model
	if model == nil {
		m, err := DefaultModel()
		if err != nil {
			return out, err
		}
		model = m
	}
	safety := opts.Safety
	if safety <= 0 {
		safety = DefaultSafety
	}
	// Pruning margins per (layer, organization, arbitration policy) —
	// the grouped fits carry far tighter bands than any pooled summary,
	// and the soundness argument only needs each configuration judged
	// against its own band. The public per-layer maps keep the worst
	// case for reporting. Faulted contended configurations are exempt
	// from pruning (their group is calibrated clean-only), so no band is
	// required for them.
	arbsAxis := []string{""}
	for _, a := range opts.Arbs {
		if canonArb(a) != "" {
			arbsAxis = append(arbsAxis, canonArb(a))
		}
	}
	type epsKey struct {
		layer int
		org   javacard.Organization
		arb   string
	}
	epsE := map[epsKey]float64{}
	epsC := map[epsKey]float64{}
	out.EpsEnergy = map[int]float64{}
	out.EpsCycles = map[int]float64{}
	for _, l := range layers {
		target := l
		if l == 3 {
			target = AnalyticTargetLayer
		}
		for _, o := range orgs {
			for _, a := range arbsAxis {
				eE, eC, err := model.Epsilon(target, calibGroup(o, a), safety)
				if err != nil {
					return out, fmt.Errorf("explore: no calibrated band for layer %d group %s: %w", l, calibGroup(o, a), err)
				}
				epsE[epsKey{l, o, a}], epsC[epsKey{l, o, a}] = eE, eC
				out.EpsEnergy[l] = math.Max(out.EpsEnergy[l], eE)
				out.EpsCycles[l] = math.Max(out.EpsCycles[l], eC)
			}
		}
	}

	jobs, prepErrs := enumerateJobs(opts.SweepOpts, layers, orgs, maps, workloads)
	joined := prepErrs
	out.ScreenedConfigs = len(jobs)

	// ---- Screen phase: one counting run per unique traffic shape.
	// The feature vector depends on (workload, org, map, fault) but not
	// on the layer, so the cross product shares count runs across the
	// layer axis — that sharing is what amortizes screening to
	// microseconds per configuration.
	screenStart := time.Now()
	type fkey struct {
		wl            string
		org           javacard.Organization
		m, fault, arb string
	}
	type fres struct {
		x   []float64
		err error
	}
	keySlot := map[fkey]int{}
	var keyJobs []job // one representative job per unique key
	for _, j := range jobs {
		k := fkey{j.p.w.Name, j.cfg.Org, j.cfg.AddrMap, canonFault(j.cfg.Fault), canonArb(j.cfg.Arb)}
		if _, ok := keySlot[k]; !ok {
			keySlot[k] = len(keyJobs)
			keyJobs = append(keyJobs, j)
		}
	}
	featRes := make([]fres, len(keyJobs))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keyJobs) {
		workers = len(keyJobs)
	}
	var wg sync.WaitGroup
	slotCh := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range slotCh {
				j := keyJobs[s]
				fv, _, err := countRun(ctx, j.cfg, j.p)
				if err != nil {
					featRes[s] = fres{err: err}
					continue
				}
				featRes[s] = fres{x: fv.Vector()}
			}
		}()
	}
	for s := range keyJobs {
		slotCh <- s
	}
	close(slotCh)
	wg.Wait()

	preds := make([]Prediction, len(jobs))
	exempt := make([]bool, len(jobs)) // never prune: layer 3 or failed screen
	for i, j := range jobs {
		preds[i] = Prediction{Config: j.cfg, Workload: j.p.w.Name}
		fr := featRes[keySlot[fkey{j.p.w.Name, j.cfg.Org, j.cfg.AddrMap, canonFault(j.cfg.Fault), canonArb(j.cfg.Arb)}]]
		if fr.err != nil {
			// Conservative fallback: confirm exactly what could not be
			// screened, and surface the screening failure.
			exempt[i] = true
			joined = append(joined, fmt.Errorf("explore: screen %v/%s: %w", j.cfg, j.p.w.Name, fr.err))
			continue
		}
		target := j.cfg.Layer
		if target == 3 {
			target = AnalyticTargetLayer
		}
		e, c, err := model.Predict(target, calibGroup(j.cfg.Org, j.cfg.Arb), fr.x)
		if err != nil {
			exempt[i] = true
			joined = append(joined, fmt.Errorf("explore: screen %v/%s: %w", j.cfg, j.p.w.Name, err))
			continue
		}
		preds[i].EnergyJ = math.Max(e, 0)
		preds[i].Cycles = math.Max(c, 0)
		if j.cfg.Layer == 3 {
			// The analytic layer is its own confirmation — keeping it
			// costs one (already cached) counting run.
			exempt[i] = true
		}
		if canonArb(j.cfg.Arb) != "" && canonFault(j.cfg.Fault) != "" {
			// Faulted contention is outside the calibrated bands (arb
			// groups are fitted clean-only): the prediction is reported
			// but never trusted — the configuration is always confirmed
			// exactly, and it never prunes anybody (exempt configurations
			// are skipped as dominators below).
			exempt[i] = true
		}
		if canonTear(j.cfg.Tear) != "" || canonJournal(j.cfg.Journal) != "" {
			// Torn/journaled runs carry two-phase traffic (session +
			// power-up replay) the analytic model was never fitted on:
			// always confirm exactly, never prune by the clean prediction.
			exempt[i] = true
		}
	}

	// ---- ε-domination pruning, per workload.
	bounds := func(i int) (loE, upE, loC, upC float64) {
		k := epsKey{jobs[i].cfg.Layer, jobs[i].cfg.Org, canonArb(jobs[i].cfg.Arb)}
		eE, eC := epsE[k], epsC[k]
		loE = preds[i].EnergyJ / (1 + eE)
		loC = preds[i].Cycles / (1 + eC)
		upE, upC = math.Inf(1), math.Inf(1)
		if eE < 1 {
			upE = preds[i].EnergyJ / (1 - eE)
		}
		if eC < 1 {
			upC = preds[i].Cycles / (1 - eC)
		}
		return
	}
	byWorkload := map[string][]int{}
	for i, j := range jobs {
		byWorkload[j.p.w.Name] = append(byWorkload[j.p.w.Name], i)
	}
	for _, group := range byWorkload {
		for _, p := range group {
			if exempt[p] {
				preds[p].Kept = true
				continue
			}
			pLoE, _, pLoC, _ := bounds(p)
			dominated := false
			for _, q := range group {
				if q == p || exempt[q] {
					continue
				}
				_, qUpE, _, qUpC := bounds(q)
				if qUpE <= pLoE && qUpC <= pLoC && (qUpE < pLoE || qUpC < pLoC) {
					dominated = true
					break
				}
			}
			preds[p].Kept = !dominated
		}
	}
	out.Screened = preds
	out.ScreenTime = time.Since(screenStart)
	for i := range preds {
		if !preds[i].Kept {
			out.PrunedConfigs++
		}
	}
	opts.Registry.FidelityScreen(uint64(out.ScreenedConfigs), uint64(out.PrunedConfigs), uint64(out.ScreenTime.Nanoseconds()))
	if opts.SkipConfirm {
		return out, errors.Join(joined...)
	}

	// ---- Confirm phase: exact evaluation of the survivors through the
	// shared worker pool, preserving cross-product order.
	confirmStart := time.Now()
	var confirmJobs []job
	for i, j := range jobs {
		if preds[i].Kept {
			confirmJobs = append(confirmJobs, job{idx: len(confirmJobs), cfg: j.cfg, p: j.p})
		}
	}
	results, errs := runJobs(ctx, opts.SweepOpts, confirmJobs)
	for i := range confirmJobs {
		if errs[i] != nil {
			joined = append(joined, errs[i])
			continue
		}
		out.Confirmed = append(out.Confirmed, results[i])
	}
	out.ConfirmedConfigs = len(out.Confirmed)
	out.ConfirmTime = time.Since(confirmStart)
	opts.Registry.FidelityConfirm(uint64(out.ConfirmedConfigs), uint64(out.ConfirmTime.Nanoseconds()))

	return out, errors.Join(joined...)
}
