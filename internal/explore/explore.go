// Package explore is the HW/SW interface exploration harness of the
// paper's case study (§4.3): "During HW/SW interface evaluation we
// change the address map, organization of these registers and used bus
// transactions to access them." It sweeps the refined Java Card model
// over those axes — SFR organization (byte-staged / halfword / packed /
// burst), stack address map (near/far from the code memory), and bus
// abstraction layer (1 or 2) — and reports cycles and estimated energy
// per configuration, which is exactly the evaluation the energy-aware
// transaction-level models exist to make fast.
package explore

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/javacard"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// Stack SFR base addresses of the two explored address maps. The code
// ROM sits at 0; the "near" base keeps the address-bus Hamming distance
// between interleaved code fetches and stack accesses small, the "far"
// base (alternating bit pattern) maximizes it.
const (
	NearBase = 0x0000_1000
	FarBase  = 0x0002_AAA0
)

// AddrMaps names the explored address maps.
var AddrMaps = []string{"near", "far"}

// Config is one point of the design space.
type Config struct {
	Layer   int // bus abstraction layer: 1 or 2
	Org     javacard.Organization
	AddrMap string // "near" or "far"
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("L%d/%s/%s", c.Layer, c.Org, c.AddrMap)
}

// Result is the measured outcome of one configuration on one workload.
type Result struct {
	Config
	Workload     string
	Cycles       uint64
	BusEnergyJ   float64
	Transactions uint64
	Steps        uint64 // executed bytecodes
}

// EnergyPerStep returns bus energy per bytecode, the case study's merit
// figure.
func (r Result) EnergyPerStep() float64 {
	if r.Steps == 0 {
		return 0
	}
	return r.BusEnergyJ / float64(r.Steps)
}

// blockingMaster issues single transactions to completion by stepping
// the kernel (the untimed interpreter's view of the bus).
type blockingMaster struct {
	k   *sim.Kernel
	bus core.Initiator
	ids uint64
	n   uint64
}

func (m *blockingMaster) read8(addr uint64) error {
	m.ids++
	tr, err := ecbus.NewSingle(m.ids, ecbus.Fetch, addr, ecbus.W8, 0)
	if err != nil {
		return err
	}
	m.n++
	for i := 0; i < 100000; i++ {
		st := m.bus.Access(tr)
		if st == ecbus.StateOK {
			return nil
		}
		if st == ecbus.StateError {
			return fmt.Errorf("explore: fetch bus error at %#x", addr)
		}
		m.k.Step()
	}
	return errors.New("explore: fetch never completed")
}

// Run evaluates one configuration on one workload.
func Run(cfg Config, w javacard.Workload, char gatepower.CharTable) (Result, error) {
	prog, mm, fw := w.Make()

	k := sim.New(0)
	base := uint64(NearBase)
	if cfg.AddrMap == "far" {
		base = FarBase
	}
	rom := mem.NewROM("code", 0, 0x1000, 0, 0)
	if err := rom.Load(0, prog.Main); err != nil {
		return Result{}, err
	}
	hs := javacard.NewHardStack("stack", base)
	bmap := ecbus.MustMap(rom, hs)

	var bus core.Initiator
	var energy func() float64
	switch cfg.Layer {
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(char))
		bus, energy = b, b.Power().TotalEnergy
	case 2:
		b := tlm2.New(k, bmap).AttachPower(tlm2.NewPowerModel(char))
		bus, energy = b, b.Power().TotalEnergy
	default:
		return Result{}, fmt.Errorf("explore: unsupported layer %d", cfg.Layer)
	}

	adapter := javacard.NewMasterAdapter(k, bus, base, cfg.Org)
	fetcher := &blockingMaster{k: k, bus: bus}
	vm := javacard.NewVM(prog, adapter, mm, fw)
	vm.FetchHook = func(pc int) {
		// Interleave the interpreter's code fetch with the stack
		// traffic. Method bodies alias onto the main image window; the
		// traffic pattern, not the fetched value, is what matters here.
		_ = fetcher.read8(uint64(pc) % 0x1000)
	}
	if err := vm.Run(10_000_000); err != nil {
		return Result{}, fmt.Errorf("explore %v/%s: %w", cfg, w.Name, err)
	}
	if err := adapter.Flush(); err != nil {
		return Result{}, err
	}
	return Result{
		Config:       cfg,
		Workload:     w.Name,
		Cycles:       k.Cycle(),
		BusEnergyJ:   energy(),
		Transactions: adapter.Transactions + fetcher.n,
		Steps:        vm.Steps,
	}, nil
}

// Sweep evaluates the full cross product of layers × organizations ×
// address maps × workloads.
func Sweep(layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) ([]Result, error) {
	char := platform.DefaultCharTable()
	var out []Result
	for _, w := range workloads {
		for _, l := range layers {
			for _, o := range orgs {
				for _, m := range maps {
					r, err := Run(Config{Layer: l, Org: o, AddrMap: m}, w, char)
					if err != nil {
						return nil, err
					}
					out = append(out, r)
				}
			}
		}
	}
	return out, nil
}

// Pareto returns the results not dominated in (Cycles, BusEnergyJ)
// within each workload — the frontier the designer picks from.
func Pareto(results []Result) []Result {
	var front []Result
	for _, r := range results {
		dominated := false
		for _, o := range results {
			if o.Workload != r.Workload {
				continue
			}
			if o.Cycles <= r.Cycles && o.BusEnergyJ <= r.BusEnergyJ &&
				(o.Cycles < r.Cycles || o.BusEnergyJ < r.BusEnergyJ) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	return front
}

// Table renders results as the case-study exploration table.
func Table(results []Result) string {
	rows := append([]Result(nil), results...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].BusEnergyJ < rows[j].BusEnergyJ
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-22s %10s %12s %8s %14s\n",
		"workload", "config", "cycles", "energy[pJ]", "tx", "energy/bc[pJ]")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-22s %10d %12.1f %8d %14.2f\n",
			r.Workload, r.Config.String(), r.Cycles, r.BusEnergyJ*1e12,
			r.Transactions, r.EnergyPerStep()*1e12)
	}
	return sb.String()
}
