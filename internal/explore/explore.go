// Package explore is the HW/SW interface exploration harness of the
// paper's case study (§4.3): "During HW/SW interface evaluation we
// change the address map, organization of these registers and used bus
// transactions to access them." It sweeps the refined Java Card model
// over those axes — SFR organization (byte-staged / halfword / packed /
// burst), stack address map (near/far from the code memory), and bus
// abstraction layer (1 or 2) — and reports cycles and estimated energy
// per configuration, which is exactly the evaluation the energy-aware
// transaction-level models exist to make fast.
//
// Every configuration evaluation constructs its own kernel, bus, power
// model and VM, so the cross product is embarrassingly parallel: Sweep
// fans configurations out over a bounded worker pool and returns the
// results in deterministic input order regardless of completion order.
// The only state shared between workers is immutable — the assembled
// workload program, the preloaded code ROM (reads are pure) and the
// characterization table (passed by value).
package explore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/arb"
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/javacard"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// Stack SFR base addresses of the two explored address maps. The code
// ROM sits at 0; the "near" base keeps the address-bus Hamming distance
// between interleaved code fetches and stack accesses small, the "far"
// base (alternating bit pattern) maximizes it.
const (
	NearBase = 0x0000_1000
	FarBase  = 0x0002_AAA0
)

// romSize is the code ROM window; method bodies alias onto it, so every
// workload program must fit.
const romSize = 0x1000

// AddrMaps names the default explored address maps — the two the
// paper's case study evaluates. The full named vocabulary (AllAddrMaps)
// is wider; the default sweep stays on these two so historical outputs
// are unchanged.
var AddrMaps = []string{"near", "far"}

// mapBases names every address map the harness can build: the stack
// SFR base for each. The extra maps beyond near/far span the address
// space with distinct Hamming profiles against the code ROM at 0 —
// the enlarged design space the multi-fidelity sweep screens. All
// bases are 16-byte aligned (the burst organization requires it).
var mapBases = map[string]uint64{
	"near":   NearBase,
	"far":    FarBase,
	"dense":  0x0000_1040, // adjacent to near: minimal address toggling
	"page":   0x0000_4000, // one page bit away from the code ROM
	"mid":    0x0001_0000, // single high bit
	"sparse": 0x0005_5540, // alternating bits, wider than far
	"hi":     0x0010_0000, // high single bit, long carry runs
	"top":    0x0800_0000, // top of the explored space
}

// AllAddrMaps lists every named address map, the default pair first.
var AllAddrMaps = []string{"near", "far", "dense", "page", "mid", "sparse", "hi", "top"}

// BaseForMap resolves a named address map to its stack SFR base.
func BaseForMap(name string) (uint64, bool) {
	b, ok := mapBases[name]
	return b, ok
}

// SweepLayers lists the bus abstraction layers a sweep accepts: the
// timed layers 1 and 2, and the analytic layer 3 (calibrated
// event-count model, no cycle simulation).
var SweepLayers = []int{1, 2, 3}

// ValidLayer reports whether l is a sweepable layer.
func ValidLayer(l int) bool { return l >= 1 && l <= 3 }

// LayerVocab renders the valid sweep layers for error messages.
func LayerVocab() string {
	parts := make([]string, len(SweepLayers))
	for i, l := range SweepLayers {
		parts[i] = fmt.Sprint(l)
	}
	return strings.Join(parts, ", ")
}

// ParseLayers parses a comma-separated layer list ("1,2,3"),
// rejecting unknown layers upfront — the command-line mirror of
// fault.ParseNames, so a bad layer fails loudly before any pool work.
func ParseLayers(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		l, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("explore: bad layer %q (valid layers: %s)", part, LayerVocab())
		}
		if !ValidLayer(l) {
			return nil, fmt.Errorf("explore: unsupported layer %d (valid layers: %s)", l, LayerVocab())
		}
		out = append(out, l)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("explore: empty layer list (valid layers: %s)", LayerVocab())
	}
	return out, nil
}

// SweepRetry is the master retry policy paired with an active fault
// plan: generous enough that seeded-random error runs cannot abort a
// workload, with a one-cycle backoff before each re-issue.
var SweepRetry = core.RetryPolicy{MaxRetries: 16, Backoff: 1}

// ArbPolicies names the arbitration-policy sweep axis values: the two
// arb.Arbiter policies. The empty string (spelled "none" on the command
// line) keeps the single-master system and is the default.
var ArbPolicies = []string{string(arb.FixedPriority), string(arb.RoundRobin)}

// ParseArbs parses a comma-separated arbitration-policy list
// ("none,fixed,rr"), folding "none" into the empty single-master
// spelling and rejecting unknown policies upfront.
func ParseArbs(spec string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "none" {
			out = append(out, "")
			continue
		}
		if _, err := arb.ParsePolicy(part); err != nil {
			return nil, fmt.Errorf("explore: bad arbitration policy %q (valid: none, %s)",
				part, strings.Join(ArbPolicies, ", "))
		}
		out = append(out, part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("explore: empty arbitration list (valid: none, %s)",
			strings.Join(ArbPolicies, ", "))
	}
	return out, nil
}

// Config is one point of the design space.
type Config struct {
	Layer   int // bus abstraction layer: 1, 2 (timed) or 3 (analytic)
	Org     javacard.Organization
	AddrMap string // named address map (AllAddrMaps)
	Fault   string // named fault plan (fault.Names); "" or "none" = clean
	Arb     string // arbitration policy (ArbPolicies); "" = single master
	Tear    string // named tear plan (tear.Names); "" or "none" = never torn
	Journal string // journal strategy (journal.Names); "" or "none" = unjournaled
}

// String renders the configuration compactly. Clean single-master
// configurations keep the historical three-part form; the fault plan,
// arbitration policy, tear plan and journal strategy append, in that
// order, only when active (the vocabularies are disjoint, so the
// rendering stays unambiguous).
func (c Config) String() string {
	s := fmt.Sprintf("L%d/%s/%s", c.Layer, c.Org, c.AddrMap)
	if c.Fault != "" && c.Fault != "none" {
		s += "/" + c.Fault
	}
	if c.Arb != "" {
		s += "/" + c.Arb
	}
	if t := canonTear(c.Tear); t != "" {
		s += "/" + t
	}
	if j := canonJournal(c.Journal); j != "" {
		s += "/" + j
	}
	return s
}

// Result is the measured outcome of one configuration on one workload.
type Result struct {
	Config
	Workload     string
	Cycles       uint64
	BusEnergyJ   float64
	Transactions uint64
	Retries      uint64 // bus-error re-issues by the masters
	Steps        uint64 // executed bytecodes

	// Card-tear outcome (tear/journal configurations only; zero
	// otherwise). RecoveryJ is the power-up replay's total energy, the
	// exact meter delta of the recovery phase.
	Torn      bool
	CutCycle  uint64
	RecoveryJ float64

	// Metrics is the configuration's observability snapshot — per-phase
	// and per-slave energy, occupancy, latency, fault counters. Only
	// populated when the run was metered (SweepOpts.Metrics).
	Metrics *metrics.Snapshot
}

// EnergyPerStep returns bus energy per bytecode, the case study's merit
// figure.
func (r Result) EnergyPerStep() float64 {
	if r.Steps == 0 {
		return 0
	}
	return r.BusEnergyJ / float64(r.Steps)
}

// CancelledError reports a configuration whose evaluation was aborted
// because the sweep's context was cancelled — a server deadline expired
// or the client went away. It wraps the context's cause, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) answer through the errors.Join result of
// SweepContext.
type CancelledError struct {
	Config   Config
	Workload string
	Cause    error // context.Canceled or context.DeadlineExceeded
}

// Error implements error.
func (e *CancelledError) Error() string {
	return fmt.Sprintf("explore %v/%s: cancelled: %v", e.Config, e.Workload, e.Cause)
}

// Unwrap exposes the context cause for errors.Is matching.
func (e *CancelledError) Unwrap() error { return e.Cause }

// ErrFetchTimeout reports a code fetch whose bus transaction never
// reached a terminal state within javacard.TransactionRetryLimit kernel
// steps — a protocol deadlock in the modelled bus, not a slow slave.
type ErrFetchTimeout struct {
	Addr  uint64 // bus address of the abandoned fetch
	Cycle uint64 // kernel cycle at which the master gave up
}

// Error implements error.
func (e *ErrFetchTimeout) Error() string {
	return fmt.Sprintf("explore: fetch at %#x never completed (gave up at cycle %d after %d bus steps)",
		e.Addr, e.Cycle, javacard.TransactionRetryLimit)
}

// blockingMaster issues single transactions to completion by stepping
// the kernel (the untimed interpreter's view of the bus). It pools one
// transaction object: each fetch runs to completion before the next, so
// the bus never retains the object across calls.
type blockingMaster struct {
	k       *sim.Kernel
	bus     core.Initiator
	ids     uint64
	n       uint64
	tr      ecbus.Transaction
	retry   core.RetryPolicy
	retries uint64
}

func (m *blockingMaster) read8(addr uint64) error {
	m.ids++
	if err := m.tr.ResetSingle(m.ids, ecbus.Fetch, addr, ecbus.W8, 0); err != nil {
		return err
	}
	m.n++
	for i := 0; i < javacard.TransactionRetryLimit; i++ {
		st := m.bus.Access(&m.tr)
		if st == ecbus.StateOK {
			return nil
		}
		if st == ecbus.StateError {
			if int(m.tr.Retries) >= m.retry.MaxRetries {
				return fmt.Errorf("explore: fetch bus error at %#x after %d retries", addr, m.tr.Retries)
			}
			m.tr.ResetForRetry()
			m.retries++
			for b := uint64(0); b < m.retry.Backoff; b++ {
				m.k.Step()
			}
		}
		m.k.Step()
	}
	return &ErrFetchTimeout{Addr: addr, Cycle: m.k.Cycle()}
}

// prepared is the per-workload state hoisted out of the sweep loop: the
// assembled program and the loaded code ROM. Both are immutable once
// built (ROM reads are pure and the bus rejects writes before they
// reach the slave), so one copy is shared read-only by all workers.
type prepared struct {
	w    javacard.Workload
	prog javacard.Program
	rom  *mem.ROM
	fp   uint64 // fingerprint of (name, program image), the feature-cache identity
}

func prepare(w javacard.Workload) (prepared, error) {
	prog := w.Program()
	rom := mem.NewROM("code", 0, romSize, 0, 0)
	if err := rom.Load(0, prog.Main); err != nil {
		return prepared{}, err
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(w.Name))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(prog.Main)
	return prepared{w: w, prog: prog, rom: rom, fp: h.Sum64()}, nil
}

// Run evaluates one configuration on one workload.
func Run(cfg Config, w javacard.Workload, char gatepower.CharTable) (Result, error) {
	p, err := prepare(w)
	if err != nil {
		return Result{}, err
	}
	r, err := runPrepared(context.Background(), cfg, p, char, false)
	if err != nil {
		return Result{}, fmt.Errorf("explore %v/%s: %w", cfg, w.Name, err)
	}
	return r, nil
}

// vmStepBudget bounds one configuration's interpreter run; reaching it
// means the workload diverged, not that the bus is slow.
const vmStepBudget = 10_000_000

// cancelCheckEvery is the bytecode interval between context polls while
// a configuration runs under a cancellable context. One bytecode
// completes in a bounded number of kernel steps, so this bounds the
// cancellation latency to a small fraction of a millisecond.
const cancelCheckEvery = 1024

// runVM executes the interpreter to completion, polling ctx between
// bytecode chunks. A context that can never be cancelled takes the
// original single-call path, so reference runs are untouched.
func runVM(ctx context.Context, vm *javacard.VM) error {
	if ctx.Done() == nil {
		return vm.Run(vmStepBudget)
	}
	for i := uint64(0); i < vmStepBudget; i++ {
		if vm.Halted() {
			return nil
		}
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := vm.Step(); err != nil {
			return err
		}
	}
	if !vm.Halted() {
		return errors.New("jcvm: step budget exhausted")
	}
	return nil
}

// buildMap constructs the per-run address map of a configuration: the
// shared read-only code ROM plus a private hardware stack at the
// configured base, each wrapped in a private fault injector when the
// configuration carries an active plan. It returns the stack base, the
// map, and the retry policy the masters should use.
func buildMap(cfg Config, p prepared, reg *metrics.Registry) (uint64, *ecbus.Map, core.RetryPolicy, error) {
	base, ok := BaseForMap(cfg.AddrMap)
	if !ok {
		return 0, nil, core.RetryPolicy{}, fmt.Errorf("explore: unknown address map %q (valid maps: %s)",
			cfg.AddrMap, strings.Join(AllAddrMaps, ", "))
	}
	hs := javacard.NewHardStack("stack", base)

	// An active fault plan wraps every slave in a per-run injector: the
	// injector carries mutable access counters, so each configuration
	// gets private instances while the ROM underneath stays shared and
	// read-only across workers.
	plan, ok := fault.Named(cfg.Fault)
	if !ok {
		return 0, nil, core.RetryPolicy{}, fmt.Errorf("explore: unknown fault plan %q", cfg.Fault)
	}
	var retry core.RetryPolicy
	rom, stack := ecbus.Slave(p.rom), ecbus.Slave(hs)
	if !plan.Empty() {
		// The stack SFR has destructive reads (pop registers), so it only
		// takes the side-effect-safe projection of the plan.
		rom = fault.Wrap(rom, plan).AttachMetrics(reg)
		stack = fault.Wrap(stack, plan.WithoutReadErrors()).AttachMetrics(reg)
		retry = SweepRetry
	}
	bmap, err := ecbus.NewMap(rom, stack)
	if err != nil {
		return 0, nil, core.RetryPolicy{}, err
	}
	return base, bmap, retry, nil
}

// runPrepared evaluates one configuration against prepared workload
// state. It builds a fully private simulation context — kernel, bus,
// power model, adapter, VM — and therefore may run concurrently with
// other calls sharing the same prepared value. With metered set, the
// run additionally carries a private metrics registry whose final
// snapshot lands in Result.Metrics.
func runPrepared(ctx context.Context, cfg Config, p prepared, char gatepower.CharTable, metered bool) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
	}
	if canonTear(cfg.Tear) != "" || canonJournal(cfg.Journal) != "" {
		// A tear plan or journal strategy promotes the run to the
		// two-phase (session + power-up) persistent system. See tear.go.
		// Clean configurations never enter this branch, which is what
		// keeps Tear: "" sweep outputs byte-identical to the pre-tear
		// harness.
		return runTorn(ctx, cfg, p, char, metered)
	}
	if cfg.Layer == 3 {
		// The analytic layer does not simulate cycles: it counts the
		// configuration's traffic once and evaluates the calibrated
		// model. See screen.go.
		return runAnalytic(ctx, cfg, p, metered)
	}
	if cfg.Arb != "" {
		// An arbitration policy promotes the run to the three-master
		// contended system. See contended.go. The cfg.Arb == "" path
		// below is untouched, which is what keeps single-master sweep
		// outputs byte-identical to the pre-arbiter harness.
		return runContended(ctx, cfg, p, char, metered)
	}
	var reg *metrics.Registry
	if metered {
		reg = metrics.New(fmt.Sprintf("L%d", cfg.Layer))
		reg.SetMaster(p.w.Name)
	}
	k := sim.New(0)
	base, bmap, retry, err := buildMap(cfg, p, reg)
	if err != nil {
		return Result{}, err
	}

	var bus core.Initiator
	var energy func() float64
	switch cfg.Layer {
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		bus, energy = b, b.Power().TotalEnergy
	case 2:
		b := tlm2.New(k, bmap).AttachPower(tlm2.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		bus, energy = b, b.Power().TotalEnergy
	default:
		return Result{}, fmt.Errorf("explore: unsupported layer %d (valid layers: %s)", cfg.Layer, LayerVocab())
	}

	adapter := javacard.NewMasterAdapter(k, bus, base, cfg.Org)
	adapter.Retry = retry
	fetcher := &blockingMaster{k: k, bus: bus, retry: retry}
	mm, fw := p.w.Runtime()
	vm := javacard.NewVM(p.prog, adapter, mm, fw)
	vm.FetchHook = func(pc int) {
		// Interleave the interpreter's code fetch with the stack
		// traffic. Method bodies alias onto the main image window; the
		// traffic pattern, not the fetched value, is what matters here.
		_ = fetcher.read8(uint64(pc) % romSize)
	}
	if err := runVM(ctx, vm); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return Result{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
		}
		return Result{}, err
	}
	if err := adapter.Flush(); err != nil {
		return Result{}, err
	}
	res := Result{
		Config:       cfg,
		Workload:     p.w.Name,
		Cycles:       k.Cycle(),
		BusEnergyJ:   energy(),
		Transactions: adapter.Transactions + fetcher.n,
		Retries:      adapter.Retries + fetcher.retries,
		Steps:        vm.Steps,
	}
	if reg != nil {
		// The interpreter steps the kernel itself, so the run accounting
		// and the master-side retries are recorded here rather than
		// through kernel/master hooks.
		reg.Retries(res.Retries)
		reg.RecordKernel(k.Cycle(), k.SkippedCycles(), k.IdleSkips(), k.ProcsRun())
		reg.Finalize(energy())
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}

// SweepOpts tunes the parallel sweep engine.
type SweepOpts struct {
	// Workers is the number of concurrent configuration evaluations;
	// <= 0 selects runtime.GOMAXPROCS(0). The result order does not
	// depend on the worker count.
	Workers int
	// OnResult, when set, streams each configuration's outcome as it
	// lands, in completion order (nondeterministic under Workers > 1).
	// Calls are serialized, so the callback needs no locking of its
	// own. Failed configurations are reported with the zero Result and
	// a non-nil error.
	OnResult func(Result, error)
	// Faults is the fault-plan sweep axis: named plans (fault.Names)
	// evaluated for every configuration. Empty means clean runs only.
	Faults []string
	// Arbs is the arbitration-policy sweep axis: "" (or "none") keeps
	// the single-master system, "fixed"/"rr" promote the bus to the
	// three-master contended system (CPU + crypto + DMA) under that
	// policy. Empty means single-master only.
	Arbs []string
	// Tears is the card-tear sweep axis: "" (or "none") keeps the
	// uninterrupted run, a named plan (tear.Names) cuts the supply
	// deterministically mid-run. Empty means untorn only.
	Tears []string
	// Journals is the journaling-strategy sweep axis (journal.Names):
	// "" (or "none") persists statics unjournaled, a named strategy
	// routes them through the transaction journal. Empty means
	// unjournaled only.
	Journals []string
	// Metrics attaches a private observability registry to every
	// configuration run and stores its snapshot in Result.Metrics.
	Metrics bool
}

// Sweep evaluates the full cross product of layers × organizations ×
// address maps × workloads with default options (one worker per
// available CPU). See SweepWith.
func Sweep(layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) ([]Result, error) {
	return SweepWith(SweepOpts{}, layers, orgs, maps, workloads)
}

// SweepWith evaluates the cross product over a bounded worker pool.
// Results are returned in input (cross-product) order regardless of
// completion order, so the output is byte-identical for any worker
// count. A failing configuration does not abort the sweep: its error is
// recorded and the remaining points still run, so the call returns the
// partial results together with the joined per-configuration errors.
func SweepWith(opts SweepOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) ([]Result, error) {
	return SweepContext(context.Background(), opts, layers, orgs, maps, workloads)
}

// SweepContext is SweepWith under a context: when ctx is cancelled (a
// server deadline fired, a client disconnected) the in-flight
// configuration evaluations abort within a bounded number of bytecodes
// and every unfinished configuration surfaces as a *CancelledError in
// the joined error, alongside whatever completed before the cut. The
// result-order and partial-failure contracts of SweepWith are
// unchanged.
func SweepContext(ctx context.Context, opts SweepOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) ([]Result, error) {
	jobs, prepErrs := enumerateJobs(opts, layers, orgs, maps, workloads)
	results, errs := runJobs(ctx, opts, jobs)

	out := make([]Result, 0, len(jobs))
	joined := prepErrs
	for i := range jobs {
		if errs[i] != nil {
			joined = append(joined, errs[i])
			continue
		}
		out = append(out, results[i])
	}
	return out, errors.Join(joined...)
}

// job is one pool unit: a configuration paired with its prepared
// workload state and its position in cross-product order.
type job struct {
	idx int
	cfg Config
	p   prepared
}

// enumerateJobs builds the cross product in canonical order (workloads
// outer, then layers, organizations, maps, faults, arbitration
// policies, tear plans, journal strategies) with per-workload
// preparation hoisted. Workloads that fail to prepare contribute an
// error instead of jobs.
func enumerateJobs(opts SweepOpts, layers []int, orgs []javacard.Organization, maps []string, workloads []javacard.Workload) ([]job, []error) {
	faults := opts.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	arbs := opts.Arbs
	if len(arbs) == 0 {
		arbs = []string{""}
	}
	tears := opts.Tears
	if len(tears) == 0 {
		tears = []string{""}
	}
	journals := opts.Journals
	if len(journals) == 0 {
		journals = []string{""}
	}
	var jobs []job
	var prepErrs []error
	for _, w := range workloads {
		p, err := prepare(w)
		if err != nil {
			prepErrs = append(prepErrs, fmt.Errorf("explore %s: %w", w.Name, err))
			continue
		}
		for _, l := range layers {
			for _, o := range orgs {
				for _, m := range maps {
					for _, f := range faults {
						for _, a := range arbs {
							for _, t := range tears {
								for _, j := range journals {
									jobs = append(jobs, job{idx: len(jobs), cfg: Config{Layer: l, Org: o, AddrMap: m, Fault: f, Arb: a, Tear: t, Journal: j}, p: p})
								}
							}
						}
					}
				}
			}
		}
	}
	return jobs, prepErrs
}

// runJobs fans jobs over the bounded worker pool and returns results
// and errors indexed by job position — the engine shared by the
// exhaustive sweep and the multi-fidelity confirmation pass. Exactly
// one of results[i] / errs[i] is meaningful per slot.
func runJobs(ctx context.Context, opts SweepOpts, jobs []job) ([]Result, []error) {
	// Characterize once before the fan-out so workers share the cached
	// table instead of racing to build it (DefaultCharTable is
	// once-guarded either way; this keeps the cost out of the pool).
	char := platform.DefaultCharTable()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	jobCh := make(chan job)
	var cbMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				r, err := runPrepared(ctx, j.cfg, j.p, char, opts.Metrics)
				if err != nil {
					var ce *CancelledError
					if !errors.As(err, &ce) {
						err = fmt.Errorf("explore %v/%s: %w", j.cfg, j.p.w.Name, err)
					}
				}
				results[j.idx], errs[j.idx] = r, err
				if opts.OnResult != nil {
					cbMu.Lock()
					opts.OnResult(r, err)
					cbMu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	return results, errs
}

// Pareto returns the results not dominated in (Cycles, BusEnergyJ)
// within each workload — the frontier the designer picks from. It runs
// in O(n log n): per workload, sort by (cycles, energy) and scan with
// the running energy minimum; a point is on the frontier iff it lowers
// the minimum (or exactly duplicates the point that set it, since equal
// points do not dominate each other). Output preserves input order.
func Pareto(results []Result) []Result {
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &results[order[a]], &results[order[b]]
		if ra.Workload != rb.Workload {
			return ra.Workload < rb.Workload
		}
		if ra.Cycles != rb.Cycles {
			return ra.Cycles < rb.Cycles
		}
		return ra.BusEnergyJ < rb.BusEnergyJ
	})
	keep := make([]bool, len(results))
	curWL := ""
	bestE := math.Inf(1)
	var bestC uint64
	started := false
	for _, idx := range order {
		r := &results[idx]
		if !started || r.Workload != curWL {
			started, curWL = true, r.Workload
			bestE, bestC = math.Inf(1), 0
		}
		switch {
		case r.BusEnergyJ < bestE:
			bestE, bestC = r.BusEnergyJ, r.Cycles
			keep[idx] = true
		case r.BusEnergyJ == bestE && r.Cycles == bestC:
			keep[idx] = true
		}
	}
	var front []Result
	for i, r := range results {
		if keep[i] {
			front = append(front, r)
		}
	}
	return front
}

// rowFmt lays out one table row; the header in Table must match.
const rowFmt = "%-12s %-22s %10d %12.1f %8d %14.2f\n"

// Row renders one result in the exploration table's row format, for
// streaming sweep progress (SweepOpts.OnResult) in the same shape as
// the final table.
func Row(r Result) string {
	return fmt.Sprintf(rowFmt,
		r.Workload, r.Config.String(), r.Cycles, r.BusEnergyJ*1e12,
		r.Transactions, r.EnergyPerStep()*1e12)
}

// Table renders results as the case-study exploration table.
func Table(results []Result) string {
	rows := append([]Result(nil), results...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].BusEnergyJ < rows[j].BusEnergyJ
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-22s %10s %12s %8s %14s\n",
		"workload", "config", "cycles", "energy[pJ]", "tx", "energy/bc[pJ]")
	for _, r := range rows {
		sb.WriteString(Row(r))
	}
	return sb.String()
}
