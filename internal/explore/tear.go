package explore

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/javacard"
	"repro/internal/journal"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tear"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// The tear-aware system's persistent store: an EEPROM holding the
// mirrored VM statics (the data window) and the transaction journal.
// It sits far above every stack SFR base and below the contended
// system's buffers, so no address map collides with it.
const (
	// TearEEBase is the EEPROM base of the tear-aware configurations.
	TearEEBase = 0x0400_0000

	tearEESize   = 0x1000
	tearDataSize = 0x200 // statics window; the journal takes the rest

	// tearTxnWrites groups this many static stores into one journal
	// transaction, so the lazy commit modes have real multi-word
	// transactions to defer (and real uncommitted tails to lose).
	tearTxnWrites = 4
)

// TearRegion is the journal layout of the tear-aware configurations.
func TearRegion() journal.Region {
	return journal.Region{
		DataBase:    TearEEBase,
		JournalBase: TearEEBase + tearDataSize,
		JournalSize: tearEESize - tearDataSize,
	}
}

// canonTear folds the "none" spelling of the tear axis into the empty
// canonical form, mirroring canonFault/canonArb.
func canonTear(name string) string {
	if name == "none" {
		return ""
	}
	return name
}

// canonJournal folds the "none" spelling of the journal axis.
func canonJournal(name string) string {
	if name == "none" {
		return ""
	}
	return name
}

// ParseTears parses a comma-separated tear-plan list ("none,tear-mid"),
// folding "none" into the empty spelling and rejecting unknown plans
// upfront with the full vocabulary.
func ParseTears(spec string) ([]string, error) {
	names, err := tear.ParseNames(spec)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, canonTear(n))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tear: empty plan list (valid plans: %s)", strings.Join(tear.Names, ", "))
	}
	return out, nil
}

// ParseJournals parses a comma-separated journal-strategy list,
// folding "none" into the empty spelling.
func ParseJournals(spec string) ([]string, error) {
	names, err := journal.ParseNames(spec)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, canonJournal(n))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("journal: empty strategy list (valid strategies: %s)", strings.Join(journal.Names, ", "))
	}
	return out, nil
}

// wordMaster issues single 32-bit transactions to completion by
// stepping the kernel — the journal's view of the bus. After every
// completed operation it polls the tear monitor, so a power loss cuts
// between bus operations at an observation point that is identical on
// the reference and optimized bus paths.
type wordMaster struct {
	k       *sim.Kernel
	bus     core.Initiator
	ids     uint64
	n       uint64
	tr      ecbus.Transaction
	retry   core.RetryPolicy
	retries uint64
	mon     *tear.Monitor
	// onRead, when set, observes completed data-window reads (the
	// persistence checker's J2 feed).
	onRead func(addr uint64)
}

func (m *wordMaster) access(kind ecbus.Kind, addr uint64, data uint32) (uint32, error) {
	m.ids++
	if err := m.tr.ResetSingle(m.ids, kind, addr, ecbus.W32, data); err != nil {
		return 0, err
	}
	m.n++
	for i := 0; i < javacard.TransactionRetryLimit; i++ {
		st := m.bus.Access(&m.tr)
		if st == ecbus.StateOK {
			if kind == ecbus.Read && m.onRead != nil {
				m.onRead(addr)
			}
			if m.mon.Check() {
				return 0, journal.ErrPowerLost
			}
			return m.tr.Data[0], nil
		}
		if st == ecbus.StateError {
			if int(m.tr.Retries) >= m.retry.MaxRetries {
				return 0, fmt.Errorf("explore: %v bus error at %#x after %d retries", kind, addr, m.tr.Retries)
			}
			m.tr.ResetForRetry()
			m.retries++
			for b := uint64(0); b < m.retry.Backoff; b++ {
				m.k.Step()
			}
		}
		m.k.Step()
	}
	return 0, &ErrFetchTimeout{Addr: addr, Cycle: m.k.Cycle()}
}

// ReadWord implements journal.BusRW.
func (m *wordMaster) ReadWord(addr uint64) (uint32, error) {
	return m.access(ecbus.Read, addr, 0)
}

// WriteWord implements journal.BusRW.
func (m *wordMaster) WriteWord(addr uint64, data uint32) error {
	_, err := m.access(ecbus.Write, addr, data)
	return err
}

// buildTornMap is buildMap extended with the persistent EEPROM store.
// An active fault plan wraps all three slaves (the stack keeps its
// side-effect-safe projection).
func buildTornMap(cfg Config, p prepared, k *sim.Kernel, reg *metrics.Registry) (uint64, *mem.EEPROM, *ecbus.Map, core.RetryPolicy, error) {
	base, ok := BaseForMap(cfg.AddrMap)
	if !ok {
		return 0, nil, nil, core.RetryPolicy{}, fmt.Errorf("explore: unknown address map %q (valid maps: %s)",
			cfg.AddrMap, strings.Join(AllAddrMaps, ", "))
	}
	hs := javacard.NewHardStack("stack", base)
	ee := mem.NewEEPROM("ee", TearEEBase, tearEESize, k)

	plan, ok := fault.Named(cfg.Fault)
	if !ok {
		return 0, nil, nil, core.RetryPolicy{}, fmt.Errorf("explore: unknown fault plan %q", cfg.Fault)
	}
	var retry core.RetryPolicy
	rom, stack, eeS := ecbus.Slave(p.rom), ecbus.Slave(hs), ecbus.Slave(ee)
	if !plan.Empty() {
		rom = fault.Wrap(rom, plan).AttachMetrics(reg)
		stack = fault.Wrap(stack, plan.WithoutReadErrors()).AttachMetrics(reg)
		// The EEPROM's reads are idempotent, but an injected read error
		// mid-replay would abort recovery rather than exercise it; the
		// store keeps the write/wait projection like the stack.
		eeS = fault.Wrap(eeS, plan.WithoutReadErrors()).AttachMetrics(reg)
		retry = SweepRetry
	}
	bmap, err := ecbus.NewMap(rom, stack, eeS)
	if err != nil {
		return 0, nil, nil, core.RetryPolicy{}, err
	}
	return base, ee, bmap, retry, nil
}

// tearBus builds the configured timed bus over bmap, returning the
// initiator and its bit-exact energy meter.
func tearBus(cfg Config, k *sim.Kernel, bmap *ecbus.Map, char gatepower.CharTable, reg *metrics.Registry) (core.Initiator, func() float64, error) {
	switch cfg.Layer {
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		return b, b.Power().TotalEnergy, nil
	case 2:
		b := tlm2.New(k, bmap).AttachPower(tlm2.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		return b, b.Power().TotalEnergy, nil
	default:
		return nil, nil, fmt.Errorf("explore: card-tear injection needs a timed layer (1 or 2), got layer %d", cfg.Layer)
	}
}

// persister mirrors committed VM statics into the persistent store:
// directly when unjournaled, through the transaction journal otherwise
// (grouping tearTxnWrites stores per transaction). It tracks the
// expected durable state for post-recovery verification.
type persister struct {
	w      *journal.Writer // nil = unjournaled
	bus    *wordMaster
	base   uint64
	open   int
	commit map[uint64]uint32 // journaled: durable words; unjournaled: last written
}

func newPersister(s journal.Strategy, reg journal.Region, bus *wordMaster, pc *checker.Persist) *persister {
	p := &persister{bus: bus, base: reg.DataBase, commit: map[uint64]uint32{}}
	if !s.Empty() {
		p.w = journal.NewWriter(s, reg, bus)
		if pc != nil {
			p.w.Obs = pc.Observe
		}
		p.w.Begin()
	}
	return p
}

// put persists one static store.
func (p *persister) put(idx int, v int16) error {
	addr := p.base + uint64(4*idx)
	if addr >= p.base+tearDataSize {
		return fmt.Errorf("explore: static %d outside the persistent data window", idx)
	}
	data := uint32(uint16(v))
	if p.w == nil {
		if err := p.bus.WriteWord(addr, data); err != nil {
			return err
		}
		p.commit[addr] = data
		return nil
	}
	if err := p.w.Write(addr, data); err != nil {
		return err
	}
	p.open++
	if p.open >= tearTxnWrites {
		return p.flush()
	}
	return nil
}

// flush commits the open transaction and starts the next.
func (p *persister) flush() error {
	if p.w == nil || p.open == 0 {
		return nil
	}
	if err := p.w.Commit(); err != nil {
		return err
	}
	p.open = 0
	p.w.Begin()
	return nil
}

// committed returns the words guaranteed durable: the journal's
// committed prefix when journaled, every written word otherwise.
func (p *persister) committed() map[uint64]uint32 {
	if p.w != nil {
		return p.w.Committed()
	}
	return p.commit
}

// runTorn evaluates a tear/journal configuration: phase A runs the
// workload with VM statics mirrored into the persistent EEPROM until
// the workload halts or the tear monitor cuts the supply (possibly
// corrupting the in-flight NVM word); phase B powers a fresh platform
// up on the surviving EEPROM image, replays the journal, and verifies
// the committed state against the phase-A commit log. Reported cycles,
// energy and traffic sum over both phases; the recovery energy is also
// broken out per phase (scan/apply/finalize) as exact meter deltas.
func runTorn(ctx context.Context, cfg Config, p prepared, char gatepower.CharTable, metered bool) (Result, error) {
	plan, ok := tear.Named(cfg.Tear)
	if !ok {
		return Result{}, fmt.Errorf("explore: unknown tear plan %q (valid plans: %s)",
			cfg.Tear, strings.Join(tear.Names, ", "))
	}
	strat, ok := journal.Named(cfg.Journal)
	if !ok {
		return Result{}, fmt.Errorf("explore: unknown journal strategy %q (valid strategies: %s)",
			cfg.Journal, strings.Join(journal.Names, ", "))
	}
	if cfg.Arb != "" {
		return Result{}, fmt.Errorf("explore: card-tear injection is single-master only (arb %q)", cfg.Arb)
	}

	var reg *metrics.Registry
	if metered {
		reg = metrics.New(fmt.Sprintf("L%d", cfg.Layer))
		reg.SetMaster(p.w.Name)
	}
	region := TearRegion()

	// ---- Phase A: the powered session, cut by the tear monitor.
	k := sim.New(0)
	base, ee, bmap, retry, err := buildTornMap(cfg, p, k, reg)
	if err != nil {
		return Result{}, err
	}
	bus, energy, err := tearBus(cfg, k, bmap, char, reg)
	if err != nil {
		return Result{}, err
	}

	clock := k.Cycle // the checker reports against the live phase's clock
	pc := checker.NewPersist(func() uint64 { return clock() })
	mon := tear.NewMonitor(plan, k.Cycle, energy, ee.Programs)
	jbus := &wordMaster{k: k, bus: bus, retry: retry, mon: mon}
	jbus.onRead = func(addr uint64) {
		if addr < region.JournalBase {
			pc.ObserveRead(addr)
		}
	}
	pers := newPersister(strat, region, jbus, pc)

	adapter := javacard.NewMasterAdapter(k, bus, base, cfg.Org)
	adapter.Retry = retry
	fetcher := &blockingMaster{k: k, bus: bus, retry: retry}
	mm, fw := p.w.Runtime()
	vm := javacard.NewVM(p.prog, adapter, mm, fw)
	vm.FetchHook = func(pcOff int) {
		_ = fetcher.read8(uint64(pcOff) % romSize)
	}
	vm.StaticHook = pers.put

	// The interpreter loop polls the monitor at every bytecode boundary
	// — the second observation point class, also identical between the
	// reference and optimized paths.
	torn := false
	for i := uint64(0); i < vmStepBudget && !vm.Halted(); i++ {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, &CancelledError{Config: cfg, Workload: p.w.Name, Cause: err}
			}
		}
		if mon.Check() {
			torn = true
			break
		}
		if err := vm.Step(); err != nil {
			if errors.Is(err, journal.ErrPowerLost) {
				torn = true
				break
			}
			return Result{}, err
		}
	}
	if !torn && !vm.Halted() {
		return Result{}, errors.New("jcvm: step budget exhausted")
	}
	if !torn {
		// Normal completion: flush the trailing transaction, which may
		// itself be cut.
		if err := pers.flush(); err == nil {
			err = adapter.Flush()
			if err != nil {
				return Result{}, err
			}
		} else if errors.Is(err, journal.ErrPowerLost) {
			torn = true
		} else {
			return Result{}, err
		}
	}

	// The supply is gone: resolve the partial NVM write. The corruption
	// pattern depends only on (seed, addr, ordinal) — see mem.TearAt.
	var corrupt []mem.TornWord
	if torn {
		if tw, did := ee.TearAt(mon.CutCycle(), plan.Seed); did {
			corrupt = append(corrupt, tw)
			pc.MarkTorn(tw.Addr)
		}
	}
	committed := make(map[uint64]uint32, len(pers.committed()))
	for a, v := range pers.committed() {
		committed[a] = v
	}
	cyclesA, e1 := k.Cycle(), energy()
	txA, retriesA := adapter.Transactions+fetcher.n+jbus.n, adapter.Retries+fetcher.retries+jbus.retries

	// ---- Phase B: power-up on the surviving EEPROM image.
	k2 := sim.New(0)
	_, ee2, bmap2, retry2, err := buildTornMap(cfg, p, k2, reg)
	if err != nil {
		return Result{}, err
	}
	if err := ee2.Load(0, ee.Bytes()); err != nil {
		return Result{}, err
	}
	// Phase B's bus carries its own meter; the registry stays on phase
	// A's bus so the energy cursor never runs backward. The recovery
	// energy is attributed through the journal counters instead.
	bus2, energy2, err := tearBus(cfg, k2, bmap2, char, nil)
	if err != nil {
		return Result{}, err
	}
	clock = k2.Cycle
	jbus2 := &wordMaster{k: k2, bus: bus2, retry: retry2, mon: nil}
	jbus2.onRead = jbus.onRead // same data-window filter, same checker

	var rec journal.Recovery
	if !strat.Empty() {
		rec, err = journal.Replay(strat, region, jbus2, energy2, pc.Observe)
		if err != nil {
			return Result{}, err
		}
		// Verify: every committed word must read back exactly. This is
		// the recovery contract the journaling strategies are sweeping
		// against; a mismatch is a subsystem bug, not a result.
		for addr, want := range committed {
			got, err := jbus2.ReadWord(addr)
			if err != nil {
				return Result{}, err
			}
			if got != want {
				return Result{}, fmt.Errorf("explore: recovery lost %#x: got %#x, want %#x", addr, got, want)
			}
		}
	}
	if !pc.Clean() {
		return Result{}, fmt.Errorf("explore: persistence checker: %v", pc.Violations()[0])
	}

	res := Result{
		Config:       cfg,
		Workload:     p.w.Name,
		Cycles:       cyclesA + k2.Cycle(),
		BusEnergyJ:   e1 + energy2(),
		Transactions: txA + jbus2.n,
		Retries:      retriesA + jbus2.retries,
		Steps:        vm.Steps,
		Torn:         torn,
		CutCycle:     mon.CutCycle(),
		RecoveryJ:    rec.BoundsJ[3] - rec.BoundsJ[0],
	}
	if reg != nil {
		reg.Retries(res.Retries)
		if torn {
			reg.TearCut(mon.CutCycle(), mon.CutProgram(), uint64(len(corrupt)))
		}
		if pers.w != nil {
			st := pers.w.Stats
			reg.JournalActivity(st.Records, st.Markers, st.Commits, st.InPlaceWrites)
		}
		if !strat.Empty() {
			reg.JournalReplay(uint64(rec.Applied), uint64(rec.Discarded), uint64(rec.WordsApplied),
				rec.ScanJ, rec.ApplyJ, rec.FinalizeJ)
		}
		reg.RecordKernel(cyclesA, k.SkippedCycles(), k.IdleSkips(), k.ProcsRun())
		// Finalize against the two-phase total so the snapshot's
		// TotalEnergyJ is bit-for-bit the reported BusEnergyJ (phase B's
		// share lands unattributed — its bus has no registry).
		reg.Finalize(res.BusEnergyJ)
		snap := reg.Snapshot()
		res.Metrics = &snap
	}
	return res, nil
}
