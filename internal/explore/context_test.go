package explore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/javacard"
)

// A cancelled sweep must abort promptly, and every configuration that
// did not finish must surface as a *CancelledError wrapping the
// context cause inside the errors.Join result, while configurations
// that completed before the cut are still returned.
func TestSweepContextCancelSurfacesTypedErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	opts := SweepOpts{
		Workers: 1,
		OnResult: func(Result, error) {
			n++
			if n == 2 {
				cancel() // mid-sweep: some done, some not yet started
			}
		},
	}
	results, err := SweepContext(ctx, opts, []int{1, 2}, javacard.Organizations, AddrMaps,
		javacard.Workloads()[:1])
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error does not match context.Canceled: %v", err)
	}
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("joined error carries no *CancelledError: %v", err)
	}
	if ce.Workload == "" || ce.Config.Layer == 0 {
		t.Fatalf("CancelledError not annotated with its configuration: %+v", ce)
	}
	total := 2 * len(javacard.Organizations) * len(AddrMaps)
	if len(results) >= total {
		t.Fatalf("cancelled sweep still completed all %d configurations", total)
	}
	if len(results) < 2 {
		t.Fatalf("configurations finished before the cancel were dropped: got %d", len(results))
	}
}

// A deadline that expires while a configuration is mid-run aborts the
// interpreter between bytecode chunks and reports DeadlineExceeded.
func TestSweepContextDeadlineAbortsInFlight(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := SweepContext(ctx, SweepOpts{Workers: 2}, []int{1, 2}, javacard.Organizations,
		AddrMaps, javacard.Workloads())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in joined error, got %v", err)
	}
}

// An already-cancelled context runs nothing: every configuration is a
// CancelledError and no results are produced.
func TestSweepContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := SweepContext(ctx, SweepOpts{Workers: 4}, []int{1}, javacard.Organizations,
		AddrMaps, javacard.Workloads()[:1])
	if len(results) != 0 {
		t.Fatalf("pre-cancelled sweep produced %d results", len(results))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// The background-context path is the historical one: SweepWith and
// SweepContext(Background) agree bit for bit.
func TestSweepContextBackgroundEquivalent(t *testing.T) {
	wls := javacard.Workloads()[:1]
	a, errA := SweepWith(SweepOpts{Workers: 2}, []int{1}, javacard.Organizations, AddrMaps, wls)
	b, errB := SweepContext(context.Background(), SweepOpts{Workers: 2}, []int{1},
		javacard.Organizations, AddrMaps, wls)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("error mismatch: %v vs %v", errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("result count mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		a[i].Metrics, b[i].Metrics = nil, nil
		if a[i] != b[i] {
			t.Fatalf("result %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
