package explore

import (
	"context"
	"math"
	"testing"

	"repro/internal/javacard"
	"repro/internal/platform"
)

func TestParseArbs(t *testing.T) {
	got, err := ParseArbs("none,fixed,rr")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "" || got[1] != "fixed" || got[2] != "rr" {
		t.Fatalf("ParseArbs = %q", got)
	}
	for _, bad := range []string{"priority", "fixed,bogus", ""} {
		if _, err := ParseArbs(bad); err == nil {
			t.Fatalf("ParseArbs(%q) accepted", bad)
		}
	}
}

func TestConfigStringArb(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near"}, "L1/halfword/near"},
		{Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near", Fault: "flaky"}, "L1/halfword/near/flaky"},
		{Config{Layer: 2, Org: javacard.OrgHalf, AddrMap: "far", Arb: "rr"}, "L2/halfword/far/rr"},
		{Config{Layer: 2, Org: javacard.OrgHalf, AddrMap: "far", Fault: "storm", Arb: "fixed"}, "L2/halfword/far/storm/fixed"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Fatalf("Config.String() = %q, want %q", got, c.want)
		}
	}
}

// TestContendedRunCompletes pins the basic contract of a multi-master
// evaluation: it completes on both timed layers and both policies,
// carries the autonomous masters' extra traffic, and costs more energy
// than the same configuration single-master.
func TestContendedRunCompletes(t *testing.T) {
	char := platform.DefaultCharTable()
	w := churn()
	for _, layer := range []int{1, 2} {
		solo, err := Run(Config{Layer: layer, Org: javacard.OrgHalf, AddrMap: "near"}, w, char)
		if err != nil {
			t.Fatalf("L%d solo: %v", layer, err)
		}
		for _, pol := range ArbPolicies {
			r, err := Run(Config{Layer: layer, Org: javacard.OrgHalf, AddrMap: "near", Arb: pol}, w, char)
			if err != nil {
				t.Fatalf("L%d/%s: %v", layer, pol, err)
			}
			if r.Transactions <= solo.Transactions {
				t.Fatalf("L%d/%s: %d transactions, solo had %d — contenders missing",
					layer, pol, r.Transactions, solo.Transactions)
			}
			if r.BusEnergyJ <= solo.BusEnergyJ {
				t.Fatalf("L%d/%s: contended energy %g not above solo %g",
					layer, pol, r.BusEnergyJ, solo.BusEnergyJ)
			}
			if r.Steps != solo.Steps {
				t.Fatalf("L%d/%s: %d steps, solo %d — contention must not change the program",
					layer, pol, r.Steps, solo.Steps)
			}
		}
	}
}

// TestContendedRunDeterministic pins bit-exact reproducibility of the
// contended evaluation — the property every golden gate builds on.
func TestContendedRunDeterministic(t *testing.T) {
	char := platform.DefaultCharTable()
	cfg := Config{Layer: 1, Org: javacard.OrgPacked, AddrMap: "far", Arb: "rr"}
	a, err := Run(cfg, churn(), char)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, churn(), char)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || math.Float64bits(a.BusEnergyJ) != math.Float64bits(b.BusEnergyJ) ||
		a.Transactions != b.Transactions || a.Retries != b.Retries {
		t.Fatalf("contended run not deterministic: %+v vs %+v", a, b)
	}
}

// TestContendedFaultedRunCompletes drives the contended system through
// every named fault plan: the masters must retry through the injected
// errors and the run must still drain.
func TestContendedFaultedRunCompletes(t *testing.T) {
	char := platform.DefaultCharTable()
	for _, f := range []string{"flaky", "storm", "grind"} {
		cfg := Config{Layer: 1, Org: javacard.OrgHalf, AddrMap: "near", Fault: f, Arb: "fixed"}
		r, err := Run(cfg, churn(), char)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if f != "storm" && r.Retries == 0 {
			t.Fatalf("%s: faulted contended run recorded no retries", f)
		}
	}
}

// TestFeatureCacheKeyedByArb is the regression test for the screen
// feature cache: two configurations differing only in arbitration
// policy must never share a cache entry — the contended run's feature
// vector carries three masters' traffic, the solo run's only one.
func TestFeatureCacheKeyedByArb(t *testing.T) {
	w := churn()
	p, err := prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	solo := Config{Layer: 3, Org: javacard.OrgHalf, AddrMap: "near"}
	cont := solo
	cont.Arb = "rr"

	fSolo, stSolo, err := countRun(ctx, solo, p)
	if err != nil {
		t.Fatal(err)
	}
	fCont, stCont, err := countRun(ctx, cont, p)
	if err != nil {
		t.Fatal(err)
	}
	if stCont.tx <= stSolo.tx {
		t.Fatalf("contended count %d tx, solo %d — cache key collapsed the arb axis",
			stCont.tx, stSolo.tx)
	}
	if fCont == fSolo {
		t.Fatal("contended features identical to solo features")
	}
	// The cache itself must hold two distinct entries.
	featMu.Lock()
	_, okSolo := featCache[featKey{fp: p.fp, org: solo.Org, amap: solo.AddrMap, fault: "", arb: ""}]
	_, okCont := featCache[featKey{fp: p.fp, org: solo.Org, amap: solo.AddrMap, fault: "", arb: "rr"}]
	featMu.Unlock()
	if !okSolo || !okCont {
		t.Fatalf("cache entries solo=%v contended=%v, want both", okSolo, okCont)
	}
	// And a repeat lookup must hit the right one bit-exactly.
	fAgain, stAgain, err := countRun(ctx, cont, p)
	if err != nil {
		t.Fatal(err)
	}
	if fAgain != fCont || stAgain != stCont {
		t.Fatal("cached contended features differ from the computed ones")
	}
}

// TestSweepArbAxis pins the cross-product shape and result order with
// the arbitration axis active.
func TestSweepArbAxis(t *testing.T) {
	results, err := SweepWith(SweepOpts{Arbs: []string{"", "rr"}}, []int{1},
		[]javacard.Organization{javacard.OrgHalf}, []string{"near"},
		[]javacard.Workload{churn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if results[0].Arb != "" || results[1].Arb != "rr" {
		t.Fatalf("arb order %q, %q — arbs must be innermost", results[0].Arb, results[1].Arb)
	}
}
