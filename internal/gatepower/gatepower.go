// Package gatepower is this repository's substitute for Diesel, the
// gate-level power estimation tool the paper used as its energy
// reference. Like Diesel it works below the transaction level: it
// observes every wire of the bus interface each cycle, distinguishes
// transition types, and prices each transition with wire-specific
// parasitics (capacitance, slope from RC loading, Miller coupling to
// adjacent bits), plus effects invisible at transaction level — decoder
// glitching, clock-tree switching, and leakage.
//
// The paper: "Additional to detailed timing information the tool uses
// information from the layout about parasitic capacitances and
// resistances. It estimates the dissipated energy for each wire and
// module on the chip. [...] The output shows the number of transitions
// between false, true and high-impedance."
//
// The modelled EC interface uses only unidirectional, actively driven
// signals, so the false/true/high-impedance transition taxonomy
// degenerates to rise/fall here; the taxonomy (and the layer models'
// blindness to it) is preserved through distinct rise and fall energies.
//
// Characterization: after a run over a characterization corpus, Char()
// produces the per-signal average-energy-per-transition table that the
// transaction-level energy models consume — exactly the paper's
// abstraction step: "We abstracted all different transitions and use the
// average energy per transition for each signal considered for our power
// estimation."
package gatepower

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/ecbus"
	"repro/internal/logic"
)

// referencePath selects the straightforward full-scan observation loop
// instead of the delta-driven one for estimators constructed while it is
// set. Flipped by core.SetReference; the golden-equivalence tests prove
// both paths produce byte-identical results.
var referencePath atomic.Bool

// SetReferencePath switches newly constructed estimators between the
// reference (full-scan) and optimized (dirty-mask) observation paths.
func SetReferencePath(on bool) { referencePath.Store(on) }

// WireSpec holds the layout-derived parasitics of one signal group.
type WireSpec struct {
	CapFF  float64 // effective switched capacitance per bit, femtofarads
	SlopeK float64 // slope/short-circuit multiplier from RC loading (>= 1)
}

// Config is the extracted "layout database" of the bus interface unit and
// bus controller. DefaultConfig returns values representative of a
// 0.18 µm smart-card process; absolute numbers are synthetic but the
// ratios (long address/data nets vs short control nets, decoder glitch
// share, clock share) drive the accuracy relationships the paper reports.
type Config struct {
	VddVolts float64

	Wires [ecbus.NumSignals]WireSpec

	KRise float64 // rise-transition multiplier (charging + short circuit)
	KFall float64 // fall-transition multiplier

	// CouplingK scales Miller coupling between adjacent bits of multi-bit
	// buses: opposite-direction pairs add CouplingK of a bit energy,
	// same-direction pairs save half of that.
	CouplingK float64

	// GlitchWiresPerAddrBit is the average number of decoder-internal
	// wire transitions caused by each toggling address bit (combinational
	// glitching of the address decoder).
	GlitchWiresPerAddrBit float64
	DecoderWireCapFF      float64

	ClockCapFF       float64 // clock tree capacitance switched per edge
	LeakagePerCycleJ float64
}

// DefaultConfig returns the reference parasitics set used by all
// experiments (recorded in EXPERIMENTS.md).
func DefaultConfig() Config {
	c := Config{
		VddVolts:              1.8,
		KRise:                 1.08,
		KFall:                 0.94,
		CouplingK:             0.22,
		GlitchWiresPerAddrBit: 0.9,
		DecoderWireCapFF:      18,
		// The clock load and leakage charged here are the BIU/controller
		// share only (the cores and memories have their own budgets);
		// they are deliberately small so the reference energy is
		// dominated by interface switching, as in the paper's setup.
		ClockCapFF:       0.9,
		LeakagePerCycleJ: 0.5e-15,
	}
	// Long, heavily loaded nets: address and data buses route across the
	// chip to every slave. Control wires are short point-to-point nets.
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		c.Wires[id] = WireSpec{CapFF: 26, SlopeK: 1.02} // control default
	}
	c.Wires[ecbus.SigA] = WireSpec{CapFF: 48, SlopeK: 1.10}
	c.Wires[ecbus.SigWData] = WireSpec{CapFF: 58, SlopeK: 1.12}
	c.Wires[ecbus.SigRData] = WireSpec{CapFF: 58, SlopeK: 1.12}
	c.Wires[ecbus.SigBE] = WireSpec{CapFF: 30, SlopeK: 1.04}
	c.Wires[ecbus.SigSel] = WireSpec{CapFF: 18, SlopeK: 1.0}
	return c
}

// bitEnergy returns the base energy of one full-swing transition of one
// bit of signal id: ½·C·V² scaled by the wire's slope factor.
func (c *Config) bitEnergy(id ecbus.SignalID) float64 {
	w := c.Wires[id]
	return 0.5 * w.CapFF * 1e-15 * c.VddVolts * c.VddVolts * w.SlopeK
}

// BitEnergy exposes the per-signal base transition energy to external
// estimation engines (the batched SoA engine) that must reproduce the
// estimator's precomputed constants bit for bit.
func (c *Config) BitEnergy(id ecbus.SignalID) float64 { return c.bitEnergy(id) }

// ClockEnergyPerCycleJ returns the per-cycle clock-tree energy, keeping
// the exact float expression shape NewEstimator precomputes so repeated
// addition elsewhere stays bit-identical to Observe's accumulation.
func (c *Config) ClockEnergyPerCycleJ() float64 {
	return 2 * 0.5 * c.ClockCapFF * 1e-15 * c.VddVolts * c.VddVolts
}

// DecoderWireEnergyJ returns the per-glitching-wire decoder energy with
// the same expression shape as NewEstimator's precomputed constant.
func (c *Config) DecoderWireEnergyJ() float64 {
	return 0.5 * c.DecoderWireCapFF * 1e-15 * c.VddVolts * c.VddVolts
}

// SigStats accumulates per-signal observations, Diesel's per-wire output.
type SigStats struct {
	Rises, Falls uint64
	EnergyJ      float64
}

// Transitions returns the total transition count of the signal group.
func (s SigStats) Transitions() uint64 { return s.Rises + s.Falls }

// Estimator observes the wire bundle cycle by cycle and integrates
// energy. Register Observe in the kernel's Post phase, after the bus
// process has driven the cycle's wire values.
//
// The default observation path is delta-driven: it consumes the bundle's
// dirty mask (Bundle.TakeDirty) and prices only signals that were
// written this cycle, using per-signal constants precomputed at
// construction. An estimator is therefore the bundle's single dirty-mask
// consumer and must observe it every cycle (or be notified of skipped
// idle cycles via ObserveIdle). The reference path (SetReferencePath)
// performs the original full scan; both produce bit-identical energies.
type Estimator struct {
	cfg       Config
	prev      [ecbus.NumSignals]uint64 // previous cycle's wires; all-zero at reset, as on silicon
	reference bool

	// Construction-time lookup tables for the per-cycle hot path.
	bitE     [ecbus.NumSignals]float64 // bitEnergy(id)
	mask     [ecbus.NumSignals]uint64  // width mask of id
	sigBits  [ecbus.NumSignals]int     // width of id
	clockJ   float64                   // clock-tree energy per cycle
	decoderJ float64                   // decoder energy per glitching wire

	cycles  uint64
	perSig  [ecbus.NumSignals]SigStats
	decoder float64 // glitch energy attributed to the decoder module
	clock   float64
	leakage float64
}

// NewEstimator returns an estimator over the given extracted netlist
// configuration.
func NewEstimator(cfg Config) *Estimator {
	e := &Estimator{cfg: cfg, reference: referencePath.Load()}
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		e.bitE[id] = cfg.bitEnergy(id)
		e.mask[id] = ecbus.MaskOf(id)
		e.sigBits[id] = ecbus.Signals[id].Bits
	}
	// Whole-cycle constants keep the exact float expression shapes of the
	// per-cycle reference code so repeated addition stays bit-identical.
	e.clockJ = cfg.ClockEnergyPerCycleJ()
	e.decoderJ = cfg.DecoderWireEnergyJ()
	return e
}

// Observe integrates one cycle's wire state. The reset reference is the
// all-zero bundle, matching the power-on state of the wires.
func (e *Estimator) Observe(b *ecbus.Bundle) {
	if e.reference {
		e.observeReference(b)
		return
	}
	e.cycles++
	e.clock += e.clockJ
	e.leakage += e.cfg.LeakagePerCycleJ
	dirty := b.TakeDirty()
	if dirty == 0 {
		return // all idle: no wire was written to a new value
	}
	oldA := e.prev[ecbus.SigA]
	for m := dirty; m != 0; m &= m - 1 {
		id := ecbus.SignalID(bits.TrailingZeros32(m))
		old, new := e.prev[id], b.Get(id)
		if old == new {
			continue // written away and back within the cycle
		}
		rises := logic.RisesMasked(old, new, e.mask[id])
		falls := logic.FallsMasked(old, new, e.mask[id])
		be := e.bitE[id]
		energy := float64(rises)*be*e.cfg.KRise + float64(falls)*be*e.cfg.KFall
		if e.sigBits[id] > 1 {
			opp := logic.CoupledOppositeMasked(old, new, e.mask[id])
			same := logic.CoupledSameMasked(old, new, e.mask[id])
			energy += (float64(opp) - 0.5*float64(same)) * e.cfg.CouplingK * be
		}
		st := &e.perSig[id]
		st.Rises += uint64(rises)
		st.Falls += uint64(falls)
		st.EnergyJ += energy
		e.prev[id] = new
	}
	// Decoder glitching: combinational address-decoder wires toggle
	// (possibly several times) whenever the address inputs change. The
	// address can only have changed if it is dirty.
	if dirty&(1<<uint(ecbus.SigA)) != 0 {
		if ham := logic.HammingMasked(oldA, b.Get(ecbus.SigA), e.mask[ecbus.SigA]); ham > 0 {
			e.decoder += float64(ham) * e.cfg.GlitchWiresPerAddrBit * e.decoderJ
		}
	}
}

// observeReference is the original full-scan observation loop, kept
// verbatim as the golden reference for the delta-driven path.
func (e *Estimator) observeReference(b *ecbus.Bundle) {
	e.cycles++
	e.clock += 2 * 0.5 * e.cfg.ClockCapFF * 1e-15 * e.cfg.VddVolts * e.cfg.VddVolts
	e.leakage += e.cfg.LeakagePerCycleJ
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		old, new := e.prev[id], b.Get(id)
		if old == new {
			continue
		}
		w := ecbus.Signals[id].Bits
		rises := logic.Rises(old, new, w)
		falls := logic.Falls(old, new, w)
		be := e.cfg.bitEnergy(id)
		energy := float64(rises)*be*e.cfg.KRise + float64(falls)*be*e.cfg.KFall
		if w > 1 {
			opp := logic.CoupledOpposite(old, new, w)
			same := logic.CoupledSame(old, new, w)
			energy += (float64(opp) - 0.5*float64(same)) * e.cfg.CouplingK * be
		}
		st := &e.perSig[id]
		st.Rises += uint64(rises)
		st.Falls += uint64(falls)
		st.EnergyJ += energy
	}
	if ham := logic.Hamming(e.prev[ecbus.SigA], b.Get(ecbus.SigA), ecbus.AddrBits); ham > 0 {
		de := 0.5 * e.cfg.DecoderWireCapFF * 1e-15 * e.cfg.VddVolts * e.cfg.VddVolts
		e.decoder += float64(ham) * e.cfg.GlitchWiresPerAddrBit * de
	}
	e.prev = b.Snapshot()
}

// ObserveIdle books n cycles during which no wire changed — the kernel's
// idle-skip fast-forward path. Clock and leakage are integrated by
// repeated addition, exactly as n individual Observe calls would, so the
// accumulated floats stay bit-identical to the unskipped run.
func (e *Estimator) ObserveIdle(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.cycles++
		e.clock += e.clockJ
		e.leakage += e.cfg.LeakagePerCycleJ
	}
}

// Cycles returns the number of observed cycles.
func (e *Estimator) Cycles() uint64 { return e.cycles }

// SignalStats returns the accumulated per-signal statistics.
func (e *Estimator) SignalStats(id ecbus.SignalID) SigStats { return e.perSig[id] }

// InterfaceEnergy returns the energy dissipated on the EC interface
// signals proper (excluding the controller-internal decoder select).
func (e *Estimator) InterfaceEnergy() float64 {
	var sum float64
	for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
		sum += e.perSig[id].EnergyJ
	}
	return sum
}

// TotalEnergy returns the full gate-level energy: interface wires,
// decoder select and glitching, clock tree and leakage.
func (e *Estimator) TotalEnergy() float64 {
	return e.InterfaceEnergy() + e.perSig[ecbus.SigSel].EnergyJ + e.decoder + e.clock + e.leakage
}

// Breakdown is Diesel's "energy for each wire and module" output.
type Breakdown struct {
	PerSignal [ecbus.NumSignals]SigStats
	DecoderJ  float64
	ClockJ    float64
	LeakageJ  float64
	Cycles    uint64
}

// Breakdown returns a copy of the per-module accounting.
func (e *Estimator) Breakdown() Breakdown {
	return Breakdown{PerSignal: e.perSig, DecoderJ: e.decoder, ClockJ: e.clock, LeakageJ: e.leakage, Cycles: e.cycles}
}

// Total returns the breakdown's total energy.
func (b *Breakdown) Total() float64 {
	var sum float64
	for _, s := range b.PerSignal {
		sum += s.EnergyJ
	}
	return sum + b.DecoderJ + b.ClockJ + b.LeakageJ
}

// String renders the breakdown as a Diesel-style report, largest
// consumers first.
func (b *Breakdown) String() string {
	type row struct {
		name    string
		trans   uint64
		energyJ float64
	}
	rows := make([]row, 0, ecbus.NumSignals+3)
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		s := b.PerSignal[id]
		rows = append(rows, row{id.String(), s.Transitions(), s.EnergyJ})
	}
	rows = append(rows,
		row{"decoder(glitch)", 0, b.DecoderJ},
		row{"clock", 2 * b.Cycles, b.ClockJ},
		row{"leakage", 0, b.LeakageJ})
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].energyJ > rows[j].energyJ })
	var sb strings.Builder
	fmt.Fprintf(&sb, "gate-level energy over %d cycles: %.3f pJ\n", b.Cycles, b.Total()*1e12)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s %10d transitions %12.3f pJ\n", r.name, r.trans, r.energyJ*1e12)
	}
	return sb.String()
}

// CharTable is the characterization product consumed by the
// transaction-level energy models: the average energy per transition for
// each EC interface signal, abstracted over transition types, slopes and
// coupling — exactly the information loss the paper describes between
// the gate-level estimator and the layer models.
type CharTable struct {
	PerTransitionJ [ecbus.NumSignals]float64
}

// Char builds the characterization table from this run. Signals that
// never switched during characterization fall back to their nominal
// ½·C·V² bit energy so the table stays usable on richer workloads.
func (e *Estimator) Char() CharTable {
	var t CharTable
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		s := e.perSig[id]
		if n := s.Transitions(); n > 0 {
			t.PerTransitionJ[id] = s.EnergyJ / float64(n)
		} else {
			t.PerTransitionJ[id] = e.cfg.bitEnergy(id)
		}
	}
	return t
}
