package gatepower

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ecbus"
)

func TestNoActivityCostsOnlyClockAndLeakage(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEstimator(cfg)
	var b ecbus.Bundle
	for i := 0; i < 100; i++ {
		e.Observe(&b)
	}
	if got := e.InterfaceEnergy(); got != 0 {
		t.Fatalf("static wires dissipated %.3e J", got)
	}
	wantClock := 100 * 2 * 0.5 * cfg.ClockCapFF * 1e-15 * cfg.VddVolts * cfg.VddVolts
	wantLeak := 100 * cfg.LeakagePerCycleJ
	if got := e.TotalEnergy(); !close(got, wantClock+wantLeak, 1e-12) {
		t.Fatalf("total %.3e, want %.3e", got, wantClock+wantLeak)
	}
}

func close(a, b, rel float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	return d <= rel*m+1e-30
}

func TestRiseCostsMoreThanFall(t *testing.T) {
	cfg := DefaultConfig()
	// step returns the energy of only the old->new transition (the
	// reset->old step is measured and subtracted).
	step := func(old, new uint64) float64 {
		e := NewEstimator(cfg)
		var b ecbus.Bundle
		b.Set(ecbus.SigWData, old)
		e.Observe(&b)
		before := e.SignalStats(ecbus.SigWData).EnergyJ
		b.Set(ecbus.SigWData, new)
		e.Observe(&b)
		return e.SignalStats(ecbus.SigWData).EnergyJ - before
	}
	// isolate a single-bit rise vs fall at bit 4 (no coupling partner).
	rise := step(0, 1<<4)
	fall := step(1<<4, 0)
	if rise <= fall {
		t.Fatalf("rise %.3e <= fall %.3e; transition types not distinguished", rise, fall)
	}
}

func TestOppositeCouplingCostsMore(t *testing.T) {
	cfg := DefaultConfig()
	step := func(old, new uint64) float64 {
		e := NewEstimator(cfg)
		var b ecbus.Bundle
		b.Set(ecbus.SigWData, old)
		e.Observe(&b)
		before := e.SignalStats(ecbus.SigWData).EnergyJ
		b.Set(ecbus.SigWData, new)
		e.Observe(&b)
		return e.SignalStats(ecbus.SigWData).EnergyJ - before
	}
	// Two adjacent bits: one rise+one fall in opposite directions must
	// cost more than a rise+fall far apart (Miller coupling).
	uncoupled := step(0b1_0000_0000, 0b0_0000_0001)
	opposite := step(0b10, 0b01)
	if opposite <= uncoupled {
		t.Fatalf("opposite coupling %.3e <= uncoupled %.3e", opposite, uncoupled)
	}
}

func TestDecoderGlitchTracksAddressActivity(t *testing.T) {
	cfg := DefaultConfig()
	run := func(addrs []uint64) float64 {
		e := NewEstimator(cfg)
		var b ecbus.Bundle
		for _, a := range addrs {
			b.Set(ecbus.SigA, a)
			e.Observe(&b)
		}
		return e.Breakdown().DecoderJ
	}
	quiet := run([]uint64{0x100, 0x104, 0x108, 0x10C})
	noisy := run([]uint64{0x100, 0xFFFFFF0, 0x100, 0xFFFFFF0})
	if noisy <= quiet {
		t.Fatalf("decoder glitch energy: noisy %.3e <= quiet %.3e", noisy, quiet)
	}
}

func TestEnergyMonotoneInTransitions(t *testing.T) {
	cfg := DefaultConfig()
	f := func(vals []uint32) bool {
		e := NewEstimator(cfg)
		var b ecbus.Bundle
		prevTotal := 0.0
		for _, v := range vals {
			b.Set(ecbus.SigRData, uint64(v))
			e.Observe(&b)
			if e.TotalEnergy() < prevTotal {
				return false
			}
			prevTotal = e.TotalEnergy()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownTotalsConsistent(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEstimator(cfg)
	var b ecbus.Bundle
	for i := 0; i < 50; i++ {
		b.Set(ecbus.SigA, uint64(i)*0x9E3779B9)
		b.Set(ecbus.SigWData, uint64(i)*0x85EBCA6B)
		b.SetBool(ecbus.SigAValid, i%2 == 0)
		e.Observe(&b)
	}
	bd := e.Breakdown()
	if !close(bd.Total(), e.TotalEnergy(), 1e-12) {
		t.Fatalf("breakdown total %.3e != estimator total %.3e", bd.Total(), e.TotalEnergy())
	}
	if bd.Cycles != 50 || e.Cycles() != 50 {
		t.Fatalf("cycles = %d/%d", bd.Cycles, e.Cycles())
	}
	s := bd.String()
	if !strings.Contains(s, "EB_A") || !strings.Contains(s, "clock") {
		t.Fatalf("report missing rows:\n%s", s)
	}
}

func TestCharTableAveragesEnergy(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEstimator(cfg)
	var b ecbus.Bundle
	for i := 0; i < 64; i++ {
		b.Set(ecbus.SigA, uint64(i))
		e.Observe(&b)
	}
	tab := e.Char()
	st := e.SignalStats(ecbus.SigA)
	want := st.EnergyJ / float64(st.Transitions())
	if !close(tab.PerTransitionJ[ecbus.SigA], want, 1e-12) {
		t.Fatalf("char %g, want %g", tab.PerTransitionJ[ecbus.SigA], want)
	}
	// Untouched signals fall back to nominal bit energy, never zero.
	if tab.PerTransitionJ[ecbus.SigRData] <= 0 {
		t.Fatal("fallback char entry is zero")
	}
}

func TestCharFallbackMatchesNominal(t *testing.T) {
	cfg := DefaultConfig()
	tab := NewEstimator(cfg).Char()
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		if tab.PerTransitionJ[id] <= 0 {
			t.Fatalf("signal %v char entry %g", id, tab.PerTransitionJ[id])
		}
	}
	// Heavier wires must be pricier per transition.
	if tab.PerTransitionJ[ecbus.SigWData] <= tab.PerTransitionJ[ecbus.SigAValid] {
		t.Fatal("data wire not pricier than control wire")
	}
}

func TestSigStatsTransitions(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEstimator(cfg)
	var b ecbus.Bundle
	b.Set(ecbus.SigBE, 0b1111)
	e.Observe(&b) // 4 rises from reset
	b.Set(ecbus.SigBE, 0b0000)
	e.Observe(&b) // 4 falls
	st := e.SignalStats(ecbus.SigBE)
	if st.Rises != 4 || st.Falls != 4 || st.Transitions() != 8 {
		t.Fatalf("stats = %+v", st)
	}
}
