// Package periph provides the smart-card peripherals of the paper's
// target architecture (Fig. 1): UART, two 16-bit timers, a true random
// number generator and the interrupt system. Each is an EC bus slave
// with memory-mapped special function registers (SFRs).
//
// The paper's conclusion announces, as future work, extending the bus
// energy model "to allow an early energy estimation for several
// different typical smart card components, like random number
// generators, UARTs or timers". This package implements that extension:
// every peripheral carries a characterized per-access internal energy
// (ecbus.EnergyReporter) that platform-level accounting adds to the bus
// interface energy.
package periph

import (
	"repro/internal/ecbus"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Register offsets shared by the peripherals (byte offsets from base).
const (
	// UART
	UartData   = 0x0
	UartStatus = 0x4
	UartBaud   = 0x8
	UartCtrl   = 0xC

	// Timer
	TimerCtrl  = 0x0
	TimerLoad  = 0x4
	TimerCount = 0x8
	TimerFlag  = 0xC

	// TRNG
	TrngData   = 0x0
	TrngStatus = 0x4
	TrngCtrl   = 0x8

	// Interrupt controller
	IntStatus = 0x0
	IntEnable = 0x4
	IntAck    = 0x8
	IntRaise  = 0xC
)

// Interrupt lines of the platform.
const (
	LineTimer0 = 0
	LineTimer1 = 1
	LineUART   = 2
	LineCrypto = 3
)

// IntController is the interrupt system: peripherals raise lines, the
// CPU polls STATUS (pending & enabled) and acknowledges via ACK
// (write-one-to-clear).
type IntController struct {
	cfg     ecbus.SlaveConfig
	pending uint32
	enable  uint32
	raised  uint64 // total raise events

	// OnEOI, when set, is invoked after every acknowledge write — the
	// platform wires it to the CPU's interrupt unmask.
	OnEOI func()
}

// NewIntController creates the interrupt controller slave.
func NewIntController(name string, base uint64) *IntController {
	return &IntController{cfg: ecbus.SlaveConfig{
		Name: name, Base: base, Size: 0x10,
		Readable: true, Writable: true,
	}}
}

// Config returns the slave configuration.
func (ic *IntController) Config() ecbus.SlaveConfig { return ic.cfg }

// Raise asserts interrupt line n (peripheral-side API).
func (ic *IntController) Raise(n int) {
	ic.pending |= 1 << uint(n)
	ic.raised++
}

// Pending returns the enabled pending lines.
func (ic *IntController) Pending() uint32 { return ic.pending & ic.enable }

// Raised returns the total number of raise events.
func (ic *IntController) Raised() uint64 { return ic.raised }

// ReadWord implements ecbus.Slave.
func (ic *IntController) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	switch addr - ic.cfg.Base {
	case IntStatus:
		return ic.Pending(), true
	case IntEnable:
		return ic.enable, true
	case IntAck, IntRaise:
		return 0, true
	}
	return 0, false
}

// WriteWord implements ecbus.Slave.
func (ic *IntController) WriteWord(addr uint64, data uint32, _ ecbus.Width) bool {
	switch addr - ic.cfg.Base {
	case IntEnable:
		ic.enable = data
	case IntAck:
		ic.pending &^= data
		if ic.OnEOI != nil {
			ic.OnEOI()
		}
	case IntRaise: // software-raised interrupts (self test)
		ic.pending |= data
	case IntStatus:
		// read-only; writes ignored
	default:
		return false
	}
	return true
}

// AccessEnergy implements ecbus.EnergyReporter.
func (ic *IntController) AccessEnergy(ecbus.Kind) float64 { return 0.9e-12 }

// Timer is a 16-bit down-counting timer with a power-of-two prescaler
// and optional auto-reload, raising an interrupt line when it expires.
//
// CTRL bits: 0 enable, 1 auto-reload, 7:4 prescaler log2.
type Timer struct {
	cfg  ecbus.SlaveConfig
	irq  *IntController
	line int

	ctrl    uint32
	load    uint32
	count   uint32
	flag    bool
	prescal uint32

	expirations uint64
}

// NewTimer creates a timer slave and registers its count process on the
// kernel's rising edge. irq may be nil.
func NewTimer(k *sim.Kernel, name string, base uint64, irq *IntController, line int) *Timer {
	t := &Timer{
		cfg: ecbus.SlaveConfig{
			Name: name, Base: base, Size: 0x10,
			Readable: true, Writable: true,
		},
		irq:  irq,
		line: line,
	}
	k.At(sim.Rising, name, t.tick)
	return t
}

// Config returns the slave configuration.
func (t *Timer) Config() ecbus.SlaveConfig { return t.cfg }

// Expirations returns how many times the timer reached zero.
func (t *Timer) Expirations() uint64 { return t.expirations }

// Flag reports the expiry flag.
func (t *Timer) Flag() bool { return t.flag }

func (t *Timer) tick(uint64) {
	if t.ctrl&1 == 0 {
		return
	}
	shift := (t.ctrl >> 4) & 0xF
	t.prescal++
	if t.prescal < 1<<shift {
		return
	}
	t.prescal = 0
	if t.count == 0 {
		return
	}
	t.count--
	if t.count == 0 {
		t.flag = true
		t.expirations++
		if t.irq != nil {
			t.irq.Raise(t.line)
		}
		if t.ctrl&2 != 0 { // auto-reload
			t.count = t.load & 0xFFFF
		}
	}
}

// ReadWord implements ecbus.Slave.
func (t *Timer) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	switch addr - t.cfg.Base {
	case TimerCtrl:
		return t.ctrl, true
	case TimerLoad:
		return t.load, true
	case TimerCount:
		return t.count, true
	case TimerFlag:
		if t.flag {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// WriteWord implements ecbus.Slave.
func (t *Timer) WriteWord(addr uint64, data uint32, _ ecbus.Width) bool {
	switch addr - t.cfg.Base {
	case TimerCtrl:
		t.ctrl = data
	case TimerLoad:
		t.load = data & 0xFFFF
		t.count = t.load
	case TimerFlag:
		if data&1 != 0 {
			t.flag = false
		}
	case TimerCount:
		// read-only; ignored
	default:
		return false
	}
	return true
}

// AccessEnergy implements ecbus.EnergyReporter.
func (t *Timer) AccessEnergy(ecbus.Kind) float64 { return 1.1e-12 }

// UART is a byte-oriented serial port with small TX/RX FIFOs. A byte
// takes 10 bit times (start + 8 data + stop) of BaudDiv cycles each.
//
// STATUS bits: 0 tx-fifo-empty, 1 tx-fifo-full, 2 rx-available.
// CTRL bits: 0 enable.
type UART struct {
	cfg ecbus.SlaveConfig
	irq *IntController

	ctrl    uint32
	baudDiv uint32
	tx      []byte
	rx      []byte
	bitCnt  uint32

	// TxLog accumulates every transmitted byte for observation.
	TxLog []byte
}

// fifoDepth is the TX and RX FIFO depth.
const fifoDepth = 8

// NewUART creates a UART slave and registers its shift process. irq may
// be nil.
func NewUART(k *sim.Kernel, name string, base uint64, irq *IntController) *UART {
	u := &UART{
		cfg: ecbus.SlaveConfig{
			Name: name, Base: base, Size: 0x10,
			AddrWait: 0, ReadWait: 1, WriteWait: 1,
			Readable: true, Writable: true,
		},
		irq:     irq,
		baudDiv: 16,
	}
	k.At(sim.Rising, name, u.tick)
	return u
}

// Config returns the slave configuration.
func (u *UART) Config() ecbus.SlaveConfig { return u.cfg }

// InjectRx queues received bytes (the card reader side of the link).
func (u *UART) InjectRx(p []byte) {
	u.rx = append(u.rx, p...)
	if u.irq != nil && len(u.rx) > 0 {
		u.irq.Raise(LineUART)
	}
}

func (u *UART) tick(uint64) {
	if u.ctrl&1 == 0 || len(u.tx) == 0 {
		return
	}
	u.bitCnt++
	if u.bitCnt >= 10*u.baudDiv {
		u.bitCnt = 0
		u.TxLog = append(u.TxLog, u.tx[0])
		u.tx = u.tx[1:]
	}
}

// ReadWord implements ecbus.Slave.
func (u *UART) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	switch addr - u.cfg.Base {
	case UartData:
		if len(u.rx) == 0 {
			return 0, true
		}
		b := u.rx[0]
		u.rx = u.rx[1:]
		return uint32(b), true
	case UartStatus:
		var s uint32
		if len(u.tx) == 0 {
			s |= 1
		}
		if len(u.tx) >= fifoDepth {
			s |= 2
		}
		if len(u.rx) > 0 {
			s |= 4
		}
		return s, true
	case UartBaud:
		return u.baudDiv, true
	case UartCtrl:
		return u.ctrl, true
	}
	return 0, false
}

// WriteWord implements ecbus.Slave.
func (u *UART) WriteWord(addr uint64, data uint32, _ ecbus.Width) bool {
	switch addr - u.cfg.Base {
	case UartData:
		if len(u.tx) < fifoDepth {
			u.tx = append(u.tx, byte(data))
		}
		// Overflowing writes are dropped, as on the real device.
	case UartBaud:
		if data == 0 {
			data = 1
		}
		u.baudDiv = data
	case UartCtrl:
		u.ctrl = data
	case UartStatus:
		// read-only; ignored
	default:
		return false
	}
	return true
}

// AccessEnergy implements ecbus.EnergyReporter.
func (u *UART) AccessEnergy(k ecbus.Kind) float64 {
	if k == ecbus.Write {
		return 3.4e-12 // driving the pad predriver FIFO
	}
	return 1.6e-12
}

// TRNG models the true random number generator: a free-running
// ring-oscillator sampler, simulated by an LFSR advanced every cycle so
// readout values depend on sampling time (deterministic per run).
//
// CTRL bits: 0 enable (reset value 1).
type TRNG struct {
	cfg  ecbus.SlaveConfig
	lfsr *logic.LFSR
	ctrl uint32

	reads uint64
}

// NewTRNG creates the TRNG slave; seed selects the simulated noise
// source state.
func NewTRNG(k *sim.Kernel, name string, base uint64, seed uint64) *TRNG {
	t := &TRNG{
		cfg: ecbus.SlaveConfig{
			Name: name, Base: base, Size: 0x10,
			ReadWait: 2, // sampling + whitening latency
			Readable: true, Writable: true,
		},
		lfsr: logic.NewLFSR(seed),
		ctrl: 1,
	}
	k.At(sim.Rising, name, func(uint64) {
		if t.ctrl&1 != 0 {
			t.lfsr.Next() // free-running oscillator
		}
	})
	return t
}

// Config returns the slave configuration.
func (t *TRNG) Config() ecbus.SlaveConfig { return t.cfg }

// Reads returns the number of DATA register reads.
func (t *TRNG) Reads() uint64 { return t.reads }

// ReadWord implements ecbus.Slave.
func (t *TRNG) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	switch addr - t.cfg.Base {
	case TrngData:
		t.reads++
		// Whitening stage: fold and diffuse the sampled oscillator state
		// (this is the latency the ReadWait models).
		s := t.lfsr.Next()
		s ^= s >> 29
		return uint32((s * 0x9E3779B97F4A7C15) >> 32), true
	case TrngStatus:
		return t.ctrl & 1, true // ready whenever enabled
	case TrngCtrl:
		return t.ctrl, true
	}
	return 0, false
}

// WriteWord implements ecbus.Slave.
func (t *TRNG) WriteWord(addr uint64, data uint32, _ ecbus.Width) bool {
	switch addr - t.cfg.Base {
	case TrngCtrl:
		t.ctrl = data
	case TrngData, TrngStatus:
		// read-only; ignored
	default:
		return false
	}
	return true
}

// AccessEnergy implements ecbus.EnergyReporter: keeping the oscillator
// bank sampling makes TRNG reads the most expensive peripheral access.
func (t *TRNG) AccessEnergy(ecbus.Kind) float64 { return 5.2e-12 }
