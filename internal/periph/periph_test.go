package periph

import (
	"bytes"
	"testing"

	"repro/internal/ecbus"
	"repro/internal/sim"
)

func TestIntControllerRaiseAckFlow(t *testing.T) {
	ic := NewIntController("int", 0xF000)
	ic.WriteWord(0xF000+IntEnable, 0b0011, ecbus.W32)
	ic.Raise(LineTimer0)
	ic.Raise(LineCrypto) // masked: not enabled
	if got := ic.Pending(); got != 1<<LineTimer0 {
		t.Fatalf("pending = %#b", got)
	}
	st, _ := ic.ReadWord(0xF000+IntStatus, ecbus.W32)
	if st != 1<<LineTimer0 {
		t.Fatalf("status = %#b", st)
	}
	ic.WriteWord(0xF000+IntAck, 1<<LineTimer0, ecbus.W32)
	if ic.Pending() != 0 {
		t.Fatal("ack did not clear")
	}
	// Enabling the masked line reveals it (still latched).
	ic.WriteWord(0xF000+IntEnable, 0xF, ecbus.W32)
	if ic.Pending() != 1<<LineCrypto {
		t.Fatal("masked line lost")
	}
	if ic.Raised() != 2 {
		t.Fatalf("raised = %d", ic.Raised())
	}
}

func TestIntControllerSoftwareRaise(t *testing.T) {
	ic := NewIntController("int", 0)
	ic.WriteWord(IntEnable, 0xFF, ecbus.W32)
	ic.WriteWord(IntRaise, 0b100, ecbus.W32)
	if ic.Pending() != 0b100 {
		t.Fatal("software raise failed")
	}
}

func TestTimerCountsAndExpires(t *testing.T) {
	k := sim.New(0)
	ic := NewIntController("int", 0xF000)
	ic.WriteWord(0xF000+IntEnable, 0xF, ecbus.W32)
	tm := NewTimer(k, "t0", 0xF100, ic, LineTimer0)
	tm.WriteWord(0xF100+TimerLoad, 10, ecbus.W32)
	tm.WriteWord(0xF100+TimerCtrl, 1, ecbus.W32) // enable, no reload
	k.Run(10)
	if !tm.Flag() || tm.Expirations() != 1 {
		t.Fatalf("flag=%v expirations=%d after 10 cycles", tm.Flag(), tm.Expirations())
	}
	if ic.Pending()&(1<<LineTimer0) == 0 {
		t.Fatal("timer interrupt not raised")
	}
	cnt, _ := tm.ReadWord(0xF100+TimerCount, ecbus.W32)
	if cnt != 0 {
		t.Fatalf("count = %d after expiry without reload", cnt)
	}
	// Write-one-to-clear flag.
	tm.WriteWord(0xF100+TimerFlag, 1, ecbus.W32)
	if tm.Flag() {
		t.Fatal("flag not cleared")
	}
}

func TestTimerAutoReloadPeriod(t *testing.T) {
	k := sim.New(0)
	tm := NewTimer(k, "t1", 0, nil, LineTimer1)
	tm.WriteWord(TimerLoad, 5, ecbus.W32)
	tm.WriteWord(TimerCtrl, 1|2, ecbus.W32) // enable + auto-reload
	k.Run(25)
	if got := tm.Expirations(); got != 5 {
		t.Fatalf("expirations = %d in 25 cycles with period 5", got)
	}
}

func TestTimerPrescaler(t *testing.T) {
	k := sim.New(0)
	tm := NewTimer(k, "t0", 0, nil, 0)
	tm.WriteWord(TimerLoad, 4, ecbus.W32)
	tm.WriteWord(TimerCtrl, 1|2|(2<<4), ecbus.W32) // prescale /4
	k.Run(64)
	if got := tm.Expirations(); got != 4 {
		t.Fatalf("expirations = %d in 64 cycles with period 4*4", got)
	}
}

func TestTimerDisabledHolds(t *testing.T) {
	k := sim.New(0)
	tm := NewTimer(k, "t0", 0, nil, 0)
	tm.WriteWord(TimerLoad, 3, ecbus.W32)
	k.Run(10)
	cnt, _ := tm.ReadWord(TimerCount, ecbus.W32)
	if cnt != 3 {
		t.Fatalf("disabled timer counted: %d", cnt)
	}
}

func TestUARTTransmitsAtBaudRate(t *testing.T) {
	k := sim.New(0)
	u := NewUART(k, "uart", 0, nil)
	u.WriteWord(UartBaud, 4, ecbus.W32) // 40 cycles per byte
	u.WriteWord(UartCtrl, 1, ecbus.W32)
	u.WriteWord(UartData, 'H', ecbus.W32)
	u.WriteWord(UartData, 'i', ecbus.W32)
	st, _ := u.ReadWord(UartStatus, ecbus.W32)
	if st&1 != 0 {
		t.Fatal("tx-empty with queued bytes")
	}
	k.Run(39)
	if len(u.TxLog) != 0 {
		t.Fatal("byte emitted before 10 bit-times")
	}
	k.Run(1)
	if string(u.TxLog) != "H" {
		t.Fatalf("TxLog = %q after one byte time", u.TxLog)
	}
	k.Run(40)
	if string(u.TxLog) != "Hi" {
		t.Fatalf("TxLog = %q after two byte times", u.TxLog)
	}
	st, _ = u.ReadWord(UartStatus, ecbus.W32)
	if st&1 == 0 {
		t.Fatal("tx-empty not set after drain")
	}
}

func TestUARTFifoOverflowDropped(t *testing.T) {
	k := sim.New(0)
	u := NewUART(k, "uart", 0, nil)
	u.WriteWord(UartCtrl, 1, ecbus.W32)
	for i := 0; i < fifoDepth+3; i++ {
		u.WriteWord(UartData, uint32('A'+i), ecbus.W32)
	}
	st, _ := u.ReadWord(UartStatus, ecbus.W32)
	if st&2 == 0 {
		t.Fatal("tx-full not set")
	}
	k.Run(uint64(10*16*fifoDepth) + 100)
	if len(u.TxLog) != fifoDepth {
		t.Fatalf("transmitted %d bytes, want %d (overflow dropped)", len(u.TxLog), fifoDepth)
	}
}

func TestUARTReceive(t *testing.T) {
	k := sim.New(0)
	ic := NewIntController("int", 0x100)
	ic.WriteWord(0x100+IntEnable, 0xF, ecbus.W32)
	u := NewUART(k, "uart", 0, ic)
	u.InjectRx([]byte{0x41, 0x42})
	st, _ := u.ReadWord(UartStatus, ecbus.W32)
	if st&4 == 0 {
		t.Fatal("rx-available not set")
	}
	if ic.Pending()&(1<<LineUART) == 0 {
		t.Fatal("rx interrupt not raised")
	}
	b1, _ := u.ReadWord(UartData, ecbus.W32)
	b2, _ := u.ReadWord(UartData, ecbus.W32)
	b3, _ := u.ReadWord(UartData, ecbus.W32)
	if b1 != 0x41 || b2 != 0x42 || b3 != 0 {
		t.Fatalf("rx bytes = %#x %#x %#x", b1, b2, b3)
	}
}

func TestUARTZeroBaudClamped(t *testing.T) {
	k := sim.New(0)
	u := NewUART(k, "uart", 0, nil)
	u.WriteWord(UartBaud, 0, ecbus.W32)
	b, _ := u.ReadWord(UartBaud, ecbus.W32)
	if b == 0 {
		t.Fatal("baud divider of zero accepted")
	}
	_ = k
}

func TestTRNGProducesVaryingWords(t *testing.T) {
	k := sim.New(0)
	tr := NewTRNG(k, "rng", 0, 42)
	seen := map[uint32]bool{}
	for i := 0; i < 64; i++ {
		k.Run(3)
		v, ok := tr.ReadWord(TrngData, ecbus.W32)
		if !ok {
			t.Fatal("read failed")
		}
		seen[v] = true
	}
	if len(seen) < 60 {
		t.Fatalf("only %d distinct words in 64 reads", len(seen))
	}
	if tr.Reads() != 64 {
		t.Fatalf("reads = %d", tr.Reads())
	}
}

func TestTRNGSamplingTimeDependence(t *testing.T) {
	// Two platforms with the same seed but different read times must see
	// different values (free-running oscillator).
	read := func(delay uint64) uint32 {
		k := sim.New(0)
		tr := NewTRNG(k, "rng", 0, 7)
		k.Run(delay)
		v, _ := tr.ReadWord(TrngData, ecbus.W32)
		return v
	}
	if read(3) == read(9) {
		t.Fatal("sampling time does not influence TRNG output")
	}
}

func TestTRNGDisable(t *testing.T) {
	k := sim.New(0)
	tr := NewTRNG(k, "rng", 0, 7)
	tr.WriteWord(TrngCtrl, 0, ecbus.W32)
	st, _ := tr.ReadWord(TrngStatus, ecbus.W32)
	if st != 0 {
		t.Fatal("disabled TRNG reports ready")
	}
	v1, _ := tr.ReadWord(TrngData, ecbus.W32)
	k.Run(10) // oscillator frozen
	v2, _ := tr.ReadWord(TrngData, ecbus.W32)
	// LFSR still advances on explicit reads, but not with time: reading
	// twice with a frozen oscillator gives the pure read sequence.
	_ = v1
	_ = v2
}

func TestEnergyReportersPresent(t *testing.T) {
	k := sim.New(0)
	slaves := []ecbus.Slave{
		NewIntController("i", 0),
		NewTimer(k, "t", 0x10, nil, 0),
		NewUART(k, "u", 0x20, nil),
		NewTRNG(k, "r", 0x30, 1),
	}
	for _, s := range slaves {
		er, ok := s.(ecbus.EnergyReporter)
		if !ok {
			t.Fatalf("%s: no EnergyReporter", s.Config().Name)
		}
		if er.AccessEnergy(ecbus.Read) <= 0 {
			t.Fatalf("%s: non-positive access energy", s.Config().Name)
		}
	}
}

func TestUnknownOffsetsFail(t *testing.T) {
	k := sim.New(0)
	ic := NewIntController("i", 0)
	if _, ok := ic.ReadWord(0x1C0, ecbus.W32); ok {
		t.Fatal("read of unmapped offset succeeded")
	}
	u := NewUART(k, "u", 0, nil)
	if u.WriteWord(0x3C, 0, ecbus.W32) {
		t.Fatal("write to unmapped offset succeeded")
	}
}

func TestUARTLogIsOrdered(t *testing.T) {
	k := sim.New(0)
	u := NewUART(k, "uart", 0, nil)
	u.WriteWord(UartBaud, 1, ecbus.W32)
	u.WriteWord(UartCtrl, 1, ecbus.W32)
	msg := []byte("OK")
	for _, b := range msg {
		u.WriteWord(UartData, uint32(b), ecbus.W32)
	}
	k.Run(100)
	if !bytes.Equal(u.TxLog, msg) {
		t.Fatalf("TxLog = %q", u.TxLog)
	}
}
