package dma_test

import (
	"testing"

	"repro/internal/arb"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

const (
	srcBase = uint64(0x0000)
	dstBase = uint64(0x10000)
)

// build assembles a tlm1 bus over a source and destination RAM (the
// destination optionally fault-wrapped), pre-fills the source with a
// recognizable pattern, and returns the pieces.
func build(t *testing.T, plan fault.Plan) (*sim.Kernel, core.Initiator, *mem.RAM, *mem.RAM) {
	t.Helper()
	src := mem.NewRAM("apdu", srcBase, 0x1000, 0, 0)
	dst := mem.NewRAM("ee", dstBase, 0x1000, 1, 2)
	for i := 0; i < 0x1000/4; i++ {
		src.WriteWord(srcBase+uint64(4*i), 0xA5000000|uint32(i), ecbus.W32)
	}
	var dstSlave ecbus.Slave = dst
	if !plan.Empty() {
		dstSlave = fault.Wrap(dst, plan)
	}
	k := sim.New(0)
	bus := tlm1.New(k, ecbus.MustMap(src, dstSlave))
	return k, bus, src, dst
}

// run drives the engine to completion (bounded) and returns the cycle
// count.
func run(t *testing.T, k *sim.Kernel, e *dma.Engine) uint64 {
	t.Helper()
	n, done := k.RunUntil(1_000_000, e.Done)
	if !done {
		t.Fatal("DMA run did not finish")
	}
	return n
}

// checkMoved verifies dst holds src's pattern over the descriptor span.
func checkMoved(t *testing.T, dst *mem.RAM, d dma.Descriptor) {
	t.Helper()
	for w := 0; w < d.Words; w++ {
		want := 0xA5000000 | uint32((d.Src-srcBase)/4+uint64(w))
		got, ok := dst.ReadWord(d.Dst+uint64(4*w), ecbus.W32)
		if !ok || got != want {
			t.Fatalf("dst word %d: got %#x (ok=%v), want %#x", w, got, ok, want)
		}
	}
}

func TestEngineMovesData(t *testing.T) {
	descs := []dma.Descriptor{
		{Src: srcBase, Dst: dstBase, Words: 16},              // fully burstable
		{Src: srcBase + 0x84, Dst: dstBase + 0x88, Words: 7}, // src/dst never co-aligned
		{Src: srcBase + 0x200, Dst: dstBase + 0x200, Words: 0},
		{Src: srcBase + 0x300, Dst: dstBase + 0x300, Words: 1},
	}
	k, bus, _, dst := build(t, fault.Plan{})
	e := dma.New(k, bus, descs)
	e.Retry = core.RetryPolicy{MaxRetries: 4, Backoff: 1}
	run(t, k, e)

	for _, d := range descs {
		checkMoved(t, dst, d)
	}
	if e.WordsMoved != 24 {
		t.Fatalf("WordsMoved = %d, want 24", e.WordsMoved)
	}
	if e.Errors != 0 || e.Retries != 0 {
		t.Fatalf("clean run recorded %d errors, %d retries", e.Errors, e.Retries)
	}
	// Burst accounting: descriptor 0 moves 16 aligned words in 4 burst
	// read/write pairs; descriptor 1 is never 16-byte aligned on both
	// sides so goes word by word (7 pairs); descriptor 3 one pair.
	if want := uint64(2 * (4 + 7 + 1)); e.Transactions != want {
		t.Fatalf("Transactions = %d, want %d (burst path not taken?)", e.Transactions, want)
	}
}

func TestEngineBehindMux(t *testing.T) {
	// The engine's normal deployment: behind an arbitration port,
	// sharing the bus with nobody. The grant protocol must not change
	// what lands in memory.
	d := dma.Descriptor{Src: srcBase, Dst: dstBase + 0x40, Words: 9}
	src := mem.NewRAM("apdu", srcBase, 0x1000, 0, 0)
	dst := mem.NewRAM("ee", dstBase, 0x1000, 1, 2)
	for i := 0; i < 0x40; i++ {
		src.WriteWord(srcBase+uint64(4*i), 0xA5000000|uint32(i), ecbus.W32)
	}
	k := sim.New(0)
	mux := arb.NewMux(k, arb.RoundRobin, 1)
	bus := tlm1.New(k, ecbus.MustMap(src, dst))
	mux.Bind(bus)
	e := dma.New(k, mux.Port(0), []dma.Descriptor{d})
	run(t, k, e)
	checkMoved(t, dst, d)
	if !mux.Drained() {
		t.Fatal("mux not drained")
	}
	if mux.TotalGrants() != e.Transactions {
		t.Fatalf("%d grants for %d transactions", mux.TotalGrants(), e.Transactions)
	}
}

func TestEngineRetriesThroughFault(t *testing.T) {
	// The first two write beats to one destination word fail; the engine
	// must retry and still deliver every word.
	d := dma.Descriptor{Src: srcBase, Dst: dstBase + 0x20, Words: 3}
	plan := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpWrite, Addr: dstBase + 0x24, After: 0, Count: 2},
	}}
	k, bus, _, dst := build(t, plan)
	e := dma.New(k, bus, []dma.Descriptor{d})
	e.Retry = core.RetryPolicy{MaxRetries: 4, Backoff: 1}
	run(t, k, e)
	checkMoved(t, dst, d)
	if e.Retries == 0 {
		t.Fatal("faulted run recorded no retries")
	}
	if e.Errors != 0 {
		t.Fatalf("descriptor abandoned despite retries remaining (%d errors)", e.Errors)
	}
}

func TestEngineAbandonsAfterExhaustedRetries(t *testing.T) {
	// An unbounded fault window on the second descriptor's destination:
	// the engine must abandon it and still complete the third.
	descs := []dma.Descriptor{
		{Src: srcBase, Dst: dstBase, Words: 2},
		{Src: srcBase + 0x40, Dst: dstBase + 0x40, Words: 2},
		{Src: srcBase + 0x80, Dst: dstBase + 0x80, Words: 2},
	}
	plan := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpWrite, Addr: dstBase + 0x40, After: 0, Count: 0},
	}}
	k, bus, _, dst := build(t, plan)
	e := dma.New(k, bus, descs)
	e.Retry = core.RetryPolicy{MaxRetries: 3, Backoff: 1}
	run(t, k, e)
	if e.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", e.Errors)
	}
	checkMoved(t, dst, descs[0])
	checkMoved(t, dst, descs[2])
	if e.Retries != 3 {
		t.Fatalf("Retries = %d, want 3 (MaxRetries)", e.Retries)
	}
}

func TestEngineHintIdleWhenDone(t *testing.T) {
	// A drained engine must not hold the kernel's idle skip hostage: a
	// run that only contains the engine reaches the cycle bound via
	// event skipping, not cycle-by-cycle execution.
	k, bus, _, _ := build(t, fault.Plan{})
	e := dma.New(k, bus, nil)
	if !e.Done() {
		t.Fatal("engine with no descriptors not Done")
	}
	if n, done := k.RunUntil(1_000, e.Done); !done || n > 1 {
		t.Fatalf("empty engine ran %d cycles (done=%v), want at most 1", n, done)
	}
}
