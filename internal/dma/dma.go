// Package dma provides the direct-memory-access engine of the
// smart-card platform: a true bus master that moves words between the
// APDU buffer and the EEPROM without occupying the CPU — the transfer
// the paper's platform performs on every command dispatch. Off-loading
// it turns the interconnect into a multi-master system, which is why
// the engine only exists behind an arbitration port (arb.Mux); it
// drives any layer's bus through the standard core.Initiator protocol.
package dma

import (
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Descriptor is one programmed transfer: Words 32-bit words copied
// from Src to Dst, both word-aligned.
type Descriptor struct {
	Src, Dst uint64
	Words    int
}

// engine states.
const (
	stIdle = iota
	stRead
	stWrite
)

// Engine is the DMA master: it walks its descriptor list, alternating
// read and write transactions word by word (bursts of ecbus.BurstLen
// when both addresses are burst-aligned and enough words remain), with
// the same retry-with-backoff error reaction as the CPU-side masters.
// It registers on the kernel's rising edge like every master.
type Engine struct {
	bus   core.Initiator
	descs []Descriptor

	di    int // current descriptor
	off   int // words completed within the current descriptor
	state int
	chunk int // words in the in-flight transaction
	buf   [ecbus.BurstLen]uint32

	tr        ecbus.Transaction
	ids       uint64
	notBefore uint64 // backoff gate after an errored attempt

	// Retry is the bus-error reaction policy. Set it before the first
	// kernel cycle.
	Retry core.RetryPolicy

	// Metrics, when non-nil, receives the engine-side retry count.
	Metrics *metrics.Registry

	// Stats.
	Transactions uint64 // bus transactions issued
	Retries      uint64 // errored attempts re-issued
	Errors       uint64 // descriptors abandoned after exhausting retries
	WordsMoved   uint64 // words successfully written to the destination
}

// New creates a DMA engine over bus (a mux port or a bus model
// directly) and registers it on the kernel's rising edge.
func New(k *sim.Kernel, bus core.Initiator, descs []Descriptor) *Engine {
	e := &Engine{bus: bus, descs: descs}
	k.AtHinted(sim.Rising, "dma", e.tick, e.hint, nil)
	return e
}

// Done reports whether every descriptor has been processed.
func (e *Engine) Done() bool { return e.di >= len(e.descs) && e.state == stIdle }

// hint keeps the engine skippable: it needs no cycle once drained, and
// only its backoff cycle while backing off after an error.
func (e *Engine) hint(now uint64) uint64 {
	if e.Done() {
		return sim.NoEvent
	}
	if e.notBefore > now {
		return e.notBefore
	}
	return now
}

// burstable reports whether the next chunk of the current descriptor
// can go as a burst: ecbus.BurstLen words remaining with both source
// and destination 16-byte aligned.
func (e *Engine) burstable() bool {
	d := e.descs[e.di]
	if d.Words-e.off < ecbus.BurstLen {
		return false
	}
	src := d.Src + uint64(4*e.off)
	dst := d.Dst + uint64(4*e.off)
	const alignment = ecbus.BurstLen * 4
	return src%alignment == 0 && dst%alignment == 0
}

// startRead prepares and presents the read transaction of the next
// chunk. Descriptors with nothing to move are completed on the spot.
func (e *Engine) startRead() {
	for e.di < len(e.descs) && e.off >= e.descs[e.di].Words {
		e.di, e.off = e.di+1, 0
	}
	if e.di >= len(e.descs) {
		return
	}
	d := e.descs[e.di]
	e.ids++
	if e.burstable() {
		e.chunk = ecbus.BurstLen
		if err := e.tr.ResetBurst(e.ids, ecbus.Read, d.Src+uint64(4*e.off)); err != nil {
			e.abandon()
			return
		}
	} else {
		e.chunk = 1
		if err := e.tr.ResetSingle(e.ids, ecbus.Read, d.Src+uint64(4*e.off), ecbus.W32, 0); err != nil {
			e.abandon()
			return
		}
	}
	e.state = stRead
	e.Transactions++
}

// startWrite presents the write transaction carrying the chunk just
// read.
func (e *Engine) startWrite() {
	d := e.descs[e.di]
	e.ids++
	var err error
	if e.chunk == ecbus.BurstLen {
		err = e.tr.ResetBurst(e.ids, ecbus.Write, d.Dst+uint64(4*e.off))
	} else {
		err = e.tr.ResetSingle(e.ids, ecbus.Write, d.Dst+uint64(4*e.off), ecbus.W32, 0)
	}
	if err != nil {
		e.abandon()
		return
	}
	copy(e.tr.Data, e.buf[:e.chunk])
	e.state = stWrite
	e.Transactions++
}

// abandon gives up on the current descriptor after an unrecoverable
// error and moves to the next one.
func (e *Engine) abandon() {
	e.Errors++
	e.di, e.off = e.di+1, 0
	e.state = stIdle
}

// tick advances the engine one cycle: poll the in-flight transaction,
// react to completion, and start the next chunk when idle.
func (e *Engine) tick(cycle uint64) {
	if cycle < e.notBefore {
		return
	}
	if e.state == stIdle {
		if e.di >= len(e.descs) {
			return
		}
		e.startRead()
		if e.state == stIdle {
			return
		}
	}
	st := e.bus.Access(&e.tr)
	if !st.Done() {
		return
	}
	if st == ecbus.StateError {
		if int(e.tr.Retries) >= e.Retry.MaxRetries {
			e.abandon()
			return
		}
		e.tr.ResetForRetry()
		e.Retries++
		e.Metrics.Retries(1)
		e.notBefore = cycle + 1 + e.Retry.Backoff
		return
	}
	switch e.state {
	case stRead:
		copy(e.buf[:e.chunk], e.tr.Data)
		e.startWrite()
	case stWrite:
		e.WordsMoved += uint64(e.chunk)
		e.off += e.chunk
		e.state = stIdle
		e.startRead()
	}
}
