package sim

import "testing"

func TestPhaseOrderWithinCycle(t *testing.T) {
	k := New(100_000) // 10 MHz
	var order []string
	k.At(Post, "p", func(uint64) { order = append(order, "post") })
	k.At(Falling, "f", func(uint64) { order = append(order, "fall") })
	k.At(Rising, "r", func(uint64) { order = append(order, "rise") })
	k.Step()
	want := []string{"rise", "fall", "post"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("phase order %v, want %v", order, want)
		}
	}
}

func TestRegistrationOrderWithinPhase(t *testing.T) {
	k := New(0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(Rising, "p", func(uint64) { order = append(order, i) })
	}
	k.Step()
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not registration order", order)
		}
	}
}

func TestRunCountsCycles(t *testing.T) {
	k := New(0)
	var calls uint64
	k.At(Rising, "c", func(uint64) { calls++ })
	if n := k.Run(17); n != 17 {
		t.Fatalf("Run returned %d, want 17", n)
	}
	if calls != 17 {
		t.Fatalf("process ran %d times, want 17", calls)
	}
	if k.Cycle() != 17 {
		t.Fatalf("Cycle() = %d, want 17", k.Cycle())
	}
}

func TestStopEndsRunEarly(t *testing.T) {
	k := New(0)
	k.At(Rising, "s", func(c uint64) {
		if c == 4 {
			k.Stop()
		}
	})
	n := k.Run(100)
	if n != 5 { // cycles 0..4 complete, then stop
		t.Fatalf("ran %d cycles, want 5", n)
	}
	if !k.Stopped() {
		t.Fatal("kernel not stopped")
	}
	if k.Step() {
		t.Fatal("Step after Stop should return false")
	}
}

func TestCycleArgumentMatchesKernelCycle(t *testing.T) {
	k := New(0)
	k.At(Falling, "chk", func(c uint64) {
		if c != k.Cycle() {
			t.Fatalf("callback cycle %d != kernel cycle %d", c, k.Cycle())
		}
	})
	k.Run(10)
}

func TestTimePS(t *testing.T) {
	k := New(250_000) // 4 MHz -> 250 ns period
	k.Run(8)
	if got := k.TimePS(); got != 8*250_000 {
		t.Fatalf("TimePS = %d, want %d", got, 8*250_000)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(0)
	var hits int
	k.At(Rising, "h", func(uint64) { hits++ })
	n, ok := k.RunUntil(100, func() bool { return hits >= 7 })
	if !ok || n != 7 {
		t.Fatalf("RunUntil = (%d, %v), want (7, true)", n, ok)
	}
	n, ok = k.RunUntil(3, func() bool { return false })
	if ok || n != 3 {
		t.Fatalf("RunUntil exhaust = (%d, %v), want (3, false)", n, ok)
	}
}

func TestRegisterAfterRunPanics(t *testing.T) {
	k := New(0)
	k.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering after Run")
		}
	}()
	k.At(Rising, "late", func(uint64) {})
}

func TestProcsRun(t *testing.T) {
	k := New(0)
	k.At(Rising, "a", func(uint64) {})
	k.At(Falling, "b", func(uint64) {})
	k.Run(10)
	if k.ProcsRun() != 20 {
		t.Fatalf("ProcsRun = %d, want 20", k.ProcsRun())
	}
}

func TestPhaseString(t *testing.T) {
	if Rising.String() != "rising" || Falling.String() != "falling" || Post.String() != "post" {
		t.Fatal("phase names wrong")
	}
	if Phase(9).String() == "" {
		t.Fatal("unknown phase should still stringify")
	}
}
