// Package sim provides the deterministic cycle-based simulation kernel
// underlying all bus models in this repository.
//
// The kernel substitutes for the SystemC 2.0 scheduler used by the paper.
// The paper's models are SC_METHOD processes sensitive to clock edges
// only (masters and slaves trigger on the rising edge, the bus process on
// the falling edge), so a two-edge clocked kernel with a deterministic
// intra-edge ordering reproduces the relevant scheduling semantics without
// delta cycles or dynamic sensitivity.
//
// Each simulated clock cycle executes three phases in order:
//
//  1. Rising  — masters and slaves run (issue/accept requests).
//  2. Falling — bus processes run (protocol state machines advance).
//  3. Post    — observers run (power estimators, tracers, probes).
//
// Within a phase, processes run in registration order, which makes every
// simulation bit-reproducible.
package sim

import (
	"errors"
	"fmt"
)

// Phase identifies one of the three sub-steps of a simulated clock cycle.
type Phase int

// The three kernel phases, in execution order.
const (
	Rising Phase = iota
	Falling
	Post
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Rising:
		return "rising"
	case Falling:
		return "falling"
	case Post:
		return "post"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Proc is a simulation process. It is invoked once per cycle during the
// phase it was registered for. The cycle argument is the number of the
// cycle being executed, starting at 0.
type Proc func(cycle uint64)

// Stopper is returned by processes that can request simulation stop; see
// Kernel.Stop for the imperative variant used by most models.
var ErrStopped = errors.New("sim: stopped")

type procEntry struct {
	name string
	fn   Proc
}

// Kernel is a cycle-based simulation kernel. The zero value is ready to
// use. Kernels are not safe for concurrent use; the entire simulation is
// single-threaded and deterministic by design.
type Kernel struct {
	cycle    uint64
	rising   []procEntry
	falling  []procEntry
	post     []procEntry
	stopped  bool
	started  bool
	ClockPS  uint64 // clock period in picoseconds; 0 means unspecified
	procsRun uint64
}

// New returns a kernel with the given clock period in picoseconds.
// A period of 0 is allowed and simply leaves wall-time conversion
// unavailable.
func New(clockPS uint64) *Kernel {
	return &Kernel{ClockPS: clockPS}
}

// At registers fn to run during phase ph every cycle. The name is used in
// diagnostics only. Registration order within a phase is execution order.
// Registering after Run has started is not allowed.
func (k *Kernel) At(ph Phase, name string, fn Proc) {
	if k.started {
		panic("sim: cannot register process after Run")
	}
	e := procEntry{name: name, fn: fn}
	switch ph {
	case Rising:
		k.rising = append(k.rising, e)
	case Falling:
		k.falling = append(k.falling, e)
	case Post:
		k.post = append(k.post, e)
	default:
		panic(fmt.Sprintf("sim: unknown phase %d", int(ph)))
	}
}

// Cycle returns the number of fully or partially executed cycles. During a
// callback it equals the index of the cycle being executed.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// TimePS returns the simulated time in picoseconds, derived from the cycle
// count and the clock period.
func (k *Kernel) TimePS() uint64 { return k.cycle * k.ClockPS }

// Stop requests the kernel to stop after the current cycle completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// ProcsRun returns the total number of process invocations, a cheap
// progress metric used by the simulation-performance benchmarks.
func (k *Kernel) ProcsRun() uint64 { return k.procsRun }

// Step executes exactly one clock cycle (all three phases) unless the
// kernel is already stopped, and reports whether a cycle was executed.
// A Stop issued during the cycle takes effect from the next Step.
func (k *Kernel) Step() bool {
	k.started = true
	if k.stopped {
		return false
	}
	c := k.cycle
	for i := range k.rising {
		k.rising[i].fn(c)
	}
	for i := range k.falling {
		k.falling[i].fn(c)
	}
	for i := range k.post {
		k.post[i].fn(c)
	}
	k.procsRun += uint64(len(k.rising) + len(k.falling) + len(k.post))
	k.cycle++
	return true
}

// Run executes up to maxCycles cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed.
func (k *Kernel) Run(maxCycles uint64) uint64 {
	var n uint64
	for n < maxCycles && k.Step() {
		n++
	}
	return n
}

// RunUntil executes cycles until done returns true (checked after each
// cycle), Stop is called, or maxCycles elapse. It returns the number of
// cycles executed and whether done was reached.
func (k *Kernel) RunUntil(maxCycles uint64, done func() bool) (uint64, bool) {
	var n uint64
	for n < maxCycles {
		if !k.Step() {
			return n, done()
		}
		n++
		if done() {
			return n, true
		}
	}
	return n, done()
}
