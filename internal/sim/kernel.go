// Package sim provides the deterministic cycle-based simulation kernel
// underlying all bus models in this repository.
//
// The kernel substitutes for the SystemC 2.0 scheduler used by the paper.
// The paper's models are SC_METHOD processes sensitive to clock edges
// only (masters and slaves trigger on the rising edge, the bus process on
// the falling edge), so a two-edge clocked kernel with a deterministic
// intra-edge ordering reproduces the relevant scheduling semantics without
// delta cycles or dynamic sensitivity.
//
// Each simulated clock cycle executes three phases in order:
//
//  1. Rising  — masters and slaves run (issue/accept requests).
//  2. Falling — bus processes run (protocol state machines advance).
//  3. Post    — observers run (power estimators, tracers, probes).
//
// Within a phase, processes run in registration order, which makes every
// simulation bit-reproducible.
package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// NoEvent is returned by a Hint to declare that the process needs no
// future cycle at all (fully quiescent).
const NoEvent = ^uint64(0)

// Hint reports the earliest cycle at which the process needs to execute
// again, given that `now` is the next cycle to run. Returning a value
// <= now means "I must run now"; NoEvent means "never, as things stand".
// Hints must be conservative: claiming a later cycle than the process
// actually needs would change simulation results. A hint is evaluated
// before the cycle's procs run, so it sees the post-state of the
// previous cycle.
type Hint func(now uint64) uint64

// SkipFunc is notified when the kernel fast-forwards n idle cycles so the
// process can advance internal counters (wait-state countdowns, per-cycle
// energy integration) as if the cycles had executed.
type SkipFunc func(n uint64)

// idleSkipDisabled globally disables the idle-cycle fast-forward; set by
// core.SetReference so the reference path executes every cycle.
var idleSkipDisabled atomic.Bool

// SetIdleSkipDisabled globally enables/disables idle-cycle skipping in
// Run and RunUntil. Used by the golden-equivalence reference mode.
func SetIdleSkipDisabled(off bool) { idleSkipDisabled.Store(off) }

// IdleSkipDisabled reports the current global idle-skip setting so other
// execution engines (the batched SoA engine) can honor the same
// reference-mode contract as the kernel.
func IdleSkipDisabled() bool { return idleSkipDisabled.Load() }

// Phase identifies one of the three sub-steps of a simulated clock cycle.
type Phase int

// The three kernel phases, in execution order.
const (
	Rising Phase = iota
	Falling
	Post
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case Rising:
		return "rising"
	case Falling:
		return "falling"
	case Post:
		return "post"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Proc is a simulation process. It is invoked once per cycle during the
// phase it was registered for. The cycle argument is the number of the
// cycle being executed, starting at 0.
type Proc func(cycle uint64)

// Stopper is returned by processes that can request simulation stop; see
// Kernel.Stop for the imperative variant used by most models.
var ErrStopped = errors.New("sim: stopped")

type procEntry struct {
	name string
	fn   Proc
}

// Kernel is a cycle-based simulation kernel. The zero value is ready to
// use. Kernels are not safe for concurrent use; the entire simulation is
// single-threaded and deterministic by design.
type Kernel struct {
	cycle    uint64
	rising   []procEntry
	falling  []procEntry
	post     []procEntry
	stopped  bool
	started  bool
	ClockPS  uint64 // clock period in picoseconds; 0 means unspecified
	procsRun uint64

	// Idle-cycle fast-forward state. Skipping is possible only when every
	// registered proc supplied a hint (unhinted == 0): a proc without a
	// hint might need any cycle, so its presence pins the kernel to
	// cycle-by-cycle execution — existing callers are unaffected.
	hints    []Hint
	skippers []SkipFunc
	unhinted int
	skipped  uint64 // cycles fast-forwarded
	skips    uint64 // fast-forward events

	runObs RunObserver
}

// RunObserver receives the kernel's cycle accounting whenever a Run or
// RunUntil returns. It is the kernel end of the observability layer:
// metrics.Registry implements it, so a registry can be handed straight
// to SetRunObserver without the kernel depending on the metrics
// package. The callback fires once per run, never on the per-cycle
// path.
type RunObserver interface {
	RecordKernel(cycles, skippedCycles, idleSkips, procsRun uint64)
}

// SetRunObserver installs o; a nil observer disables the callback.
func (k *Kernel) SetRunObserver(o RunObserver) { k.runObs = o }

// noteRun reports the accounting totals to the run observer, if any.
func (k *Kernel) noteRun() {
	if k.runObs != nil {
		k.runObs.RecordKernel(k.cycle, k.skipped, k.skips, k.procsRun)
	}
}

// New returns a kernel with the given clock period in picoseconds.
// A period of 0 is allowed and simply leaves wall-time conversion
// unavailable.
func New(clockPS uint64) *Kernel {
	return &Kernel{ClockPS: clockPS}
}

// At registers fn to run during phase ph every cycle. The name is used in
// diagnostics only. Registration order within a phase is execution order.
// Registering after Run has started is not allowed. A proc registered
// with At has no quiescence hint and therefore disables idle-cycle
// skipping for the whole kernel; use AtHinted or AtObserver for procs
// that can declare their next needed cycle.
func (k *Kernel) At(ph Phase, name string, fn Proc) {
	k.register(ph, name, fn)
	k.unhinted++
}

// AtHinted registers fn like At, plus a quiescence hint and an optional
// skip callback. The hint is evaluated before each cycle in Run/RunUntil;
// when every registered proc is hinted and all hints agree the next
// needed cycle is in the future, the kernel jumps there directly, calling
// each non-nil SkipFunc (in registration order) with the number of cycles
// skipped.
func (k *Kernel) AtHinted(ph Phase, name string, fn Proc, hint Hint, onSkip SkipFunc) {
	k.register(ph, name, fn)
	if hint == nil {
		panic("sim: AtHinted requires a hint; use At or AtObserver")
	}
	k.hints = append(k.hints, hint)
	if onSkip != nil {
		k.skippers = append(k.skippers, onSkip)
	}
}

// AtObserver registers fn as a pure observer: it never requires a cycle
// of its own (it only watches cycles others cause), so it does not
// constrain idle skipping. Its SkipFunc, if non-nil, is invoked on every
// fast-forward so per-cycle integration (clock, leakage) stays exact.
func (k *Kernel) AtObserver(ph Phase, name string, fn Proc, onSkip SkipFunc) {
	k.register(ph, name, fn)
	if onSkip != nil {
		k.skippers = append(k.skippers, onSkip)
	}
}

func (k *Kernel) register(ph Phase, name string, fn Proc) {
	if k.started {
		panic("sim: cannot register process after Run")
	}
	e := procEntry{name: name, fn: fn}
	switch ph {
	case Rising:
		k.rising = append(k.rising, e)
	case Falling:
		k.falling = append(k.falling, e)
	case Post:
		k.post = append(k.post, e)
	default:
		panic(fmt.Sprintf("sim: unknown phase %d", int(ph)))
	}
}

// Cycle returns the number of fully or partially executed cycles. During a
// callback it equals the index of the cycle being executed.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// TimePS returns the simulated time in picoseconds, derived from the cycle
// count and the clock period.
func (k *Kernel) TimePS() uint64 { return k.cycle * k.ClockPS }

// Stop requests the kernel to stop after the current cycle completes.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// ProcsRun returns the total number of process invocations, a cheap
// progress metric used by the simulation-performance benchmarks.
func (k *Kernel) ProcsRun() uint64 { return k.procsRun }

// Step executes exactly one clock cycle (all three phases) unless the
// kernel is already stopped, and reports whether a cycle was executed.
// A Stop issued during the cycle takes effect from the next Step.
func (k *Kernel) Step() bool {
	k.started = true
	if k.stopped {
		return false
	}
	c := k.cycle
	for i := range k.rising {
		k.rising[i].fn(c)
	}
	for i := range k.falling {
		k.falling[i].fn(c)
	}
	for i := range k.post {
		k.post[i].fn(c)
	}
	k.procsRun += uint64(len(k.rising) + len(k.falling) + len(k.post))
	k.cycle++
	return true
}

// SkippedCycles returns the number of cycles fast-forwarded by the
// idle-skip machinery (they are included in cycle counts and Run totals).
func (k *Kernel) SkippedCycles() uint64 { return k.skipped }

// IdleSkips returns the number of fast-forward events performed.
func (k *Kernel) IdleSkips() uint64 { return k.skips }

// canSkip reports whether idle-cycle fast-forwarding is permitted for
// this run: every proc must be hinted and the global kill switch off.
func (k *Kernel) canSkip() bool {
	return k.unhinted == 0 && len(k.hints) > 0 && !idleSkipDisabled.Load()
}

// nextEvent returns the earliest cycle any hinted proc needs, or NoEvent.
// It returns now as soon as any hint demands the current cycle, so the
// common busy case costs one cheap hint call.
func (k *Kernel) nextEvent() uint64 {
	now := k.cycle
	next := NoEvent
	for _, h := range k.hints {
		v := h(now)
		if v <= now {
			return now
		}
		if v < next {
			next = v
		}
	}
	return next
}

// skip fast-forwards n cycles: the cycle counter jumps and each skip
// callback advances its process state as if the cycles had executed.
func (k *Kernel) skip(n uint64) {
	k.cycle += n
	k.skipped += n
	k.skips++
	for _, f := range k.skippers {
		f(n)
	}
}

// Run executes up to maxCycles cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed; fast-forwarded idle
// cycles count as executed.
func (k *Kernel) Run(maxCycles uint64) uint64 {
	k.started = true
	defer k.noteRun()
	canSkip := k.canSkip()
	var n uint64
	for n < maxCycles {
		if canSkip && !k.stopped {
			if t := k.nextEvent(); t > k.cycle {
				s := t - k.cycle // NoEvent yields a huge span, clamped below
				if rem := maxCycles - n; s > rem {
					s = rem
				}
				k.skip(s)
				n += s
				continue
			}
		}
		if !k.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes cycles until done returns true (checked after each
// cycle), Stop is called, or maxCycles elapse. It returns the number of
// cycles executed (fast-forwarded idle cycles included) and whether done
// was reached.
//
// Idle skipping only jumps to a *finite* next-event cycle here: done()
// can only change state as a consequence of procs running, so its value
// is constant across skipped cycles — but with no future event at all
// the kernel steps cycle by cycle, preserving the exact cycle count at
// which a pre-satisfied or cycle-dependent done() is honoured.
func (k *Kernel) RunUntil(maxCycles uint64, done func() bool) (uint64, bool) {
	k.started = true
	defer k.noteRun()
	canSkip := k.canSkip()
	var n uint64
	for n < maxCycles {
		if canSkip && n > 0 && !k.stopped {
			if t := k.nextEvent(); t != NoEvent && t > k.cycle {
				s := t - k.cycle
				if rem := maxCycles - n; s > rem {
					s = rem
				}
				k.skip(s)
				n += s
				if done() {
					return n, true
				}
				continue
			}
		}
		if !k.Step() {
			return n, done()
		}
		n++
		if done() {
			return n, true
		}
	}
	return n, done()
}
