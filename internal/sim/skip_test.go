package sim

import "testing"

// hintedCounter is a minimal hinted proc: it needs to run every `period`
// cycles and counts executions and skip notifications.
type hintedCounter struct {
	period  uint64
	runs    uint64
	skipped uint64
	last    uint64 // last executed cycle
	started bool
}

func (h *hintedCounter) proc(c uint64) { h.runs++; h.last = c; h.started = true }
func (h *hintedCounter) hint(now uint64) uint64 {
	if !h.started {
		return now
	}
	return h.last + h.period
}
func (h *hintedCounter) onSkip(n uint64) { h.skipped += n }

func TestIdleSkipJumpsToNextEvent(t *testing.T) {
	k := New(0)
	h := &hintedCounter{period: 10}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	n := k.Run(101)
	if n != 101 {
		t.Fatalf("Run = %d, want 101 (skipped cycles count as executed)", n)
	}
	if k.Cycle() != 101 {
		t.Fatalf("Cycle = %d, want 101", k.Cycle())
	}
	// Executions at cycles 0,10,20,...,100 → 11 runs; 90 cycles skipped.
	if h.runs != 11 {
		t.Fatalf("runs = %d, want 11", h.runs)
	}
	if h.skipped != 90 || k.SkippedCycles() != 90 {
		t.Fatalf("skipped = %d (kernel %d), want 90", h.skipped, k.SkippedCycles())
	}
	if k.IdleSkips() == 0 {
		t.Fatal("no skip events recorded")
	}
}

func TestUnhintedProcDisablesSkipping(t *testing.T) {
	k := New(0)
	h := &hintedCounter{period: 10}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	every := uint64(0)
	k.At(Post, "unhinted", func(uint64) { every++ })
	k.Run(100)
	if every != 100 {
		t.Fatalf("unhinted proc ran %d times, want 100", every)
	}
	if k.SkippedCycles() != 0 {
		t.Fatalf("kernel skipped %d cycles despite unhinted proc", k.SkippedCycles())
	}
}

func TestObserverDoesNotBlockSkipping(t *testing.T) {
	k := New(0)
	h := &hintedCounter{period: 10}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	var obsRuns, obsSkipped uint64
	k.AtObserver(Post, "obs", func(uint64) { obsRuns++ }, func(n uint64) { obsSkipped += n })
	k.Run(100)
	if k.SkippedCycles() == 0 {
		t.Fatal("observer blocked skipping")
	}
	if obsRuns+obsSkipped != 100 {
		t.Fatalf("observer saw %d runs + %d skipped ≠ 100", obsRuns, obsSkipped)
	}
}

func TestSetIdleSkipDisabled(t *testing.T) {
	SetIdleSkipDisabled(true)
	defer SetIdleSkipDisabled(false)
	k := New(0)
	h := &hintedCounter{period: 10}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	k.Run(100)
	if k.SkippedCycles() != 0 {
		t.Fatal("skipping occurred despite global disable")
	}
	if h.runs != 100 {
		t.Fatalf("runs = %d, want 100 in reference mode", h.runs)
	}
}

func TestRunUntilNeverSkipsFirstCycleOrNoEvent(t *testing.T) {
	// A proc whose hint immediately reports NoEvent: RunUntil must still
	// execute cycle by cycle (pre-satisfied or cycle-dependent done()
	// semantics), never jumping on an infinite horizon.
	k := New(0)
	runs := uint64(0)
	k.AtHinted(Rising, "quiet", func(uint64) { runs++ },
		func(now uint64) uint64 { return NoEvent }, nil)
	n, ok := k.RunUntil(5, func() bool { return k.Cycle() >= 3 })
	if !ok || n != 3 {
		t.Fatalf("RunUntil = (%d, %v), want (3, true)", n, ok)
	}
	if k.SkippedCycles() != 0 {
		t.Fatal("RunUntil skipped on a NoEvent horizon")
	}
}

func TestRunUntilSkipsToFiniteEvent(t *testing.T) {
	k := New(0)
	h := &hintedCounter{period: 50}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	done := func() bool { return h.runs >= 2 }
	n, ok := k.RunUntil(1000, done)
	if !ok {
		t.Fatal("done not reached")
	}
	// Runs at cycle 0 and 50; done checked after each cycle → 51 cycles.
	if n != 51 {
		t.Fatalf("RunUntil = %d cycles, want 51", n)
	}
	if k.SkippedCycles() != 49 {
		t.Fatalf("skipped = %d, want 49", k.SkippedCycles())
	}
}

func TestRunClampsSkipToMaxCycles(t *testing.T) {
	k := New(0)
	h := &hintedCounter{period: 1000}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	n := k.Run(10)
	if n != 10 || k.Cycle() != 10 {
		t.Fatalf("Run = %d, Cycle = %d; want 10, 10", n, k.Cycle())
	}
}

func TestRunClampsNoEventToMaxCycles(t *testing.T) {
	k := New(0)
	ran := false
	k.AtHinted(Rising, "quiet", func(uint64) { ran = true },
		func(now uint64) uint64 {
			if now == 0 {
				return now
			}
			return NoEvent
		}, nil)
	n := k.Run(20)
	if n != 20 || k.Cycle() != 20 {
		t.Fatalf("Run = %d, Cycle = %d; want 20, 20", n, k.Cycle())
	}
	if !ran {
		t.Fatal("proc never ran")
	}
	if k.SkippedCycles() != 19 {
		t.Fatalf("skipped = %d, want 19", k.SkippedCycles())
	}
}

func TestSkipDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		k := New(0)
		a := &hintedCounter{period: 7}
		b := &hintedCounter{period: 13}
		k.AtHinted(Rising, "a", a.proc, a.hint, a.onSkip)
		k.AtHinted(Falling, "b", b.proc, b.hint, b.onSkip)
		k.Run(500)
		return a.runs, b.runs, k.SkippedCycles()
	}
	a1, b1, s1 := run()
	a2, b2, s2 := run()
	if a1 != a2 || b1 != b2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, s1, a2, b2, s2)
	}
	if s1 == 0 {
		t.Fatal("no skipping with two hinted procs")
	}
}

func TestStopPreventsSkip(t *testing.T) {
	k := New(0)
	h := &hintedCounter{period: 100}
	k.AtHinted(Rising, "h", h.proc, h.hint, h.onSkip)
	k.Step() // run cycle 0
	k.Stop()
	if n := k.Run(100); n != 0 {
		t.Fatalf("Run after Stop = %d, want 0", n)
	}
}

func TestAtHintedNilHintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtHinted with nil hint did not panic")
		}
	}()
	New(0).AtHinted(Rising, "bad", func(uint64) {}, nil, nil)
}
