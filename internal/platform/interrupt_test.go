package platform

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/periph"
)

// interruptProg: main spins incrementing $t0 until the timer handler
// (at vector 0x200) sets $s7; the handler counts expirations into $s6,
// acknowledges (EOI unmasks), and returns via $k1.
const interruptProg = `
	# enable timer0 interrupt line in the controller
	lui  $s0, 0x000F
	ori  $s0, $s0, 0x0400       # int controller
	li   $t1, 1                 # line 0 = timer0
	sw   $t1, 4($s0)            # ENABLE

	# timer0: period 40, auto-reload, enable
	lui  $s1, 0x000F
	ori  $s1, $s1, 0x0100
	li   $t1, 40
	sw   $t1, 4($s1)            # LOAD
	li   $t1, 3                 # enable | auto-reload
	sw   $t1, 0($s1)            # CTRL

	li   $t0, 0
spin:
	addiu $t0, $t0, 1
	slti  $t2, $s6, 3           # wait for 3 interrupts
	bne   $t2, $zero, spin
	nop
	move $v0, $t0
	break

	.org 0x200
	# handler: count, clear flag, ack controller (EOI), return
	addiu $s6, $s6, 1
	li   $t3, 1
	sw   $t3, 0xC($s1)          # TIMER_FLAG clear (W1C)
	sw   $t3, 8($s0)            # INT_ACK line 0 -> EOI unmask
	jr   $k1
	nop
`

func TestTimerInterruptDelivery(t *testing.T) {
	for _, layer := range []Layer{Layer0, Layer1, Layer2} {
		p := New(Config{Layer: layer})
		if err := p.LoadProgram(cpu.MustAssemble(ROMBase, interruptProg), true); err != nil {
			t.Fatal(err)
		}
		if err := p.EnableInterrupts(ROMBase + 0x200); err != nil {
			t.Fatal(err)
		}
		_, halted := p.Run(1_000_000)
		if !halted {
			t.Fatalf("%v: never saw 3 interrupts", layer)
		}
		if err := p.CPU.Fault(); err != nil {
			t.Fatalf("%v: %v", layer, err)
		}
		if got := p.CPU.IRQsTaken(); got < 3 {
			t.Fatalf("%v: only %d interrupts delivered", layer, got)
		}
		if p.CPU.Reg(22) < 3 { // $s6
			t.Fatalf("%v: handler ran %d times", layer, p.CPU.Reg(22))
		}
		if p.Timer0.Expirations() < 3 {
			t.Fatalf("%v: timer expired %d times", layer, p.Timer0.Expirations())
		}
		// The spin loop must have made progress between interrupts.
		if p.CPU.Reg(2) == 0 {
			t.Fatalf("%v: main loop starved", layer)
		}
	}
}

func TestInterruptMaskingUntilEOI(t *testing.T) {
	// A handler that never acknowledges: exactly one interrupt is
	// delivered, then delivery stays masked.
	prog := `
	lui  $s0, 0x000F
	ori  $s0, $s0, 0x0400
	li   $t1, 1
	sw   $t1, 4($s0)            # enable line 0
	lui  $s1, 0x000F
	ori  $s1, $s1, 0x0100
	li   $t1, 10
	sw   $t1, 4($s1)
	li   $t1, 3
	sw   $t1, 0($s1)            # timer on, auto-reload
	li   $t0, 0
spin:
	addiu $t0, $t0, 1
	slti  $t2, $t0, 400
	bne   $t2, $zero, spin
	nop
	break

	.org 0x200
	addiu $s6, $s6, 1           # count but never ack
	jr   $k1
	nop
`
	p := New(Config{Layer: Layer1})
	if err := p.LoadProgram(cpu.MustAssemble(ROMBase, prog), true); err != nil {
		t.Fatal(err)
	}
	if err := p.EnableInterrupts(ROMBase + 0x200); err != nil {
		t.Fatal(err)
	}
	if _, halted := p.Run(1_000_000); !halted {
		t.Fatal("did not halt")
	}
	if got := p.CPU.IRQsTaken(); got != 1 {
		t.Fatalf("delivered %d interrupts without EOI, want 1", got)
	}
}

func TestEnableInterruptsRequiresCPU(t *testing.T) {
	p := New(Config{Layer: Layer1})
	if err := p.EnableInterrupts(0x200); err == nil {
		t.Fatal("EnableInterrupts without a CPU accepted")
	}
}

func TestUARTRxInterrupt(t *testing.T) {
	// The reader injects a byte; the rx interrupt handler fetches it.
	prog := `
	lui  $s0, 0x000F
	ori  $s0, $s0, 0x0400
	li   $t1, 4                 # line 2 = UART
	sw   $t1, 4($s0)
	li   $t0, 0
spin:
	addiu $t0, $t0, 1
	beq  $s6, $zero, spin
	nop
	break

	.org 0x200
	lui  $s2, 0x000F            # UART base
	lw   $s6, 0($s2)            # DATA (the injected byte)
	li   $t3, 4
	sw   $t3, 8($s0)            # ack line 2
	jr   $k1
	nop
`
	p := New(Config{Layer: Layer1})
	if err := p.LoadProgram(cpu.MustAssemble(ROMBase, prog), true); err != nil {
		t.Fatal(err)
	}
	if err := p.EnableInterrupts(ROMBase + 0x200); err != nil {
		t.Fatal(err)
	}
	// Inject after some cycles.
	injected := false
	p.Kernel.At(0, "reader", func(c uint64) {
		if c == 50 && !injected {
			injected = true
			p.UART.InjectRx([]byte{0x5A})
		}
	})
	if _, halted := p.Run(1_000_000); !halted {
		t.Fatal("did not halt")
	}
	if p.CPU.Reg(22) != 0x5A {
		t.Fatalf("handler read %#x, want 0x5A", p.CPU.Reg(22))
	}
	_ = periph.LineUART
}
