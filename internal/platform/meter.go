package platform

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
)

// SlaveMeter wraps a slave and accounts its internal access energy using
// the slave's EnergyReporter characterization (zero for slaves without
// one). It forwards dynamic wait states transparently.
type SlaveMeter struct {
	inner ecbus.Slave

	Reads  uint64
	Writes uint64
}

// NewSlaveMeter wraps s.
func NewSlaveMeter(s ecbus.Slave) *SlaveMeter { return &SlaveMeter{inner: s} }

// Config implements ecbus.Slave.
func (m *SlaveMeter) Config() ecbus.SlaveConfig { return m.inner.Config() }

// ReadWord implements ecbus.Slave, counting the access.
func (m *SlaveMeter) ReadWord(addr uint64, w ecbus.Width) (uint32, bool) {
	m.Reads++
	return m.inner.ReadWord(addr, w)
}

// WriteWord implements ecbus.Slave, counting the access.
func (m *SlaveMeter) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	m.Writes++
	return m.inner.WriteWord(addr, data, w)
}

// ExtraWait forwards the inner slave's dynamic wait states.
func (m *SlaveMeter) ExtraWait(k ecbus.Kind, addr uint64) int {
	return ecbus.ExtraWaitOf(m.inner, k, addr)
}

// Energy returns the accumulated characterized internal energy.
func (m *SlaveMeter) Energy() float64 {
	er, ok := m.inner.(ecbus.EnergyReporter)
	if !ok {
		return 0
	}
	return float64(m.Reads)*er.AccessEnergy(ecbus.Read) +
		float64(m.Writes)*er.AccessEnergy(ecbus.Write)
}

// Inner returns the wrapped slave.
func (m *SlaveMeter) Inner() ecbus.Slave { return m.inner }

var (
	charOnce sync.Once
	charTab  gatepower.CharTable
)

// DefaultCharTable returns the repository's standard characterization
// table: the characterization corpus (core.CharCorpus) run through the
// layer-0 model of a fast/slow RAM pair under the default gate-level
// configuration, computed once per process. This mirrors the paper's
// flow: characterize once on the prototype database, then reuse the
// table in every transaction-level model.
func DefaultCharTable() gatepower.CharTable {
	charOnce.Do(func() {
		k := sim.New(0)
		lay := core.Layout{Fast: 0, Slow: 0x10000}
		b := rtlbus.New(k, ecbus.MustMap(
			mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
			mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
		))
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.At(sim.Post, "gatepower", func(uint64) { est.Observe(b.Wires()) })
		m, _ := core.RunScript(k, b, core.CharCorpus(lay, 400), 1_000_000)
		if !m.Done() {
			panic("platform: characterization run did not complete")
		}
		charTab = est.Char()
	})
	return charTab
}
