package platform

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ecbus"
)

// helloProg prints over the UART, reads the TRNG, arms a timer, and
// drives the crypto coprocessor — touching every major slave.
const helloProg = `
	# UART: enable, send 'A'
	lui  $s0, 0x000F          # 0xF0000 = UART
	li   $t0, 1
	sw   $t0, 0xC($s0)        # CTRL = enable
	li   $t0, 0x41
	sw   $t0, 0x0($s0)        # DATA = 'A'

	# TRNG read
	lui  $s1, 0x000F
	ori  $s1, $s1, 0x0300
	lw   $s2, 0($s1)          # random word

	# Timer0: load 5, enable
	lui  $s3, 0x000F
	ori  $s3, $s3, 0x0100
	li   $t0, 5
	sw   $t0, 4($s3)
	li   $t0, 1
	sw   $t0, 0($s3)

	# Crypto: key/data/start, poll status
	lui  $s4, 0x000F
	ori  $s4, $s4, 0x0500
	li   $t0, 0x1234
	sw   $t0, 0x00($s4)       # KEY0
	sw   $zero, 0x04($s4)     # KEY1
	li   $t0, 0x5678
	sw   $t0, 0x08($s4)       # DATA0
	sw   $zero, 0x0C($s4)     # DATA1
	li   $t0, 1
	sw   $t0, 0x10($s4)       # CTRL = start
poll:
	lw   $t1, 0x14($s4)       # STATUS
	andi $t1, $t1, 2          # done?
	beq  $t1, $zero, poll
	nop
	lw   $v0, 0x18($s4)       # RES0
	break
`

func buildAndRun(t *testing.T, layer Layer) *Platform {
	t.Helper()
	p := New(Config{Layer: layer, Energy: true, ICache: true})
	if err := p.LoadProgram(cpu.MustAssemble(ROMBase, helloProg), true); err != nil {
		t.Fatal(err)
	}
	_, halted := p.Run(1_000_000)
	if !halted {
		t.Fatalf("%v: program did not halt", layer)
	}
	if err := p.CPU.Fault(); err != nil {
		t.Fatalf("%v: fault: %v", layer, err)
	}
	// Let the UART shift register drain (10 bit times of 16 cycles).
	p.Kernel.Run(2000)
	return p
}

func TestFullPlatformAllLayers(t *testing.T) {
	var results []uint32
	for _, layer := range []Layer{Layer0, Layer1, Layer2} {
		p := buildAndRun(t, layer)
		if string(p.UART.TxLog) != "A" {
			t.Errorf("%v: UART TxLog = %q", layer, p.UART.TxLog)
		}
		if p.Timer0.Expirations() == 0 {
			t.Errorf("%v: timer never expired", layer)
		}
		if p.Crypto.Ops() != 1 {
			t.Errorf("%v: crypto ops = %d", layer, p.Crypto.Ops())
		}
		if p.TRNG.Reads() == 0 {
			t.Errorf("%v: TRNG not read", layer)
		}
		results = append(results, p.CPU.Reg(2))
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Fatalf("crypto results differ across layers: %#x", results)
	}
}

func TestEnergyAccountingAcrossLayers(t *testing.T) {
	var bus [3]float64
	for i, layer := range []Layer{Layer0, Layer1, Layer2} {
		p := buildAndRun(t, layer)
		if p.BusEnergy() <= 0 {
			t.Fatalf("%v: no bus energy", layer)
		}
		if p.PeripheralEnergy() <= 0 {
			t.Fatalf("%v: no peripheral energy", layer)
		}
		if p.Crypto.TraceEnergy() <= 0 {
			t.Fatalf("%v: no crypto engine energy", layer)
		}
		if p.TotalEnergy() <= p.BusEnergy() {
			t.Fatalf("%v: total not larger than bus share", layer)
		}
		bus[i] = p.BusEnergy()
		bd := p.EnergyBreakdown()
		if bd["uart"] <= 0 || bd["crypto"] <= 0 || bd["trng"] <= 0 {
			t.Fatalf("%v: breakdown missing entries: %v", layer, bd)
		}
	}
	// Hierarchy shape on a real program: TL1 below gate level, TL2 above
	// TL1 (exact Table-2 bands are asserted on the reference corpus in
	// package core; here we only require the ordering not to invert
	// wildly).
	if bus[1] >= bus[0]*1.1 {
		t.Errorf("TL1 bus energy %.3e not below gate level %.3e", bus[1], bus[0])
	}
	if bus[2] <= bus[1] {
		t.Errorf("TL2 bus energy %.3e not above TL1 %.3e", bus[2], bus[1])
	}
}

func TestLayerTimingShapeOnRealProgram(t *testing.T) {
	cycles := map[Layer]uint64{}
	for _, layer := range []Layer{Layer0, Layer1, Layer2} {
		p := New(Config{Layer: layer})
		if err := p.LoadProgram(cpu.MustAssemble(ROMBase, helloProg), true); err != nil {
			t.Fatal(err)
		}
		n, halted := p.Run(1_000_000)
		if !halted {
			t.Fatalf("%v did not halt", layer)
		}
		cycles[layer] = n
	}
	if cycles[Layer1] != cycles[Layer0] {
		t.Errorf("layer-1 cycles %d != layer-0 cycles %d", cycles[Layer1], cycles[Layer0])
	}
	if cycles[Layer2] < cycles[Layer0] {
		t.Errorf("layer-2 cycles %d < layer-0 cycles %d", cycles[Layer2], cycles[Layer0])
	}
	// A latency-sensitive master (the ISS waits for each transaction
	// before the next instruction) amplifies the layer-2 model's
	// one-cycle-per-transaction phase split far beyond the +0.5% seen on
	// replayed traces (Table 1, reproduced in package core); bound the
	// amplification rather than the trace-level figure here.
	err := float64(cycles[Layer2])/float64(cycles[Layer0]) - 1
	if err > 0.25 {
		t.Errorf("layer-2 timing error %.1f%% implausibly large", 100*err)
	}
}

func TestEEPROMProgrammingOnPlatform(t *testing.T) {
	prog := `
		lui  $s0, 0x000A      # EEPROM base
		li   $t0, 0x77
		sw   $t0, 0($s0)
		lw   $t1, 0($s0)      # stalls until programming completes
		move $v0, $t1
		break
	`
	p := New(Config{Layer: Layer1})
	if err := p.LoadProgram(cpu.MustAssemble(ROMBase, prog), false); err != nil {
		t.Fatal(err)
	}
	_, halted := p.Run(100000)
	if !halted || p.CPU.Fault() != nil {
		t.Fatalf("halt=%v fault=%v", halted, p.CPU.Fault())
	}
	if p.CPU.Reg(2) != 0x77 {
		t.Fatalf("EEPROM readback = %#x", p.CPU.Reg(2))
	}
	if p.EEPROM.Programs() != 1 {
		t.Fatalf("programs = %d", p.EEPROM.Programs())
	}
}

func TestSlaveMeterCountsAndEnergy(t *testing.T) {
	p := buildAndRun(t, Layer1)
	for _, m := range p.meters {
		if m.Config().Name == "uart" {
			if m.Writes == 0 {
				t.Fatal("uart writes not counted")
			}
			if m.Energy() <= 0 {
				t.Fatal("uart energy zero")
			}
		}
	}
}

func TestSlaveMeterForwardsDynamicWaits(t *testing.T) {
	p := New(Config{Layer: Layer1})
	var eeMeter *SlaveMeter
	for _, m := range p.meters {
		if m.Config().Name == "eeprom" {
			eeMeter = m
		}
	}
	if eeMeter == nil {
		t.Fatal("no eeprom meter")
	}
	p.EEPROM.WriteWord(EEPROMBase, 1, ecbus.W32)
	if eeMeter.ExtraWait(ecbus.Read, EEPROMBase) == 0 {
		t.Fatal("dynamic wait not forwarded through meter")
	}
	if eeMeter.Inner() != ecbus.Slave(p.EEPROM) {
		t.Fatal("Inner() does not unwrap")
	}
}

func TestDefaultCharTableStable(t *testing.T) {
	a := DefaultCharTable()
	b := DefaultCharTable()
	if a != b {
		t.Fatal("characterization table not stable across calls")
	}
	for id, v := range a.PerTransitionJ {
		if v <= 0 {
			t.Fatalf("char entry %d non-positive", id)
		}
	}
}

func TestLayerString(t *testing.T) {
	for _, l := range []Layer{Layer0, Layer1, Layer2, Layer(9)} {
		if l.String() == "" {
			t.Fatal("empty layer name")
		}
	}
}
