// Package platform assembles the paper's target architecture (Fig. 1) —
// MIPS-core smart card with ROM, Flash, EEPROM, RAM/scratchpad, UART,
// two timers, true RNG, interrupt system and crypto coprocessor — behind
// an EC bus model at a selectable abstraction layer, with optional
// hierarchical energy estimation.
//
// The same builder produces layer-0 (signal-true + gate-level power),
// layer-1 (cycle-accurate + transition power) and layer-2 (timed +
// per-phase power) systems, which is precisely the workflow the paper's
// hierarchical models enable: refine the platform model without touching
// the software or the peripherals.
package platform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/crypto"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/periph"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// Layer selects the bus abstraction level.
type Layer int

// Abstraction layers, paper terminology.
const (
	Layer0 Layer = iota // signal/cycle-true reference (rtlbus + gatepower)
	Layer1              // transaction level layer 1: cycle accurate
	Layer2              // transaction level layer 2: timed
)

// String returns the paper's name for the layer.
func (l Layer) String() string {
	switch l {
	case Layer0:
		return "gate-level"
	case Layer1:
		return "TL layer 1"
	case Layer2:
		return "TL layer 2"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// The standard smart-card memory map.
const (
	ROMBase     = 0x0000_0000 // 256 kB program memory
	ROMSize     = 256 << 10
	FlashBase   = 0x0008_0000 // 64 kB program memory
	FlashSize   = 64 << 10
	EEPROMBase  = 0x000A_0000 // 32 kB data & program memory
	EEPROMSize  = 32 << 10
	RAMBase     = 0x000C_0000 // 8 kB RAM
	RAMSize     = 8 << 10
	ScratchBase = 0x000D_0000 // 4 kB zero-wait scratchpad
	ScratchSize = 4 << 10
	UARTBase    = 0x000F_0000
	Timer0Base  = 0x000F_0100
	Timer1Base  = 0x000F_0200
	TRNGBase    = 0x000F_0300
	IntBase     = 0x000F_0400
	CryptoBase  = 0x000F_0500
)

// Config parameterizes a platform build.
type Config struct {
	Layer  Layer
	Energy bool                 // attach the layer's energy model
	Char   *gatepower.CharTable // characterization table for TLM energy; nil = DefaultCharTable
	Seed   uint64               // TRNG seed (0 = fixed default)
	ICache bool                 // CPU instruction cache
	Fault  fault.Plan           // fault-injection plan; the zero Plan injects nothing
}

// Platform is an assembled smart-card system.
type Platform struct {
	Kernel *sim.Kernel
	Layer  Layer
	Bus    core.Initiator

	ROM     *mem.ROM
	Flash   *mem.Flash
	EEPROM  *mem.EEPROM
	RAM     *mem.RAM
	Scratch *mem.RAM
	UART    *periph.UART
	Timer0  *periph.Timer
	Timer1  *periph.Timer
	TRNG    *periph.TRNG
	Int     *periph.IntController
	Crypto  *crypto.Coprocessor

	CPU *cpu.CPU // attached by LoadProgram

	meters    []*SlaveMeter
	injectors []*fault.Injector

	// Layer-specific energy hooks (nil when Energy is off).
	gate *gatepower.Estimator
	tl1  *tlm1.PowerModel
	tl2  *tlm2.PowerModel
}

// New builds the platform at the configured layer.
func New(cfg Config) *Platform {
	k := sim.New(0)
	p := &Platform{Kernel: k, Layer: cfg.Layer}

	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5CA7D_CA4D
	}
	ic := periph.NewIntController("int", IntBase)
	p.Int = ic
	p.ROM = mem.NewROM("rom", ROMBase, ROMSize, 0, 1)
	p.Flash = mem.NewFlash("flash", FlashBase, FlashSize, k)
	p.EEPROM = mem.NewEEPROM("eeprom", EEPROMBase, EEPROMSize, k)
	p.RAM = mem.NewRAM("ram", RAMBase, RAMSize, 0, 1)
	p.Scratch = mem.NewRAM("scratch", ScratchBase, ScratchSize, 0, 0)
	p.UART = periph.NewUART(k, "uart", UARTBase, ic)
	p.Timer0 = periph.NewTimer(k, "timer0", Timer0Base, ic, periph.LineTimer0)
	p.Timer1 = periph.NewTimer(k, "timer1", Timer1Base, ic, periph.LineTimer1)
	p.TRNG = periph.NewTRNG(k, "trng", TRNGBase, seed)
	p.Crypto = crypto.New(k, "crypto", CryptoBase, crypto.DefaultLeak(), ic, periph.LineCrypto)

	wrap := func(s ecbus.Slave, plan fault.Plan) ecbus.Slave {
		m := NewSlaveMeter(s)
		p.meters = append(p.meters, m)
		if plan.Empty() {
			return m
		}
		// The injector sits outermost: a suppressed faulty write never
		// reaches the meter (the array was not accessed), while an
		// error-flagged read still meters the access it corrupted.
		in := fault.Wrap(m, plan)
		p.injectors = append(p.injectors, in)
		return in
	}
	// Memories take the full plan; peripherals have reads with side
	// effects (UART RX pops the FIFO, the TRNG advances its state), so
	// they only take the side-effect-safe projection — a retried
	// error-flagged read would otherwise replay the side effect.
	memPlan, perPlan := cfg.Fault, cfg.Fault.WithoutReadErrors()
	m := ecbus.MustMap(
		wrap(p.ROM, memPlan), wrap(p.Flash, memPlan), wrap(p.EEPROM, memPlan),
		wrap(p.RAM, memPlan), wrap(p.Scratch, memPlan),
		wrap(p.UART, perPlan), wrap(p.Timer0, perPlan), wrap(p.Timer1, perPlan),
		wrap(p.TRNG, perPlan), wrap(p.Int, perPlan), wrap(p.Crypto, perPlan),
	)

	switch cfg.Layer {
	case Layer0:
		b := rtlbus.New(k, m)
		p.Bus = b
		if cfg.Energy {
			p.gate = gatepower.NewEstimator(gatepower.DefaultConfig())
			k.At(sim.Post, "gatepower", func(uint64) { p.gate.Observe(b.Wires()) })
		}
	case Layer1:
		b := tlm1.New(k, m)
		if cfg.Energy {
			p.tl1 = tlm1.NewPowerModel(charTable(cfg))
			b.AttachPower(p.tl1)
		}
		p.Bus = b
	case Layer2:
		b := tlm2.New(k, m)
		if cfg.Energy {
			p.tl2 = tlm2.NewPowerModel(charTable(cfg))
			b.AttachPower(p.tl2)
		}
		p.Bus = b
	default:
		panic(fmt.Sprintf("platform: unknown layer %d", int(cfg.Layer)))
	}
	return p
}

func charTable(cfg Config) gatepower.CharTable {
	if cfg.Char != nil {
		return *cfg.Char
	}
	return DefaultCharTable()
}

// LoadProgram loads assembled words at a ROM offset and attaches a CPU
// starting there.
func (p *Platform) LoadProgram(words []uint32, icache bool) error {
	if p.CPU != nil {
		return fmt.Errorf("platform: CPU already attached")
	}
	if err := p.ROM.LoadWords(0, words); err != nil {
		return err
	}
	p.CPU = cpu.New(p.Kernel, p.Bus, cpu.Config{
		PC: ROMBase, SP: uint32(ScratchBase + ScratchSize - 16), ICache: icache,
	})
	return nil
}

// EnableInterrupts wires the interrupt controller to the CPU: enabled
// pending lines vector the CPU to the handler at vector (return address
// in $k1, return with `jr $k1`); the acknowledge write in the handler is
// the end-of-interrupt that unmasks further delivery.
func (p *Platform) EnableInterrupts(vector uint64) error {
	if p.CPU == nil {
		return fmt.Errorf("platform: load a program before enabling interrupts")
	}
	p.CPU.EnableIRQ(func() bool { return p.Int.Pending() != 0 }, vector)
	p.Int.OnEOI = p.CPU.UnmaskIRQ
	return nil
}

// Run executes until the CPU halts or maxCycles elapse, returning cycles
// executed and whether the CPU halted.
func (p *Platform) Run(maxCycles uint64) (uint64, bool) {
	if p.CPU == nil {
		return p.Kernel.Run(maxCycles), false
	}
	return p.Kernel.RunUntil(maxCycles, p.CPU.Halted)
}

// BusEnergy returns the bus interface energy estimated by the layer's
// model (gate-level total for layer 0), or 0 when energy is off.
func (p *Platform) BusEnergy() float64 {
	switch {
	case p.gate != nil:
		return p.gate.TotalEnergy()
	case p.tl1 != nil:
		return p.tl1.TotalEnergy()
	case p.tl2 != nil:
		return p.tl2.TotalEnergy()
	}
	return 0
}

// PeripheralEnergy returns the characterized internal access energy of
// all slaves (the paper's future-work extension).
func (p *Platform) PeripheralEnergy() float64 {
	var sum float64
	for _, m := range p.meters {
		sum += m.Energy()
	}
	return sum
}

// TotalEnergy returns bus + peripheral-internal + crypto-engine energy.
func (p *Platform) TotalEnergy() float64 {
	return p.BusEnergy() + p.PeripheralEnergy() + p.Crypto.TraceEnergy()
}

// EnergyBreakdown returns per-slave internal energy keyed by slave name.
func (p *Platform) EnergyBreakdown() map[string]float64 {
	out := make(map[string]float64, len(p.meters))
	for _, m := range p.meters {
		out[m.Config().Name] = m.Energy()
	}
	return out
}

// FaultStats aggregates the injection counters of all fault injectors
// (zero when no fault plan is configured).
func (p *Platform) FaultStats() fault.Stats {
	var s fault.Stats
	for _, in := range p.injectors {
		st := in.Stats()
		s.ReadErrors += st.ReadErrors
		s.WriteErrors += st.WriteErrors
		s.Corruptions += st.Corruptions
		s.ExtraWaits += st.ExtraWaits
		s.Stretched += st.Stretched
	}
	return s
}

// GateEstimator exposes the layer-0 estimator (nil on other layers).
func (p *Platform) GateEstimator() *gatepower.Estimator { return p.gate }

// Wires exposes the layer-0 wire bundle (nil on other layers), for VCD
// dumping and custom probes.
func (p *Platform) Wires() *ecbus.Bundle {
	if b, ok := p.Bus.(*rtlbus.Bus); ok {
		return b.Wires()
	}
	return nil
}

// TL1Power exposes the layer-1 power model (nil otherwise).
func (p *Platform) TL1Power() *tlm1.PowerModel { return p.tl1 }

// TL2Power exposes the layer-2 power model (nil otherwise).
func (p *Platform) TL2Power() *tlm2.PowerModel { return p.tl2 }
