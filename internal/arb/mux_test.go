package arb_test

import (
	"math"
	"testing"

	"repro/internal/arb"
	"repro/internal/core"
	"repro/internal/gatepower"
	"repro/internal/platform"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// layerRun is one single-master run's comparable outcome.
type layerRun struct {
	cycles  uint64
	items   []core.Item
	energyJ float64
}

// runLayer executes items through the named layer, optionally behind a
// single-master mux, and returns the comparable outcome.
func runLayer(t *testing.T, layer int, items []core.Item, policy arb.Policy, muxed bool) layerRun {
	t.Helper()
	char := platform.DefaultCharTable()
	k := sim.New(0)
	var mux *arb.Mux
	if muxed {
		mux = arb.NewMux(k, policy, 1)
	}
	var bus core.Initiator
	var energy func() float64
	switch layer {
	case 0:
		b := rtlbus.New(k, testMap())
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.At(sim.Post, "gatepower", func(uint64) { est.Observe(b.Wires()) })
		bus, energy = b, est.TotalEnergy
	case 1:
		b := tlm1.New(k, testMap()).AttachPower(tlm1.NewPowerModel(char))
		bus, energy = b, b.Power().TotalEnergy
	default:
		b := tlm2.New(k, testMap()).AttachPower(tlm2.NewPowerModel(char))
		bus, energy = b, b.Power().TotalEnergy
	}
	drive := bus
	if muxed {
		mux.Bind(bus)
		drive = mux.Port(0)
	}
	m, n := core.RunScript(k, drive, items, 1_000_000)
	if !m.Done() {
		t.Fatalf("layer %d (muxed=%v) run did not finish", layer, muxed)
	}
	if muxed && !mux.Drained() {
		t.Fatalf("layer %d: mux not drained", layer)
	}
	return layerRun{cycles: n, items: items, energyJ: energy()}
}

// TestMuxTransparency pins the arbitration front's zero-cost contract
// for the single-master case: a master driving any layer through a
// one-port mux observes the identical per-transaction address/data
// cycles, data words and error flags, the identical run length, and
// the bit-identical bus energy of a direct connection. (IssueCycle is
// exempt: the mux's head-of-line presentation defers the bookkeeping
// issue stamp of queued-behind transactions without moving any bus
// phase — the wires, and therefore the energy, are untouched.) This is
// what keeps single-master sweep configurations byte-identical to
// their pre-arbiter outputs.
func TestMuxTransparency(t *testing.T) {
	for _, policy := range arb.Policies {
		for layer := 0; layer <= 2; layer++ {
			corpora := map[string][]core.Item{
				"verification": core.VerificationCorpus(lay),
				"random":       core.RandomCorpus(42, 200, lay),
			}
			for name, items := range corpora {
				direct := runLayer(t, layer, core.CloneItems(items), policy, false)
				muxed := runLayer(t, layer, core.CloneItems(items), policy, true)
				if direct.cycles != muxed.cycles {
					t.Fatalf("%s L%d/%s: direct %d cycles, muxed %d",
						policy, layer, name, direct.cycles, muxed.cycles)
				}
				if math.Float64bits(direct.energyJ) != math.Float64bits(muxed.energyJ) {
					t.Fatalf("%s L%d/%s: energy differs: direct %x muxed %x",
						policy, layer, name, direct.energyJ, muxed.energyJ)
				}
				for i := range direct.items {
					a, b := direct.items[i].Tr, muxed.items[i].Tr
					if a.AddrCycle != b.AddrCycle || a.DataCycle != b.DataCycle || a.Err != b.Err {
						t.Fatalf("%s L%d/%s tx %d: direct addr/data/err=%d/%d/%v muxed=%d/%d/%v",
							policy, layer, name, i, a.AddrCycle, a.DataCycle, a.Err,
							b.AddrCycle, b.DataCycle, b.Err)
					}
					for w := range a.Data {
						if a.Data[w] != b.Data[w] {
							t.Fatalf("%s L%d/%s tx %d word %d: %#x vs %#x",
								policy, layer, name, i, w, a.Data[w], b.Data[w])
						}
					}
				}
			}
		}
	}
}
