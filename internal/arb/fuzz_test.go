package arb_test

import (
	"math/bits"
	"testing"

	"repro/internal/arb"
)

// FuzzArbiterGrant feeds the arbiter arbitrary request-mask sequences
// and checks the grant invariants that the checker's G-rules assume:
//
//   - exactly one grant whenever any master requests, none otherwise;
//   - the grant always goes to a requesting master;
//   - fixed priority always grants the lowest requesting port;
//   - round robin never passes over a continuously-requesting master
//     for more than n-1 consecutive grants (the starvation bound).
//
// The first fuzz byte selects policy and master count; the rest are
// consumed as request masks, one cycle per byte.
func FuzzArbiterGrant(f *testing.F) {
	f.Add([]byte{0x00, 0x07, 0x07, 0x07, 0x07})       // fixed, 3 masters, all requesting
	f.Add([]byte{0x81, 0x0f, 0x0f, 0x0f, 0x0f, 0x0f}) // rr, 4 masters, all requesting
	f.Add([]byte{0x82, 0x15, 0x0a, 0x1f, 0x00, 0x11}) // rr, 5 masters, shifting masks
	f.Add([]byte{0x03, 0x01})                         // fixed, 6 masters, lone requester
	f.Add([]byte{0x87})                               // rr, 1 master, no cycles

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		policy := arb.FixedPriority
		if data[0]&0x80 != 0 {
			policy = arb.RoundRobin
		}
		n := int(data[0]&0x7f)%8 + 1
		a := arb.New(policy, n)
		mask := uint32(1)<<uint(n) - 1

		passedOver := make([]int, n)
		for _, b := range data[1:] {
			req := uint32(b) & mask
			g := a.Pick(req)
			if req == 0 {
				if g != -1 {
					t.Fatalf("grant %d with no request", g)
				}
				continue
			}
			if g < 0 || g >= n {
				t.Fatalf("grant %d out of range with req=%0*b", g, n, req)
			}
			if req&(1<<uint(g)) == 0 {
				t.Fatalf("granted non-requesting master %d (req=%0*b)", g, n, req)
			}
			if policy == arb.FixedPriority && g != bits.TrailingZeros32(req) {
				t.Fatalf("fixed granted %d, lowest requester is %d (req=%0*b)",
					g, bits.TrailingZeros32(req), n, req)
			}
			a.Commit(g)
			for i := 0; i < n; i++ {
				switch {
				case i == g, req&(1<<uint(i)) == 0:
					passedOver[i] = 0
				default:
					passedOver[i]++
					if policy == arb.RoundRobin && passedOver[i] > n-1 {
						t.Fatalf("rr starved master %d for %d grants (bound %d)",
							i, passedOver[i], n-1)
					}
				}
			}
		}
	})
}
