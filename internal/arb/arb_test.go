package arb_test

import (
	"math/bits"
	"testing"

	"repro/internal/arb"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

func TestParsePolicy(t *testing.T) {
	for _, p := range arb.Policies {
		got, err := arb.ParsePolicy(string(p))
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	for _, bad := range []string{"", "none", "priority", "RR"} {
		if _, err := arb.ParsePolicy(bad); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestFixedPriorityPick(t *testing.T) {
	a := arb.New(arb.FixedPriority, 4)
	cases := []struct {
		req  uint32
		want int
	}{
		{0b0000, -1}, {0b0001, 0}, {0b1110, 1}, {0b1100, 2}, {0b1000, 3}, {0b1111, 0},
	}
	for _, c := range cases {
		if got := a.Pick(c.req); got != c.want {
			t.Fatalf("fixed Pick(%04b) = %d, want %d", c.req, got, c.want)
		}
		// Commit never changes fixed-priority decisions.
		a.Commit(a.Pick(c.req))
	}
}

func TestRoundRobinRotation(t *testing.T) {
	a := arb.New(arb.RoundRobin, 3)
	// All requesting: strict rotation 0, 1, 2, 0, ...
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		g := a.Pick(0b111)
		if g != w {
			t.Fatalf("grant %d: got %d, want %d", i, g, w)
		}
		a.Commit(g)
	}
	// After granting 1, a request mask without 2 wraps to 0.
	a = arb.New(arb.RoundRobin, 3)
	a.Commit(a.Pick(0b111)) // grants 0
	a.Commit(a.Pick(0b110)) // grants 1
	if g := a.Pick(0b011); g != 0 {
		t.Fatalf("wrap grant: got %d, want 0", g)
	}
	// Pick without Commit keeps the pointer (a refused grant does not
	// rotate priority away from the stalled winner).
	a = arb.New(arb.RoundRobin, 3)
	if g := a.Pick(0b111); g != 0 {
		t.Fatalf("first pick: got %d", g)
	}
	if g := a.Pick(0b111); g != 0 {
		t.Fatalf("uncommitted pick moved the pointer: got %d", g)
	}
}

// testMap is the standard two-slave layout of the core accuracy tests.
var lay = core.Layout{Fast: 0, Slow: 0x10000}

func testMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

// runContenders drives three script masters with the given corpora
// through an arbitrated tlm1 bus and returns the mux and the recorded
// per-cycle wire observations.
type wireObs struct {
	req, gnt uint32
}

func runContenders(t *testing.T, policy arb.Policy, corpora [][]core.Item) (*arb.Mux, []wireObs, *checker.GrantMonitor) {
	t.Helper()
	k := sim.New(0)
	mux := arb.NewMux(k, policy, len(corpora))
	bus := tlm1.New(k, testMap())
	mux.Bind(bus)

	mon := checker.NewGrantMonitor(policy, len(corpora))
	var obs []wireObs
	mux.Observe(func(cycle uint64, req, gnt uint32) {
		obs = append(obs, wireObs{req, gnt})
		mon.Observe(cycle, req, gnt)
	})

	masters := make([]*core.ScriptMaster, len(corpora))
	for i, items := range corpora {
		masters[i] = core.NewScriptMaster(k, mux.Port(i), items)
	}
	_, done := k.RunUntil(2_000_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return true
	})
	if !done {
		t.Fatal("contention run did not finish")
	}
	for i, m := range masters {
		if m.Errors() != 0 {
			t.Fatalf("master %d: %d unexpected bus errors", i, m.Errors())
		}
		if got := uint64(len(m.Completed())); got != uint64(len(corpora[i])) {
			t.Fatalf("master %d completed %d of %d", i, got, len(corpora[i]))
		}
	}
	return mux, obs, mon
}

// TestArbitrationFairnessProperty is the arbitration fairness property
// suite over the 100-corpus matrix: for every seeded random corpus
// triple, round-robin grant counts stay within the ±1-per-rotation
// bound (no requester is passed over for a full rotation — checker
// rule G3) and fixed priority never grants a lower-priority master
// while a higher-priority one is requesting.
func TestArbitrationFairnessProperty(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		corpora := [][]core.Item{
			core.RandomCorpus(seed, 60, lay),
			core.RandomCorpus(seed+1000, 60, lay),
			core.RandomCorpus(seed+2000, 60, lay),
		}

		// Round robin: the grant monitor enforces the rotation bound;
		// additionally every master must finish with its full grant count.
		mux, obs, mon := runContenders(t, arb.RoundRobin, cloneAll(corpora))
		if !mon.Clean() {
			t.Fatalf("seed %d rr: grant violations: %v", seed, mon.Violations()[0])
		}
		last := -1
		for _, o := range obs {
			if o.gnt == 0 {
				continue
			}
			w := bits.TrailingZeros32(o.gnt)
			// The winner must be the first requester after the previous
			// winner in cyclic order — the round-robin invariant itself.
			n := mux.Masters()
			for i := 1; i <= n; i++ {
				p := (last + i) % n
				if p == w {
					break
				}
				if o.req&(1<<p) != 0 {
					t.Fatalf("seed %d: grant to %d skipped requester %d (req=%03b, last=%d)",
						seed, w, p, o.req, last)
				}
			}
			last = w
		}

		// Fixed priority: the winner is always the lowest requesting port.
		_, obs, mon = runContenders(t, arb.FixedPriority, cloneAll(corpora))
		if !mon.Clean() {
			t.Fatalf("seed %d fixed: grant violations: %v", seed, mon.Violations()[0])
		}
		for _, o := range obs {
			if o.gnt == 0 {
				continue
			}
			if want := uint32(1) << uint(bits.TrailingZeros32(o.req)); o.gnt != want {
				t.Fatalf("seed %d: fixed granted %03b with req %03b", seed, o.gnt, o.req)
			}
		}
	}
}

func cloneAll(corpora [][]core.Item) [][]core.Item {
	out := make([][]core.Item, len(corpora))
	for i, items := range corpora {
		out[i] = core.CloneItems(items)
	}
	return out
}

// TestGrantCountsConserved pins the accounting identities: committed
// grants equal completed transaction attempts, and the monitor's
// per-master counts match the mux's.
func TestGrantCountsConserved(t *testing.T) {
	corpora := [][]core.Item{
		core.RandomCorpus(7, 80, lay),
		core.RandomCorpus(8, 40, lay),
		core.RandomCorpus(9, 20, lay),
	}
	mux, _, mon := runContenders(t, arb.RoundRobin, cloneAll(corpora))
	var total uint64
	for i := range corpora {
		if mux.Grants(i) != uint64(len(corpora[i])) {
			t.Fatalf("master %d: %d grants for %d transactions", i, mux.Grants(i), len(corpora[i]))
		}
		if mon.Grants(i) != mux.Grants(i) {
			t.Fatalf("master %d: monitor saw %d grants, mux counted %d", i, mon.Grants(i), mux.Grants(i))
		}
		total += mux.Grants(i)
	}
	if mux.TotalGrants() != total {
		t.Fatalf("TotalGrants %d != sum %d", mux.TotalGrants(), total)
	}
	if !mux.Drained() {
		t.Fatal("mux not drained after all masters finished")
	}
}

// TestMasterEnergyTelescopes pins the per-master arbitration-energy
// attribution: the port-order sum of MasterEnergy equals TotalEnergy
// bit for bit, and energy is conserved as edges × EdgeEnergyJ.
func TestMasterEnergyTelescopes(t *testing.T) {
	corpora := [][]core.Item{
		core.RandomCorpus(11, 70, lay),
		core.RandomCorpus(12, 50, lay),
		core.RandomCorpus(13, 30, lay),
	}
	mux, _, _ := runContenders(t, arb.RoundRobin, cloneAll(corpora))
	var sum float64
	var edges uint64
	for i := 0; i < mux.Masters(); i++ {
		sum += mux.MasterEnergy(i)
		edges += mux.Edges(i)
		if mux.MasterEnergy(i) != float64(mux.Edges(i))*arb.EdgeEnergyJ {
			t.Fatalf("master %d energy not edges × EdgeEnergyJ", i)
		}
	}
	if total := mux.TotalEnergy(); total != sum {
		t.Fatalf("per-master energy does not telescope: sum %x, total %x", sum, total)
	}
	if edges == 0 {
		t.Fatal("no arbitration wire activity recorded")
	}
}
