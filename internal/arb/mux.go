package arb

import (
	"fmt"
	"math/bits"

	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Observer receives the arbitration wires of every executed falling
// tick: the request mask sampled at arbitration time and the grant
// pulse (at most one bit). The checker's grant-protocol monitor hooks
// in here.
type Observer func(cycle uint64, req, gnt uint32)

// Mux is the multi-master front of a bus model: n master-side ports
// share one downstream core.Initiator under an arbitration policy.
//
// The mux registers a falling-edge process that must run *before* the
// bus process of the fronted layer, so a granted transaction is
// presented to the bus in the same falling tick and begins its address
// phase exactly when a directly-connected master's rising-edge request
// would — an uncontended master observes identical Addr/Data cycle
// numbers and identical bus energy through the mux. Construction order
// enforces this: create the Mux first, then the bus, then Bind them.
//
// Arbitration is one grant per cycle (the EC bus starts at most one
// address phase per falling edge anyway). A grant is only committed
// when the bus accepts the transaction; a cycle where the downstream
// category queue is full grants nobody and does not rotate round-robin
// priority away from the stalled winner.
type Mux struct {
	a   *Arbiter
	bus Initiator
	n   int

	// pending holds each port's presented-but-ungranted transactions in
	// presentation order; granted tracks forwarded transactions until
	// the owning master observes the terminal state (value: master has
	// been told StateRequest).
	pending [][]*ecbus.Transaction
	granted []map[*ecbus.Transaction]bool

	reqPrev, gntPrev uint32
	edges            []uint64 // per-master request+grant wire transitions
	grants           []uint64 // per-master committed grants
	grantWaits       uint64   // grant attempts refused by the bus (queue full)
	contentions      uint64   // executed ticks with >1 requester

	obs Observer
}

// Initiator is the downstream bus interface; structurally identical to
// core.Initiator (redeclared to avoid an import cycle: core masters
// drive mux ports through the same contract).
type Initiator interface {
	Access(tr *ecbus.Transaction) ecbus.BusState
}

// NewMux creates the arbitrating front for n masters and registers its
// falling-edge process on the kernel. Call it BEFORE constructing the
// bus model it will front, then Bind the bus; registration order is
// execution order, and the mux must arbitrate ahead of the bus's
// protocol state machine in every falling tick.
func NewMux(k *sim.Kernel, policy Policy, n int) *Mux {
	m := &Mux{
		a:       New(policy, n),
		n:       n,
		pending: make([][]*ecbus.Transaction, n),
		granted: make([]map[*ecbus.Transaction]bool, n),
		edges:   make([]uint64, n),
		grants:  make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		m.granted[i] = make(map[*ecbus.Transaction]bool, 4)
	}
	k.AtHinted(sim.Falling, "arb-mux", m.tick, m.hint, nil)
	return m
}

// Bind connects the downstream bus. It must be called before the first
// kernel cycle.
func (m *Mux) Bind(bus Initiator) *Mux {
	m.bus = bus
	return m
}

// Observe installs the wire observer (at most one; the checker chains
// internally if it needs more).
func (m *Mux) Observe(o Observer) { m.obs = o }

// Policy returns the arbitration policy.
func (m *Mux) Policy() Policy { return m.a.Policy() }

// Masters returns the number of ports.
func (m *Mux) Masters() int { return m.n }

// Port returns master port i. Each master holds exactly one port;
// ports are not safe for use by two concurrent masters (the whole
// simulation is single-threaded).
func (m *Mux) Port(i int) *Port {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("arb: port %d out of range [0,%d)", i, m.n))
	}
	return &Port{m: m, i: i}
}

// hint keeps the mux skippable: it needs a cycle only while a request
// is pending or the request/grant wires still carry a level to decay.
func (m *Mux) hint(now uint64) uint64 {
	if m.reqPrev != 0 || m.gntPrev != 0 {
		return now
	}
	for i := range m.pending {
		if len(m.pending[i]) > 0 {
			return now
		}
	}
	return sim.NoEvent
}

// tick is the falling-edge arbitration step: sample requests, pick one
// winner, present its head transaction to the bus, and integrate the
// request/grant wire activity.
func (m *Mux) tick(cycle uint64) {
	var req uint32
	for i := 0; i < m.n; i++ {
		if len(m.pending[i]) > 0 {
			req |= 1 << uint(i)
		}
	}
	var gnt uint32
	if req != 0 {
		if bits.OnesCount32(req) > 1 {
			m.contentions++
		}
		w := m.a.Pick(req)
		tr := m.pending[w][0]
		switch st := m.bus.Access(tr); st {
		case ecbus.StateRequest, ecbus.StateOK, ecbus.StateError:
			// Accepted (or completed on the spot: zero-time counting bus,
			// or a validation failure). Hand the transaction over; the
			// master learns its state on its next poll.
			m.pending[w] = m.pending[w][1:]
			m.granted[w][tr] = false
			m.a.Commit(w)
			gnt = 1 << uint(w)
			m.grants[w]++
		default:
			// StateWait: the downstream queue for this category is full.
			// No grant this cycle; the winner keeps its priority claim.
			m.grantWaits++
		}
	}
	// Request/grant wire edges, integrated per master in port order —
	// the order TotalEnergy sums, so attribution telescopes bit-exactly.
	dr, dg := req^m.reqPrev, gnt^m.gntPrev
	if dr|dg != 0 {
		for i := 0; i < m.n; i++ {
			m.edges[i] += uint64(dr>>uint(i)&1) + uint64(dg>>uint(i)&1)
		}
	}
	m.reqPrev, m.gntPrev = req, gnt
	if m.obs != nil {
		m.obs(cycle, req, gnt)
	}
}

// Drained reports whether the mux holds no pending or granted
// transactions and the wires are idle — the mux's contribution to a
// run's termination condition.
func (m *Mux) Drained() bool {
	if m.reqPrev != 0 || m.gntPrev != 0 {
		return false
	}
	for i := 0; i < m.n; i++ {
		if len(m.pending[i]) > 0 || len(m.granted[i]) > 0 {
			return false
		}
	}
	return true
}

// Grants returns port i's committed grant count.
func (m *Mux) Grants(i int) uint64 { return m.grants[i] }

// TotalGrants returns the committed grants across all ports.
func (m *Mux) TotalGrants() uint64 {
	var s uint64
	for _, g := range m.grants {
		s += g
	}
	return s
}

// GrantWaits returns the number of grant attempts the bus refused.
func (m *Mux) GrantWaits() uint64 { return m.grantWaits }

// Contentions returns the number of executed ticks on which more than
// one master was requesting — the contention-window count.
func (m *Mux) Contentions() uint64 { return m.contentions }

// Edges returns port i's request+grant wire transition count.
func (m *Mux) Edges(i int) uint64 { return m.edges[i] }

// MasterEnergy returns the arbitration-wire energy attributed to port
// i: its edge count priced at EdgeEnergyJ.
func (m *Mux) MasterEnergy(i int) float64 { return float64(m.edges[i]) * EdgeEnergyJ }

// TotalEnergy returns the arbitration-wire energy of the run. It is
// computed as the port-order sum of MasterEnergy, so the per-master
// attribution telescopes to this total bit-for-bit by construction.
func (m *Mux) TotalEnergy() float64 {
	var s float64
	for i := 0; i < m.n; i++ {
		s += m.MasterEnergy(i)
	}
	return s
}

// ReportMetrics books the mux's run totals into a registry (nil-safe).
func (m *Mux) ReportMetrics(r *metrics.Registry) {
	r.Arbitration(m.TotalGrants(), m.grantWaits, m.contentions, m.TotalEnergy())
}

// Port is one master's view of the arbitrated bus: a core.Initiator
// with the same request/wait/ok/error protocol as the bus models, so
// every master built for a single-master layer drives it unchanged.
type Port struct {
	m *Mux
	i int
}

// Access implements the non-blocking master-side protocol through the
// arbiter. A new transaction is queued for arbitration and answered
// StateWait until granted; the poll after the grant returns
// StateRequest (the acceptance the master is waiting for), and
// subsequent polls delegate to the bus until the terminal state.
func (p *Port) Access(tr *ecbus.Transaction) ecbus.BusState {
	m := p.m
	if tr.Done {
		// Completed while held here (granted-and-finished between the
		// master's polls, or forwarded straight to a terminal state).
		delete(m.granted[p.i], tr)
		if tr.Err {
			return ecbus.StateError
		}
		return ecbus.StateOK
	}
	if told, ok := m.granted[p.i][tr]; ok {
		if !told {
			m.granted[p.i][tr] = true
			return ecbus.StateRequest
		}
		st := m.bus.Access(tr)
		if st.Done() {
			delete(m.granted[p.i], tr)
		}
		return st
	}
	for _, q := range m.pending[p.i] {
		if q == tr {
			return ecbus.StateWait
		}
	}
	m.pending[p.i] = append(m.pending[p.i], tr)
	return ecbus.StateWait
}
