package arb_test

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/arb"
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// The cross-layer contention equivalence suite (the multi-master
// extension of core's layer-equivalence tests). Three scripted masters
// with disjoint address ranges contend for one bus behind identical
// muxes at every abstraction level; the suite pins which properties of
// the arbitrated run survive each abstraction step:
//
//   - Layer 0 ↔ layer 1 are cycle-identical models, so EVERYTHING about
//     the arbitration is strictly equal: the committed winner sequence
//     (winner/loser ordering per grant), per-master retry counts under
//     injected faults, contention-window counts, and the arbitration
//     wire energy to the exact IEEE-754 bit pattern.
//   - Layer 2 trades per-beat timing for phase-level timing (it runs a
//     bounded number of cycles slow), so masters' re-request times — and
//     therefore the per-cycle request masks the arbiter samples — shift.
//     The grant schedule is NOT strictly comparable by construction;
//     the invariants that do survive are conservation ones: every
//     master's grant count equals its transaction attempts, retries and
//     error outcomes match the timed layers (the injector keys on
//     per-word access ordinals, which disjoint address ranges keep
//     layer-invariant), and the run completes no faster than layer 0.
type contentionOutcome struct {
	cycles      uint64
	winners     []int    // committed grants in execution order
	grants      []uint64 // per-master committed grant counts
	retries     []int
	errors      []int
	arbBits     uint64 // IEEE-754 bits of the arbitration wire energy
	contentions uint64
}

// contendedCorpora builds three deterministic scripts with disjoint
// address ranges (each master owns its words), so injected fault
// ordinals depend only on each master's own program order.
func contendedCorpora(t *testing.T) [][]core.Item {
	t.Helper()
	var id uint64 = 1
	next := func() uint64 { id++; return id }

	// Master 0: fast-slave traffic, write-then-read word pairs plus one
	// burst — the CPU-like mix.
	var m0 []core.Item
	for i := 0; i < 10; i++ {
		a := lay.Fast + uint64(i)*8
		m0 = append(m0,
			mustSingleItem(t, next(), ecbus.Write, a, 0xAAAA0000|uint32(i)),
			mustSingleItem(t, next(), ecbus.Read, a, 0),
		)
	}
	m0 = append(m0, mustBurstItem(t, next(), ecbus.Write, lay.Fast+0x100,
		[]uint32{1, 2, 3, 4}))

	// Master 1: slow-slave writes (the fault plan scripts against the
	// first of these addresses).
	var m1 []core.Item
	for i := 0; i < 12; i++ {
		a := lay.Slow + 0x100 + uint64(i)*4
		m1 = append(m1, mustSingleItem(t, next(), ecbus.Write, a, 0xBBBB0000|uint32(i)))
	}

	// Master 2: mixed reads and writes split across both slaves, in its
	// own address windows.
	var m2 []core.Item
	for i := 0; i < 8; i++ {
		fa := lay.Fast + 0x800 + uint64(i)*4
		sa := lay.Slow + 0x800 + uint64(i)*4
		m2 = append(m2,
			mustSingleItem(t, next(), ecbus.Write, sa, 0xCCCC0000|uint32(i)),
			mustSingleItem(t, next(), ecbus.Read, fa, 0),
		)
	}
	return [][]core.Item{m0, m1, m2}
}

func mustSingleItem(t *testing.T, id uint64, kind ecbus.Kind, addr uint64, data uint32) core.Item {
	t.Helper()
	tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W32, data)
	if err != nil {
		t.Fatal(err)
	}
	return core.Item{Tr: tr}
}

func mustBurstItem(t *testing.T, id uint64, kind ecbus.Kind, addr uint64, data []uint32) core.Item {
	t.Helper()
	tr, err := ecbus.NewBurst(id, kind, addr, data)
	if err != nil {
		t.Fatal(err)
	}
	return core.Item{Tr: tr}
}

// contentionPlan scripts faults against master 1's first write address
// (two faulted beats, then clean) and master 2's first slow write
// (one faulted beat) — both recoverable within the retry budget.
func contentionPlan() fault.Plan {
	return fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpWrite, Addr: lay.Slow + 0x100, After: 0, Count: 2},
		{Op: fault.OpWrite, Addr: lay.Slow + 0x800, After: 0, Count: 1},
	}}
}

// runContention executes the three-master script at the given layer
// behind a mux and returns the comparable outcome.
func runContention(t *testing.T, layer int, policy arb.Policy, corpora [][]core.Item, plan *fault.Plan) contentionOutcome {
	t.Helper()
	slaves := []ecbus.Slave{
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	}
	if plan != nil {
		for i, s := range slaves {
			slaves[i] = fault.Wrap(s, *plan)
		}
	}
	bmap := ecbus.MustMap(slaves...)

	k := sim.New(0)
	mux := arb.NewMux(k, policy, len(corpora))
	var bus core.Initiator
	var arbEnergy func() float64 = mux.TotalEnergy
	switch layer {
	case 0:
		bus = rtlbus.New(k, bmap)
	case 1:
		bus = tlm1.New(k, bmap)
	default:
		bus = tlm2.New(k, bmap)
	}
	mux.Bind(bus)

	var out contentionOutcome
	mux.Observe(func(_ uint64, req, gnt uint32) {
		if gnt != 0 {
			out.winners = append(out.winners, bits.TrailingZeros32(gnt))
		}
	})

	masters := make([]*core.ScriptMaster, len(corpora))
	for i, items := range corpora {
		masters[i] = core.NewScriptMaster(k, mux.Port(i), items)
		masters[i].Retry = core.RetryPolicy{MaxRetries: 4, Backoff: 1}
	}
	n, done := k.RunUntil(2_000_000, func() bool {
		for _, m := range masters {
			if !m.Done() {
				return false
			}
		}
		return mux.Drained()
	})
	if !done {
		t.Fatalf("layer-%d contention run did not finish", layer)
	}
	out.cycles = n
	out.contentions = mux.Contentions()
	out.arbBits = math.Float64bits(arbEnergy())
	for i, m := range masters {
		out.grants = append(out.grants, mux.Grants(i))
		out.retries = append(out.retries, m.TotalRetries())
		out.errors = append(out.errors, m.Errors())
	}
	return out
}

// assertStrictEqual pins the full L0↔TL1 contention contract: identical
// winner ordering, grant counts, retries, errors, contention windows
// and bit-identical arbitration wire energy.
func assertStrictEqual(t *testing.T, tag string, a, b contentionOutcome) {
	t.Helper()
	if a.cycles != b.cycles {
		t.Fatalf("%s: %d vs %d cycles", tag, a.cycles, b.cycles)
	}
	if len(a.winners) != len(b.winners) {
		t.Fatalf("%s: %d vs %d grants", tag, len(a.winners), len(b.winners))
	}
	for i := range a.winners {
		if a.winners[i] != b.winners[i] {
			t.Fatalf("%s: grant %d went to %d vs %d — winner ordering diverged",
				tag, i, a.winners[i], b.winners[i])
		}
	}
	for i := range a.grants {
		if a.grants[i] != b.grants[i] || a.retries[i] != b.retries[i] || a.errors[i] != b.errors[i] {
			t.Fatalf("%s master %d: grants/retries/errors %d/%d/%d vs %d/%d/%d",
				tag, i, a.grants[i], a.retries[i], a.errors[i],
				b.grants[i], b.retries[i], b.errors[i])
		}
	}
	if a.contentions != b.contentions {
		t.Fatalf("%s: %d vs %d contention windows", tag, a.contentions, b.contentions)
	}
	if a.arbBits != b.arbBits {
		t.Fatalf("%s: arbitration energy bits %016x vs %016x", tag, a.arbBits, b.arbBits)
	}
}

// assertConserved pins the layer-2 subset of the contract against the
// layer-0 reference: attempt-conservation, identical fault outcomes,
// and conservative timing.
func assertConserved(t *testing.T, tag string, ref, tl2 contentionOutcome, corpora [][]core.Item) {
	t.Helper()
	for i := range corpora {
		attempts := uint64(len(corpora[i]) + tl2.retries[i])
		if tl2.grants[i] != attempts {
			t.Fatalf("%s master %d: %d grants for %d attempts", tag, i, tl2.grants[i], attempts)
		}
		if tl2.retries[i] != ref.retries[i] || tl2.errors[i] != ref.errors[i] {
			t.Fatalf("%s master %d: retries/errors %d/%d, layer 0 had %d/%d",
				tag, i, tl2.retries[i], tl2.errors[i], ref.retries[i], ref.errors[i])
		}
	}
	if tl2.cycles < ref.cycles {
		t.Fatalf("%s: layer 2 ran %d cycles, faster than layer 0's %d", tag, tl2.cycles, ref.cycles)
	}
}

// TestCrossLayerContentionEquivalence is the clean-run equivalence
// table: strict grant-schedule and arbitration-energy-bit equality
// between the cycle-identical layers, conservation at layer 2.
func TestCrossLayerContentionEquivalence(t *testing.T) {
	for _, policy := range arb.Policies {
		corpora := contendedCorpora(t)
		l0 := runContention(t, 0, policy, cloneAll(corpora), nil)
		l1 := runContention(t, 1, policy, cloneAll(corpora), nil)
		l2 := runContention(t, 2, policy, cloneAll(corpora), nil)

		if l0.contentions == 0 {
			t.Fatalf("%s: no contention windows — the corpus does not contend", policy)
		}
		assertStrictEqual(t, string(policy)+" L0↔TL1", l0, l1)
		assertConserved(t, string(policy)+" TL2", l0, l2, corpora)
		for i := range corpora {
			if l0.retries[i] != 0 || l0.errors[i] != 0 {
				t.Fatalf("%s: clean run recorded retries/errors on master %d", policy, i)
			}
		}
	}
}

// TestCrossLayerContentionFaultEquivalence repeats the table with the
// scripted fault plan active: the retry storms the injector provokes
// must replay identically on the cycle-identical layers — same winner
// ordering through the retries, same per-master retry counts, same
// arbitration energy bits — and layer 2 must reach the same outcomes.
func TestCrossLayerContentionFaultEquivalence(t *testing.T) {
	plan := contentionPlan()
	for _, policy := range arb.Policies {
		corpora := contendedCorpora(t)
		l0 := runContention(t, 0, policy, cloneAll(corpora), &plan)
		l1 := runContention(t, 1, policy, cloneAll(corpora), &plan)
		l2 := runContention(t, 2, policy, cloneAll(corpora), &plan)

		assertStrictEqual(t, string(policy)+" faulted L0↔TL1", l0, l1)
		assertConserved(t, string(policy)+" faulted TL2", l0, l2, corpora)
		// The scripted plan injects exactly 2 faulted beats on master 1
		// and 1 on master 2 — all recoverable, none on master 0.
		if l0.retries[0] != 0 || l0.retries[1] != 2 || l0.retries[2] != 1 {
			t.Fatalf("%s: retries %v, want [0 2 1]", policy, l0.retries)
		}
		for i, e := range l0.errors {
			if e != 0 {
				t.Fatalf("%s: master %d abandoned %d transactions", policy, i, e)
			}
		}
	}
}

// TestGoldenContendedEquivalence extends the golden gate to multi-master
// runs: the optimized simulation core (idle-skip, incremental power
// bookkeeping) and the reference path produce bit-identical contended
// results — same cycle counts, same winner ordering, same arbitration
// and bus energy bits — at every layer and under both policies.
func TestGoldenContendedEquivalence(t *testing.T) {
	char := platform.DefaultCharTable()
	run := func(layer int, policy arb.Policy, corpora [][]core.Item) (contentionOutcome, uint64) {
		k := sim.New(0)
		mux := arb.NewMux(k, policy, len(corpora))
		var bus core.Initiator
		var busEnergy func() float64
		switch layer {
		case 0:
			b := rtlbus.New(k, testMap())
			est := gatepower.NewEstimator(gatepower.DefaultConfig())
			k.At(sim.Post, "gatepower", func(uint64) { est.Observe(b.Wires()) })
			bus, busEnergy = b, est.TotalEnergy
		case 1:
			b := tlm1.New(k, testMap()).AttachPower(tlm1.NewPowerModel(char))
			bus, busEnergy = b, b.Power().TotalEnergy
		default:
			b := tlm2.New(k, testMap()).AttachPower(tlm2.NewPowerModel(char))
			bus, busEnergy = b, b.Power().TotalEnergy
		}
		mux.Bind(bus)
		var out contentionOutcome
		mux.Observe(func(_ uint64, _, gnt uint32) {
			if gnt != 0 {
				out.winners = append(out.winners, bits.TrailingZeros32(gnt))
			}
		})
		masters := make([]*core.ScriptMaster, len(corpora))
		for i, items := range corpora {
			masters[i] = core.NewScriptMaster(k, mux.Port(i), items)
		}
		n, done := k.RunUntil(2_000_000, func() bool {
			for _, m := range masters {
				if !m.Done() {
					return false
				}
			}
			return mux.Drained()
		})
		if !done {
			t.Fatalf("golden layer-%d contended run did not finish", layer)
		}
		out.cycles = n
		out.contentions = mux.Contentions()
		out.arbBits = math.Float64bits(mux.TotalEnergy())
		for i := range corpora {
			out.grants = append(out.grants, mux.Grants(i))
			out.retries = append(out.retries, masters[i].TotalRetries())
			out.errors = append(out.errors, masters[i].Errors())
		}
		return out, math.Float64bits(busEnergy())
	}

	for _, policy := range arb.Policies {
		for layer := 0; layer <= 2; layer++ {
			corpora := contendedCorpora(t)
			opt, optBus := run(layer, policy, cloneAll(corpora))

			core.SetReference(true)
			ref, refBus := run(layer, policy, cloneAll(corpora))
			core.SetReference(false)

			assertStrictEqual(t, string(policy)+" golden L"+string(rune('0'+layer)), opt, ref)
			if optBus != refBus {
				t.Fatalf("%s L%d: bus energy bits %016x (optimized) vs %016x (reference)",
					policy, layer, optBus, refBus)
			}
		}
	}
}
