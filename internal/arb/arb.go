// Package arb promotes the single-master EC bus controller to a
// multi-master arbiter. The EC interface natively supports one master;
// a realistic smart-card SoC hangs the CPU, the crypto coprocessor and
// a DMA engine off one interconnect, so a bus-front multiplexer
// (Mux) serializes their requests under a configurable arbitration
// policy — fixed priority or round robin — exactly the regime the
// extended-AMBA transaction-level models cover.
//
// The arbiter is deliberately layered the same way as the rest of the
// hierarchy: one Mux implementation fronts every bus model (layer 0
// signal-true, layers 1/2 transaction-level, the layer-3 counting bus),
// so the grant schedule — and therefore the request/grant wire activity
// priced by EdgeEnergyJ — is identical across layers for identical
// master behaviour. That is what lets the cross-layer contention
// equivalence suite pin winner ordering and arbitration energy bits
// across abstraction levels.
package arb

import (
	"fmt"
	"math/bits"
	"strings"
)

// Policy names an arbitration policy.
type Policy string

// The supported arbitration policies. FixedPriority grants the
// lowest-numbered requesting master (port 0 is highest priority);
// RoundRobin grants the first requester after the previous winner in
// cyclic port order, so continuous requesters share the bus within ±1
// grant per rotation.
const (
	FixedPriority Policy = "fixed"
	RoundRobin    Policy = "rr"
)

// Policies lists the valid policies, the sweep vocabulary order.
var Policies = []Policy{FixedPriority, RoundRobin}

// PolicyNames renders the policy vocabulary for error messages.
func PolicyNames() string {
	parts := make([]string, len(Policies))
	for i, p := range Policies {
		parts[i] = string(p)
	}
	return strings.Join(parts, ", ")
}

// ParsePolicy validates a policy name upfront, mirroring
// fault.ParseNames: unknown names fail loudly with the vocabulary.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case FixedPriority, RoundRobin:
		return Policy(s), nil
	}
	return "", fmt.Errorf("arb: unknown arbitration policy %q (valid: %s)", s, PolicyNames())
}

// EdgeEnergyJ is the energy of one full-swing transition of one
// request or grant wire: ½·C·V² at the reference supply (1.8 V) with a
// 20 fF point-to-point net — request/grant lines run master-to-
// controller only, shorter than any bused control wire in the
// gate-level reference config.
const EdgeEnergyJ = 0.5 * 20e-15 * 1.8 * 1.8

// Arbiter is the pure grant-decision core: given the request mask of
// the current cycle it picks exactly one winner. It is deterministic
// and allocation-free, so the same instance drives the signal-true
// layer, the transaction layers and the fuzz harness identically.
type Arbiter struct {
	policy Policy
	n      int
	last   int // round-robin pointer: port of the most recent grant
}

// New returns an arbiter over n master ports. Panics on an invalid
// policy or non-positive n — both are programming errors, not input.
func New(policy Policy, n int) *Arbiter {
	if _, err := ParsePolicy(string(policy)); err != nil {
		panic(err)
	}
	if n <= 0 || n > 32 {
		panic(fmt.Sprintf("arb: invalid master count %d", n))
	}
	return &Arbiter{policy: policy, n: n, last: n - 1}
}

// Policy returns the arbiter's policy.
func (a *Arbiter) Policy() Policy { return a.policy }

// Masters returns the number of master ports.
func (a *Arbiter) Masters() int { return a.n }

// Pick returns the winning port for the request mask (bit i = port i
// requesting), or -1 when nothing is requested. Pick does not advance
// the round-robin pointer — the caller Commits the grant only if the
// downstream bus actually accepted the transaction, so a cycle where
// the bus is full does not rotate priority away from the loser.
func (a *Arbiter) Pick(req uint32) int {
	req &= (1 << a.n) - 1
	if req == 0 {
		return -1
	}
	switch a.policy {
	case RoundRobin:
		for i := 1; i <= a.n; i++ {
			p := (a.last + i) % a.n
			if req&(1<<p) != 0 {
				return p
			}
		}
		return -1 // unreachable: req is non-zero within the mask
	default: // FixedPriority
		return bits.TrailingZeros32(req)
	}
}

// Commit records that port g's transaction was accepted by the bus,
// advancing the round-robin pointer.
func (a *Arbiter) Commit(g int) {
	if g >= 0 && g < a.n {
		a.last = g
	}
}
