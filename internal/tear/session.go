package tear

import (
	"errors"
	"fmt"

	"repro/internal/apdu"
	"repro/internal/journal"
	"repro/internal/platform"
)

// DefaultSession is the tear-aware multi-applet workload: the terminal
// authenticates against the PIN applet, then runs wallet traffic —
// every debit/credit a two-word persistent update — and checks the
// retry budget on the way out. It exercises both applets' persistent
// state in one power cycle, so a tear anywhere inside it leaves
// something for the journal to prove.
func DefaultSession() []apdu.Command {
	return []apdu.Command{
		{CLA: apdu.ClaWallet, INS: apdu.InsSelect, Data: append([]byte{}, apdu.AuthAID...)},
		{CLA: apdu.ClaWallet, INS: apdu.InsVerify, Data: append([]byte{}, apdu.DefaultPIN...)},
		{CLA: apdu.ClaWallet, INS: apdu.InsSelect, Data: append([]byte{}, apdu.WalletAID...)},
		{CLA: apdu.ClaWallet, INS: apdu.InsBalance, Le: 2},
		{CLA: apdu.ClaWallet, INS: apdu.InsDebit, Data: []byte{0x00, 0x64}},  // -100
		{CLA: apdu.ClaWallet, INS: apdu.InsCredit, Data: []byte{0x00, 0x32}}, // +50
		{CLA: apdu.ClaWallet, INS: apdu.InsDebit, Data: []byte{0x00, 0x0A}},  // -10
		{CLA: apdu.ClaWallet, INS: apdu.InsBalance, Le: 2},
		{CLA: apdu.ClaWallet, INS: apdu.InsSelect, Data: append([]byte{}, apdu.AuthAID...)},
		{CLA: apdu.ClaWallet, INS: apdu.InsTries, Le: 1},
	}
}

// SessionResult reports one tear-aware session: the terminal exchange
// up to the cut, the power-loss outcome, and the recovery that
// followed.
type SessionResult struct {
	Responses []apdu.Response // responses completed before the cut
	Torn      bool
	CutCycle  uint64 // kernel cycle of the cut (0 when untorn)

	// CommitLog is the sequence numbers of the frames made durable
	// before the cut, in commit order — the committed prefix a recovered
	// card must reproduce.
	CommitLog []uint32
	// Committed is the durable words at the cut, keyed by bus address.
	Committed map[uint64]uint32

	Recovery journal.Recovery // power-up replay outcome (journaled runs)

	SessionJ  float64 // energy up to (and including) the cut
	RecoveryJ float64 // power-up replay energy, exact meter delta
	TotalJ    float64 // SessionJ + replay + verification traffic
	Cycles    uint64  // kernel cycles including recovery
}

// RunSession runs the multi-applet APDU workload on a fresh platform
// at the given layer, with the card's persistent writes journaled
// under strat (Empty = in place) and the supply cut by plan (Empty =
// never). A torn session powers the card back up on the same device,
// replays the journal, and verifies that every committed word
// survived; losing one is an error. The plan's joule budget watches
// the platform's running total energy; its program-op ordinals count
// the EEPROM's programming operations — both bit-exact, layer-portable
// observables.
func RunSession(layer platform.Layer, plan Plan, strat journal.Strategy) (SessionResult, error) {
	var res SessionResult
	p := platform.New(platform.Config{Layer: layer, Energy: true})
	if err := p.EEPROM.LoadWords(0, []uint32{1000}); err != nil {
		return res, err
	}

	card := apdu.NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase)
	card.UseJournal(strat)
	if jw := card.Journal(); jw != nil {
		jw.OnCommit = func(seq uint32) { res.CommitLog = append(res.CommitLog, seq) }
	}
	var mon *Monitor
	if !plan.Empty() {
		mon = NewMonitor(plan, p.Kernel.Cycle, p.TotalEnergy, p.EEPROM.Programs)
		card.Monitor = mon
	}

	resps, err := card.Session(p.UART, DefaultSession())
	res.Responses = resps
	switch {
	case err == nil:
	case errors.Is(err, journal.ErrPowerLost):
		res.Torn = true
		res.CutCycle = mon.CutCycle()
	default:
		return res, err
	}
	res.SessionJ = p.TotalEnergy()

	// Snapshot the committed prefix before recovery mutates anything.
	res.Committed = map[uint64]uint32{}
	for a, v := range card.Committed() {
		res.Committed[a] = v
	}

	if res.Torn {
		// The cut may have landed inside an EEPROM programming window;
		// corrupt the in-flight word exactly as the exploration harness
		// does (same seed, same ordinal keying).
		p.EEPROM.TearAt(mon.CutCycle(), plan.Seed)

		// Power up: a fresh card instance on the same device replays the
		// journal. The torn card's RAM state (selected applet, buffered
		// lazy writes) is gone — that is the tear.
		fresh := apdu.NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase)
		fresh.UseJournal(strat)
		rec, err := fresh.PowerUp(p.TotalEnergy, nil)
		if err != nil {
			return res, fmt.Errorf("tear: power-up replay: %w", err)
		}
		res.Recovery = rec
		res.RecoveryJ = rec.BoundsJ[3] - rec.BoundsJ[0]

		// The committed prefix must have survived.
		for addr, want := range res.Committed {
			got, err := fresh.ReadWord(addr)
			if err != nil {
				return res, err
			}
			if got != want {
				return res, fmt.Errorf("tear: recovery lost %#x: device %#x, committed %#x",
					addr, got, want)
			}
		}
	}
	res.TotalJ = p.TotalEnergy()
	res.Cycles = p.Kernel.Cycle()
	return res, nil
}
