package tear

import (
	"math"
	"testing"

	"repro/internal/apdu"
	"repro/internal/journal"
	"repro/internal/platform"
)

func mustStrategy(t *testing.T, name string) journal.Strategy {
	t.Helper()
	s, ok := journal.Named(name)
	if !ok {
		t.Fatalf("bad strategy %q", name)
	}
	return s
}

func mustPlan(t *testing.T, name string) Plan {
	t.Helper()
	p, ok := Named(name)
	if !ok {
		t.Fatalf("bad plan %q", name)
	}
	return p
}

func TestSessionCleanRun(t *testing.T) {
	res, err := RunSession(platform.Layer1, Plan{}, mustStrategy(t, "word-eager"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || res.CutCycle != 0 || res.RecoveryJ != 0 {
		t.Fatalf("clean session torn: %+v", res)
	}
	if len(res.Responses) != len(DefaultSession()) {
		t.Fatalf("%d responses, want %d", len(res.Responses), len(DefaultSession()))
	}
	for i, r := range res.Responses {
		if !r.OK() {
			t.Fatalf("command %d: SW=%04X", i, r.SW)
		}
	}
	// The workload's wallet arithmetic: 1000 - 100 + 50 - 10 = 940.
	bal := res.Responses[7]
	if got := uint16(bal.Data[0])<<8 | uint16(bal.Data[1]); got != 940 {
		t.Fatalf("final balance %d, want 940", got)
	}
	// Word-eager commits one frame per word: the PIN-budget restore plus
	// three two-word wallet updates = 7 frames.
	if len(res.CommitLog) != 7 {
		t.Fatalf("commit log %v, want 7 frames", res.CommitLog)
	}
	if res.TotalJ <= 0 || res.Cycles == 0 {
		t.Fatalf("session cost missing: %+v", res)
	}
}

func TestSessionTearRecoversCommittedPrefix(t *testing.T) {
	for _, plan := range []string{"tear-early", "tear-mid"} {
		for _, strat := range []string{"word-eager", "word-lazy", "page-eager", "page-lazy"} {
			res, err := RunSession(platform.Layer1, mustPlan(t, plan), mustStrategy(t, strat))
			if err != nil {
				t.Fatalf("%s/%s: %v", plan, strat, err)
			}
			if !res.Torn {
				t.Fatalf("%s/%s: session not torn", plan, strat)
			}
			if len(res.Responses) >= len(DefaultSession()) {
				t.Fatalf("%s/%s: torn session answered everything", plan, strat)
			}
			// RunSession verified every committed word internally; the
			// replay must account for what the log said was durable.
			if len(res.CommitLog) > 0 && res.Recovery.Frames == 0 {
				t.Fatalf("%s/%s: %d commits but replay found no frames", plan, strat, len(res.CommitLog))
			}
			if res.RecoveryJ <= 0 {
				t.Fatalf("%s/%s: recovery free: %+v", plan, strat, res.Recovery)
			}
			if res.TotalJ < res.SessionJ+res.RecoveryJ {
				t.Fatalf("%s/%s: totals inconsistent: %+v", plan, strat, res)
			}
		}
	}
}

func TestSessionUnjournaledTear(t *testing.T) {
	res, err := RunSession(platform.Layer1, mustPlan(t, "tear-early"), journal.Strategy{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn {
		t.Fatal("tear-early did not fire")
	}
	if len(res.Committed) != 0 || len(res.CommitLog) != 0 {
		t.Fatalf("unjournaled session committed: %+v", res.Committed)
	}
	if res.Recovery.Frames != 0 || res.RecoveryJ != 0 {
		t.Fatalf("unjournaled session replayed: %+v", res.Recovery)
	}
}

// The session-level determinism gate: same (plan, strategy, layer) →
// bit-identical cut cycle, commit log and energy figures.
func TestSessionDeterministic(t *testing.T) {
	run := func() SessionResult {
		res, err := RunSession(platform.Layer1, mustPlan(t, "tear-mid"), mustStrategy(t, "word-eager"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Torn != b.Torn || a.CutCycle != b.CutCycle || a.Cycles != b.Cycles {
		t.Fatalf("cut diverged: %+v vs %+v", a, b)
	}
	if math.Float64bits(a.SessionJ) != math.Float64bits(b.SessionJ) ||
		math.Float64bits(a.RecoveryJ) != math.Float64bits(b.RecoveryJ) ||
		math.Float64bits(a.TotalJ) != math.Float64bits(b.TotalJ) {
		t.Fatalf("energy diverged: %+v vs %+v", a, b)
	}
	if len(a.CommitLog) != len(b.CommitLog) {
		t.Fatalf("commit logs diverged: %v vs %v", a.CommitLog, b.CommitLog)
	}
	for i := range a.CommitLog {
		if a.CommitLog[i] != b.CommitLog[i] {
			t.Fatalf("commit logs diverged: %v vs %v", a.CommitLog, b.CommitLog)
		}
	}
}

// A torn session's committed prefix is a prefix of the never-torn
// run's commit log — the byte-compare verify.sh smokes.
func TestSessionCommittedPrefixOfCleanRun(t *testing.T) {
	strat := mustStrategy(t, "word-lazy")
	clean, err := RunSession(platform.Layer1, Plan{}, strat)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := RunSession(platform.Layer1, mustPlan(t, "tear-mid"), strat)
	if err != nil {
		t.Fatal(err)
	}
	if !torn.Torn {
		t.Fatal("tear-mid did not fire")
	}
	if len(torn.CommitLog) >= len(clean.CommitLog) {
		t.Fatalf("torn session committed everything: %v vs %v", torn.CommitLog, clean.CommitLog)
	}
	for i, seq := range torn.CommitLog {
		if clean.CommitLog[i] != seq {
			t.Fatalf("commit log not a prefix: %v vs %v", torn.CommitLog, clean.CommitLog)
		}
	}
	// And the surviving words agree with the clean run's values for the
	// same frames (the prefix property on data, not just sequence).
	for addr, v := range torn.Committed {
		region := apdu.DefaultJournalRegion(platform.EEPROMBase)
		if addr < region.DataBase || addr >= region.JournalBase {
			t.Fatalf("committed word outside the data window: %#x", addr)
		}
		_ = v
	}
}

// Cross-layer: the cut ordinal space makes the commit prefix identical
// on layers 1 and 2; cycle counts may differ.
func TestSessionCrossLayerCommitPrefix(t *testing.T) {
	strat := mustStrategy(t, "page-eager")
	plan := mustPlan(t, "tear-mid")
	l1, err := RunSession(platform.Layer1, plan, strat)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := RunSession(platform.Layer2, plan, strat)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Torn || !l2.Torn {
		t.Fatalf("both layers must tear: %v %v", l1.Torn, l2.Torn)
	}
	if len(l1.CommitLog) != len(l2.CommitLog) {
		t.Fatalf("commit prefixes differ across layers: %v vs %v", l1.CommitLog, l2.CommitLog)
	}
	if len(l1.Committed) != len(l2.Committed) {
		t.Fatalf("committed words differ across layers: %d vs %d", len(l1.Committed), len(l2.Committed))
	}
	for a, v := range l1.Committed {
		if l2.Committed[a] != v {
			t.Fatalf("committed %#x differs: %#x vs %#x", a, v, l2.Committed[a])
		}
	}
}
