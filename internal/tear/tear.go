// Package tear implements deterministic card-tear (power-loss)
// injection: the card is yanked from the terminal mid-run, the supply
// collapses, and the simulation cuts — possibly inside an EEPROM
// programming window, where the partial-write corruption model of
// internal/mem leaves the interrupted word indeterminate.
//
// Determinism and layer portability are the design constraints. A cut
// chosen by wall position ("cycle 12345") means different work on
// different simulation layers, because the layers time the same
// workload differently. The named plans therefore cut in NVM
// programming-op ordinal space: "during the Nth programming operation,
// K cycles into its window". The Nth program op is a property of the
// workload, not of the timing model, so the cut ordinal — and with it
// the corruption pattern, which internal/mem derives from (seed, addr,
// ordinal) only — is identical across layers and bit-identical between
// the reference and optimized bus paths. Cycle- and joule-budget cuts
// are also supported (Plan.CutCycle / Plan.BudgetJ) for the
// energy-envelope experiments; those watch the bit-exact meter total,
// so they too reproduce exactly on a given layer.
package tear

import (
	"fmt"
	"strings"

	"repro/internal/journal"
)

// ErrPowerLost re-exports the power-loss sentinel bus masters return
// once the monitor has latched. It is defined in internal/journal — the
// dependency root every persistence client already imports.
var ErrPowerLost = journal.ErrPowerLost

// Plan describes one deterministic power loss. The zero Plan (Empty)
// never fires. Exactly the trigger fields that are set arm the
// monitor; the first trigger to fire wins.
type Plan struct {
	Name string
	// CutProgram arms the ordinal trigger: cut during the CutProgram-th
	// (1-based) NVM programming operation, CutOffset cycles into its
	// self-timed window. This is the layer-portable trigger the named
	// plans use.
	CutProgram uint64
	CutOffset  uint64
	// CutCycle arms the cycle trigger: cut at this absolute cycle.
	CutCycle uint64
	// BudgetJ arms the joule trigger: cut once the meter total reaches
	// this budget (the WCET-style energy envelope).
	BudgetJ float64
	// Seed drives the partial-write corruption pattern.
	Seed uint64
}

// Empty reports whether the plan never fires.
func (p Plan) Empty() bool {
	return p.CutProgram == 0 && p.CutCycle == 0 && p.BudgetJ == 0
}

// Names is the plan vocabulary of the sweep's tear axis.
var Names = []string{"none", "tear-early", "tear-mid", "tear-late"}

// Named resolves a tear plan name ("" and "none" both mean no tear).
// The named plans cut during the 1st, 8th and 32nd NVM programming
// operation, landing early, mid and late in the programming window —
// three exposure points of the journaling strategies. Seeds are fixed:
// a named plan is one reproducible experiment, not a distribution.
func Named(name string) (Plan, bool) {
	switch name {
	case "", "none":
		return Plan{}, true
	case "tear-early":
		return Plan{Name: name, CutProgram: 1, CutOffset: 2, Seed: 0x7EA4_0001}, true
	case "tear-mid":
		return Plan{Name: name, CutProgram: 8, CutOffset: 5, Seed: 0x7EA4_0002}, true
	case "tear-late":
		return Plan{Name: name, CutProgram: 32, CutOffset: 9, Seed: 0x7EA4_0003}, true
	default:
		return Plan{}, false
	}
}

// ParseNames validates a comma-separated tear-plan list, mirroring
// fault.ParseNames: trims whitespace, drops empty elements, rejects an
// unknown name with the full vocabulary.
func ParseNames(csv string) ([]string, error) {
	var names []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := Named(name); !ok {
			return nil, fmt.Errorf("tear: unknown plan %q (valid plans: %s)",
				name, strings.Join(Names, ", "))
		}
		names = append(names, name)
	}
	return names, nil
}

// Monitor watches a running simulation and latches when the plan's
// first trigger fires. Masters call Check after every completed bus
// operation and at every bytecode boundary — observation points that
// are identical on the reference and optimized bus paths, so the cut
// lands on the same operation bit-for-bit.
type Monitor struct {
	plan     Plan
	cycle    func() uint64
	energy   func() float64
	programs func() uint64

	torn     bool
	cutCycle uint64
	cutOp    uint64
	cutJ     float64
}

// NewMonitor arms a monitor. cycle supplies the kernel clock; energy
// the bit-exact meter total (may be nil when no joule trigger is
// armed); programs the NVM device's completed-programming counter (may
// be nil when no ordinal trigger is armed).
func NewMonitor(plan Plan, cycle func() uint64, energy func() float64, programs func() uint64) *Monitor {
	return &Monitor{plan: plan, cycle: cycle, energy: energy, programs: programs}
}

// Check returns true once the supply is gone. The first call that
// observes a trigger condition latches the cut state; every later call
// keeps returning true.
func (m *Monitor) Check() bool {
	if m == nil {
		return false
	}
	if m.torn {
		return true
	}
	if m.plan.Empty() {
		return false
	}
	now := m.cycle()
	if m.plan.CutProgram != 0 && m.programs != nil {
		if ops := m.programs(); ops >= m.plan.CutProgram {
			m.latch(now+m.plan.CutOffset, ops)
			return true
		}
	}
	if m.plan.CutCycle != 0 && now >= m.plan.CutCycle {
		m.latch(now, 0)
		return true
	}
	if m.plan.BudgetJ != 0 && m.energy != nil && m.energy() >= m.plan.BudgetJ {
		m.latch(now, 0)
		return true
	}
	return false
}

func (m *Monitor) latch(cut uint64, op uint64) {
	m.torn = true
	m.cutCycle = cut
	m.cutOp = op
	if m.energy != nil {
		m.cutJ = m.energy()
	}
}

// Torn reports whether the monitor has latched.
func (m *Monitor) Torn() bool { return m != nil && m.torn }

// CutCycle returns the cycle the supply died at: for the ordinal
// trigger, CutOffset cycles into the interrupting operation's window —
// the cycle internal/mem's TearAt resolves the corruption against.
func (m *Monitor) CutCycle() uint64 { return m.cutCycle }

// CutProgram returns the ordinal of the programming operation the cut
// landed in (0 for cycle/joule triggers).
func (m *Monitor) CutProgram() uint64 { return m.cutOp }

// CutEnergyJ returns the meter total sampled at the latch.
func (m *Monitor) CutEnergyJ() float64 { return m.cutJ }

// Seed returns the plan's corruption seed.
func (m *Monitor) Seed() uint64 { return m.plan.Seed }
