package tear

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

func TestNamedVocabulary(t *testing.T) {
	for _, name := range Names {
		p, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) not ok", name)
		}
		if name == "none" && !p.Empty() {
			t.Fatal("none must be Empty")
		}
		if name != "none" {
			if p.Empty() {
				t.Fatalf("%q must not be Empty", name)
			}
			if p.CutProgram == 0 {
				t.Fatalf("named plan %q must use the layer-portable ordinal trigger", name)
			}
			if p.CutOffset >= 12 {
				t.Fatalf("%q offset %d exceeds the shortest NVM window (Flash, 12 cycles)", name, p.CutOffset)
			}
		}
	}
	if _, ok := Named("tear-never"); ok {
		t.Fatal("unknown plan resolved")
	}
}

func TestParseNames(t *testing.T) {
	got, err := ParseNames(" tear-early , ,tear-late ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "tear-early" || got[1] != "tear-late" {
		t.Fatalf("got %v", got)
	}
	_, err = ParseNames("tear-early,bogus")
	if err == nil || !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("want unknown-plan error, got %v", err)
	}
	for _, n := range Names {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("error does not list %q: %v", n, err)
		}
	}
}

// fault.TearNames is this package's vocabulary duplicated below the
// import cycle; the two must never drift.
func TestFaultVocabularyConsistent(t *testing.T) {
	want := map[string]bool{}
	for _, n := range Names {
		if n != "none" {
			want[n] = true
		}
	}
	if len(fault.TearNames) != len(want) {
		t.Fatalf("fault.TearNames = %v, tear.Names = %v", fault.TearNames, Names)
	}
	for _, n := range fault.TearNames {
		if !want[n] {
			t.Fatalf("fault.TearNames lists %q, unknown to tear.Named", n)
		}
		if _, ok := Named(n); !ok {
			t.Fatalf("fault.TearNames lists %q, not resolvable", n)
		}
	}
}

func TestMonitorOrdinalTrigger(t *testing.T) {
	var cycle, programs uint64
	m := NewMonitor(Plan{Name: "t", CutProgram: 2, CutOffset: 5, Seed: 1},
		func() uint64 { return cycle }, nil, func() uint64 { return programs })

	cycle, programs = 10, 1
	if m.Check() {
		t.Fatal("latched before the target ordinal")
	}
	cycle, programs = 40, 2
	if !m.Check() {
		t.Fatal("must latch on the target ordinal")
	}
	if !m.Torn() || m.CutCycle() != 45 || m.CutProgram() != 2 {
		t.Fatalf("cut at cycle %d op %d", m.CutCycle(), m.CutProgram())
	}
	// Latched state is sticky and frozen.
	cycle, programs = 100, 9
	if !m.Check() || m.CutCycle() != 45 || m.CutProgram() != 2 {
		t.Fatal("latch must be sticky")
	}
}

func TestMonitorCycleAndJouleTriggers(t *testing.T) {
	var cycle uint64
	m := NewMonitor(Plan{Name: "c", CutCycle: 50}, func() uint64 { return cycle }, nil, nil)
	cycle = 49
	if m.Check() {
		t.Fatal("early latch")
	}
	cycle = 50
	if !m.Check() || m.CutCycle() != 50 {
		t.Fatalf("cycle trigger: torn=%v cut=%d", m.Torn(), m.CutCycle())
	}

	var energy float64
	cycle = 0
	jm := NewMonitor(Plan{Name: "j", BudgetJ: 1e-9},
		func() uint64 { return cycle }, func() float64 { return energy }, nil)
	energy = 0.5e-9
	if jm.Check() {
		t.Fatal("latched under budget")
	}
	cycle, energy = 7, 2e-9
	if !jm.Check() {
		t.Fatal("must latch at the budget")
	}
	if jm.CutCycle() != 7 || jm.CutEnergyJ() != 2e-9 {
		t.Fatalf("cut=%d J=%g", jm.CutCycle(), jm.CutEnergyJ())
	}
}

func TestMonitorNilAndEmpty(t *testing.T) {
	var m *Monitor
	if m.Check() || m.Torn() {
		t.Fatal("nil monitor must never latch")
	}
	e := NewMonitor(Plan{}, func() uint64 { return 1 }, nil, nil)
	if e.Check() || e.Torn() {
		t.Fatal("empty plan must never latch")
	}
}
