package cpu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDisassembleKnown(t *testing.T) {
	cases := map[uint32]string{
		0:                           "nop",
		encR(fnAddu, 2, 4, 5, 0):    "addu $v0, $a0, $a1",
		encR(fnSll, 9, 0, 8, 2):     "sll $t1, $t0, 2",
		encR(fnJr, 0, 31, 0, 0):     "jr $ra",
		encR(fnBreak, 0, 0, 0, 0):   "break",
		encI(opLw, 8, 29, 8):        "lw $t0, 8($sp)",
		encI(opSw, 8, 29, 0xFFFC):   "sw $t0, -4($sp)",
		encI(opAddiu, 8, 8, 0xFFFF): "addiu $t0, $t0, -1",
		encI(opOri, 8, 0, 0xBEEF):   "ori $t0, $zero, 0xbeef",
		encI(opLui, 8, 0, 0x1234):   "lui $t0, 0x1234",
		encJ(opJ, 0x100):            "j 0x400",
		uint32(opSpecial2)<<26 | encR(fnMul, 2, 4, 5, 0): "mul $v0, $a0, $a1",
	}
	for w, want := range cases {
		if got := Disassemble(w); got != want {
			t.Errorf("Disassemble(%#x) = %q, want %q", w, got, want)
		}
	}
}

func TestDisassembleUnknownAsWord(t *testing.T) {
	for _, w := range []uint32{0xFC000000, encR(0x3F, 1, 2, 3, 0)} {
		if got := Disassemble(w); !strings.HasPrefix(got, ".word") {
			t.Errorf("Disassemble(%#x) = %q, want .word form", w, got)
		}
	}
}

// TestAssemblerDisassemblerRoundTrip: disassembling an encoded
// instruction and reassembling it yields the same word — for every
// non-branch instruction class (branch offsets render as raw numbers,
// which the assembler only accepts as labels).
func TestAssemblerDisassemblerRoundTrip(t *testing.T) {
	words := MustAssemble(0, `
		nop
		addu $t0, $t1, $t2
		subu $s0, $s1, $s2
		and  $a0, $a1, $a2
		or   $v0, $v1, $t8
		xor  $t9, $k0, $k1
		nor  $gp, $sp, $fp
		slt  $t0, $t1, $t2
		sltu $t3, $t4, $t5
		mul  $t6, $t7, $s3
		sll  $t0, $t1, 7
		srl  $t2, $t3, 31
		sra  $t4, $t5, 1
		sllv $t6, $t7, $s0
		srlv $s1, $s2, $s3
		srav $s4, $s5, $s6
		jr   $ra
		jalr $t0
		syscall
		break
		addiu $t0, $t1, -42
		slti  $t2, $t3, 100
		sltiu $t4, $t5, 200
		andi  $t6, $t7, 0xF0F
		ori   $s0, $s1, 0xABC
		xori  $s2, $s3, 0x123
		lui   $s4, 0x8000
		lb    $t0, -3($s0)
		lbu   $t1, 0($s1)
		lh    $t2, 2($s2)
		lhu   $t3, 4($s3)
		lw    $t4, 8($s4)
		sb    $t5, 1($s5)
		sh    $t6, 2($s6)
		sw    $t7, 12($s7)
	`)
	for _, w := range words {
		text := Disassemble(w)
		back, err := Assemble(0, text)
		if err != nil {
			t.Fatalf("reassembling %q: %v", text, err)
		}
		if len(back) != 1 || back[0] != w {
			t.Fatalf("round trip %q: %#x -> %#x", text, w, back)
		}
	}
}

// Property: disassembly of R-type arithmetic never panics and always
// produces text the assembler either accepts or marks as .word.
func TestDisassembleTotal(t *testing.T) {
	f := func(w uint32) bool {
		s := Disassemble(w)
		return s != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleAllFormat(t *testing.T) {
	out := DisassembleAll(0x100, []uint32{0, encR(fnJr, 0, 31, 0, 0)})
	if !strings.Contains(out, "00000100:") || !strings.Contains(out, "jr $ra") {
		t.Fatalf("listing:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Fatal("wrong line count")
	}
}
