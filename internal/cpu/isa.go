// Package cpu provides the processor-side substrate of the smart-card
// platform: a MIPS32-subset instruction-set simulator that generates EC
// bus traffic through the layer-independent core.Initiator interface, a
// small assembler for writing the test programs (the paper used assembly
// test programs to stimulate the bus interface unit), and a direct-mapped
// instruction cache whose line refills map to EC burst fetches.
package cpu

import "fmt"

// MIPS32 opcode fields (real encodings, so programs assemble to genuine
// MIPS32 machine words).
const (
	opSpecial  = 0x00
	opRegimm   = 0x01
	opJ        = 0x02
	opJal      = 0x03
	opBeq      = 0x04
	opBne      = 0x05
	opBlez     = 0x06
	opBgtz     = 0x07
	opAddiu    = 0x09
	opSlti     = 0x0A
	opSltiu    = 0x0B
	opAndi     = 0x0C
	opOri      = 0x0D
	opXori     = 0x0E
	opLui      = 0x0F
	opSpecial2 = 0x1C
	opLb       = 0x20
	opLh       = 0x21
	opLw       = 0x23
	opLbu      = 0x24
	opLhu      = 0x25
	opSb       = 0x28
	opSh       = 0x29
	opSw       = 0x2B
)

// SPECIAL function codes.
const (
	fnSll     = 0x00
	fnSrl     = 0x02
	fnSra     = 0x03
	fnSllv    = 0x04
	fnSrlv    = 0x06
	fnSrav    = 0x07
	fnJr      = 0x08
	fnJalr    = 0x09
	fnSyscall = 0x0C
	fnBreak   = 0x0D
	fnAddu    = 0x21
	fnSubu    = 0x23
	fnAnd     = 0x24
	fnOr      = 0x25
	fnXor     = 0x26
	fnNor     = 0x27
	fnSlt     = 0x2A
	fnSltu    = 0x2B
)

// SPECIAL2 function codes.
const fnMul = 0x02

// REGIMM rt codes.
const (
	rtBltz = 0x00
	rtBgez = 0x01
)

// Field extraction helpers.
func opcode(w uint32) uint32 { return w >> 26 }
func rs(w uint32) int        { return int(w >> 21 & 31) }
func rt(w uint32) int        { return int(w >> 16 & 31) }
func rd(w uint32) int        { return int(w >> 11 & 31) }
func shamt(w uint32) uint32  { return w >> 6 & 31 }
func funct(w uint32) uint32  { return w & 63 }
func imm16(w uint32) uint32  { return w & 0xFFFF }
func simm16(w uint32) int32  { return int32(int16(w & 0xFFFF)) }
func target(w uint32) uint32 { return w & 0x03FFFFFF }

// Instruction word builders (used by the assembler and tests).
func encR(fn uint32, rd, rs, rt int, sh uint32) uint32 {
	return uint32(rs)<<21 | uint32(rt)<<16 | uint32(rd)<<11 | sh<<6 | fn
}
func encI(op uint32, rt, rs int, imm uint32) uint32 {
	return op<<26 | uint32(rs)<<21 | uint32(rt)<<16 | imm&0xFFFF
}
func encJ(op uint32, tgt uint32) uint32 { return op<<26 | tgt&0x03FFFFFF }

// RegNames maps the conventional MIPS register names to numbers.
var RegNames = map[string]int{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25, "k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "s8": 30, "ra": 31,
}

// regName returns the conventional name of register r for diagnostics.
func regName(r int) string {
	names := [32]string{
		"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
		"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
		"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
		"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
	}
	if r < 0 || r > 31 {
		return fmt.Sprintf("$?%d", r)
	}
	return "$" + names[r]
}
