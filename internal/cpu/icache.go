package cpu

// ICache is a direct-mapped instruction cache with 4-word (16-byte)
// lines, matching the EC burst length so every refill is one burst fetch
// transaction — the structure of the paper's target core (MIPS 4Ksc
// instruction cache in front of the bus interface unit).
type ICache struct {
	lines  []icLine
	Hits   uint64
	Misses uint64
}

type icLine struct {
	valid bool
	tag   uint64
	words [4]uint32
}

// NewICache creates a direct-mapped cache with the given number of
// lines (rounded up to a power of two).
func NewICache(lines int) *ICache {
	n := 1
	for n < lines {
		n <<= 1
	}
	return &ICache{lines: make([]icLine, n)}
}

// index returns the line index and tag for an address.
func (c *ICache) index(addr uint64) (int, uint64) {
	line := addr >> 4
	return int(line % uint64(len(c.lines))), line / uint64(len(c.lines))
}

// Lookup returns the instruction word at addr on a hit.
func (c *ICache) Lookup(addr uint64) (uint32, bool) {
	i, tag := c.index(addr)
	l := &c.lines[i]
	if l.valid && l.tag == tag {
		c.Hits++
		return l.words[(addr>>2)&3], true
	}
	c.Misses++
	return 0, false
}

// Fill installs a refilled line (addr is the 16-byte-aligned line
// address, words the four fetched instruction words).
func (c *ICache) Fill(addr uint64, words []uint32) {
	i, tag := c.index(addr)
	l := &c.lines[i]
	l.valid = true
	l.tag = tag
	copy(l.words[:], words)
}

// Invalidate clears the whole cache (e.g. after self-modifying stores).
func (c *ICache) Invalidate() {
	for i := range c.lines {
		c.lines[i].valid = false
	}
}
