package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a MIPS32-subset assembly program into machine
// words. Supported syntax:
//
//	label:                     ; labels (own line or before an op)
//	op   $rd, $rs, $rt         ; three-register form
//	op   $rt, $rs, imm         ; immediate form (decimal, 0x hex, -n)
//	lw   $rt, off($rs)         ; loads/stores
//	beq  $rs, $rt, label       ; branches to labels
//	j    label                 ; jumps to labels
//	li   $rt, imm32            ; pseudo: lui+ori / addiu / ori
//	move $rd, $rs              ; pseudo: addu $rd, $rs, $zero
//	b    label                 ; pseudo: beq $zero, $zero, label
//	nop                        ; pseudo: sll $zero,$zero,0
//	.word value                ; literal data word
//
// Comments start with '#' or ';'. The base address is the load address
// of word 0 and is needed to resolve jump and branch targets.
//
// NOTE: branch delay slots are architectural — the word after every
// branch/jump executes before the target. The assembler does not insert
// anything; programs place a nop (or useful work) there themselves, as
// on real MIPS.
func Assemble(base uint64, src string) ([]uint32, error) {
	type fixup struct {
		word  int
		label string
		kind  byte // 'b' branch rel16, 'j' jump abs26
		line  int
	}
	var (
		words  []uint32
		labels = map[string]int{}
		fixes  []fixup
	)

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			// Leading labels, possibly several.
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,($") {
				break
			}
			name := strings.TrimSpace(line[:i])
			if name == "" {
				return nil, fmt.Errorf("line %d: empty label", ln+1)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(words)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mn, rest, _ := strings.Cut(line, " ")
		mn = strings.ToLower(strings.TrimSpace(mn))
		args := splitArgs(rest)

		emit := func(w uint32) { words = append(words, w) }
		fail := func(format string, a ...any) error {
			return fmt.Errorf("line %d (%s): %s", ln+1, mn, fmt.Sprintf(format, a...))
		}
		reg := func(s string) (int, error) {
			s = strings.TrimPrefix(strings.TrimSpace(s), "$")
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < 32 {
				return n, nil
			}
			if n, ok := RegNames[strings.ToLower(s)]; ok {
				return n, nil
			}
			return 0, fail("bad register %q", s)
		}
		imm := func(s string) (int64, error) {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
			if err != nil {
				return 0, fail("bad immediate %q", s)
			}
			return v, nil
		}
		need := func(n int) error {
			if len(args) != n {
				return fail("want %d operands, got %d", n, len(args))
			}
			return nil
		}

		switch mn {
		case "nop":
			emit(0)

		case "addu", "subu", "and", "or", "xor", "nor", "slt", "sltu":
			if err := need(3); err != nil {
				return nil, err
			}
			d, e1 := reg(args[0])
			s, e2 := reg(args[1])
			t, e3 := reg(args[2])
			if err := firstErr(e1, e2, e3); err != nil {
				return nil, err
			}
			fn := map[string]uint32{"addu": fnAddu, "subu": fnSubu, "and": fnAnd,
				"or": fnOr, "xor": fnXor, "nor": fnNor, "slt": fnSlt, "sltu": fnSltu}[mn]
			emit(encR(fn, d, s, t, 0))

		case "mul":
			if err := need(3); err != nil {
				return nil, err
			}
			d, e1 := reg(args[0])
			s, e2 := reg(args[1])
			t, e3 := reg(args[2])
			if err := firstErr(e1, e2, e3); err != nil {
				return nil, err
			}
			emit(uint32(opSpecial2)<<26 | encR(fnMul, d, s, t, 0))

		case "sll", "srl", "sra":
			if err := need(3); err != nil {
				return nil, err
			}
			d, e1 := reg(args[0])
			t, e2 := reg(args[1])
			sh, e3 := imm(args[2])
			if err := firstErr(e1, e2, e3); err != nil {
				return nil, err
			}
			fn := map[string]uint32{"sll": fnSll, "srl": fnSrl, "sra": fnSra}[mn]
			emit(encR(fn, d, 0, t, uint32(sh&31)))

		case "sllv", "srlv", "srav":
			if err := need(3); err != nil {
				return nil, err
			}
			d, e1 := reg(args[0])
			t, e2 := reg(args[1])
			s, e3 := reg(args[2])
			if err := firstErr(e1, e2, e3); err != nil {
				return nil, err
			}
			fn := map[string]uint32{"sllv": fnSllv, "srlv": fnSrlv, "srav": fnSrav}[mn]
			emit(encR(fn, d, s, t, 0))

		case "jr":
			if err := need(1); err != nil {
				return nil, err
			}
			s, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			emit(encR(fnJr, 0, s, 0, 0))

		case "jalr":
			if err := need(1); err != nil {
				return nil, err
			}
			s, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			emit(encR(fnJalr, 31, s, 0, 0))

		case "syscall":
			emit(encR(fnSyscall, 0, 0, 0, 0))
		case "break":
			emit(encR(fnBreak, 0, 0, 0, 0))

		case "addiu", "slti", "sltiu", "andi", "ori", "xori":
			if err := need(3); err != nil {
				return nil, err
			}
			t, e1 := reg(args[0])
			s, e2 := reg(args[1])
			v, e3 := imm(args[2])
			if err := firstErr(e1, e2, e3); err != nil {
				return nil, err
			}
			op := map[string]uint32{"addiu": opAddiu, "slti": opSlti, "sltiu": opSltiu,
				"andi": opAndi, "ori": opOri, "xori": opXori}[mn]
			emit(encI(op, t, s, uint32(v)))

		case "lui":
			if err := need(2); err != nil {
				return nil, err
			}
			t, e1 := reg(args[0])
			v, e2 := imm(args[1])
			if err := firstErr(e1, e2); err != nil {
				return nil, err
			}
			emit(encI(opLui, t, 0, uint32(v)))

		case "li": // pseudo
			if err := need(2); err != nil {
				return nil, err
			}
			t, e1 := reg(args[0])
			v, e2 := imm(args[1])
			if err := firstErr(e1, e2); err != nil {
				return nil, err
			}
			u := uint32(v)
			switch {
			case v >= -32768 && v < 32768:
				emit(encI(opAddiu, t, 0, u))
			case u&0xFFFF == 0:
				emit(encI(opLui, t, 0, u>>16))
			case u>>16 == 0:
				emit(encI(opOri, t, 0, u))
			default:
				emit(encI(opLui, t, 0, u>>16))
				emit(encI(opOri, t, t, u))
			}

		case "move": // pseudo
			if err := need(2); err != nil {
				return nil, err
			}
			d, e1 := reg(args[0])
			s, e2 := reg(args[1])
			if err := firstErr(e1, e2); err != nil {
				return nil, err
			}
			emit(encR(fnAddu, d, s, 0, 0))

		case "lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw":
			if err := need(2); err != nil {
				return nil, err
			}
			t, e1 := reg(args[0])
			off, base, e2 := parseMemOperand(args[1])
			if err := firstErr(e1, e2); err != nil {
				return nil, fail("%v", firstErr(e1, e2))
			}
			b, err := reg(base)
			if err != nil {
				return nil, err
			}
			op := map[string]uint32{"lb": opLb, "lh": opLh, "lw": opLw, "lbu": opLbu,
				"lhu": opLhu, "sb": opSb, "sh": opSh, "sw": opSw}[mn]
			emit(encI(op, t, b, uint32(off)))

		case "beq", "bne":
			if err := need(3); err != nil {
				return nil, err
			}
			s, e1 := reg(args[0])
			t, e2 := reg(args[1])
			if err := firstErr(e1, e2); err != nil {
				return nil, err
			}
			op := opBeq
			if mn == "bne" {
				op = opBne
			}
			fixes = append(fixes, fixup{len(words), args[2], 'b', ln + 1})
			emit(encI(uint32(op), t, s, 0))

		case "blez", "bgtz":
			if err := need(2); err != nil {
				return nil, err
			}
			s, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			op := opBlez
			if mn == "bgtz" {
				op = opBgtz
			}
			fixes = append(fixes, fixup{len(words), args[1], 'b', ln + 1})
			emit(encI(uint32(op), 0, s, 0))

		case "bltz", "bgez":
			if err := need(2); err != nil {
				return nil, err
			}
			s, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			code := rtBltz
			if mn == "bgez" {
				code = rtBgez
			}
			fixes = append(fixes, fixup{len(words), args[1], 'b', ln + 1})
			emit(encI(opRegimm, code, s, 0))

		case "b": // pseudo: unconditional branch
			if err := need(1); err != nil {
				return nil, err
			}
			fixes = append(fixes, fixup{len(words), args[0], 'b', ln + 1})
			emit(encI(opBeq, 0, 0, 0))

		case "j", "jal":
			if err := need(1); err != nil {
				return nil, err
			}
			op := uint32(opJ)
			if mn == "jal" {
				op = opJal
			}
			fixes = append(fixes, fixup{len(words), args[0], 'j', ln + 1})
			emit(encJ(op, 0))

		case ".word":
			if err := need(1); err != nil {
				return nil, err
			}
			v, err := imm(args[0])
			if err != nil {
				return nil, err
			}
			emit(uint32(v))

		case ".org":
			// Pad with zero words up to a byte offset from the base
			// (used to place interrupt handlers at fixed vectors).
			if err := need(1); err != nil {
				return nil, err
			}
			v, err := imm(args[0])
			if err != nil {
				return nil, err
			}
			if v%4 != 0 {
				return nil, fail("offset %#x not word aligned", v)
			}
			target := int(v / 4)
			if target < len(words) {
				return nil, fail("offset %#x already passed", v)
			}
			for len(words) < target {
				emit(0)
			}

		default:
			return nil, fail("unknown mnemonic")
		}
	}

	// Resolve label fixups.
	for _, f := range fixes {
		idx, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		switch f.kind {
		case 'b':
			// Branch offset is relative to the delay-slot word.
			off := idx - (f.word + 1)
			if off < -32768 || off > 32767 {
				return nil, fmt.Errorf("line %d: branch to %q out of range", f.line, f.label)
			}
			words[f.word] |= uint32(off) & 0xFFFF
		case 'j':
			abs := (base + uint64(4*idx)) >> 2
			words[f.word] |= uint32(abs) & 0x03FFFFFF
		}
	}
	return words, nil
}

// MustAssemble is Assemble that panics on error, for tests and examples.
func MustAssemble(base uint64, src string) []uint32 {
	w, err := Assemble(base, src)
	if err != nil {
		panic(err)
	}
	return w
}

// splitArgs splits an operand list on commas, trimming whitespace.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseMemOperand parses "off($reg)" (offset optional).
func parseMemOperand(s string) (int64, string, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	var off int64
	if offStr != "" {
		var err error
		off, err = strconv.ParseInt(offStr, 0, 32)
		if err != nil {
			return 0, "", fmt.Errorf("bad offset in %q", s)
		}
	}
	return off, s[open+1 : len(s)-1], nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
