package cpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/sim"
)

// state of the simple fetch/execute/memory engine.
type state int

const (
	stFetchWait state = iota // bus fetch in flight
	stReady                  // instruction latched, execute this cycle
	stMemWait                // data access in flight
	stHalted
)

// Config parameterizes a CPU instance.
type Config struct {
	PC     uint64 // reset program counter
	SP     uint32 // initial stack pointer ($sp)
	ICache bool   // enable the instruction cache
	Lines  int    // I-cache lines (direct mapped, 4-word lines); 0 = 64
}

// Stats counts architectural events.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Fetches      uint64 // bus fetch transactions (not cache hits)
	Branches     uint64
	Taken        uint64
}

// CPU is a MIPS32-subset instruction-set simulator driving an EC bus
// through the layer-independent Initiator interface. It executes at most
// one instruction per clock cycle: ALU throughput is one per cycle with
// fetches pipelined (or served by the I-cache); loads and stores occupy
// the extra cycles their bus transactions take.
//
// Execution fidelity: branch delay slots are architectural (the word
// after a branch/jump executes before the target); sub-word loads and
// stores use the EC merge patterns; misaligned accesses and bus errors
// fault the CPU (Fault reports the cause).
type CPU struct {
	bus core.Initiator

	regs [32]uint32
	pc   uint64 // address of the instruction to execute next
	npc  uint64 // address after that (branch targets land here)

	instr   uint32
	st      state
	fetchTr *ecbus.Transaction
	memTr   *ecbus.Transaction
	memOp   uint32 // opcode of the in-flight memory instruction
	memAddr uint64
	memReg  int

	icache *ICache
	ids    uint64
	fault  error
	stats  Stats

	// OnSyscall, when set, is invoked for the SYSCALL instruction with
	// the CPU so platform code can implement services ($v0 selects the
	// service by convention). A nil hook makes SYSCALL a no-op.
	OnSyscall func(c *CPU)

	// Interrupt delivery (wired by the platform to the interrupt
	// controller). Interrupts are taken at instruction boundaries
	// outside delay slots: the return address is saved in $k1, further
	// interrupts are masked until UnmaskIRQ (the controller's EOI), and
	// execution vectors to irqVector. Handlers return with `jr $k1`.
	irqCheck  func() bool
	irqVector uint64
	irqMasked bool
	irqTaken  uint64
}

// New creates a CPU bound to bus and registers it on the kernel's rising
// edge.
func New(k *sim.Kernel, bus core.Initiator, cfg Config) *CPU {
	c := &CPU{bus: bus, pc: cfg.PC, npc: cfg.PC + 4}
	c.regs[29] = cfg.SP
	if cfg.ICache {
		lines := cfg.Lines
		if lines <= 0 {
			lines = 64
		}
		c.icache = NewICache(lines)
	}
	k.At(sim.Rising, "cpu", c.tick)
	c.startFetch()
	return c
}

// Reg returns register r.
func (c *CPU) Reg(r int) uint32 { return c.regs[r] }

// SetReg writes register r ($zero writes are discarded).
func (c *CPU) SetReg(r int, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// PC returns the address of the next instruction to execute.
func (c *CPU) PC() uint64 { return c.pc }

// Halted reports whether the CPU stopped (BREAK, Halt or fault).
func (c *CPU) Halted() bool { return c.st == stHalted }

// Halt stops the CPU cleanly (no fault recorded); used by SYSCALL hooks
// implementing an exit service.
func (c *CPU) Halt() { c.st = stHalted }

// Fault returns the fault that halted the CPU, or nil for a clean BREAK.
func (c *CPU) Fault() error { return c.fault }

// Stats returns a copy of the event counters.
func (c *CPU) Stats() Stats { return c.stats }

// ICacheStats returns hits and misses (zero when the cache is disabled).
func (c *CPU) ICacheStats() (hits, misses uint64) {
	if c.icache == nil {
		return 0, 0
	}
	return c.icache.Hits, c.icache.Misses
}

func (c *CPU) halt(err error) {
	c.st = stHalted
	if c.fault == nil {
		c.fault = err
	}
}

func (c *CPU) nextID() uint64 {
	c.ids++
	return c.ids
}

// EnableIRQ wires interrupt delivery: check is sampled at instruction
// boundaries; when it returns true (and interrupts are unmasked) the CPU
// vectors to vector with the return address in $k1.
func (c *CPU) EnableIRQ(check func() bool, vector uint64) {
	c.irqCheck = check
	c.irqVector = vector
}

// UnmaskIRQ re-enables interrupt delivery; platforms call it from the
// interrupt controller's end-of-interrupt (acknowledge) path.
func (c *CPU) UnmaskIRQ() { c.irqMasked = false }

// IRQsTaken returns the number of interrupts delivered.
func (c *CPU) IRQsTaken() uint64 { return c.irqTaken }

// takeIRQ delivers a pending interrupt at an instruction boundary if
// allowed; reports whether one was taken. Delivery is suppressed inside
// delay slots (npc not sequential), exactly like MIPS hardware defers
// interrupts on branch shadows.
func (c *CPU) takeIRQ() bool {
	if c.irqCheck == nil || c.irqMasked || !c.irqCheck() {
		return false
	}
	if c.npc != c.pc+4 {
		return false // in a branch shadow; deliver after the slot
	}
	c.irqMasked = true
	c.irqTaken++
	c.SetReg(27, uint32(c.pc)) // $k1 = return address
	c.pc = c.irqVector
	c.npc = c.irqVector + 4
	c.startFetch()
	return true
}

func (c *CPU) tick(uint64) {
	switch c.st {
	case stHalted:
		return
	case stMemWait:
		bs := c.bus.Access(c.memTr)
		if !bs.Done() {
			return
		}
		if bs == ecbus.StateError {
			c.halt(fmt.Errorf("cpu: bus error on %v at %#x (pc %#x)", c.memTr.Kind, c.memTr.Addr, c.pc))
			return
		}
		c.finishLoad()
		if c.takeIRQ() {
			return
		}
		c.startFetch()
	case stFetchWait:
		bs := c.bus.Access(c.fetchTr)
		if bs == ecbus.StateWait || bs == ecbus.StateRequest {
			return
		}
		if bs == ecbus.StateError {
			c.halt(fmt.Errorf("cpu: instruction bus error at %#x", c.fetchTr.Addr))
			return
		}
		c.captureFetch()
		if c.takeIRQ() {
			return // latched instruction discarded; refetched on return
		}
		c.execute()
	case stReady:
		if c.takeIRQ() {
			return
		}
		c.execute()
	}
}

// startFetch obtains the next instruction: from the I-cache (hit ->
// execute next cycle) or via a bus fetch (single word, or a burst line
// refill when the cache is enabled).
func (c *CPU) startFetch() {
	if c.pc%4 != 0 {
		c.halt(fmt.Errorf("cpu: misaligned pc %#x", c.pc))
		return
	}
	if c.icache != nil {
		if w, ok := c.icache.Lookup(c.pc); ok {
			c.instr = w
			c.st = stReady
			return
		}
		line := c.pc &^ 15
		tr, err := ecbus.NewBurst(c.nextID(), ecbus.Fetch, line, nil)
		if err != nil {
			c.halt(err)
			return
		}
		c.fetchTr = tr
	} else {
		tr, err := ecbus.NewSingle(c.nextID(), ecbus.Fetch, c.pc, ecbus.W32, 0)
		if err != nil {
			c.halt(err)
			return
		}
		c.fetchTr = tr
	}
	c.stats.Fetches++
	c.st = stFetchWait
	if bs := c.bus.Access(c.fetchTr); bs == ecbus.StateError {
		c.halt(fmt.Errorf("cpu: instruction bus error at %#x", c.fetchTr.Addr))
	}
}

// captureFetch latches the fetched word (and fills the cache line).
func (c *CPU) captureFetch() {
	if c.icache != nil {
		c.icache.Fill(c.fetchTr.Addr, c.fetchTr.Data)
		c.instr = c.fetchTr.Data[(c.pc>>2)&3]
	} else {
		c.instr = c.fetchTr.Data[0]
	}
	c.fetchTr = nil
}

// advance moves the PC past the executed instruction; branches replace
// the post-delay-slot target.
func (c *CPU) advance(branchTarget uint64, taken bool) {
	c.pc = c.npc
	if taken {
		c.npc = branchTarget
	} else {
		c.npc = c.pc + 4
	}
}

// execute runs exactly one instruction.
func (c *CPU) execute() {
	w := c.instr
	c.stats.Instructions++
	r := &c.regs

	branch := false
	var target uint64

	switch opcode(w) {
	case opSpecial:
		switch funct(w) {
		case fnSll:
			c.SetReg(rd(w), r[rt(w)]<<shamt(w))
		case fnSrl:
			c.SetReg(rd(w), r[rt(w)]>>shamt(w))
		case fnSra:
			c.SetReg(rd(w), uint32(int32(r[rt(w)])>>shamt(w)))
		case fnSllv:
			c.SetReg(rd(w), r[rt(w)]<<(r[rs(w)]&31))
		case fnSrlv:
			c.SetReg(rd(w), r[rt(w)]>>(r[rs(w)]&31))
		case fnSrav:
			c.SetReg(rd(w), uint32(int32(r[rt(w)])>>(r[rs(w)]&31)))
		case fnJr:
			branch, target = true, uint64(r[rs(w)])
			c.stats.Branches++
			c.stats.Taken++
		case fnJalr:
			c.SetReg(rd(w), uint32(c.npc+4))
			branch, target = true, uint64(r[rs(w)])
			c.stats.Branches++
			c.stats.Taken++
		case fnSyscall:
			if c.OnSyscall != nil {
				c.OnSyscall(c)
				if c.st == stHalted {
					return
				}
			}
		case fnBreak:
			c.st = stHalted
			return
		case fnAddu:
			c.SetReg(rd(w), r[rs(w)]+r[rt(w)])
		case fnSubu:
			c.SetReg(rd(w), r[rs(w)]-r[rt(w)])
		case fnAnd:
			c.SetReg(rd(w), r[rs(w)]&r[rt(w)])
		case fnOr:
			c.SetReg(rd(w), r[rs(w)]|r[rt(w)])
		case fnXor:
			c.SetReg(rd(w), r[rs(w)]^r[rt(w)])
		case fnNor:
			c.SetReg(rd(w), ^(r[rs(w)] | r[rt(w)]))
		case fnSlt:
			c.SetReg(rd(w), b2u(int32(r[rs(w)]) < int32(r[rt(w)])))
		case fnSltu:
			c.SetReg(rd(w), b2u(r[rs(w)] < r[rt(w)]))
		default:
			c.halt(fmt.Errorf("cpu: reserved SPECIAL funct %#x at %#x", funct(w), c.pc))
			return
		}
	case opSpecial2:
		if funct(w) == fnMul {
			c.SetReg(rd(w), uint32(int32(r[rs(w)])*int32(r[rt(w)])))
		} else {
			c.halt(fmt.Errorf("cpu: reserved SPECIAL2 funct %#x at %#x", funct(w), c.pc))
			return
		}
	case opRegimm:
		c.stats.Branches++
		cond := false
		switch rt(w) {
		case rtBltz:
			cond = int32(r[rs(w)]) < 0
		case rtBgez:
			cond = int32(r[rs(w)]) >= 0
		default:
			c.halt(fmt.Errorf("cpu: reserved REGIMM %#x at %#x", rt(w), c.pc))
			return
		}
		if cond {
			branch, target = true, branchTarget(c.npc, w)
			c.stats.Taken++
		}
	case opJ:
		branch, target = true, jumpTarget(c.npc, w)
		c.stats.Branches++
		c.stats.Taken++
	case opJal:
		c.SetReg(31, uint32(c.npc+4))
		branch, target = true, jumpTarget(c.npc, w)
		c.stats.Branches++
		c.stats.Taken++
	case opBeq, opBne, opBlez, opBgtz:
		c.stats.Branches++
		var cond bool
		switch opcode(w) {
		case opBeq:
			cond = r[rs(w)] == r[rt(w)]
		case opBne:
			cond = r[rs(w)] != r[rt(w)]
		case opBlez:
			cond = int32(r[rs(w)]) <= 0
		case opBgtz:
			cond = int32(r[rs(w)]) > 0
		}
		if cond {
			branch, target = true, branchTarget(c.npc, w)
			c.stats.Taken++
		}
	case opAddiu:
		c.SetReg(rt(w), r[rs(w)]+uint32(simm16(w)))
	case opSlti:
		c.SetReg(rt(w), b2u(int32(r[rs(w)]) < simm16(w)))
	case opSltiu:
		c.SetReg(rt(w), b2u(r[rs(w)] < uint32(simm16(w))))
	case opAndi:
		c.SetReg(rt(w), r[rs(w)]&imm16(w))
	case opOri:
		c.SetReg(rt(w), r[rs(w)]|imm16(w))
	case opXori:
		c.SetReg(rt(w), r[rs(w)]^imm16(w))
	case opLui:
		c.SetReg(rt(w), imm16(w)<<16)
	case opLb, opLbu, opLh, opLhu, opLw, opSb, opSh, opSw:
		if !c.issueMem(w) {
			return
		}
		c.advance(0, false)
		return
	default:
		c.halt(fmt.Errorf("cpu: reserved opcode %#x at %#x", opcode(w), c.pc))
		return
	}

	c.advance(target, branch)
	c.startFetch()
}

// issueMem builds and issues the data transaction of a load/store.
func (c *CPU) issueMem(w uint32) bool {
	addr := uint64(c.regs[rs(w)] + uint32(simm16(w)))
	var width ecbus.Width
	switch opcode(w) {
	case opLb, opLbu, opSb:
		width = ecbus.W8
	case opLh, opLhu, opSh:
		width = ecbus.W16
	default:
		width = ecbus.W32
	}
	kind := ecbus.Read
	var data uint32
	if opcode(w) == opSb || opcode(w) == opSh || opcode(w) == opSw {
		kind = ecbus.Write
		data = c.regs[rt(w)] << (8 * (addr & 3)) // place on byte lanes
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}
	tr, err := ecbus.NewSingle(c.nextID(), kind, addr, width, data)
	if err != nil {
		c.halt(fmt.Errorf("cpu: %v (pc %#x)", err, c.pc))
		return false
	}
	c.memTr, c.memOp, c.memAddr, c.memReg = tr, opcode(w), addr, rt(w)
	c.st = stMemWait
	if bs := c.bus.Access(tr); bs == ecbus.StateError {
		c.halt(fmt.Errorf("cpu: bus error on %v at %#x (pc %#x)", kind, addr, c.pc))
		return false
	}
	return true
}

// finishLoad extracts the addressed lanes of a completed load.
func (c *CPU) finishLoad() {
	word := c.memTr.Data[0]
	lane := c.memAddr & 3
	switch c.memOp {
	case opLb:
		c.SetReg(c.memReg, uint32(int32(int8(word>>(8*lane)))))
	case opLbu:
		c.SetReg(c.memReg, word>>(8*lane)&0xFF)
	case opLh:
		c.SetReg(c.memReg, uint32(int32(int16(word>>(8*lane)))))
	case opLhu:
		c.SetReg(c.memReg, word>>(8*lane)&0xFFFF)
	case opLw:
		c.SetReg(c.memReg, word)
	}
	c.memTr = nil
}

func branchTarget(npc uint64, w uint32) uint64 {
	return npc + uint64(int64(simm16(w))<<2)
}

func jumpTarget(npc uint64, w uint32) uint64 {
	return npc&^0x0FFFFFFF | uint64(target(w))<<2
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
