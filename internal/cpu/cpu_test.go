package cpu

import (
	"testing"

	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// system wires a ROM at 0x0000 (code), RAM at 0x10000 (data) behind a
// layer-1 bus and runs the program to completion.
func runProgram(t *testing.T, src string, cfg Config) *CPU {
	t.Helper()
	k := sim.New(0)
	rom := mem.NewROM("rom", 0, 0x4000, 0, 0)
	ram := mem.NewRAM("ram", 0x10000, 0x4000, 0, 0)
	if err := rom.LoadWords(0, MustAssemble(0, src)); err != nil {
		t.Fatal(err)
	}
	bus := tlm1.New(k, ecbus.MustMap(rom, ram))
	cfg.SP = 0x13FF0
	c := New(k, bus, cfg)
	k.RunUntil(200000, c.Halted)
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	if err := c.Fault(); err != nil {
		t.Fatalf("fault: %v", err)
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := runProgram(t, `
		li   $t0, 40
		li   $t1, 2
		addu $t2, $t0, $t1
		subu $t3, $t0, $t1
		and  $t4, $t0, $t1
		or   $t5, $t0, $t1
		xor  $t6, $t0, $t1
		nor  $t7, $t0, $t1
		mul  $s0, $t0, $t1
		break
	`, Config{})
	checks := map[int]uint32{
		8: 40, 9: 2, 10: 42, 11: 38, 12: 0, 13: 42, 14: 42,
		15: ^uint32(42), 16: 80,
	}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("%s = %d, want %d", regName(r), got, want)
		}
	}
}

func TestShiftsAndCompares(t *testing.T) {
	c := runProgram(t, `
		li   $t0, -8
		sll  $t1, $t0, 2
		srl  $t2, $t0, 2
		sra  $t3, $t0, 2
		li   $t4, 3
		sllv $t5, $t0, $t4
		slt  $t6, $t0, $zero
		sltu $t7, $t0, $zero
		slti $s0, $t0, -4
		sltiu $s1, $t0, 0xFFFF
		break
	`, Config{})
	if got := c.Reg(9); got != 0xFFFFFFE0 {
		t.Errorf("sll = %#x", got)
	}
	if got := c.Reg(10); got != uint32(0xFFFFFFF8)>>2 {
		t.Errorf("srl = %#x", got)
	}
	if got := c.Reg(11); got != 0xFFFFFFFE {
		t.Errorf("sra = %#x", got)
	}
	if got := c.Reg(13); got != 0xFFFFFFC0 {
		t.Errorf("sllv = %#x", got)
	}
	if c.Reg(14) != 1 || c.Reg(15) != 0 {
		t.Errorf("slt/sltu = %d/%d, want 1/0", c.Reg(14), c.Reg(15))
	}
	if c.Reg(16) != 1 {
		t.Errorf("slti = %d, want 1 (-8 < -4)", c.Reg(16))
	}
	if c.Reg(17) != 1 {
		// sltiu sign-extends the immediate then compares unsigned:
		// 0xFFFFFFF8 < 0xFFFFFFFF.
		t.Errorf("sltiu = %d, want 1", c.Reg(17))
	}
}

func TestLoadStoreLanes(t *testing.T) {
	c := runProgram(t, `
		lui  $s0, 1          # $s0 = 0x10000 (RAM)
		li   $t0, 0x12345678
		sw   $t0, 0($s0)
		lb   $t1, 0($s0)     # 0x78
		lb   $t2, 3($s0)     # 0x12
		lbu  $t3, 1($s0)     # 0x56
		lh   $t4, 0($s0)     # 0x5678
		lhu  $t5, 2($s0)     # 0x1234
		li   $t6, 0xAB
		sb   $t6, 1($s0)
		lw   $t7, 0($s0)     # 0x1234AB78
		li   $t6, 0xCDEF
		sh   $t6, 2($s0)
		lw   $s1, 0($s0)     # 0xCDEFAB78
		break
	`, Config{})
	cases := map[int]uint32{
		9:  0x78,
		10: 0x12,
		11: 0x56,
		12: 0x5678,
		13: 0x1234,
		15: 0x1234AB78,
		17: 0xCDEFAB78,
	}
	for r, want := range cases {
		if got := c.Reg(r); got != want {
			t.Errorf("%s = %#x, want %#x", regName(r), got, want)
		}
	}
}

func TestSignExtensionOnLoads(t *testing.T) {
	c := runProgram(t, `
		lui $s0, 1
		li  $t0, 0x80FF
		sh  $t0, 0($s0)
		lb  $t1, 0($s0)    # sign-extended 0xFF -> -1
		lh  $t2, 0($s0)    # sign-extended 0x80FF
		break
	`, Config{})
	if got := c.Reg(9); got != 0xFFFFFFFF {
		t.Errorf("lb = %#x, want 0xFFFFFFFF", got)
	}
	if got := c.Reg(10); got != 0xFFFF80FF {
		t.Errorf("lh = %#x, want 0xFFFF80FF", got)
	}
}

func TestBranchDelaySlotExecutes(t *testing.T) {
	c := runProgram(t, `
		li   $t0, 0
		b    skip
		addiu $t0, $t0, 1   # delay slot: must execute
		addiu $t0, $t0, 100 # skipped
	skip:
		break
	`, Config{})
	if got := c.Reg(8); got != 1 {
		t.Errorf("$t0 = %d, want 1 (delay slot only)", got)
	}
}

func TestJalAndJrReturn(t *testing.T) {
	c := runProgram(t, `
		li   $t0, 0
		jal  sub
		nop
		addiu $t0, $t0, 100
		break
	sub:
		addiu $t0, $t0, 5
		jr   $ra
		nop
	`, Config{})
	if got := c.Reg(8); got != 105 {
		t.Errorf("$t0 = %d, want 105", got)
	}
}

func TestFibonacciLoop(t *testing.T) {
	c := runProgram(t, `
		li   $t0, 10      # n
		li   $t1, 0       # a
		li   $t2, 1       # b
	loop:
		blez $t0, done
		nop
		addu $t3, $t1, $t2
		move $t1, $t2
		move $t2, $t3
		addiu $t0, $t0, -1
		b    loop
		nop
	done:
		break
	`, Config{})
	if got := c.Reg(9); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestMemcpyByteLoop(t *testing.T) {
	c := runProgram(t, `
		lui  $s0, 1          # src = 0x10000
		lui  $s1, 1
		ori  $s1, $s1, 0x100 # dst = 0x10100
		li   $t0, 0x11223344
		sw   $t0, 0($s0)
		li   $t0, 0x55667788
		sw   $t0, 4($s0)
		li   $t1, 8          # count
	copy:
		blez $t1, done
		nop
		lbu  $t2, 0($s0)
		sb   $t2, 0($s1)
		addiu $s0, $s0, 1
		addiu $s1, $s1, 1
		addiu $t1, $t1, -1
		b    copy
		nop
	done:
		lui  $s2, 1
		ori  $s2, $s2, 0x100
		lw   $v0, 0($s2)
		lw   $v1, 4($s2)
		break
	`, Config{})
	if c.Reg(2) != 0x11223344 || c.Reg(3) != 0x55667788 {
		t.Errorf("memcpy result = %#x/%#x", c.Reg(2), c.Reg(3))
	}
	st := c.Stats()
	if st.Loads < 8 || st.Stores < 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestICacheReducesFetchTraffic(t *testing.T) {
	prog := `
		li   $t0, 200
	loop:
		addiu $t0, $t0, -1
		bgtz $t0, loop
		nop
		break
	`
	cold := runProgram(t, prog, Config{})
	warm := runProgram(t, prog, Config{ICache: true})
	if warm.Stats().Fetches >= cold.Stats().Fetches/10 {
		t.Errorf("icache fetches %d vs uncached %d: not reduced enough",
			warm.Stats().Fetches, cold.Stats().Fetches)
	}
	hits, misses := warm.ICacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("icache stats hits=%d misses=%d", hits, misses)
	}
	if cold.Reg(8) != 0 || warm.Reg(8) != 0 {
		t.Error("loop did not run to zero")
	}
}

func TestSyscallHook(t *testing.T) {
	k := sim.New(0)
	rom := mem.NewROM("rom", 0, 0x1000, 0, 0)
	rom.LoadWords(0, MustAssemble(0, `
		li $v0, 7
		syscall
		li $v0, 1
		break
	`))
	bus := tlm1.New(k, ecbus.MustMap(rom))
	c := New(k, bus, Config{})
	var seen uint32
	c.OnSyscall = func(c *CPU) { seen = c.Reg(2); c.Halt() }
	k.RunUntil(1000, c.Halted)
	if seen != 7 {
		t.Fatalf("syscall saw $v0=%d, want 7", seen)
	}
	if c.Reg(2) != 7 {
		t.Fatal("execution continued past halting syscall")
	}
}

func TestFaultOnDecodeHole(t *testing.T) {
	k := sim.New(0)
	rom := mem.NewROM("rom", 0, 0x1000, 0, 0)
	rom.LoadWords(0, MustAssemble(0, `
		lui $t0, 0x00F0
		lw  $t1, 0($t0)   # decode hole
		break
	`))
	bus := tlm1.New(k, ecbus.MustMap(rom))
	c := New(k, bus, Config{})
	k.RunUntil(1000, c.Halted)
	if c.Fault() == nil {
		t.Fatal("no fault on decode hole")
	}
}

func TestFaultOnMisalignedLoad(t *testing.T) {
	k := sim.New(0)
	rom := mem.NewROM("rom", 0, 0x1000, 0, 0)
	ram := mem.NewRAM("ram", 0x10000, 0x100, 0, 0)
	rom.LoadWords(0, MustAssemble(0, `
		lui $s0, 1
		lw  $t0, 2($s0)
		break
	`))
	bus := tlm1.New(k, ecbus.MustMap(rom, ram))
	c := New(k, bus, Config{})
	k.RunUntil(1000, c.Halted)
	if c.Fault() == nil {
		t.Fatal("no fault on misaligned load")
	}
}

// TestSameResultAcrossLayers runs an identical program on all three bus
// layers: architectural results must match everywhere; layer-1 cycles
// must equal layer-0 cycles; layer-2 may be slightly slower, never
// faster.
func TestSameResultAcrossLayers(t *testing.T) {
	prog := `
		lui  $s0, 1
		li   $t0, 25
		li   $s1, 0
	loop:
		blez $t0, done
		nop
		sw   $t0, 0($s0)
		lw   $t1, 0($s0)
		addu $s1, $s1, $t1
		addiu $t0, $t0, -1
		b    loop
		nop
	done:
		break
	`
	type result struct {
		sum    uint32
		cycles uint64
	}
	run := func(layer string) result {
		k := sim.New(0)
		rom := mem.NewROM("rom", 0, 0x4000, 0, 1)
		ram := mem.NewRAM("ram", 0x10000, 0x1000, 0, 0)
		rom.LoadWords(0, MustAssemble(0, prog))
		m := ecbus.MustMap(rom, ram)
		var bus interface {
			Access(*ecbus.Transaction) ecbus.BusState
		}
		switch layer {
		case "rtl":
			bus = rtlbus.New(k, m)
		case "tlm1":
			bus = tlm1.New(k, m)
		default:
			bus = tlm2.New(k, m)
		}
		c := New(k, bus, Config{ICache: true})
		n, _ := k.RunUntil(1_000_000, c.Halted)
		if !c.Halted() || c.Fault() != nil {
			t.Fatalf("%s: did not halt cleanly: %v", layer, c.Fault())
		}
		return result{sum: c.Reg(17), cycles: n}
	}
	rtl := run("rtl")
	tl1 := run("tlm1")
	tl2 := run("tlm2")
	want := uint32(25 * 26 / 2)
	for name, r := range map[string]result{"rtl": rtl, "tlm1": tl1, "tlm2": tl2} {
		if r.sum != want {
			t.Errorf("%s: sum = %d, want %d", name, r.sum, want)
		}
	}
	if tl1.cycles != rtl.cycles {
		t.Errorf("tlm1 cycles %d != rtl cycles %d", tl1.cycles, rtl.cycles)
	}
	if tl2.cycles < rtl.cycles {
		t.Errorf("tlm2 cycles %d < rtl cycles %d", tl2.cycles, rtl.cycles)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate $t0, $t1",
		"addu $t0, $t1",
		"lw $t0, 4[$t1]",
		"beq $t0, $t1, nowhere\nnop",
		"addu $t9, $t1, $nosuch",
		"dup: nop\ndup: nop",
		"li $t0, zzz",
	}
	for _, src := range bad {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestAssemblerEncodings(t *testing.T) {
	w := MustAssemble(0, "addu $v0, $a0, $a1")
	if w[0] != encR(fnAddu, 2, 4, 5, 0) {
		t.Errorf("addu encoding %#x", w[0])
	}
	w = MustAssemble(0, "lw $t0, 8($sp)")
	if w[0] != encI(opLw, 8, 29, 8) {
		t.Errorf("lw encoding %#x", w[0])
	}
	w = MustAssemble(0x400, "target: nop\n j target\n nop")
	if w[1] != encJ(opJ, 0x400>>2) {
		t.Errorf("j encoding %#x", w[1])
	}
	// li with a full 32-bit constant expands to lui+ori.
	w = MustAssemble(0, "li $t0, 0x12345678")
	if len(w) != 2 || w[0] != encI(opLui, 8, 0, 0x1234) || w[1] != encI(opOri, 8, 8, 0x5678) {
		t.Errorf("li expansion %#x", w)
	}
	// numeric registers accepted.
	w = MustAssemble(0, "addu $2, $4, $5")
	if w[0] != encR(fnAddu, 2, 4, 5, 0) {
		t.Errorf("numeric register encoding %#x", w[0])
	}
}

func TestICacheUnit(t *testing.T) {
	ic := NewICache(3) // rounds to 4
	if _, ok := ic.Lookup(0x100); ok {
		t.Fatal("hit in empty cache")
	}
	ic.Fill(0x100, []uint32{1, 2, 3, 4})
	for i, want := range []uint32{1, 2, 3, 4} {
		got, ok := ic.Lookup(0x100 + uint64(4*i))
		if !ok || got != want {
			t.Fatalf("word %d = %d ok=%v", i, got, ok)
		}
	}
	// Conflicting line (same index, different tag) evicts.
	conflict := uint64(0x100 + 16*4)
	ic.Fill(conflict, []uint32{9, 9, 9, 9})
	if _, ok := ic.Lookup(0x100); ok {
		t.Fatal("stale line survived eviction")
	}
	ic.Invalidate()
	if _, ok := ic.Lookup(conflict); ok {
		t.Fatal("hit after invalidate")
	}
}
