package cpu

import (
	"fmt"
	"strings"
)

// Disassemble renders one instruction word as assembly text accepted by
// Assemble (modulo label names: branch and jump targets are rendered as
// absolute addresses in comments and raw offsets inline). It exists for
// diagnostics and for round-trip testing of the assembler.
func Disassemble(w uint32) string {
	switch opcode(w) {
	case opSpecial:
		return disasmSpecial(w)
	case opSpecial2:
		if funct(w) == fnMul {
			return fmt.Sprintf("mul %s, %s, %s", regName(rd(w)), regName(rs(w)), regName(rt(w)))
		}
		return fmt.Sprintf(".word %#x", w)
	case opRegimm:
		mn := "bltz"
		if rt(w) == rtBgez {
			mn = "bgez"
		} else if rt(w) != rtBltz {
			return fmt.Sprintf(".word %#x", w)
		}
		return fmt.Sprintf("%s %s, %+d", mn, regName(rs(w)), int(simm16(w)))
	case opJ:
		return fmt.Sprintf("j %#x", uint64(target(w))<<2)
	case opJal:
		return fmt.Sprintf("jal %#x", uint64(target(w))<<2)
	case opBeq, opBne:
		mn := "beq"
		if opcode(w) == opBne {
			mn = "bne"
		}
		return fmt.Sprintf("%s %s, %s, %+d", mn, regName(rs(w)), regName(rt(w)), int(simm16(w)))
	case opBlez, opBgtz:
		mn := "blez"
		if opcode(w) == opBgtz {
			mn = "bgtz"
		}
		return fmt.Sprintf("%s %s, %+d", mn, regName(rs(w)), int(simm16(w)))
	case opAddiu, opSlti, opSltiu:
		mn := map[uint32]string{opAddiu: "addiu", opSlti: "slti", opSltiu: "sltiu"}[opcode(w)]
		return fmt.Sprintf("%s %s, %s, %d", mn, regName(rt(w)), regName(rs(w)), int(simm16(w)))
	case opAndi, opOri, opXori:
		mn := map[uint32]string{opAndi: "andi", opOri: "ori", opXori: "xori"}[opcode(w)]
		return fmt.Sprintf("%s %s, %s, %#x", mn, regName(rt(w)), regName(rs(w)), imm16(w))
	case opLui:
		return fmt.Sprintf("lui %s, %#x", regName(rt(w)), imm16(w))
	case opLb, opLh, opLw, opLbu, opLhu, opSb, opSh, opSw:
		mn := map[uint32]string{
			opLb: "lb", opLh: "lh", opLw: "lw", opLbu: "lbu", opLhu: "lhu",
			opSb: "sb", opSh: "sh", opSw: "sw",
		}[opcode(w)]
		return fmt.Sprintf("%s %s, %d(%s)", mn, regName(rt(w)), int(simm16(w)), regName(rs(w)))
	default:
		return fmt.Sprintf(".word %#x", w)
	}
}

func disasmSpecial(w uint32) string {
	if w == 0 {
		return "nop"
	}
	switch funct(w) {
	case fnSll, fnSrl, fnSra:
		mn := map[uint32]string{fnSll: "sll", fnSrl: "srl", fnSra: "sra"}[funct(w)]
		return fmt.Sprintf("%s %s, %s, %d", mn, regName(rd(w)), regName(rt(w)), shamt(w))
	case fnSllv, fnSrlv, fnSrav:
		mn := map[uint32]string{fnSllv: "sllv", fnSrlv: "srlv", fnSrav: "srav"}[funct(w)]
		return fmt.Sprintf("%s %s, %s, %s", mn, regName(rd(w)), regName(rt(w)), regName(rs(w)))
	case fnJr:
		return fmt.Sprintf("jr %s", regName(rs(w)))
	case fnJalr:
		return fmt.Sprintf("jalr %s", regName(rs(w)))
	case fnSyscall:
		return "syscall"
	case fnBreak:
		return "break"
	case fnAddu, fnSubu, fnAnd, fnOr, fnXor, fnNor, fnSlt, fnSltu:
		mn := map[uint32]string{
			fnAddu: "addu", fnSubu: "subu", fnAnd: "and", fnOr: "or",
			fnXor: "xor", fnNor: "nor", fnSlt: "slt", fnSltu: "sltu",
		}[funct(w)]
		return fmt.Sprintf("%s %s, %s, %s", mn, regName(rd(w)), regName(rs(w)), regName(rt(w)))
	default:
		return fmt.Sprintf(".word %#x", w)
	}
}

// DisassembleAll renders a word slice with addresses, one instruction
// per line, starting at base.
func DisassembleAll(base uint64, words []uint32) string {
	var sb strings.Builder
	for i, w := range words {
		fmt.Fprintf(&sb, "%08x:  %08x  %s\n", base+uint64(4*i), w, Disassemble(w))
	}
	return sb.String()
}
