package rtlbus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/sim"
)

// testbench: a fast RAM (0 waits) at 0x0000 and a slow RAM (1 addr wait,
// 2 data waits) at 0x10000.
func bench() (*sim.Kernel, *Bus, *mem.RAM, *mem.RAM) {
	k := sim.New(0)
	fast := mem.NewRAM("fast", 0x0000, 0x1000, 0, 0)
	slow := mem.NewRAM("slow", 0x10000, 0x1000, 1, 2)
	b := New(k, ecbus.MustMap(fast, slow))
	return k, b, fast, slow
}

func run(t *testing.T, k *sim.Kernel, b *Bus, items []core.Item) (*core.ScriptMaster, uint64) {
	t.Helper()
	m, n := core.RunScript(k, b, items, 100000)
	if !m.Done() {
		t.Fatalf("script did not complete in %d cycles", n)
	}
	return m, n
}

func single(id uint64, kind ecbus.Kind, addr uint64, w ecbus.Width, data uint32) *ecbus.Transaction {
	tr, err := ecbus.NewSingle(id, kind, addr, w, data)
	if err != nil {
		panic(err)
	}
	return tr
}

func burst(id uint64, kind ecbus.Kind, addr uint64, data []uint32) *ecbus.Transaction {
	tr, err := ecbus.NewBurst(id, kind, addr, data)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestSingleReadZeroWaitCompletesSameCycle(t *testing.T) {
	k, b, fast, _ := bench()
	fast.LoadWords(0x100, []uint32{0x12345678})
	tr := single(1, ecbus.Read, 0x100, ecbus.W32, 0)
	run(t, k, b, []core.Item{{Tr: tr}})
	if tr.AddrCycle != 0 || tr.DataCycle != 0 {
		t.Fatalf("addr/data cycles = %d/%d, want 0/0", tr.AddrCycle, tr.DataCycle)
	}
	if tr.Data[0] != 0x12345678 {
		t.Fatalf("read data %#x", tr.Data[0])
	}
}

func TestSingleReadWaitStates(t *testing.T) {
	k, b, _, slow := bench()
	slow.LoadWords(0x40, []uint32{0xCAFEBABE})
	tr := single(1, ecbus.Read, 0x10040, ecbus.W32, 0)
	run(t, k, b, []core.Item{{Tr: tr}})
	// addr phase: cycles 0..1 (AW=1); data beat: 2 waits after addr end.
	if tr.AddrCycle != 1 {
		t.Fatalf("AddrCycle = %d, want 1", tr.AddrCycle)
	}
	if tr.DataCycle != 3 {
		t.Fatalf("DataCycle = %d, want 3", tr.DataCycle)
	}
	if tr.Data[0] != 0xCAFEBABE {
		t.Fatalf("read data %#x", tr.Data[0])
	}
}

func TestSingleWriteMergePatterns(t *testing.T) {
	k, b, fast, _ := bench()
	fast.LoadWords(0x200, []uint32{0xFFFFFFFF})
	items := []core.Item{
		{Tr: single(1, ecbus.Write, 0x201, ecbus.W8, 0x00005A00)},  // lane 1
		{Tr: single(2, ecbus.Write, 0x202, ecbus.W16, 0x12340000)}, // lanes 2,3
	}
	run(t, k, b, items)
	got, _ := fast.ReadWord(0x200, ecbus.W32)
	if got != 0x12345AFF {
		t.Fatalf("merged word = %#x, want 0x12345AFF", got)
	}
}

func TestBurstReadBeatTiming(t *testing.T) {
	k, b, fast, _ := bench()
	fast.LoadWords(0x300, []uint32{1, 2, 3, 4})
	tr := burst(1, ecbus.Read, 0x300, nil)
	run(t, k, b, []core.Item{{Tr: tr}})
	// addr cycle 0; beats on cycles 0,1,2,3.
	if tr.DataCycle != 3 {
		t.Fatalf("burst DataCycle = %d, want 3", tr.DataCycle)
	}
	for i, want := range []uint32{1, 2, 3, 4} {
		if tr.Data[i] != want {
			t.Fatalf("beat %d = %d, want %d", i, tr.Data[i], want)
		}
	}
}

func TestBurstWithDataWaits(t *testing.T) {
	k, b, _, _ := bench()
	tr := burst(1, ecbus.Write, 0x10100, []uint32{10, 20, 30, 40})
	run(t, k, b, []core.Item{{Tr: tr}})
	// addr: cycles 0..1. Beat i completes at addr-end + DW + i*(DW+1):
	// cycles 3, 6, 9, 12.
	if tr.AddrCycle != 1 || tr.DataCycle != 12 {
		t.Fatalf("addr/data = %d/%d, want 1/12", tr.AddrCycle, tr.DataCycle)
	}
}

func TestBackToBackReadsPipeline(t *testing.T) {
	k, b, _, _ := bench()
	a := single(1, ecbus.Read, 0x400, ecbus.W32, 0)
	c := single(2, ecbus.Read, 0x404, ecbus.W32, 0)
	run(t, k, b, []core.Item{{Tr: a}, {Tr: c}})
	// Serialized address phases: cycles 0 and 1; each data beat follows
	// its address phase immediately (0 waits).
	if a.AddrCycle != 0 || a.DataCycle != 0 {
		t.Fatalf("first read %d/%d, want 0/0", a.AddrCycle, a.DataCycle)
	}
	if c.AddrCycle != 1 || c.DataCycle != 1 {
		t.Fatalf("second read %d/%d, want 1/1", c.AddrCycle, c.DataCycle)
	}
}

func TestWriteThenReadReordering(t *testing.T) {
	k, b, _, _ := bench()
	w := single(1, ecbus.Write, 0x10080, ecbus.W32, 0xFEEDFACE) // slow
	r := single(2, ecbus.Read, 0x148, ecbus.W32, 0)             // fast
	run(t, k, b, []core.Item{{Tr: w}, {Tr: r}})
	// Write addr: 0..1; write beat: 2 waits -> cycle 3. Read addr: 2,
	// read beat: 2. The read completes before the earlier write.
	if r.DataCycle >= w.DataCycle {
		t.Fatalf("no reordering: read done %d, write done %d", r.DataCycle, w.DataCycle)
	}
	if w.DataCycle != 3 || r.DataCycle != 2 {
		t.Fatalf("write/read done = %d/%d, want 3/2", w.DataCycle, r.DataCycle)
	}
}

func TestOutstandingLimitPerCategory(t *testing.T) {
	k, b, _, _ := bench()
	// 6 reads to the slow slave, all presented at cycle 0. Only 4 may be
	// outstanding; the 5th is accepted only after the 1st completes.
	var items []core.Item
	for i := 0; i < 6; i++ {
		items = append(items, core.Item{Tr: single(uint64(i+1), ecbus.Read, 0x10000+uint64(4*i), ecbus.W32, 0)})
	}
	m, _ := run(t, k, b, items)
	if got := b.Stats().Rejected; got == 0 {
		t.Fatal("expected rejections from the outstanding limit")
	}
	if len(m.Completed()) != 6 || m.Errors() != 0 {
		t.Fatalf("completed %d with %d errors", len(m.Completed()), m.Errors())
	}
	// Reads return in order on the single read data bus.
	for i := 1; i < 6; i++ {
		if items[i].Tr.DataCycle <= items[i-1].Tr.DataCycle {
			t.Fatalf("read data not in order: %d then %d",
				items[i-1].Tr.DataCycle, items[i].Tr.DataCycle)
		}
	}
}

func TestDecodeMissError(t *testing.T) {
	k, b, _, _ := bench()
	tr := single(1, ecbus.Read, 0x8000, ecbus.W32, 0) // hole
	m, _ := run(t, k, b, []core.Item{{Tr: tr}})
	if !tr.Err || m.Errors() != 1 {
		t.Fatal("decode miss did not error")
	}
	if tr.DataCycle != 0 {
		t.Fatalf("error completion cycle %d, want 0 (1-cycle addr phase)", tr.DataCycle)
	}
	if b.Stats().Errors != 1 {
		t.Fatalf("stats errors = %d", b.Stats().Errors)
	}
}

func TestAccessRightsError(t *testing.T) {
	k := sim.New(0)
	rom := mem.NewROM("rom", 0, 0x1000, 0, 0)
	b := New(k, ecbus.MustMap(rom))
	tr := single(1, ecbus.Write, 0x10, ecbus.W32, 1)
	m, _ := run(t, k, b, []core.Item{{Tr: tr}})
	if !tr.Err || m.Errors() != 1 {
		t.Fatal("write to ROM did not error")
	}
}

func TestEEPROMDynamicWait(t *testing.T) {
	k := sim.New(0)
	ee := mem.NewEEPROM("eeprom", 0, 0x8000, k)
	b := New(k, ecbus.MustMap(ee))
	w := single(1, ecbus.Write, 0x100, ecbus.W32, 0xAB)
	r := single(2, ecbus.Read, 0x100, ecbus.W32, 0)
	run(t, k, b, []core.Item{{Tr: w}, {Tr: r, NotBefore: 8}})
	// The read lands during the programming cycle and must stall until
	// it ends; EEPROM.ProgramCycles is 32 from the write's cycle.
	if r.AddrCycle < w.DataCycle+20 {
		t.Fatalf("read not stalled by programming: write done %d, read addr %d",
			w.DataCycle, r.AddrCycle)
	}
	if got, _ := ee.ReadWord(0x100, ecbus.W32); got != 0xAB {
		t.Fatalf("EEPROM word = %#x", got)
	}
	if r.Data[0] != 0xAB {
		t.Fatalf("read-back = %#x", r.Data[0])
	}
}

func TestVerificationCorpusCompletes(t *testing.T) {
	k, b, _, _ := bench()
	items := core.VerificationCorpus(core.Layout{Fast: 0, Slow: 0x10000})
	m, cycles := run(t, k, b, items)
	if m.Errors() != 0 {
		t.Fatalf("%d errors in verification corpus", m.Errors())
	}
	if cycles == 0 || len(m.Completed()) != len(items) {
		t.Fatalf("completed %d/%d in %d cycles", len(m.Completed()), len(items), cycles)
	}
	st := b.Stats()
	if st.Completed != uint64(len(items)) || st.DataBeats == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWiresDuringAddressPhase(t *testing.T) {
	k, b, _, _ := bench()
	tr := single(1, ecbus.Write, 0x10204, ecbus.W32, 0x55AA55AA) // slow: AW=1
	core.NewScriptMaster(k, b, []core.Item{{Tr: tr}})
	k.Step() // cycle 0: first address-phase cycle, not yet ready
	w := b.Wires()
	if !w.Bool(ecbus.SigAValid) || w.Bool(ecbus.SigARdy) {
		t.Fatalf("cycle 0: AValid=%v ARdy=%v, want true/false",
			w.Bool(ecbus.SigAValid), w.Bool(ecbus.SigARdy))
	}
	if w.Get(ecbus.SigA) != 0x10204 || !w.Bool(ecbus.SigWrite) {
		t.Fatal("address/Write wires not driven")
	}
	if w.Get(ecbus.SigSel) != 1 {
		t.Fatalf("decoder select = %d, want 1 (slow)", w.Get(ecbus.SigSel))
	}
	k.Step() // cycle 1: address accepted
	if !w.Bool(ecbus.SigARdy) {
		t.Fatal("cycle 1: ARdy not asserted")
	}
	k.Run(8)
	if !tr.Done || tr.Err {
		t.Fatal("transaction did not finish")
	}
}

func TestIdleBusDrivesNoStrobes(t *testing.T) {
	k, b, _, _ := bench()
	k.Run(5)
	w := b.Wires()
	for _, s := range []ecbus.SignalID{ecbus.SigAValid, ecbus.SigARdy, ecbus.SigRdVal,
		ecbus.SigWDRdy, ecbus.SigRBErr, ecbus.SigWBErr} {
		if w.Bool(s) {
			t.Fatalf("idle bus asserts %v", s)
		}
	}
	if !b.Idle() {
		t.Fatal("bus not idle")
	}
}

func TestInvalidTransactionFailsFast(t *testing.T) {
	_, b, _, _ := bench()
	tr := &ecbus.Transaction{ID: 1, Kind: ecbus.Read, Addr: 0x101, Width: ecbus.W32, Data: []uint32{0}}
	if st := b.Access(tr); st != ecbus.StateError {
		t.Fatalf("misaligned access returned %v, want error", st)
	}
}

func TestRandomCorpusNoHangs(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		k, b, _, _ := bench()
		items := core.RandomCorpus(seed, 300, core.Layout{Fast: 0, Slow: 0x10000})
		m, _ := core.RunScript(k, b, items, 1_000_000)
		if !m.Done() {
			t.Fatalf("seed %d: corpus hung", seed)
		}
		if m.Errors() != 0 {
			t.Fatalf("seed %d: %d unexpected errors", seed, m.Errors())
		}
	}
}
