// Package rtlbus is the layer-0 (signal/cycle-true) model of the EC bus
// interface unit and bus controller. It is this repository's substitute
// for the paper's RTL/gate-level reference: the timing golden model that
// the transaction-level layer-1 and layer-2 models are measured against,
// and the signal source for the gate-level power estimator (package
// gatepower), which observes the wire bundle it drives every cycle.
//
// # Protocol timing rules
//
// These rules are the authoritative definition of the modelled EC
// interface subset. The layer-1 model implements the same rules
// independently (queue-based rather than FSM-based); equivalence is
// enforced by property tests in package core.
//
//   - Masters present requests on the rising edge; the bus executes on
//     the falling edge of the same cycle (paper Fig. 2).
//   - Address phases are strictly serialized in acceptance order (one
//     address bus). A transaction's address phase starts the cycle it is
//     at the head of the address queue and occupies 1+AW cycles, where
//     AW = slave AddrWait + dynamic extra wait sampled at phase start.
//     With AW = 0 the phase completes the cycle it starts ("address and
//     data phases can complete in the same cycle they are initiated").
//   - Data phases are per direction: the read data bus serves fetches
//     and data reads in address-completion order; the write data bus
//     serves writes. The two directions proceed concurrently, so a read
//     issued after a write may complete first (the EC "reordering").
//   - Each data beat takes 1+DW cycles (DW = ReadWait or WriteWait).
//     Beat 0 of a transaction may complete in the same cycle as its
//     address phase when the data unit is idle and DW = 0; the request
//     then "passes from the read queue to the finish queue in one
//     cycle" exactly as in the paper's layer-1 description.
//   - At most one data beat per direction per cycle; after the last beat
//     of a transaction the next transaction's first beat is served no
//     earlier than the following cycle.
//   - Decode misses and access-rights violations terminate the
//     transaction at the end of a 1-cycle address phase and pulse the
//     bus-error signal of the transaction's direction (EB_RBErr or
//     EB_WBErr).
//   - Outstanding transactions are limited to ecbus.MaxOutstanding per
//     category (burst instruction read / burst data read / burst write);
//     a full category rejects the request and the master retries.
package rtlbus

import (
	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Bus is the layer-0 bus interface unit + bus controller.
type Bus struct {
	m     *ecbus.Map
	cycle uint64 // cycle currently being executed (set on falling edge)

	// Address unit.
	addrQ     []*ecbus.Transaction
	addrCnt   int  // cycles already spent on the head's address phase
	addrWaits int  // total wait states for the head (sampled at start)
	addrErr   bool // head fails decode/rights
	addrNew   bool // head not yet started

	// Data units (per direction).
	readQ  []*ecbus.Transaction
	writeQ []*ecbus.Transaction
	rBeat  beatState
	wBeat  beatState

	outstanding [ecbus.NumCategories]int

	// Wire state driven on the falling edge, observed in the Post phase.
	wires ecbus.Bundle

	// Observability. mxKind/mxSlave classify the cycle being executed
	// (reset at the top of tick, sampled by the Post observer); they are
	// only maintained while a registry is attached.
	mx      *metrics.Registry
	mxKind  metrics.PhaseKind
	mxSlave int

	stats Stats
}

// beatState tracks the data-phase progress of the head of a data queue.
type beatState struct {
	beat  int // next beat index to deliver
	cnt   int // cycles spent waiting on this beat
	waits int // wait states per beat (sampled at phase start)
	fresh bool
}

// Stats aggregates observable bus activity.
type Stats struct {
	Accepted   uint64 // transactions accepted into the address queue
	Completed  uint64 // transactions finished OK
	Errors     uint64 // transactions finished with a bus error
	Rejected   uint64 // Access attempts rejected (category full)
	DataBeats  uint64 // data words moved
	AddrCycles uint64 // cycles with an active address phase
}

// New creates a layer-0 bus over the address map and registers its bus
// process on the kernel's falling edge, with a quiescence hint so the
// kernel can fast-forward pure wait-state countdowns and idle gaps.
func New(k *sim.Kernel, m *ecbus.Map) *Bus {
	// cycle starts at all-ones so that a request issued on the rising
	// edge of cycle 0 (before the first falling tick updates the cycle
	// counter) is stamped IssueCycle 0.
	b := &Bus{m: m, cycle: ^uint64(0)}
	k.AtHinted(sim.Falling, "rtlbus", b.tick, b.hint, b.onSkip)
	return b
}

// hint reports the earliest future cycle with bus activity. It returns
// now whenever this cycle's tick changes wire state: a pulse wire left
// high must fall, a phase starts or completes, or a data beat delivers.
// During a pure countdown the wires are re-driven with identical values,
// so those cycles are skippable.
func (b *Bus) hint(now uint64) uint64 {
	w := &b.wires
	if w.Bool(ecbus.SigARdy) || w.Bool(ecbus.SigRdVal) || w.Bool(ecbus.SigWDRdy) ||
		w.Bool(ecbus.SigRBErr) || w.Bool(ecbus.SigWBErr) {
		return now // a pulse wire must fall this cycle
	}
	next := sim.NoEvent
	if len(b.addrQ) > 0 {
		tr := b.addrQ[0]
		switch {
		case tr.IssueCycle > now:
			next = tr.IssueCycle
		case !b.addrNew || b.addrCnt >= b.addrWaits:
			return now // phase start or completion tick
		default:
			next = now + uint64(b.addrWaits-b.addrCnt)
		}
	}
	if len(b.readQ) > 0 {
		if !b.rBeat.fresh || b.rBeat.cnt >= b.rBeat.waits {
			return now // phase start or beat delivery tick
		}
		if c := now + uint64(b.rBeat.waits-b.rBeat.cnt); c < next {
			next = c
		}
	}
	if len(b.writeQ) > 0 {
		if !b.wBeat.fresh || b.wBeat.cnt < b.wBeat.waits {
			// Write countdown ticks drive the write data bus; the first
			// such tick may change SigWData, so only a started countdown
			// whose data is already driven is skippable. cnt==0 means the
			// current data word may not be on the wires yet.
			if !b.wBeat.fresh || b.wBeat.cnt == 0 {
				return now
			}
			if c := now + uint64(b.wBeat.waits-b.wBeat.cnt); c < next {
				next = c
			}
		} else {
			return now // beat delivery tick
		}
	}
	return next
}

// onSkip advances the bus state across n fast-forwarded cycles exactly
// as n pure-countdown ticks would have.
func (b *Bus) onSkip(n uint64) {
	b.cycle += n
	if len(b.addrQ) > 0 && b.addrNew && b.addrCnt < b.addrWaits {
		b.addrCnt += int(n)
		b.stats.AddrCycles += n // each skipped tick had an active address phase
	}
	if len(b.readQ) > 0 && b.rBeat.fresh && b.rBeat.cnt < b.rBeat.waits {
		b.rBeat.cnt += int(n)
	}
	if len(b.writeQ) > 0 && b.wBeat.fresh && b.wBeat.cnt > 0 && b.wBeat.cnt < b.wBeat.waits {
		b.wBeat.cnt += int(n)
	}
}

// Access is the master-side non-blocking interface, shared semantics with
// the layer-1 model: the first call for a transaction submits it
// (StateRequest) or rejects it (StateWait, category full — retry next
// cycle); subsequent calls poll (StateWait until the transaction is
// Done, then StateOK or StateError). Masters call it on rising edges.
func (b *Bus) Access(tr *ecbus.Transaction) ecbus.BusState {
	if tr.Done {
		if tr.Err {
			return ecbus.StateError
		}
		return ecbus.StateOK
	}
	if tr.IssueCycle != 0 || b.isQueued(tr) {
		return ecbus.StateWait
	}
	cat := tr.Category()
	if b.outstanding[cat] >= ecbus.MaxOutstanding {
		b.stats.Rejected++
		b.mx.TxRejected()
		return ecbus.StateWait
	}
	if err := tr.Validate(); err != nil {
		// Structurally illegal requests never reach the wire; they
		// complete immediately as errors (the BIU would not emit them).
		tr.Done, tr.Err = true, true
		b.stats.Errors++
		b.mx.TxRetired(tr, -1, true)
		return ecbus.StateError
	}
	b.outstanding[cat]++
	tr.IssueCycle = b.cycle + 1 // accepted for the cycle now being issued
	b.addrQ = append(b.addrQ, tr)
	b.stats.Accepted++
	b.mx.TxAccepted(cat, b.outstanding[cat])
	return ecbus.StateRequest
}

// isQueued reports whether tr is anywhere in the bus pipelines. Needed
// because IssueCycle==0 is also the zero value for a cycle-0 submission.
func (b *Bus) isQueued(tr *ecbus.Transaction) bool {
	for _, q := range [][]*ecbus.Transaction{b.addrQ, b.readQ, b.writeQ} {
		for _, t := range q {
			if t == tr {
				return true
			}
		}
	}
	return false
}

// Idle reports whether no transaction is in flight.
func (b *Bus) Idle() bool {
	return len(b.addrQ) == 0 && len(b.readQ) == 0 && len(b.writeQ) == 0
}

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Wires returns the wire bundle driven during the current cycle. The
// gate-level power estimator reads it in the Post phase; values of
// registered outputs hold between phases, as on silicon.
func (b *Bus) Wires() *ecbus.Bundle { return &b.wires }

// tick is the bus process (falling edge): address unit first, then the
// two data units, so a zero-wait transaction can traverse address and
// first data beat within one cycle.
func (b *Bus) tick(cycle uint64) {
	b.cycle = cycle
	// Pulse wires default to inactive each cycle; bus-value wires
	// (address, data, controls) hold their previous values.
	b.wires.SetBool(ecbus.SigAValid, false)
	b.wires.SetBool(ecbus.SigARdy, false)
	b.wires.SetBool(ecbus.SigRdVal, false)
	b.wires.SetBool(ecbus.SigWDRdy, false)
	b.wires.SetBool(ecbus.SigRBErr, false)
	b.wires.SetBool(ecbus.SigWBErr, false)

	if b.mx != nil {
		b.mxKind, b.mxSlave = metrics.PhaseIdle, -1
	}
	b.addrUnit(cycle)
	b.readUnit(cycle)
	b.writeUnit(cycle)
}

// addrUnit advances the serialized address phase.
func (b *Bus) addrUnit(cycle uint64) {
	if len(b.addrQ) == 0 {
		return
	}
	tr := b.addrQ[0]
	if tr.IssueCycle > cycle {
		return // accepted later this cycle by a master that runs after us
	}
	if !b.addrNewStarted() {
		b.startAddrPhase(tr)
	}
	b.stats.AddrCycles++
	b.driveAddrWires(tr)
	if b.mx != nil {
		b.mark(metrics.PhaseAddress, b.m.Index(tr.Addr))
	}

	if b.addrCnt < b.addrWaits {
		b.addrCnt++
		b.mx.WaitCycle()
		return
	}
	// Phase completes this cycle.
	b.wires.SetBool(ecbus.SigARdy, true)
	tr.AddrCycle = cycle
	b.addrQ = b.addrQ[1:]
	b.addrNew = false
	if b.addrErr {
		b.completeError(tr, cycle)
		return
	}
	if tr.Kind.IsRead() {
		b.readQ = append(b.readQ, tr)
	} else {
		b.writeQ = append(b.writeQ, tr)
	}
}

func (b *Bus) addrNewStarted() bool { return b.addrNew }

// startAddrPhase samples the slave state for the head transaction: total
// address wait states and decode/rights legality.
func (b *Bus) startAddrPhase(tr *ecbus.Transaction) {
	b.addrNew = true
	b.addrCnt = 0
	b.addrErr = false
	sl, err := b.m.Check(tr.Kind, tr.Addr, tr.Words()*4)
	if err != nil {
		b.addrErr = true
		b.addrWaits = 0 // errors terminate after a 1-cycle address phase
		return
	}
	b.addrWaits = sl.Config().AddrWait + ecbus.ExtraWaitOf(sl, tr.Kind, tr.Addr)
}

// driveAddrWires drives the address-phase wires for the active head.
func (b *Bus) driveAddrWires(tr *ecbus.Transaction) {
	b.wires.SetBool(ecbus.SigAValid, true)
	b.wires.Set(ecbus.SigA, tr.Addr)
	b.wires.SetBool(ecbus.SigInstr, tr.Kind == ecbus.Fetch)
	b.wires.SetBool(ecbus.SigWrite, tr.Kind == ecbus.Write)
	b.wires.SetBool(ecbus.SigBurst, tr.Burst)
	b.wires.SetBool(ecbus.SigBFirst, tr.Burst)
	b.wires.SetBool(ecbus.SigBLast, false)
	be := uint8(0b1111)
	if !tr.Burst {
		be, _ = ecbus.ByteEnables(tr.Addr, tr.Width)
	}
	b.wires.Set(ecbus.SigBE, uint64(be))
	idx := b.m.Index(tr.Addr)
	if idx < 0 {
		idx = 7 // decoder "no select" pattern
	}
	b.wires.Set(ecbus.SigSel, uint64(idx))
}

// completeError finishes a transaction with a bus error and pulses the
// error wire of its direction.
func (b *Bus) completeError(tr *ecbus.Transaction, cycle uint64) {
	tr.Done, tr.Err = true, true
	tr.DataCycle = cycle
	if tr.Kind.IsRead() {
		b.wires.SetBool(ecbus.SigRBErr, true)
	} else {
		b.wires.SetBool(ecbus.SigWBErr, true)
	}
	b.outstanding[tr.Category()]--
	b.stats.Errors++
	if b.mx != nil {
		idx := b.m.Index(tr.Addr)
		b.mark(metrics.PhaseError, idx)
		b.mx.TxRetired(tr, idx, true)
	}
}

// readUnit serves one read data beat per cycle.
func (b *Bus) readUnit(cycle uint64) {
	if len(b.readQ) == 0 {
		return
	}
	tr := b.readQ[0]
	if !b.rBeat.fresh {
		sl := b.m.Decode(tr.Addr)
		b.rBeat = beatState{waits: sl.Config().ReadWait, fresh: true}
	}
	if b.rBeat.cnt < b.rBeat.waits {
		b.rBeat.cnt++
		b.mx.WaitCycle()
		return
	}
	// Deliver beat.
	i := b.rBeat.beat
	addr := tr.Addr + uint64(4*i)
	sl := b.m.Decode(addr)
	w := tr.Width
	if tr.Burst {
		w = ecbus.W32
	}
	data, ok := sl.ReadWord(addr, w)
	b.wires.Set(ecbus.SigRData, uint64(data))
	b.stats.DataBeats++
	if b.mx != nil {
		b.mark(metrics.PhaseReadData, b.m.Index(tr.Addr))
		b.mx.Beat()
	}
	tr.Data[i] = data
	b.rBeat.beat++
	b.rBeat.cnt = 0
	if !ok {
		// Slave-side read error aborts the transaction at this beat. The
		// error strobe replaces the read-valid strobe for the cycle — the
		// two are mutually exclusive on the EC read bus — and the burst
		// terminates without a last-beat marker. The (possibly corrupted)
		// word the slave drove stays on the read data bus.
		b.wires.SetBool(ecbus.SigRBErr, true)
		b.finishRead(tr, cycle, true)
		return
	}
	b.wires.SetBool(ecbus.SigRdVal, true)
	b.wires.SetBool(ecbus.SigBLast, tr.Burst && i == tr.Words()-1)
	if b.rBeat.beat == tr.Words() {
		b.finishRead(tr, cycle, false)
	}
}

func (b *Bus) finishRead(tr *ecbus.Transaction, cycle uint64, err bool) {
	tr.Done, tr.Err = true, err
	tr.DataCycle = cycle
	b.readQ = b.readQ[1:]
	b.rBeat = beatState{}
	b.outstanding[tr.Category()]--
	if err {
		b.stats.Errors++
	} else {
		b.stats.Completed++
	}
	if b.mx != nil {
		idx := b.m.Index(tr.Addr)
		if err {
			b.mark(metrics.PhaseError, idx)
		}
		b.mx.TxRetired(tr, idx, err)
	}
}

// writeUnit serves one write data beat per cycle.
func (b *Bus) writeUnit(cycle uint64) {
	if len(b.writeQ) == 0 {
		return
	}
	tr := b.writeQ[0]
	if !b.wBeat.fresh {
		sl := b.m.Decode(tr.Addr)
		b.wBeat = beatState{waits: sl.Config().WriteWait, fresh: true}
	}
	// The master drives the write data bus while the beat is pending.
	i := b.wBeat.beat
	b.wires.Set(ecbus.SigWData, uint64(tr.Data[i]))
	if b.mx != nil {
		// The write unit drives wires even on wait cycles, so every
		// cycle it acts is classified write-data.
		b.mark(metrics.PhaseWriteData, b.m.Index(tr.Addr))
	}
	if b.wBeat.cnt < b.wBeat.waits {
		b.wBeat.cnt++
		b.mx.WaitCycle()
		return
	}
	addr := tr.Addr + uint64(4*i)
	sl := b.m.Decode(addr)
	w := tr.Width
	if tr.Burst {
		w = ecbus.W32
	}
	ok := sl.WriteWord(addr, tr.Data[i], w)
	b.stats.DataBeats++
	b.mx.Beat()
	b.wBeat.beat++
	b.wBeat.cnt = 0
	if !ok {
		// Mirror of the read-side rule: the write-error strobe replaces
		// the write-accept strobe, and the burst terminates without a
		// last-beat marker.
		b.wires.SetBool(ecbus.SigWBErr, true)
		b.finishWrite(tr, cycle, true)
		return
	}
	b.wires.SetBool(ecbus.SigWDRdy, true)
	b.wires.SetBool(ecbus.SigBLast, tr.Burst && i == tr.Words()-1)
	if b.wBeat.beat == tr.Words() {
		b.finishWrite(tr, cycle, false)
	}
}

func (b *Bus) finishWrite(tr *ecbus.Transaction, cycle uint64, err bool) {
	tr.Done, tr.Err = true, err
	tr.DataCycle = cycle
	b.writeQ = b.writeQ[1:]
	b.wBeat = beatState{}
	b.outstanding[tr.Category()]--
	if err {
		b.stats.Errors++
	} else {
		b.stats.Completed++
	}
	if b.mx != nil {
		idx := b.m.Index(tr.Addr)
		if err {
			b.mark(metrics.PhaseError, idx)
		}
		b.mx.TxRetired(tr, idx, err)
	}
}
