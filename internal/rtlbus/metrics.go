package rtlbus

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// AttachMetrics connects an observability registry to the layer-0 bus
// (nil detaches counters). The per-slave energy table is bound to the
// address map's decode order.
//
// total is the energy meter to attribute — typically the method value
// est.TotalEnergy of the gate-level estimator observing this bus; nil
// collects counters and spans without energy attribution.
//
// When total is non-nil, AttachMetrics registers a Post-phase observer
// that samples the meter once per executed cycle, classified by the
// phase the bus drove that cycle, plus a skip callback that books the
// clock/idle energy integrated across fast-forwarded gaps into the
// idle bucket. Call it after the estimator's own Post observer has
// been registered (registration order is execution order), so each
// sample sees the cycle's energy already integrated.
func (b *Bus) AttachMetrics(k *sim.Kernel, reg *metrics.Registry, total func() float64) *Bus {
	b.mx = reg
	b.mxKind, b.mxSlave = metrics.PhaseIdle, -1
	names := make([]string, 0, len(b.m.Slaves()))
	for _, s := range b.m.Slaves() {
		names = append(names, s.Config().Name)
	}
	reg.BindSlaves(names...)
	if reg == nil || total == nil {
		return b
	}
	k.AtObserver(sim.Post, "rtlbus-metrics",
		func(cycle uint64) {
			reg.EnergySample(b.mxKind, b.mxSlave, total())
		},
		func(n uint64) {
			reg.EnergySample(metrics.PhaseIdle, -1, total())
		})
	return b
}

// mark classifies the executing cycle for energy attribution, keeping
// the highest-priority phase kind when several units act at once.
func (b *Bus) mark(kind metrics.PhaseKind, slave int) {
	if b.mxKind == metrics.PhaseIdle || kind > b.mxKind {
		b.mxKind, b.mxSlave = kind, slave
	}
}
