package mem

import (
	"testing"

	"repro/internal/ecbus"
)

// tearClock is a settable cycle source for the self-timed memories.
type tearClock struct{ c uint64 }

func (f *tearClock) Cycle() uint64 { return f.c }

func TestEEPROMTearInsideWindow(t *testing.T) {
	clk := &tearClock{}
	e := NewEEPROM("ee", 0x1000, 0x100, clk)
	if !e.WriteWord(0x1000, 0xFFFF_FFFF, ecbus.W32) {
		t.Fatal("seed write failed")
	}
	clk.c = e.BusyUntil() // drain the first window
	old, next := uint32(0xFFFF_FFFF), uint32(0x0000_00FF)
	clk.c = 100
	if !e.WriteWord(0x1000, next, ecbus.W32) {
		t.Fatal("write failed")
	}

	tw, torn := e.TearAt(100+e.ProgramCycles/2, 7)
	if !torn {
		t.Fatal("tear inside the programming window must corrupt")
	}
	if tw.Addr != 0x1000 || tw.Old != old || tw.New != next || tw.Ordinal != 2 {
		t.Fatalf("torn word = %+v", tw)
	}
	diff := old ^ next
	if tw.Torn&^diff != old&^diff {
		t.Fatalf("stable bits changed: torn=%#x old=%#x diff=%#x", tw.Torn, old, diff)
	}
	if got, _ := e.ReadWord(0x1000, ecbus.W32); got != tw.Torn {
		t.Fatalf("array holds %#x, want torn %#x", got, tw.Torn)
	}
}

func TestEEPROMTearDeterministic(t *testing.T) {
	run := func() TornWord {
		clk := &tearClock{c: 50}
		e := NewEEPROM("ee", 0, 0x100, clk)
		e.WriteWord(0x10, 0xDEAD_BEEF, ecbus.W32)
		tw, torn := e.TearAt(55, 42)
		if !torn {
			t.Fatal("expected a torn word")
		}
		return tw
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same (seed, cycle) must tear identically: %+v vs %+v", a, b)
	}

	// The corruption pattern depends on (seed, addr, ordinal), never on
	// the cut cycle — the property that makes named tear plans portable
	// across simulation layers with different timing.
	clk := &tearClock{c: 50}
	e := NewEEPROM("ee", 0, 0x100, clk)
	e.WriteWord(0x10, 0xDEAD_BEEF, ecbus.W32)
	late, torn := e.TearAt(79, 42) // still inside the 32-cycle window
	if !torn {
		t.Fatal("expected a torn word")
	}
	if late.Torn != a.Torn {
		t.Fatalf("corruption must not depend on cut cycle: %#x vs %#x", late.Torn, a.Torn)
	}

	clk2 := &tearClock{c: 50}
	e2 := NewEEPROM("ee", 0, 0x100, clk2)
	e2.WriteWord(0x10, 0xDEAD_BEEF, ecbus.W32)
	other, _ := e2.TearAt(55, 43)
	if other.Torn == a.Torn {
		t.Fatalf("different seeds should (here) tear differently: both %#x", other.Torn)
	}
}

func TestEEPROMTearOutsideWindow(t *testing.T) {
	clk := &tearClock{}
	e := NewEEPROM("ee", 0, 0x100, clk)
	if _, torn := e.TearAt(0, 1); torn {
		t.Fatal("never-programmed device must not tear")
	}
	e.WriteWord(0x20, 0x1234_5678, ecbus.W32)
	if _, torn := e.TearAt(e.BusyUntil(), 1); torn {
		t.Fatal("tear at/after busyUntil must not corrupt")
	}
	if got, _ := e.ReadWord(0x20, ecbus.W32); got != 0x1234_5678 {
		t.Fatalf("completed write clobbered: %#x", got)
	}
}

func TestFlashTear(t *testing.T) {
	clk := &tearClock{c: 10}
	f := NewFlash("fl", 0, 0x100, clk)
	f.WriteWord(0x40, 0xA5A5_A5A5, ecbus.W32)
	if f.Programs() != 1 {
		t.Fatalf("Programs = %d, want 1", f.Programs())
	}
	tw, torn := f.TearAt(15, 9)
	if !torn {
		t.Fatal("tear inside the flash window must corrupt")
	}
	if tw.Old != 0 || tw.New != 0xA5A5_A5A5 {
		t.Fatalf("torn word = %+v", tw)
	}
	if got, _ := f.ReadWord(0x40, ecbus.W32); got != tw.Torn {
		t.Fatalf("array holds %#x, want torn %#x", got, tw.Torn)
	}
}
