package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/ecbus"
)

type fakeClock struct{ c uint64 }

func (f *fakeClock) Cycle() uint64 { return f.c }

func TestRAMWordRoundTrip(t *testing.T) {
	r := NewRAM("ram", 0x1000, 0x100, 0, 0)
	if !r.WriteWord(0x1010, 0xDEADBEEF, ecbus.W32) {
		t.Fatal("write failed")
	}
	got, ok := r.ReadWord(0x1010, ecbus.W32)
	if !ok || got != 0xDEADBEEF {
		t.Fatalf("read %#x ok=%v", got, ok)
	}
}

func TestRAMByteLaneMerge(t *testing.T) {
	r := NewRAM("ram", 0, 0x100, 0, 0)
	r.WriteWord(0x10, 0xFFFFFFFF, ecbus.W32)
	// Write byte 0x5A to lane 2 (address 0x12): data presented on its lane.
	r.WriteWord(0x12, 0x005A0000, ecbus.W8)
	got, _ := r.ReadWord(0x10, ecbus.W32)
	if got != 0xFF5AFFFF {
		t.Fatalf("merged = %#x, want 0xFF5AFFFF", got)
	}
	// 16-bit write to lanes 0-1.
	r.WriteWord(0x10, 0x00001234, ecbus.W16)
	got, _ = r.ReadWord(0x10, ecbus.W32)
	if got != 0xFF5A1234 {
		t.Fatalf("merged = %#x, want 0xFF5A1234", got)
	}
}

func TestRAMWriteReadProperty(t *testing.T) {
	r := NewRAM("ram", 0, 0x1000, 0, 0)
	f := func(off uint16, v uint32) bool {
		addr := uint64(off) % 0xFFC &^ 3
		r.WriteWord(addr, v, ecbus.W32)
		got, ok := r.ReadWord(addr, ecbus.W32)
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRAMOutOfRange(t *testing.T) {
	r := NewRAM("ram", 0x100, 0x10, 0, 0)
	if _, ok := r.ReadWord(0x90, ecbus.W32); ok {
		t.Fatal("read below range succeeded")
	}
	if r.WriteWord(0x200, 1, ecbus.W32) {
		t.Fatal("write above range succeeded")
	}
}

func TestROMRejectsWrites(t *testing.T) {
	r := NewROM("rom", 0, 0x100, 0, 0)
	if r.WriteWord(0x10, 1, ecbus.W32) {
		t.Fatal("ROM accepted a write")
	}
	cfg := r.Config()
	if cfg.Writable || !cfg.Readable || !cfg.Executable {
		t.Fatalf("ROM rights wrong: %+v", cfg)
	}
}

func TestLoadAndLoadWords(t *testing.T) {
	r := NewROM("rom", 0x4000, 0x100, 0, 0)
	if err := r.LoadWords(0x10, []uint32{0x11223344, 0x55667788}); err != nil {
		t.Fatal(err)
	}
	got, _ := r.ReadWord(0x4014, ecbus.W32)
	if got != 0x55667788 {
		t.Fatalf("loaded word = %#x", got)
	}
	if err := r.Load(0xFF, []byte{1, 2}); err == nil {
		t.Fatal("overflowing load accepted")
	}
	if err := r.Load(0, make([]byte, 0x100)); err != nil {
		t.Fatalf("exact-size load rejected: %v", err)
	}
}

func TestEEPROMProgrammingStall(t *testing.T) {
	clk := &fakeClock{}
	e := NewEEPROM("ee", 0, 0x8000, clk)
	if e.ExtraWait(ecbus.Read, 0) != 0 {
		t.Fatal("fresh EEPROM busy")
	}
	clk.c = 100
	e.WriteWord(0x20, 0xAB, ecbus.W32)
	if e.Programs() != 1 {
		t.Fatal("program not counted")
	}
	if got := e.ExtraWait(ecbus.Read, 0); got != int(e.ProgramCycles) {
		t.Fatalf("ExtraWait right after write = %d, want %d", got, e.ProgramCycles)
	}
	clk.c = 100 + e.ProgramCycles/2
	if got := e.ExtraWait(ecbus.Write, 0); got != int(e.ProgramCycles/2) {
		t.Fatalf("ExtraWait mid-program = %d, want %d", got, e.ProgramCycles/2)
	}
	clk.c = 100 + e.ProgramCycles
	if e.ExtraWait(ecbus.Read, 0) != 0 {
		t.Fatal("EEPROM still busy after programming window")
	}
	got, _ := e.ReadWord(0x20, ecbus.W32)
	if got != 0xAB {
		t.Fatalf("programmed word = %#x", got)
	}
}

func TestFlashProgrammingShorterThanEEPROM(t *testing.T) {
	clk := &fakeClock{}
	f := NewFlash("fl", 0, 0x10000, clk)
	e := NewEEPROM("ee", 0x100000, 0x8000, clk)
	if f.ProgramCycles >= e.ProgramCycles {
		t.Fatal("flash programming not faster than EEPROM")
	}
	f.WriteWord(0x40, 0xCD, ecbus.W32)
	if f.ExtraWait(ecbus.Read, 0) != int(f.ProgramCycles) {
		t.Fatal("flash not busy after write")
	}
}

func TestSlaveInterfacesSatisfied(t *testing.T) {
	clk := &fakeClock{}
	var slaves = []ecbus.Slave{
		NewRAM("a", 0, 4, 0, 0),
		NewROM("b", 4, 4, 0, 0),
		NewEEPROM("c", 8, 4, clk),
		NewFlash("d", 12, 4, clk),
	}
	for _, s := range slaves {
		if err := s.Config().Validate(); err != nil {
			t.Fatalf("%s: %v", s.Config().Name, err)
		}
	}
	// The self-timed memories implement DynamicWaiter, plain ones not.
	if _, ok := slaves[0].(ecbus.DynamicWaiter); ok {
		t.Fatal("RAM claims dynamic waits")
	}
	if _, ok := slaves[2].(ecbus.DynamicWaiter); !ok {
		t.Fatal("EEPROM misses DynamicWaiter")
	}
}

func TestBytesExposesStorage(t *testing.T) {
	r := NewRAM("ram", 0, 8, 0, 0)
	r.WriteWord(0, 0x04030201, ecbus.W32)
	b := r.Bytes()
	for i := 0; i < 4; i++ {
		if b[i] != byte(i+1) {
			t.Fatalf("byte %d = %d", i, b[i])
		}
	}
}
