// Package mem provides the memory slaves of the smart-card platform
// (paper Fig. 1): mask ROM (256 kB program memory), EEPROM (32 kB data &
// program memory with long, self-timed programming cycles), Flash (64 kB
// program memory), and RAM / scratchpad.
//
// All memories implement ecbus.Slave: word-oriented access where writes
// merge only the byte lanes enabled by the EC merge pattern, and reads
// return the full aligned word (the master extracts its lanes). Wait
// states live in the SlaveConfig and are inserted by the bus models; the
// EEPROM and Flash additionally implement ecbus.DynamicWaiter to stall
// accesses that collide with an in-progress programming cycle.
package mem

import (
	"fmt"

	"repro/internal/ecbus"
)

// clock abstracts the kernel for self-timed memories; satisfied by
// *sim.Kernel.
type clock interface {
	Cycle() uint64
}

// laneMask returns the 32-bit write mask for the merge pattern of an
// access of width w at addr.
func laneMask(addr uint64, w ecbus.Width) uint32 {
	be, ok := ecbus.ByteEnables(addr, w)
	if !ok {
		return 0
	}
	var m uint32
	for i := 0; i < 4; i++ {
		if be&(1<<i) != 0 {
			m |= 0xFF << (8 * i)
		}
	}
	return m
}

// array is the shared storage core of all memory slaves.
type array struct {
	cfg  ecbus.SlaveConfig
	data []byte
}

func newArray(cfg ecbus.SlaveConfig) array {
	return array{cfg: cfg, data: make([]byte, cfg.Size)}
}

func (a *array) Config() ecbus.SlaveConfig { return a.cfg }

// word returns the aligned 32-bit word containing addr.
func (a *array) word(addr uint64) uint32 {
	off := (addr - a.cfg.Base) &^ 3
	if off+4 > uint64(len(a.data)) {
		return 0
	}
	return uint32(a.data[off]) | uint32(a.data[off+1])<<8 |
		uint32(a.data[off+2])<<16 | uint32(a.data[off+3])<<24
}

func (a *array) setWord(addr uint64, v, mask uint32) {
	off := (addr - a.cfg.Base) &^ 3
	if off+4 > uint64(len(a.data)) {
		return
	}
	old := a.word(addr)
	v = (old &^ mask) | (v & mask)
	a.data[off] = byte(v)
	a.data[off+1] = byte(v >> 8)
	a.data[off+2] = byte(v >> 16)
	a.data[off+3] = byte(v >> 24)
}

func (a *array) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	if !a.cfg.Contains(addr) {
		return 0, false
	}
	return a.word(addr), true
}

// Load copies blob into the memory at byte offset off, for program and
// test-image initialization (bypasses bus timing and write protection).
func (a *array) Load(off uint64, blob []byte) error {
	if off+uint64(len(blob)) > uint64(len(a.data)) {
		return fmt.Errorf("mem: load of %d bytes at +%#x exceeds %q size %#x",
			len(blob), off, a.cfg.Name, a.cfg.Size)
	}
	copy(a.data[off:], blob)
	return nil
}

// LoadWords copies 32-bit words (little-endian) at byte offset off.
func (a *array) LoadWords(off uint64, words []uint32) error {
	blob := make([]byte, 4*len(words))
	for i, w := range words {
		blob[4*i] = byte(w)
		blob[4*i+1] = byte(w >> 8)
		blob[4*i+2] = byte(w >> 16)
		blob[4*i+3] = byte(w >> 24)
	}
	return a.Load(off, blob)
}

// Bytes exposes the raw storage for test assertions.
func (a *array) Bytes() []byte { return a.data }

// RAM is a read/write memory (also used for the scratchpad).
type RAM struct{ array }

// NewRAM creates a RAM slave. Scratchpads use waits of 0.
func NewRAM(name string, base, size uint64, addrWait, dataWait int) *RAM {
	return &RAM{newArray(ecbus.SlaveConfig{
		Name: name, Base: base, Size: size,
		AddrWait: addrWait, ReadWait: dataWait, WriteWait: dataWait,
		Readable: true, Writable: true, Executable: true,
	})}
}

// NewNVRAM creates a RAM-interface slave with NVM-class static timing:
// asymmetric read/write wait states, the writes carrying the per-word
// programming cost of an EEPROM/FRAM-style device. Unlike EEPROM's
// self-timed busy window (a DynamicWaiter coupled to the kernel clock),
// the programming wait here is folded into the write data phase as a
// static per-beat wait state, so the slave has no clock dependency —
// the timing model batched estimation requires, where lanes advance on
// independent cycle counters.
func NewNVRAM(name string, base, size uint64, addrWait, readWait, writeWait int) *RAM {
	return &RAM{newArray(ecbus.SlaveConfig{
		Name: name, Base: base, Size: size,
		AddrWait: addrWait, ReadWait: readWait, WriteWait: writeWait,
		Readable: true, Writable: true, Executable: true,
	})}
}

// WriteWord merges the enabled byte lanes into the word at addr.
func (r *RAM) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	if !r.cfg.Contains(addr) {
		return false
	}
	r.setWord(addr, data, laneMask(addr, w))
	return true
}

// ROM is a mask-programmed read/execute-only memory. The bus controller
// blocks writes via the rights bits before they reach the slave; a write
// arriving anyway is a modelling error and fails.
type ROM struct{ array }

// NewROM creates a ROM slave.
func NewROM(name string, base, size uint64, addrWait, readWait int) *ROM {
	return &ROM{newArray(ecbus.SlaveConfig{
		Name: name, Base: base, Size: size,
		AddrWait: addrWait, ReadWait: readWait, WriteWait: 0,
		Readable: true, Writable: false, Executable: true,
	})}
}

// WriteWord always fails: ROM is not writable.
func (r *ROM) WriteWord(uint64, uint32, ecbus.Width) bool { return false }

// TornWord describes the outcome of a power loss inside an NVM
// programming window: the word whose programming was interrupted, the
// value it held before the write, the value it was being programmed
// to, the seeded indeterminate value it was left with, and the ordinal
// (1-based) of the interrupted programming operation.
type TornWord struct {
	Addr    uint64
	Old     uint32
	New     uint32
	Torn    uint32
	Ordinal uint64
}

// splitmix64 is the corruption model's seed mixer: a tiny, well-known
// integer hash whose output depends only on its input, so torn bit
// patterns are reproducible from (seed, addr, ordinal) alone.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// inflight tracks the most recent programming operation of a self-timed
// memory, so a tear landing inside its window can resolve the word to a
// seeded indeterminate state.
type inflight struct {
	addr uint64
	old  uint32
	next uint32
}

// tearAt implements the partial-write corruption model shared by EEPROM
// and Flash: if cycle lands inside the current programming window, the
// interrupted word's differing bits each independently resolve to the
// old or the new level under a seeded mask, and the torn value is
// written back into the array. Bits the write did not change are stable
// regardless of where the tear lands — only the cells being
// reprogrammed are indeterminate. The mask is a function of (seed,
// addr, ordinal) only, never of the cycle, so the corruption pattern is
// identical across simulation layers that time the same operation
// differently.
func tearAt(a *array, in inflight, programs, busyUntil, cycle, seed uint64) (TornWord, bool) {
	if programs == 0 || cycle >= busyUntil {
		return TornWord{}, false
	}
	diff := in.old ^ in.next
	mask := uint32(splitmix64(seed ^ splitmix64(in.addr) ^ programs))
	torn := (in.old &^ diff) | (mask & diff)
	a.setWord(in.addr, torn, 0xFFFF_FFFF)
	return TornWord{Addr: in.addr, Old: in.old, New: in.next, Torn: torn, Ordinal: programs}, true
}

// EEPROM models the smart card's 32 kB data & program memory: reads are
// moderately slow; a write starts a self-timed programming cycle of
// ProgramCycles bus clocks during which any further access to the device
// stalls (dynamic wait states).
type EEPROM struct {
	array
	clk           clock
	busyUntil     uint64
	ProgramCycles uint64
	programs      uint64 // completed programming operations
	last          inflight
}

// NewEEPROM creates an EEPROM slave; clk supplies the current cycle for
// the self-timed programming model.
func NewEEPROM(name string, base, size uint64, clk clock) *EEPROM {
	return &EEPROM{
		array: newArray(ecbus.SlaveConfig{
			Name: name, Base: base, Size: size,
			AddrWait: 1, ReadWait: 2, WriteWait: 3,
			Readable: true, Writable: true, Executable: true,
		}),
		clk:           clk,
		ProgramCycles: 32,
	}
}

// WriteWord merges lanes and starts a programming cycle.
func (e *EEPROM) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	if !e.cfg.Contains(addr) {
		return false
	}
	old := e.word(addr)
	e.setWord(addr, data, laneMask(addr, w))
	e.last = inflight{addr: addr &^ 3, old: old, next: e.word(addr)}
	e.busyUntil = e.clk.Cycle() + e.ProgramCycles
	e.programs++
	return true
}

// TearAt applies the partial-write corruption model for a power loss at
// the given cycle: if it lands inside the current programming window,
// the interrupted word is left in a seeded indeterminate state (written
// into the array) and returned; otherwise the storage is untouched.
func (e *EEPROM) TearAt(cycle, seed uint64) (TornWord, bool) {
	return tearAt(&e.array, e.last, e.programs, e.busyUntil, cycle, seed)
}

// ExtraWait stalls any access landing inside a programming cycle.
func (e *EEPROM) ExtraWait(_ ecbus.Kind, _ uint64) int {
	now := e.clk.Cycle()
	if now >= e.busyUntil {
		return 0
	}
	return int(e.busyUntil - now)
}

// Programs returns the number of programming operations performed.
func (e *EEPROM) Programs() uint64 { return e.programs }

// BusyUntil returns the first cycle at which the device is no longer in
// a self-timed programming cycle (0 when never programmed). Exposed for
// idle-skip tests: the stall is a pure function of the kernel cycle, so
// fast-forwarding across it must not change the sampled wait states.
func (e *EEPROM) BusyUntil() uint64 { return e.busyUntil }

// Flash models the 64 kB program flash: fast reads, slow block-oriented
// writes with a shorter self-timed phase than EEPROM.
type Flash struct {
	array
	clk           clock
	busyUntil     uint64
	ProgramCycles uint64
	programs      uint64 // completed programming operations
	last          inflight
}

// NewFlash creates a Flash slave.
func NewFlash(name string, base, size uint64, clk clock) *Flash {
	return &Flash{
		array: newArray(ecbus.SlaveConfig{
			Name: name, Base: base, Size: size,
			AddrWait: 0, ReadWait: 1, WriteWait: 2,
			Readable: true, Writable: true, Executable: true,
		}),
		clk:           clk,
		ProgramCycles: 12,
	}
}

// WriteWord merges lanes and starts the programming phase.
func (f *Flash) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	if !f.cfg.Contains(addr) {
		return false
	}
	old := f.word(addr)
	f.setWord(addr, data, laneMask(addr, w))
	f.last = inflight{addr: addr &^ 3, old: old, next: f.word(addr)}
	f.busyUntil = f.clk.Cycle() + f.ProgramCycles
	f.programs++
	return true
}

// Programs returns the number of programming operations performed.
func (f *Flash) Programs() uint64 { return f.programs }

// TearAt applies the partial-write corruption model for a power loss at
// the given cycle; see EEPROM.TearAt.
func (f *Flash) TearAt(cycle, seed uint64) (TornWord, bool) {
	return tearAt(&f.array, f.last, f.programs, f.busyUntil, cycle, seed)
}

// ExtraWait stalls accesses during programming.
func (f *Flash) ExtraWait(_ ecbus.Kind, _ uint64) int {
	now := f.clk.Cycle()
	if now >= f.busyUntil {
		return 0
	}
	return int(f.busyUntil - now)
}

// BusyUntil returns the first cycle at which the device is no longer in
// a self-timed programming phase (0 when never programmed).
func (f *Flash) BusyUntil() uint64 { return f.busyUntil }
