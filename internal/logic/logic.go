// Package logic provides bit-vector utilities shared by all abstraction
// levels: Hamming-distance and transition counting, per-bit transition
// classification (rise / fall / to-Z / from-Z), and a small LFSR used for
// deterministic pseudo-random stimulus and the simulated true-RNG
// peripheral.
//
// The gate-level power estimator (package gatepower) distinguishes
// transition types the way the paper's Diesel tool does ("the number of
// transitions between false, true and high-impedance"); the layer-1 TLM
// energy model deliberately collapses them to plain transition counts.
package logic

import "math/bits"

// TransitionKind classifies a single-bit value change.
type TransitionKind int

// Transition kinds between the three wire states false, true and Z.
const (
	NoChange TransitionKind = iota
	Rise                    // 0 -> 1
	Fall                    // 1 -> 0
	ToZ                     // 0/1 -> Z
	FromZ0                  // Z -> 0
	FromZ1                  // Z -> 1
)

// String returns a short mnemonic for the transition kind.
func (t TransitionKind) String() string {
	switch t {
	case NoChange:
		return "-"
	case Rise:
		return "r"
	case Fall:
		return "f"
	case ToZ:
		return "z"
	case FromZ0:
		return "Z0"
	case FromZ1:
		return "Z1"
	default:
		return "?"
	}
}

// Hamming returns the number of differing bits between a and b restricted
// to the low `width` bits. Width must be in [0, 64].
func Hamming(a, b uint64, width int) int {
	return HammingMasked(a, b, Mask(width))
}

// HammingMasked is Hamming with a caller-precomputed width mask, for hot
// loops that would otherwise rebuild the mask every cycle.
func HammingMasked(a, b, mask uint64) int {
	return bits.OnesCount64((a ^ b) & mask)
}

// Mask returns a mask with the low `width` bits set. Width is clamped to
// [0, 64].
func Mask(width int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Rises returns the number of 0->1 transitions between old and new within
// the low `width` bits.
func Rises(old, new uint64, width int) int {
	return RisesMasked(old, new, Mask(width))
}

// RisesMasked is Rises with a caller-precomputed width mask.
func RisesMasked(old, new, mask uint64) int {
	return bits.OnesCount64(^old & new & mask)
}

// Falls returns the number of 1->0 transitions between old and new within
// the low `width` bits.
func Falls(old, new uint64, width int) int {
	return FallsMasked(old, new, Mask(width))
}

// FallsMasked is Falls with a caller-precomputed width mask.
func FallsMasked(old, new, mask uint64) int {
	return bits.OnesCount64(old & ^new & mask)
}

// CoupledSame returns the number of adjacent bit pairs that transition in
// the same direction (both rise or both fall), and CoupledOpposite the
// number that transition in opposite directions. Adjacent same-direction
// switching reduces effective Miller capacitance; opposite-direction
// switching increases it. Width must be >= 2 for a nonzero result.
func CoupledSame(old, new uint64, width int) int {
	return CoupledSameMasked(old, new, Mask(width))
}

// CoupledSameMasked is CoupledSame with a caller-precomputed width mask.
func CoupledSameMasked(old, new, mask uint64) int {
	r := ^old & new & mask
	f := old & ^new & mask
	return bits.OnesCount64(r&(r>>1)) + bits.OnesCount64(f&(f>>1))
}

// CoupledOpposite counts adjacent bit pairs switching in opposite
// directions between old and new within the low `width` bits.
func CoupledOpposite(old, new uint64, width int) int {
	return CoupledOppositeMasked(old, new, Mask(width))
}

// CoupledOppositeMasked is CoupledOpposite with a caller-precomputed
// width mask.
func CoupledOppositeMasked(old, new, mask uint64) int {
	r := ^old & new & mask
	f := old & ^new & mask
	return bits.OnesCount64(r&(f>>1)) + bits.OnesCount64(f&(r>>1))
}

// Classify returns the transition kind of bit `bit` between old and new
// values with corresponding high-impedance flags. A bit is Z when its
// z-mask bit is set, regardless of the data bit.
func Classify(oldVal, newVal, oldZ, newZ uint64, bit int) TransitionKind {
	m := uint64(1) << uint(bit)
	oz, nz := oldZ&m != 0, newZ&m != 0
	ov, nv := oldVal&m != 0, newVal&m != 0
	switch {
	case oz && nz:
		return NoChange
	case oz && !nz && nv:
		return FromZ1
	case oz && !nz && !nv:
		return FromZ0
	case !oz && nz:
		return ToZ
	case !ov && nv:
		return Rise
	case ov && !nv:
		return Fall
	default:
		return NoChange
	}
}

// Mix64 is a 64-bit finalizer (splitmix64): it breaks the linear bit
// dependences of raw LFSR states, producing values whose bits behave
// independently — required wherever stimulus bits must be uncorrelated
// (e.g. DPA plaintext campaigns).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// LFSR is a 64-bit maximal-length linear feedback shift register used for
// deterministic stimulus generation. The zero value is invalid; use
// NewLFSR.
type LFSR struct {
	state uint64
}

// NewLFSR returns an LFSR seeded with the given nonzero seed. A zero seed
// is replaced by a fixed nonzero constant so the register never locks up.
func NewLFSR(seed uint64) *LFSR {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &LFSR{state: seed}
}

// Next advances the register and returns the new 64-bit state. The
// feedback polynomial is x^64 + x^63 + x^61 + x^60 + 1 (taps 63,62,60,59).
func (l *LFSR) Next() uint64 {
	s := l.state
	b := ((s >> 63) ^ (s >> 62) ^ (s >> 60) ^ (s >> 59)) & 1
	l.state = (s << 1) | b
	return l.state
}

// NextN returns the low n bits of the next LFSR state. n must be in
// [1, 64].
func (l *LFSR) NextN(n int) uint64 {
	return l.Next() & Mask(n)
}

// NextBool returns a pseudo-random bit.
func (l *LFSR) NextBool() bool { return l.Next()&1 == 1 }

// NextRange returns a value in [0, n) for n > 0. The modulo bias is
// irrelevant for stimulus generation.
func (l *LFSR) NextRange(n int) int {
	if n <= 0 {
		return 0
	}
	return int(l.Next() % uint64(n))
}
