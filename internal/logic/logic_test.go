package logic

import (
	"testing"
	"testing/quick"
)

func TestHamming(t *testing.T) {
	cases := []struct {
		a, b  uint64
		width int
		want  int
	}{
		{0, 0, 32, 0},
		{0xFF, 0x00, 8, 8},
		{0xFF, 0x00, 4, 4},
		{0b1010, 0b0101, 4, 4},
		{^uint64(0), 0, 64, 64},
		{^uint64(0), 0, 0, 0},
		{0x8000000000000000, 0, 64, 1},
		{0x8000000000000000, 0, 63, 0},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b, c.width); got != c.want {
			t.Errorf("Hamming(%#x,%#x,%d) = %d, want %d", c.a, c.b, c.width, got, c.want)
		}
	}
}

func TestRisesFallsPartitionHamming(t *testing.T) {
	f := func(old, new uint64, w uint8) bool {
		width := int(w % 65)
		return Rises(old, new, width)+Falls(old, new, width) == Hamming(old, new, width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingSymmetric(t *testing.T) {
	f := func(a, b uint64, w uint8) bool {
		width := int(w % 65)
		return Hamming(a, b, width) == Hamming(b, a, width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingTriangleInequality(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Hamming(a, c, 64) <= Hamming(a, b, 64)+Hamming(b, c, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) != 0")
	}
	if Mask(-3) != 0 {
		t.Error("Mask(-3) != 0")
	}
	if Mask(8) != 0xFF {
		t.Error("Mask(8) != 0xFF")
	}
	if Mask(64) != ^uint64(0) {
		t.Error("Mask(64) wrong")
	}
	if Mask(99) != ^uint64(0) {
		t.Error("Mask(99) should clamp to 64")
	}
}

func TestCoupling(t *testing.T) {
	// bits 0 and 1 both rise: one same-direction pair.
	if got := CoupledSame(0b00, 0b11, 2); got != 1 {
		t.Errorf("CoupledSame both-rise = %d, want 1", got)
	}
	// bit 0 rises, bit 1 falls: one opposite pair.
	if got := CoupledOpposite(0b10, 0b01, 2); got != 1 {
		t.Errorf("CoupledOpposite = %d, want 1", got)
	}
	// Non-adjacent transitions couple with nothing.
	if got := CoupledSame(0b000, 0b101, 3); got != 0 {
		t.Errorf("CoupledSame non-adjacent = %d, want 0", got)
	}
	if got := CoupledOpposite(0b000, 0b101, 3); got != 0 {
		t.Errorf("CoupledOpposite non-adjacent = %d, want 0", got)
	}
	// 0b0000 -> 0b1111: three adjacent same-direction pairs.
	if got := CoupledSame(0, 0xF, 4); got != 3 {
		t.Errorf("CoupledSame all-rise = %d, want 3", got)
	}
}

func TestCouplingWidthLimits(t *testing.T) {
	// Transition at bit 4 must not couple when width is 4.
	if got := CoupledSame(0, 0b11000, 4); got != 0 {
		t.Errorf("coupling beyond width counted: %d", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		ov, nv, oz, nz uint64
		bit            int
		want           TransitionKind
	}{
		{0, 1, 0, 0, 0, Rise},
		{1, 0, 0, 0, 0, Fall},
		{0, 0, 0, 0, 0, NoChange},
		{1, 1, 0, 0, 0, NoChange},
		{1, 0, 0, 1, 0, ToZ},
		{0, 1, 1, 0, 0, FromZ1},
		{0, 0, 1, 0, 0, FromZ0},
		{1, 1, 1, 1, 0, NoChange},
		{0b10, 0b00, 0, 0, 1, Fall},
	}
	for _, c := range cases {
		if got := Classify(c.ov, c.nv, c.oz, c.nz, c.bit); got != c.want {
			t.Errorf("Classify(%b,%b,%b,%b,bit %d) = %v, want %v",
				c.ov, c.nv, c.oz, c.nz, c.bit, got, c.want)
		}
	}
}

func TestTransitionKindString(t *testing.T) {
	kinds := []TransitionKind{NoChange, Rise, Fall, ToZ, FromZ0, FromZ1, TransitionKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestLFSRDeterministicAndNonTrivial(t *testing.T) {
	a, b := NewLFSR(1), NewLFSR(1)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed LFSRs diverged")
		}
	}
	c := NewLFSR(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestLFSRZeroSeed(t *testing.T) {
	l := NewLFSR(0)
	if l.Next() == 0 && l.Next() == 0 {
		t.Fatal("zero-seed LFSR locked up")
	}
}

func TestLFSRPeriodNotShort(t *testing.T) {
	l := NewLFSR(0xDEADBEEF)
	first := l.Next()
	for i := 0; i < 100000; i++ {
		if l.Next() == first && i > 0 {
			// Returning to the first value this early would indicate a
			// short cycle; the maximal-length polynomial should not.
			t.Fatalf("LFSR cycled after %d steps", i)
		}
	}
}

func TestLFSRNextHelpers(t *testing.T) {
	l := NewLFSR(7)
	for i := 0; i < 100; i++ {
		if v := l.NextN(8); v > 0xFF {
			t.Fatalf("NextN(8) = %#x out of range", v)
		}
		if v := l.NextRange(10); v < 0 || v >= 10 {
			t.Fatalf("NextRange(10) = %d out of range", v)
		}
	}
	if l.NextRange(0) != 0 || l.NextRange(-5) != 0 {
		t.Fatal("NextRange with n<=0 should be 0")
	}
	// NextBool should produce both values over a reasonable window.
	seen := map[bool]bool{}
	for i := 0; i < 64; i++ {
		seen[l.NextBool()] = true
	}
	if !seen[true] || !seen[false] {
		t.Fatal("NextBool never varied")
	}
}

func TestLFSRBitBalance(t *testing.T) {
	l := NewLFSR(123)
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if l.Next()&1 == 1 {
			ones++
		}
	}
	if ones < n*4/10 || ones > n*6/10 {
		t.Fatalf("LFSR LSB heavily biased: %d/%d ones", ones, n)
	}
}
