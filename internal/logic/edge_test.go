package logic

import "testing"

// Width edge cases: every transition counter must return 0 at width 0,
// behave like the full 64-bit comparison at width 64 (and above, since
// Mask clamps), and agree with its precomputed-mask variant everywhere.

func TestTransitionCountersWidthZero(t *testing.T) {
	old, new := ^uint64(0), uint64(0)
	if Hamming(old, new, 0) != 0 {
		t.Error("Hamming width 0 nonzero")
	}
	if Rises(old, new, 0) != 0 || Falls(old, new, 0) != 0 {
		t.Error("Rises/Falls width 0 nonzero")
	}
	if CoupledSame(old, new, 0) != 0 || CoupledOpposite(old, new, 0) != 0 {
		t.Error("coupling width 0 nonzero")
	}
	if Hamming(old, new, -3) != 0 {
		t.Error("negative width not clamped to empty mask")
	}
}

func TestTransitionCountersWidth64(t *testing.T) {
	old := uint64(0xAAAA_AAAA_AAAA_AAAA)
	new := uint64(0x5555_5555_5555_5555)
	if got := Hamming(old, new, 64); got != 64 {
		t.Errorf("Hamming width 64 = %d, want 64", got)
	}
	if got := Rises(old, new, 64); got != 32 {
		t.Errorf("Rises width 64 = %d, want 32", got)
	}
	if got := Falls(old, new, 64); got != 32 {
		t.Errorf("Falls width 64 = %d, want 32", got)
	}
	// All 63 adjacent pairs switch in opposite directions.
	if got := CoupledOpposite(old, new, 64); got != 63 {
		t.Errorf("CoupledOpposite width 64 = %d, want 63", got)
	}
	if got := CoupledSame(old, new, 64); got != 0 {
		t.Errorf("CoupledSame width 64 = %d, want 0", got)
	}
	// All-ones to all-zeros: every pair falls together.
	if got := CoupledSame(^uint64(0), 0, 64); got != 63 {
		t.Errorf("CoupledSame all-fall = %d, want 63", got)
	}
	// Width above 64 clamps to the full word.
	if Hamming(old, new, 65) != Hamming(old, new, 64) {
		t.Error("width > 64 not clamped")
	}
}

// TestMaskedVariantsAgree checks the precomputed-mask fast paths used by
// the per-cycle estimators against the width-taking originals over
// random values and all widths.
func TestMaskedVariantsAgree(t *testing.T) {
	r := NewLFSR(0xfeed)
	for i := 0; i < 200; i++ {
		old, new := Mix64(r.Next()), Mix64(r.Next())
		for _, w := range []int{0, 1, 2, 7, 31, 32, 36, 63, 64} {
			m := Mask(w)
			if Hamming(old, new, w) != HammingMasked(old, new, m) {
				t.Fatalf("HammingMasked disagrees at width %d", w)
			}
			if Rises(old, new, w) != RisesMasked(old, new, m) {
				t.Fatalf("RisesMasked disagrees at width %d", w)
			}
			if Falls(old, new, w) != FallsMasked(old, new, m) {
				t.Fatalf("FallsMasked disagrees at width %d", w)
			}
			if CoupledSame(old, new, w) != CoupledSameMasked(old, new, m) {
				t.Fatalf("CoupledSameMasked disagrees at width %d", w)
			}
			if CoupledOpposite(old, new, w) != CoupledOppositeMasked(old, new, m) {
				t.Fatalf("CoupledOppositeMasked disagrees at width %d", w)
			}
		}
	}
}

// TestClassifyZTransitions covers every transition involving the
// high-impedance state, including the data bit being ignored while Z.
func TestClassifyZTransitions(t *testing.T) {
	const b = 3
	m := uint64(1) << b
	cases := []struct {
		name       string
		oldV, newV uint64
		oldZ, newZ uint64
		want       TransitionKind
	}{
		{"Z to Z ignores data", 0, m, m, m, NoChange},
		{"Z to 1", 0, m, m, 0, FromZ1},
		{"Z to 0", m, 0, m, 0, FromZ0},
		{"1 to Z", m, m, 0, m, ToZ},
		{"0 to Z", 0, 0, 0, m, ToZ},
		{"rise", 0, m, 0, 0, Rise},
		{"fall", m, 0, 0, 0, Fall},
		{"steady 1", m, m, 0, 0, NoChange},
		{"steady 0", 0, 0, 0, 0, NoChange},
	}
	for _, c := range cases {
		if got := Classify(c.oldV, c.newV, c.oldZ, c.newZ, b); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}
