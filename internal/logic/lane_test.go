package logic

import (
	"math/bits"
	"testing"
)

// Satellite coverage for the lane-word edge cases the batched engine
// depends on: empty and full packs, all-lanes-idle early-outs, a single
// live lane in the active mask, and Classify-Z interaction under packing.

func TestLaneWidthZeroAndFullPacks(t *testing.T) {
	// Width-0 pack: no active lanes — every helper must return zero no
	// matter how the inactive bits toggle.
	old, new := uint64(0xDEADBEEF12345678), uint64(0x0F0F0F0FF0F0F0F0)
	if got := LaneChanged(old, new, 0); got != 0 {
		t.Fatalf("LaneChanged with empty active mask = %#x, want 0", got)
	}
	if got := LaneRises(old, new, 0); got != 0 {
		t.Fatalf("LaneRises with empty active mask = %#x, want 0", got)
	}
	if got := LaneFalls(old, new, 0); got != 0 {
		t.Fatalf("LaneFalls with empty active mask = %#x, want 0", got)
	}

	// Width-64 pack: the full mask must reproduce the plain bitwise
	// answers, including lane 63.
	full := ^uint64(0)
	if got := LaneChanged(0, full, full); got != full {
		t.Fatalf("LaneChanged full pack = %#x, want all lanes", got)
	}
	if got := LaneRises(0, full, full); got != full {
		t.Fatalf("LaneRises full pack = %#x, want all lanes", got)
	}
	if got := LaneFalls(full, 0, full); got != full {
		t.Fatalf("LaneFalls full pack = %#x, want all lanes", got)
	}
	if got := LaneRises(full, 0, full); got != 0 {
		t.Fatalf("LaneRises on all-falls word = %#x, want 0", got)
	}
}

func TestLaneAllIdleEarlyOut(t *testing.T) {
	// The engine's idle early-out is `LaneChanged(...) == 0`: an
	// unchanged word must report no work even with every lane active.
	w := uint64(0xA5A5A5A5A5A5A5A5)
	if got := LaneChanged(w, w, ^uint64(0)); got != 0 {
		t.Fatalf("unchanged word reports changed lanes %#x", got)
	}
	// Rises and falls of an unchanged word are empty too, so pricing
	// loops over set bits run zero iterations.
	if r, f := LaneRises(w, w, ^uint64(0)), LaneFalls(w, w, ^uint64(0)); r != 0 || f != 0 {
		t.Fatalf("unchanged word reports rises %#x falls %#x", r, f)
	}
}

func TestLaneSingleLiveLane(t *testing.T) {
	// Only lane 17 is live; every other lane toggles wildly and must be
	// invisible. This is the drained-lattice shape near the end of a
	// campaign when one long run is still executing.
	for _, lane := range []int{0, 17, 63} {
		active := uint64(1) << uint(lane)
		noise := ^active // all dead lanes flip 0 -> 1
		if got := LaneChanged(0, noise|active, active); got != active {
			t.Fatalf("lane %d: changed = %#x, want %#x", lane, got, active)
		}
		if got := LaneRises(0, noise|active, active); got != active {
			t.Fatalf("lane %d: rises = %#x, want %#x", lane, got, active)
		}
		if got := LaneFalls(active|noise, noise, active); got != active {
			t.Fatalf("lane %d: falls = %#x, want %#x", lane, got, active)
		}
		if n := bits.OnesCount64(LaneChanged(0, noise, active)); n != 0 {
			t.Fatalf("lane %d: dead-lane noise counted %d transitions", lane, n)
		}
	}
}

func TestLaneClassifyUnderPacking(t *testing.T) {
	// LaneClassify must agree with the generic Z-aware Classify when the
	// Z-masks are zero, lane by lane across a packed word.
	old, new := uint64(0b0110), uint64(0b0011)
	want := []TransitionKind{Rise, NoChange, Fall, NoChange}
	for lane, w := range want {
		if got := LaneClassify(old, new, lane); got != w {
			t.Fatalf("lane %d: LaneClassify = %v, want %v", lane, got, w)
		}
		if got := Classify(old, new, 0, 0, lane); got != w {
			t.Fatalf("lane %d: Classify cross-check = %v, want %v", lane, got, w)
		}
	}
	// A tri-stated bit in the generic classifier has no packed analogue:
	// packing promises fully-driven wires. Verify the distinction is
	// real — the same value change classifies differently once a Z-mask
	// is involved, which is why the engine must never pack Z-capable
	// wires.
	if got := Classify(0, 1, 1, 0, 0); got != FromZ1 {
		t.Fatalf("Z-aware classify = %v, want FromZ1", got)
	}
	if got := LaneClassify(0, 1, 0); got != Rise {
		t.Fatalf("packed classify = %v, want Rise", got)
	}
	// Lane 63 end-of-word classification.
	top := uint64(1) << 63
	if got := LaneClassify(0, top, 63); got != Rise {
		t.Fatalf("lane 63 classify = %v, want Rise", got)
	}
	if got := LaneClassify(top, 0, 63); got != Fall {
		t.Fatalf("lane 63 classify = %v, want Fall", got)
	}
}
