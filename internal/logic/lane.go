package logic

// Lane-word helpers for the batched structure-of-arrays engine
// (internal/batch): one uint64 packs the same single-bit wire across up
// to 64 concurrent corpus runs, one lane per bit. Every helper takes an
// active-lane mask and restricts its answer to live lanes, so drained
// lanes — whose bits are parked at zero between runs — can never
// contribute phantom transitions.

// LaneChanged returns the active lanes whose wire value differs between
// the old and new packed words.
func LaneChanged(old, new, active uint64) uint64 {
	return (old ^ new) & active
}

// LaneRises returns the active lanes whose wire rose 0 -> 1.
func LaneRises(old, new, active uint64) uint64 {
	return ^old & new & active
}

// LaneFalls returns the active lanes whose wire fell 1 -> 0.
func LaneFalls(old, new, active uint64) uint64 {
	return old & ^new & active
}

// LaneClassify classifies one lane's bit transition between two packed
// words. Packed lane wires are always driven (never tri-stated), so both
// Z-masks are zero and the result is one of NoChange, Rise or Fall.
func LaneClassify(old, new uint64, lane int) TransitionKind {
	return Classify(old, new, 0, 0, lane)
}
