package calib

import (
	"fmt"
	"math"
	"testing"
)

// synthSamples builds samples from a known linear law y = coef·x with
// a deterministic pseudo-random design, so the fit has a ground truth.
func synthSamples(t *testing.T, n int, energyCoef, cycleCoef []float64) []Sample {
	t.Helper()
	p := len(energyCoef)
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		x := make([]float64, p)
		for j := range x {
			x[j] = float64(next() % 1000)
		}
		var e, c float64
		for j := range x {
			e += energyCoef[j] * x[j]
			c += cycleCoef[j] * x[j]
		}
		out[i] = Sample{Layer: 2, Key: fmt.Sprintf("cfg-%03d", i), X: x, EnergyJ: e, Cycles: c}
	}
	return out
}

func TestFitRecoversExactLinearLaw(t *testing.T) {
	energy := []float64{1.5e-12, 0, 3.25e-12, 7e-13}
	cycles := []float64{2, 1, 0, 4}
	samples := synthSamples(t, 40, energy, cycles)
	m, err := Fit([]string{"a", "b", "c", "d"}, samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	lm := m.Fits[GroupKey{Layer: 2}]
	// Tolerances are relative to each coefficient vector's magnitude
	// (energy coefficients live at ~1e-12, cycle ones at ~1e0), so an
	// exactly-zero entry is allowed the same numerical slack as the rest.
	scaleOf := func(v []float64) float64 {
		s := 0.0
		for _, c := range v {
			if a := math.Abs(c); a > s {
				s = a
			}
		}
		return s
	}
	eScale, cScale := scaleOf(energy), scaleOf(cycles)
	for j := range energy {
		if math.Abs(lm.EnergyCoef[j]-energy[j]) > 1e-9*eScale {
			t.Errorf("energy coef %d: got %g want %g", j, lm.EnergyCoef[j], energy[j])
		}
		if math.Abs(lm.CycleCoef[j]-cycles[j]) > 1e-9*cScale {
			t.Errorf("cycle coef %d: got %g want %g", j, lm.CycleCoef[j], cycles[j])
		}
	}
	if lm.EnergyMaxRel > 1e-9 || lm.CycleMaxRel > 1e-9 {
		t.Errorf("exact law should fit with ~zero residual, got energy %g cycles %g",
			lm.EnergyMaxRel, lm.CycleMaxRel)
	}
	eJ, cyc, err := m.Predict(2, "", []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	wantE := energy[0] + energy[1] + energy[2] + energy[3]
	if math.Abs(eJ-wantE)/wantE > 1e-9 {
		t.Errorf("Predict energy = %g, want %g", eJ, wantE)
	}
	if math.Abs(cyc-7)/7 > 1e-9 {
		t.Errorf("Predict cycles = %g, want 7", cyc)
	}
}

// TestFitDeterministicUnderPermutation is the calibration determinism
// property: refitting on a permuted sample set must yield bit-identical
// coefficients and residual stats.
func TestFitDeterministicUnderPermutation(t *testing.T) {
	samples := synthSamples(t, 60, []float64{1e-12, 2e-12, 0, 5e-13}, []float64{3, 0, 1, 2})
	// Perturb targets so the system is overdetermined with nonzero
	// residual (the interesting case for determinism).
	for i := range samples {
		bump := 1 + 0.01*math.Sin(float64(i))
		samples[i].EnergyJ *= bump
		samples[i].Cycles *= bump
	}
	features := []string{"a", "b", "c", "d"}
	base, err := Fit(features, samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	perms := [][]int{reversed(len(samples)), rotated(len(samples), 17), shuffled(len(samples), 0xDEAD)}
	for pi, perm := range perms {
		permuted := make([]Sample, len(samples))
		for i, src := range perm {
			permuted[i] = samples[src]
		}
		got, err := Fit(features, permuted)
		if err != nil {
			t.Fatalf("Fit permuted %d: %v", pi, err)
		}
		lb, lg := base.Fits[GroupKey{Layer: 2}], got.Fits[GroupKey{Layer: 2}]
		for j := range lb.EnergyCoef {
			if math.Float64bits(lb.EnergyCoef[j]) != math.Float64bits(lg.EnergyCoef[j]) {
				t.Errorf("perm %d: energy coef %d differs: %x vs %x", pi, j,
					math.Float64bits(lb.EnergyCoef[j]), math.Float64bits(lg.EnergyCoef[j]))
			}
			if math.Float64bits(lb.CycleCoef[j]) != math.Float64bits(lg.CycleCoef[j]) {
				t.Errorf("perm %d: cycle coef %d differs", pi, j)
			}
		}
		if math.Float64bits(lb.EnergyMaxRel) != math.Float64bits(lg.EnergyMaxRel) ||
			math.Float64bits(lb.EnergyRMSRel) != math.Float64bits(lg.EnergyRMSRel) {
			t.Errorf("perm %d: energy residual band differs", pi)
		}
	}
}

func reversed(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

func rotated(n, k int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i + k) % n
	}
	return p
}

func shuffled(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	state := seed
	for i := n - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// TestFitDropsDegenerateColumns: an all-zero column (error phases on a
// clean calibration set) and an exact duplicate column must both get a
// deterministic zero coefficient instead of blowing up the solve.
func TestFitDropsDegenerateColumns(t *testing.T) {
	samples := synthSamples(t, 30, []float64{2e-12, 1e-12, 4e-13}, []float64{1, 2, 3})
	// Extend every X with a zero column and a copy of column 0.
	for i := range samples {
		x := samples[i].X
		samples[i].X = append(append([]float64(nil), x...), 0, x[0])
	}
	m, err := Fit([]string{"a", "b", "c", "zero", "dup-a"}, samples)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	lm := m.Fits[GroupKey{Layer: 2}]
	if lm.EnergyCoef[3] != 0 || lm.CycleCoef[3] != 0 {
		t.Errorf("zero column should have coefficient 0, got %g / %g", lm.EnergyCoef[3], lm.CycleCoef[3])
	}
	// The duplicate pair (a, dup-a) is rank-deficient: exactly one of
	// the two carries the weight, the other is dropped to zero, and the
	// predictions still reproduce the law.
	if lm.EnergyCoef[0] != 0 && lm.EnergyCoef[4] != 0 {
		t.Errorf("duplicate columns both nonzero: %g and %g", lm.EnergyCoef[0], lm.EnergyCoef[4])
	}
	if lm.EnergyMaxRel > 1e-9 {
		t.Errorf("degenerate columns should not hurt the fit, residual %g", lm.EnergyMaxRel)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, []Sample{{Layer: 1, Key: "x", X: nil}}); err == nil {
		t.Error("empty feature list should fail")
	}
	if _, err := Fit([]string{"a"}, nil); err == nil {
		t.Error("no samples should fail")
	}
	if _, err := Fit([]string{"a"}, []Sample{{Layer: 1, Key: "x", X: []float64{1, 2}}}); err == nil {
		t.Error("feature-count mismatch should fail")
	}
	dup := []Sample{
		{Layer: 1, Key: "x", X: []float64{1}, EnergyJ: 1, Cycles: 1},
		{Layer: 1, Key: "x", X: []float64{2}, EnergyJ: 2, Cycles: 2},
	}
	if _, err := Fit([]string{"a"}, dup); err == nil {
		t.Error("duplicate sample keys should fail")
	}
}

func TestPredictAndEpsilonErrors(t *testing.T) {
	m, err := Fit([]string{"a"}, []Sample{
		{Layer: 2, Key: "p", X: []float64{1}, EnergyJ: 2e-12, Cycles: 10},
		{Layer: 2, Key: "q", X: []float64{2}, EnergyJ: 4.2e-12, Cycles: 21},
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, _, err := m.Predict(7, "", []float64{1}); err == nil {
		t.Error("unknown layer should fail Predict")
	}
	if _, _, err := m.Predict(2, "", []float64{1, 2}); err == nil {
		t.Error("wrong vector length should fail Predict")
	}
	if _, _, err := m.Epsilon(7, "", 2); err == nil {
		t.Error("unknown layer should fail Epsilon")
	}
	eE, eC, err := m.Epsilon(2, "", 2)
	if err != nil {
		t.Fatalf("Epsilon: %v", err)
	}
	lm := m.Fits[GroupKey{Layer: 2}]
	if eE != 2*lm.EnergyMaxRel || eC != 2*lm.CycleMaxRel {
		t.Errorf("Epsilon should scale the max-rel band: got %g/%g band %g/%g",
			eE, eC, lm.EnergyMaxRel, lm.CycleMaxRel)
	}
	if lm.EnergyMaxRel <= 0 {
		t.Error("perturbed fit should have a nonzero residual band")
	}
	// Safety below 1 clamps to 1 (never shrink the observed band).
	e1, _, _ := m.Epsilon(2, "", 0.5)
	if e1 != lm.EnergyMaxRel {
		t.Errorf("safety < 1 should clamp to the band itself, got %g want %g", e1, lm.EnergyMaxRel)
	}
}

// TestFitGroupsIndependently: samples tagged with different groups get
// independent regressions — each group recovers its own law even when
// the laws disagree, and Band aggregates the worst case.
func TestFitGroupsIndependently(t *testing.T) {
	a := synthSamples(t, 25, []float64{1e-12, 2e-12, 0, 4e-13}, []float64{1, 2, 3, 4})
	b := synthSamples(t, 25, []float64{9e-12, 1e-13, 5e-12, 0}, []float64{4, 3, 2, 1})
	for i := range a {
		a[i].Group = "alpha"
	}
	for i := range b {
		b[i].Group = "beta"
		b[i].EnergyJ *= 1 + 0.02*math.Sin(float64(i)) // beta carries residual
	}
	m, err := Fit([]string{"a", "b", "c", "d"}, append(a, b...))
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	la, lb := m.Fits[GroupKey{2, "alpha"}], m.Fits[GroupKey{2, "beta"}]
	if la.Samples != 25 || lb.Samples != 25 {
		t.Fatalf("group sample counts: %d / %d", la.Samples, lb.Samples)
	}
	if math.Abs(la.EnergyCoef[0]-1e-12) > 1e-21 {
		t.Errorf("alpha coef 0 = %g, want 1e-12", la.EnergyCoef[0])
	}
	if la.EnergyMaxRel > 1e-9 {
		t.Errorf("alpha is an exact law, residual %g", la.EnergyMaxRel)
	}
	if lb.EnergyMaxRel < 1e-3 {
		t.Errorf("beta carries a perturbation, residual %g too small", lb.EnergyMaxRel)
	}
	eMax, _, ok := m.Band(2)
	if !ok || eMax != lb.EnergyMaxRel {
		t.Errorf("Band should report the worst group: got %g ok=%v want %g", eMax, ok, lb.EnergyMaxRel)
	}
	if _, _, err := m.Predict(2, "gamma", []float64{1, 1, 1, 1}); err == nil {
		t.Error("unknown group should fail Predict")
	}
	if _, _, ok := m.Band(9); ok {
		t.Error("Band of unfitted layer should report !ok")
	}
}
