package calib

import (
	"errors"
	"math"
)

// pivotTol is the scaled-pivot threshold below which a column is
// treated as linearly dependent on its predecessors and dropped to a
// zero coefficient. The normal equations are built on unit-scaled
// columns, so diagonal entries of an independent column are O(n);
// exact duplicates eliminate down to rounding noise (~1e-14·n), while
// genuinely distinct-but-correlated count features keep pivots many
// orders above this.
const pivotTol = 1e-9

// solveLSQ computes the least-squares coefficients of y ≈ rows·coef
// via the normal equations with per-column unit scaling (the raw
// features span ~1e0..1e5 counts against ~1e-12 J targets, so scaling
// is what keeps the solve conditioned) and Gaussian elimination with
// partial pivoting. All-zero and linearly dependent columns get a
// deterministic zero coefficient. Every floating-point operation runs
// in a fixed order, so the result is bit-stable for a fixed row order.
func solveLSQ(rows [][]float64, y []float64, p int) ([]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("no samples")
	}

	// Column scales: the max absolute entry, 0 for an all-zero column.
	scale := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			if a := math.Abs(rows[i][j]); a > scale[j] {
				scale[j] = a
			}
		}
	}

	xs := func(i, j int) float64 {
		if scale[j] == 0 {
			return 0
		}
		return rows[i][j] / scale[j]
	}

	// Normal equations on the scaled system: A = Xsᵀ·Xs, b = Xsᵀ·y.
	a := make([][]float64, p)
	for j := range a {
		a[j] = make([]float64, p)
	}
	b := make([]float64, p)
	for j := 0; j < p; j++ {
		for k := j; k < p; k++ {
			var s float64
			for i := 0; i < n; i++ {
				s += xs(i, j) * xs(i, k)
			}
			a[j][k] = s
			a[k][j] = s
		}
		var s float64
		for i := 0; i < n; i++ {
			s += xs(i, j) * y[i]
		}
		b[j] = s
	}

	// Gaussian elimination, partial pivoting. A step whose best pivot
	// falls under pivotTol marks the column dependent: its row becomes
	// the identity equation coef=0 and the column is zeroed below, so
	// the remaining solve proceeds as if the feature were absent.
	for k := 0; k < p; k++ {
		piv, pa := k, math.Abs(a[k][k])
		for i := k + 1; i < p; i++ {
			if ab := math.Abs(a[i][k]); ab > pa {
				piv, pa = i, ab
			}
		}
		if pa <= pivotTol {
			for i := k; i < p; i++ {
				a[i][k] = 0
			}
			for j := k + 1; j < p; j++ {
				a[k][j] = 0
			}
			a[k][k] = 1
			b[k] = 0
			continue
		}
		if piv != k {
			a[piv], a[k] = a[k], a[piv]
			b[piv], b[k] = b[k], b[piv]
		}
		for i := k + 1; i < p; i++ {
			f := a[i][k] / a[k][k]
			if f == 0 {
				continue
			}
			a[i][k] = 0
			for j := k + 1; j < p; j++ {
				a[i][j] -= f * a[k][j]
			}
			b[i] -= f * b[k]
		}
	}

	// Back substitution, then undo the column scaling.
	coef := make([]float64, p)
	for k := p - 1; k >= 0; k-- {
		s := b[k]
		for j := k + 1; j < p; j++ {
			s -= a[k][j] * coef[j]
		}
		coef[k] = s / a[k][k]
	}
	for j := 0; j < p; j++ {
		if scale[j] == 0 {
			coef[j] = 0
		} else {
			coef[j] /= scale[j]
		}
	}
	return coef, nil
}
