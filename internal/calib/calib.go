// Package calib fits and evaluates linear analytic models that map
// per-phase event counts to energy and cycle predictions — the
// characterization step of the layer-3 fast path. The fit follows the
// static-analysis estimation line (per-event counts × calibrated
// per-event coefficients): a small set of exact runs at the timed
// layers yields, by least squares, one coefficient vector per target
// layer and calibration group plus a quantified residual band. The band
// is what makes the model usable for pruning: a screening sweep can
// inflate predictions by the observed worst-case relative error and
// still make sound keep/drop decisions.
//
// Groups partition the calibration set along axes the linear feature
// model cannot absorb — the explorer groups by SFR organization, whose
// transaction shaping changes the per-event pricing itself. A grouped
// fit is an independent regression per (layer, group), so each group
// carries its own coefficients and its own (much tighter) residual
// band. The empty group name is valid and simply means "one pooled
// fit".
//
// Everything here is deterministic: samples are canonically ordered
// before any floating-point work, the normal-equations solve uses a
// fixed elimination order with deterministic tie-breaking, and
// degenerate columns (all-zero or linearly dependent features, e.g.
// error-phase counts on a fault-free calibration set) are dropped to a
// zero coefficient instead of poisoning the solve. Refitting on a
// permuted sample set yields bit-identical coefficients.
package calib

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Version identifies the model layout and fitting procedure. It is
// folded into content-addressed cache keys by callers that persist
// predictions, so changing the fit invalidates stale entries.
const Version = "calib/3"

// Sample is one calibration observation: the feature vector counted by
// the untimed layer-3 run of a configuration, paired with the exact
// energy and cycle count measured at a timed layer.
type Sample struct {
	Layer   int    // timed layer that produced the measurement (1, 2)
	Group   string // calibration group ("" = pooled fit)
	Key     string // canonical identity of the run (config + workload)
	X       []float64
	EnergyJ float64
	Cycles  float64
}

// GroupKey addresses one fitted coefficient set.
type GroupKey struct {
	Layer int
	Group string
}

// LayerModel holds the fitted coefficients and residual band for one
// (target layer, group) cell.
type LayerModel struct {
	Layer      int
	Group      string
	EnergyCoef []float64
	CycleCoef  []float64
	Samples    int

	// Residual band over the calibration set, as relative errors.
	EnergyMaxRel float64
	EnergyRMSRel float64
	CycleMaxRel  float64
	CycleRMSRel  float64
}

// Model is the persisted, versioned fit: one coefficient set per
// (target layer, group) over a shared feature vocabulary.
type Model struct {
	Version  string
	Features []string
	Fits     map[GroupKey]LayerModel
}

// Fit regresses per-feature coefficients for every (layer, group)
// present in samples. The sample order does not matter: a canonical
// sort happens first, so permuted inputs produce bit-identical models.
func Fit(features []string, samples []Sample) (Model, error) {
	if len(features) == 0 {
		return Model{}, errors.New("calib: empty feature list")
	}
	if len(samples) == 0 {
		return Model{}, errors.New("calib: no samples")
	}
	for i := range samples {
		if len(samples[i].X) != len(features) {
			return Model{}, fmt.Errorf("calib: sample %q has %d features, want %d",
				samples[i].Key, len(samples[i].X), len(features))
		}
	}

	// Canonical order: by layer, group, then key. Keys are expected
	// unique per cell; duplicates would make the fit depend on input
	// order, so reject them.
	sorted := make([]Sample, len(samples))
	copy(sorted, samples)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Layer != sorted[j].Layer {
			return sorted[i].Layer < sorted[j].Layer
		}
		if sorted[i].Group != sorted[j].Group {
			return sorted[i].Group < sorted[j].Group
		}
		return sorted[i].Key < sorted[j].Key
	})
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Layer == sorted[i-1].Layer && sorted[i].Group == sorted[i-1].Group &&
			sorted[i].Key == sorted[i-1].Key {
			return Model{}, fmt.Errorf("calib: duplicate sample key %q at layer %d group %q",
				sorted[i].Key, sorted[i].Layer, sorted[i].Group)
		}
	}

	m := Model{Version: Version, Features: append([]string(nil), features...), Fits: map[GroupKey]LayerModel{}}
	for lo := 0; lo < len(sorted); {
		hi := lo
		for hi < len(sorted) && sorted[hi].Layer == sorted[lo].Layer && sorted[hi].Group == sorted[lo].Group {
			hi++
		}
		cell := sorted[lo:hi]
		lm, err := fitCell(len(features), cell)
		if err != nil {
			return Model{}, fmt.Errorf("calib: layer %d group %q: %w", cell[0].Layer, cell[0].Group, err)
		}
		m.Fits[GroupKey{lm.Layer, lm.Group}] = lm
		lo = hi
	}
	return m, nil
}

func fitCell(p int, cell []Sample) (LayerModel, error) {
	rows := make([][]float64, len(cell))
	ye := make([]float64, len(cell))
	yc := make([]float64, len(cell))
	for i, s := range cell {
		rows[i] = s.X
		ye[i] = s.EnergyJ
		yc[i] = s.Cycles
	}
	ce, err := solveLSQ(rows, ye, p)
	if err != nil {
		return LayerModel{}, err
	}
	cc, err := solveLSQ(rows, yc, p)
	if err != nil {
		return LayerModel{}, err
	}
	lm := LayerModel{
		Layer:      cell[0].Layer,
		Group:      cell[0].Group,
		EnergyCoef: ce,
		CycleCoef:  cc,
		Samples:    len(cell),
	}
	lm.EnergyMaxRel, lm.EnergyRMSRel = residualBand(rows, ye, ce)
	lm.CycleMaxRel, lm.CycleRMSRel = residualBand(rows, yc, cc)
	return lm, nil
}

// residualBand returns the max and RMS relative error of the fitted
// predictions over the calibration rows. Zero-valued targets (which
// cannot carry a relative error) are skipped.
func residualBand(rows [][]float64, y, coef []float64) (maxRel, rmsRel float64) {
	var sumSq float64
	var n int
	for i := range rows {
		if y[i] == 0 {
			continue
		}
		rel := math.Abs(dot(coef, rows[i])-y[i]) / math.Abs(y[i])
		if rel > maxRel {
			maxRel = rel
		}
		sumSq += rel * rel
		n++
	}
	if n > 0 {
		rmsRel = math.Sqrt(sumSq / float64(n))
	}
	return maxRel, rmsRel
}

func dot(coef, x []float64) float64 {
	var s float64
	for i := range coef {
		s += coef[i] * x[i]
	}
	return s
}

// Predict evaluates the fitted model for one feature vector at the
// given (target layer, group) cell.
func (m Model) Predict(layer int, group string, x []float64) (energyJ, cycles float64, err error) {
	lm, ok := m.Fits[GroupKey{layer, group}]
	if !ok {
		return 0, 0, fmt.Errorf("calib: no model for layer %d group %q", layer, group)
	}
	if len(x) != len(m.Features) {
		return 0, 0, fmt.Errorf("calib: feature vector has %d entries, want %d", len(x), len(m.Features))
	}
	return dot(lm.EnergyCoef, x), dot(lm.CycleCoef, x), nil
}

// Epsilon derives the pruning margin for a (layer, group) cell from the
// fitted residual band: the observed worst-case relative error inflated
// by a safety factor (callers pass >= 1; 2 is the conventional choice).
// This is the "derived, not hand-picked" ε the multi-fidelity sweep
// uses for certain-domination tests.
func (m Model) Epsilon(layer int, group string, safety float64) (epsEnergy, epsCycles float64, err error) {
	lm, ok := m.Fits[GroupKey{layer, group}]
	if !ok {
		return 0, 0, fmt.Errorf("calib: no model for layer %d group %q", layer, group)
	}
	if safety < 1 {
		safety = 1
	}
	return lm.EnergyMaxRel * safety, lm.CycleMaxRel * safety, nil
}

// Band returns the worst residual band across every group fitted for
// the given layer — the conservative single-number summary reports and
// trailers carry.
func (m Model) Band(layer int) (energyMaxRel, cycleMaxRel float64, ok bool) {
	for k, lm := range m.Fits {
		if k.Layer != layer {
			continue
		}
		ok = true
		energyMaxRel = math.Max(energyMaxRel, lm.EnergyMaxRel)
		cycleMaxRel = math.Max(cycleMaxRel, lm.CycleMaxRel)
	}
	return
}
