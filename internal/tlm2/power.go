package tlm2

import (
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/logic"
)

// PowerModel is the paper's layer-2 energy model (§3.3): "Energy
// estimation is also divided into two phases — address phase energy
// estimation and data phase energy estimation. The bus process passes
// the request to the corresponding energy estimation method after the
// address phase is finished. The request data structure contains all
// necessary data and delays to calculate all signal transitions defined
// in the interface specification. The entire address phase for a burst
// read or write is calculated at once."
//
// Structural sources of inaccuracy, as the paper lists them: the model
// "does not allow an accurate count of transitions for control signals"
// (missing interaction with the slave: every strobe is booked as a full
// assert/deassert pair per beat, although back-to-back activity on the
// real interface holds strobes asserted), and "it considers each
// transaction phase on its own but does not consider interactions
// between following transactions". Both make the layer-2 estimate
// systematically high (Table 2: +14.7%).
//
// The power interface "comprises only one method to get the energy
// consumed since the last method call" — EnergySince; energy appears
// only when a phase finishes, which produces the sampling behaviour of
// paper Fig. 6 (no cycle-accurate profile).
// popcount4 counts set bits in a 4-bit byte-enable mask.
func popcount4(v uint64) int {
	n := 0
	for i := 0; i < 4; i++ {
		if v&(1<<i) != 0 {
			n++
		}
	}
	return n
}

type PowerModel struct {
	table gatepower.CharTable

	lastAddr  uint64
	lastWData uint64
	lastRData uint64

	since float64
	total float64

	addrPhases uint64
	dataPhases uint64
}

// NewPowerModel creates a layer-2 power model priced with the given
// characterization table.
func NewPowerModel(table gatepower.CharTable) *PowerModel {
	return &PowerModel{table: table}
}

// EnergySince returns the energy in joules of all phases finished since
// the last call.
func (p *PowerModel) EnergySince() float64 {
	e := p.since
	p.since = 0
	return e
}

// TotalEnergy returns the total estimated energy in joules.
func (p *PowerModel) TotalEnergy() float64 { return p.total }

// Phases returns how many address and data phases have been booked.
func (p *PowerModel) Phases() (addr, data uint64) { return p.addrPhases, p.dataPhases }

func (p *PowerModel) book(e float64) {
	p.since += e
	p.total += e
}

// pair books a full assert/deassert toggle of a one-bit signal.
func (p *PowerModel) pair(id ecbus.SignalID) float64 {
	return 2 * p.table.PerTransitionJ[id]
}

// addressPhaseEnergy books the whole address phase of a request at once.
func (p *PowerModel) addressPhaseEnergy(tr *ecbus.Transaction) {
	var e float64
	// Handshake strobes: assumed to toggle for every transaction.
	e += p.pair(ecbus.SigAValid)
	e += p.pair(ecbus.SigARdy)
	// Control value lines: booked as a toggle pair whenever the
	// transaction asserts them (phase viewed in isolation).
	if tr.Kind == ecbus.Fetch {
		e += p.pair(ecbus.SigInstr)
	}
	if tr.Kind == ecbus.Write {
		e += p.pair(ecbus.SigWrite)
	}
	if tr.Burst {
		e += p.pair(ecbus.SigBurst)
		e += p.pair(ecbus.SigBFirst)
	}
	// Address bus: actual Hamming distance from the previously issued
	// address (the request carries the address, so this part is exact).
	e += float64(logic.Hamming(p.lastAddr, tr.Addr, ecbus.AddrBits)) *
		p.table.PerTransitionJ[ecbus.SigA]
	p.lastAddr = tr.Addr
	// Byte enables are a control group: without the slave interaction
	// the model books an assertion of every active lane per phase,
	// instead of the actual lane-to-lane Hamming distance.
	be := uint64(0b1111)
	if !tr.Burst {
		b, _ := ecbus.ByteEnables(tr.Addr, tr.Width)
		be = uint64(b)
	}
	e += float64(popcount4(be)) * p.table.PerTransitionJ[ecbus.SigBE]
	p.addrPhases++
	p.book(e)
}

// dataPhaseEnergy books the whole data phase of a request at once, after
// it finished (the request's data words are final by then). delivered is
// the number of beats that actually reached the wire — on a bus error
// the phase aborts early, the failing beat pulses the error strobe
// instead of the valid/accept strobe (errorEnergy books that pair), and
// the last-beat marker of an aborted burst is never driven. For an
// error-free phase delivered == len(tr.Data) and the accounting reduces
// to the historical formula exactly.
func (p *PowerModel) dataPhaseEnergy(tr *ecbus.Transaction, delivered int, errored bool) {
	var e float64
	strobes := delivered
	if errored {
		strobes-- // the failing beat's strobe is the error strobe
	}
	if tr.Kind.IsRead() {
		// Strobe booked per beat — the overcount the paper describes.
		e += float64(strobes) * p.pair(ecbus.SigRdVal)
		last := p.lastRData
		for _, w := range tr.Data[:delivered] {
			e += float64(logic.Hamming(last, uint64(w), ecbus.DataBits)) *
				p.table.PerTransitionJ[ecbus.SigRData]
			last = uint64(w)
		}
		p.lastRData = last
	} else {
		e += float64(strobes) * p.pair(ecbus.SigWDRdy)
		last := p.lastWData
		for _, w := range tr.Data[:delivered] {
			e += float64(logic.Hamming(last, uint64(w), ecbus.DataBits)) *
				p.table.PerTransitionJ[ecbus.SigWData]
			last = uint64(w)
		}
		p.lastWData = last
	}
	if tr.Burst && !errored {
		e += p.pair(ecbus.SigBLast)
	}
	p.dataPhases++
	p.book(e)
}

// errorEnergy books the error strobe of a failed request.
func (p *PowerModel) errorEnergy(k ecbus.Kind) {
	if k.IsRead() {
		p.book(p.pair(ecbus.SigRBErr))
	} else {
		p.book(p.pair(ecbus.SigWBErr))
	}
}
