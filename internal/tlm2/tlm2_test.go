package tlm2

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/sim"
)

func bench() (*sim.Kernel, *Bus, *mem.RAM) {
	k := sim.New(0)
	fast := mem.NewRAM("fast", 0, 0x1000, 0, 0)
	b := New(k, ecbus.MustMap(
		fast,
		mem.NewRAM("slow", 0x10000, 0x1000, 1, 2),
	))
	return k, b, fast
}

func TestNativeWriteRead(t *testing.T) {
	k, b, _ := bench()
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
	var wt, rt *Ticket
	got := make([]byte, 8)
	k.At(sim.Rising, "m", func(c uint64) {
		switch {
		case c == 0:
			wt = b.Write(payload, len(payload), 0x100)
		case wt != nil && wt.Done() && rt == nil:
			rt = b.Read(got, len(got), 0x100, false)
		}
	})
	k.RunUntil(100, func() bool { return rt != nil && rt.Done() })
	if rt == nil || !rt.Done() || rt.Err() || wt.Err() {
		t.Fatal("native transfer failed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %x, want %x", got, payload)
	}
}

func TestNativeBlockLongerThanBurst(t *testing.T) {
	// Layer 2 merges entire transfers: a 32-byte block is one
	// transaction with 8 beats of timing.
	k, b, fast := bench()
	src := make([]byte, 32)
	for i := range src {
		src[i] = byte(i * 7)
	}
	var wt *Ticket
	k.At(sim.Rising, "m", func(c uint64) {
		if c == 0 {
			wt = b.Write(src, len(src), 0x200)
		}
	})
	k.RunUntil(100, func() bool { return wt != nil && wt.Done() })
	if wt.Err() {
		t.Fatal("block write errored")
	}
	for i := 0; i < 8; i++ {
		w, _ := fast.ReadWord(0x200+uint64(4*i), ecbus.W32)
		want := uint32(src[4*i]) | uint32(src[4*i+1])<<8 | uint32(src[4*i+2])<<16 | uint32(src[4*i+3])<<24
		if w != want {
			t.Fatalf("word %d = %#x, want %#x", i, w, want)
		}
	}
	// Timing: addr cycle 0, data block of 8 beats starting cycle 1.
	if wt.EndCycle() != 8 {
		t.Fatalf("block end cycle %d, want 8", wt.EndCycle())
	}
}

func TestInstrFlagMapsToFetch(t *testing.T) {
	k, b, _ := bench()
	buf := make([]byte, 4)
	var tk *Ticket
	k.At(sim.Rising, "m", func(c uint64) {
		if c == 0 {
			tk = b.Read(buf, 4, 0x40, true)
		}
	})
	k.RunUntil(50, func() bool { return tk != nil && tk.Done() })
	if tk.tr.Kind != ecbus.Fetch {
		t.Fatalf("kind = %v, want fetch", tk.tr.Kind)
	}
}

func TestBurstIsSingleTransaction(t *testing.T) {
	k, b, _ := bench()
	tr, _ := ecbus.NewBurst(1, ecbus.Read, 0x300, nil)
	core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	if st := b.Stats(); st.Accepted != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want one transaction", st)
	}
	// Beats: addr ends cycle 0; 4-beat block occupies cycles 1..4.
	if tr.DataCycle != 4 {
		t.Fatalf("burst end %d, want 4", tr.DataCycle)
	}
}

func TestNoSameCycleAddrData(t *testing.T) {
	// Structural layer-2 property: even a zero-wait single completes one
	// cycle after its address phase.
	k, b, _ := bench()
	tr, _ := ecbus.NewSingle(1, ecbus.Read, 0x10, ecbus.W32, 0)
	core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	if tr.AddrCycle != 0 || tr.DataCycle != 1 {
		t.Fatalf("addr/data = %d/%d, want 0/1", tr.AddrCycle, tr.DataCycle)
	}
}

func TestStaleDynamicWaitSampling(t *testing.T) {
	// The layer-2 model re-samples dynamic wait states when the address
	// phase actually starts (the creation-time sample only seeds the
	// idle-skip hint): a read reaching the EEPROM mid-programming books
	// the stall still remaining at that point, like layers 0 and 1 do.
	k := sim.New(0)
	ee := mem.NewEEPROM("ee", 0, 0x8000, k)
	b := New(k, ecbus.MustMap(ee))
	w, _ := ecbus.NewSingle(1, ecbus.Write, 0x100, ecbus.W32, 5)
	r, _ := ecbus.NewSingle(2, ecbus.Read, 0x100, ecbus.W32, 0)
	m, _ := core.RunScript(k, b, []core.Item{{Tr: w}, {Tr: r, NotBefore: 10}}, 10000)
	if !m.Done() || r.Err {
		t.Fatal("EEPROM sequence failed")
	}
	if r.Data[0] != 5 {
		t.Fatalf("read back %d, want 5", r.Data[0])
	}
	if r.AddrCycle <= w.DataCycle {
		t.Fatal("read not stalled by programming at all")
	}
}

func TestDecodeErrorTicket(t *testing.T) {
	k, b, _ := bench()
	buf := make([]byte, 4)
	var tk *Ticket
	k.At(sim.Rising, "m", func(c uint64) {
		if c == 0 {
			tk = b.Read(buf, 4, 0x5000, false)
		}
	})
	k.RunUntil(50, func() bool { return tk != nil && tk.Done() })
	if !tk.Err() {
		t.Fatal("decode miss not reported")
	}
	if b.Stats().Errors != 1 {
		t.Fatalf("errors = %d", b.Stats().Errors)
	}
}

func TestRejectionWhenCategoryFull(t *testing.T) {
	k, b, _ := bench()
	var nilAt int
	k.At(sim.Rising, "m", func(c uint64) {
		if c != 0 {
			return
		}
		for i := 0; i < 5; i++ {
			buf := make([]byte, 4)
			if tk := b.Read(buf, 4, 0x10000+uint64(4*i), false); tk == nil {
				nilAt = i
			}
		}
	})
	k.Step()
	if nilAt != 4 {
		t.Fatalf("rejection at request %d, want 4 (MaxOutstanding)", nilAt)
	}
}

func TestPowerBookedPerPhase(t *testing.T) {
	table := gatepower.NewEstimator(gatepower.DefaultConfig()).Char()
	k, b, _ := bench()
	b.AttachPower(NewPowerModel(table))
	tr, _ := ecbus.NewBurst(1, ecbus.Write, 0x400, []uint32{1, 2, 3, 4})
	core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	addr, data := b.Power().Phases()
	if addr != 1 || data != 1 {
		t.Fatalf("phases = %d/%d, want 1/1", addr, data)
	}
	if b.Power().TotalEnergy() <= 0 {
		t.Fatal("no energy booked")
	}
}

func TestSequentialDataHammingChain(t *testing.T) {
	// The data-phase estimate prices word-to-word Hamming distance:
	// a burst of identical words costs less than alternating patterns.
	table := gatepower.NewEstimator(gatepower.DefaultConfig()).Char()

	run := func(words []uint32) float64 {
		k, b, _ := bench()
		b.AttachPower(NewPowerModel(table))
		tr, _ := ecbus.NewBurst(1, ecbus.Write, 0x500, words)
		core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
		return b.Power().TotalEnergy()
	}
	flat := run([]uint32{7, 7, 7, 7})
	wild := run([]uint32{0x00000000, 0xFFFFFFFF, 0x00000000, 0xFFFFFFFF})
	if flat >= wild {
		t.Fatalf("flat burst (%.3e) not cheaper than alternating burst (%.3e)", flat, wild)
	}
}
