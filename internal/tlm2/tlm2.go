// Package tlm2 implements the paper's transaction-level layer-2 model of
// the EC bus (§3.2): timed but not cycle accurate, data transferred by
// pointer passing, a burst transfer performed as a single transaction.
//
// Master interface (paper): "There are only two data interface functions
// as master interface, one for read access and one for write access.
// Parameters are the data pointer, the number of bytes transferred, the
// address, and an instruction bit, which indicates an instruction
// fetch." These are Bus.Read and Bus.Write; an Access adapter with
// layer-1 semantics is provided so the same masters and corpora drive
// every layer.
//
// Internal structure (paper Fig. 4): one bus process sensitive to the
// falling clock edge and one shared data structure for communication
// between the interface functions and the bus process. "This model
// requests the actual wait states of the slave when the request is
// created during the first interface call" — that early sample touches
// the slave interface exactly as the paper's model does, but its value
// is deliberately discarded: the authoritative wait count, which also
// drives the idle-skip scheduling hint, comes exclusively from the
// re-sample at address-phase start, the same sampling point layers 0
// and 1 use — so a stale busy-window reading taken in a deep queue can
// never leak into the skip window. The bus process decrements the
// address wait counter until the address phase finishes, then the data
// wait counter until the data phase finishes, with whole bursts counted
// as one block; unlike layers 0/1, a data phase cannot complete in the
// same cycle as its address phase, the other structural timing error
// (Table 1 reports +0.5% for the layer-2 model).
package tlm2

import (
	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// reqState is the lifecycle position of a request in the shared list.
type reqState int

const (
	stAddr reqState = iota
	stData
	stDone
)

// request is the entry of the shared request data structure.
type request struct {
	tr    *ecbus.Transaction
	slave ecbus.Slave
	err   bool

	state   reqState
	started bool   // address phase began (wait count re-sampled)
	addrCnt int    // remaining address wait states
	dataCnt int    // remaining data phase cycles after the first
	joined  uint64 // cycle the request entered its data phase

	readback []byte // native-interface read destination (pointer passing)
}

// Bus is the layer-2 EC bus model.
type Bus struct {
	m     *ecbus.Map
	cycle uint64

	// The shared request data structure (paper Fig. 4), indexed by
	// lifecycle position: requests enter addrQ at creation, move to the
	// read or write queue when their address phase finishes, and leave
	// when their data phase completes. Address phases complete in
	// creation order and data phases in order per direction, so plain
	// FIFOs realize the "oldest request in state X" selection without
	// scanning.
	addrQ  []*request
	readQ  []*request
	writeQ []*request

	outstanding [ecbus.NumCategories]int

	power *PowerModel
	mx    *metrics.Registry

	stats Stats
}

// Stats aggregates bus activity counters.
type Stats struct {
	Accepted  uint64
	Completed uint64
	Errors    uint64
	Rejected  uint64
}

// New creates a layer-2 bus over the address map and registers the bus
// process on the kernel's falling edge, with a quiescence hint so the
// kernel can fast-forward pure wait-state countdowns and idle gaps.
func New(k *sim.Kernel, m *ecbus.Map) *Bus {
	b := &Bus{m: m, cycle: ^uint64(0)}
	k.AtHinted(sim.Falling, "tlm2-bus", b.busProcess, b.hint, b.onSkip)
	return b
}

// hint reports the earliest future cycle with bus activity: phase
// completions (which move requests, book energy and touch slaves) must
// execute, while pure countdown ticks only decrement a counter and can
// be fast-forwarded. The layer-2 power model books energy per phase, so
// skipped countdown cycles dissipate nothing by construction.
func (b *Bus) hint(now uint64) uint64 {
	next := sim.NoEvent
	if len(b.addrQ) > 0 {
		r := b.addrQ[0]
		switch {
		case r.tr.IssueCycle > now:
			next = r.tr.IssueCycle
		case !r.started:
			return now // phase-start tick re-samples the wait count
		case r.addrCnt > 0:
			next = now + uint64(r.addrCnt)
		default:
			return now // completion tick
		}
	}
	if len(b.readQ) > 0 {
		r := b.readQ[0]
		if r.joined >= now || r.dataCnt == 0 {
			return now // no-op join tick or completion tick
		}
		if c := now + uint64(r.dataCnt); c < next {
			next = c
		}
	}
	if len(b.writeQ) > 0 {
		r := b.writeQ[0]
		if r.joined >= now || r.dataCnt == 0 {
			return now
		}
		if c := now + uint64(r.dataCnt); c < next {
			next = c
		}
	}
	return next
}

// onSkip decrements the head counters across n fast-forwarded cycles
// exactly as n countdown ticks would have. The kernel never skips past a
// completion (hint returns now on those cycles), so n is bounded by the
// remaining counts.
func (b *Bus) onSkip(n uint64) {
	first := b.cycle + 1 // first fast-forwarded cycle
	b.cycle += n
	if len(b.addrQ) > 0 {
		if r := b.addrQ[0]; r.started && r.tr.IssueCycle <= first && r.addrCnt > 0 {
			r.addrCnt -= int(n)
			b.mx.WaitCycles(n)
		}
	}
	if len(b.readQ) > 0 {
		if r := b.readQ[0]; r.joined < first && r.dataCnt > 0 {
			r.dataCnt -= int(n)
			b.mx.WaitCycles(n)
		}
	}
	if len(b.writeQ) > 0 {
		if r := b.writeQ[0]; r.joined < first && r.dataCnt > 0 {
			r.dataCnt -= int(n)
			b.mx.WaitCycles(n)
		}
	}
}

// AttachPower connects the layer-2 per-phase energy model.
func (b *Bus) AttachPower(p *PowerModel) *Bus {
	b.power = p
	return b
}

// Power returns the attached power model, or nil.
func (b *Bus) Power() *PowerModel { return b.power }

// AttachMetrics connects an observability registry (nil detaches). The
// per-slave energy table is bound to the address map's decode order.
// Layer 2 samples energy at its per-phase booking sites, so the
// attribution is exact per phase kind and per slave.
func (b *Bus) AttachMetrics(reg *metrics.Registry) *Bus {
	b.mx = reg
	names := make([]string, 0, len(b.m.Slaves()))
	for _, s := range b.m.Slaves() {
		names = append(names, s.Config().Name)
	}
	reg.BindSlaves(names...)
	return b
}

// sampleEnergy attributes everything the power model booked since the
// previous sample to one phase kind and the slave decoded from addr.
// Only called when a registry is attached.
func (b *Bus) sampleEnergy(kind metrics.PhaseKind, addr uint64) {
	var t float64
	if b.power != nil {
		t = b.power.TotalEnergy()
	}
	b.mx.EnergySample(kind, b.m.Index(addr), t)
}

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Idle reports whether no request is in flight.
func (b *Bus) Idle() bool {
	return len(b.addrQ) == 0 && len(b.readQ) == 0 && len(b.writeQ) == 0
}

// Ticket tracks a pointer-interface request to completion.
type Ticket struct {
	tr *ecbus.Transaction
}

// Done reports whether the request has finished.
func (t *Ticket) Done() bool { return t.tr.Done }

// Err reports whether the request finished with a bus error.
func (t *Ticket) Err() bool { return t.tr.Err }

// EndCycle returns the cycle the request completed.
func (t *Ticket) EndCycle() uint64 { return t.tr.DataCycle }

// Read is the native layer-2 master read function: transfer nbytes from
// addr into p (len(p) >= nbytes), instr marking instruction fetches. The
// whole block is one transaction. It returns nil if the bus cannot
// accept the request this cycle (outstanding limit; retry next cycle).
func (b *Bus) Read(p []byte, nbytes int, addr uint64, instr bool) *Ticket {
	kind := ecbus.Read
	if instr {
		kind = ecbus.Fetch
	}
	tr := blockTransaction(kind, addr, nbytes)
	if st := b.Access(tr); st == ecbus.StateWait {
		return nil // rejected: category full, retry next cycle
	}
	t := &Ticket{tr: tr}
	b.bindReadback(tr, p, nbytes)
	return t
}

// Write is the native layer-2 master write function: transfer nbytes
// from p to addr as one transaction. Returns nil if the bus cannot
// accept the request this cycle.
func (b *Bus) Write(p []byte, nbytes int, addr uint64) *Ticket {
	tr := blockTransaction(ecbus.Write, addr, nbytes)
	for i := 0; i < nbytes; i++ {
		tr.Data[i/4] |= uint32(p[i]) << (8 * (i % 4))
	}
	if st := b.Access(tr); st == ecbus.StateWait {
		return nil
	}
	return &Ticket{tr: tr}
}

// bindReadback arranges for read data to land in the caller's buffer at
// completion (pointer passing: no per-beat copies). The request was just
// created, so it is the newest entry of the address queue.
func (b *Bus) bindReadback(tr *ecbus.Transaction, p []byte, nbytes int) {
	for i := len(b.addrQ) - 1; i >= 0; i-- {
		if b.addrQ[i].tr == tr {
			b.addrQ[i].readback = p[:nbytes]
			return
		}
	}
}

// blockTransaction wraps an arbitrary-length block as one layer-2
// transaction. Blocks longer than one word are burst-like; their word
// count may exceed ecbus.BurstLen since layer 2 merges entire transfers.
func blockTransaction(kind ecbus.Kind, addr uint64, nbytes int) *ecbus.Transaction {
	words := (nbytes + 3) / 4
	if words < 1 {
		words = 1
	}
	w := ecbus.W32
	if words == 1 {
		switch nbytes {
		case 1:
			w = ecbus.W8
		case 2:
			w = ecbus.W16
		}
	}
	return &ecbus.Transaction{
		Kind:  kind,
		Addr:  addr & ecbus.AddrMask,
		Width: w,
		Burst: words > 1,
		Data:  make([]uint32, words),
	}
}

// Access provides layer-1 Access semantics over the layer-2 engine so
// the hierarchical framework can drive both layers with one master. The
// first call creates the request in the shared list (sampling the slave
// state immediately, per the paper); later calls poll.
func (b *Bus) Access(tr *ecbus.Transaction) ecbus.BusState {
	if tr.Done {
		if tr.Err {
			return ecbus.StateError
		}
		return ecbus.StateOK
	}
	if tr.IssueCycle != 0 || b.isQueued(tr) {
		return ecbus.StateWait
	}
	cat := tr.Category()
	if b.outstanding[cat] >= ecbus.MaxOutstanding {
		b.stats.Rejected++
		b.mx.TxRejected()
		return ecbus.StateWait
	}
	if tr.Burst && len(tr.Data) != ecbus.BurstLen {
		// Layer-2 native blocks may be any length; only canonical
		// transactions are validated strictly.
		if len(tr.Data) == 0 {
			tr.Done, tr.Err = true, true
			b.stats.Errors++
			b.mx.TxRetired(tr, -1, true)
			return ecbus.StateError
		}
	} else if err := tr.Validate(); err != nil {
		tr.Done, tr.Err = true, true
		b.stats.Errors++
		b.mx.TxRetired(tr, -1, true)
		return ecbus.StateError
	}
	r := &request{tr: tr}
	b.sampleSlaveState(r)
	b.outstanding[cat]++
	tr.IssueCycle = b.cycle + 1
	b.addrQ = append(b.addrQ, r)
	b.stats.Accepted++
	b.mx.TxAccepted(cat, b.outstanding[cat])
	return ecbus.StateRequest
}

func (b *Bus) isQueued(tr *ecbus.Transaction) bool {
	for _, q := range [][]*request{b.addrQ, b.readQ, b.writeQ} {
		for _, r := range q {
			if r.tr == tr {
				return true
			}
		}
	}
	return false
}

// sampleSlaveState requests the slave's wait states and rights at
// request creation ("during the first interface call"). The dynamic
// extra wait is requested here to honour the paper's first-call slave
// interaction, but its value is discarded: addrCnt is written only by
// startAddrPhase, so neither the countdown nor the idle-skip hint can
// ever see a stale creation-time busy-window sample.
func (b *Bus) sampleSlaveState(r *request) {
	sl, err := b.m.Check(r.tr.Kind, r.tr.Addr, len(r.tr.Data)*4)
	if err != nil {
		r.err = true
		return
	}
	r.slave = sl
	cfg := sl.Config()
	_ = ecbus.ExtraWaitOf(sl, r.tr.Kind, r.tr.Addr)
	dw := cfg.WriteWait
	if r.tr.Kind.IsRead() {
		dw = cfg.ReadWait
	}
	n := len(r.tr.Data)
	// Whole data phase as one block: first beat after dw waits, each
	// further beat after dw+1 cycles.
	r.dataCnt = dw + (n-1)*(dw+1)
}

// startAddrPhase re-samples the slave's dynamic wait state the cycle
// the address phase actually begins, matching the sampling point of
// layers 0 and 1. Decode/rights legality and the data-phase length are
// static and keep their creation-time values.
func (b *Bus) startAddrPhase(r *request) {
	r.started = true
	if r.slave != nil {
		cfg := r.slave.Config()
		r.addrCnt = cfg.AddrWait + ecbus.ExtraWaitOf(r.slave, r.tr.Kind, r.tr.Addr)
	}
}

// busProcess advances the three phases each falling edge.
func (b *Bus) busProcess(cycle uint64) {
	b.cycle = cycle
	b.addressPhase(cycle)
	b.dataPhase(cycle, &b.readQ)
	b.dataPhase(cycle, &b.writeQ)
}

// addressPhase serves the request at the head of the address queue.
func (b *Bus) addressPhase(cycle uint64) {
	if len(b.addrQ) == 0 {
		return
	}
	r := b.addrQ[0]
	if r.tr.IssueCycle > cycle {
		return
	}
	if !r.started {
		b.startAddrPhase(r)
	}
	if r.addrCnt > 0 {
		r.addrCnt--
		b.mx.WaitCycle()
		return
	}
	b.addrQ = b.addrQ[1:]
	r.tr.AddrCycle = cycle
	if b.power != nil {
		b.power.addressPhaseEnergy(r.tr)
	}
	if b.mx != nil {
		b.sampleEnergy(metrics.PhaseAddress, r.tr.Addr)
	}
	if r.err {
		r.state = stDone
		r.tr.Done, r.tr.Err = true, true
		r.tr.DataCycle = cycle
		b.outstanding[r.tr.Category()]--
		b.stats.Errors++
		if b.power != nil {
			b.power.errorEnergy(r.tr.Kind)
		}
		if b.mx != nil {
			b.sampleEnergy(metrics.PhaseError, r.tr.Addr)
			b.mx.TxRetired(r.tr, b.m.Index(r.tr.Addr), true)
		}
		return
	}
	r.state = stData
	r.joined = cycle
	if r.tr.Kind.IsRead() {
		b.readQ = append(b.readQ, r)
	} else {
		b.writeQ = append(b.writeQ, r)
	}
}

// dataPhase serves the request at the head of one direction queue. A
// request that entered its data phase this cycle starts counting next
// cycle (no same-cycle address+data completion at layer 2).
func (b *Bus) dataPhase(cycle uint64, q *[]*request) {
	if len(*q) == 0 {
		return
	}
	r := (*q)[0]
	if r.joined == cycle {
		return
	}
	if r.dataCnt > 0 {
		r.dataCnt--
		b.mx.WaitCycle()
		return
	}
	*q = (*q)[1:]
	b.completeData(r, cycle)
}

// completeData finishes a request's data phase: the block transfer is
// performed at once (pointer passing) and the energy of the whole phase
// is estimated in one step.
func (b *Bus) completeData(r *request, cycle uint64) {
	tr := r.tr
	ok := true
	w := tr.Width
	if tr.Burst {
		w = ecbus.W32
	}
	delivered := 0
	for i := range tr.Data {
		addr := tr.Addr + uint64(4*i)
		if tr.Kind.IsRead() {
			var v uint32
			v, ok = r.slave.ReadWord(addr, w)
			tr.Data[i] = v
		} else {
			ok = r.slave.WriteWord(addr, tr.Data[i], w)
		}
		delivered++
		if !ok {
			break
		}
	}
	if r.readback != nil {
		for i := range r.readback {
			r.readback[i] = byte(tr.Data[i/4] >> (8 * (i % 4)))
		}
	}
	if b.power != nil {
		b.power.dataPhaseEnergy(tr, delivered, !ok)
	}
	if b.mx != nil {
		kind := metrics.PhaseWriteData
		if tr.Kind.IsRead() {
			kind = metrics.PhaseReadData
		}
		b.sampleEnergy(kind, tr.Addr)
	}
	if !ok && b.power != nil {
		b.power.errorEnergy(tr.Kind)
	}
	r.state = stDone
	tr.Done, tr.Err = true, !ok
	tr.DataCycle = cycle
	if b.mx != nil {
		if !ok {
			b.sampleEnergy(metrics.PhaseError, tr.Addr)
		}
		b.mx.Beats(delivered)
		b.mx.TxRetired(tr, b.m.Index(tr.Addr), !ok)
	}
	b.outstanding[tr.Category()]--
	if ok {
		b.stats.Completed++
	} else {
		b.stats.Errors++
	}
}
