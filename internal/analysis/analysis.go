// Package analysis implements the power-analysis side of the paper's
// motivation: "The second reason for power considerations in smart cards
// is power analysis like simple power analysis (SPA), or differential
// power analysis (DPA). If smart cards are not protected against these
// attacks, it is possible to find out crypto keys by using such
// methods."
//
// It provides trace statistics, SPA structure detection (round
// periodicity via autocorrelation), a textbook difference-of-means DPA
// attack against the crypto coprocessor's round-1 subkey, and the
// misalignment countermeasure (random process interrupts) whose effect
// on the DPA peak the examples evaluate.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/crypto"
	"repro/internal/logic"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Autocorr returns the normalized autocorrelation of the trace at the
// given lag — SPA's structure detector: a periodic round pattern gives a
// high value at lag = cycles-per-round.
func Autocorr(trace []float64, lag int) float64 {
	if lag <= 0 || lag >= len(trace) {
		return 0
	}
	m := Mean(trace)
	var num, den float64
	for i := 0; i < len(trace); i++ {
		den += (trace[i] - m) * (trace[i] - m)
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < len(trace); i++ {
		num += (trace[i] - m) * (trace[i+lag] - m)
	}
	return num / den
}

// PredictBit is the DPA selection function: the predicted value of one
// bit of the coprocessor's round-1 register given the plaintext and a
// guess of S-box input key nibble `nibble` of the round-1 subkey.
//
// Round 1 computes r1 = l0 ^ rot11(S(r0 ^ k1)); nibble n of the S-box
// layer lands at bit (4n+11) mod 32 after the rotate, XORed with the
// corresponding known plaintext bit of l0.
func PredictBit(plaintext uint64, guess uint32, nibble int) int {
	l0 := uint32(plaintext >> 32)
	r0 := uint32(plaintext)
	x := (r0 >> (4 * uint(nibble)) & 0xF) ^ (guess & 0xF)
	y := crypto.Sbox(x) & 1
	pos := (4*uint(nibble) + 11) % 32
	return int(y ^ (l0 >> pos & 1))
}

// DPAResult reports one nibble attack.
type DPAResult struct {
	Nibble    int
	BestGuess uint32
	Peak      float64 // difference of means of the winning guess
	Runner    float64 // best wrong-guess peak (margin indicator)
	Traces    int
}

// Margin returns the ratio between the winning and runner-up peaks.
func (r DPAResult) Margin() float64 {
	if r.Runner == 0 {
		return math.Inf(1)
	}
	return r.Peak / r.Runner
}

// String formats the result.
func (r DPAResult) String() string {
	return fmt.Sprintf("nibble %d: guess %#x (peak %.3g, margin %.2fx, %d traces)",
		r.Nibble, r.BestGuess, r.Peak, r.Margin(), r.Traces)
}

// DPA mounts the difference-of-means attack on one subkey nibble, using
// the given per-operation traces (each crypto.Rounds*CyclesPerRound
// samples) and their known plaintexts. samples selects the trace indices
// carrying round-1 leakage (the engine leaks the round register during
// both cycles of round 1: indices 0 and 1).
func DPA(traces [][]float64, plaintexts []uint64, nibble int, samples []int) DPAResult {
	if len(traces) != len(plaintexts) {
		panic("analysis: traces and plaintexts length mismatch")
	}
	res := DPAResult{Nibble: nibble, Traces: len(traces)}
	for guess := uint32(0); guess < 16; guess++ {
		var ones, zeros []float64
		for i, tr := range traces {
			var v float64
			for _, s := range samples {
				if s < len(tr) {
					v += tr[s]
				}
			}
			if PredictBit(plaintexts[i], guess, nibble) == 1 {
				ones = append(ones, v)
			} else {
				zeros = append(zeros, v)
			}
		}
		dom := math.Abs(Mean(ones) - Mean(zeros))
		if dom > res.Peak {
			res.Runner = res.Peak
			res.Peak = dom
			res.BestGuess = guess
		} else if dom > res.Runner {
			res.Runner = dom
		}
	}
	return res
}

// RecoverSubkey attacks all eight nibbles and assembles the recovered
// 32-bit round-1 subkey.
func RecoverSubkey(traces [][]float64, plaintexts []uint64, samples []int) (uint32, []DPAResult) {
	var key uint32
	results := make([]DPAResult, 8)
	for n := 0; n < 8; n++ {
		r := DPA(traces, plaintexts, n, samples)
		results[n] = r
		key |= r.BestGuess << (4 * uint(n))
	}
	return key, results
}

// Misalign applies the random-process-interrupt countermeasure to a
// trace set: each trace is shifted by a pseudo-random 0..maxShift cycles
// (pre-padded with the trace's own mean), destroying the sample
// alignment DPA depends on.
func Misalign(traces [][]float64, maxShift int, seed uint64) [][]float64 {
	r := logic.NewLFSR(seed)
	out := make([][]float64, len(traces))
	for i, tr := range traces {
		shift := r.NextRange(maxShift + 1)
		m := Mean(tr)
		nt := make([]float64, len(tr))
		for j := range nt {
			if j < shift {
				nt[j] = m
			} else {
				nt[j] = tr[j-shift]
			}
		}
		out[i] = nt
	}
	return out
}
