package analysis

import (
	"math"
	"testing"

	"repro/internal/crypto"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %g", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("std = %g", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestAutocorrPeriodicSignal(t *testing.T) {
	// Period-2 signal: strong correlation at lag 2, anti at lag 1.
	var tr []float64
	for i := 0; i < 64; i++ {
		tr = append(tr, float64(i%2))
	}
	if a := Autocorr(tr, 2); a < 0.9 {
		t.Fatalf("autocorr lag 2 = %g", a)
	}
	if a := Autocorr(tr, 1); a > -0.5 {
		t.Fatalf("autocorr lag 1 = %g", a)
	}
	if Autocorr(tr, 0) != 0 || Autocorr(tr, 100) != 0 {
		t.Fatal("degenerate lags not zero")
	}
}

func TestSPASeesRoundStructure(t *testing.T) {
	// A single coprocessor trace autocorrelates at the round period far
	// better than at an incommensurate lag — the SPA observation.
	leak := crypto.DefaultLeak()
	leak.NoiseJ = 1e-12 // SPA regime: low noise, single trace
	traces, _ := CollectTraces(1, 0x0123456789ABCDEF, leak, 99)
	tr := traces[0]
	// The engine holds each round register for CyclesPerRound cycles, so
	// the trace shows plateaus of that length: strong correlation within
	// a round (lag 1) and essentially none across round boundaries
	// (lag CyclesPerRound) — the structure an SPA attacker reads off.
	within := Autocorr(tr, crypto.CyclesPerRound-1)
	across := Autocorr(tr, crypto.CyclesPerRound)
	if within < 0.25 {
		t.Fatalf("within-round autocorrelation %g too weak for SPA", within)
	}
	if within <= across {
		t.Fatalf("no round boundary visible: within %g <= across %g", within, across)
	}
}

func TestPredictBitMatchesEngine(t *testing.T) {
	// The selection function must agree with the actual round-1 register
	// bit of the cipher.
	key := uint64(0x0123456789ABCDEF)
	k1 := crypto.Subkey(key, 0)
	pts := []uint64{0, 0xFFFFFFFFFFFFFFFF, 0xA5A5A5A55A5A5A5A, 0x0011223344556677}
	for _, pt := range pts {
		l0, r0 := uint32(pt>>32), uint32(pt)
		r1 := l0 ^ crypto.F(r0, k1)
		for n := 0; n < 8; n++ {
			pos := (4*uint(n) + 11) % 32
			want := int(r1 >> pos & 1)
			got := PredictBit(pt, k1>>(4*uint(n))&0xF, n)
			if got != want {
				t.Fatalf("pt %#x nibble %d: predict %d, engine %d", pt, n, got, want)
			}
		}
	}
}

func TestDPARecoversRound1Subkey(t *testing.T) {
	key := uint64(0x0123456789ABCDEF)
	traces, pts := CollectTraces(2000, key, crypto.DefaultLeak(), 7)
	recovered, results := RecoverSubkey(traces, pts, []int{0, 1})
	want := crypto.Subkey(key, 0)
	if recovered != want {
		for _, r := range results {
			t.Log(r.String())
		}
		t.Fatalf("recovered %#x, want %#x", recovered, want)
	}
	for _, r := range results {
		if r.Margin() < 1.02 {
			t.Errorf("nibble %d margin %.2f too thin", r.Nibble, r.Margin())
		}
	}
}

func TestDPAFailsWithFewTraces(t *testing.T) {
	// With a handful of traces the noise dominates: at least one nibble
	// should come out wrong — the reason attackers need volume and
	// defenders fight trace alignment.
	key := uint64(0x0123456789ABCDEF)
	traces, pts := CollectTraces(4, key, crypto.DefaultLeak(), 11)
	recovered, _ := RecoverSubkey(traces, pts, []int{0, 1})
	if recovered == crypto.Subkey(key, 0) {
		t.Skip("4 traces happened to suffice for this seed; acceptable but rare")
	}
}

func TestMisalignmentCountermeasureWeakensDPA(t *testing.T) {
	key := uint64(0x0123456789ABCDEF)
	traces, pts := CollectTraces(400, key, crypto.DefaultLeak(), 7)

	aligned := DPA(traces, pts, 0, []int{0, 1})
	blurred := DPA(Misalign(traces, 8, 1234), pts, 0, []int{0, 1})

	if blurred.Peak >= aligned.Peak*0.7 {
		t.Fatalf("misalignment did not weaken DPA: %.3g -> %.3g", aligned.Peak, blurred.Peak)
	}
}

func TestMisalignPreservesShape(t *testing.T) {
	traces := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	out := Misalign(traces, 2, 42)
	if len(out) != 2 || len(out[0]) != 4 {
		t.Fatal("shape changed")
	}
	// Originals untouched.
	if traces[0][0] != 1 {
		t.Fatal("input mutated")
	}
}

func TestDPAPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	DPA([][]float64{{1}}, nil, 0, []int{0})
}
