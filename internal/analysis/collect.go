package analysis

import (
	"repro/internal/crypto"
	"repro/internal/ecbus"
	"repro/internal/logic"
	"repro/internal/sim"
)

// CollectTraces runs n encryptions of pseudo-random plaintexts under the
// fixed key on a crypto coprocessor and returns the per-operation power
// traces with their plaintexts — the attacker's measurement campaign.
// Each trace has crypto.Rounds*crypto.CyclesPerRound samples.
func CollectTraces(n int, key uint64, leak crypto.LeakConfig, seed uint64) (traces [][]float64, plaintexts []uint64) {
	k := sim.New(0)
	cp := crypto.New(k, "des", 0, leak, nil, 0)
	cp.WriteWord(crypto.RegKey0, uint32(key), ecbus.W32)
	cp.WriteWord(crypto.RegKey1, uint32(key>>32), ecbus.W32)

	r := logic.NewLFSR(seed)
	for i := 0; i < n; i++ {
		// Raw LFSR states are linearly dependent bit-to-bit; mix them so
		// the plaintext bits are independent, as in a real campaign.
		pt := logic.Mix64(r.Next())
		cp.WriteWord(crypto.RegData0, uint32(pt), ecbus.W32)
		cp.WriteWord(crypto.RegData1, uint32(pt>>32), ecbus.W32)
		cp.ResetTrace()
		cp.WriteWord(crypto.RegCtrl, 1, ecbus.W32)
		for cp.Busy() {
			k.Step()
		}
		traces = append(traces, append([]float64(nil), cp.Trace()...))
		plaintexts = append(plaintexts, pt)
	}
	return traces, plaintexts
}
