package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/bench"
	"repro/internal/fault"
)

// POST /v1/batch: batched whole-campaign estimation. One request asks
// for R independent random corpus runs (a campaign) through one layer
// and fault plan, executed by the bit-parallel batch engine; the
// response streams one NDJSON row per run. The lane width tunes only
// throughput — per-run results are width-invariant by the engine's
// golden gate — so the content address deliberately EXCLUDES it:
// requests differing only in width share one cache entry.

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Layer selects the abstraction level: 0 (gate level) or 1 (TL1);
	// the batch engine does not model TL2.
	Layer int `json:"layer"`
	// Seed parameterizes the campaign's random stimuli; default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Runs is the campaign size; <= 0 selects 64, capped at 1024.
	Runs int `json:"runs,omitempty"`
	// N is the per-run transaction count; <= 0 selects
	// bench.DefaultPerfN, capped at 4096.
	N int `json:"n,omitempty"`
	// Fault is a named fault plan or key=value spec; empty = clean.
	Fault string `json:"fault,omitempty"`
	// Width is the lane width; <= 0 selects batch.MaxWidth. Widths
	// beyond the campaign size are capped at Runs. Width does not
	// affect results, only compute speed, and is not part of the key.
	Width int `json:"width,omitempty"`
	// DeadlineMs bounds the compute; 0 uses the server default.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// BatchRow is one campaign run's outcome in the NDJSON stream.
type BatchRow struct {
	Run        int     `json:"run"`
	Cycles     uint64  `json:"cycles"`
	EnergyJ    float64 `json:"energy_j"`
	EnergyBits string  `json:"energy_bits"`
	Errors     int     `json:"errors"`
	Retries    int     `json:"retries"`
}

// BatchTrailer is the final NDJSON line of a batch response.
type BatchTrailer struct {
	Done  bool   `json:"done"`
	Key   string `json:"key"`
	Layer int    `json:"layer"`
	Fault string `json:"fault,omitempty"`
	Rows  int    `json:"rows"`
}

// canonBatch is a validated batch request with defaults applied.
type canonBatch struct {
	Layer int
	Seed  uint64
	Runs  int
	N     int
	Plan  fault.Plan
	Spec  string
	Width int
}

// Campaign-size limits: a maximal request is ~4M transactions, well
// within the default one-minute compute deadline.
const (
	maxBatchRuns = 1024
	maxBatchN    = 4096
)

func canonicalizeBatch(req BatchRequest) (canonBatch, error) {
	c := canonBatch{Layer: req.Layer, Seed: req.Seed, Runs: req.Runs, N: req.N, Width: req.Width}
	if c.Layer < 0 || c.Layer > 1 {
		return c, fmt.Errorf("serve: unsupported batch layer %d (valid layers: 0, 1)", c.Layer)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Runs <= 0 {
		c.Runs = 64
	}
	if c.Runs > maxBatchRuns {
		return c, fmt.Errorf("serve: batch runs %d exceeds limit %d", c.Runs, maxBatchRuns)
	}
	if c.N <= 0 {
		c.N = bench.DefaultPerfN
	}
	if c.N > maxBatchN {
		return c, fmt.Errorf("serve: batch n %d exceeds limit %d", c.N, maxBatchN)
	}
	if c.Width <= 0 {
		c.Width = batch.MaxWidth
	}
	if c.Width > batch.MaxWidth {
		return c, fmt.Errorf("serve: batch width %d exceeds limit %d", c.Width, batch.MaxWidth)
	}
	if c.Width > c.Runs {
		c.Width = c.Runs // wider than the campaign buys nothing
	}
	plan, err := fault.Parse(strings.TrimSpace(req.Fault))
	if err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	c.Plan, c.Spec = plan, plan.Spec()
	return c, nil
}

// campaignGen is the corpus generator behind campaignDigest — a seam
// the memoization test swaps to count generator invocations.
var campaignGen = bench.CampaignRuns

// campaignKey identifies one deterministic campaign corpus.
type campaignKey struct {
	seed    uint64
	runs, n int
}

// campaignDigests memoizes corpus digests per (seed, runs, n): the
// corpus is a pure function of those three numbers, so hashing the
// generated transaction bytes once is enough. Without this, every
// /v1/batch request — cache hits included — regenerated the entire
// campaign (up to 1024×4096 transactions) just to compute its key.
// Bounded FIFO keeps the memo from growing with request diversity.
var (
	campMu      sync.Mutex
	campDigests = map[campaignKey][sha256.Size]byte{}
	campOrder   []campaignKey
)

const maxCampaignDigests = 128

// campaignDigest returns the SHA-256 digest of the campaign's
// generated transaction bytes, generating the corpus only on the first
// request for a given (seed, runs, n).
func campaignDigest(seed uint64, runs, n int) [sha256.Size]byte {
	k := campaignKey{seed, runs, n}
	campMu.Lock()
	if d, ok := campDigests[k]; ok {
		campMu.Unlock()
		return d
	}
	campMu.Unlock()

	// Generate and hash outside the lock so distinct campaigns digest
	// concurrently; a racing duplicate computes the same bytes.
	h := sha256.New()
	for _, run := range campaignGen(seed, runs, n) {
		h.Write(itemBytes(run.Items))
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])

	campMu.Lock()
	if _, ok := campDigests[k]; !ok {
		campDigests[k] = d
		campOrder = append(campOrder, k)
		for len(campOrder) > maxCampaignDigests {
			delete(campDigests, campOrder[0])
			campOrder = campOrder[1:]
		}
	}
	campMu.Unlock()
	return d
}

// key content-addresses the campaign. Width is deliberately absent:
// the engine's golden gate makes per-run results width-invariant, so
// all widths of the same campaign share one cache entry. The campaign
// identity is a digest of the actual generated transaction bytes, not
// just (seed, runs, n), so a corpus-generator change changes the
// address; the digest is memoized so the key of a repeated campaign
// costs O(1) instead of a full corpus generation.
func (c canonBatch) key() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00batch\x00layer=%d\x00seed=%d\x00runs=%d\x00n=%d\x00fault=%s\x00",
		Version, c.Layer, c.Seed, c.Runs, c.N, c.Spec)
	d := campaignDigest(c.Seed, c.Runs, c.N)
	h.Write(d[:])
	return hex.EncodeToString(h.Sum(nil))
}

// computeBatch runs the campaign through the batch engine and renders
// the NDJSON body: one BatchRow per run, then a BatchTrailer. Like the
// other computes, the body is a pure function of the canonical request
// minus the width — which is exactly the cache-key contract.
func computeBatch(ctx context.Context, key string, c canonBatch) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ests, err := bench.CampaignEstimate(c.Layer, c.Seed, c.Runs, c.N, c.Plan, c.Width)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, e := range ests {
		row := BatchRow{
			Run:        i,
			Cycles:     e.Cycles,
			EnergyJ:    e.EnergyJ,
			EnergyBits: EnergyBits(e.EnergyJ),
			Errors:     e.Errors,
			Retries:    e.Retries,
		}
		if err := enc.Encode(row); err != nil {
			return nil, err
		}
	}
	trailer := BatchTrailer{Done: true, Key: key, Layer: c.Layer, Fault: c.Spec, Rows: len(ests)}
	if err := enc.Encode(trailer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseBatchBody decodes a batch NDJSON body back into rows and the
// trailer — the inverse of computeBatch's rendering. A body that ends
// without its trailer returns an error wrapping ErrTruncatedBody.
func ParseBatchBody(body []byte) ([]BatchRow, BatchTrailer, error) {
	var rows []BatchRow
	var trailer BatchTrailer
	dec := json.NewDecoder(bytes.NewReader(body))
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return rows, trailer, streamError("batch", err)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if json.Unmarshal(raw, &probe) == nil && probe.Done {
			if err := json.Unmarshal(raw, &trailer); err != nil {
				return rows, trailer, fmt.Errorf("serve: bad batch trailer: %w", err)
			}
			return rows, trailer, nil
		}
		var row BatchRow
		if err := json.Unmarshal(raw, &row); err != nil {
			return rows, trailer, fmt.Errorf("serve: bad batch row: %w", err)
		}
		rows = append(rows, row)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Request("batch")
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		respondError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	c, err := canonicalizeBatch(req)
	if err != nil {
		respondError(w, http.StatusBadRequest, err)
		return
	}
	key := c.key()
	body, outcome, status, err := s.schedule(r.Context(), "batch", key, req.DeadlineMs,
		func(ctx context.Context) ([]byte, error) { return computeBatch(ctx, key, c) })
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		s.reg.Rejected(status)
	}
	if err != nil {
		respondError(w, status, err)
		return
	}
	s.reg.Outcome("batch", outcome, uint64(time.Since(start).Microseconds()))
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Key", key)
	w.Write(body)
}

// Batch posts one batched-campaign request and decodes the NDJSON
// stream. The returned cache string is the server's X-Cache verdict.
func (c *Client) Batch(ctx context.Context, req BatchRequest) ([]BatchRow, BatchTrailer, string, error) {
	resp, err := c.post(ctx, "/v1/batch", req)
	if err != nil {
		return nil, BatchTrailer{}, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, BatchTrailer{}, "", apiError(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, BatchTrailer{}, "", err
	}
	rows, trailer, err := ParseBatchBody(body)
	return rows, trailer, resp.Header.Get("X-Cache"), err
}
