package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/explore"
)

// computeEstimate runs one corpus estimation point and renders the
// response body. The body is what the cache stores, so it must be a
// pure function of the canonical request — it is: the runner is
// deterministic and json.Marshal renders identical structs to
// identical bytes.
func computeEstimate(ctx context.Context, key string, c canonEstimate) ([]byte, error) {
	// The corpus runs are short (milliseconds); honoring the deadline
	// at entry keeps expired work from occupying a worker at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	est, err := bench.RunCorpusEstimate(c.Layer, c.Corpus, c.N, c.Plan)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := EstimateResponse{
		Key:        key,
		Layer:      c.Layer,
		Corpus:     c.Corpus,
		N:          c.N,
		Fault:      c.Spec,
		Cycles:     est.Cycles,
		EnergyJ:    est.EnergyJ,
		EnergyBits: EnergyBits(est.EnergyJ),
		Errors:     est.Errors,
		Retries:    est.Retries,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// EnergyBits renders a joule figure's IEEE-754 bit pattern as 16 hex
// digits — the representation the cache equivalence is asserted on.
func EnergyBits(e float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(e))
}

// EnergyFromBits is the exact inverse of EnergyBits.
func EnergyFromBits(s string) (float64, error) {
	var bits uint64
	if _, err := fmt.Sscanf(s, "%16x", &bits); err != nil {
		return 0, fmt.Errorf("serve: bad energy bits %q: %w", s, err)
	}
	return math.Float64frombits(bits), nil
}

// computeSweep runs the design-space sweep under ctx and renders the
// NDJSON body: one SweepRow per configuration in deterministic
// cross-product order, then a SweepTrailer. Deterministic per-config
// failures are part of the content (they travel in the trailer and are
// cached); a cancelled or expired sweep is not cached at all, since
// its row set depends on timing.
func (s *Server) computeSweep(ctx context.Context, key string, c canonSweep) ([]byte, error) {
	opts := explore.SweepOpts{Workers: s.opts.SweepWorkers, Faults: c.Faults}
	results, err := explore.SweepContext(ctx, opts, c.Layers, c.Orgs, c.Maps, c.Workloads)
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		row := SweepRow{
			Workload:   r.Workload,
			Layer:      r.Config.Layer,
			Org:        r.Config.Org.String(),
			AddrMap:    r.Config.AddrMap,
			Fault:      r.Config.Fault,
			Cycles:     r.Cycles,
			EnergyJ:    r.BusEnergyJ,
			EnergyBits: EnergyBits(r.BusEnergyJ),
			Tx:         r.Transactions,
			Retries:    r.Retries,
			Steps:      r.Steps,
		}
		if err := enc.Encode(row); err != nil {
			return nil, err
		}
	}
	trailer := SweepTrailer{Done: true, Key: key, Rows: len(results)}
	if err != nil {
		var joined interface{ Unwrap() []error }
		if errors.As(err, &joined) {
			for _, e := range joined.Unwrap() {
				trailer.Errors = append(trailer.Errors, e.Error())
			}
		} else {
			trailer.Errors = append(trailer.Errors, err.Error())
		}
	}
	if err := enc.Encode(trailer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseSweepBody decodes a sweep NDJSON body back into rows and the
// trailer — the inverse of computeSweep's rendering, shared by the
// client and the tests.
func ParseSweepBody(body []byte) ([]SweepRow, SweepTrailer, error) {
	var rows []SweepRow
	var trailer SweepTrailer
	dec := json.NewDecoder(bytes.NewReader(body))
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return rows, trailer, fmt.Errorf("serve: bad sweep stream: %w", err)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if json.Unmarshal(raw, &probe) == nil && probe.Done {
			if err := json.Unmarshal(raw, &trailer); err != nil {
				return rows, trailer, fmt.Errorf("serve: bad sweep trailer: %w", err)
			}
			return rows, trailer, nil
		}
		var row SweepRow
		if err := json.Unmarshal(raw, &row); err != nil {
			return rows, trailer, fmt.Errorf("serve: bad sweep row: %w", err)
		}
		rows = append(rows, row)
	}
}
