package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/bench"
	"repro/internal/explore"
)

// computeEstimate runs one corpus estimation point and renders the
// response body. The body is what the cache stores, so it must be a
// pure function of the canonical request — it is: the runner is
// deterministic and json.Marshal renders identical structs to
// identical bytes.
func computeEstimate(ctx context.Context, key string, c canonEstimate) ([]byte, error) {
	// The corpus runs are short (milliseconds); honoring the deadline
	// at entry keeps expired work from occupying a worker at all.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	est, err := bench.RunCorpusEstimate(c.Layer, c.Corpus, c.N, c.Plan)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp := EstimateResponse{
		Key:        key,
		Layer:      c.Layer,
		Corpus:     c.Corpus,
		N:          c.N,
		Fault:      c.Spec,
		Cycles:     est.Cycles,
		EnergyJ:    est.EnergyJ,
		EnergyBits: EnergyBits(est.EnergyJ),
		Errors:     est.Errors,
		Retries:    est.Retries,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// EnergyBits renders a joule figure's IEEE-754 bit pattern as 16 hex
// digits — the representation the cache equivalence is asserted on.
func EnergyBits(e float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(e))
}

// EnergyFromBits is the exact inverse of EnergyBits.
func EnergyFromBits(s string) (float64, error) {
	var bits uint64
	if _, err := fmt.Sscanf(s, "%16x", &bits); err != nil {
		return 0, fmt.Errorf("serve: bad energy bits %q: %w", s, err)
	}
	return math.Float64frombits(bits), nil
}

// computeSweep runs the design-space sweep under ctx and renders the
// NDJSON body: one SweepRow per configuration in deterministic
// cross-product order, then a SweepTrailer. Deterministic per-config
// failures are part of the content (they travel in the trailer and are
// cached); a cancelled or expired sweep is not cached at all, since
// its row set depends on timing. The exhaustive fidelity renders
// exactly as it always has; the screen and confirm fidelities add
// their accounting to the trailer.
func (s *Server) computeSweep(ctx context.Context, key string, c canonSweep) ([]byte, error) {
	opts := explore.SweepOpts{Workers: s.opts.SweepWorkers, Faults: c.Faults, Arbs: c.Arbs,
		Tears: c.Tears, Journals: c.Journals}
	if c.Fidelity != explore.FidelityExhaustive {
		return s.computeSweepMultiFi(ctx, key, c, opts)
	}
	results, err := explore.SweepContext(ctx, opts, c.Layers, c.Orgs, c.Maps, c.Workloads)
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		if err := enc.Encode(exactRow(r)); err != nil {
			return nil, err
		}
	}
	trailer := SweepTrailer{Done: true, Key: key, Rows: len(results)}
	appendSweepErrors(&trailer, err)
	if err := enc.Encode(trailer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// computeSweepMultiFi renders the screen and confirm fidelities. Screen
// streams every configuration's analytic prediction (Predicted set,
// exact-only counters zero); confirm streams the exact results of the
// pruning survivors. Both carry the screened/pruned/confirmed counts
// and the calibrated ε margins in the trailer, so pruning is never
// silent in the wire format either.
func (s *Server) computeSweepMultiFi(ctx context.Context, key string, c canonSweep, opts explore.SweepOpts) ([]byte, error) {
	mfOpts := explore.MultiFidelityOpts{
		SweepOpts:   opts,
		SkipConfirm: c.Fidelity == explore.FidelityScreen,
	}
	mf, err := explore.SweepMultiFidelityContext(ctx, mfOpts, c.Layers, c.Orgs, c.Maps, c.Workloads)
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	rows := 0
	if c.Fidelity == explore.FidelityScreen {
		for _, p := range mf.Screened {
			row := SweepRow{
				Workload:   p.Workload,
				Layer:      p.Layer,
				Org:        p.Org.String(),
				AddrMap:    p.AddrMap,
				Fault:      p.Fault,
				Arb:        p.Arb,
				Cycles:     uint64(math.Round(p.Cycles)),
				EnergyJ:    p.EnergyJ,
				EnergyBits: EnergyBits(p.EnergyJ),
				Predicted:  true,
				Kept:       p.Kept,
			}
			if err := enc.Encode(row); err != nil {
				return nil, err
			}
			rows++
		}
	} else {
		for _, r := range mf.Confirmed {
			if err := enc.Encode(exactRow(r)); err != nil {
				return nil, err
			}
			rows++
		}
	}
	trailer := SweepTrailer{
		Done:      true,
		Key:       key,
		Rows:      rows,
		Fidelity:  string(c.Fidelity),
		Screened:  mf.ScreenedConfigs,
		Pruned:    mf.PrunedConfigs,
		Confirmed: mf.ConfirmedConfigs,
		EpsEnergy: epsByLayer(mf.EpsEnergy),
		EpsCycles: epsByLayer(mf.EpsCycles),
	}
	appendSweepErrors(&trailer, err)
	if err := enc.Encode(trailer); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// exactRow renders one exact sweep result as its NDJSON row.
func exactRow(r explore.Result) SweepRow {
	row := SweepRow{
		Workload:   r.Workload,
		Layer:      r.Config.Layer,
		Org:        r.Config.Org.String(),
		AddrMap:    r.Config.AddrMap,
		Fault:      r.Config.Fault,
		Arb:        r.Config.Arb,
		Tear:       r.Config.Tear,
		Journal:    r.Config.Journal,
		Cycles:     r.Cycles,
		EnergyJ:    r.BusEnergyJ,
		EnergyBits: EnergyBits(r.BusEnergyJ),
		Tx:         r.Transactions,
		Retries:    r.Retries,
		Steps:      r.Steps,
		Torn:       r.Torn,
		CutCycle:   r.CutCycle,
		RecoveryJ:  r.RecoveryJ,
	}
	// The recovery figure gets the same bit-pattern treatment as the
	// energy total, but only when a replay actually ran — clean rows
	// must stay byte-identical to prior renderings.
	if r.RecoveryJ != 0 {
		row.RecoveryBits = EnergyBits(r.RecoveryJ)
	}
	return row
}

// epsByLayer renders the per-layer ε map with decimal string keys —
// JSON objects cannot key on integers.
func epsByLayer(in map[int]float64) map[string]float64 {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]float64, len(in))
	for l, v := range in {
		out[strconv.Itoa(l)] = v
	}
	return out
}

// appendSweepErrors flattens a sweep's errors.Join into trailer lines.
func appendSweepErrors(trailer *SweepTrailer, err error) {
	if err == nil {
		return
	}
	var joined interface{ Unwrap() []error }
	if errors.As(err, &joined) {
		for _, e := range joined.Unwrap() {
			trailer.Errors = append(trailer.Errors, e.Error())
		}
	} else {
		trailer.Errors = append(trailer.Errors, err.Error())
	}
}

// ErrTruncatedBody reports an NDJSON body that ended before its
// trailer: the stream is well-formed as far as it goes, it just stops.
// That is the signature of a cut-off transfer or a partially-written
// cached body — retryable from another source — whereas a syntax error
// inside the stream means corruption and fails fast. The cluster's
// peer-fetch layer branches on exactly this distinction.
var ErrTruncatedBody = errors.New("serve: truncated body (stream ended before trailer)")

// streamError classifies a decode failure: clean or mid-value EOF is
// truncation (the trailer never arrived), anything else is corruption.
func streamError(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("serve: bad %s stream: %w", what, ErrTruncatedBody)
	}
	return fmt.Errorf("serve: bad %s stream: %w", what, err)
}

// ParseSweepBody decodes a sweep NDJSON body back into rows and the
// trailer — the inverse of computeSweep's rendering, shared by the
// client and the tests. A body that ends without its trailer returns
// an error wrapping ErrTruncatedBody.
func ParseSweepBody(body []byte) ([]SweepRow, SweepTrailer, error) {
	var rows []SweepRow
	var trailer SweepTrailer
	dec := json.NewDecoder(bytes.NewReader(body))
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return rows, trailer, streamError("sweep", err)
		}
		var probe struct {
			Done bool `json:"done"`
		}
		if json.Unmarshal(raw, &probe) == nil && probe.Done {
			if err := json.Unmarshal(raw, &trailer); err != nil {
				return rows, trailer, fmt.Errorf("serve: bad sweep trailer: %w", err)
			}
			return rows, trailer, nil
		}
		var row SweepRow
		if err := json.Unmarshal(raw, &row); err != nil {
			return rows, trailer, fmt.Errorf("serve: bad sweep row: %w", err)
		}
		rows = append(rows, row)
	}
}
