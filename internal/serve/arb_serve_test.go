package serve

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/explore"
	"repro/internal/javacard"
)

// TestSweepArbAxisOverWire pins the arbitration axis through the wire
// format: the served rows carry the Arb field, match a direct in-process
// sweep of the same axes bit-for-bit, and the distributed fan-out
// (ExpandSweep → /v1/config per cell) reassembles the identical body.
func TestSweepArbAxisOverWire(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 2})
	req := SweepRequest{
		Layers:    []int{1},
		Orgs:      []string{"halfword"},
		AddrMaps:  []string{"near"},
		Workloads: []string{"stack-churn"},
		Arbs:      []string{"none", "rr"},
	}
	resp := postJSON(t, hs.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	body := readAll(t, resp)
	rows, trailer, err := ParseSweepBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !trailer.Done {
		t.Fatalf("%d rows (trailer %+v), want 2", len(rows), trailer)
	}
	if rows[0].Arb != "" || rows[1].Arb != "rr" {
		t.Fatalf("row arbs %q, %q — want \"\", \"rr\"", rows[0].Arb, rows[1].Arb)
	}

	var wls []javacard.Workload
	for _, w := range javacard.Workloads() {
		if w.Name == "stack-churn" {
			wls = append(wls, w)
		}
	}
	direct, err := explore.SweepWith(explore.SweepOpts{Arbs: []string{"", "rr"}},
		[]int{1}, []javacard.Organization{javacard.OrgHalf}, []string{"near"}, wls)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		want := direct[i]
		if row.Arb != want.Config.Arb || row.EnergyBits != EnergyBits(want.BusEnergyJ) ||
			row.Cycles != want.Cycles || row.Tx != want.Transactions {
			t.Fatalf("row %d: %+v does not match direct result %+v", i, row, want)
		}
	}
	if rows[1].Tx <= rows[0].Tx {
		t.Fatalf("contended row carries %d tx, solo %d — contenders missing over the wire",
			rows[1].Tx, rows[0].Tx)
	}

	// Distributed reassembly: the config fan-out enumerates the arb axis
	// innermost and concatenates to the identical body.
	key, configs, err := ExpandSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 2 || configs[0].Arb != "" || configs[1].Arb != "rr" {
		t.Fatalf("ExpandSweep configs %+v, want arb \"\" then \"rr\"", configs)
	}
	var assembled bytes.Buffer
	for _, cr := range configs {
		line, err := s.ConfigBodyInline(t.Context(), cr)
		if err != nil {
			t.Fatal(err)
		}
		assembled.Write(line)
	}
	tl, err := SweepTrailerLine(key, len(configs))
	if err != nil {
		t.Fatal(err)
	}
	assembled.Write(tl)
	if !bytes.Equal(assembled.Bytes(), body) {
		t.Fatalf("reassembled body differs from single-node sweep:\n%s\nvs\n%s",
			assembled.Bytes(), body)
	}
}

// TestSweepKeyArbAxis pins the content address: the arb axis, like the
// fault axis, is part of the key, and an invalid policy is rejected.
func TestSweepKeyArbAxis(t *testing.T) {
	k := func(r SweepRequest) string {
		c, err := canonicalizeSweep(r)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", r, err)
		}
		return c.key()
	}
	if k(SweepRequest{Arbs: []string{"rr"}}) == k(SweepRequest{}) {
		t.Fatal("arb axis not part of the content address")
	}
	if k(SweepRequest{Arbs: []string{"fixed", "rr"}}) == k(SweepRequest{Arbs: []string{"rr", "fixed"}}) {
		t.Fatal("arb axis order not part of the content address")
	}
	if _, err := canonicalizeSweep(SweepRequest{Arbs: []string{"priority"}}); err == nil {
		t.Fatal("unknown arbitration policy accepted")
	}
	if _, err := canonicalizeConfig(ConfigRequest{
		Workload: "stack-churn", Layer: 1, Org: "halfword", AddrMap: "near", Arb: "bogus",
	}); err == nil {
		t.Fatal("unknown config arbitration policy accepted")
	}
}
