package serve

import (
	"container/list"
	"context"
	"sync"
)

// entry is one content address's lifecycle: created by the first
// requester (the leader), joined by concurrent identical requests
// (followers), completed exactly once by a compute worker. The
// completed body is immutable — every reader gets the same bytes, which
// is how the cache's byte-identity contract is enforced structurally.
type entry struct {
	key  string
	done chan struct{} // closed at completion
	body []byte
	err  error

	// waiters counts requesters currently blocked on done. When the
	// last one gives up before completion, the cache cancels the
	// compute: nobody is left to read the result.
	waiters int
	cancel  context.CancelFunc
	elem    *list.Element // LRU position once committed
}

// completed reports whether the entry has a result (body or error).
func (e *entry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Cache is the content-addressed result store with singleflight
// admission: at most one compute per key is ever in flight, concurrent
// identical requests share it, and completed bodies are retained in an
// LRU bounded at max entries.
type Cache struct {
	mu     sync.Mutex
	max    int
	flight map[string]*entry        // in-flight computes by key
	ready  map[string]*list.Element // committed bodies by key
	lru    *list.List               // of *entry, front = most recent
}

// NewCache creates a cache retaining at most max completed results
// (max < 1 is clamped to 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:    max,
		flight: make(map[string]*entry),
		ready:  make(map[string]*list.Element),
		lru:    list.New(),
	}
}

// Len returns the number of completed entries currently retained.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// join is the admission point. The three outcomes map onto the serve
// outcomes: a committed body (hit), an existing in-flight entry the
// caller must wait on (dedup), or a fresh entry the caller must
// compute (miss/leader).
func (c *Cache) join(key string) (e *entry, leader bool, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ready[key]; ok {
		ent := el.Value.(*entry)
		c.lru.MoveToFront(el)
		return nil, false, ent.body
	}
	if ent, ok := c.flight[key]; ok {
		ent.waiters++
		return ent, false, nil
	}
	ent := &entry{key: key, done: make(chan struct{}), waiters: 1}
	c.flight[key] = ent
	return ent, true, nil
}

// peek returns a committed body without joining an in-flight compute —
// the local tier of the cluster's two-tier lookup, where a miss falls
// through to a peer fetch rather than a local compute.
func (c *Cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ready[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*entry).body, true
	}
	return nil, false
}

// insert stores an externally-computed body (a peer fetch) as a
// completed entry, returning the number of entries evicted. A key
// already committed keeps its original bytes — the first body a node
// serves for a key is the one it keeps replaying — and an in-flight
// local compute for the same key is left to finish on its own.
func (c *Cache) insert(key string, body []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ready[key]; ok {
		return 0
	}
	e := &entry{key: key, done: make(chan struct{}), body: body}
	close(e.done)
	e.elem = c.lru.PushFront(e)
	c.ready[key] = e.elem
	evicted := 0
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.ready, oldest.Value.(*entry).key)
		evicted++
	}
	return evicted
}

// setCancel arms the entry's compute-abandonment hook.
func (c *Cache) setCancel(e *entry, cancel context.CancelFunc) {
	c.mu.Lock()
	e.cancel = cancel
	c.mu.Unlock()
}

// leave releases one waiter. If the compute is still in flight and no
// waiter remains, it is cancelled — every client went away, so the
// result has no reader (and an abandoned compute must not poison the
// cache: commit drops cancelled results).
func (c *Cache) leave(e *entry) {
	c.mu.Lock()
	e.waiters--
	var cancel context.CancelFunc
	if e.waiters == 0 && !e.completed() {
		cancel = e.cancel
	}
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// commit completes an entry: the body (or error) becomes visible to
// every waiter, and a successful body is inserted into the LRU.
// Returns the number of entries evicted by the capacity bound.
func (c *Cache) commit(e *entry, body []byte, err error) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.body, e.err = body, err
	delete(c.flight, e.key)
	close(e.done)
	if err != nil {
		return 0 // failures are not cached; a retry recomputes
	}
	e.elem = c.lru.PushFront(e)
	c.ready[e.key] = e.elem
	evicted := 0
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.ready, oldest.Value.(*entry).key)
		evicted++
	}
	return evicted
}

// abandon removes a never-scheduled entry (the bounded queue rejected
// it) so the next identical request can try again, failing every
// current waiter with err.
func (c *Cache) abandon(e *entry, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.completed() {
		return
	}
	e.err = err
	delete(c.flight, e.key)
	close(e.done)
}
