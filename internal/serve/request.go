package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/javacard"
)

// Version is the serving layer's code-version tag. It is folded into
// every content hash, so bumping it invalidates all cached results —
// required whenever a change legitimately moves an energy figure (a
// model fix, a corpus change). Caching is only sound because the
// simulators are deterministic; the golden gate keeps them that way.
const Version = "ecserve/3"

// EstimateRequest asks for one corpus × layer × fault-plan energy
// estimation point: the body of POST /v1/estimate.
type EstimateRequest struct {
	// Layer selects the abstraction level: 0 (gate level), 1 (TL1) or
	// 2 (TL2).
	Layer int `json:"layer"`
	// Corpus names the transaction workload (bench.Corpora); default
	// "perf".
	Corpus string `json:"corpus,omitempty"`
	// N sizes the perf corpus; <= 0 selects bench.DefaultPerfN.
	N int `json:"n,omitempty"`
	// Fault is a named fault plan (fault.Names) or a key=value plan
	// spec (fault.Parse); empty means a clean run.
	Fault string `json:"fault,omitempty"`
	// DeadlineMs bounds the compute; 0 uses the server default.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// EstimateResponse is the result of one estimation point. EnergyBits
// is the IEEE-754 bit pattern of EnergyJ in hex — the field the
// byte-identity contract of the cache is stated (and tested) against.
type EstimateResponse struct {
	Key        string  `json:"key"`
	Layer      int     `json:"layer"`
	Corpus     string  `json:"corpus"`
	N          int     `json:"n"`
	Fault      string  `json:"fault"`
	Cycles     uint64  `json:"cycles"`
	EnergyJ    float64 `json:"energy_j"`
	EnergyBits string  `json:"energy_bits"`
	Errors     int     `json:"errors"`
	Retries    int     `json:"retries"`
}

// canonEstimate is a validated estimate request with defaults applied
// and the fault plan in canonical spec form.
type canonEstimate struct {
	Layer  int
	Corpus string
	N      int
	Plan   fault.Plan
	Spec   string // plan.Spec(), the canonical fault identity
}

// canonicalizeEstimate validates the request and resolves defaults, so
// two requests meaning the same computation canonicalize — and hash —
// identically.
func canonicalizeEstimate(req EstimateRequest) (canonEstimate, error) {
	c := canonEstimate{Layer: req.Layer, Corpus: req.Corpus, N: req.N}
	if c.Layer < 0 || c.Layer > 2 {
		return c, fmt.Errorf("serve: unsupported layer %d (valid layers: 0, 1, 2)", c.Layer)
	}
	if c.Corpus == "" {
		c.Corpus = "perf"
	}
	if c.Corpus != "perf" {
		c.N = 0 // only the perf corpus is parameterized
	} else if c.N <= 0 {
		c.N = bench.DefaultPerfN
	}
	plan, err := fault.Parse(strings.TrimSpace(req.Fault))
	if err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	c.Plan, c.Spec = plan, plan.Spec()
	// Reject unknown corpora now, not at compute time.
	if _, err := bench.CorpusItems(c.Corpus, c.N); err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	return c, nil
}

// key content-addresses the estimation point: layer × corpus identity ×
// fault plan × code version, where the corpus identity is a digest of
// the actual transaction bytes (not just the name), so a corpus
// generator change changes the address.
func (c canonEstimate) key() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00estimate\x00layer=%d\x00corpus=%s\x00n=%d\x00fault=%s\x00",
		Version, c.Layer, c.Corpus, c.N, c.Spec)
	items, err := bench.CorpusItems(c.Corpus, c.N)
	if err == nil {
		h.Write(itemBytes(items))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// itemBytes serializes a transaction corpus deterministically — the
// "workload bytes" component of an estimate's content address.
func itemBytes(items []core.Item) []byte {
	buf := make([]byte, 0, 32*len(items))
	var w [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	u64(uint64(len(items)))
	for _, it := range items {
		u64(it.NotBefore)
		u64(it.Tr.Addr)
		u64(uint64(it.Tr.Kind))
		u64(uint64(it.Tr.Width))
		if it.Tr.Burst {
			u64(1)
		} else {
			u64(0)
		}
		u64(uint64(len(it.Tr.Data)))
		for _, d := range it.Tr.Data {
			u64(uint64(d))
		}
	}
	return buf
}

// SweepRequest asks for a design-space sweep: the body of
// POST /v1/sweep. Zero-valued axes take the full default vocabulary,
// so the empty request is the complete §4.3 exploration.
type SweepRequest struct {
	Layers    []int    `json:"layers,omitempty"`    // default [1, 2]
	Orgs      []string `json:"orgs,omitempty"`      // default all SFR organizations
	AddrMaps  []string `json:"addr_maps,omitempty"` // default ["near", "far"]
	Workloads []string `json:"workloads,omitempty"` // default all named workloads
	Faults    []string `json:"faults,omitempty"`    // named plans; empty = clean only
	Arbs      []string `json:"arbs,omitempty"`      // arbitration policies; empty = single master
	Tears     []string `json:"tears,omitempty"`     // card-tear plans (tear.Names); empty = never torn
	Journals  []string `json:"journals,omitempty"`  // journal strategies (journal.Names); empty = unjournaled
	// Fidelity selects how the sweep spends its time (explore.Fidelities):
	// "exhaustive" (default) evaluates every configuration at its
	// requested layer; "screen" returns analytic predictions only;
	// "confirm" screens, prunes by calibrated ε-domination and confirms
	// the survivors exactly.
	Fidelity   string `json:"fidelity,omitempty"`
	DeadlineMs int64  `json:"deadline_ms,omitempty"`
	// Async queues the sweep as a job and returns 202 with its id
	// instead of holding the connection open; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// SweepRow is one configuration's outcome in the sweep's NDJSON
// stream. Under the "screen" fidelity the row carries the analytic
// prediction instead of an exact measurement: Predicted is set, Kept
// reports the pruning decision, and the exact-only counters (Tx,
// Retries, Steps) stay zero.
type SweepRow struct {
	Workload   string  `json:"workload"`
	Layer      int     `json:"layer"`
	Org        string  `json:"org"`
	AddrMap    string  `json:"addr_map"`
	Fault      string  `json:"fault,omitempty"`
	Arb        string  `json:"arb,omitempty"`
	Tear       string  `json:"tear,omitempty"`    // card-tear plan of this cell
	Journal    string  `json:"journal,omitempty"` // journal strategy of this cell
	Cycles     uint64  `json:"cycles"`
	EnergyJ    float64 `json:"energy_j"`
	EnergyBits string  `json:"energy_bits"`
	Tx         uint64  `json:"tx"`
	Retries    uint64  `json:"retries"`
	Steps      uint64  `json:"steps"`
	Predicted  bool    `json:"predicted,omitempty"`
	Kept       bool    `json:"kept,omitempty"`

	// Card-tear outcome (tear/journal cells only; absent otherwise, so
	// clean sweep bodies stay byte-identical to prior versions).
	Torn         bool    `json:"torn,omitempty"`
	CutCycle     uint64  `json:"cut_cycle,omitempty"`
	RecoveryJ    float64 `json:"recovery_j,omitempty"`
	RecoveryBits string  `json:"recovery_bits,omitempty"`
}

// SweepTrailer is the final NDJSON line of a sweep response. The
// screening metadata fields are present only for the non-exhaustive
// fidelities, so exhaustive sweep bodies are byte-identical to the
// historical rendering.
type SweepTrailer struct {
	Done   bool     `json:"done"`
	Key    string   `json:"key"`
	Rows   int      `json:"rows"`
	Errors []string `json:"errors,omitempty"`

	// Multi-fidelity accounting (fidelity "screen" / "confirm").
	Fidelity  string             `json:"fidelity,omitempty"`
	Screened  int                `json:"screened,omitempty"`
	Pruned    int                `json:"pruned,omitempty"`
	Confirmed int                `json:"confirmed,omitempty"`
	EpsEnergy map[string]float64 `json:"eps_energy,omitempty"` // per layer, ε derived from the calibrated band
	EpsCycles map[string]float64 `json:"eps_cycles,omitempty"`
}

// canonSweep is a validated sweep request with defaults applied and
// every axis element resolved against its vocabulary.
type canonSweep struct {
	Layers    []int
	Orgs      []javacard.Organization
	OrgNames  []string
	Maps      []string
	Workloads []javacard.Workload
	Faults    []string
	Arbs      []string
	Tears     []string
	Journals  []string
	Fidelity  explore.Fidelity
}

// OrgByName resolves an SFR-organization name (the Organization.String
// vocabulary) back to its value.
func OrgByName(name string) (javacard.Organization, bool) {
	for _, o := range javacard.Organizations {
		if o.String() == name {
			return o, true
		}
	}
	return 0, false
}

func canonicalizeSweep(req SweepRequest) (canonSweep, error) {
	var c canonSweep
	c.Layers = req.Layers
	if len(c.Layers) == 0 {
		c.Layers = []int{1, 2}
	}
	for _, l := range c.Layers {
		if !explore.ValidLayer(l) {
			return c, fmt.Errorf("serve: unsupported sweep layer %d (valid layers: %s)", l, explore.LayerVocab())
		}
	}
	fid, err := explore.ParseFidelity(req.Fidelity)
	if err != nil {
		return c, fmt.Errorf("serve: %w", err)
	}
	c.Fidelity = fid
	if len(req.Orgs) == 0 {
		c.Orgs = append(c.Orgs, javacard.Organizations...)
	} else {
		for _, name := range req.Orgs {
			o, ok := OrgByName(name)
			if !ok {
				var valid []string
				for _, v := range javacard.Organizations {
					valid = append(valid, v.String())
				}
				return c, fmt.Errorf("serve: unknown organization %q (valid: %s)",
					name, strings.Join(valid, ", "))
			}
			c.Orgs = append(c.Orgs, o)
		}
	}
	for _, o := range c.Orgs {
		c.OrgNames = append(c.OrgNames, o.String())
	}
	c.Maps = req.AddrMaps
	if len(c.Maps) == 0 {
		c.Maps = append(c.Maps, explore.AddrMaps...)
	}
	for _, m := range c.Maps {
		if _, ok := explore.BaseForMap(m); !ok {
			return c, fmt.Errorf("serve: unknown address map %q (valid: %s)",
				m, strings.Join(explore.AllAddrMaps, ", "))
		}
	}
	all := javacard.Workloads()
	if len(req.Workloads) == 0 {
		c.Workloads = all
	} else {
		for _, name := range req.Workloads {
			found := false
			for _, w := range all {
				if w.Name == name {
					c.Workloads = append(c.Workloads, w)
					found = true
					break
				}
			}
			if !found {
				var valid []string
				for _, w := range all {
					valid = append(valid, w.Name)
				}
				return c, fmt.Errorf("serve: unknown workload %q (valid: %s)",
					name, strings.Join(valid, ", "))
			}
		}
	}
	if len(req.Faults) > 0 {
		names, err := fault.ParseNames(strings.Join(req.Faults, ","))
		if err != nil {
			return c, fmt.Errorf("serve: %w", err)
		}
		c.Faults = names
	}
	if len(req.Arbs) > 0 {
		arbs, err := explore.ParseArbs(strings.Join(req.Arbs, ","))
		if err != nil {
			return c, fmt.Errorf("serve: %w", err)
		}
		c.Arbs = arbs
	}
	if len(req.Tears) > 0 {
		tears, err := explore.ParseTears(strings.Join(req.Tears, ","))
		if err != nil {
			return c, fmt.Errorf("serve: %w", err)
		}
		c.Tears = tears
	}
	if len(req.Journals) > 0 {
		journals, err := explore.ParseJournals(strings.Join(req.Journals, ","))
		if err != nil {
			return c, fmt.Errorf("serve: %w", err)
		}
		c.Journals = journals
	}
	if err := validateTearCombos(c); err != nil {
		return c, err
	}
	return c, nil
}

// validateTearCombos rejects tear/journal axes that some requested
// cell could not evaluate: card-tear injection needs a timed
// single-master bus, so an active tear plan or journal strategy is
// incompatible with layer 3 and with arbitration policies. Lists
// containing only "none" (canonicalized to "") stay unrestricted.
func validateTearCombos(c canonSweep) error {
	active := false
	for _, t := range c.Tears {
		if t != "" {
			active = true
		}
	}
	for _, j := range c.Journals {
		if j != "" {
			active = true
		}
	}
	if !active {
		return nil
	}
	for _, l := range c.Layers {
		if l != 1 && l != 2 {
			return fmt.Errorf("serve: tear/journal axes need timed layers (1, 2); layer %d requested", l)
		}
	}
	for _, a := range c.Arbs {
		if a != "" {
			return fmt.Errorf("serve: tear/journal axes are single-master only; arbitration %q requested", a)
		}
	}
	return nil
}

// key content-addresses the sweep: every axis in request order plus a
// digest of each workload's assembled program bytes and the code
// version. Axis order matters — it determines the NDJSON row order —
// so it is part of the address.
func (c canonSweep) key() string {
	h := sha256.New()
	// The calibration version is part of the address: layer-3 rows and
	// the screen/confirm fidelities are functions of the fitted model,
	// so a new fit procedure must miss the old cache entries.
	fmt.Fprintf(h, "%s\x00sweep\x00%s\x00fidelity=%s\x00layers=%v\x00orgs=%v\x00maps=%v\x00faults=%v\x00arbs=%v\x00tears=%v\x00journals=%v\x00",
		Version, calib.Version, c.Fidelity, c.Layers, c.OrgNames, c.Maps, c.Faults, c.Arbs, c.Tears, c.Journals)
	for _, w := range c.Workloads {
		hashWorkload(h, w)
	}
	return hex.EncodeToString(h.Sum(nil))
}
