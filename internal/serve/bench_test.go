package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
)

// Serving-path benchmarks: the three regimes the cache creates. Cold
// requests pay one full corpus estimation; cache hits pay only HTTP
// and a map lookup; deduped concurrent requests share one compute
// between 16 clients. The EXPERIMENTS appendix quotes these figures.

func newBenchServer(b *testing.B, opts Options) (*Server, *Client) {
	b.Helper()
	s := New(opts)
	hs := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &Client{BaseURL: hs.URL}
}

// benchReq builds the benchmark workload point. A nonzero seed in an
// otherwise clean fault plan changes the content address but not the
// computed work, so rotating it yields unlimited distinct cold keys
// with identical cost.
func benchReq(seed int) EstimateRequest {
	req := EstimateRequest{Layer: 2, Corpus: "perf", N: 64}
	if seed > 0 {
		req.Fault = fmt.Sprintf("seed=%d", seed)
	}
	return req
}

func BenchmarkServeEstimateCold(b *testing.B) {
	_, client := newBenchServer(b, Options{Workers: runtime.GOMAXPROCS(0), CacheEntries: b.N + 1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, verdict, err := client.Estimate(ctx, benchReq(i+1)); err != nil {
			b.Fatal(err)
		} else if verdict != "miss" {
			b.Fatalf("iteration %d verdict %q, want miss", i, verdict)
		}
	}
}

func BenchmarkServeEstimateHit(b *testing.B) {
	_, client := newBenchServer(b, Options{Workers: 2})
	ctx := context.Background()
	req := benchReq(0)
	if _, _, err := client.Estimate(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, verdict, err := client.Estimate(ctx, req); err != nil {
			b.Fatal(err)
		} else if verdict != "hit" {
			b.Fatalf("iteration %d verdict %q, want hit", i, verdict)
		}
	}
}

// BenchmarkServeEstimateDedup16 issues 16 concurrent identical
// requests per iteration under a fresh key; the per-op time is the
// wall-clock for the whole deduped burst (one compute, 16 responses).
func BenchmarkServeEstimateDedup16(b *testing.B) {
	s, client := newBenchServer(b, Options{Workers: 2, CacheEntries: b.N + 1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, _, err := client.Estimate(ctx, benchReq(i+1)); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if computes := s.Stats().Computes; computes != uint64(b.N) {
		b.Fatalf("%d computes for %d deduped bursts", computes, b.N)
	}
}
