package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is the thin HTTP client for a remote estimation server, used
// by jcexplore -remote and the serving smoke tests.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes an error body into a useful message.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("serve: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *Client) post(ctx context.Context, path string, req any) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	return c.http().Do(hr)
}

// Estimate posts one estimation request. The returned cache string is
// the server's X-Cache verdict ("hit", "dedup" or "miss").
func (c *Client) Estimate(ctx context.Context, req EstimateRequest) (EstimateResponse, string, error) {
	resp, err := c.post(ctx, "/v1/estimate", req)
	if err != nil {
		return EstimateResponse{}, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return EstimateResponse{}, "", apiError(resp)
	}
	defer resp.Body.Close()
	var out EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return EstimateResponse{}, "", fmt.Errorf("serve: bad estimate response: %w", err)
	}
	return out, resp.Header.Get("X-Cache"), nil
}

// Sweep posts one synchronous sweep request and decodes the NDJSON
// stream.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) ([]SweepRow, SweepTrailer, error) {
	req.Async = false
	resp, err := c.post(ctx, "/v1/sweep", req)
	if err != nil {
		return nil, SweepTrailer{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, SweepTrailer{}, apiError(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, SweepTrailer{}, err
	}
	return ParseSweepBody(body)
}

// SweepAsync queues a sweep job and returns its handle.
func (c *Client) SweepAsync(ctx context.Context, req SweepRequest) (Job, error) {
	req.Async = true
	resp, err := c.post(ctx, "/v1/sweep", req)
	if err != nil {
		return Job{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return Job{}, apiError(resp)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return Job{}, fmt.Errorf("serve: bad job response: %w", err)
	}
	return job, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return Job{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Job{}, apiError(resp)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return Job{}, fmt.Errorf("serve: bad job response: %w", err)
	}
	return job, nil
}

// JobResult fetches a completed job's NDJSON body.
func (c *Client) JobResult(ctx context.Context, id string) ([]SweepRow, SweepTrailer, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id+"/result")
	if err != nil {
		return nil, SweepTrailer{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, SweepTrailer{}, apiError(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, SweepTrailer{}, err
	}
	return ParseSweepBody(body)
}

// Healthz probes the server's health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: health: %s", resp.Status)
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return c.http().Do(hr)
}
