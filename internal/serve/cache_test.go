package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestCacheJoinCommitHit(t *testing.T) {
	c := NewCache(4)
	e, leader, body := c.join("k1")
	if !leader || body != nil {
		t.Fatalf("first join: leader=%v body=%v", leader, body)
	}
	if n := c.commit(e, []byte("r1"), nil); n != 0 {
		t.Fatalf("commit evicted %d from an empty cache", n)
	}
	_, _, body = c.join("k1")
	if string(body) != "r1" {
		t.Fatalf("hit body %q, want r1", body)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheSingleflightSharesOneEntry(t *testing.T) {
	c := NewCache(4)
	e, leader, _ := c.join("k")
	if !leader {
		t.Fatal("first join not leader")
	}
	var wg sync.WaitGroup
	bodies := make([]string, 8)
	for i := 0; i < 8; i++ {
		f, isLeader, cached := c.join("k")
		if isLeader || cached != nil || f != e {
			t.Fatalf("follower %d: leader=%v cached=%v sameEntry=%v", i, isLeader, cached, f == e)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-f.done
			bodies[i] = string(f.body)
			c.leave(f)
		}(i)
	}
	c.commit(e, []byte("shared"), nil)
	c.leave(e)
	wg.Wait()
	for i, b := range bodies {
		if b != "shared" {
			t.Fatalf("follower %d read %q", i, b)
		}
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	e, _, _ := c.join("k")
	c.commit(e, nil, errors.New("boom"))
	c.leave(e)
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	_, leader, body := c.join("k")
	if !leader || body != nil {
		t.Fatal("retry after failure did not become a fresh leader")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for _, k := range []string{"a", "b"} {
		e, _, _ := c.join(k)
		c.commit(e, []byte(k), nil)
		c.leave(e)
	}
	// Touch "a" so "b" is the eviction victim.
	if _, _, body := c.join("a"); string(body) != "a" {
		t.Fatalf("warm-up hit failed: %q", body)
	}
	e, _, _ := c.join("z")
	if n := c.commit(e, []byte("z"), nil); n != 1 {
		t.Fatalf("evicted %d entries, want 1", n)
	}
	c.leave(e)
	if _, leader, _ := c.join("b"); !leader {
		t.Fatal("LRU victim was not the least recently used entry")
	}
	if _, _, body := c.join("a"); string(body) != "a" {
		t.Fatal("recently used entry was evicted")
	}
}

// When the last waiter leaves an in-flight entry, its compute context
// is cancelled — nobody is left to read the result.
func TestCacheLastWaiterCancelsCompute(t *testing.T) {
	c := NewCache(4)
	e, _, _ := c.join("k")
	ctx, cancel := context.WithCancel(context.Background())
	c.setCancel(e, cancel)
	f, _, _ := c.join("k") // second waiter
	c.leave(e)
	if ctx.Err() != nil {
		t.Fatal("compute cancelled while a waiter remains")
	}
	c.leave(f)
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatal("compute not cancelled after the last waiter left")
	}
}

func TestCacheAbandonFailsWaiters(t *testing.T) {
	c := NewCache(4)
	e, _, _ := c.join("k")
	c.abandon(e, errOverloaded)
	<-e.done
	if !errors.Is(e.err, errOverloaded) {
		t.Fatalf("abandoned entry err = %v", e.err)
	}
	c.leave(e)
	if _, leader, _ := c.join("k"); !leader {
		t.Fatal("abandoned key not retryable")
	}
}

func TestEstimateKeyStability(t *testing.T) {
	base := EstimateRequest{Layer: 1, Corpus: "perf", N: 64}
	k := func(r EstimateRequest) string {
		c, err := canonicalizeEstimate(r)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", r, err)
		}
		return c.key()
	}
	if k(base) != k(base) {
		t.Fatal("identical requests hash differently")
	}
	// Defaults canonicalize: empty corpus = perf, n<=0 = DefaultPerfN,
	// "" and "none" are the same clean plan.
	if k(EstimateRequest{Layer: 1}) != k(EstimateRequest{Layer: 1, Corpus: "perf", N: 256, Fault: "none"}) {
		t.Fatal("default resolution changes the content address")
	}
	// Every axis is load-bearing.
	distinct := []EstimateRequest{
		base,
		{Layer: 2, Corpus: "perf", N: 64},
		{Layer: 1, Corpus: "perf", N: 65},
		{Layer: 1, Corpus: "verification"},
		{Layer: 1, Corpus: "perf", N: 64, Fault: "flaky"},
		{Layer: 1, Corpus: "perf", N: 64, Fault: "rerr=25"},
	}
	seen := map[string]int{}
	for i, r := range distinct {
		key := k(r)
		if j, dup := seen[key]; dup {
			t.Fatalf("requests %d and %d share a content address", i, j)
		}
		seen[key] = i
	}
}

func TestSweepKeyStability(t *testing.T) {
	k := func(r SweepRequest) string {
		c, err := canonicalizeSweep(r)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", r, err)
		}
		return c.key()
	}
	// Defaults canonicalize to the explicit full request.
	full := SweepRequest{
		Layers:    []int{1, 2},
		Orgs:      []string{"byte-staged", "halfword", "packed-word", "burst4"},
		AddrMaps:  []string{"near", "far"},
		Workloads: []string{"arith-loop", "stack-churn", "wallet"},
	}
	if k(SweepRequest{}) != k(full) {
		t.Fatal("sweep default resolution changes the content address")
	}
	// Deadline and async are serving parameters, not content.
	if k(SweepRequest{DeadlineMs: 5, Async: true}) != k(SweepRequest{}) {
		t.Fatal("serving parameters leaked into the content address")
	}
	// Axis order is content (it orders the rows).
	a := SweepRequest{Layers: []int{1, 2}, Workloads: []string{"wallet"}}
	b := SweepRequest{Layers: []int{2, 1}, Workloads: []string{"wallet"}}
	if k(a) == k(b) {
		t.Fatal("axis order not part of the content address")
	}
	if k(SweepRequest{Faults: []string{"flaky"}}) == k(SweepRequest{}) {
		t.Fatal("fault axis not part of the content address")
	}
}
