package serve

import (
	"sync/atomic"
	"testing"

	"repro/internal/batch"
)

// TestCampaignDigestMemoized is the hot-path fix's regression test:
// computing a batch key must generate the campaign corpus exactly once
// per (seed, runs, n) — every later key computation for the same
// campaign reuses the memoized digest, whatever the request rate.
func TestCampaignDigestMemoized(t *testing.T) {
	orig := campaignGen
	t.Cleanup(func() { campaignGen = orig })
	var calls atomic.Int64
	campaignGen = func(seed uint64, runs, n int) []batch.Run {
		calls.Add(1)
		return orig(seed, runs, n)
	}

	// Seeds nothing else uses, so the shared memo cannot pre-contain them.
	req := BatchRequest{Layer: 0, Seed: 0xFEED_0001, Runs: 4, N: 32}
	c, err := canonicalizeBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	k1 := c.key()
	for i := 0; i < 16; i++ {
		if k2 := c.key(); k2 != k1 {
			t.Fatalf("key unstable across calls: %s vs %s", k2, k1)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("17 key computations generated the corpus %d times, want 1", got)
	}

	// A different campaign is a fresh generation — the memo keys on the
	// full (seed, runs, n) identity.
	for i, alt := range []BatchRequest{
		{Layer: 0, Seed: 0xFEED_0002, Runs: 4, N: 32},
		{Layer: 0, Seed: 0xFEED_0001, Runs: 5, N: 32},
		{Layer: 0, Seed: 0xFEED_0001, Runs: 4, N: 33},
	} {
		ca, err := canonicalizeBatch(alt)
		if err != nil {
			t.Fatal(err)
		}
		if ca.key() == k1 {
			t.Fatalf("variant %d collided with the base key", i)
		}
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("3 distinct campaigns after the base generated %d extra corpora, want 3 (total 4, got %d)",
			got-1, got)
	}
}

// TestCampaignDigestBounded: the memo is a bounded FIFO — unbounded
// request diversity must not grow it past its cap.
func TestCampaignDigestBounded(t *testing.T) {
	for i := 0; i < maxCampaignDigests+32; i++ {
		campaignDigest(0xB0DE_0000+uint64(i), 1, 1)
	}
	campMu.Lock()
	n := len(campDigests)
	campMu.Unlock()
	if n > maxCampaignDigests {
		t.Fatalf("memo holds %d digests, cap is %d", n, maxCampaignDigests)
	}
}

// The satellite's perf contract: once the digest is memoized, key cost
// is independent of campaign size. Compare the warm ns/op of a tiny
// campaign against one 256× larger — they should be indistinguishable,
// because neither regenerates its corpus.
func benchmarkBatchKeyWarm(b *testing.B, runs, n int) {
	c, err := canonicalizeBatch(BatchRequest{Layer: 0, Seed: 0xBE9C_0000 + uint64(runs*n), Runs: runs, N: n})
	if err != nil {
		b.Fatal(err)
	}
	c.key() // warm the memo: the one allowed corpus generation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.key() == "" {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkBatchKeyWarmSmall(b *testing.B) { benchmarkBatchKeyWarm(b, 4, 64) }

func BenchmarkBatchKeyWarmLarge(b *testing.B) { benchmarkBatchKeyWarm(b, 256, 4096) }
