package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestSweepTearAxesOverWire pins the tear/journal axes through the wire
// format: rows carry the new fields, torn cells report a recovery
// figure with its bit pattern, and the distributed fan-out (ExpandSweep
// → /v1/config per cell) reassembles the identical body.
func TestSweepTearAxesOverWire(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 2})
	req := SweepRequest{
		Layers:    []int{1},
		Orgs:      []string{"halfword"},
		AddrMaps:  []string{"near"},
		Workloads: []string{"stack-churn"},
		Tears:     []string{"none", "tear-early"},
		Journals:  []string{"none", "word-eager"},
	}
	resp := postJSON(t, hs.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	body := readAll(t, resp)
	rows, trailer, err := ParseSweepBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || !trailer.Done {
		t.Fatalf("%d rows (trailer %+v), want 4", len(rows), trailer)
	}
	// Canonical order: tears outer, journals innermost.
	wantAxes := []struct{ tear, journal string }{
		{"", ""}, {"", "word-eager"}, {"tear-early", ""}, {"tear-early", "word-eager"},
	}
	for i, w := range wantAxes {
		if rows[i].Tear != w.tear || rows[i].Journal != w.journal {
			t.Fatalf("row %d axes (%q, %q), want (%q, %q)",
				i, rows[i].Tear, rows[i].Journal, w.tear, w.journal)
		}
	}
	for _, r := range rows {
		if r.Tear == "" && r.Journal == "" {
			if r.Torn || r.RecoveryJ != 0 || r.RecoveryBits != "" {
				t.Fatalf("clean row carries tear outcome: %+v", r)
			}
			continue
		}
		if r.Tear == "" {
			// Journal-only cells still replay at power-up; they must not
			// report a cut.
			if r.Torn || r.CutCycle != 0 {
				t.Fatalf("untorn journaled row reports a cut: %+v", r)
			}
		} else if !r.Torn || r.CutCycle == 0 {
			t.Fatalf("torn row missed its cut: %+v", r)
		}
		if r.Journal != "" {
			if r.RecoveryJ <= 0 || r.RecoveryBits != EnergyBits(r.RecoveryJ) {
				t.Fatalf("journaled row recovery broken: %+v", r)
			}
		}
	}

	// Distributed reassembly: tears then journals enumerate innermost and
	// concatenate to the identical single-node body.
	key, configs, err := ExpandSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 4 {
		t.Fatalf("%d configs, want 4", len(configs))
	}
	var assembled bytes.Buffer
	for _, cr := range configs {
		line, err := s.ConfigBodyInline(t.Context(), cr)
		if err != nil {
			t.Fatal(err)
		}
		assembled.Write(line)
	}
	tl, err := SweepTrailerLine(key, len(configs))
	if err != nil {
		t.Fatal(err)
	}
	assembled.Write(tl)
	if !bytes.Equal(assembled.Bytes(), body) {
		t.Fatalf("reassembled body differs from single-node sweep:\n%s\nvs\n%s",
			assembled.Bytes(), body)
	}
}

// TestSweepCleanRowsByteStable pins the compatibility contract: a sweep
// that never mentions the tear/journal axes renders rows with none of
// the new JSON fields present.
func TestSweepCleanRowsByteStable(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, hs.URL+"/v1/sweep", SweepRequest{
		Layers:    []int{1},
		Orgs:      []string{"halfword"},
		AddrMaps:  []string{"near"},
		Workloads: []string{"stack-churn"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	body := string(readAll(t, resp))
	for _, field := range []string{"tear", "journal", "torn", "cut_cycle", "recovery_j", "recovery_bits"} {
		if strings.Contains(body, `"`+field+`"`) {
			t.Fatalf("clean sweep body leaks %q:\n%s", field, body)
		}
	}
}

// TestSweepTearAxisRejections pins the 400-class vocabulary and
// combination errors for the new axes.
func TestSweepTearAxisRejections(t *testing.T) {
	base := SweepRequest{
		Layers:    []int{1},
		Orgs:      []string{"halfword"},
		AddrMaps:  []string{"near"},
		Workloads: []string{"stack-churn"},
	}
	cases := []struct {
		name string
		mut  func(r *SweepRequest)
		want string
	}{
		{"unknown tear", func(r *SweepRequest) { r.Tears = []string{"tear-sideways"} }, "tear"},
		{"unknown journal", func(r *SweepRequest) { r.Journals = []string{"word-sometimes"} }, "journal"},
		{"analytic layer", func(r *SweepRequest) {
			r.Layers = []int{3}
			r.Tears = []string{"tear-early"}
		}, "timed layers"},
		{"arbitration", func(r *SweepRequest) {
			r.Arbs = []string{"rr"}
			r.Journals = []string{"word-eager"}
		}, "single-master"},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		_, err := canonicalizeSweep(req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Inactive entries ("none") do not trigger the combination rules.
	ok := base
	ok.Layers = []int{3}
	ok.Tears = []string{"none"}
	ok.Journals = []string{"none"}
	if _, err := canonicalizeSweep(ok); err != nil {
		t.Fatalf("inactive tear/journal entries rejected: %v", err)
	}

	// The same rules hold for single configurations.
	cfg := ConfigRequest{Workload: "stack-churn", Layer: 1, Org: "halfword", AddrMap: "near"}
	bad := cfg
	bad.Tear = "tear-sideways"
	if _, err := canonicalizeConfig(bad); err == nil {
		t.Fatal("unknown config tear plan accepted")
	}
	bad = cfg
	bad.Layer = 3
	bad.Journal = "word-eager"
	if _, err := canonicalizeConfig(bad); err == nil {
		t.Fatal("analytic-layer journaled config accepted")
	}
	bad = cfg
	bad.Arb = "rr"
	bad.Tear = "tear-mid"
	if _, err := canonicalizeConfig(bad); err == nil {
		t.Fatal("arbitrated torn config accepted")
	}
}

// TestSweepKeyTearAxes pins the content address: both new axes, and
// their order, are part of the key at sweep and config granularity.
func TestSweepKeyTearAxes(t *testing.T) {
	k := func(r SweepRequest) string {
		c, err := canonicalizeSweep(r)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", r, err)
		}
		return c.key()
	}
	if k(SweepRequest{Tears: []string{"tear-mid"}}) == k(SweepRequest{}) {
		t.Fatal("tear axis not part of the content address")
	}
	if k(SweepRequest{Journals: []string{"word-eager"}}) == k(SweepRequest{}) {
		t.Fatal("journal axis not part of the content address")
	}
	if k(SweepRequest{Tears: []string{"tear-early", "tear-mid"}}) ==
		k(SweepRequest{Tears: []string{"tear-mid", "tear-early"}}) {
		t.Fatal("tear axis order not part of the content address")
	}

	ck := func(r ConfigRequest) string {
		key, err := ConfigKey(r)
		if err != nil {
			t.Fatalf("config key %+v: %v", r, err)
		}
		return key
	}
	cfg := ConfigRequest{Workload: "stack-churn", Layer: 1, Org: "halfword", AddrMap: "near"}
	torn := cfg
	torn.Tear = "tear-mid"
	torn.Journal = "page-lazy"
	if ck(cfg) == ck(torn) {
		t.Fatal("config tear/journal fields not part of the content address")
	}
}
