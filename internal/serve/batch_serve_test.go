package serve

import (
	"context"
	"net/http/httptest"
	"testing"
)

// newBatchTestServer spins up a small server/client pair for the batch
// endpoint tests.
func newBatchTestServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, &Client{BaseURL: ts.URL}
}

// TestBatchWidthInvariantCache pins the /v1/batch width-invariance
// contract: two requests differing only in lane width share one cache
// entry, the second is a HIT, and the decoded per-run results (down to
// the energy bit patterns) are identical.
func TestBatchWidthInvariantCache(t *testing.T) {
	_, c := newBatchTestServer(t)
	ctx := context.Background()

	req := BatchRequest{Layer: 1, Seed: 7, Runs: 8, N: 24, Fault: "grind", Width: 1}
	rows1, tr1, verdict1, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatalf("batch width 1: %v", err)
	}
	if verdict1 != "miss" {
		t.Fatalf("first batch verdict %q, want miss", verdict1)
	}
	if !tr1.Done || tr1.Rows != 8 || len(rows1) != 8 {
		t.Fatalf("bad trailer/rows: %+v, %d rows", tr1, len(rows1))
	}

	req.Width = 64 // wider than runs: capped, same campaign, same key
	rows2, tr2, verdict2, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatalf("batch width 64: %v", err)
	}
	if verdict2 != "hit" {
		t.Fatalf("second batch verdict %q, want hit (width must not change the key)", verdict2)
	}
	if tr2.Key != tr1.Key {
		t.Fatalf("keys differ across widths: %s vs %s", tr1.Key, tr2.Key)
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("run %d differs across widths: %+v vs %+v", i, rows1[i], rows2[i])
		}
	}

	// A different seed is a different campaign: fresh compute.
	req.Seed = 8
	_, tr3, verdict3, err := c.Batch(ctx, req)
	if err != nil {
		t.Fatalf("batch seed 8: %v", err)
	}
	if verdict3 != "miss" || tr3.Key == tr1.Key {
		t.Fatalf("seed change: verdict %q key %s, want a fresh miss", verdict3, tr3.Key)
	}

	// Fault plans must change the result: grind retries, clean does not.
	retries := 0
	for _, r := range rows1 {
		retries += r.Retries
	}
	if retries == 0 {
		t.Fatal("grind campaign had no retries; fault test is vacuous")
	}
}

// TestBatchRequestValidation pins the 400 surface of /v1/batch.
func TestBatchRequestValidation(t *testing.T) {
	_, c := newBatchTestServer(t)
	ctx := context.Background()
	bad := []BatchRequest{
		{Layer: 2},                       // TL2 is not batched
		{Layer: -1},                      // negative layer
		{Layer: 0, Width: 65},            // over MaxWidth
		{Layer: 0, Runs: 2000},           // over runs limit
		{Layer: 0, N: 5000},              // over n limit
		{Layer: 0, Fault: "no-such-one"}, // unknown plan
	}
	for i, req := range bad {
		if _, _, _, err := c.Batch(ctx, req); err == nil {
			t.Fatalf("bad request %d (%+v) accepted", i, req)
		}
	}
	if _, tr, _, err := c.Batch(ctx, BatchRequest{Layer: 0, Runs: 4, N: 8}); err != nil || tr.Rows != 4 {
		t.Fatalf("valid minimal request failed: %v, trailer %+v", err, tr)
	}
}
