package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/calib"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/javacard"
	"repro/internal/journal"
	"repro/internal/tear"
)

// POST /v1/config: one sweep configuration — the work-stealing unit of
// a distributed sweep. A cluster coordinator splits an exhaustive
// /v1/sweep into its cross product and fans the configurations out to
// peer nodes as /v1/config requests; each peer computes (or replays)
// its row through the same singleflight/cache/queue machinery as every
// other endpoint. The response body is exactly the NDJSON line the
// configuration contributes to a single-node sweep body, so the
// coordinator reassembles a byte-identical sweep by concatenation.

// ConfigRequest is the body of POST /v1/config.
type ConfigRequest struct {
	Workload   string `json:"workload"`
	Layer      int    `json:"layer"`
	Org        string `json:"org"`
	AddrMap    string `json:"addr_map"`
	Fault      string `json:"fault,omitempty"`
	Arb        string `json:"arb,omitempty"`
	Tear       string `json:"tear,omitempty"`
	Journal    string `json:"journal,omitempty"`
	DeadlineMs int64  `json:"deadline_ms,omitempty"`
}

// canonConfig is a validated configuration with every axis element
// resolved against its vocabulary.
type canonConfig struct {
	Workload javacard.Workload
	Layer    int
	Org      javacard.Organization
	AddrMap  string
	Fault    string
	Arb      string
	Tear     string
	Journal  string
}

func canonicalizeConfig(req ConfigRequest) (canonConfig, error) {
	var c canonConfig
	if !explore.ValidLayer(req.Layer) {
		return c, fmt.Errorf("serve: unsupported sweep layer %d (valid layers: %s)", req.Layer, explore.LayerVocab())
	}
	c.Layer = req.Layer
	org, ok := OrgByName(req.Org)
	if !ok {
		return c, fmt.Errorf("serve: unknown organization %q", req.Org)
	}
	c.Org = org
	if _, ok := explore.BaseForMap(req.AddrMap); !ok {
		return c, fmt.Errorf("serve: unknown address map %q", req.AddrMap)
	}
	c.AddrMap = req.AddrMap
	if req.Fault != "" {
		if _, ok := fault.Named(req.Fault); !ok {
			return c, fmt.Errorf("serve: unknown fault plan %q (valid plans: %s)", req.Fault, strings.Join(fault.Names, ", "))
		}
	}
	c.Fault = req.Fault
	if req.Arb != "" && req.Arb != "none" {
		arbs, err := explore.ParseArbs(req.Arb)
		if err != nil || len(arbs) != 1 {
			return c, fmt.Errorf("serve: unknown arbitration policy %q", req.Arb)
		}
		c.Arb = arbs[0]
	}
	if req.Tear != "" && req.Tear != "none" {
		if _, ok := tear.Named(req.Tear); !ok {
			return c, fmt.Errorf("serve: unknown tear plan %q (valid plans: %s)",
				req.Tear, strings.Join(tear.Names, ", "))
		}
		c.Tear = req.Tear
	}
	if req.Journal != "" && req.Journal != "none" {
		if _, ok := journal.Named(req.Journal); !ok {
			return c, fmt.Errorf("serve: unknown journal strategy %q (valid strategies: %s)",
				req.Journal, strings.Join(journal.Names, ", "))
		}
		c.Journal = req.Journal
	}
	if c.Tear != "" || c.Journal != "" {
		if c.Layer != 1 && c.Layer != 2 {
			return c, fmt.Errorf("serve: tear/journal configurations need timed layers (1, 2); layer %d requested", c.Layer)
		}
		if c.Arb != "" {
			return c, fmt.Errorf("serve: tear/journal configurations are single-master only; arbitration %q requested", c.Arb)
		}
	}
	found := false
	for _, w := range javacard.Workloads() {
		if w.Name == req.Workload {
			c.Workload, found = w, true
			break
		}
	}
	if !found {
		return c, fmt.Errorf("serve: unknown workload %q", req.Workload)
	}
	return c, nil
}

// hashWorkload folds a workload's assembled program bytes into h — the
// "workload bytes" component shared by the sweep and config addresses.
func hashWorkload(h interface{ Write([]byte) (int, error) }, w javacard.Workload) {
	prog := w.Program()
	fmt.Fprintf(h, "workload=%s\x00main=%d\x00", w.Name, len(prog.Main))
	h.Write(prog.Main)
	for _, m := range prog.Methods {
		fmt.Fprintf(h, "method=%d\x00", len(m.Code))
		h.Write(m.Code)
	}
	fmt.Fprintf(h, "statics=%d\x00", prog.Statics)
}

// key content-addresses one configuration row. calib.Version is folded
// in because layer-3 rows are functions of the fitted model; both code
// versions guard the cluster against mixed-version peers exchanging
// bytes that would not be bit-identical.
func (c canonConfig) key() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00config\x00%s\x00layer=%d\x00org=%s\x00map=%s\x00fault=%s\x00arb=%s\x00tear=%s\x00journal=%s\x00",
		Version, calib.Version, c.Layer, c.Org.String(), c.AddrMap, c.Fault, c.Arb, c.Tear, c.Journal)
	hashWorkload(h, c.Workload)
	return hex.EncodeToString(h.Sum(nil))
}

// computeConfig evaluates one configuration through the sweep engine
// and renders its NDJSON row — byte-identical to the line the same
// configuration contributes inside a full sweep body.
func computeConfig(ctx context.Context, c canonConfig) ([]byte, error) {
	var faults, arbs, tears, journals []string
	if c.Fault != "" {
		faults = []string{c.Fault}
	}
	if c.Arb != "" {
		arbs = []string{c.Arb}
	}
	if c.Tear != "" {
		tears = []string{c.Tear}
	}
	if c.Journal != "" {
		journals = []string{c.Journal}
	}
	results, err := explore.SweepContext(ctx,
		explore.SweepOpts{Workers: 1, Faults: faults, Arbs: arbs, Tears: tears, Journals: journals},
		[]int{c.Layer}, []javacard.Organization{c.Org}, []string{c.AddrMap}, []javacard.Workload{c.Workload})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if err != nil {
		return nil, err
	}
	if len(results) != 1 {
		return nil, fmt.Errorf("serve: config run produced %d results, want 1", len(results))
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(exactRow(results[0])); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Request("config")
	var req ConfigRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		respondError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	c, err := canonicalizeConfig(req)
	if err != nil {
		respondError(w, http.StatusBadRequest, err)
		return
	}
	key := c.key()
	body, outcome, status, err := s.schedule(r.Context(), "config", key, req.DeadlineMs,
		func(ctx context.Context) ([]byte, error) { return computeConfig(ctx, c) })
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		s.reg.Rejected(status)
	}
	if err != nil {
		respondError(w, status, err)
		return
	}
	s.reg.Outcome("config", outcome, uint64(time.Since(start).Microseconds()))
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Key", key)
	w.Write(body)
}

// ConfigBodyInline computes (or replays) one configuration row on the
// caller's goroutine through the singleflight cache — the self lane of
// the cluster's work-stealing loop. The returned bytes are the same
// NDJSON line /v1/config serves.
func (s *Server) ConfigBodyInline(ctx context.Context, req ConfigRequest) ([]byte, error) {
	c, err := canonicalizeConfig(req)
	if err != nil {
		return nil, err
	}
	body, outcome, err := s.DoInline(ctx, c.key(),
		func(cctx context.Context) ([]byte, error) { return computeConfig(cctx, c) })
	if err != nil {
		return nil, err
	}
	s.reg.Outcome("config", outcome, 0)
	return body, nil
}

// Exported content-address helpers: the cluster router computes a
// request's key to drive the two-tier cache and consistent-hash
// ownership without re-implementing canonicalization. Each returns the
// same 400-class error its endpoint would answer for an invalid
// request.

// EstimateKey canonicalizes req and returns its content address.
func EstimateKey(req EstimateRequest) (string, error) {
	c, err := canonicalizeEstimate(req)
	if err != nil {
		return "", err
	}
	return c.key(), nil
}

// SweepKey canonicalizes req and returns its content address.
func SweepKey(req SweepRequest) (string, error) {
	c, err := canonicalizeSweep(req)
	if err != nil {
		return "", err
	}
	return c.key(), nil
}

// BatchKey canonicalizes req and returns its content address.
func BatchKey(req BatchRequest) (string, error) {
	c, err := canonicalizeBatch(req)
	if err != nil {
		return "", err
	}
	return c.key(), nil
}

// ConfigKey canonicalizes req and returns its content address.
func ConfigKey(req ConfigRequest) (string, error) {
	c, err := canonicalizeConfig(req)
	if err != nil {
		return "", err
	}
	return c.key(), nil
}

// ExpandSweep canonicalizes a sweep request and enumerates its cross
// product as ConfigRequests in exactly the order the rows appear in a
// single-node sweep body (workloads outer, then layers, organizations,
// maps, faults, arbitration policies, tear plans, journal strategies —
// explore's canonical order). The coordinator fans these
// out and reassembles the body by concatenating the returned rows in
// this order, then appending the trailer.
func ExpandSweep(req SweepRequest) (key string, configs []ConfigRequest, err error) {
	c, err := canonicalizeSweep(req)
	if err != nil {
		return "", nil, err
	}
	faults := c.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	arbs := c.Arbs
	if len(arbs) == 0 {
		arbs = []string{""}
	}
	tears := c.Tears
	if len(tears) == 0 {
		tears = []string{""}
	}
	journals := c.Journals
	if len(journals) == 0 {
		journals = []string{""}
	}
	for _, w := range c.Workloads {
		for _, l := range c.Layers {
			for _, o := range c.Orgs {
				for _, m := range c.Maps {
					for _, f := range faults {
						for _, a := range arbs {
							for _, tp := range tears {
								for _, j := range journals {
									configs = append(configs, ConfigRequest{
										Workload:   w.Name,
										Layer:      l,
										Org:        o.String(),
										AddrMap:    m,
										Fault:      f,
										Arb:        a,
										Tear:       tp,
										Journal:    j,
										DeadlineMs: req.DeadlineMs,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return c.key(), configs, nil
}

// SweepTrailerLine renders the trailer line that closes a distributed
// exhaustive sweep body — identical bytes to the trailer a single-node
// error-free sweep of the same axes appends.
func SweepTrailerLine(key string, rows int) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(SweepTrailer{Done: true, Key: key, Rows: rows}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ComputeSweepBody computes a full sweep body locally, outside the
// cache/queue — the coordinator's fallback when a distributed fan-out
// cannot complete (a configuration failed deterministically, every
// peer died). The bytes are exactly what a single-node compute of the
// same request produces.
func (s *Server) ComputeSweepBody(ctx context.Context, req SweepRequest) ([]byte, error) {
	c, err := canonicalizeSweep(req)
	if err != nil {
		return nil, err
	}
	return s.computeSweep(ctx, c.key(), c)
}
