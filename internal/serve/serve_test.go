package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/javacard"
	"repro/internal/metrics"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := New(opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs, &Client{BaseURL: hs.URL}
}

func postJSON(t *testing.T, url string, req any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The headline contract: cache-hit responses are byte-identical to the
// fresh compute, and the energy figure matches a direct run of the
// estimator bit for bit — across all three abstraction layers, clean
// and under a fault plan.
func TestEstimateCacheBitEqualAllLayers(t *testing.T) {
	_, hs, client := newTestServer(t, Options{Workers: 2})
	for _, layer := range []int{0, 1, 2} {
		for _, plan := range []string{"", "flaky"} {
			name := fmt.Sprintf("L%d/%s", layer, plan)
			req := EstimateRequest{Layer: layer, Corpus: "perf", N: 64, Fault: plan}

			cold := postJSON(t, hs.URL+"/v1/estimate", req)
			if cold.StatusCode != http.StatusOK {
				t.Fatalf("%s: cold status %d", name, cold.StatusCode)
			}
			if got := cold.Header.Get("X-Cache"); got != "miss" {
				t.Fatalf("%s: cold X-Cache = %q, want miss", name, got)
			}
			coldBody := readAll(t, cold)

			hit := postJSON(t, hs.URL+"/v1/estimate", req)
			if got := hit.Header.Get("X-Cache"); got != "hit" {
				t.Fatalf("%s: warm X-Cache = %q, want hit", name, got)
			}
			hitBody := readAll(t, hit)
			if !bytes.Equal(coldBody, hitBody) {
				t.Fatalf("%s: cache hit not byte-identical to fresh compute:\n%s\n%s",
					name, coldBody, hitBody)
			}

			// The served figure equals a direct estimator run, bit for bit.
			p, err := fault.Parse(plan)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := bench.RunCorpusEstimate(layer, "perf", 64, p)
			if err != nil {
				t.Fatal(err)
			}
			var resp EstimateResponse
			if err := json.Unmarshal(hitBody, &resp); err != nil {
				t.Fatalf("%s: bad body: %v", name, err)
			}
			if resp.EnergyBits != EnergyBits(direct.EnergyJ) {
				t.Fatalf("%s: served energy bits %s != direct %s",
					name, resp.EnergyBits, EnergyBits(direct.EnergyJ))
			}
			if math.Float64bits(resp.EnergyJ) != math.Float64bits(direct.EnergyJ) {
				t.Fatalf("%s: JSON float round-trip moved the energy figure", name)
			}
			if resp.Cycles != direct.Cycles || resp.Errors != direct.Errors || resp.Retries != direct.Retries {
				t.Fatalf("%s: served %+v != direct %+v", name, resp, direct)
			}
			// And the client sees the same thing through its own path.
			cresp, verdict, err := client.Estimate(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if verdict != "hit" || cresp.EnergyBits != resp.EnergyBits {
				t.Fatalf("%s: client got verdict=%q bits=%s", name, verdict, cresp.EnergyBits)
			}
		}
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// 16 concurrent identical requests perform exactly one compute: one
// leader misses, fifteen followers dedup onto its in-flight entry, and
// every response body is identical.
func TestDedupSixteenConcurrentOneCompute(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 2, QueueDepth: 32})
	gate := make(chan struct{})
	entered := make(chan struct{}, 32)
	s.computeHook = func(string) {
		entered <- struct{}{}
		<-gate
	}

	req := EstimateRequest{Layer: 2, Corpus: "perf", N: 48}
	c, err := canonicalizeEstimate(req)
	if err != nil {
		t.Fatal(err)
	}
	key := c.key()

	const clients = 16
	bodies := make([][]byte, clients)
	verdicts := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, hs.URL+"/v1/estimate", req)
			verdicts[i] = resp.Header.Get("X-Cache")
			bodies[i] = readAll(t, resp)
		}(i)
	}

	<-entered // the leader's compute is on a worker, parked on the gate
	waitFor(t, "all 16 requests joined the flight", func() bool {
		s.cache.mu.Lock()
		defer s.cache.mu.Unlock()
		e := s.cache.flight[key]
		return e != nil && e.waiters == clients
	})
	close(gate)
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	snap := s.Stats()
	if snap.Computes != 1 {
		t.Fatalf("16 identical requests performed %d computes, want exactly 1", snap.Computes)
	}
	miss, dedup := snap.Outcomes[metrics.ServeMiss], snap.Outcomes[metrics.ServeDedup]
	if miss != 1 || dedup != clients-1 {
		t.Fatalf("outcomes miss=%d dedup=%d, want 1/%d", miss, dedup, clients-1)
	}
}

// Overload: with one worker and a one-deep queue, excess distinct
// requests answer 429 with Retry-After — and every request that was
// accepted still completes correctly once the worker frees up.
func TestOverloadBackpressure(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.computeHook = func(string) {
		entered <- struct{}{}
		<-gate
	}

	// Park the worker on a first request.
	first := make(chan []byte, 1)
	go func() {
		resp := postJSON(t, hs.URL+"/v1/estimate", EstimateRequest{Layer: 2, Corpus: "perf", N: 16})
		first <- readAll(t, resp)
	}()
	<-entered

	// Now flood with distinct requests: exactly one fits the queue,
	// the rest must be rejected with 429 + Retry-After.
	const flood = 6
	type outcome struct {
		status int
		retry  string
		body   []byte
		n      int
	}
	outcomes := make([]outcome, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 17 + i // distinct content addresses
			resp := postJSON(t, hs.URL+"/v1/estimate", EstimateRequest{Layer: 2, Corpus: "perf", N: n})
			outcomes[i] = outcome{
				status: resp.StatusCode,
				retry:  resp.Header.Get("Retry-After"),
				body:   readAll(t, resp),
				n:      n,
			}
		}(i)
	}

	// Wait until every flood request has either been rejected or is
	// parked (accepted), then open the gate.
	waitFor(t, "flood settled", func() bool {
		s.qmu.Lock()
		queued := len(s.queue)
		s.qmu.Unlock()
		rejected := int(s.Stats().Rejected429)
		return queued+rejected == flood
	})
	close(gate)
	wg.Wait()
	<-first

	accepted, rejected := 0, 0
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			accepted++
			var resp EstimateResponse
			if err := json.Unmarshal(o.body, &resp); err != nil {
				t.Fatalf("accepted request returned bad body: %v", err)
			}
			direct, err := bench.RunCorpusEstimate(2, "perf", o.n, fault.Plan{})
			if err != nil {
				t.Fatal(err)
			}
			if resp.EnergyBits != EnergyBits(direct.EnergyJ) {
				t.Fatalf("accepted job lost precision under overload: %s != %s",
					resp.EnergyBits, EnergyBits(direct.EnergyJ))
			}
		case http.StatusTooManyRequests:
			rejected++
			if o.retry == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	if accepted != 1 || rejected != flood-1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/%d", accepted, rejected, flood-1)
	}
	if got := s.Stats().Rejected429; got != uint64(flood-1) {
		t.Fatalf("Rejected429 = %d, want %d", got, flood-1)
	}
}

// Graceful shutdown drains: an in-flight compute finishes and its
// client gets a full answer, while new work is refused with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.computeHook = func(string) {
		entered <- struct{}{}
		<-gate
	}

	inflight := make(chan *http.Response, 1)
	go func() {
		body, _ := json.Marshal(EstimateRequest{Layer: 1, Corpus: "perf", N: 32})
		resp, err := http.Post(hs.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		inflight <- resp
	}()
	<-entered

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()

	// While draining: new work refused, health reports draining.
	waitFor(t, "server draining", func() bool {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp := postJSON(t, hs.URL+"/v1/estimate", EstimateRequest{Layer: 2, Corpus: "perf", N: 99})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", resp.StatusCode)
	}
	readAll(t, resp)

	select {
	case <-closed:
		t.Fatal("Close returned before the in-flight job finished")
	default:
	}
	close(gate)
	<-closed

	r := <-inflight
	if r.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request got %d after drain, want 200", r.StatusCode)
	}
	var er EstimateResponse
	if err := json.Unmarshal(readAll(t, r), &er); err != nil {
		t.Fatalf("drained job returned bad body: %v", err)
	}
	direct, err := bench.RunCorpusEstimate(1, "perf", 32, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if er.EnergyBits != EnergyBits(direct.EnergyJ) {
		t.Fatal("drained job returned wrong result")
	}
}

// A request deadline propagates into the compute as context
// cancellation: an expired deadline answers 504 instead of occupying
// the worker.
func TestDeadlinePropagates(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 1})
	var slow atomic.Bool
	slow.Store(true)
	s.computeHook = func(string) {
		if slow.Load() {
			time.Sleep(30 * time.Millisecond)
		}
	}
	resp := postJSON(t, hs.URL+"/v1/estimate",
		EstimateRequest{Layer: 2, Corpus: "perf", N: 24, DeadlineMs: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline got %d, want 504", resp.StatusCode)
	}
	readAll(t, resp)

	// Expired computes are not cached: a later identical request with
	// a sane deadline computes fresh and succeeds.
	slow.Store(false)
	resp = postJSON(t, hs.URL+"/v1/estimate", EstimateRequest{Layer: 2, Corpus: "perf", N: 24})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after expiry got %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("failed compute was cached: X-Cache = %q", got)
	}
	readAll(t, resp)
}

// The sweep deadline reaches the sweep engine itself: a sweep too
// large for its deadline is aborted by SweepContext and answers 504.
func TestSweepDeadlineReachesEngine(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 1, SweepWorkers: 1})
	resp := postJSON(t, hs.URL+"/v1/sweep", SweepRequest{DeadlineMs: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-1ms full sweep got %d, want 504", resp.StatusCode)
	}
	readAll(t, resp)
}

// Sweep responses: NDJSON rows in deterministic order, cache hits
// byte-identical, rows bit-equal to a direct engine run — including
// under a fault-plan axis.
func TestSweepCacheBitEqual(t *testing.T) {
	_, hs, client := newTestServer(t, Options{Workers: 2})
	req := SweepRequest{
		Layers:    []int{1, 2},
		Orgs:      []string{"burst4"},
		Workloads: []string{"arith-loop"},
		Faults:    []string{"none", "flaky"},
	}
	cold := postJSON(t, hs.URL+"/v1/sweep", req)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep status %d: %s", cold.StatusCode, readAll(t, cold))
	}
	coldBody := readAll(t, cold)
	warm := postJSON(t, hs.URL+"/v1/sweep", req)
	if got := warm.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm sweep X-Cache = %q, want hit", got)
	}
	warmBody := readAll(t, warm)
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("sweep cache hit not byte-identical to fresh compute")
	}

	rows, trailer, err := ParseSweepBody(warmBody)
	if err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || len(trailer.Errors) != 0 || trailer.Rows != len(rows) {
		t.Fatalf("bad trailer: %+v", trailer)
	}

	var wls []javacard.Workload
	for _, w := range javacard.Workloads() {
		if w.Name == "arith-loop" {
			wls = append(wls, w)
		}
	}
	direct, err := explore.SweepWith(explore.SweepOpts{Faults: []string{"none", "flaky"}},
		[]int{1, 2}, []javacard.Organization{javacard.OrgBurst}, explore.AddrMaps, wls)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(direct) {
		t.Fatalf("served %d rows, direct sweep has %d", len(rows), len(direct))
	}
	for i, row := range rows {
		want := direct[i]
		if row.EnergyBits != EnergyBits(want.BusEnergyJ) {
			t.Fatalf("row %d energy bits %s != direct %s", i, row.EnergyBits, EnergyBits(want.BusEnergyJ))
		}
		if row.Cycles != want.Cycles || row.Workload != want.Workload ||
			row.Layer != want.Config.Layer || row.Org != want.Config.Org.String() ||
			row.AddrMap != want.Config.AddrMap || row.Fault != want.Config.Fault ||
			row.Tx != want.Transactions || row.Steps != want.Steps {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, row, want)
		}
	}

	// The client path decodes the same stream.
	crows, ctrailer, err := client.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(crows) != len(rows) || ctrailer.Key != trailer.Key {
		t.Fatalf("client sweep mismatch: %d rows key %s", len(crows), ctrailer.Key)
	}
}

// The fidelity knob over the wire: screen streams predictions, confirm
// streams exact survivors bit-identical to the exhaustive rows, both
// carry the screened/pruned/confirmed accounting and calibrated ε in
// the trailer, and cached bodies replay verbatim. The exhaustive
// trailer stays free of screening metadata.
func TestSweepFidelityKnob(t *testing.T) {
	_, hs, client := newTestServer(t, Options{Workers: 2})
	base := SweepRequest{
		Layers:    []int{1, 2, 3},
		Orgs:      []string{"burst4", "byte-staged"},
		AddrMaps:  []string{"near", "far"},
		Workloads: []string{"arith-loop"},
		Faults:    []string{"none", "flaky"},
	}

	exact := base
	exactRows, exactTrailer, err := client.Sweep(context.Background(), exact)
	if err != nil {
		t.Fatal(err)
	}
	if exactTrailer.Fidelity != "" || exactTrailer.Screened != 0 || exactTrailer.EpsEnergy != nil {
		t.Fatalf("exhaustive trailer leaked screening metadata: %+v", exactTrailer)
	}
	exactBy := map[string]SweepRow{}
	for _, r := range exactRows {
		exactBy[fmt.Sprintf("%s|%d|%s|%s|%s", r.Workload, r.Layer, r.Org, r.AddrMap, r.Fault)] = r
	}

	conf := base
	conf.Fidelity = "confirm"
	cold := postJSON(t, hs.URL+"/v1/sweep", conf)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("confirm sweep status %d: %s", cold.StatusCode, readAll(t, cold))
	}
	coldBody := readAll(t, cold)
	warm := postJSON(t, hs.URL+"/v1/sweep", conf)
	if got := warm.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm confirm sweep X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, readAll(t, warm)) {
		t.Fatal("confirm sweep cache hit not byte-identical")
	}
	rows, trailer, err := ParseSweepBody(coldBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(trailer.Errors) != 0 {
		t.Fatalf("confirm sweep errors: %v", trailer.Errors)
	}
	if trailer.Fidelity != "confirm" || trailer.Screened != len(exactRows) ||
		trailer.Confirmed != len(rows) || trailer.Pruned != trailer.Screened-trailer.Confirmed {
		t.Fatalf("confirm accounting off: %+v (rows %d, space %d)", trailer, len(rows), len(exactRows))
	}
	if trailer.Pruned == 0 || trailer.Confirmed == 0 {
		t.Fatalf("confirm sweep should both prune and confirm: %+v", trailer)
	}
	for l := range map[string]bool{"1": true, "2": true, "3": true} {
		if trailer.EpsEnergy[l] <= 0 || trailer.EpsCycles[l] <= 0 {
			t.Fatalf("trailer ε missing for layer %s: %+v / %+v", l, trailer.EpsEnergy, trailer.EpsCycles)
		}
	}
	for i, r := range rows {
		if r.Predicted || r.Kept {
			t.Fatalf("confirm row %d carries screening flags: %+v", i, r)
		}
		want, ok := exactBy[fmt.Sprintf("%s|%d|%s|%s|%s", r.Workload, r.Layer, r.Org, r.AddrMap, r.Fault)]
		if !ok {
			t.Fatalf("confirmed row %d not in exhaustive sweep: %+v", i, r)
		}
		if r != want {
			t.Fatalf("confirmed row %d not bit-identical to exhaustive: %+v vs %+v", i, r, want)
		}
	}

	screen := base
	screen.Fidelity = "screen"
	sRows, sTrailer, err := client.Sweep(context.Background(), screen)
	if err != nil {
		t.Fatal(err)
	}
	if sTrailer.Fidelity != "screen" || sTrailer.Screened != len(exactRows) ||
		sTrailer.Confirmed != 0 || len(sRows) != len(exactRows) {
		t.Fatalf("screen accounting off: %+v (rows %d)", sTrailer, len(sRows))
	}
	kept := 0
	for i, r := range sRows {
		if !r.Predicted {
			t.Fatalf("screen row %d not marked predicted: %+v", i, r)
		}
		if r.Tx != 0 || r.Retries != 0 || r.Steps != 0 {
			t.Fatalf("screen row %d carries exact-only counters: %+v", i, r)
		}
		if r.Kept {
			kept++
		}
	}
	if kept != sTrailer.Screened-sTrailer.Pruned {
		t.Fatalf("screen kept %d rows, trailer says %d", kept, sTrailer.Screened-sTrailer.Pruned)
	}
	if kept != trailer.Confirmed {
		t.Fatalf("screen kept %d, confirm confirmed %d — same space should agree", kept, trailer.Confirmed)
	}
}

// Async jobs: 202 + handle, poll to done, and the job result is the
// same cached body a synchronous request gets.
func TestAsyncSweepJob(t *testing.T) {
	_, _, client := newTestServer(t, Options{Workers: 2})
	req := SweepRequest{
		Layers:    []int{1},
		Orgs:      []string{"packed-word"},
		AddrMaps:  []string{"near"},
		Workloads: []string{"arith-loop"},
	}
	job, err := client.SweepAsync(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Key == "" {
		t.Fatalf("bad job handle: %+v", job)
	}
	waitFor(t, "job completion", func() bool {
		j, err := client.Job(context.Background(), job.ID)
		return err == nil && j.Status == "done"
	})
	rows, trailer, err := client.JobResult(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if trailer.Key != job.Key || len(rows) != trailer.Rows || len(rows) == 0 {
		t.Fatalf("job result inconsistent: %d rows, trailer %+v", len(rows), trailer)
	}
	// Synchronous request for the same content: a pure cache hit with
	// the identical stream.
	srows, strailer, err := client.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if strailer.Key != trailer.Key || len(srows) != len(rows) {
		t.Fatal("sync sweep after async job disagrees")
	}
	for i := range rows {
		if srows[i] != rows[i] {
			t.Fatalf("row %d differs between job result and sync sweep", i)
		}
	}

	if _, err := client.Job(context.Background(), "job-nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("unknown job id not rejected: %v", err)
	}
}

// Validation errors answer 400 with a message naming the valid
// vocabulary — no silent fallbacks.
func TestRequestValidation(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		path string
		req  any
		want string
	}{
		{"/v1/estimate", EstimateRequest{Layer: 3}, "valid layers"},
		{"/v1/estimate", EstimateRequest{Layer: 1, Corpus: "nope"}, "valid corpora"},
		{"/v1/estimate", EstimateRequest{Layer: 1, Fault: "bogus"}, "fault"},
		{"/v1/sweep", SweepRequest{Layers: []int{0}}, "valid layers"},
		{"/v1/sweep", SweepRequest{Orgs: []string{"nope"}}, "organization"},
		{"/v1/sweep", SweepRequest{AddrMaps: []string{"warp"}}, "address map"},
		{"/v1/sweep", SweepRequest{Workloads: []string{"nope"}}, "workload"},
		{"/v1/sweep", SweepRequest{Faults: []string{"bogus"}}, "valid plans"},
		{"/v1/sweep", SweepRequest{Fidelity: "turbo"}, "fidelity"},
	}
	for _, tc := range cases {
		resp := postJSON(t, hs.URL+tc.path, tc.req)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %+v: status %d, want 400", tc.path, tc.req, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Fatalf("%s %+v: error %s does not mention %q", tc.path, tc.req, body, tc.want)
		}
	}
}

// /metricz renders the server registry; /healthz answers ok.
func TestMetriczAndHealthz(t *testing.T) {
	_, hs, client := newTestServer(t, Options{Workers: 1})
	if err := client.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	postJSON(t, hs.URL+"/v1/estimate", EstimateRequest{Layer: 2, Corpus: "perf", N: 16}).Body.Close()
	resp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readAll(t, resp))
	for _, want := range []string{"estimation server metrics", "estimate=1", "cache", "version"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metricz missing %q:\n%s", want, text)
		}
	}
}
