// Package serve is the estimation service layer: an embeddable HTTP
// server (and the cmd/ecserved daemon around it) that turns the
// deterministic estimators — the corpus runners of internal/bench and
// the design-space sweep engine of internal/explore — into a batched
// job-serving system.
//
// The load-bearing idea is that estimation here is a pure function:
// the simulators are deterministic (the golden gate pins them down to
// IEEE-754 bit patterns), so a request can be canonicalized, hashed
// into a content address (workload bytes × layer × fault plan × config
// × code version) and its result cached and shared. Concurrent
// identical requests are deduplicated singleflight-style — N in-flight
// clients share one compute — and a cache hit returns bytes identical
// to a fresh compute.
//
// Production serving behavior: computes run on a bounded worker pool
// behind a bounded queue (overflow answers 429 with Retry-After),
// per-request deadlines propagate as context cancellation into the
// sweep engine, shutdown drains in-flight jobs before returning, and a
// per-server metrics registry is surfaced at /metricz.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Options tunes a Server. The zero value is usable: one compute worker
// per CPU, a queue twice that deep, 1024 cached results and a one
// minute default deadline.
type Options struct {
	// Workers is the number of concurrent computes; <= 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the job queue feeding the workers; a full
	// queue answers 429. <= 0 selects 2×Workers.
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache; <= 0
	// selects 1024.
	CacheEntries int
	// DefaultTimeout bounds computes whose request carries no
	// deadline_ms; <= 0 selects one minute.
	DefaultTimeout time.Duration
	// SweepWorkers is the worker count handed to the sweep engine for
	// each sweep compute; <= 0 selects runtime.GOMAXPROCS(0).
	SweepWorkers int
}

// task is one scheduled compute bound to its cache entry.
type task struct {
	kind string // metrics endpoint label
	e    *entry
	ctx  context.Context
	stop context.CancelFunc
	run  func(context.Context) ([]byte, error)
}

// Job is the async handle on a queued sweep, the unit GET /v1/jobs/{id}
// reports. Completed jobs pin their own copy of the result body so it
// stays retrievable even if the cache entry is evicted.
type Job struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Key    string `json:"key"`
	Status string `json:"status"` // "pending", "done" or "failed"
	Error  string `json:"error,omitempty"`

	body []byte
	code int // HTTP status of a failed job, from statusFor
}

// maxJobs bounds the completed-job registry; the oldest finished jobs
// are dropped first.
const maxJobs = 256

// Server is the embeddable estimation service.
type Server struct {
	opts  Options
	reg   *metrics.ServerRegistry
	cache *Cache
	queue chan *task
	mux   *http.ServeMux

	qmu      sync.Mutex // guards draining and queue admission
	draining bool
	taskWg   sync.WaitGroup // accepted, not-yet-finished tasks
	workerWg sync.WaitGroup
	jobWg    sync.WaitGroup

	jobMu  sync.Mutex
	jobs   map[string]*Job
	jobIDs []string // insertion order, for bounded retention
	jobSeq uint64

	// computeHook, when set, runs at the start of every compute on the
	// worker goroutine — a test seam for making computes observable or
	// arbitrarily slow.
	computeHook func(kind string)
}

// Sentinel serving errors, mapped onto HTTP statuses by respond.
var (
	errOverloaded = errors.New("serve: job queue full")
	errDraining   = errors.New("serve: shutting down")
)

// New creates a Server and starts its worker pool. Call Close to drain
// and stop it.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2 * opts.Workers
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 1024
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = time.Minute
	}
	if opts.SweepWorkers <= 0 {
		opts.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		opts:  opts,
		reg:   metrics.NewServer(),
		cache: NewCache(opts.CacheEntries),
		queue: make(chan *task, opts.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	s.mux = http.NewServeMux()
	for path, h := range s.computeRoutes() {
		s.mux.HandleFunc(path, h)
	}
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	for i := 0; i < opts.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// computeRoutes maps every cache-backed /v1 route to its handler. The
// route set is the contract the per-endpoint /metricz accounting is
// tested against: a new compute endpoint registered here automatically
// joins ComputeEndpoints and must report its outcomes with that label.
func (s *Server) computeRoutes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /v1/estimate": s.handleEstimate,
		"POST /v1/sweep":    s.handleSweep,
		"POST /v1/batch":    s.handleBatch,
		"POST /v1/config":   s.handleConfig,
	}
}

// ComputeEndpoints returns the metric labels of every registered
// cache-backed /v1 route, sorted — the vocabulary of the per-endpoint
// requests/hit/dedup/miss accounting on /metricz.
func (s *Server) ComputeEndpoints() []string {
	var out []string
	for path := range s.computeRoutes() {
		out = append(out, strings.TrimPrefix(path, "POST /v1/"))
	}
	sort.Strings(out)
	return out
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns a snapshot of the per-server metrics registry.
func (s *Server) Stats() metrics.ServerSnapshot { return s.reg.Snapshot() }

// Registry exposes the server's metrics registry so wrapping layers
// (the cluster router) account their peer traffic in the same /metricz.
func (s *Server) Registry() *metrics.ServerRegistry { return s.reg }

// SetComputeHook installs a hook invoked at the start of every queued
// compute, before any work happens — a test seam (the cluster tests
// gate a peer's compute on it to kill the peer mid-sweep
// deterministically). Must be set before the server takes traffic.
func (s *Server) SetComputeHook(hook func(kind string)) { s.computeHook = hook }

// CacheGet peeks the content-addressed cache: the local tier of the
// cluster's two-tier lookup. It does not join in-flight computes.
func (s *Server) CacheGet(key string) ([]byte, bool) { return s.cache.peek(key) }

// CachePut stores a completed body under key — how peer-fetched bytes
// enter the local tier so they replay verbatim from here on.
func (s *Server) CachePut(key string, body []byte) {
	s.reg.Evicted(s.cache.insert(key, body))
}

// Close drains the server: new work is refused with 503, every
// accepted job runs to completion, then the workers stop. It is the
// graceful-shutdown half; pair it with http.Server.Shutdown for the
// connection half.
func (s *Server) Close() {
	s.qmu.Lock()
	already := s.draining
	s.draining = true
	s.qmu.Unlock()
	if already {
		return
	}
	s.taskWg.Wait() // accepted jobs finish
	close(s.queue)
	s.workerWg.Wait()
	s.jobWg.Wait()
}

// worker consumes the bounded queue. Each task's result is committed
// to the cache exactly once, waking every deduplicated waiter.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for t := range s.queue {
		if s.computeHook != nil {
			s.computeHook(t.kind)
		}
		body, err := t.run(t.ctx)
		t.stop()
		evicted := s.cache.commit(t.e, body, err)
		s.reg.Evicted(evicted)
		s.reg.Compute(err != nil)
		s.taskWg.Done()
	}
}

// enqueue admits a task into the bounded queue: 0 on success,
// otherwise the HTTP status to answer (429 overloaded, 503 draining).
func (s *Server) enqueue(t *task) int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.draining {
		return http.StatusServiceUnavailable
	}
	select {
	case s.queue <- t:
		s.taskWg.Add(1)
		return 0
	default:
		return http.StatusTooManyRequests
	}
}

// deadline resolves a request's effective compute deadline.
func (s *Server) deadline(deadlineMs int64) time.Duration {
	if deadlineMs > 0 {
		return time.Duration(deadlineMs) * time.Millisecond
	}
	return s.opts.DefaultTimeout
}

// statusFor maps a failed compute onto its client-visible HTTP status.
// This mapping is part of the protocol contract (pinned by a table
// test): canonicalization failures are 400 before work is scheduled,
// backpressure answers 429, drain and cancellation 503, a deadline that
// fired 504 — and only genuinely unexplained failures fall through to
// 500. Peers forwarding requests rely on these codes to tell "retry
// elsewhere" from "the request itself is bad".
func statusFor(err error) int {
	switch {
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// schedule runs the singleflight admission for key: a cached body is
// returned immediately (ServeHit); otherwise the caller either joins
// an in-flight compute (ServeDedup) or leads a fresh one (ServeMiss)
// scheduled on the bounded queue, and in both cases blocks until the
// entry completes or the client context is done. A non-zero status
// return means the request was refused by backpressure.
func (s *Server) schedule(ctx context.Context, kind, key string, deadlineMs int64,
	run func(context.Context) ([]byte, error)) (body []byte, outcome metrics.ServeOutcome, status int, err error) {
	e, leader, cached := s.cache.join(key)
	if cached != nil {
		return cached, metrics.ServeHit, 0, nil
	}
	outcome = metrics.ServeDedup
	if leader {
		outcome = metrics.ServeMiss
		cctx, cancel := context.WithTimeout(context.Background(), s.deadline(deadlineMs))
		s.cache.setCancel(e, cancel)
		t := &task{kind: kind, e: e, ctx: cctx, stop: cancel, run: run}
		if st := s.enqueue(t); st != 0 {
			cancel()
			cause := errOverloaded
			if st == http.StatusServiceUnavailable {
				cause = errDraining
			}
			s.cache.abandon(e, cause)
			s.cache.leave(e)
			return nil, outcome, st, cause
		}
	}
	defer s.cache.leave(e)
	select {
	case <-e.done:
		if e.err != nil {
			return nil, outcome, statusFor(e.err), e.err
		}
		return e.body, outcome, 0, nil
	case <-ctx.Done():
		return nil, outcome, http.StatusRequestTimeout, ctx.Err()
	}
}

// Do exposes the singleflight/queue machinery to wrapping layers: the
// cluster router schedules a distributed sweep's assembly under the
// sweep key exactly as a local compute would be, so concurrent
// identical sweeps dedup onto one fan-out and the assembled body lands
// in the local cache tier.
func (s *Server) Do(ctx context.Context, kind, key string, deadlineMs int64,
	run func(context.Context) ([]byte, error)) ([]byte, metrics.ServeOutcome, int, error) {
	return s.schedule(ctx, kind, key, deadlineMs, run)
}

// DoInline is singleflight admission without the bounded queue: the
// compute runs on the caller's goroutine. It exists for the cluster's
// work-stealing self-lane — a distributed sweep already occupies a
// queue worker, so its locally-executed configurations must not also
// contend for queue slots (that would deadlock a full queue against
// itself). Cache and dedup semantics are identical to Do.
func (s *Server) DoInline(ctx context.Context, key string,
	run func(context.Context) ([]byte, error)) ([]byte, metrics.ServeOutcome, error) {
	e, leader, cached := s.cache.join(key)
	if cached != nil {
		return cached, metrics.ServeHit, nil
	}
	if leader {
		body, err := run(ctx)
		evicted := s.cache.commit(e, body, err)
		s.reg.Evicted(evicted)
		s.reg.Compute(err != nil)
		s.cache.leave(e)
		return body, metrics.ServeMiss, err
	}
	defer s.cache.leave(e)
	select {
	case <-e.done:
		return e.body, metrics.ServeDedup, e.err
	case <-ctx.Done():
		return nil, metrics.ServeDedup, ctx.Err()
	}
}

// respondError writes a JSON error body with the given status, adding
// Retry-After on the backpressure statuses so well-behaved clients
// pace themselves.
func respondError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Request("estimate")
	var req EstimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		respondError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	c, err := canonicalizeEstimate(req)
	if err != nil {
		respondError(w, http.StatusBadRequest, err)
		return
	}
	key := c.key()
	body, outcome, status, err := s.schedule(r.Context(), "estimate", key, req.DeadlineMs,
		func(ctx context.Context) ([]byte, error) { return computeEstimate(ctx, key, c) })
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		s.reg.Rejected(status)
	}
	if err != nil {
		respondError(w, status, err)
		return
	}
	s.reg.Outcome("estimate", outcome, uint64(time.Since(start).Microseconds()))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Key", key)
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Request("sweep")
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		respondError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	c, err := canonicalizeSweep(req)
	if err != nil {
		respondError(w, http.StatusBadRequest, err)
		return
	}
	key := c.key()
	run := func(ctx context.Context) ([]byte, error) {
		return s.computeSweep(ctx, key, c)
	}
	if req.Async {
		s.startJob(w, "sweep", key, req.DeadlineMs, run)
		return
	}
	body, outcome, status, err := s.schedule(r.Context(), "sweep", key, req.DeadlineMs, run)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		s.reg.Rejected(status)
	}
	if err != nil {
		respondError(w, status, err)
		return
	}
	s.reg.Outcome("sweep", outcome, uint64(time.Since(start).Microseconds()))
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("X-Key", key)
	w.Write(body)
}

// startJob answers an async sweep: admission happens now (so
// backpressure still applies), completion is observed by a detached
// waiter that parks the result in the job registry.
func (s *Server) startJob(w http.ResponseWriter, kind, key string, deadlineMs int64,
	run func(context.Context) ([]byte, error)) {
	e, leader, cached := s.cache.join(key)
	s.jobMu.Lock()
	s.jobSeq++
	job := &Job{ID: "job-" + strconv.FormatUint(s.jobSeq, 10), Kind: kind, Key: key, Status: "pending"}
	s.jobs[job.ID] = job
	s.jobIDs = append(s.jobIDs, job.ID)
	for len(s.jobIDs) > maxJobs {
		delete(s.jobs, s.jobIDs[0])
		s.jobIDs = s.jobIDs[1:]
	}
	s.jobMu.Unlock()

	finish := func(body []byte, err error) {
		s.jobMu.Lock()
		defer s.jobMu.Unlock()
		if err != nil {
			job.Status, job.Error, job.code = "failed", err.Error(), statusFor(err)
			return
		}
		job.Status, job.body = "done", body
	}

	if cached != nil {
		s.reg.Outcome(kind, metrics.ServeHit, 0)
		finish(cached, nil)
	} else {
		if leader {
			cctx, cancel := context.WithTimeout(context.Background(), s.deadline(deadlineMs))
			s.cache.setCancel(e, cancel)
			t := &task{kind: kind, e: e, ctx: cctx, stop: cancel, run: run}
			if st := s.enqueue(t); st != 0 {
				cancel()
				cause := errOverloaded
				if st == http.StatusServiceUnavailable {
					cause = errDraining
				}
				s.cache.abandon(e, cause)
				s.cache.leave(e)
				s.reg.Rejected(st)
				finish(nil, cause)
				respondError(w, st, cause)
				return
			}
			s.reg.Outcome(kind, metrics.ServeMiss, 0)
		} else {
			s.reg.Outcome(kind, metrics.ServeDedup, 0)
		}
		s.jobWg.Add(1)
		go func() {
			defer s.jobWg.Done()
			defer s.cache.leave(e)
			<-e.done
			finish(e.body, e.err)
		}()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(job)
}

func (s *Server) lookupJob(id string) *Job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.reg.Request("jobs")
	job := s.lookupJob(r.PathValue("id"))
	if job == nil {
		respondError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	s.jobMu.Lock()
	copy := *job
	s.jobMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(copy)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.reg.Request("jobs")
	job := s.lookupJob(r.PathValue("id"))
	if job == nil {
		respondError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	s.jobMu.Lock()
	status, body, errMsg, code := job.Status, job.body, job.Error, job.code
	s.jobMu.Unlock()
	switch status {
	case "done":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Key", job.Key)
		w.Write(body)
	case "failed":
		// Failed jobs replay the status their synchronous twin would
		// have answered (504 deadline, 503 drain, ...), not a blanket 500.
		if code == 0 {
			code = http.StatusInternalServerError
		}
		respondError(w, code, errors.New(errMsg))
	default:
		respondError(w, http.StatusConflict, fmt.Errorf("serve: job %s still pending", job.ID))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.qmu.Lock()
	draining := s.draining
	s.qmu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{"ok": !draining, "version": Version, "draining": draining})
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.reg.Snapshot().Table())
	fmt.Fprintf(w, "  cache         entries=%d capacity=%d\n", s.cache.Len(), s.opts.CacheEntries)
	fmt.Fprintf(w, "  version       %s\n", Version)
}
