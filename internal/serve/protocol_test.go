package serve

import (
	"bytes"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/javacard"
	"repro/internal/metrics"
)

// TestStatusMapping pins the protocol's HTTP status contract for
// deterministic request errors: every canonicalization or decode
// failure answers 400 — never 500 — because the request itself is bad
// and retrying (anywhere) cannot help. The cluster's routing layer
// branches on exactly these codes.
func TestStatusMapping(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 2})
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"estimate bad json", "/v1/estimate", `{"layer":`, http.StatusBadRequest},
		{"estimate bad layer", "/v1/estimate", `{"layer":9}`, http.StatusBadRequest},
		{"estimate bad corpus", "/v1/estimate", `{"layer":0,"corpus":"nope"}`, http.StatusBadRequest},
		{"estimate bad fault", "/v1/estimate", `{"layer":0,"fault":"bogus"}`, http.StatusBadRequest},
		{"sweep bad json", "/v1/sweep", `{`, http.StatusBadRequest},
		{"sweep bad layer", "/v1/sweep", `{"layers":[99]}`, http.StatusBadRequest},
		{"sweep bad org", "/v1/sweep", `{"orgs":["bogus"]}`, http.StatusBadRequest},
		{"sweep bad map", "/v1/sweep", `{"addr_maps":["bogus"]}`, http.StatusBadRequest},
		{"sweep bad workload", "/v1/sweep", `{"workloads":["bogus"]}`, http.StatusBadRequest},
		{"sweep bad fidelity", "/v1/sweep", `{"fidelity":"bogus"}`, http.StatusBadRequest},
		{"batch bad json", "/v1/batch", `[`, http.StatusBadRequest},
		{"batch bad layer", "/v1/batch", `{"layer":7}`, http.StatusBadRequest},
		{"batch runs over limit", "/v1/batch", `{"layer":0,"runs":99999}`, http.StatusBadRequest},
		{"batch n over limit", "/v1/batch", `{"layer":0,"n":99999}`, http.StatusBadRequest},
		{"batch width over limit", "/v1/batch", `{"layer":0,"width":99999}`, http.StatusBadRequest},
		{"batch bad fault", "/v1/batch", `{"layer":0,"fault":"bogus"}`, http.StatusBadRequest},
		{"config bad workload", "/v1/config", `{"workload":"nope","layer":1,"org":"byte-staged","addr_map":"near"}`, http.StatusBadRequest},
		{"config bad org", "/v1/config", `{"workload":"arith-loop","layer":1,"org":"nope","addr_map":"near"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(hs.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
	}
}

// TestDeadlineAnswers504: a compute whose server-side deadline fires
// answers 504 Gateway Timeout, not 500 — the request was fine, the
// time budget was not.
func TestDeadlineAnswers504(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 1})
	s.computeHook = func(string) { time.Sleep(300 * time.Millisecond) }
	resp := postJSON(t, hs.URL+"/v1/estimate", EstimateRequest{Layer: 0, DeadlineMs: 20})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504 (%s)", resp.StatusCode, body)
	}
}

// TestDrainAnswers503: a draining server refuses new work with 503 and
// Retry-After across every compute endpoint.
func TestDrainAnswers503(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 1})
	s.Close()
	reqs := map[string]any{
		"/v1/estimate": EstimateRequest{Layer: 0},
		"/v1/sweep":    SweepRequest{Layers: []int{1}, Workloads: []string{"arith-loop"}},
		"/v1/batch":    BatchRequest{Layer: 0, Runs: 2, N: 16},
		"/v1/config":   ConfigRequest{Workload: "arith-loop", Layer: 1, Org: javacard.Organizations[0].String(), AddrMap: "near"},
	}
	for path, req := range reqs {
		resp := postJSON(t, hs.URL+path, req)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: status %d, want 503 (%s)", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s while draining: missing Retry-After", path)
		}
	}
}

// TestTruncatedBodyTyped is the stream-handling regression: a cached
// NDJSON body cut off before its trailer — mid-line or at a clean line
// boundary — parses back as a typed ErrTruncatedBody, while corruption
// inside the stream stays a generic error. The cluster's peer-fetch
// retry-vs-fail-fast decision rides on this distinction.
func TestTruncatedBodyTyped(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{Workers: 2, SweepWorkers: 1})

	sweepResp := postJSON(t, hs.URL+"/v1/sweep", SweepRequest{
		Layers: []int{1}, Orgs: []string{javacard.Organizations[0].String()},
		AddrMaps: []string{"near"}, Workloads: []string{"arith-loop"},
	})
	sweepBody := readAll(t, sweepResp)
	if sweepResp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", sweepResp.StatusCode, sweepBody)
	}
	batchResp := postJSON(t, hs.URL+"/v1/batch", BatchRequest{Layer: 0, Runs: 3, N: 16})
	batchBody := readAll(t, batchResp)
	if batchResp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", batchResp.StatusCode, batchBody)
	}

	cases := []struct {
		name  string
		body  []byte
		parse func([]byte) error
	}{
		{"sweep", sweepBody, func(b []byte) error { _, _, err := ParseSweepBody(b); return err }},
		{"batch", batchBody, func(b []byte) error { _, _, err := ParseBatchBody(b); return err }},
	}
	for _, c := range cases {
		if err := c.parse(c.body); err != nil {
			t.Fatalf("%s: intact body failed to parse: %v", c.name, err)
		}
		// Cut mid-line: the final value never finishes.
		if err := c.parse(c.body[:len(c.body)-3]); !errors.Is(err, ErrTruncatedBody) {
			t.Errorf("%s cut mid-line: err = %v, want ErrTruncatedBody", c.name, err)
		}
		// Cut at a line boundary: rows intact, trailer missing — the
		// signature of a partially-written cached body.
		trimmed := bytes.TrimRight(c.body, "\n")
		cut := c.body[:bytes.LastIndexByte(trimmed, '\n')+1]
		if err := c.parse(cut); !errors.Is(err, ErrTruncatedBody) {
			t.Errorf("%s cut at line boundary: err = %v, want ErrTruncatedBody", c.name, err)
		}
		// Empty body: trivially truncated.
		if err := c.parse(nil); !errors.Is(err, ErrTruncatedBody) {
			t.Errorf("%s empty body: err = %v, want ErrTruncatedBody", c.name, err)
		}
		// Corruption mid-stream is NOT truncation: fail fast.
		corrupt := bytes.Clone(c.body)
		corrupt[bytes.IndexByte(corrupt, '"')] = 0x01
		if err := c.parse(corrupt); err == nil || errors.Is(err, ErrTruncatedBody) {
			t.Errorf("%s corrupted body: err = %v, want a non-truncation error", c.name, err)
		}
	}
}

// endpointProbe returns a valid request for a compute endpoint label.
// A new endpoint registered in computeRoutes must add a case here —
// that is the point: the per-endpoint accounting test below covers the
// whole route set by construction.
func endpointProbe(t *testing.T, ep string) (path string, req any, key string) {
	t.Helper()
	org := javacard.Organizations[0].String()
	switch ep {
	case "estimate":
		r := EstimateRequest{Layer: 0, N: 24}
		k, err := EstimateKey(r)
		if err != nil {
			t.Fatal(err)
		}
		return "/v1/estimate", r, k
	case "sweep":
		r := SweepRequest{Layers: []int{1}, Orgs: []string{org}, AddrMaps: []string{"near"}, Workloads: []string{"arith-loop"}}
		k, err := SweepKey(r)
		if err != nil {
			t.Fatal(err)
		}
		return "/v1/sweep", r, k
	case "batch":
		r := BatchRequest{Layer: 0, Runs: 2, N: 16}
		k, err := BatchKey(r)
		if err != nil {
			t.Fatal(err)
		}
		return "/v1/batch", r, k
	case "config":
		r := ConfigRequest{Workload: "arith-loop", Layer: 1, Org: org, AddrMap: "near"}
		k, err := ConfigKey(r)
		if err != nil {
			t.Fatal(err)
		}
		return "/v1/config", r, k
	}
	t.Fatalf("endpointProbe: no probe request for endpoint %q — add one", ep)
	return "", nil, ""
}

// TestMetriczPerEndpointAccounting drives every registered compute
// endpoint through all three cache outcomes and asserts the registry
// accounts them under the endpoint's own label: requests=3 and exactly
// one miss, one dedup, one hit each. ComputeEndpoints() is the route
// registry itself, so an endpoint added without accounting fails here.
func TestMetriczPerEndpointAccounting(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Workers: 2, QueueDepth: 16})
	eps := s.ComputeEndpoints()
	if len(eps) < 4 {
		t.Fatalf("ComputeEndpoints() = %v, want at least estimate/sweep/batch/config", eps)
	}
	gates := make(map[string]chan struct{}, len(eps))
	for _, ep := range eps {
		gates[ep] = make(chan struct{})
	}
	entered := make(chan string, 16)
	s.computeHook = func(kind string) {
		entered <- kind
		<-gates[kind]
	}

	for _, ep := range eps {
		path, req, key := endpointProbe(t, ep)
		var wg sync.WaitGroup
		statuses := make([]int, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp := postJSON(t, hs.URL+path, req)
				readAll(t, resp)
				statuses[i] = resp.StatusCode
			}(i)
			if i == 0 {
				// The leader's compute must be parked on the gate before
				// the follower starts, so the follower deduplicates.
				if got := <-entered; got != ep {
					t.Fatalf("compute hook saw kind %q, want %q", got, ep)
				}
			}
		}
		waitFor(t, ep+" follower joined the flight", func() bool {
			s.cache.mu.Lock()
			defer s.cache.mu.Unlock()
			e := s.cache.flight[key]
			return e != nil && e.waiters == 2
		})
		close(gates[ep])
		wg.Wait()
		for i, st := range statuses {
			if st != http.StatusOK {
				t.Fatalf("%s request %d: status %d", ep, i, st)
			}
		}
		// Third request: a pure cache hit.
		resp := postJSON(t, hs.URL+path, req)
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s hit request: status %d", ep, resp.StatusCode)
		}
	}

	snap := s.Stats()
	for _, ep := range eps {
		by, ok := snap.OutcomesBy[ep]
		if !ok {
			t.Errorf("endpoint %q missing from OutcomesBy", ep)
			continue
		}
		if by[metrics.ServeMiss] != 1 || by[metrics.ServeDedup] != 1 || by[metrics.ServeHit] != 1 {
			t.Errorf("endpoint %q outcomes miss=%d dedup=%d hit=%d, want 1/1/1",
				ep, by[metrics.ServeMiss], by[metrics.ServeDedup], by[metrics.ServeHit])
		}
		if snap.Requests[ep] != 3 {
			t.Errorf("endpoint %q requests=%d, want 3", ep, snap.Requests[ep])
		}
	}
}
