package batch

import (
	"math/bits"

	"repro/internal/ecbus"
	"repro/internal/logic"
)

// Lattice drive helpers and the per-cycle pricing pass. The drive
// helpers mirror ecbus.Bundle's dirty-on-change contract: a write only
// registers when the (width-masked) value actually changes, so the
// pricing pass touches exactly the lanes the serial estimators would
// have seen dirty.

// setPacked drives a single-bit wire of one lane.
func (e *Engine) setPacked(id ecbus.SignalID, li int, v bool) {
	bit := uint64(1) << uint(li)
	if v {
		e.packed[id] |= bit
	} else {
		e.packed[id] &^= bit
	}
}

// setVal drives a multi-bit wire of one lane, masking to the signal
// width and recording the lane in the signal's changed-lane mask.
func (e *Engine) setVal(id ecbus.SignalID, li int, v uint64) {
	v &= e.mask[id]
	if e.val[id][li] != v {
		e.val[id][li] = v
		e.chMask[id] |= uint64(1) << uint(li)
	}
}

// priceCycle0 is the batched gate-level observation (gatepower.Observe
// across all lanes): clock and leakage tick for every live lane, then
// each signal's transitions price in ascending signal order. Packed
// wires price from one XOR per lane word; multi-bit wires price only
// changed lanes, with the serial path's exact float expressions, into
// per-lane per-signal accumulators — so every lane replays its serial
// run's float additions in the serial order.
func (e *Engine) priceCycle0() {
	act := e.active
	// Clock and leakage charge the lanes that executed a cycle this
	// tick; sleeping lanes prepaid theirs when they fell asleep.
	for m := e.awake; m != 0; m &= m - 1 {
		li := bits.TrailingZeros64(m)
		e.clockE[li] += e.clockJ
		e.leakE[li] += e.leakJ
	}
	// The two representations price from separate lists (ascending
	// within each): every signal's energy lands in its own per-lane
	// accumulator, so splitting the walk leaves each accumulator's
	// addition sequence — the bit-exactness contract — untouched.
	for _, id := range e.packedIDs {
		oldW, newW := e.packedOld[id], e.packed[id]
		ch := logic.LaneChanged(oldW, newW, act)
		if ch == 0 {
			continue
		}
		rises := logic.LaneRises(oldW, newW, ch)
		falls := logic.LaneFalls(oldW, newW, ch)
		// One transition per changed lane: the serial two-term sum
		// collapses to a single add of the precomputed constant.
		rj, fj := e.riseJ[id], e.fallJ[id]
		for w := rises; w != 0; w &= w - 1 {
			e.sigE[id][bits.TrailingZeros64(w)] += rj
		}
		for w := falls; w != 0; w &= w - 1 {
			e.sigE[id][bits.TrailingZeros64(w)] += fj
		}
		nr := uint64(bits.OnesCount64(rises))
		nf := uint64(bits.OnesCount64(falls))
		e.stats.Rises += nr
		e.stats.Falls += nf
		e.stats.Transitions += nr + nf
		e.packedOld[id] = newW
	}
	for _, id := range e.multiIDs {
		chm := e.chMask[id]
		if chm == 0 {
			continue
		}
		e.chMask[id] = 0
		be := e.bitE[id]
		for w := chm; w != 0; w &= w - 1 {
			li := bits.TrailingZeros64(w)
			oldV, newV := e.old[id][li], e.val[id][li]
			if oldV == newV {
				continue // written away and back within the cycle
			}
			rises := logic.RisesMasked(oldV, newV, e.mask[id])
			falls := logic.FallsMasked(oldV, newV, e.mask[id])
			energy := float64(rises)*be*e.kRise + float64(falls)*be*e.kFall
			if e.sigBits[id] > 1 {
				opp := logic.CoupledOppositeMasked(oldV, newV, e.mask[id])
				same := logic.CoupledSameMasked(oldV, newV, e.mask[id])
				energy += (float64(opp) - 0.5*float64(same)) * e.coupleK * be
			}
			e.sigE[id][li] += energy
			if id == ecbus.SigA {
				// Decoder glitching: the combinational decoder wires
				// toggle whenever the address inputs change. A changed
				// lane always has ham > 0; an unchanged (away-and-back)
				// lane would have ham 0 and add nothing.
				ham := logic.HammingMasked(oldV, newV, e.mask[id])
				e.decE[li] += float64(ham) * e.glitchK * e.decJ
			}
			e.old[id][li] = newV
			e.stats.Rises += uint64(rises)
			e.stats.Falls += uint64(falls)
			e.stats.Transitions += uint64(rises) + uint64(falls)
		}
	}
}

// priceCycle1 is the batched layer-1 energy calculation
// (tlm1.PowerModel.calcEnergy across all lanes): each lane's per-cycle
// sum accumulates its changed interface signals in ascending signal
// order, then folds into the lane total — the serial model's
// `total += e` with e summed in exactly that order. Lanes with no
// contribution skip the fold: adding +0.0 to the non-negative total is
// a bitwise no-op.
func (e *Engine) priceCycle1() {
	var touched uint64
	for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
		if e.isPacked[id] {
			oldW, newW := e.packedOld[id], e.packed[id]
			ch := logic.LaneChanged(oldW, newW, e.active)
			if ch == 0 {
				continue
			}
			pj := e.perTransJ[id]
			for w := ch; w != 0; w &= w - 1 {
				e.eCycle[bits.TrailingZeros64(w)] += pj
			}
			touched |= ch
			e.stats.Transitions += uint64(bits.OnesCount64(ch))
			e.packedOld[id] = newW
			continue
		}
		chm := e.chMask[id]
		if chm == 0 {
			continue
		}
		e.chMask[id] = 0
		pj := e.perTransJ[id]
		for w := chm; w != 0; w &= w - 1 {
			li := bits.TrailingZeros64(w)
			oldV, newV := e.old[id][li], e.val[id][li]
			if oldV == newV {
				continue // written away and back within the cycle
			}
			n := logic.HammingMasked(oldV, newV, e.mask[id])
			e.eCycle[li] += float64(n) * pj
			e.old[id][li] = newV
			touched |= uint64(1) << uint(li)
			e.stats.Transitions += uint64(n)
		}
	}
	for w := touched; w != 0; w &= w - 1 {
		li := bits.TrailingZeros64(w)
		e.totalE[li] += e.eCycle[li]
		e.eCycle[li] = 0
	}
}
