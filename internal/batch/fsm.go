package batch

import (
	"repro/internal/core"
	"repro/internal/ecbus"
)

// This file is the per-lane port of the serial models: the script
// master (core.ScriptMaster.tick) and the bus FSM shared by the
// layer-0 and layer-1 models. The two serial models implement the same
// protocol rules — queue-based in tlm1, FSM-based in rtlbus — and
// differ only in which wires they drive (layer 0 additionally drives
// the decoder select). The lane FSM keeps the exact decision order of
// the serial code so per-transaction timestamps, data payloads, retry
// sequences and wire values are reproduced bit for bit.
//
// Unlike the serial models, the per-cycle path is polling-free: bus
// units notify the master through a done counter instead of the master
// scanning its in-flight set every cycle, slave control is sampled once
// per transaction from the map's config snapshot, and wires that the
// serial models re-drive to the same value every cycle (address-phase
// values, a pending write beat's data) are driven once — a re-drive of
// an unchanged value is invisible to the dirty-tracking pricing pass,
// so the wire trajectories are identical.

// qCap bounds each lane queue: outstanding transactions cap at
// ecbus.MaxOutstanding per category (3 categories in flight), so 16 —
// the next power of two — statically bounds every queue.
const qCap = 16

// laneEntry tracks one transaction's bus-side state, the slave control
// sample of the serial models' address-phase start. The slave itself is
// referenced by decoder index (sel) into the lane's slave table, which
// keeps the entry pointer-light and small for the queue copies.
type laneEntry struct {
	tr   *ecbus.Transaction
	seq  uint32 // lane-local issue ordinal, the serial in-flight order
	sel  int16  // decoder index of the sampled slave; -1 on decode miss
	err  bool   // decode miss / rights violation / range crossing
	pend bool   // beat not started: countdown (and write data drive) begin at queue head
	aw   int32  // address wait states (incl. dynamic extra)
	dw   int32  // data wait states per beat

	beat  int32
	ready uint64 // absolute cycle the current beat's wait states elapse
}

// finRec is one completed transaction awaiting the master's harvest.
type finRec struct {
	tr  *ecbus.Transaction
	seq uint32
}

// ring is a fixed-capacity FIFO of lane entries.
type ring struct {
	buf  [qCap]laneEntry
	head int
	n    int
}

func (r *ring) empty() bool       { return r.n == 0 }
func (r *ring) front() *laneEntry { return &r.buf[r.head] }

func (r *ring) pushBack(e laneEntry) {
	if r.n == qCap {
		panic("batch: lane queue overflow")
	}
	r.buf[(r.head+r.n)&(qCap-1)] = e
	r.n++
}

func (r *ring) popFront() {
	r.head = (r.head + 1) & (qCap - 1)
	r.n--
}

// lane is one run's complete simulation state: its own address map
// (lane-local fault ordinals), master bookkeeping and bus queues. Wire
// values live in the engine's shared lattice, indexed by lane.
type lane struct {
	runIdx  int
	cyc     uint64 // current cycle; starts at all-ones, pre-incremented per tick
	m       *ecbus.Map
	slaves  []ecbus.Slave         // ln.m.Slaves(), cached for per-beat lookup
	waiters []ecbus.DynamicWaiter // per-slave DynamicWaiter, nil when not implemented

	// Master (core.ScriptMaster port). In-flight transactions are a
	// count plus a completion ring: the serial master's in-flight SLICE
	// is only observable through the order it hands completed
	// transactions to the retry policy, and issue ordinals reproduce
	// that order without pointer-chasing the pending set every harvest.
	items    []core.Item
	next     int
	inflight int    // issued, not yet harvested
	issueSeq uint32 // next lane-local issue ordinal
	finished [4]finRec
	finCnt   int
	stalled  bool // bus answered Wait; re-asking is a no-op until a completion
	retryQ   []core.Item
	retries  int
	errors   int

	// Bus.
	addrQ       ring
	readQ       ring
	writeQ      ring
	addrStarted bool
	addrDone    uint64 // absolute cycle the running address phase completes
	outstanding [ecbus.NumCategories]int

	// wakeTick is the engine tick at which the lane resumes execution
	// after a sleep (Engine.sleep): its wait-state cycles were already
	// accounted when it fell asleep, so until then the lane costs the
	// tick loop nothing at all. Set from Engine.nextWake at the end of
	// every executed lane cycle.
	wakeTick uint64
}

// done mirrors ScriptMaster.Done: every scripted transaction completed
// AND harvested — the serial master keeps a completed transaction in
// its in-flight set (and so runs one more cycle) until the tick after
// the bus finishes it.
func (ln *lane) done() bool {
	return ln.next == len(ln.items) && ln.inflight == 0 && ln.finCnt == 0 && len(ln.retryQ) == 0
}

// masterTick replays ScriptMaster.tick for one lane: harvest completed
// transactions, re-issue backed-off retries oldest first, then issue
// scripted items in program order. A bus-full answer aborts the whole
// tick, exactly like the serial master.
func (e *Engine) masterTick(ln *lane, li int) {
	cycle := ln.cyc
	if ln.finCnt > 0 {
		// The serial master polls every in-flight transaction via Access
		// each cycle and finishes the completed ones in in-flight order;
		// polling an unfinished one is a side-effect-free StateWait, so
		// only the relative order of the completed transactions is
		// observable. The bus units record at most three completions per
		// cycle (address-error, read beat, write beat); sorting those by
		// issue ordinal restores the serial finish order.
		if ln.finCnt > 1 {
			for i := 1; i < ln.finCnt; i++ {
				for j := i; j > 0 && ln.finished[j].seq < ln.finished[j-1].seq; j-- {
					ln.finished[j], ln.finished[j-1] = ln.finished[j-1], ln.finished[j]
				}
			}
		}
		for i := 0; i < ln.finCnt; i++ {
			tr := ln.finished[i].tr
			st := ecbus.StateOK
			if tr.Err {
				st = ecbus.StateError
			}
			e.masterFinish(ln, tr, st, cycle)
			ln.finished[i] = finRec{}
		}
		ln.finCnt = 0
	}

	if ln.stalled {
		// The last issue attempt got StateWait. Given an unchanged head
		// item, Wait depends only on the outstanding counters, which
		// change only when a bus unit completes a transaction — and that
		// clears the flag. The one time-dependent event that can change
		// the head item is a backed-off retry coming due.
		if len(ln.retryQ) == 0 || ln.retryQ[0].NotBefore > cycle {
			return
		}
		ln.stalled = false
	}

	for len(ln.retryQ) > 0 && ln.inflight < e.maxInFlight {
		it := ln.retryQ[0]
		if it.NotBefore > cycle {
			break
		}
		switch st := e.access(ln, it.Tr); st {
		case ecbus.StateRequest:
			ln.inflight++
			ln.retryQ = ln.retryQ[1:]
		case ecbus.StateOK, ecbus.StateError:
			ln.retryQ = ln.retryQ[1:]
			e.masterFinish(ln, it.Tr, st, cycle)
		default:
			ln.stalled = true
			return // bus full: retry next cycle
		}
	}

	for ln.next < len(ln.items) && ln.inflight < e.maxInFlight {
		it := ln.items[ln.next]
		if it.NotBefore > cycle {
			break
		}
		switch st := e.access(ln, it.Tr); st {
		case ecbus.StateRequest:
			ln.inflight++
			ln.next++
		case ecbus.StateOK, ecbus.StateError:
			// Completed immediately (validation failure path).
			e.masterFinish(ln, it.Tr, st, cycle)
			ln.next++
		default:
			ln.stalled = true
			return // bus full: retry next cycle, preserve program order
		}
	}
}

// masterFinish applies the retry policy, mirroring ScriptMaster.finish.
func (e *Engine) masterFinish(ln *lane, tr *ecbus.Transaction, st ecbus.BusState, cycle uint64) {
	if st == ecbus.StateError && int(tr.Retries) < e.cfg.Retry.MaxRetries {
		tr.ResetForRetry()
		ln.retries++
		ln.retryQ = append(ln.retryQ, core.Item{Tr: tr, NotBefore: cycle + 1 + e.cfg.Retry.Backoff})
		return
	}
	if st == ecbus.StateError {
		ln.errors++
	}
}

// access is the lane's bus Access: identical semantics to the serial
// models' master-side interface. The serial queued-elsewhere check is
// dropped: the engine only ever offers fresh or fully-retired (retry)
// transactions, which are never resident in a bus queue.
func (e *Engine) access(ln *lane, tr *ecbus.Transaction) ecbus.BusState {
	if tr.Done {
		if tr.Err {
			return ecbus.StateError
		}
		return ecbus.StateOK
	}
	if tr.IssueCycle != 0 {
		return ecbus.StateWait
	}
	cat := tr.Category()
	if ln.outstanding[cat] >= ecbus.MaxOutstanding {
		return ecbus.StateWait
	}
	if err := tr.Validate(); err != nil {
		// Structurally illegal requests never reach the wire.
		tr.Done, tr.Err = true, true
		return ecbus.StateError
	}
	ln.outstanding[cat]++
	// The serial buses stamp b.cycle+1: the bus counter lags one
	// falling edge behind the master's rising edge, so the accepted
	// cycle is exactly the lane's current cycle.
	tr.IssueCycle = ln.cyc
	seq := ln.issueSeq
	ln.issueSeq++
	ln.addrQ.pushBack(laneEntry{tr: tr, seq: seq, sel: -1})
	return ecbus.StateRequest
}

// sampleSlave samples the slave control interface at address-phase
// start: wait states and access legality, in the exact decision order
// of ecbus.Map.Check (decode, range, rights). Data wait states come
// from the static slave configuration, so sampling them here (as tlm1
// does) is identical to layer 0's sampling at data-phase start.
func (e *Engine) sampleSlave(ln *lane, en *laneEntry) {
	tr := en.tr
	idx := ln.m.Index(tr.Addr)
	en.sel = int16(idx)
	if idx < 0 {
		en.err = true
		en.aw = 0 // errors terminate after a 1-cycle address phase
		return
	}
	cfg := ln.m.ConfigAt(idx)
	if !cfg.Contains(tr.Addr+uint64(tr.Words()*4)-1) || !cfg.Allows(tr.Kind) {
		en.err = true
		en.aw = 0
		return
	}
	en.aw = int32(cfg.AddrWait)
	if d := ln.waiters[idx]; d != nil {
		en.aw += int32(d.ExtraWait(tr.Kind, tr.Addr))
	}
	if tr.Kind.IsRead() {
		en.dw = int32(cfg.ReadWait)
	} else {
		en.dw = int32(cfg.WriteWait)
	}
}

// addrUnit advances one lane's serialized address phase.
func (e *Engine) addrUnit(ln *lane, li int) {
	if ln.addrQ.empty() {
		return
	}
	en := ln.addrQ.front()
	if en.tr.IssueCycle > ln.cyc {
		return // accepted later this cycle by the master
	}
	if !ln.addrStarted {
		ln.addrStarted = true
		e.sampleSlave(ln, en)
		e.driveAddr(li, en)
		ln.addrDone = ln.cyc + uint64(en.aw)
	} else {
		// The serial bus re-drives the full (unchanged) address group
		// every phase cycle; only the strobe and the burst-last wire —
		// which a concurrent data beat may have raised — need the
		// per-cycle treatment. (A sleeping lane's strobes are held by the
		// masked strobe clear instead, and it never sleeps with the
		// burst-last wire raised.)
		e.setPacked(ecbus.SigAValid, li, true)
		e.setPacked(ecbus.SigBLast, li, false)
	}
	if ln.cyc < ln.addrDone {
		return
	}
	// Phase completes this cycle.
	e.setPacked(ecbus.SigARdy, li, true)
	en.tr.AddrCycle = ln.cyc
	ent := *en // copy out before the slot is recycled
	ln.addrQ.popFront()
	ln.addrStarted = false
	switch {
	case ent.err:
		e.completeError(ln, li, &ent)
	case ent.tr.Kind.IsRead():
		ent.pend = true // beat countdown starts when the entry heads the queue
		ln.readQ.pushBack(ent)
	default:
		ent.pend = true // write data drives at beat start
		ln.writeQ.pushBack(ent)
	}
}

// driveAddr drives the address-phase wires once, at phase start. The
// decoder select is a layer-0 (controller-internal) wire; the layer-1
// model prices interface signals only.
func (e *Engine) driveAddr(li int, en *laneEntry) {
	tr := en.tr
	e.setPacked(ecbus.SigAValid, li, true)
	e.setVal(ecbus.SigA, li, tr.Addr)
	e.setPacked(ecbus.SigInstr, li, tr.Kind == ecbus.Fetch)
	e.setPacked(ecbus.SigWrite, li, tr.Kind == ecbus.Write)
	e.setPacked(ecbus.SigBurst, li, tr.Burst)
	e.setPacked(ecbus.SigBFirst, li, tr.Burst)
	e.setPacked(ecbus.SigBLast, li, false)
	be := uint8(0b1111)
	if !tr.Burst {
		be, _ = ecbus.ByteEnables(tr.Addr, tr.Width)
	}
	e.setVal(ecbus.SigBE, li, uint64(be))
	if e.cfg.Layer == 0 {
		idx := en.sel
		if idx < 0 {
			idx = 7 // decoder "no select" pattern
		}
		e.setVal(ecbus.SigSel, li, uint64(idx))
	}
}

// completeError finishes a transaction with a bus error at the end of
// its address phase, pulsing the error wire of its direction.
func (e *Engine) completeError(ln *lane, li int, en *laneEntry) {
	en.tr.Done, en.tr.Err = true, true
	en.tr.DataCycle = ln.cyc
	if en.tr.Kind.IsRead() {
		e.setPacked(ecbus.SigRBErr, li, true)
	} else {
		e.setPacked(ecbus.SigWBErr, li, true)
	}
	ln.outstanding[en.tr.Category()]--
	ln.finished[ln.finCnt] = finRec{tr: en.tr, seq: en.seq}
	ln.finCnt++
	ln.inflight--
	ln.stalled = false
}

// readUnit serves one read data beat per cycle for one lane.
func (e *Engine) readUnit(ln *lane, li int) {
	if ln.readQ.empty() {
		return
	}
	en := ln.readQ.front()
	if en.pend {
		// The beat's wait states count from the cycle the entry heads the
		// queue — the data bus serves one transaction at a time.
		en.pend = false
		en.ready = ln.cyc + uint64(en.dw)
	}
	if ln.cyc < en.ready {
		return
	}
	i := en.beat
	addr := en.tr.Addr + uint64(4*i)
	w := en.tr.Width
	if en.tr.Burst {
		w = ecbus.W32
	}
	// The checked range lies within one slave, so the sampled slave is
	// the per-beat decode result of the layer-0 model.
	data, ok := ln.slaves[en.sel].ReadWord(addr, w)
	e.setVal(ecbus.SigRData, li, uint64(data))
	en.tr.Data[i] = data
	en.beat++
	if !ok {
		// Errored beat: the slave still drives the (possibly corrupted)
		// word, the error strobe replaces read-valid, and the burst
		// terminates without a last-beat marker.
		e.setPacked(ecbus.SigRBErr, li, true)
		e.finishData(ln, &ln.readQ, en, true)
		return
	}
	e.setPacked(ecbus.SigRdVal, li, true)
	e.setPacked(ecbus.SigBLast, li, en.tr.Burst && int(i) == en.tr.Words()-1)
	if int(en.beat) == en.tr.Words() {
		e.finishData(ln, &ln.readQ, en, false)
		return
	}
	en.ready = ln.cyc + 1 + uint64(en.dw)
}

// writeUnit serves one write data beat per cycle for one lane. The
// master drives the write data bus while the beat pends; the value is
// constant across the beat's wait cycles, so one drive at beat start
// yields the serial wire trajectory.
func (e *Engine) writeUnit(ln *lane, li int) {
	if ln.writeQ.empty() {
		return
	}
	en := ln.writeQ.front()
	i := en.beat
	if en.pend {
		e.setVal(ecbus.SigWData, li, uint64(en.tr.Data[i]))
		en.pend = false
		en.ready = ln.cyc + uint64(en.dw)
	}
	if ln.cyc < en.ready {
		return
	}
	addr := en.tr.Addr + uint64(4*i)
	w := en.tr.Width
	if en.tr.Burst {
		w = ecbus.W32
	}
	ok := ln.slaves[en.sel].WriteWord(addr, en.tr.Data[i], w)
	en.beat++
	if !ok {
		// Mirror of the read-side rule: the write-error strobe replaces
		// write-accept and no last-beat marker is driven.
		e.setPacked(ecbus.SigWBErr, li, true)
		e.finishData(ln, &ln.writeQ, en, true)
		return
	}
	e.setPacked(ecbus.SigWDRdy, li, true)
	e.setPacked(ecbus.SigBLast, li, en.tr.Burst && int(i) == en.tr.Words()-1)
	if int(en.beat) == en.tr.Words() {
		e.finishData(ln, &ln.writeQ, en, false)
		return
	}
	en.pend = true // next beat's data drives next cycle
}

// nextWake computes the next cycle at which anything observable can
// happen on the lane, evaluated at the end of an executed lane cycle.
// Until that cycle the lane's wires are frozen (the masked strobe clear
// holds them) and every unit/master step would be a pure countdown, so
// the tick loop may advance the lane's cycle counter and skip the rest
// — the serial models burn a full kernel cycle on exactly these wait
// states. A result of cyc+1 means "run normally next cycle".
//
// The events that bound the wake cycle:
//   - completed transactions await the master's harvest next cycle;
//   - a running address phase with the burst-last wire high must re-drive
//     it low next cycle (a concurrent data beat raised it);
//   - a pending write beat drives the data bus at beat start;
//   - unit deadlines: address-phase completion, data-beat delivery;
//   - the master: a backed-off retry coming due, or the next scripted
//     item's not-before cycle when issue capacity is available. A master
//     blocked on capacity needs no wake of its own — capacity frees only
//     when a unit completes a transaction, which is a unit deadline.
//
// Strobes left high are deliberately NOT wake events: Engine.sleep flags
// them and the next tick's strobe clear releases them (the serial
// falling edge, priced as usual) while the lane sleeps on.
func (e *Engine) nextWake(ln *lane, li int) uint64 {
	c1 := ln.cyc + 1
	if ln.finCnt > 0 {
		return c1
	}
	if ln.next == len(ln.items) && ln.inflight == 0 && len(ln.retryQ) == 0 {
		return c1 // run complete: harvested next cycle
	}
	w := ^uint64(0)
	if !ln.addrQ.empty() {
		if !ln.addrStarted {
			return c1 // phase starts next cycle
		}
		if e.packed[ecbus.SigBLast]&(uint64(1)<<uint(li)) != 0 {
			return c1 // a concurrent data beat raised it; re-drive low
		}
		w = ln.addrDone
	}
	if !ln.readQ.empty() {
		en := ln.readQ.front()
		if en.pend {
			return c1
		}
		if en.ready < w {
			w = en.ready
		}
	}
	if !ln.writeQ.empty() {
		en := ln.writeQ.front()
		if en.pend {
			return c1
		}
		if en.ready < w {
			w = en.ready
		}
	}
	// A stalled master's re-ask is a side-effect-free StateWait until
	// either a unit completion — always a unit deadline already in w —
	// or a backed-off retry coming due clears the flag, so the retry
	// due-cycle is a wake event regardless of the stall state. Scripted
	// items only matter to an unstalled master with free capacity.
	if len(ln.retryQ) > 0 {
		if r := ln.retryQ[0].NotBefore; r < w {
			w = r
		}
	}
	if !ln.stalled && ln.inflight < e.maxInFlight && ln.next < len(ln.items) {
		if r := ln.items[ln.next].NotBefore; r < w {
			w = r
		}
	}
	if w < c1 {
		return c1
	}
	return w
}

// finishData retires the head of a data queue.
func (e *Engine) finishData(ln *lane, q *ring, en *laneEntry, err bool) {
	tr := en.tr
	tr.Done, tr.Err = true, err
	tr.DataCycle = ln.cyc
	ln.finished[ln.finCnt] = finRec{tr: tr, seq: en.seq}
	ln.finCnt++
	q.popFront()
	if q == &ln.readQ && !q.empty() {
		if nx := q.front(); nx.pend {
			// The successor's countdown starts next cycle, when the read
			// unit would first see it at the head — and a read beat's
			// start drives no wires, so the consume folds in here and the
			// lane may sleep straight through to the delivery cycle.
			nx.pend = false
			nx.ready = ln.cyc + 1 + uint64(nx.dw)
		}
	}
	ln.outstanding[tr.Category()]--
	ln.inflight--
	ln.stalled = false
}
