// Package batch is a structure-of-arrays (SoA) execution engine that
// steps N independent corpus runs — different stimuli, same layer,
// organization and address-map configuration — through one simulation
// lattice together (the software analogue of hardware-accelerated power
// estimation: many stimulus vectors against one instrumented circuit).
//
// # Lane model
//
// Each concurrent run occupies one lane. The same single-bit wire of
// all lanes is packed into one uint64 lane word, one bit per lane, so
// transition counting on the layer-0/TL1 hot path is XOR +
// bits.OnesCount64 and the per-signal energy constants are fetched once
// per lane word instead of once per run. Multi-bit signals (address,
// data, byte enables, decoder select) stay one value per lane with a
// changed-lane mask, so only lanes that actually drove a new value are
// priced. The per-cycle dispatch — master tick, strobe release, bus
// units, pricing — runs once per lockstep cycle for the whole batch,
// amortizing what the serial path pays per run.
//
// # Divergence and refill
//
// Runs finish at different cycles (sparse corpora, retry paths under
// fault plans). An active-lane mask scopes every lattice operation to
// live lanes; a lane whose run completes is harvested, zeroed back to
// the power-on state and refilled from the pending corpus so the
// lattice stays full until the corpus drains.
//
// # Equivalence contract
//
// The engine is bit-exact, not approximately equal: a batch of one
// produces IEEE-754 bit-identical energies, cycle counts and
// transaction results to the serial reference path, and every lane of a
// batch of N is bit-identical to its own serial run. The golden tests
// in this package and in internal/bench enforce that contract across
// the corpus x layer matrix, clean and under fault plans. Exactness
// holds because each lane replays the serial model's float operations
// in the serial order: per-signal energies accumulate in dedicated
// per-lane accumulators, per-cycle sums add signal terms in ascending
// signal order, and idle fast-forwards integrate clock and leakage by
// repeated addition exactly as gatepower.ObserveIdle does.
package batch

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/sim"
)

// MaxWidth is the lane capacity of the lattice: one bit of a packed
// lane word per run.
const MaxWidth = 64

// wheelSize is the timing wheel's horizon in ticks (a power of two).
// Wait states are bounded by slave configuration plus dynamic extra
// waits, both far below this; only scripted not-before gaps can exceed
// it, and those take the far-wake path.
const wheelSize = 512

// Config describes the shared organization all lanes simulate.
type Config struct {
	// Layer selects the bus model: 0 (signal/cycle-true + gate-level
	// energy) or 1 (cycle-accurate TL + per-transition energy). Layer 2
	// is not batched — its per-phase analytic model is already cheap.
	Layer int

	// Width is the number of concurrent lanes, 1..MaxWidth.
	Width int

	// NewMap builds a fresh address map for one run, including any
	// fault-plan wrapping. Each lane gets its own map, so stateful
	// slave wrappers (fault injectors with per-word access ordinals)
	// are lane-local by construction and batched runs observe exactly
	// the per-run ordinal sequences of serial runs.
	NewMap func() *ecbus.Map

	// Gate is the layer-0 gate-level configuration.
	Gate gatepower.Config

	// Char is the layer-1 characterization table.
	Char gatepower.CharTable

	// Retry is the master's bus-error reaction policy.
	Retry core.RetryPolicy

	// MaxCycles bounds each run (default 10,000,000, the bench bound).
	MaxCycles uint64

	// MaxInFlight limits master pipelining (default 3*MaxOutstanding,
	// the ScriptMaster default).
	MaxInFlight int
}

// Run is one corpus stimulus: the scripted items of a single master.
type Run struct {
	Items []core.Item
}

// Result is the per-run outcome, field-for-field the figures the serial
// bench path reports for the same stimulus.
type Result struct {
	Cycles  uint64
	EnergyJ float64
	Errors  int // transactions errored after exhausting retries
	Retries int // total re-issues
}

// Stats aggregates whole-batch activity; transition totals are counted
// with popcounts over lane words.
type Stats struct {
	Ticks       uint64 // lockstep engine cycles
	LaneCycles  uint64 // simulated cycles summed over lanes (incl. fast-forwarded)
	Skipped     uint64 // idle cycles fast-forwarded per lane
	Slept       uint64 // wait-state cycles slept through per lane
	Transitions uint64 // priced signal transitions across all lanes
	Rises       uint64 // layer-0 rise transitions
	Falls       uint64 // layer-0 fall transitions
}

// Engine is the batched estimator. It is not safe for concurrent use;
// EstimateAll fully resets it, so one engine may run many campaigns
// sequentially.
type Engine struct {
	cfg         Config
	maxCycles   uint64
	maxInFlight int
	skipOK      bool // idle fast-forward allowed (honors sim.IdleSkipDisabled)

	// Lattice. Single-bit signals live one-bit-per-lane in packed lane
	// words; multi-bit signals keep one value per lane plus a
	// changed-lane mask maintained by the drive helpers.
	packed    [ecbus.NumSignals]uint64
	packedOld [ecbus.NumSignals]uint64
	val       [ecbus.NumSignals][MaxWidth]uint64
	old       [ecbus.NumSignals][MaxWidth]uint64
	chMask    [ecbus.NumSignals]uint64

	isPacked [ecbus.NumSignals]bool
	mask     [ecbus.NumSignals]uint64
	sigBits  [ecbus.NumSignals]int

	// Signal IDs split by representation, in ascending order — the
	// pricing passes walk these instead of re-testing isPacked per
	// signal per tick. Pricing order across the split lists still
	// matches the serial ascending-ID order because every signal's
	// energy lands in its own per-lane accumulator; only the per-lane
	// fold (laneEnergy0, priceCycle1's touched fold) fixes the
	// cross-signal addition order, and it walks ascending IDs.
	packedIDs []ecbus.SignalID
	multiIDs  []ecbus.SignalID

	// Layer-0 constants (exact expression shapes of gatepower) and
	// per-lane accumulators mirroring the estimator's per-signal ones.
	bitE    [ecbus.NumSignals]float64
	riseJ   [ecbus.NumSignals]float64 // bitE*KRise: the one-rise energy of a packed wire
	fallJ   [ecbus.NumSignals]float64 // bitE*KFall
	kRise   float64
	kFall   float64
	coupleK float64
	glitchK float64
	clockJ  float64
	leakJ   float64
	decJ    float64
	sigE    [ecbus.NumSignals][MaxWidth]float64
	decE    [MaxWidth]float64
	clockE  [MaxWidth]float64
	leakE   [MaxWidth]float64

	// Layer-1 constants and accumulators.
	perTransJ [ecbus.NumSignals]float64
	eCycle    [MaxWidth]float64 // this cycle's sum, in ascending signal order
	totalE    [MaxWidth]float64

	lanes    [MaxWidth]lane
	active   uint64
	sleeping uint64 // lanes advancing through wait states until their wake tick
	awake    uint64 // lanes that execute a cycle on the current tick

	// One-shot masks consumed by the next tick's strobe clear: lanes
	// that fell asleep with handshake strobes high. The strobes fall on
	// the first slept cycle — exactly when the serial bus would release
	// them — without the lane waking just to let go of a wire.
	// Address-valid is tracked separately: during a running address
	// phase it is re-driven (held), not released.
	strobeDrop uint64
	avDrop     uint64

	// tick counts engine iterations; sleeping lanes re-enter the pass
	// when it reaches their wake tick. Wakes are scheduled on a timing
	// wheel: slot t&(wheelSize-1) holds the lane mask due at tick t, and
	// wheelSum mirrors slot occupancy one bit per slot so the idle
	// fast-forward finds the next occupied slot with word scans. Lanes
	// whose wake lies beyond the wheel horizon (sparse corpora with long
	// not-before gaps) fall back to the far mask with an exact minimum.
	tick     uint64
	wheel    [wheelSize]uint64
	wheelSum [wheelSize / 64]uint64
	far      uint64
	farMin   uint64

	stats Stats
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Layer != 0 && cfg.Layer != 1 {
		return nil, fmt.Errorf("batch: unsupported layer %d (valid layers: 0, 1)", cfg.Layer)
	}
	if cfg.Width < 1 || cfg.Width > MaxWidth {
		return nil, fmt.Errorf("batch: invalid width %d (valid widths: 1..%d)", cfg.Width, MaxWidth)
	}
	if cfg.NewMap == nil {
		return nil, fmt.Errorf("batch: NewMap is required")
	}
	e := &Engine{cfg: cfg, maxCycles: cfg.MaxCycles, maxInFlight: cfg.MaxInFlight}
	if e.maxCycles == 0 {
		e.maxCycles = 10_000_000
	}
	if e.maxInFlight <= 0 {
		e.maxInFlight = 3 * ecbus.MaxOutstanding
	}
	e.skipOK = !sim.IdleSkipDisabled()
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		e.mask[id] = ecbus.MaskOf(id)
		e.sigBits[id] = ecbus.Signals[id].Bits
		e.isPacked[id] = e.sigBits[id] == 1
		if e.isPacked[id] {
			e.packedIDs = append(e.packedIDs, id)
		} else {
			e.multiIDs = append(e.multiIDs, id)
		}
	}
	switch cfg.Layer {
	case 0:
		e.kRise, e.kFall = cfg.Gate.KRise, cfg.Gate.KFall
		e.coupleK, e.glitchK = cfg.Gate.CouplingK, cfg.Gate.GlitchWiresPerAddrBit
		e.clockJ = cfg.Gate.ClockEnergyPerCycleJ()
		e.leakJ = cfg.Gate.LeakagePerCycleJ
		e.decJ = cfg.Gate.DecoderWireEnergyJ()
		for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
			be := cfg.Gate.BitEnergy(id)
			e.bitE[id] = be
			// float64(1)*be*K == be*K bit for bit, and the zero term of
			// the serial two-term sum adds +0.0 — a no-op on the
			// non-negative accumulator — so a packed single-bit rise
			// (fall) prices as one add of riseJ (fallJ).
			e.riseJ[id] = be * e.kRise
			e.fallJ[id] = be * e.kFall
		}
	case 1:
		e.perTransJ = cfg.Char.PerTransitionJ
	}
	return e, nil
}

// Stats returns the accumulated whole-batch activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// EstimateAll runs every corpus stimulus through the lattice and
// returns one Result per run, index-aligned with runs. The engine is
// reset first, so results never depend on a previous campaign — and,
// by the lane-independence of the lattice, never on the batch width.
func (e *Engine) EstimateAll(runs []Run) ([]Result, error) {
	e.reset()
	results := make([]Result, len(runs))
	next := 0
	for li := 0; li < e.cfg.Width && next < len(runs); li++ {
		e.loadRun(li, runs[next], next)
		next++
	}
	for e.active != 0 {
		if e.skipOK {
			e.fastForward()
		}
		e.stats.Ticks++
		e.tick++

		// Wake the sleeping lanes whose next observable event is due.
		// Their wait-state cycles were accounted when they fell asleep
		// (clock, leakage, cycle counter), so no per-tick work remains;
		// waking is one wheel-slot load plus the rare far-lane scan.
		if e.sleeping != 0 {
			slot := e.tick & (wheelSize - 1)
			if m := e.wheel[slot]; m != 0 {
				e.wheel[slot] = 0
				e.wheelSum[slot>>6] &^= 1 << (slot & 63)
				e.sleeping &^= m
			}
			if e.far != 0 && e.tick >= e.farMin {
				e.farMin = ^uint64(0)
				for m := e.far; m != 0; m &= m - 1 {
					li := bits.TrailingZeros64(m)
					if wt := e.lanes[li].wakeTick; wt <= e.tick {
						b := uint64(1) << uint(li)
						e.far &^= b
						e.sleeping &^= b
					} else if wt < e.farMin {
						e.farMin = wt
					}
				}
			}
		}
		e.awake = e.active &^ e.sleeping

		// Strobes release for the whole batch at once. The masters never
		// touch strobe wires, so clearing before the lane pass is the
		// same falling edge the split rising/falling sequence models.
		// Sleeping lanes hold theirs — their bus re-drives the strobe
		// every wait cycle in the serial model, a net hold.
		e.clearStrobes()

		// One pass per lane: harvest/refill, master, then bus units.
		// Lanes are independent, so interleaving lane A's units before
		// lane B's master is invisible; a run found complete here was
		// priced through its final cycle on the previous tick, exactly
		// where the serial master discovers completion.
		for m := e.awake; m != 0; m &= m - 1 {
			li := bits.TrailingZeros64(m)
			ln := &e.lanes[li]
			// cyc == ^0 marks a lane that has not executed its first
			// cycle yet: even an empty run executes one cycle (the serial
			// master needs it to discover it has nothing to issue).
			if ln.cyc != ^uint64(0) && ln.done() {
				results[ln.runIdx] = e.harvest(ln, li)
				e.clearLane(ln, li)
				if next >= len(runs) {
					e.active &^= 1 << uint(li)
					e.awake &^= 1 << uint(li)
					continue
				}
				e.loadRun(li, runs[next], next)
				next++
			} else if ln.cyc+1 >= e.maxCycles {
				return nil, fmt.Errorf("batch: layer-%d run %d did not complete within %d cycles",
					e.cfg.Layer, ln.runIdx, e.maxCycles)
			}
			ln.cyc++
			e.stats.LaneCycles++
			// Mirror of masterTick's own early return, hoisted to skip
			// the call: a stalled master with nothing to harvest and no
			// retry due is a guaranteed no-op this cycle.
			if ln.finCnt > 0 || !ln.stalled ||
				(len(ln.retryQ) > 0 && ln.retryQ[0].NotBefore <= ln.cyc) {
				e.masterTick(ln, li)
			}
			if !ln.addrQ.empty() {
				e.addrUnit(ln, li)
			}
			if !ln.readQ.empty() {
				e.readUnit(ln, li)
			}
			if !ln.writeQ.empty() {
				e.writeUnit(ln, li)
			}
			// Nothing observable can happen before the lane's next event:
			// wires frozen, units counting down — sleep through it.
			if w := e.nextWake(ln, li); w > ln.cyc+1 {
				e.sleep(ln, li, w)
			}
		}
		if e.active == 0 {
			break
		}

		// Post: price the cycle's transitions across the lattice.
		if e.cfg.Layer == 0 {
			e.priceCycle0()
		} else {
			e.priceCycle1()
		}
	}
	return results, nil
}

// strobeSignals are the pulse wires both bus models default to inactive
// at the top of every cycle; bus-value wires hold their previous values.
var strobeSignals = [...]ecbus.SignalID{
	ecbus.SigAValid, ecbus.SigARdy, ecbus.SigRdVal,
	ecbus.SigWDRdy, ecbus.SigRBErr, ecbus.SigWBErr,
}

// clearStrobes releases every lane's pulse wires in one store per
// signal, holding the sleeping lanes' bits: their serial bus re-drives
// the active strobe every wait cycle, so the hold reproduces the serial
// wire trajectory. Lanes that just fell asleep with strobes left high
// release them here, one tick in (the drop masks are one-shot); the
// address-valid strobe of a sleeping lane is always a running address
// phase's, so only a leftover one (avDrop) falls. Inactive lanes are
// already zero; the pricing pass sees the falls via packed XOR against
// the previous cycle's words.
func (e *Engine) clearStrobes() {
	s := e.sleeping
	d := s &^ e.strobeDrop
	e.packed[ecbus.SigAValid] &= s &^ e.avDrop
	e.packed[ecbus.SigARdy] &= d
	e.packed[ecbus.SigRdVal] &= d
	e.packed[ecbus.SigWDRdy] &= d
	e.packed[ecbus.SigRBErr] &= d
	e.packed[ecbus.SigWBErr] &= d
	e.strobeDrop, e.avDrop = 0, 0
}

// sleep advances a lane through its wait states at the moment it falls
// asleep: the slept cycles' clock and leakage accumulate now by the
// same repeated addition the per-tick path would have performed — on
// the lane's private accumulators the addition sequence is identical,
// so the bits are too — the cycle counter jumps to the eve of the wake
// cycle, and the lane leaves the tick loop until its wake tick. Its
// lattice wires stay frozen (clearStrobes holds them), so the
// intervening ticks price zero transitions for it; a slept wait state
// costs nothing at all per tick, where the serial models burn a full
// kernel cycle (FSM poll + estimator observation finding no
// transitions) or an idle-skip callback on it.
func (e *Engine) sleep(ln *lane, li int, w uint64) {
	k := w - ln.cyc - 1
	if e.cfg.Layer == 0 {
		// Local copies keep the repeated addition (the bit-exactness
		// requirement) while sparing the per-iteration store/reload of
		// the accumulator slots.
		c, l := e.clockE[li], e.leakE[li]
		cj, lj := e.clockJ, e.leakJ
		for i := uint64(0); i < k; i++ {
			c += cj
			l += lj
		}
		e.clockE[li], e.leakE[li] = c, l
	}
	ln.cyc = w - 1
	ln.wakeTick = e.tick + k + 1
	bit := uint64(1) << uint(li)
	e.sleeping |= bit
	if k+1 < wheelSize {
		slot := ln.wakeTick & (wheelSize - 1)
		e.wheel[slot] |= bit
		e.wheelSum[slot>>6] |= 1 << (slot & 63)
	} else {
		e.far |= bit
		if ln.wakeTick < e.farMin {
			e.farMin = ln.wakeTick
		}
	}
	// Strobes left high fall on the first slept cycle: flag them for the
	// next strobe clear instead of keeping the lane up one more cycle.
	if (e.packed[ecbus.SigARdy]|e.packed[ecbus.SigRdVal]|
		e.packed[ecbus.SigWDRdy]|e.packed[ecbus.SigRBErr]|
		e.packed[ecbus.SigWBErr])&bit != 0 {
		e.strobeDrop |= bit
	}
	if e.packed[ecbus.SigAValid]&bit != 0 && ln.addrQ.empty() {
		e.avDrop |= bit
	}
	e.stats.LaneCycles += k
	e.stats.Slept += k
}

// fastForward jumps the tick counter across ticks in which every live
// lane is asleep: each slept lane's cycles, clock and leakage were
// accounted when it fell asleep, its wires are frozen, and the strobe
// clear holds sleeping lanes' bits — so the skipped ticks are pure
// no-ops for the lattice and the accumulated bits.
func (e *Engine) fastForward() {
	if e.active&^e.sleeping != 0 || e.sleeping == 0 {
		return
	}
	if e.strobeDrop|e.avDrop != 0 {
		return // the next tick's strobe clear releases wires — an energy event
	}
	nw := e.nextWheelTick()
	if e.far != 0 && e.farMin < nw {
		nw = e.farMin
	}
	if nw <= e.tick+1 {
		return
	}
	k := nw - e.tick - 1
	e.tick += k
	e.stats.Skipped += k
}

// nextWheelTick returns the tick of the first occupied wheel slot after
// the current tick, scanning the occupancy bitmap one word at a time.
// Landing short of a lane's wake tick is safe (the tick executes as an
// empty no-op and the scan resumes); landing past one never happens —
// the scan starts at the next slot and takes the first occupied one.
func (e *Engine) nextWheelTick() uint64 {
	start := (e.tick + 1) & (wheelSize - 1)
	wi := start >> 6
	word := e.wheelSum[wi] &^ (1<<(start&63) - 1)
	for i := 0; ; i++ {
		if word != 0 {
			slot := wi<<6 + uint64(bits.TrailingZeros64(word))
			return e.tick + 1 + ((slot - start) & (wheelSize - 1))
		}
		if i == len(e.wheelSum) {
			return ^uint64(0) // empty wheel: every sleeper is a far lane
		}
		wi = (wi + 1) & uint64(len(e.wheelSum)-1)
		word = e.wheelSum[wi]
	}
}

// harvest reads one finished run's results out of the lattice.
func (e *Engine) harvest(ln *lane, li int) Result {
	r := Result{Cycles: ln.cyc + 1, Errors: ln.errors, Retries: ln.retries}
	if e.cfg.Layer == 0 {
		r.EnergyJ = e.laneEnergy0(li)
	} else {
		r.EnergyJ = e.totalE[li]
	}
	return r
}

// laneEnergy0 totals one lane's layer-0 energy in the exact summation
// order of gatepower's TotalEnergy: interface signals ascending, then
// decoder select, decoder glitching, clock tree, leakage.
func (e *Engine) laneEnergy0(li int) float64 {
	var sum float64
	for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
		sum += e.sigE[id][li]
	}
	return sum + e.sigE[ecbus.SigSel][li] + e.decE[li] + e.clockE[li] + e.leakE[li]
}

// loadRun installs a pending run into a cleared lane. The lane's
// all-zero wires are the power-on state — the same reset reference a
// fresh serial run observes.
func (e *Engine) loadRun(li int, run Run, idx int) {
	ln := &e.lanes[li]
	ln.runIdx = idx
	ln.items = run.Items
	ln.cyc = ^uint64(0) // first tick pre-increments to cycle 0
	ln.m = e.cfg.NewMap()
	// The data/wait path works on the unwrapped slaves: transparent
	// wrappers (empty-plan fault injectors) delegate every call verbatim,
	// so bypassing them changes no observable behaviour.
	ln.slaves = ln.slaves[:0]
	ln.waiters = ln.waiters[:0]
	for _, s := range ln.m.Slaves() {
		u := ecbus.Unwrap(s)
		d, _ := u.(ecbus.DynamicWaiter)
		ln.slaves = append(ln.slaves, u)
		ln.waiters = append(ln.waiters, d)
	}
	e.active |= 1 << uint(li)
}

// clearLane zeroes one lane's lattice column and bookkeeping. Both the
// current and previous values are cleared together, so the next run
// starts from the power-on state without phantom transitions.
func (e *Engine) clearLane(ln *lane, li int) {
	bit := uint64(1) << uint(li)
	for id := range e.packed {
		e.packed[id] &^= bit
		e.packedOld[id] &^= bit
		e.chMask[id] &^= bit
		e.val[id][li] = 0
		e.old[id][li] = 0
		e.sigE[id][li] = 0
	}
	e.decE[li], e.clockE[li], e.leakE[li] = 0, 0, 0
	e.eCycle[li], e.totalE[li] = 0, 0
	e.sleeping &^= bit
	*ln = lane{retryQ: ln.retryQ[:0],
		slaves: ln.slaves[:0], waiters: ln.waiters[:0]}
}

// reset returns the whole engine to its post-construction state.
func (e *Engine) reset() {
	for li := range e.lanes {
		e.clearLane(&e.lanes[li], li)
	}
	e.active = 0
	e.sleeping, e.awake = 0, 0
	e.strobeDrop, e.avDrop = 0, 0
	e.tick = 0
	e.wheel = [wheelSize]uint64{}
	e.wheelSum = [wheelSize / 64]uint64{}
	e.far, e.farMin = 0, ^uint64(0)
	e.stats = Stats{}
}
