package batch_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

// The golden gate of the batched engine: batch-of-1 must be bit-identical
// (IEEE-754 bit patterns, per-transaction traces) to the serial path, and
// every lane of a batch-of-N must be bit-identical to its own serial run —
// across corpus x layer, clean and under fault plans.

var lay = core.Layout{Fast: 0, Slow: 0x10000}

// newFaultMap mirrors the bench fault harness: the reference two-slave
// layout with every slave wrapped by the fault plan.
func newFaultMap(plan fault.Plan) *ecbus.Map {
	return ecbus.MustMap(
		fault.Wrap(mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0), plan),
		fault.Wrap(mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2), plan),
	)
}

var retry = core.RetryPolicy{MaxRetries: 8, Backoff: 1}

// charTable is the shared layer-1 characterization table; serial and
// batched runs must price with the same table for bit-equality.
var charTable = func() gatepower.CharTable {
	k := sim.New(0)
	b := rtlbus.New(k, ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	))
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
	m, _ := core.RunScript(k, b, core.CharCorpus(lay, 400), 10_000_000)
	if !m.Done() {
		panic("batch_test: characterization corpus did not complete")
	}
	return est.Char()
}()

type serialOut struct {
	cycles  uint64
	energyJ float64
	errors  int
	retries int
}

// serialRun executes one stimulus through the kernel-driven serial path,
// exactly as the bench fault harness does.
func serialRun(t *testing.T, layer int, items []core.Item, plan fault.Plan) serialOut {
	t.Helper()
	k := sim.New(0)
	bmap := newFaultMap(plan)
	var bus core.Initiator
	get := func() float64 { return 0 }
	switch layer {
	case 0:
		b := rtlbus.New(k, bmap)
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
		get = est.TotalEnergy
		bus = b
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(charTable))
		get = b.Power().TotalEnergy
		bus = b
	default:
		t.Fatalf("serialRun: layer %d", layer)
	}
	m := core.NewScriptMaster(k, bus, items)
	m.Retry = retry
	n, _ := k.RunUntil(10_000_000, m.Done)
	if !m.Done() {
		t.Fatalf("serial layer-%d run did not complete", layer)
	}
	return serialOut{cycles: n, energyJ: get(), errors: m.Errors(), retries: m.TotalRetries()}
}

// engineRun executes the runs through the batched engine.
func engineRun(t *testing.T, layer, width int, runs []batch.Run, plan fault.Plan) []batch.Result {
	t.Helper()
	cfg := batch.Config{
		Layer:  layer,
		Width:  width,
		NewMap: func() *ecbus.Map { return newFaultMap(plan) },
		Retry:  retry,
	}
	if layer == 0 {
		cfg.Gate = gatepower.DefaultConfig()
	} else {
		cfg.Char = charTable
	}
	eng, err := batch.New(cfg)
	if err != nil {
		t.Fatalf("batch.New: %v", err)
	}
	res, err := eng.EstimateAll(runs)
	if err != nil {
		t.Fatalf("EstimateAll: %v", err)
	}
	return res
}

// compareRun asserts bit-identity of the aggregate figures.
func compareRun(t *testing.T, label string, want serialOut, got batch.Result) {
	t.Helper()
	if got.Cycles != want.cycles || got.Errors != want.errors || got.Retries != want.retries ||
		math.Float64bits(got.EnergyJ) != math.Float64bits(want.energyJ) {
		t.Errorf("%s diverged:\n  serial cycles=%d energy=%016x errors=%d retries=%d\n  batch  cycles=%d energy=%016x errors=%d retries=%d",
			label, want.cycles, math.Float64bits(want.energyJ), want.errors, want.retries,
			got.Cycles, math.Float64bits(got.EnergyJ), got.Errors, got.Retries)
	}
}

// compareTx asserts per-transaction trace identity: timestamps, payloads,
// retry counts and final status of every scripted transaction.
func compareTx(t *testing.T, label string, serial, batched []core.Item) {
	t.Helper()
	for i := range serial {
		a, b := serial[i].Tr, batched[i].Tr
		if a.Done != b.Done || a.Err != b.Err || a.Retries != b.Retries ||
			a.IssueCycle != b.IssueCycle || a.AddrCycle != b.AddrCycle ||
			a.DataCycle != b.DataCycle || len(a.Data) != len(b.Data) {
			t.Fatalf("%s: transaction %d diverged:\n  serial %+v\n  batch  %+v", label, i, a, b)
		}
		for w := range a.Data {
			if a.Data[w] != b.Data[w] {
				t.Fatalf("%s: transaction %d data word %d diverged: %#x vs %#x",
					label, i, w, a.Data[w], b.Data[w])
			}
		}
	}
}

func corpora() map[string]func() []core.Item {
	return map[string]func() []core.Item{
		"verification": func() []core.Item { return core.VerificationCorpus(lay) },
		"perf":         func() []core.Item { return core.PerfCorpus(lay, 64) },
		"random":       func() []core.Item { return core.RandomCorpus(7, 64, lay) },
	}
}

func faultPlans() map[string]fault.Plan {
	plans := map[string]fault.Plan{"clean": {}}
	for _, n := range fault.Names {
		if plan, ok := fault.Named(n); ok {
			plans[n] = plan
		}
	}
	return plans
}

// TestGoldenBatchOfOneMatchesSerial: width 1, full corpus x layer x plan
// matrix against the serial path.
func TestGoldenBatchOfOneMatchesSerial(t *testing.T) {
	for layer := 0; layer <= 1; layer++ {
		for cname, build := range corpora() {
			for pname, plan := range faultPlans() {
				label := fmt.Sprintf("layer%d/%s/%s", layer, cname, pname)
				items := build()
				sItems := core.CloneItems(items)
				bItems := core.CloneItems(items)
				want := serialRun(t, layer, sItems, plan)
				got := engineRun(t, layer, 1, []batch.Run{{Items: bItems}}, plan)
				compareRun(t, label, want, got[0])
				compareTx(t, label, sItems, bItems)
			}
		}
	}
}

// TestGoldenBatchOfNMatchesSerial: N mixed-length runs — sparse, dense,
// random and one empty — at several widths, every lane compared to its
// own serial run. Lanes drain and refill at different cycles, exercising
// the active-mask and refill paths; the fault plan adds retry divergence.
func TestGoldenBatchOfNMatchesSerial(t *testing.T) {
	plan, ok := fault.Named("flaky")
	if !ok {
		t.Fatal("no flaky plan")
	}
	build := func() [][]core.Item {
		out := [][]core.Item{
			core.VerificationCorpus(lay),
			nil, // empty run: completes after one cycle
			core.PerfCorpus(lay, 32),
		}
		for s := 0; s < 10; s++ {
			out = append(out, core.RandomCorpus(uint64(100+s), 24+8*s, lay))
		}
		return out
	}
	for layer := 0; layer <= 1; layer++ {
		// Serial expectations, computed once per layer.
		sSets := build()
		want := make([]serialOut, len(sSets))
		for i, its := range sSets {
			want[i] = serialRun(t, layer, its, plan)
		}
		for _, width := range []int{2, 7, 64} {
			label := fmt.Sprintf("layer%d/width%d", layer, width)
			bSets := build()
			runs := make([]batch.Run, len(bSets))
			for i, its := range bSets {
				runs[i] = batch.Run{Items: its}
			}
			got := engineRun(t, layer, width, runs, plan)
			if len(got) != len(want) {
				t.Fatalf("%s: %d results for %d runs", label, len(got), len(want))
			}
			for i := range want {
				compareRun(t, fmt.Sprintf("%s/run%d", label, i), want[i], got[i])
				compareTx(t, fmt.Sprintf("%s/run%d", label, i), sSets[i], bSets[i])
			}
		}
	}
}

// TestGoldenBatchMatchesReferencePath: the reference path (full-scan
// estimators, no idle skipping) is the origin of the golden chain; the
// engine must match it bit for bit through a batch of one.
func TestGoldenBatchMatchesReferencePath(t *testing.T) {
	core.SetReference(true)
	defer core.SetReference(false)
	plan, ok := fault.Named("storm")
	if !ok {
		t.Fatal("no storm plan")
	}
	for layer := 0; layer <= 1; layer++ {
		for pname, plan := range map[string]fault.Plan{"clean": {}, "storm": plan} {
			label := fmt.Sprintf("reference/layer%d/%s", layer, pname)
			items := core.VerificationCorpus(lay)
			sItems := core.CloneItems(items)
			bItems := core.CloneItems(items)
			want := serialRun(t, layer, sItems, plan)
			got := engineRun(t, layer, 1, []batch.Run{{Items: bItems}}, plan)
			compareRun(t, label, want, got[0])
			compareTx(t, label, sItems, bItems)
		}
	}
}

// TestGoldenFaultOrdinalsLaneLocal: the satellite contract for batched
// fault plans — per-word access ordinals are per-run (each lane owns a
// freshly wrapped map), so a faulted campaign batched at any width
// reproduces the serial per-run injection sequences exactly. A shared
// global injector would fire the n-th-access faults of early lanes into
// later lanes' beats and diverge immediately.
func TestGoldenFaultOrdinalsLaneLocal(t *testing.T) {
	plan, ok := fault.Named("grind")
	if !ok {
		t.Fatal("no grind plan")
	}
	for layer := 0; layer <= 1; layer++ {
		// Identical stimuli in every lane: with lane-local ordinals all
		// lanes must produce identical results; with global ordinals the
		// injected beats would be spread round-robin across lanes.
		const n = 16
		items := core.RandomCorpus(11, 48, lay)
		want := serialRun(t, layer, core.CloneItems(items), plan)
		runs := make([]batch.Run, n)
		for i := range runs {
			runs[i] = batch.Run{Items: core.CloneItems(items)}
		}
		got := engineRun(t, layer, n, runs, plan)
		for i, r := range got {
			compareRun(t, fmt.Sprintf("layer%d/lane%d", layer, i), want, r)
		}
		if want.retries == 0 {
			t.Errorf("layer%d: grind plan produced no retries; ordinal test is vacuous", layer)
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	nm := func() *ecbus.Map { return newFaultMap(fault.Plan{}) }
	bad := []batch.Config{
		{Layer: 2, Width: 1, NewMap: nm}, // layer 2 is not batched
		{Layer: 0, Width: 0, NewMap: nm},
		{Layer: 0, Width: 65, NewMap: nm},
		{Layer: 0, Width: -3, NewMap: nm},
		{Layer: 0, Width: 1}, // NewMap required
	}
	for i, cfg := range bad {
		if _, err := batch.New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := batch.New(batch.Config{Layer: 1, Width: batch.MaxWidth, NewMap: nm, Char: charTable}); err != nil {
		t.Errorf("New rejected valid config: %v", err)
	}
}

// TestEngineReuseAndStats: EstimateAll fully resets the engine, so a
// second campaign on the same engine is bit-identical to a fresh one,
// and the activity stats reflect batched execution.
func TestEngineReuseAndStats(t *testing.T) {
	cfg := batch.Config{
		Layer:  0,
		Width:  8,
		NewMap: func() *ecbus.Map { return newFaultMap(fault.Plan{}) },
		Retry:  retry,
		Gate:   gatepower.DefaultConfig(),
	}
	eng, err := batch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkRuns := func() []batch.Run {
		runs := make([]batch.Run, 12)
		for i := range runs {
			runs[i] = batch.Run{Items: core.RandomCorpus(uint64(i+1), 32, lay)}
		}
		return runs
	}
	first, err := eng.EstimateAll(mkRuns())
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Ticks == 0 || st.Transitions == 0 || st.Rises == 0 || st.Falls == 0 {
		t.Errorf("implausible stats after campaign: %+v", st)
	}
	if st.LaneCycles < st.Ticks {
		t.Errorf("lane cycles %d below tick count %d", st.LaneCycles, st.Ticks)
	}
	second, err := eng.EstimateAll(mkRuns())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if math.Float64bits(first[i].EnergyJ) != math.Float64bits(second[i].EnergyJ) ||
			first[i] != second[i] {
			t.Fatalf("run %d: engine reuse diverged: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestGoldenFarWakeSparseCorpus drives scripted not-before gaps longer
// than the timing wheel's horizon, so sleeping lanes take the far-wake
// path (and the wheel wraps several times between issues). Staggered
// gaps across lanes keep wheel and far sleepers concurrent.
func TestGoldenFarWakeSparseCorpus(t *testing.T) {
	for layer := 0; layer <= 1; layer++ {
		var runs []batch.Run
		var serial []serialOut
		var serialItems, batchItems [][]core.Item
		for s := 0; s < 4; s++ {
			items := core.RandomCorpus(uint64(30+s), 10, lay)
			for i := range items {
				// 700 > wheelSize with per-lane phase stagger; lane 0
				// keeps a dense script so wheel wakes stay in play.
				if s > 0 {
					items[i].NotBefore = uint64(i) * (700 + 130*uint64(s))
				}
			}
			sItems := core.CloneItems(items)
			serialItems = append(serialItems, sItems)
			batchItems = append(batchItems, items)
			serial = append(serial, serialRun(t, layer, sItems, fault.Plan{}))
			runs = append(runs, batch.Run{Items: items})
		}
		got := engineRun(t, layer, 4, runs, fault.Plan{})
		for s := range runs {
			label := fmt.Sprintf("far-wake layer %d run %d", layer, s)
			compareRun(t, label, serial[s], got[s])
			compareTx(t, label, serialItems[s], batchItems[s])
		}
	}
}
