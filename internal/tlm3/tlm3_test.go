package tlm3

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/checker"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

func busMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("ram", 0, 0x2000, 0, 0),
		mem.NewRAM("slow", 0x10000, 0x1000, 1, 2),
	)
}

func TestMessageRoundTrip(t *testing.T) {
	b := New(busMap())
	msg := []byte("smart card message layer")
	if err := b.Write(0x105, msg); err != nil { // deliberately unaligned
		t.Fatal(err)
	}
	got, err := b.Read(0x105, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	st := b.Stats()
	if st.Messages != 2 || st.Bytes != uint64(2*len(msg)) || st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	b := New(busMap())
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 128 {
			data = data[:128]
		}
		addr := uint64(off % 0x1E00)
		if err := b.Write(addr, data); err != nil {
			return false
		}
		got, err := b.Read(addr, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageErrors(t *testing.T) {
	b := New(busMap())
	if _, err := b.Read(0x5000, 4); err == nil {
		t.Fatal("decode hole read succeeded")
	}
	if err := b.Write(0x1FFE, []byte{1, 2, 3, 4}); err == nil {
		t.Fatal("write crossing slave end succeeded")
	}
	if _, err := b.Read(0x100, 0); err == nil {
		t.Fatal("zero-length read accepted")
	}
	if err := b.Write(0x100, nil); err == nil {
		t.Fatal("empty write accepted")
	}
	if b.Stats().Messages != 0 {
		t.Fatal("failed messages counted")
	}
}

func TestEstimateScalesWithTraffic(t *testing.T) {
	char := platform.DefaultCharTable()
	small := New(busMap())
	small.Write(0x100, make([]byte, 16))
	big := New(busMap())
	for i := 0; i < 10; i++ {
		big.Write(0x100+uint64(32*i), make([]byte, 32))
	}
	ps := small.Estimate(char, 0, 0)
	pb := big.Estimate(char, 0, 0)
	if pb.Cycles <= ps.Cycles || pb.EnergyJ <= ps.EnergyJ {
		t.Fatalf("estimate not monotone: %+v vs %+v", ps, pb)
	}
	// Wait states raise the cycle estimate, not the energy.
	pw := big.Estimate(char, 2, 2)
	if pw.Cycles <= pb.Cycles || pw.EnergyJ != pb.EnergyJ {
		t.Fatalf("wait-state projection wrong: %+v vs %+v", pw, pb)
	}
}

// TestEstimateBallpark: the layer-3 projection must land within a small
// factor of the refined layer-2 measurement for bus-dominated traffic —
// coarse, but usable for algorithm-level budgeting.
func TestEstimateBallpark(t *testing.T) {
	char := platform.DefaultCharTable()

	l3 := NewRecorder(New(busMap()))
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	for i := 0; i < 8; i++ {
		if err := l3.Write(uint64(0x200+64*i), payload); err != nil {
			t.Fatal(err)
		}
	}
	proj := l3.Estimate(char, 0, 0)

	k := sim.New(0)
	b2 := tlm2.New(k, busMap()).AttachPower(tlm2.NewPowerModel(char))
	cycles, err := Bridge(k, b2, l3.Log, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	measured := b2.Power().TotalEnergy()

	ratioC := float64(proj.Cycles) / float64(cycles)
	ratioE := proj.EnergyJ / measured
	t.Logf("layer-3 projection vs layer-2: cycles %.2fx, energy %.2fx", ratioC, ratioE)
	if ratioC < 0.3 || ratioC > 3 {
		t.Errorf("cycle projection off by %.2fx", ratioC)
	}
	if ratioE < 0.3 || ratioE > 3 {
		t.Errorf("energy projection off by %.2fx", ratioE)
	}
}

// TestBridgeDataFidelity: bridging layer-3 messages onto layer 1
// produces exactly the same memory contents as the layer-3 run itself.
func TestBridgeDataFidelity(t *testing.T) {
	// Run the messages at layer 3 against one memory.
	m3 := busMap()
	l3 := NewRecorder(New(m3))
	blob := []byte("bridged down to cycle accuracy!!")
	if err := l3.Write(0x300, blob); err != nil {
		t.Fatal(err)
	}
	if err := l3.Write(0x341, blob[:7]); err != nil { // unaligned tail path
		t.Fatal(err)
	}
	if _, err := l3.Read(0x300, 8); err != nil {
		t.Fatal(err)
	}

	// Bridge the log onto a fresh layer-1 system.
	m1 := busMap()
	k := sim.New(0)
	b1 := tlm1.New(k, m1)
	cycles, err := Bridge(k, b1, l3.Log, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("bridge consumed no time")
	}

	check := New(m1)
	got, err := check.Read(0x300, len(blob))
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("bridged memory mismatch: %q (%v)", got, err)
	}
	got, err = check.Read(0x341, 7)
	if err != nil || !bytes.Equal(got, blob[:7]) {
		t.Fatalf("unaligned bridged write mismatch: %q (%v)", got, err)
	}
}

func TestBridgeUsesBursts(t *testing.T) {
	l3 := NewRecorder(New(busMap()))
	if err := l3.Write(0x400, make([]byte, 64)); err != nil { // 16-byte aligned
		t.Fatal(err)
	}
	k := sim.New(0)
	b1 := tlm1.New(k, busMap())
	if _, err := Bridge(k, b1, l3.Log, 1_000_000); err != nil {
		t.Fatal(err)
	}
	st := b1.Stats()
	if st.Accepted != 4 { // 64 aligned bytes = 4 bursts
		t.Fatalf("bridge issued %d transactions, want 4 bursts", st.Accepted)
	}
}

func TestEstimateUsesCharPrices(t *testing.T) {
	b := New(busMap())
	b.Write(0x100, make([]byte, 32))
	cheap := b.Estimate(gatepower.CharTable{}, 0, 0)
	real := b.Estimate(platform.DefaultCharTable(), 0, 0)
	if cheap.EnergyJ != 0 || real.EnergyJ <= 0 {
		t.Fatalf("char pricing not applied: %g / %g", cheap.EnergyJ, real.EnergyJ)
	}
}

// TestBridgeRoundTripEquivalence is the full round trip of the
// message-layer abstraction: one deterministic layer-3 script is
// bridged down to every refinement — the gate-level reference under
// the protocol checker (must be violation-free) and the timed TL1/TL2
// buses with energy estimation attached. The resulting cycle counts
// and IEEE-754 energy bit patterns are golden-pinned: any drift in the
// bridge's transaction synthesis, the timed models or the power
// booking shows up as a bit mismatch, not a silent estimate shift.
func TestBridgeRoundTripEquivalence(t *testing.T) {
	char := platform.DefaultCharTable()
	l3 := NewRecorder(New(busMap()))
	blob := make([]byte, 96)
	for i := range blob {
		blob[i] = byte(i*7 + 3)
	}
	script := func(fail string, err error) {
		if err != nil {
			t.Fatalf("%s: %v", fail, err)
		}
	}
	script("aligned write", l3.Write(0x200, blob))
	script("unaligned write", l3.Write(0x305, blob[:13]))
	script("slow-region write", l3.Write(0x10010, blob[:32]))
	_, err := l3.Read(0x200, 64)
	script("aligned read", err)
	_, err = l3.Read(0x305, 13)
	script("unaligned read", err)
	_, err = l3.Read(0x10010, 32)
	script("slow-region read", err)

	// Gate-level replay under the protocol checker: the synthesized
	// transaction stream must be protocol-clean, not merely complete.
	k0 := sim.New(0)
	b0 := rtlbus.New(k0, busMap())
	chk := checker.New()
	k0.At(sim.Post, "chk", func(uint64) { chk.Observe(b0.Wires()) })
	if _, err := Bridge(k0, b0, l3.Log, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !chk.Clean() {
		for _, v := range chk.Violations() {
			t.Log(v)
		}
		t.Fatalf("bridged replay raised %d protocol violations", len(chk.Violations()))
	}

	// Timed replays with energy attached, golden-pinned.
	k1 := sim.New(0)
	b1 := tlm1.New(k1, busMap()).AttachPower(tlm1.NewPowerModel(char))
	cycles1, err := Bridge(k1, b1, l3.Log, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	k2 := sim.New(0)
	b2 := tlm2.New(k2, busMap()).AttachPower(tlm2.NewPowerModel(char))
	cycles2, err := Bridge(k2, b2, l3.Log, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goldenCycles1 = uint64(80)
		goldenCycles2 = uint64(82)
		goldenBits1   = uint64(0x3ddc68bd45957d05)
		goldenBits2   = uint64(0x3ddffc375d9e4f4e)
	)
	bits1 := math.Float64bits(b1.Power().TotalEnergy())
	bits2 := math.Float64bits(b2.Power().TotalEnergy())
	t.Logf("TL1: %d cycles, energy bits %#016x", cycles1, bits1)
	t.Logf("TL2: %d cycles, energy bits %#016x", cycles2, bits2)
	if cycles1 != goldenCycles1 || bits1 != goldenBits1 {
		t.Errorf("TL1 bridge drifted: cycles %d bits %#016x, golden %d / %#016x",
			cycles1, bits1, goldenCycles1, goldenBits1)
	}
	if cycles2 != goldenCycles2 || bits2 != goldenBits2 {
		t.Errorf("TL2 bridge drifted: cycles %d bits %#016x, golden %d / %#016x",
			cycles2, bits2, goldenCycles2, goldenBits2)
	}
}
