package tlm3

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

func busMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("ram", 0, 0x2000, 0, 0),
		mem.NewRAM("slow", 0x10000, 0x1000, 1, 2),
	)
}

func TestMessageRoundTrip(t *testing.T) {
	b := New(busMap())
	msg := []byte("smart card message layer")
	if err := b.Write(0x105, msg); err != nil { // deliberately unaligned
		t.Fatal(err)
	}
	got, err := b.Read(0x105, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	st := b.Stats()
	if st.Messages != 2 || st.Bytes != uint64(2*len(msg)) || st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	b := New(busMap())
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 128 {
			data = data[:128]
		}
		addr := uint64(off % 0x1E00)
		if err := b.Write(addr, data); err != nil {
			return false
		}
		got, err := b.Read(addr, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageErrors(t *testing.T) {
	b := New(busMap())
	if _, err := b.Read(0x5000, 4); err == nil {
		t.Fatal("decode hole read succeeded")
	}
	if err := b.Write(0x1FFE, []byte{1, 2, 3, 4}); err == nil {
		t.Fatal("write crossing slave end succeeded")
	}
	if _, err := b.Read(0x100, 0); err == nil {
		t.Fatal("zero-length read accepted")
	}
	if err := b.Write(0x100, nil); err == nil {
		t.Fatal("empty write accepted")
	}
	if b.Stats().Messages != 0 {
		t.Fatal("failed messages counted")
	}
}

func TestEstimateScalesWithTraffic(t *testing.T) {
	char := platform.DefaultCharTable()
	small := New(busMap())
	small.Write(0x100, make([]byte, 16))
	big := New(busMap())
	for i := 0; i < 10; i++ {
		big.Write(0x100+uint64(32*i), make([]byte, 32))
	}
	ps := small.Estimate(char, 0, 0)
	pb := big.Estimate(char, 0, 0)
	if pb.Cycles <= ps.Cycles || pb.EnergyJ <= ps.EnergyJ {
		t.Fatalf("estimate not monotone: %+v vs %+v", ps, pb)
	}
	// Wait states raise the cycle estimate, not the energy.
	pw := big.Estimate(char, 2, 2)
	if pw.Cycles <= pb.Cycles || pw.EnergyJ != pb.EnergyJ {
		t.Fatalf("wait-state projection wrong: %+v vs %+v", pw, pb)
	}
}

// TestEstimateBallpark: the layer-3 projection must land within a small
// factor of the refined layer-2 measurement for bus-dominated traffic —
// coarse, but usable for algorithm-level budgeting.
func TestEstimateBallpark(t *testing.T) {
	char := platform.DefaultCharTable()

	l3 := NewRecorder(New(busMap()))
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	for i := 0; i < 8; i++ {
		if err := l3.Write(uint64(0x200+64*i), payload); err != nil {
			t.Fatal(err)
		}
	}
	proj := l3.Estimate(char, 0, 0)

	k := sim.New(0)
	b2 := tlm2.New(k, busMap()).AttachPower(tlm2.NewPowerModel(char))
	cycles, err := Bridge(k, b2, l3.Log, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	measured := b2.Power().TotalEnergy()

	ratioC := float64(proj.Cycles) / float64(cycles)
	ratioE := proj.EnergyJ / measured
	t.Logf("layer-3 projection vs layer-2: cycles %.2fx, energy %.2fx", ratioC, ratioE)
	if ratioC < 0.3 || ratioC > 3 {
		t.Errorf("cycle projection off by %.2fx", ratioC)
	}
	if ratioE < 0.3 || ratioE > 3 {
		t.Errorf("energy projection off by %.2fx", ratioE)
	}
}

// TestBridgeDataFidelity: bridging layer-3 messages onto layer 1
// produces exactly the same memory contents as the layer-3 run itself.
func TestBridgeDataFidelity(t *testing.T) {
	// Run the messages at layer 3 against one memory.
	m3 := busMap()
	l3 := NewRecorder(New(m3))
	blob := []byte("bridged down to cycle accuracy!!")
	if err := l3.Write(0x300, blob); err != nil {
		t.Fatal(err)
	}
	if err := l3.Write(0x341, blob[:7]); err != nil { // unaligned tail path
		t.Fatal(err)
	}
	if _, err := l3.Read(0x300, 8); err != nil {
		t.Fatal(err)
	}

	// Bridge the log onto a fresh layer-1 system.
	m1 := busMap()
	k := sim.New(0)
	b1 := tlm1.New(k, m1)
	cycles, err := Bridge(k, b1, l3.Log, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("bridge consumed no time")
	}

	check := New(m1)
	got, err := check.Read(0x300, len(blob))
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("bridged memory mismatch: %q (%v)", got, err)
	}
	got, err = check.Read(0x341, 7)
	if err != nil || !bytes.Equal(got, blob[:7]) {
		t.Fatalf("unaligned bridged write mismatch: %q (%v)", got, err)
	}
}

func TestBridgeUsesBursts(t *testing.T) {
	l3 := NewRecorder(New(busMap()))
	if err := l3.Write(0x400, make([]byte, 64)); err != nil { // 16-byte aligned
		t.Fatal(err)
	}
	k := sim.New(0)
	b1 := tlm1.New(k, busMap())
	if _, err := Bridge(k, b1, l3.Log, 1_000_000); err != nil {
		t.Fatal(err)
	}
	st := b1.Stats()
	if st.Accepted != 4 { // 64 aligned bytes = 4 bursts
		t.Fatalf("bridge issued %d transactions, want 4 bursts", st.Accepted)
	}
}

func TestEstimateUsesCharPrices(t *testing.T) {
	b := New(busMap())
	b.Write(0x100, make([]byte, 32))
	cheap := b.Estimate(gatepower.CharTable{}, 0, 0)
	real := b.Estimate(platform.DefaultCharTable(), 0, 0)
	if cheap.EnergyJ != 0 || real.EnergyJ <= 0 {
		t.Fatalf("char pricing not applied: %g / %g", cheap.EnergyJ, real.EnergyJ)
	}
}
