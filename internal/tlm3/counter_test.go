package tlm3

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

// script builds a mixed traffic pattern: fetches, unaligned narrow
// accesses, word singles and bursts, against both the fast and the
// wait-stated slave.
func script(t *testing.T) []core.Item {
	t.Helper()
	var items []core.Item
	id := uint64(0)
	single := func(k ecbus.Kind, addr uint64, w ecbus.Width, data uint32) {
		id++
		tr, err := ecbus.NewSingle(id, k, addr, w, data)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, core.Item{Tr: tr})
	}
	burst := func(k ecbus.Kind, addr uint64, words []uint32) {
		id++
		tr, err := ecbus.NewBurst(id, k, addr, words)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, core.Item{Tr: tr})
	}
	for i := 0; i < 24; i++ {
		base := uint64(0x100 + 4*i)
		single(ecbus.Write, base, ecbus.W32, uint32(0xA5A5_0000+i))
		single(ecbus.Fetch, uint64(0x40+i), ecbus.W8, 0)
		single(ecbus.Read, base, ecbus.W32, 0)
		if i%3 == 0 {
			burst(ecbus.Write, 0x10000+uint64(16*(i/3)), []uint32{1, 2, 3, uint32(i)})
			burst(ecbus.Read, 0x10000+uint64(16*(i/3)), nil)
		}
		if i%5 == 0 {
			single(ecbus.Write, 0x10800+uint64(i), ecbus.W8, uint32(i))
			single(ecbus.Read, 0x10802, ecbus.W16, 0)
		}
	}
	return items
}

func cloneItems(items []core.Item) []core.Item {
	out := make([]core.Item, len(items))
	for i, it := range items {
		out[i] = core.Item{Tr: it.Tr.Clone(), NotBefore: it.NotBefore}
	}
	return out
}

// driveResult is the outcome of a sequential drive: completions in
// program order plus the master-side counters.
type driveResult struct {
	completed []*ecbus.Transaction
	errors    int
	retries   int
}

// drive issues each transaction to completion before the next, with
// retry-with-backoff on bus errors — the exact discipline of the
// exploration harness's masters (MasterAdapter, blockingMaster), which
// is the traffic shape screening must reproduce.
func drive(t *testing.T, k *sim.Kernel, bus core.Initiator, items []core.Item, retry core.RetryPolicy) driveResult {
	t.Helper()
	var out driveResult
	for _, it := range items {
		tr := it.Tr
	attempt:
		for step := 0; ; step++ {
			if step > 1_000_000 {
				t.Fatalf("tx %d never completed", tr.ID)
			}
			switch bus.Access(tr) {
			case ecbus.StateOK:
				break attempt
			case ecbus.StateError:
				if int(tr.Retries) >= retry.MaxRetries {
					out.errors++
					break attempt
				}
				tr.ResetForRetry()
				out.retries++
				for b := uint64(0); b < retry.Backoff; b++ {
					k.Step()
				}
			}
			k.Step()
		}
		out.completed = append(out.completed, tr)
	}
	return out
}

// TestCounterMatchesTimedTraffic pins the functional equivalence of the
// counting bus: the same script produces the same per-transaction
// outcomes and read payloads as the cycle-accurate layer-1 bus, and the
// counted beats/waits agree with the slave configuration.
func TestCounterMatchesTimedTraffic(t *testing.T) {
	itemsTimed := script(t)
	itemsCount := cloneItems(itemsTimed)

	k := sim.New(0)
	timed := drive(t, k, tlm1.New(k, busMap()), itemsTimed, core.RetryPolicy{})

	kc := sim.New(0)
	c := NewCounter(busMap())
	counted := drive(t, kc, c, itemsCount, core.RetryPolicy{})

	tc, cc := timed.completed, counted.completed
	if len(tc) != len(cc) {
		t.Fatalf("completed %d timed vs %d counted", len(tc), len(cc))
	}
	var beats uint64
	for i := range tc {
		a, x := tc[i], cc[i]
		if a.Err != x.Err {
			t.Fatalf("tx %d: err %v timed vs %v counted", a.ID, a.Err, x.Err)
		}
		if a.Kind.IsRead() && !a.Err {
			for j := range a.Data {
				if a.Data[j] != x.Data[j] {
					t.Fatalf("tx %d beat %d: data %#x timed vs %#x counted", a.ID, j, a.Data[j], x.Data[j])
				}
			}
		}
		if !a.Err {
			beats += uint64(a.Words())
		}
	}

	f := c.Features()
	if f.AddrPhases != uint64(len(cc)) {
		t.Errorf("AddrPhases = %d, want %d", f.AddrPhases, len(cc))
	}
	if got := f.ReadBeats + f.WriteBeats; got != beats {
		t.Errorf("beats = %d, want %d", got, beats)
	}
	if f.ErrorPhases != 0 {
		t.Errorf("clean script counted %d error phases", f.ErrorPhases)
	}
	if f.WaitCycles == 0 {
		t.Error("wait-stated slave traffic counted zero wait cycles")
	}
	if f.AddrHamming == 0 || f.ReadHamming == 0 || f.WriteHamming == 0 {
		t.Errorf("zero Hamming activity: %+v", f)
	}
	if c.Cycles() == 0 {
		t.Error("untimed cycle tally is zero")
	}
}

// TestCounterFaultStreamEquivalence pins the property that makes
// screening faulted configurations sound: a fault injector keyed on
// per-word access ordinals sees the same access stream from the
// counting bus as from the timed bus, so both runs inject the same
// faults and retire the same retry counts.
func TestCounterFaultStreamEquivalence(t *testing.T) {
	plan, ok := fault.Named("flaky")
	if !ok {
		t.Fatal("flaky plan missing")
	}
	wrap := func() *ecbus.Map {
		return ecbus.MustMap(
			fault.Wrap(mem.NewRAM("ram", 0, 0x2000, 0, 0), plan),
			fault.Wrap(mem.NewRAM("slow", 0x10000, 0x1000, 1, 2), plan),
		)
	}
	retry := core.RetryPolicy{MaxRetries: 16, Backoff: 1}

	itemsTimed := script(t)
	itemsCount := cloneItems(itemsTimed)

	k := sim.New(0)
	timed := drive(t, k, tlm1.New(k, wrap()), itemsTimed, retry)

	kc := sim.New(0)
	c := NewCounter(wrap())
	counted := drive(t, kc, c, itemsCount, retry)

	if timed.errors != counted.errors {
		t.Errorf("errors: %d timed vs %d counted", timed.errors, counted.errors)
	}
	if timed.retries != counted.retries {
		t.Errorf("retries: %d timed vs %d counted", timed.retries, counted.retries)
	}
	tc, cc := timed.completed, counted.completed
	if len(tc) != len(cc) {
		t.Fatalf("completed %d timed vs %d counted", len(tc), len(cc))
	}
	for i := range tc {
		if tc[i].Err != cc[i].Err || tc[i].Retries != cc[i].Retries {
			t.Fatalf("tx %d: outcome (err %v retries %d) timed vs (err %v retries %d) counted",
				tc[i].ID, tc[i].Err, tc[i].Retries, cc[i].Err, cc[i].Retries)
		}
		if tc[i].Kind.IsRead() && !tc[i].Err {
			for j := range tc[i].Data {
				if tc[i].Data[j] != cc[i].Data[j] {
					t.Fatalf("tx %d beat %d: faulted data %#x timed vs %#x counted",
						tc[i].ID, j, tc[i].Data[j], cc[i].Data[j])
				}
			}
		}
	}
	if f := c.Features(); f.ErrorPhases == 0 {
		t.Error("flaky plan produced no counted error phases")
	}
}

// TestCounterDecodeMiss: a decode miss errors the transaction instead
// of panicking, and counts an error phase.
func TestCounterDecodeMiss(t *testing.T) {
	c := NewCounter(busMap())
	tr, err := ecbus.NewSingle(1, ecbus.Read, 0x9000_0000, ecbus.W32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Access(tr); st != ecbus.StateError {
		t.Fatalf("decode miss returned %v", st)
	}
	if !tr.Err || !tr.Done {
		t.Error("decode miss did not mark the transaction errored")
	}
	if c.Features().ErrorPhases != 1 {
		t.Errorf("ErrorPhases = %d, want 1", c.Features().ErrorPhases)
	}
}

// TestFeatureVectorAligned: Vector and FeatureNames stay index-aligned.
func TestFeatureVectorAligned(t *testing.T) {
	f := Features{
		AddrPhases: 1, FetchPhases: 2, BurstPhases: 3,
		ReadBeats: 4, WriteBeats: 5, WaitCycles: 6, ErrorPhases: 7,
		AddrHamming: 8, ReadHamming: 9, WriteHamming: 10,
	}
	names, v := FeatureNames(), f.Vector()
	if len(names) != len(v) {
		t.Fatalf("%d names vs %d vector entries", len(names), len(v))
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		if v[i] != want {
			t.Errorf("%s = %g, want %g", names[i], v[i], want)
		}
	}
	// Every name unique.
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	_ = fmt.Sprintf("%+v", f)
}
