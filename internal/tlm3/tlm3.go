// Package tlm3 implements the message layer — transaction level layer 3
// in the layering the paper adopts from Haverinen et al. (§2): "Systems
// at this level are untimed and execute event-driven. Data
// representation may be of a very abstract data type and several data
// items can be transferred by a single transaction between initiator
// and target. This layer can be used for functional partitioning,
// communication definition, or algorithm performance and behavior
// control."
//
// The layer-3 bus transfers arbitrary byte messages in zero simulated
// time, keeping only message statistics. Two refinement aids connect it
// to the rest of the hierarchy:
//
//   - Estimate projects coarse cycle and energy figures from the message
//     statistics alone (algorithm-level budgeting before any timing
//     model exists);
//   - Bridge replays layer-3 messages as real transactions on a layer-1
//     or layer-2 bus ("bridging layer three or layer two components to
//     cycle accurate systems").
package tlm3

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/sim"
)

// Stats aggregates message-layer activity.
type Stats struct {
	Messages uint64
	Bytes    uint64
	Reads    uint64
	Writes   uint64
}

// Bus is the untimed message-layer bus: one method call is one message,
// regardless of size.
type Bus struct {
	m     *ecbus.Map
	stats Stats
}

// New creates a layer-3 bus over the address map.
func New(m *ecbus.Map) *Bus { return &Bus{m: m} }

// Stats returns a copy of the message counters.
func (b *Bus) Stats() Stats { return b.stats }

// Read transfers n bytes from addr as one message.
func (b *Bus) Read(addr uint64, n int) ([]byte, error) {
	if n <= 0 {
		return nil, errors.New("tlm3: non-positive read length")
	}
	if _, err := b.m.Check(ecbus.Read, addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		sl := b.m.Decode(a)
		w, ok := sl.ReadWord(a&^3, ecbus.W32)
		if !ok {
			return nil, fmt.Errorf("tlm3: read error at %#x", a)
		}
		out[i] = byte(w >> (8 * (a & 3)))
	}
	b.stats.Messages++
	b.stats.Reads++
	b.stats.Bytes += uint64(n)
	return out, nil
}

// Write transfers data to addr as one message.
func (b *Bus) Write(addr uint64, data []byte) error {
	if len(data) == 0 {
		return errors.New("tlm3: empty write")
	}
	if _, err := b.m.Check(ecbus.Write, addr, len(data)); err != nil {
		return err
	}
	for i, v := range data {
		a := addr + uint64(i)
		sl := b.m.Decode(a)
		// Byte-lane semantics: the address selects the lane, the data
		// rides on that lane.
		if !sl.WriteWord(a, uint32(v)<<(8*(a&3)), ecbus.W8) {
			return fmt.Errorf("tlm3: write error at %#x", a)
		}
	}
	b.stats.Messages++
	b.stats.Writes++
	b.stats.Bytes += uint64(len(data))
	return nil
}

// Projection is a coarse budget derived from message statistics.
type Projection struct {
	Cycles  uint64
	EnergyJ float64
}

// Estimate projects cycles and energy from the accumulated message
// statistics, assuming the given average wait states and the
// characterized bus prices: per message one address phase, per word one
// data beat, address/data wires at half activity. It deliberately uses
// nothing but layer-3 information — this is the accuracy available
// before refinement.
func (b *Bus) Estimate(char gatepower.CharTable, avgAddrWait, avgDataWait int) Projection {
	words := (b.stats.Bytes + 3) / 4
	cycles := b.stats.Messages*uint64(1+avgAddrWait) + words*uint64(1+avgDataWait)
	energy := float64(b.stats.Messages)*(float64(ecbus.AddrBits)/2*char.PerTransitionJ[ecbus.SigA]+
		2*char.PerTransitionJ[ecbus.SigAValid]+2*char.PerTransitionJ[ecbus.SigARdy]) +
		float64(words)*(float64(ecbus.DataBits)/2*char.PerTransitionJ[ecbus.SigWData]+
			2*char.PerTransitionJ[ecbus.SigWDRdy])
	return Projection{Cycles: cycles, EnergyJ: energy}
}

// Message is one recorded layer-3 transfer, for bridging.
type Message struct {
	Write bool
	Addr  uint64
	Data  []byte // payload for writes; length for reads
	Len   int
}

// Recorder wraps a Bus and additionally records every message.
type Recorder struct {
	*Bus
	Log []Message
}

// NewRecorder wraps b.
func NewRecorder(b *Bus) *Recorder { return &Recorder{Bus: b} }

// Read implements the message interface, recording the message.
func (r *Recorder) Read(addr uint64, n int) ([]byte, error) {
	out, err := r.Bus.Read(addr, n)
	if err == nil {
		r.Log = append(r.Log, Message{Addr: addr, Len: n})
	}
	return out, err
}

// Write implements the message interface, recording the message.
func (r *Recorder) Write(addr uint64, data []byte) error {
	err := r.Bus.Write(addr, data)
	if err == nil {
		r.Log = append(r.Log, Message{Write: true, Addr: addr,
			Data: append([]byte(nil), data...), Len: len(data)})
	}
	return err
}

// Bridge replays recorded layer-3 messages onto a timed bus layer
// (1 or 2) via the shared Access interface: each message becomes a
// sequence of canonical transactions (bursts where aligned, words
// otherwise), giving the refined timing and energy of the same traffic.
// It returns the cycle count consumed.
func Bridge(k *sim.Kernel, bus core.Initiator, log []Message, maxCycles uint64) (uint64, error) {
	var items []core.Item
	id := uint64(0)
	emit := func(m Message) error {
		addr, n := m.Addr, m.Len
		off := 0
		for n > 0 {
			kind := ecbus.Read
			if m.Write {
				kind = ecbus.Write
			}
			switch {
			case n >= 16 && addr%16 == 0:
				var words []uint32
				if m.Write {
					words = make([]uint32, 4)
					for i := 0; i < 16; i++ {
						words[i/4] |= uint32(m.Data[off+i]) << (8 * (i % 4))
					}
				}
				id++
				tr, err := ecbus.NewBurst(id, kind, addr, words)
				if err != nil {
					return err
				}
				items = append(items, core.Item{Tr: tr})
				addr += 16
				off += 16
				n -= 16
			case n >= 4 && addr%4 == 0:
				var word uint32
				if m.Write {
					for i := 0; i < 4; i++ {
						word |= uint32(m.Data[off+i]) << (8 * i)
					}
				}
				id++
				tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W32, word)
				if err != nil {
					return err
				}
				items = append(items, core.Item{Tr: tr})
				addr += 4
				off += 4
				n -= 4
			default:
				var bv uint32
				if m.Write {
					bv = uint32(m.Data[off]) << (8 * (addr & 3))
				}
				id++
				tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W8, bv)
				if err != nil {
					return err
				}
				items = append(items, core.Item{Tr: tr})
				addr++
				off++
				n--
			}
		}
		return nil
	}
	for _, m := range log {
		if err := emit(m); err != nil {
			return 0, err
		}
	}
	master, cycles := core.RunScript(k, bus, items, maxCycles)
	if !master.Done() {
		return cycles, errors.New("tlm3: bridge replay did not complete")
	}
	if master.Errors() > 0 {
		return cycles, fmt.Errorf("tlm3: %d bridged transactions errored", master.Errors())
	}
	return cycles, nil
}
