package tlm3

import (
	"repro/internal/ecbus"
	"repro/internal/logic"
)

// Features is the per-phase event-count vector the layer-3 analytic
// estimator feeds into a calibrated linear model (per-event counts ×
// fitted per-event coefficients, following the static-analysis
// estimation line). The counts mirror exactly the activity the timed
// layers price: address phases split by kind and shape, delivered data
// beats split by direction, wait cycles, errored phases, and the
// Hamming activity of the address and data wires.
type Features struct {
	AddrPhases   uint64 // address phases presented (one per attempt)
	FetchPhases  uint64 // subset of AddrPhases that were code fetches
	BurstPhases  uint64 // subset of AddrPhases that were bursts
	ReadBeats    uint64 // delivered read data beats (fetches included)
	WriteBeats   uint64 // delivered write data beats
	WaitCycles   uint64 // address + data wait states, injected waits included
	ErrorPhases  uint64 // attempts that terminated in a bus error
	AddrHamming  uint64 // address-wire toggles between consecutive phases
	ReadHamming  uint64 // read-data-wire toggles between consecutive beats
	WriteHamming uint64 // write-data-wire toggles between consecutive beats
}

// FeatureNames returns the canonical feature vocabulary, index-aligned
// with Vector. Calibration persists this list alongside the fitted
// coefficients so a model is never applied to a reordered vector.
func FeatureNames() []string {
	return []string{
		"addr_phases", "fetch_phases", "burst_phases",
		"read_beats", "write_beats", "wait_cycles", "error_phases",
		"addr_hamming", "read_hamming", "write_hamming",
	}
}

// Vector renders the features in FeatureNames order.
func (f Features) Vector() []float64 {
	return []float64{
		float64(f.AddrPhases), float64(f.FetchPhases), float64(f.BurstPhases),
		float64(f.ReadBeats), float64(f.WriteBeats), float64(f.WaitCycles),
		float64(f.ErrorPhases),
		float64(f.AddrHamming), float64(f.ReadHamming), float64(f.WriteHamming),
	}
}

// Counter is the layer-3 counting bus: a core.Initiator that completes
// every transaction in a single Access call — no kernel time, no
// signal-level simulation — while tallying the Features of the traffic.
//
// Functional equivalence with the timed layers is load-bearing: the
// Counter issues the same ReadWord/WriteWord calls in the same per-word
// order as tlm1/tlm2 (address-phase extent check, one word per beat,
// stop at the first failed beat), so stateful slaves — the pop
// registers of the hardware stack, and fault injectors keyed on
// per-word access ordinals — observe exactly the access stream the
// timed run would produce. A screened configuration therefore counts
// the same transactions, faults and retries its confirmation run will
// replay, only without pricing them per cycle.
type Counter struct {
	m      *ecbus.Map
	f      Features
	cycles uint64

	lastAddr  uint64
	lastRead  uint64
	lastWrite uint64

	arbGrants      uint64
	arbContentions uint64
}

// NewCounter creates a counting bus over the address map.
func NewCounter(m *ecbus.Map) *Counter { return &Counter{m: m} }

// Features returns the accumulated event counts.
func (c *Counter) Features() Features { return c.f }

// Cycles returns the untimed cycle tally: one cycle per address phase
// and per data beat plus every wait state, i.e. the protocol's minimum
// cycle count for the observed traffic. The calibrated model maps this
// tally (via the feature vector) onto a timed layer's true cycle count.
func (c *Counter) Cycles() uint64 { return c.cycles }

// RecordArb accumulates the arbitration event counts of a multi-master
// counting run (committed grants and contention windows, from the
// arbitration mux in front of the Counter). The counts are deliberately
// kept outside the 10-element feature vector — the calibrated fit's
// identity is pinned by FeatureNames — and are priced instead through
// per-(organization, policy) coefficient groups.
func (c *Counter) RecordArb(grants, contentions uint64) {
	c.arbGrants += grants
	c.arbContentions += contentions
}

// ArbGrants returns the accumulated committed-grant count.
func (c *Counter) ArbGrants() uint64 { return c.arbGrants }

// ArbContentions returns the accumulated contention-window count.
func (c *Counter) ArbContentions() uint64 { return c.arbContentions }

// Access completes tr immediately, counting its events. It never
// returns a non-terminal state: masters built for the timed layers
// (retry loops stepping the kernel between polls) work unchanged, they
// just never observe a wait.
func (c *Counter) Access(tr *ecbus.Transaction) ecbus.BusState {
	c.f.AddrPhases++
	if tr.Kind == ecbus.Fetch {
		c.f.FetchPhases++
	}
	if tr.Burst {
		c.f.BurstPhases++
	}
	c.f.AddrHamming += uint64(logic.Hamming(c.lastAddr, tr.Addr, ecbus.AddrBits))
	c.lastAddr = tr.Addr

	sl, err := c.m.Check(tr.Kind, tr.Addr, tr.Words()*4)
	if err != nil {
		c.cycles++
		c.f.ErrorPhases++
		tr.Done, tr.Err = true, true
		tr.AddrCycle, tr.DataCycle = c.cycles, c.cycles
		return ecbus.StateError
	}
	cfg := sl.Config()
	// Same sampling point as the timed layers: the injected extra wait
	// is a pure function of (kind, addr), so the value matches whatever
	// cycle the timed run samples it on.
	aw := cfg.AddrWait + ecbus.ExtraWaitOf(sl, tr.Kind, tr.Addr)
	dw := cfg.ReadWait
	if tr.Kind == ecbus.Write {
		dw = cfg.WriteWait
	}
	c.f.WaitCycles += uint64(aw)
	c.cycles += uint64(1 + aw)
	tr.AddrCycle = c.cycles

	w := tr.Width
	if tr.Burst {
		w = ecbus.W32
	}
	ok := true
	for i := range tr.Data {
		c.f.WaitCycles += uint64(dw)
		c.cycles += uint64(1 + dw)
		addr := tr.Addr + uint64(4*i)
		if tr.Kind.IsRead() {
			var v uint32
			v, ok = sl.ReadWord(addr, w)
			if ok {
				tr.Data[i] = v
				c.f.ReadBeats++
				c.f.ReadHamming += uint64(logic.Hamming(c.lastRead, uint64(v), ecbus.DataBits))
				c.lastRead = uint64(v)
			}
		} else {
			ok = sl.WriteWord(addr, tr.Data[i], w)
			if ok {
				c.f.WriteBeats++
				c.f.WriteHamming += uint64(logic.Hamming(c.lastWrite, uint64(tr.Data[i]), ecbus.DataBits))
				c.lastWrite = uint64(tr.Data[i])
			}
		}
		if !ok {
			break
		}
	}
	tr.Done = true
	tr.DataCycle = c.cycles
	if !ok {
		c.f.ErrorPhases++
		tr.Err = true
		return ecbus.StateError
	}
	return ecbus.StateOK
}
