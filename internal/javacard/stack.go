package javacard

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/sim"
)

// SoftStack is the pure functional operand stack of the untimed model
// (Fig. 7a): no bus, no time, no energy.
type SoftStack struct {
	data []int16
}

// Push implements Stack.
func (s *SoftStack) Push(v int16) error {
	s.data = append(s.data, v)
	return nil
}

// Pop implements Stack.
func (s *SoftStack) Pop() (int16, error) {
	if len(s.data) == 0 {
		return 0, errors.New("stack: underflow")
	}
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v, nil
}

// Depth implements Stack.
func (s *SoftStack) Depth() int { return len(s.data) }

// Reset implements Stack.
func (s *SoftStack) Reset() { s.data = s.data[:0] }

// HardStack SFR offsets. The register file deliberately offers several
// redundant access protocols — byte-staged, halfword, packed word and
// burst — because the case study explores which of them gives the best
// time/energy trade-off.
const (
	RegCmd    = 0x00 // W: 1 = push staged data, 2 = pop to latch, 3 = reset
	RegDataHi = 0x04 // W (8-bit): staged data high byte
	RegDataLo = 0x08 // W (8-bit): staged data low byte
	RegPopHi  = 0x0C // R (8-bit): pop latch high byte
	RegPopLo  = 0x10 // R (8-bit): pop latch low byte
	RegPush16 = 0x14 // W (16-bit): immediate push
	RegPop16  = 0x18 // R (16-bit): immediate pop
	RegPacked = 0x1C // W (32-bit): bit16 set = push, low 16 bits data
	RegDepth  = 0x20 // R: current depth
	RegBurst  = 0x30 // W (16-byte burst): four words, one push each
)

// HardStackSize is the hardware stack capacity in entries.
const HardStackSize = 256

// HardStack is the hardware operand stack slave of the refined model:
// its register decode is the paper's "slave adapter", restoring stack
// interface calls from bus transactions. Protocol violations (underflow,
// overflow, unmapped offsets) surface as slave-side bus errors.
type HardStack struct {
	cfg ecbus.SlaveConfig

	data  []int16
	stage uint16 // byte-staged push data
	latch uint16 // byte-wise pop latch

	Pushes uint64
	Pops   uint64
}

// NewHardStack creates the stack slave at base.
func NewHardStack(name string, base uint64) *HardStack {
	return &HardStack{cfg: ecbus.SlaveConfig{
		Name: name, Base: base, Size: 0x40,
		Readable: true, Writable: true,
	}}
}

// Config implements ecbus.Slave.
func (h *HardStack) Config() ecbus.SlaveConfig { return h.cfg }

// Depth returns the current fill level.
func (h *HardStack) Depth() int { return len(h.data) }

func (h *HardStack) push(v int16) bool {
	if len(h.data) >= HardStackSize {
		return false
	}
	h.data = append(h.data, v)
	h.Pushes++
	return true
}

func (h *HardStack) pop() (int16, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	v := h.data[len(h.data)-1]
	h.data = h.data[:len(h.data)-1]
	h.Pops++
	return v, true
}

// ReadWord implements ecbus.Slave.
func (h *HardStack) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	switch addr - h.cfg.Base {
	case RegPopHi:
		return uint32(h.latch >> 8), true
	case RegPopLo:
		return uint32(h.latch & 0xFF), true
	case RegPop16:
		v, ok := h.pop()
		if !ok {
			return 0, false
		}
		return uint32(uint16(v)), true
	case RegPacked:
		v, ok := h.pop()
		if !ok {
			return 0, false
		}
		return uint32(uint16(v)), true
	case RegDepth:
		return uint32(len(h.data)), true
	case RegCmd, RegDataHi, RegDataLo, RegPush16:
		return 0, true
	}
	return 0, false
}

// WriteWord implements ecbus.Slave.
func (h *HardStack) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	off := addr - h.cfg.Base
	switch off {
	case RegCmd:
		switch data & 0xFF {
		case 1:
			return h.push(int16(h.stage))
		case 2:
			v, ok := h.pop()
			if !ok {
				return false
			}
			h.latch = uint16(v)
			return true
		case 3:
			h.data = h.data[:0]
			return true
		}
		return false
	case RegDataHi:
		h.stage = h.stage&0x00FF | uint16(data&0xFF)<<8
		return true
	case RegDataLo:
		h.stage = h.stage&0xFF00 | uint16(data&0xFF)
		return true
	case RegPush16:
		return h.push(int16(data & 0xFFFF))
	case RegPacked:
		if data&0x10000 == 0 {
			return false
		}
		return h.push(int16(data & 0xFFFF))
	default:
		if off >= RegBurst && off < RegBurst+16 {
			// each burst beat pushes one value
			return h.push(int16(data & 0xFFFF))
		}
	}
	return false
}

// AccessEnergy implements ecbus.EnergyReporter: the stack array access.
func (h *HardStack) AccessEnergy(ecbus.Kind) float64 { return 0.7e-12 }

// Organization selects the SFR protocol the master adapter uses — the
// exploration axis of the case study.
type Organization int

// SFR organizations.
const (
	OrgByte   Organization = iota // staged bytes + command register (3 writes/push)
	OrgHalf                       // one 16-bit access per operation
	OrgPacked                     // one 32-bit packed access per operation
	OrgBurst                      // pushes batched four at a time into one burst
)

// String names the organization.
func (o Organization) String() string {
	switch o {
	case OrgByte:
		return "byte-staged"
	case OrgHalf:
		return "halfword"
	case OrgPacked:
		return "packed-word"
	case OrgBurst:
		return "burst4"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// Organizations lists all SFR protocols.
var Organizations = []Organization{OrgByte, OrgHalf, OrgPacked, OrgBurst}

// TransactionRetryLimit bounds the kernel steps a blocking master waits
// for one bus transaction to complete before declaring the bus wedged.
// Generously above any legal wait-state combination of the modelled
// slaves; reaching it means a protocol deadlock, not a slow slave.
const TransactionRetryLimit = 100_000

// MasterAdapter implements Stack by translating interface calls into bus
// transactions (Fig. 7b, "MA"): the untimed interpreter calls it, and it
// advances the clocked bus simulation until each transaction completes.
type MasterAdapter struct {
	k    *sim.Kernel
	bus  core.Initiator
	base uint64
	org  Organization

	ids  uint64
	pend []int16 // burst batching buffer (OrgBurst)

	// Pooled transaction objects: every adapter call runs its
	// transaction to completion before returning, after which the bus
	// holds no reference to it, so one single and one burst object can
	// be reset and reused for the adapter's lifetime instead of
	// allocating per operand-stack access.
	str ecbus.Transaction
	btr ecbus.Transaction

	// Retry is the bus-error reaction policy (the zero value aborts on
	// the first error, the historical behaviour).
	Retry core.RetryPolicy

	Transactions uint64
	Retries      uint64 // re-issues after bus errors
}

// NewMasterAdapter binds a stack adapter to a bus and a HardStack base
// address.
func NewMasterAdapter(k *sim.Kernel, bus core.Initiator, base uint64, org Organization) *MasterAdapter {
	return &MasterAdapter{k: k, bus: bus, base: base, org: org}
}

// do runs one bus transaction to completion, stepping the kernel.
func (a *MasterAdapter) do(kind ecbus.Kind, addr uint64, w ecbus.Width, data uint32) (uint32, error) {
	a.ids++
	if err := a.str.ResetSingle(a.ids, kind, addr, w, data); err != nil {
		return 0, err
	}
	return a.run(&a.str)
}

func (a *MasterAdapter) run(tr *ecbus.Transaction) (uint32, error) {
	a.Transactions++
	for i := 0; i < TransactionRetryLimit; i++ {
		st := a.bus.Access(tr)
		if st == ecbus.StateOK {
			return tr.Data[0], nil
		}
		if st == ecbus.StateError {
			if int(tr.Retries) >= a.Retry.MaxRetries {
				return 0, fmt.Errorf("stack adapter: bus error at %#x after %d retries", tr.Addr, tr.Retries)
			}
			// Back off, then re-issue the same transaction (write
			// payloads are preserved across the reset).
			tr.ResetForRetry()
			a.Retries++
			for b := uint64(0); b < a.Retry.Backoff; b++ {
				a.k.Step()
			}
		}
		a.k.Step()
	}
	return 0, errors.New("stack adapter: transaction never completed")
}

// Push implements Stack over the configured SFR protocol.
func (a *MasterAdapter) Push(v int16) error {
	switch a.org {
	case OrgByte:
		if _, err := a.do(ecbus.Write, a.base+RegDataHi, ecbus.W8, uint32(uint16(v)>>8)); err != nil {
			return err
		}
		if _, err := a.do(ecbus.Write, a.base+RegDataLo, ecbus.W8, uint32(uint16(v)&0xFF)); err != nil {
			return err
		}
		_, err := a.do(ecbus.Write, a.base+RegCmd, ecbus.W8, 1)
		return err
	case OrgHalf:
		_, err := a.do(ecbus.Write, a.base+RegPush16, ecbus.W16, uint32(uint16(v)))
		return err
	case OrgPacked:
		_, err := a.do(ecbus.Write, a.base+RegPacked, ecbus.W32, 0x10000|uint32(uint16(v)))
		return err
	case OrgBurst:
		a.pend = append(a.pend, v)
		if len(a.pend) == 4 {
			return a.flush()
		}
		return nil
	default:
		return fmt.Errorf("stack adapter: unknown organization %v", a.org)
	}
}

// Flush forces out any batched burst pushes (call at workload end).
func (a *MasterAdapter) Flush() error { return a.flush() }

// flush pushes the batched values with one burst write.
func (a *MasterAdapter) flush() error {
	if len(a.pend) == 0 {
		return nil
	}
	if len(a.pend) == 4 {
		a.ids++
		if err := a.btr.ResetBurst(a.ids, ecbus.Write, a.base+RegBurst); err != nil {
			return err
		}
		for i, v := range a.pend {
			a.btr.Data[i] = uint32(uint16(v))
		}
		a.pend = a.pend[:0]
		_, err := a.run(&a.btr)
		return err
	}
	// Partial batch: drain with halfword pushes.
	vals := append([]int16(nil), a.pend...)
	a.pend = a.pend[:0]
	for _, v := range vals {
		if _, err := a.do(ecbus.Write, a.base+RegPush16, ecbus.W16, uint32(uint16(v))); err != nil {
			return err
		}
	}
	return nil
}

// Pop implements Stack.
func (a *MasterAdapter) Pop() (int16, error) {
	if a.org == OrgBurst {
		if err := a.flush(); err != nil {
			return 0, err
		}
	}
	switch a.org {
	case OrgByte:
		if _, err := a.do(ecbus.Write, a.base+RegCmd, ecbus.W8, 2); err != nil {
			return 0, err
		}
		hi, err := a.do(ecbus.Read, a.base+RegPopHi, ecbus.W8, 0)
		if err != nil {
			return 0, err
		}
		lo, err := a.do(ecbus.Read, a.base+RegPopLo, ecbus.W8, 0)
		if err != nil {
			return 0, err
		}
		return int16(uint16(hi&0xFF)<<8 | uint16(lo&0xFF)), nil
	case OrgPacked:
		v, err := a.do(ecbus.Read, a.base+RegPacked, ecbus.W32, 0)
		return int16(uint16(v)), err
	default: // OrgHalf, OrgBurst
		v, err := a.do(ecbus.Read, a.base+RegPop16, ecbus.W16, 0)
		return int16(uint16(v)), err
	}
}

// Depth implements Stack (one bus read).
func (a *MasterAdapter) Depth() int {
	if a.org == OrgBurst {
		if err := a.flush(); err != nil {
			return -1
		}
	}
	v, err := a.do(ecbus.Read, a.base+RegDepth, ecbus.W32, 0)
	if err != nil {
		return -1
	}
	return int(v)
}

// Reset implements Stack.
func (a *MasterAdapter) Reset() {
	a.pend = a.pend[:0]
	_, _ = a.do(ecbus.Write, a.base+RegCmd, ecbus.W8, 3)
}
