package javacard

import (
	"strings"
	"testing"

	"repro/internal/ecbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

func runSoft(t *testing.T, prog Program, mm *MemoryManager, fw *Firewall) *VM {
	t.Helper()
	vm := NewVM(prog, &SoftStack{}, mm, fw)
	if err := vm.Run(1_000_000); err != nil {
		t.Fatalf("functional run: %v", err)
	}
	return vm
}

func TestArithLoopFunctional(t *testing.T) {
	vm := runSoft(t, ArithLoop(10), NewMemoryManager(), NewFirewall())
	if got := vm.Static(0); got != 55 {
		t.Fatalf("sum(1..10) = %d, want 55", got)
	}
}

func TestStackChurnFunctional(t *testing.T) {
	vm := runSoft(t, StackChurn(5, 3), NewMemoryManager(), NewFirewall())
	// each round adds 1+2+3+4+5 = 15; 3 rounds = 45.
	if got := vm.Static(0); got != 45 {
		t.Fatalf("churn sum = %d, want 45", got)
	}
}

func TestWalletFunctional(t *testing.T) {
	prog, mm, fw := Wallet(1000, 7, 40)
	vm := runSoft(t, prog, mm, fw)
	if got := vm.Static(0); got != 1000-7*40 {
		t.Fatalf("balance = %d, want %d", got, 1000-7*40)
	}
	if fw.Violations != 0 {
		t.Fatalf("unexpected firewall violations: %d", fw.Violations)
	}
}

func TestWalletInsufficientFunds(t *testing.T) {
	prog, mm, fw := Wallet(10, 7, 5) // only one debit fits
	vm := runSoft(t, prog, mm, fw)
	if got := vm.Static(0); got != 3 {
		t.Fatalf("balance = %d, want 3", got)
	}
}

func TestFirewallDeniesForeignContext(t *testing.T) {
	mm := NewMemoryManager()
	mm.Alloc(WalletObj, 1)
	fw := NewFirewall()
	fw.Own(WalletObj, 1)
	// Context 2 touches object owned by context 1.
	code := NewBuilder().
		Op(OpSetCtx, 2).
		Push(5).Op(OpPutF, WalletObj, 0).
		Op(OpHalt).MustBuild()
	vm := NewVM(Program{Main: code}, &SoftStack{}, mm, fw)
	err := vm.Run(100)
	if err == nil || !strings.Contains(err.Error(), "firewall") {
		t.Fatalf("expected firewall violation, got %v", err)
	}
	if fw.Violations != 1 {
		t.Fatalf("violations = %d", fw.Violations)
	}
}

func TestFirewallShareableObject(t *testing.T) {
	fw := NewFirewall()
	fw.Own(3, 1)
	fw.Share(3)
	if err := fw.Check(2, 3); err != nil {
		t.Fatalf("shareable object denied: %v", err)
	}
	if err := fw.Check(2, 9); err == nil {
		t.Fatal("unowned object allowed")
	}
}

func TestMemoryManagerBounds(t *testing.T) {
	mm := NewMemoryManager()
	mm.Alloc(1, 2)
	if err := mm.PutField(1, 1, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := mm.GetField(1, 1); v != 42 {
		t.Fatal("field readback wrong")
	}
	if _, err := mm.GetField(1, 5); err == nil {
		t.Fatal("out-of-range field allowed")
	}
	if _, err := mm.GetField(9, 0); err == nil {
		t.Fatal("missing object allowed")
	}
}

func TestVMErrorsOnIllegalOpcode(t *testing.T) {
	vm := NewVM(Program{Main: []byte{0xEE}}, &SoftStack{}, NewMemoryManager(), NewFirewall())
	if err := vm.Run(10); err == nil {
		t.Fatal("illegal opcode not trapped")
	}
}

func TestVMStackUnderflowTrapped(t *testing.T) {
	vm := NewVM(Program{Main: []byte{OpAdd}}, &SoftStack{}, NewMemoryManager(), NewFirewall())
	if err := vm.Run(10); err == nil {
		t.Fatal("underflow not trapped")
	}
}

func TestSoftStackBasics(t *testing.T) {
	var s SoftStack
	s.Push(1)
	s.Push(2)
	if s.Depth() != 2 {
		t.Fatal("depth wrong")
	}
	if v, _ := s.Pop(); v != 2 {
		t.Fatal("LIFO broken")
	}
	s.Reset()
	if s.Depth() != 0 {
		t.Fatal("reset failed")
	}
	if _, err := s.Pop(); err == nil {
		t.Fatal("underflow not reported")
	}
}

// refined builds the Fig. 7b system: hard stack behind a TLM bus.
func refined(t *testing.T, layer int, org Organization) (*sim.Kernel, *MasterAdapter, *HardStack) {
	t.Helper()
	k := sim.New(0)
	hs := NewHardStack("stack", 0x1000)
	m := ecbus.MustMap(hs)
	var bus interface {
		Access(*ecbus.Transaction) ecbus.BusState
	}
	if layer == 1 {
		bus = tlm1.New(k, m)
	} else {
		bus = tlm2.New(k, m)
	}
	return k, NewMasterAdapter(k, bus, 0x1000, org), hs
}

func TestHardStackAllOrganizationsLIFO(t *testing.T) {
	for _, org := range Organizations {
		for _, layer := range []int{1, 2} {
			_, ad, hs := refined(t, layer, org)
			vals := []int16{5, -3, 32767, -32768, 0, 77}
			for _, v := range vals {
				if err := ad.Push(v); err != nil {
					t.Fatalf("%v L%d: push: %v", org, layer, err)
				}
			}
			if d := ad.Depth(); d != len(vals) {
				t.Fatalf("%v L%d: depth = %d, want %d", org, layer, d, len(vals))
			}
			for i := len(vals) - 1; i >= 0; i-- {
				v, err := ad.Pop()
				if err != nil {
					t.Fatalf("%v L%d: pop: %v", org, layer, err)
				}
				if v != vals[i] {
					t.Fatalf("%v L%d: pop = %d, want %d", org, layer, v, vals[i])
				}
			}
			if hs.Depth() != 0 {
				t.Fatalf("%v L%d: residue in hardware stack", org, layer)
			}
		}
	}
}

func TestHardStackUnderflowIsBusError(t *testing.T) {
	_, ad, _ := refined(t, 1, OrgHalf)
	if _, err := ad.Pop(); err == nil {
		t.Fatal("pop from empty hardware stack did not error")
	}
}

func TestHardStackOverflowIsBusError(t *testing.T) {
	_, ad, _ := refined(t, 1, OrgHalf)
	var err error
	for i := 0; i <= HardStackSize; i++ {
		if err = ad.Push(int16(i)); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("overflow not reported")
	}
}

func TestRefinedVMMatchesFunctional(t *testing.T) {
	for _, w := range Workloads() {
		progF, mmF, fwF := w.Make()
		ref := NewVM(progF, &SoftStack{}, mmF, fwF)
		if err := ref.Run(1_000_000); err != nil {
			t.Fatalf("%s functional: %v", w.Name, err)
		}
		for _, org := range Organizations {
			prog, mm, fw := w.Make()
			_, ad, _ := refined(t, 1, org)
			vm := NewVM(prog, ad, mm, fw)
			if err := vm.Run(1_000_000); err != nil {
				t.Fatalf("%s %v: %v", w.Name, org, err)
			}
			if vm.Static(0) != ref.Static(0) {
				t.Fatalf("%s %v: result %d != functional %d",
					w.Name, org, vm.Static(0), ref.Static(0))
			}
		}
	}
}

func TestOrganizationTransactionCounts(t *testing.T) {
	// Byte staging needs 3 transactions per push and 3 per pop; halfword
	// and packed need 1+1; burst batches pushes. The counts drive the
	// case study's energy differences.
	counts := map[Organization]uint64{}
	for _, org := range Organizations {
		prog, mm, fw := StackChurn(8, 10), NewMemoryManager(), NewFirewall()
		_, ad, _ := refined(t, 1, org)
		vm := NewVM(prog, ad, mm, fw)
		if err := vm.Run(1_000_000); err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		counts[org] = ad.Transactions
	}
	if !(counts[OrgByte] > counts[OrgHalf]) {
		t.Errorf("byte-staged (%d) not more transactions than halfword (%d)",
			counts[OrgByte], counts[OrgHalf])
	}
	if !(counts[OrgBurst] < counts[OrgHalf]) {
		t.Errorf("burst (%d) not fewer transactions than halfword (%d)",
			counts[OrgBurst], counts[OrgHalf])
	}
	if counts[OrgPacked] != counts[OrgHalf] {
		t.Errorf("packed (%d) and halfword (%d) transaction counts should match",
			counts[OrgPacked], counts[OrgHalf])
	}
}

func TestBuilderBranchResolution(t *testing.T) {
	code := NewBuilder().
		Push(1).
		Branch(OpIfNe, "end").
		Push(99).Op(OpPutS, 0).
		Label("end").
		Op(OpHalt).MustBuild()
	vm := NewVM(Program{Main: code, Statics: 1}, &SoftStack{}, NewMemoryManager(), NewFirewall())
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if vm.Static(0) != 0 {
		t.Fatal("branch not taken")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Branch(OpGoto, "nowhere").Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
	b := NewBuilder().Label("start")
	for i := 0; i < 100; i++ {
		b.Push(1).Op(OpPop)
	}
	b.Branch(OpGoto, "start")
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
}

func TestVMStepAfterHalt(t *testing.T) {
	vm := NewVM(Program{Main: []byte{OpHalt}}, &SoftStack{}, NewMemoryManager(), NewFirewall())
	if err := vm.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := vm.Step(); err != ErrHalted {
		t.Fatalf("Step after halt = %v", err)
	}
}

func TestInvokePassesArguments(t *testing.T) {
	// method 0: returns arg0 - arg1 into static 0
	m := NewBuilder().
		Op(OpLoad, 0).Op(OpLoad, 1).Op(OpSub).Op(OpPutS, 0).
		Op(OpReturn).MustBuild()
	main := NewBuilder().
		Push(50).Push(8).Op(OpInvoke, 0).
		Op(OpHalt).MustBuild()
	vm := NewVM(Program{Main: main, Methods: []Method{{Code: m, NArgs: 2}}, Statics: 1},
		&SoftStack{}, NewMemoryManager(), NewFirewall())
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if vm.Static(0) != 42 {
		t.Fatalf("invoke result = %d, want 42", vm.Static(0))
	}
}
