package javacard

import "fmt"

// Builder assembles bytecode with label-resolved branches.
type Builder struct {
	code   []byte
	labels map[string]int
	fixes  []fix
}

type fix struct {
	pos   int // offset operand position; opcode at pos-1
	label string
}

// NewBuilder returns an empty bytecode builder.
func NewBuilder() *Builder {
	return &Builder{labels: map[string]int{}}
}

// Op appends an opcode with raw operand bytes.
func (b *Builder) Op(op byte, operands ...byte) *Builder {
	b.code = append(b.code, op)
	b.code = append(b.code, operands...)
	return b
}

// Push appends a 16-bit immediate push.
func (b *Builder) Push(v int16) *Builder {
	return b.Op(OpPush, byte(uint16(v)>>8), byte(uint16(v)))
}

// Label defines a branch target at the current position.
func (b *Builder) Label(name string) *Builder {
	b.labels[name] = len(b.code)
	return b
}

// Branch appends a branching opcode targeting a label.
func (b *Builder) Branch(op byte, label string) *Builder {
	b.code = append(b.code, op)
	b.fixes = append(b.fixes, fix{pos: len(b.code), label: label})
	b.code = append(b.code, 0)
	return b
}

// Build resolves branches and returns the code.
func (b *Builder) Build() ([]byte, error) {
	for _, f := range b.fixes {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("jcvm builder: undefined label %q", f.label)
		}
		off := target - (f.pos - 1) // relative to the opcode byte
		if off < -128 || off > 127 {
			return nil, fmt.Errorf("jcvm builder: branch to %q out of range (%d)", f.label, off)
		}
		b.code[f.pos] = byte(int8(off))
	}
	return b.code, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() []byte {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// ArithLoop returns a program computing sum(1..n) into static 0 —
// the interpreter-bound workload of the case study.
func ArithLoop(n int16) Program {
	main := NewBuilder().
		Push(0).Op(OpStore, 0). // acc
		Push(n).Op(OpStore, 1). // i
		Label("loop").
		Op(OpLoad, 1).
		Branch(OpIfEq, "done"). // i == 0 ?
		Op(OpLoad, 0).Op(OpLoad, 1).Op(OpAdd).Op(OpStore, 0).
		Op(OpLoad, 1).Push(1).Op(OpSub).Op(OpStore, 1).
		Branch(OpGoto, "loop").
		Label("done").
		Op(OpLoad, 0).Op(OpPutS, 0).
		Op(OpHalt).
		MustBuild()
	return Program{Main: main, Statics: 1}
}

// StackChurn returns a stack-bound workload: rounds of pushing `depth`
// values and folding them with adds — maximizing operand-stack traffic,
// the worst case for the HW/SW interface.
func StackChurn(depth, rounds int16) Program {
	b := NewBuilder().
		Push(rounds).Op(OpStore, 1).
		Label("round").
		Op(OpLoad, 1).
		Branch(OpIfEq, "done")
	for i := int16(0); i < depth; i++ {
		b.Push(i + 1)
	}
	for i := int16(0); i < depth-1; i++ {
		b.Op(OpAdd)
	}
	b.Op(OpGetS, 0).Op(OpAdd).Op(OpPutS, 0).
		Op(OpLoad, 1).Push(1).Op(OpSub).Op(OpStore, 1).
		Branch(OpGoto, "round").
		Label("done").
		Op(OpHalt)
	return Program{Main: b.MustBuild(), Statics: 1}
}

// WalletObj is the balance object id of the wallet workload.
const WalletObj = 1

// WalletProgram assembles the applet-like workload: a balance object
// guarded by the firewall, debited by repeated static-method
// invocations. The credit/debit methods exercise invoke/return, field
// access and branches. Final balance lands in static 0.
func WalletProgram(initial, debit int16, times int16) Program {
	// method 0: debit(amount) -> balance -= amount if balance >= amount
	debitM := NewBuilder().
		Op(OpGetF, WalletObj, 0). // balance
		Op(OpLoad, 0).            // amount
		Branch(OpCmpLt, "skip").  // balance < amount ?
		Op(OpGetF, WalletObj, 0).
		Op(OpLoad, 0).Op(OpSub).
		Op(OpPutF, WalletObj, 0).
		Label("skip").
		Op(OpReturn).
		MustBuild()

	main := NewBuilder().
		Op(OpSetCtx, 1).
		Push(initial).Op(OpPutF, WalletObj, 0).
		Push(times).Op(OpStore, 2).
		Label("loop").
		Op(OpLoad, 2).
		Branch(OpIfEq, "done").
		Push(debit).Op(OpInvoke, 0).
		Op(OpLoad, 2).Push(1).Op(OpSub).Op(OpStore, 2).
		Branch(OpGoto, "loop").
		Label("done").
		Op(OpGetF, WalletObj, 0).Op(OpPutS, 0).
		Op(OpHalt).
		MustBuild()

	return Program{Main: main, Methods: []Method{{Code: debitM, NArgs: 1}}, Statics: 1}
}

// WalletRuntime builds the wallet's fresh per-run services: the balance
// object and its firewall ownership.
func WalletRuntime() (*MemoryManager, *Firewall) {
	mm := NewMemoryManager()
	mm.Alloc(WalletObj, 1)
	fw := NewFirewall()
	fw.Own(WalletObj, 1)
	return mm, fw
}

// Wallet returns the wallet program together with fresh runtime state —
// the functional-model view used by examples and tests.
func Wallet(initial, debit int16, times int16) (Program, *MemoryManager, *Firewall) {
	mm, fw := WalletRuntime()
	return WalletProgram(initial, debit, times), mm, fw
}

// DefaultRuntime builds empty per-run services for workloads that
// allocate nothing up front.
func DefaultRuntime() (*MemoryManager, *Firewall) {
	return NewMemoryManager(), NewFirewall()
}

// Workload names a case-study workload for the exploration harness. The
// program assembly is split from the runtime state so the exploration
// engine can assemble the (immutable) program once per sweep and share
// it read-only across worker goroutines, while every configuration
// evaluation still gets its own mutable heap and firewall.
type Workload struct {
	Name string
	// Program assembles the workload's bytecode image. It must be
	// deterministic and the returned Program must not be mutated by the
	// caller: sweeps share one copy across concurrent evaluations.
	Program func() Program
	// Runtime builds the mutable per-run services (object heap and
	// applet firewall); it is called once per configuration evaluation.
	Runtime func() (*MemoryManager, *Firewall)
}

// Make materializes the program together with fresh runtime state — the
// single-run view used by the functional model.
func (w Workload) Make() (Program, *MemoryManager, *Firewall) {
	mm, fw := w.Runtime()
	return w.Program(), mm, fw
}

// Workloads returns the standard case-study workload set.
func Workloads() []Workload {
	return []Workload{
		{Name: "arith-loop", Program: func() Program { return ArithLoop(60) }, Runtime: DefaultRuntime},
		{Name: "stack-churn", Program: func() Program { return StackChurn(8, 20) }, Runtime: DefaultRuntime},
		{Name: "wallet", Program: func() Program { return WalletProgram(1000, 7, 40) }, Runtime: WalletRuntime},
	}
}
