package javacard

import "fmt"

// MemoryManager is the functional model of the Java Card heap: numbered
// objects with short fields (plain objects and arrays share the
// representation), owned by a firewall context.
type MemoryManager struct {
	objects map[int][]int16
	nextID  int
}

// NewMemoryManager returns an empty heap.
func NewMemoryManager() *MemoryManager {
	return &MemoryManager{objects: map[int][]int16{}, nextID: 0x100}
}

// Alloc creates object id with n fields (id is chosen by the loader, as
// in a CAP file's static object pool).
func (m *MemoryManager) Alloc(id, n int) {
	m.objects[id] = make([]int16, n)
}

// New allocates a fresh object/array of n shorts and returns its handle
// (runtime allocation: OpNewArr).
func (m *MemoryManager) New(n int) int {
	id := m.nextID
	m.nextID++
	m.objects[id] = make([]int16, n)
	return id
}

// Len returns the field count of an object, 0 if it does not exist.
func (m *MemoryManager) Len(obj int) int { return len(m.objects[obj]) }

// GetField reads field fld of object obj.
func (m *MemoryManager) GetField(obj, fld int) (int16, error) {
	o, ok := m.objects[obj]
	if !ok {
		return 0, fmt.Errorf("mm: no object %d", obj)
	}
	if fld < 0 || fld >= len(o) {
		return 0, fmt.Errorf("mm: object %d has no field %d", obj, fld)
	}
	return o[fld], nil
}

// PutField writes field fld of object obj.
func (m *MemoryManager) PutField(obj, fld int, v int16) error {
	o, ok := m.objects[obj]
	if !ok {
		return fmt.Errorf("mm: no object %d", obj)
	}
	if fld < 0 || fld >= len(o) {
		return fmt.Errorf("mm: object %d has no field %d", obj, fld)
	}
	o[fld] = v
	return nil
}

// Firewall is the functional model of the Java Card applet firewall:
// every object belongs to a context; access from a foreign context is
// denied unless the object is marked shareable.
type Firewall struct {
	owner     map[int]byte
	shareable map[int]bool

	Violations uint64
}

// NewFirewall returns an empty firewall.
func NewFirewall() *Firewall {
	return &Firewall{owner: map[int]byte{}, shareable: map[int]bool{}}
}

// Own assigns object obj to context ctx.
func (f *Firewall) Own(obj int, ctx byte) { f.owner[obj] = ctx }

// Share marks obj as a shareable interface object.
func (f *Firewall) Share(obj int) { f.shareable[obj] = true }

// Check enforces the firewall rule for an access to obj from ctx.
func (f *Firewall) Check(ctx byte, obj int) error {
	owner, ok := f.owner[obj]
	if !ok {
		return fmt.Errorf("firewall: object %d unowned", obj)
	}
	if owner == ctx || f.shareable[obj] {
		return nil
	}
	f.Violations++
	return fmt.Errorf("firewall: context %d may not access object %d (owner %d)", ctx, obj, owner)
}
