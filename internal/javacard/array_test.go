package javacard

import (
	"strings"
	"testing"
)

// arraySum builds: allocate an n-element array, fill with i*3, sum it
// via aload, result in static 0.
func arraySum(n int16) Program {
	b := NewBuilder().
		Push(n).Op(OpNewArr).Op(OpStore, 0). // local0 = handle
		// fill loop: i in local1
		Push(0).Op(OpStore, 1).
		Label("fill").
		Op(OpLoad, 1).Push(n).
		Branch(OpCmpEq, "sum").
		Op(OpLoad, 0).Op(OpLoad, 1).     // handle, index
		Op(OpLoad, 1).Push(3).Op(OpMul). // value = i*3
		Op(OpAStore).
		Op(OpLoad, 1).Push(1).Op(OpAdd).Op(OpStore, 1).
		Branch(OpGoto, "fill").
		Label("sum").
		Push(0).Op(OpStore, 2). // acc
		Push(0).Op(OpStore, 1).
		Label("add").
		Op(OpLoad, 1).Push(n).
		Branch(OpCmpEq, "done").
		Op(OpLoad, 0).Op(OpLoad, 1).Op(OpALoad).
		Op(OpLoad, 2).Op(OpAdd).Op(OpStore, 2).
		Op(OpLoad, 1).Push(1).Op(OpAdd).Op(OpStore, 1).
		Branch(OpGoto, "add").
		Label("done").
		Op(OpLoad, 2).Op(OpPutS, 0).
		Op(OpHalt)
	return Program{Main: b.MustBuild(), Statics: 1}
}

func TestArrayAllocFillSum(t *testing.T) {
	vm := runSoft(t, arraySum(10), NewMemoryManager(), NewFirewall())
	// sum of 3i for i=0..9 = 3*45 = 135
	if got := vm.Static(0); got != 135 {
		t.Fatalf("array sum = %d, want 135", got)
	}
}

func TestArrayOnHardStack(t *testing.T) {
	// The array workload must behave identically with the refined
	// operand stack (handles and indices travel over the bus).
	for _, org := range Organizations {
		prog := arraySum(6)
		_, ad, _ := refined(t, 1, org)
		vm := NewVM(prog, ad, NewMemoryManager(), NewFirewall())
		if err := vm.Run(1_000_000); err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		if got := vm.Static(0); got != 45 {
			t.Fatalf("%v: array sum = %d, want 45", org, got)
		}
	}
}

func TestArrayLength(t *testing.T) {
	code := NewBuilder().
		Push(7).Op(OpNewArr).
		Op(OpArrLen).Op(OpPutS, 0).
		Op(OpHalt).MustBuild()
	vm := runSoft(t, Program{Main: code, Statics: 1}, NewMemoryManager(), NewFirewall())
	if vm.Static(0) != 7 {
		t.Fatalf("arrlen = %d", vm.Static(0))
	}
}

func TestArrayBoundsTrap(t *testing.T) {
	code := NewBuilder().
		Push(2).Op(OpNewArr).Op(OpStore, 0).
		Op(OpLoad, 0).Push(5).Op(OpALoad). // index 5 of len-2 array
		Op(OpHalt).MustBuild()
	vm := NewVM(Program{Main: code}, &SoftStack{}, NewMemoryManager(), NewFirewall())
	err := vm.Run(100)
	if err == nil || !strings.Contains(err.Error(), "field") {
		t.Fatalf("bounds violation not trapped: %v", err)
	}
}

func TestNegativeLengthTrap(t *testing.T) {
	code := NewBuilder().
		Push(-1).Op(OpNewArr).
		Op(OpHalt).MustBuild()
	vm := NewVM(Program{Main: code}, &SoftStack{}, NewMemoryManager(), NewFirewall())
	if err := vm.Run(100); err == nil {
		t.Fatal("negative array length accepted")
	}
}

func TestArrayFirewalled(t *testing.T) {
	// An array allocated in context 1 is invisible to context 2.
	code := NewBuilder().
		Op(OpSetCtx, 1).
		Push(4).Op(OpNewArr).Op(OpStore, 0).
		Op(OpSetCtx, 2).
		Op(OpLoad, 0).Push(0).Op(OpALoad).
		Op(OpHalt).MustBuild()
	fw := NewFirewall()
	vm := NewVM(Program{Main: code}, &SoftStack{}, NewMemoryManager(), fw)
	err := vm.Run(100)
	if err == nil || !strings.Contains(err.Error(), "firewall") {
		t.Fatalf("cross-context array access not denied: %v", err)
	}
	if fw.Violations != 1 {
		t.Fatalf("violations = %d", fw.Violations)
	}
}

func TestRuntimeAllocIDsDistinct(t *testing.T) {
	mm := NewMemoryManager()
	a, b := mm.New(2), mm.New(3)
	if a == b {
		t.Fatal("handle collision")
	}
	if mm.Len(a) != 2 || mm.Len(b) != 3 || mm.Len(999) != 0 {
		t.Fatal("Len wrong")
	}
	// Runtime handles must not collide with loader-assigned ids < 0x100.
	if a < 0x100 {
		t.Fatal("runtime handle collides with static object pool")
	}
}
