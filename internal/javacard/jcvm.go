// Package javacard implements the paper's case study (§4.3, Fig. 7): a
// Java Card virtual machine as a functional, untimed model whose
// communication is then refined onto the energy-aware transaction-level
// bus models.
//
// The functional model (Fig. 7a) consists of the bytecode interpreter,
// the memory manager, the firewall and the operand stack; the
// interpreter drives the stack through the Stack interface. In the
// refined model (Fig. 7b) the stack becomes a hardware slave behind the
// TLM bus: a MasterAdapter translates the interface calls into bus
// transactions on special function registers, and the SlaveAdapter (the
// register decode inside HardStack) restores the original stack
// interface calls. "During HW/SW interface evaluation we change the
// address map, organization of these registers and used bus
// transactions to access them" — package explore sweeps exactly those
// axes.
//
// The bytecode set is a self-contained Java-Card-flavoured subset
// (16-bit operand stack, shorts as the arithmetic type, static fields,
// object fields guarded by the applet firewall, static method
// invocation). Opcode values are this package's own; the structure —
// not the exact encoding — is what the case study exercises.
package javacard

import (
	"errors"
	"fmt"
)

// Bytecode opcodes.
const (
	OpNop    byte = 0x00
	OpPush   byte = 0x01 // push int16 immediate (2 operand bytes, BE)
	OpPop    byte = 0x02 // discard top
	OpDup    byte = 0x03
	OpSwap   byte = 0x04
	OpAdd    byte = 0x10
	OpSub    byte = 0x11
	OpMul    byte = 0x12
	OpNeg    byte = 0x13
	OpAnd    byte = 0x14
	OpOr     byte = 0x15
	OpXor    byte = 0x16
	OpShl    byte = 0x17
	OpShr    byte = 0x18
	OpLoad   byte = 0x20 // push local[n] (1 operand byte)
	OpStore  byte = 0x21 // pop into local[n]
	OpGetS   byte = 0x28 // push static[n]
	OpPutS   byte = 0x29 // pop into static[n]
	OpGetF   byte = 0x2A // obj, field operands: push field (firewalled)
	OpPutF   byte = 0x2B // obj, field operands: pop into field (firewalled)
	OpGoto   byte = 0x30 // signed 8-bit offset
	OpIfEq   byte = 0x31 // pop; branch if zero
	OpIfNe   byte = 0x32
	OpIfLt   byte = 0x33
	OpIfGt   byte = 0x34
	OpCmpEq  byte = 0x35 // pop b, a; branch if a == b
	OpCmpLt  byte = 0x36 // pop b, a; branch if a < b
	OpInvoke byte = 0x40 // method index operand
	OpReturn byte = 0x41
	OpSetCtx byte = 0x50 // switch firewall context (operand byte)
	OpNewArr byte = 0x60 // pop length; allocate array owned by ctx; push handle
	OpALoad  byte = 0x61 // pop index, handle; push element (firewalled)
	OpAStore byte = 0x62 // pop value, index, handle; store element (firewalled)
	OpArrLen byte = 0x63 // pop handle; push length
	OpHalt   byte = 0x7F
)

// Stack is the operand-stack interface the interpreter programs against
// — the HW/SW boundary of the case study. The pure functional model
// binds it to SoftStack; the refined model binds it to a MasterAdapter
// in front of the HardStack slave.
type Stack interface {
	Push(v int16) error
	Pop() (int16, error)
	Depth() int
	Reset()
}

// Method is one static method: its code and argument count (arguments
// are popped into locals[0..NArgs-1], last argument on top).
type Method struct {
	Code  []byte
	NArgs int
}

// Program is an executable image for the VM.
type Program struct {
	Main    []byte
	Methods []Method
	Statics int // number of static fields
}

// frame is a saved interpreter activation.
type frame struct {
	code   []byte
	pc     int
	locals [16]int16
}

// VM is the bytecode interpreter of the case study. It is untimed: time
// (and energy) enter only through the Stack implementation it is bound
// to.
type VM struct {
	prog    Program
	stack   Stack
	mm      *MemoryManager
	fw      *Firewall
	statics []int16

	cur     frame
	callers []frame
	ctx     byte
	halted  bool

	Steps uint64 // executed bytecodes

	// FetchHook, when set, is invoked with the bytecode offset before
	// each Step. The refined platform model uses it to issue the
	// interpreter's own code-fetch traffic on the bus, so that stack
	// accesses interleave with instruction traffic as they would on the
	// real card (this makes the exploration's address-map axis
	// meaningful: the address bus Hamming distance between code memory
	// and stack SFRs depends on where the SFRs live).
	FetchHook func(pc int)

	// StaticHook, when set, is invoked after each committed static-field
	// store (OpPutS) with the field index and value. The tear-aware
	// platform model uses it to mirror static state into persistent
	// memory through the transaction journal; a returned error (e.g.
	// power loss) aborts the interpreter at that bytecode.
	StaticHook func(idx int, v int16) error
}

// NewVM builds an interpreter over the given stack and runtime services.
func NewVM(prog Program, stack Stack, mm *MemoryManager, fw *Firewall) *VM {
	return &VM{
		prog:    prog,
		stack:   stack,
		mm:      mm,
		fw:      fw,
		statics: make([]int16, prog.Statics),
		cur:     frame{code: prog.Main},
	}
}

// Halted reports whether OpHalt was executed.
func (vm *VM) Halted() bool { return vm.halted }

// Static returns static field n (for result assertions).
func (vm *VM) Static(n int) int16 { return vm.statics[n] }

// Context returns the active firewall context.
func (vm *VM) Context() byte { return vm.ctx }

// errTrap wraps interpreter-level failures with the faulting pc.
func (vm *VM) errTrap(format string, a ...any) error {
	return fmt.Errorf("jcvm: pc=%d: %s", vm.cur.pc, fmt.Sprintf(format, a...))
}

// ErrHalted is returned by Step after the VM has halted.
var ErrHalted = errors.New("jcvm: halted")

// fetch returns the next code byte.
func (vm *VM) fetch() (byte, error) {
	if vm.cur.pc >= len(vm.cur.code) {
		return 0, vm.errTrap("fell off code")
	}
	b := vm.cur.code[vm.cur.pc]
	vm.cur.pc++
	return b, nil
}

// Step executes one bytecode.
func (vm *VM) Step() error {
	if vm.halted {
		return ErrHalted
	}
	if vm.FetchHook != nil {
		vm.FetchHook(vm.cur.pc)
	}
	op, err := vm.fetch()
	if err != nil {
		return err
	}
	vm.Steps++

	pop := func() (int16, error) { return vm.stack.Pop() }
	push := func(v int16) error { return vm.stack.Push(v) }

	binop := func(f func(a, b int16) int16) error {
		b, err := pop()
		if err != nil {
			return err
		}
		a, err := pop()
		if err != nil {
			return err
		}
		return push(f(a, b))
	}
	branch := func(cond bool) error {
		off, err := vm.fetch()
		if err != nil {
			return err
		}
		if cond {
			vm.cur.pc += int(int8(off)) - 2 // relative to the opcode
		}
		return nil
	}

	switch op {
	case OpNop:
		return nil
	case OpPush:
		hi, err := vm.fetch()
		if err != nil {
			return err
		}
		lo, err := vm.fetch()
		if err != nil {
			return err
		}
		return push(int16(uint16(hi)<<8 | uint16(lo)))
	case OpPop:
		_, err := pop()
		return err
	case OpDup:
		v, err := pop()
		if err != nil {
			return err
		}
		if err := push(v); err != nil {
			return err
		}
		return push(v)
	case OpSwap:
		b, err := pop()
		if err != nil {
			return err
		}
		a, err := pop()
		if err != nil {
			return err
		}
		if err := push(b); err != nil {
			return err
		}
		return push(a)
	case OpAdd:
		return binop(func(a, b int16) int16 { return a + b })
	case OpSub:
		return binop(func(a, b int16) int16 { return a - b })
	case OpMul:
		return binop(func(a, b int16) int16 { return a * b })
	case OpNeg:
		v, err := pop()
		if err != nil {
			return err
		}
		return push(-v)
	case OpAnd:
		return binop(func(a, b int16) int16 { return a & b })
	case OpOr:
		return binop(func(a, b int16) int16 { return a | b })
	case OpXor:
		return binop(func(a, b int16) int16 { return a ^ b })
	case OpShl:
		return binop(func(a, b int16) int16 { return a << (uint(b) & 15) })
	case OpShr:
		return binop(func(a, b int16) int16 { return a >> (uint(b) & 15) })
	case OpLoad:
		n, err := vm.fetch()
		if err != nil {
			return err
		}
		if int(n) >= len(vm.cur.locals) {
			return vm.errTrap("local %d out of range", n)
		}
		return push(vm.cur.locals[n])
	case OpStore:
		n, err := vm.fetch()
		if err != nil {
			return err
		}
		if int(n) >= len(vm.cur.locals) {
			return vm.errTrap("local %d out of range", n)
		}
		v, err := pop()
		if err != nil {
			return err
		}
		vm.cur.locals[n] = v
		return nil
	case OpGetS:
		n, err := vm.fetch()
		if err != nil {
			return err
		}
		if int(n) >= len(vm.statics) {
			return vm.errTrap("static %d out of range", n)
		}
		return push(vm.statics[n])
	case OpPutS:
		n, err := vm.fetch()
		if err != nil {
			return err
		}
		if int(n) >= len(vm.statics) {
			return vm.errTrap("static %d out of range", n)
		}
		v, err := pop()
		if err != nil {
			return err
		}
		vm.statics[n] = v
		if vm.StaticHook != nil {
			return vm.StaticHook(int(n), v)
		}
		return nil
	case OpGetF:
		obj, err := vm.fetch()
		if err != nil {
			return err
		}
		fld, err := vm.fetch()
		if err != nil {
			return err
		}
		if err := vm.fw.Check(vm.ctx, int(obj)); err != nil {
			return vm.errTrap("%v", err)
		}
		v, err := vm.mm.GetField(int(obj), int(fld))
		if err != nil {
			return vm.errTrap("%v", err)
		}
		return push(v)
	case OpPutF:
		obj, err := vm.fetch()
		if err != nil {
			return err
		}
		fld, err := vm.fetch()
		if err != nil {
			return err
		}
		if err := vm.fw.Check(vm.ctx, int(obj)); err != nil {
			return vm.errTrap("%v", err)
		}
		v, err := pop()
		if err != nil {
			return err
		}
		if err := vm.mm.PutField(int(obj), int(fld), v); err != nil {
			return vm.errTrap("%v", err)
		}
		return nil
	case OpGoto:
		return branch(true)
	case OpIfEq, OpIfNe, OpIfLt, OpIfGt:
		v, err := pop()
		if err != nil {
			return err
		}
		switch op {
		case OpIfEq:
			return branch(v == 0)
		case OpIfNe:
			return branch(v != 0)
		case OpIfLt:
			return branch(v < 0)
		default:
			return branch(v > 0)
		}
	case OpCmpEq, OpCmpLt:
		b, err := pop()
		if err != nil {
			return err
		}
		a, err := pop()
		if err != nil {
			return err
		}
		if op == OpCmpEq {
			return branch(a == b)
		}
		return branch(a < b)
	case OpInvoke:
		n, err := vm.fetch()
		if err != nil {
			return err
		}
		if int(n) >= len(vm.prog.Methods) {
			return vm.errTrap("method %d out of range", n)
		}
		m := vm.prog.Methods[n]
		if len(vm.callers) >= 32 {
			return vm.errTrap("call stack overflow")
		}
		next := frame{code: m.Code}
		for i := m.NArgs - 1; i >= 0; i-- {
			v, err := pop()
			if err != nil {
				return err
			}
			next.locals[i] = v
		}
		vm.callers = append(vm.callers, vm.cur)
		vm.cur = next
		return nil
	case OpReturn:
		if len(vm.callers) == 0 {
			vm.halted = true
			return nil
		}
		vm.cur = vm.callers[len(vm.callers)-1]
		vm.callers = vm.callers[:len(vm.callers)-1]
		return nil
	case OpSetCtx:
		c, err := vm.fetch()
		if err != nil {
			return err
		}
		vm.ctx = c
		return nil
	case OpNewArr:
		n, err := pop()
		if err != nil {
			return err
		}
		if n < 0 {
			return vm.errTrap("negative array length %d", n)
		}
		h := vm.mm.New(int(n))
		vm.fw.Own(h, vm.ctx)
		return push(int16(h))
	case OpALoad:
		idx, err := pop()
		if err != nil {
			return err
		}
		h, err := pop()
		if err != nil {
			return err
		}
		if err := vm.fw.Check(vm.ctx, int(h)); err != nil {
			return vm.errTrap("%v", err)
		}
		v, err := vm.mm.GetField(int(h), int(idx))
		if err != nil {
			return vm.errTrap("%v", err)
		}
		return push(v)
	case OpAStore:
		v, err := pop()
		if err != nil {
			return err
		}
		idx, err := pop()
		if err != nil {
			return err
		}
		h, err := pop()
		if err != nil {
			return err
		}
		if err := vm.fw.Check(vm.ctx, int(h)); err != nil {
			return vm.errTrap("%v", err)
		}
		if err := vm.mm.PutField(int(h), int(idx), v); err != nil {
			return vm.errTrap("%v", err)
		}
		return nil
	case OpArrLen:
		h, err := pop()
		if err != nil {
			return err
		}
		if err := vm.fw.Check(vm.ctx, int(h)); err != nil {
			return vm.errTrap("%v", err)
		}
		return push(int16(vm.mm.Len(int(h))))
	case OpHalt:
		vm.halted = true
		return nil
	default:
		return vm.errTrap("illegal opcode %#x", op)
	}
}

// Run executes until halt, error, or maxSteps.
func (vm *VM) Run(maxSteps uint64) error {
	for i := uint64(0); i < maxSteps; i++ {
		if vm.halted {
			return nil
		}
		if err := vm.Step(); err != nil {
			return err
		}
	}
	if !vm.halted {
		return errors.New("jcvm: step budget exhausted")
	}
	return nil
}
