package coding

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/logic"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
)

func TestRawIdentity(t *testing.T) {
	r := &Raw{Bits: 8}
	if r.Encode(0x1FF) != 0xFF {
		t.Fatal("raw does not mask")
	}
	seq := []uint64{0, 0xFF, 0, 0xFF}
	if got := Transitions(seq, 8); got != 24 {
		t.Fatalf("raw transitions = %d, want 24", got)
	}
	if got := EncodedTransitions(seq, r); got != 24 {
		t.Fatalf("raw encoded transitions = %d, want 24", got)
	}
}

func TestBusInvertWorstCase(t *testing.T) {
	// Alternating all-zero/all-one words: raw toggles every wire every
	// step; bus-invert turns it into (almost) no data-wire activity.
	seq := []uint64{0, 0xFFFFFFFF, 0, 0xFFFFFFFF, 0, 0xFFFFFFFF}
	raw := Transitions(seq, 32)
	enc := EncodedTransitions(seq, &BusInvert{Bits: 32})
	if raw != 5*32 {
		t.Fatalf("raw = %d", raw)
	}
	// Only the invert line toggles after the first word.
	if enc > 6 {
		t.Fatalf("bus-invert worst case = %d transitions, want <= 6", enc)
	}
}

func TestBusInvertPerStepBound(t *testing.T) {
	// Classic bus-invert guarantee: at most ceil(w/2)+1 transitions per
	// step (data wires + invert line).
	f := func(words []uint32) bool {
		enc := &BusInvert{Bits: 32}
		prev := uint64(0)
		for _, w := range words {
			e := enc.Encode(uint64(w))
			if logic.Hamming(prev, e, enc.Width()) > 17 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusInvertNeverWorseOverall(t *testing.T) {
	f := func(words []uint32, seed uint64) bool {
		seq := make([]uint64, len(words))
		for i, w := range words {
			seq[i] = uint64(w)
		}
		raw := Transitions(seq, 32)
		enc := EncodedTransitions(seq, &BusInvert{Bits: 32})
		// The invert line can add at most one transition per step.
		return enc <= raw+len(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusInvertDecodable(t *testing.T) {
	// The receiver recovers the word from data wires + invert line.
	enc := &BusInvert{Bits: 16}
	r := logic.NewLFSR(5)
	for i := 0; i < 1000; i++ {
		w := r.NextN(16)
		e := enc.Encode(w)
		data := e & logic.Mask(16)
		if e>>16&1 == 1 {
			data = ^data & logic.Mask(16)
		}
		if data != w {
			t.Fatalf("step %d: decoded %#x, want %#x", i, data, w)
		}
	}
}

func TestGraySequentialSingleTransition(t *testing.T) {
	g := &Gray{Bits: 16}
	prev := g.Encode(0)
	for i := uint64(1); i < 1000; i++ {
		cur := g.Encode(i)
		if logic.Hamming(prev, cur, 16) != 1 {
			t.Fatalf("gray step %d toggles %d wires", i, logic.Hamming(prev, cur, 16))
		}
		prev = cur
	}
}

func TestGrayBijective(t *testing.T) {
	g := &Gray{Bits: 10}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1024; i++ {
		e := g.Encode(i)
		if seen[e] {
			t.Fatalf("gray collision at %d", i)
		}
		seen[e] = true
	}
}

func TestGrayBeatsRawOnSequentialFetch(t *testing.T) {
	// Sequential instruction addresses: Gray coding gives exactly one
	// transition per fetch, raw gives the binary carry chain.
	var seq []uint64
	for a := uint64(0x1000); a < 0x1400; a += 4 {
		seq = append(seq, a>>2) // word address lines
	}
	res := Evaluate(seq, &Gray{Bits: 34}, 34, 1e-13)
	if res.EncT >= res.RawT {
		t.Fatalf("gray (%d) not fewer transitions than raw (%d)", res.EncT, res.RawT)
	}
	if res.SavingsPct < 30 {
		t.Fatalf("gray savings only %.1f%% on sequential fetch", res.SavingsPct)
	}
}

// TestBusInvertOnRealTraffic captures the write-data wire values of a
// layer-0 run and evaluates bus-invert coding on them — the ablation
// linking this package to the bus models.
func TestBusInvertOnRealTraffic(t *testing.T) {
	lay := core.Layout{Fast: 0, Slow: 0x10000}
	k := sim.New(0)
	b := rtlbus.New(k, ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	))
	var wdata []uint64
	k.At(sim.Post, "cap", func(uint64) { wdata = append(wdata, b.Wires().Get(ecbus.SigWData)) })
	m, _ := core.RunScript(k, b, core.RandomCorpus(3, 400, lay), 1_000_000)
	if !m.Done() {
		t.Fatal("capture run hung")
	}
	price := gatepower.NewEstimator(gatepower.DefaultConfig()).Char().PerTransitionJ[ecbus.SigWData]
	res := Evaluate(wdata, &BusInvert{Bits: 32}, 32, price)
	t.Logf("%s", res)
	if res.EncT >= res.RawT {
		t.Fatalf("bus-invert did not help on random write data: %d vs %d", res.EncT, res.RawT)
	}
	if res.EncE >= res.RawE {
		t.Fatal("no energy savings")
	}
}

func TestEvaluateEmptySequence(t *testing.T) {
	res := Evaluate(nil, &BusInvert{Bits: 32}, 32, 1e-13)
	if res.RawT != 0 || res.EncT != 0 || res.SavingsPct != 0 {
		t.Fatalf("empty sequence result: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}

func TestEncoderNames(t *testing.T) {
	for _, e := range []Encoder{&Raw{Bits: 32}, &BusInvert{Bits: 32}, &Gray{Bits: 34}} {
		if e.Name() == "" || e.Width() <= 0 {
			t.Fatalf("bad encoder metadata: %q %d", e.Name(), e.Width())
		}
	}
}
