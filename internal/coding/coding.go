// Package coding implements the low-power bus encodings of the paper's
// related work ([5] Benini et al., "Architectures and Synthesis
// Algorithms for Power-Efficient Bus Interfaces"): bus-invert coding for
// data buses and Gray coding for (mostly sequential) address buses. The
// paper surveys these as the classic alternative to its own approach
// ("most of the proposed bus optimization techniques are based on
// varying the bus width and bus coding scheme"); this package lets the
// repository quantify them as an ablation on the same characterized
// energy model the hierarchical bus models use.
package coding

import (
	"fmt"

	"repro/internal/logic"
)

// Encoder maps a word sequence to the wire values actually driven,
// possibly keeping state and possibly adding extra wires.
type Encoder interface {
	// Encode returns the wire value for the next word. The returned
	// value includes any extra control wires above bit Width()-1.
	Encode(word uint64) uint64
	// Width returns the encoded wire count (data wires + extra wires).
	Width() int
	// Name identifies the scheme in reports.
	Name() string
	// Reset restores the power-on state.
	Reset()
}

// Raw is the identity encoding (the baseline).
type Raw struct {
	Bits int
}

// Encode implements Encoder.
func (r *Raw) Encode(w uint64) uint64 { return w & logic.Mask(r.Bits) }

// Width implements Encoder.
func (r *Raw) Width() int { return r.Bits }

// Name implements Encoder.
func (r *Raw) Name() string { return fmt.Sprintf("raw-%d", r.Bits) }

// Reset implements Encoder.
func (r *Raw) Reset() {}

// BusInvert implements bus-invert coding: when more than half the data
// wires would toggle, the inverted word is driven instead and one extra
// invert line signals it. Per-step transitions are bounded by
// ⌈Bits/2⌉ + 1.
type BusInvert struct {
	Bits int

	prev uint64 // previous wire state including the invert line
}

// Encode implements Encoder.
func (b *BusInvert) Encode(w uint64) uint64 {
	w &= logic.Mask(b.Bits)
	prevData := b.prev & logic.Mask(b.Bits)
	prevInv := b.prev >> uint(b.Bits) & 1

	plain := logic.Hamming(prevData, w, b.Bits) + int(prevInv^0) // invert line falls if set
	invW := ^w & logic.Mask(b.Bits)
	inverted := logic.Hamming(prevData, invW, b.Bits) + int(prevInv^1)

	var wires uint64
	if inverted < plain {
		wires = invW | 1<<uint(b.Bits)
	} else {
		wires = w
	}
	b.prev = wires
	return wires
}

// Width implements Encoder (data wires + invert line).
func (b *BusInvert) Width() int { return b.Bits + 1 }

// Name implements Encoder.
func (b *BusInvert) Name() string { return fmt.Sprintf("bus-invert-%d", b.Bits) }

// Reset implements Encoder.
func (b *BusInvert) Reset() { b.prev = 0 }

// Gray encodes each word as its reflected-binary Gray code: consecutive
// integers differ in exactly one wire, ideal for sequential instruction
// addresses.
type Gray struct {
	Bits int
}

// Encode implements Encoder.
func (g *Gray) Encode(w uint64) uint64 {
	w &= logic.Mask(g.Bits)
	return w ^ (w >> 1)
}

// Width implements Encoder.
func (g *Gray) Width() int { return g.Bits }

// Name implements Encoder.
func (g *Gray) Name() string { return fmt.Sprintf("gray-%d", g.Bits) }

// Reset implements Encoder.
func (g *Gray) Reset() {}

// Transitions counts wire transitions of the raw sequence at the given
// width, starting from the all-zero reset state.
func Transitions(seq []uint64, width int) int {
	prev := uint64(0)
	n := 0
	for _, w := range seq {
		w &= logic.Mask(width)
		n += logic.Hamming(prev, w, width)
		prev = w
	}
	return n
}

// EncodedTransitions counts wire transitions after encoding, including
// any extra control wires.
func EncodedTransitions(seq []uint64, enc Encoder) int {
	enc.Reset()
	prev := uint64(0)
	n := 0
	for _, w := range seq {
		e := enc.Encode(w)
		n += logic.Hamming(prev, e, enc.Width())
		prev = e
	}
	return n
}

// Result is the outcome of one encoding evaluation.
type Result struct {
	Scheme     string
	RawT, EncT int
	SavingsPct float64
	RawE, EncE float64 // energies at the given per-transition price
}

// Evaluate compares raw vs encoded transition counts and energy for one
// sequence, pricing every wire (including extra control wires) at
// perTransitionJ.
func Evaluate(seq []uint64, enc Encoder, bits int, perTransitionJ float64) Result {
	rawT := Transitions(seq, bits)
	encT := EncodedTransitions(seq, enc)
	saving := 0.0
	if rawT > 0 {
		saving = 100 * (1 - float64(encT)/float64(rawT))
	}
	return Result{
		Scheme:     enc.Name(),
		RawT:       rawT,
		EncT:       encT,
		SavingsPct: saving,
		RawE:       float64(rawT) * perTransitionJ,
		EncE:       float64(encT) * perTransitionJ,
	}
}

// String renders the result for reports.
func (r Result) String() string {
	return fmt.Sprintf("%-16s raw %6d -> encoded %6d transitions (%+.1f%% savings, %.2f -> %.2f pJ)",
		r.Scheme, r.RawT, r.EncT, -(-r.SavingsPct), r.RawE*1e12, r.EncE*1e12)
}
