package apdu

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/ecbus"
	"repro/internal/journal"
	"repro/internal/platform"
)

// TestCommandFramingBytes pins the exact wire image of each ISO case —
// the T=0 frames the card reassembles byte by byte.
func TestCommandFramingBytes(t *testing.T) {
	cases := []struct {
		name string
		cmd  Command
		want []byte
	}{
		{"case1 header only", Command{CLA: 0x80, INS: 0xA4, P1: 4},
			[]byte{0x80, 0xA4, 0x04, 0x00}},
		{"case2 Le only", Command{CLA: 0x80, INS: 0xB0, Le: 2},
			[]byte{0x80, 0xB0, 0x00, 0x00, 0x02}},
		{"case3 Lc+data", Command{CLA: 0x80, INS: 0xD0, Data: []byte{0x00, 0x64}},
			[]byte{0x80, 0xD0, 0x00, 0x00, 0x02, 0x00, 0x64}},
		{"case4 Lc+data+Le", Command{CLA: 0x80, INS: 0x20, Data: []byte{0x31, 0x32}, Le: 1},
			[]byte{0x80, 0x20, 0x00, 0x00, 0x02, 0x31, 0x32, 0x01}},
		{"select wallet", Command{CLA: ClaWallet, INS: InsSelect, Data: WalletAID},
			[]byte{0x80, 0xA4, 0x00, 0x00, 0x05, 0xA0, 0x00, 0x00, 0x07, 0x57}},
		{"select auth", Command{CLA: ClaWallet, INS: InsSelect, Data: AuthAID},
			[]byte{0x80, 0xA4, 0x00, 0x00, 0x05, 0xA0, 0x00, 0x00, 0x07, 0x42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.cmd.Bytes()
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("frame % X, want % X", got, tc.want)
			}
			back, err := Parse(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back.Bytes(), tc.want) {
				t.Fatalf("re-serialized % X, want % X", back.Bytes(), tc.want)
			}
		})
	}
}

// TestResponseFramingBytes pins the response wire image: data then
// SW1 SW2, big-endian.
func TestResponseFramingBytes(t *testing.T) {
	cases := []struct {
		name string
		resp Response
		want []byte
	}{
		{"status only", Response{SW: SWSuccess}, []byte{0x90, 0x00}},
		{"balance", Response{Data: []byte{0x03, 0xE8}, SW: SWSuccess}, []byte{0x03, 0xE8, 0x90, 0x00}},
		{"wrong pin 2 left", Response{SW: SWAuthFailed | 2}, []byte{0x63, 0xC2}},
		{"blocked", Response{SW: SWAuthBlocked}, []byte{0x69, 0x83}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.resp.Bytes()
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("frame % X, want % X", got, tc.want)
			}
			back, err := ParseResponse(got)
			if err != nil {
				t.Fatal(err)
			}
			if back.SW != tc.resp.SW || !bytes.Equal(back.Data, tc.resp.Data) {
				t.Fatalf("round trip %+v, want %+v", back, tc.resp)
			}
		})
	}
}

func authCard(t *testing.T) (*Card, *platform.Platform) {
	t.Helper()
	p := platform.New(platform.Config{Layer: platform.Layer1, Energy: true})
	if err := p.EEPROM.LoadWords(0, []uint32{1000}); err != nil {
		t.Fatal(err)
	}
	return NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase), p
}

func handle(t *testing.T, c *Card, cmd Command) Response {
	t.Helper()
	r, err := c.Handle(cmd)
	if err != nil {
		t.Fatalf("%v: %v", cmd, err)
	}
	return r
}

func TestAuthAppletVerify(t *testing.T) {
	c, _ := authCard(t)
	sel := Command{CLA: ClaWallet, INS: InsSelect, Data: AuthAID}
	if r := handle(t, c, sel); !r.OK() {
		t.Fatalf("select auth: SW=%04X", r.SW)
	}
	// Factory-fresh counter reads the full budget.
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsTries, Le: 1}); !r.OK() || r.Data[0] != AuthMaxTries {
		t.Fatalf("fresh tries = %v", r)
	}
	// Two wrong PINs burn two tries.
	wrong := Command{CLA: ClaWallet, INS: InsVerify, Data: []byte{9, 9, 9, 9}}
	if r := handle(t, c, wrong); r.SW != SWAuthFailed|2 {
		t.Fatalf("first failure SW=%04X", r.SW)
	}
	if r := handle(t, c, wrong); r.SW != SWAuthFailed|1 {
		t.Fatalf("second failure SW=%04X", r.SW)
	}
	// The right PIN restores the budget.
	right := Command{CLA: ClaWallet, INS: InsVerify, Data: append([]byte{}, DefaultPIN...)}
	if r := handle(t, c, right); !r.OK() {
		t.Fatalf("verify SW=%04X", r.SW)
	}
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsTries, Le: 1}); r.Data[0] != AuthMaxTries {
		t.Fatalf("tries after success = %d", r.Data[0])
	}
	// Draining the budget blocks the applet, persistently.
	for i := 0; i < AuthMaxTries; i++ {
		handle(t, c, wrong)
	}
	if r := handle(t, c, right); r.SW != SWAuthBlocked {
		t.Fatalf("blocked applet accepted the PIN: SW=%04X", r.SW)
	}
}

func TestMultiAppletDispatch(t *testing.T) {
	c, _ := authCard(t)
	// Wallet state and auth state live behind one SELECT dispatcher.
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsSelect, Data: WalletAID}); !r.OK() {
		t.Fatalf("select wallet: %04X", r.SW)
	}
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsDebit, Data: []byte{0x00, 0x64}}); !r.OK() {
		t.Fatalf("debit: %04X", r.SW)
	}
	// Wallet instructions are rejected while auth is selected …
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsSelect, Data: AuthAID}); !r.OK() {
		t.Fatalf("select auth: %04X", r.SW)
	}
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsBalance, Le: 2}); r.SW != SWInsNotSupported {
		t.Fatalf("balance on auth applet: %04X", r.SW)
	}
	// … and auth instructions while the wallet is.
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsSelect, Data: WalletAID}); !r.OK() {
		t.Fatalf("reselect wallet: %04X", r.SW)
	}
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsVerify, Data: []byte{1}}); r.SW != SWInsNotSupported {
		t.Fatalf("verify on wallet applet: %04X", r.SW)
	}
	if r := handle(t, c, Command{CLA: ClaWallet, INS: InsBalance, Le: 2}); !r.OK() ||
		uint16(r.Data[0])<<8|uint16(r.Data[1]) != 900 {
		t.Fatalf("wallet state lost across selects: %v", r)
	}
}

// TestJournaledSessionEquivalence: journaling changes the traffic, not
// the protocol — responses are identical, the journal's records and
// markers add EEPROM programming, and the committed map mirrors the
// final persistent state.
func TestJournaledSessionEquivalence(t *testing.T) {
	run := func(strategy string) ([]Response, *platform.Platform, *Card) {
		c, p := authCard(t)
		s, ok := journal.Named(strategy)
		if !ok {
			t.Fatalf("bad strategy %q", strategy)
		}
		c.UseJournal(s)
		resps, err := c.Session(p.UART, walletSession())
		if err != nil {
			t.Fatal(err)
		}
		return resps, p, c
	}
	bare, barePlat, _ := run("none")
	for _, strategy := range []string{"word-eager", "word-lazy", "page-eager", "page-lazy"} {
		resps, p, c := run(strategy)
		if len(resps) != len(bare) {
			t.Fatalf("%s: %d responses, want %d", strategy, len(resps), len(bare))
		}
		for i := range resps {
			if resps[i].SW != bare[i].SW || !bytes.Equal(resps[i].Data, bare[i].Data) {
				t.Fatalf("%s: response %d differs: %v vs %v", strategy, i, resps[i], bare[i])
			}
		}
		if p.EEPROM.Programs() <= barePlat.EEPROM.Programs() {
			t.Fatalf("%s: journaling added no programming (%d vs %d)",
				strategy, p.EEPROM.Programs(), barePlat.EEPROM.Programs())
		}
		// The committed map is the durable truth: the device words match.
		for addr, want := range c.Committed() {
			if got, _ := p.EEPROM.ReadWord(addr, ecbus.W32); got != want {
				t.Fatalf("%s: committed %#x = %#x, device has %#x", strategy, addr, want, got)
			}
		}
		if len(c.Committed()) == 0 {
			t.Fatalf("%s: nothing committed", strategy)
		}
	}
}

// fakeMonitor latches after n completed transactions.
type fakeMonitor struct {
	c    *Card
	n    uint64
	torn bool
}

func (m *fakeMonitor) Check() bool {
	if m.c.Transactions >= m.n {
		m.torn = true
	}
	return m.torn
}

// TestSessionPowerLoss: a latched monitor surfaces as ErrPowerLost
// from the command in flight; the session returns the completed prefix.
func TestSessionPowerLoss(t *testing.T) {
	c, p := authCard(t)
	s, _ := journal.Named("word-eager")
	c.UseJournal(s)
	mon := &fakeMonitor{c: c, n: 200}
	c.Monitor = mon
	resps, err := c.Session(p.UART, walletSession())
	if !errors.Is(err, journal.ErrPowerLost) {
		t.Fatalf("err = %v, want power lost", err)
	}
	if len(resps) >= len(walletSession()) {
		t.Fatalf("session survived the tear: %d responses", len(resps))
	}
	// Power-up replay restores every committed word on a fresh card
	// sharing the device.
	c2 := NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase)
	c2.UseJournal(s)
	if _, err := c2.PowerUp(p.TotalEnergy, nil); err != nil {
		t.Fatal(err)
	}
	for addr, want := range c.Committed() {
		if got, _ := p.EEPROM.ReadWord(addr, ecbus.W32); got != want {
			t.Fatalf("replay lost %#x: device %#x, committed %#x", addr, got, want)
		}
	}
}
