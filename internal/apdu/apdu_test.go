package apdu

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ecbus"
	"repro/internal/platform"
)

func TestCommandRoundTrip(t *testing.T) {
	cases := []Command{
		{CLA: 0x80, INS: 0xA4, P1: 4, P2: 0},                           // case 1
		{CLA: 0x80, INS: 0xB0, Le: 2},                                  // case 2
		{CLA: 0x80, INS: 0xD0, Data: []byte{1, 2}},                     // case 3
		{CLA: 0x80, INS: 0xC0, P1: 1, Data: []byte{9, 8, 7, 6}, Le: 4}, // case 4
		{CLA: 0x00, INS: 0xA4, P1: 4, P2: 0, Data: append([]byte{}, WalletAID...)},
	}
	for _, c := range cases {
		got, err := Parse(c.Bytes())
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if got.CLA != c.CLA || got.INS != c.INS || got.P1 != c.P1 || got.P2 != c.P2 {
			t.Fatalf("header mismatch: %v vs %v", got, c)
		}
		if !bytes.Equal(got.Data, c.Data) {
			t.Fatalf("data mismatch: %x vs %x", got.Data, c.Data)
		}
		if c.Le > 0 && got.Le != c.Le {
			t.Fatalf("Le mismatch: %d vs %d", got.Le, c.Le)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{0x80, 0xA4},
		{0x80, 0xA4, 0, 0, 5, 1, 2},    // Lc announces 5, only 2
		{0x80, 0xA4, 0, 0, 1, 1, 2, 3}, // 2 trailing bytes
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("parsed invalid frame %x", b)
		}
	}
}

func TestParseLe0Means256(t *testing.T) {
	c, err := Parse([]byte{0x80, 0xB0, 0, 0, 0})
	if err != nil || c.Le != 256 {
		t.Fatalf("Le=0 parsed as %d (%v)", c.Le, err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := func(data []byte, sw uint16) bool {
		r := Response{Data: data, SW: sw}
		back, err := ParseResponse(r.Bytes())
		return err == nil && back.SW == sw && bytes.Equal(back.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseResponse([]byte{0x90}); err == nil {
		t.Fatal("short response parsed")
	}
	if !(Response{SW: SWSuccess}).OK() || (Response{SW: SWWrongLength}).OK() {
		t.Fatal("OK() wrong")
	}
}

// session builds a platform, seeds the EEPROM balance and runs the
// command list.
func session(t *testing.T, layer platform.Layer, cmds []Command) ([]Response, *platform.Platform, *Card) {
	t.Helper()
	p := platform.New(platform.Config{Layer: layer, Energy: true})
	// Seed the balance through the factory-programming backdoor (a bus
	// write would start a programming cycle and count as one).
	if err := p.EEPROM.LoadWords(0, []uint32{1000}); err != nil {
		t.Fatal(err)
	}
	card := NewCard(p.Kernel, p.Bus, platform.UARTBase, platform.EEPROMBase)
	resps, err := card.Session(p.UART, cmds)
	if err != nil {
		t.Fatal(err)
	}
	return resps, p, card
}

func walletSession() []Command {
	return []Command{
		{CLA: ClaWallet, INS: InsSelect, Data: append([]byte{}, WalletAID...)},
		{CLA: ClaWallet, INS: InsBalance, Le: 2},
		{CLA: ClaWallet, INS: InsDebit, Data: []byte{0x00, 0x64}}, // -100
		{CLA: ClaWallet, INS: InsBalance, Le: 2},
		{CLA: ClaWallet, INS: InsCredit, Data: []byte{0x00, 0x32}}, // +50
		{CLA: ClaWallet, INS: InsBalance, Le: 2},
	}
}

func TestWalletSession(t *testing.T) {
	resps, p, _ := session(t, platform.Layer1, walletSession())
	wantBal := []uint16{1000, 900, 950}
	bi := 0
	for i, r := range resps {
		if !r.OK() {
			t.Fatalf("command %d failed: SW=%04X", i, r.SW)
		}
		if len(r.Data) == 2 {
			got := uint16(r.Data[0])<<8 | uint16(r.Data[1])
			if got != wantBal[bi] {
				t.Fatalf("balance %d = %d, want %d", bi, got, wantBal[bi])
			}
			bi++
		}
	}
	if bi != 3 {
		t.Fatalf("saw %d balance responses", bi)
	}
	// The final balance persists in EEPROM.
	if w, _ := p.EEPROM.ReadWord(platform.EEPROMBase, ecbus.W32); w != 950 {
		t.Fatalf("EEPROM balance = %d", w)
	}
	// Each balance update programs two words: balance + tx counter.
	if p.EEPROM.Programs() != 4 {
		t.Fatalf("EEPROM programmed %d times, want 4", p.EEPROM.Programs())
	}
	if p.BusEnergy() <= 0 || p.PeripheralEnergy() <= 0 {
		t.Fatal("session consumed no energy")
	}
}

func TestWalletRejectsOverdraft(t *testing.T) {
	resps, p, _ := session(t, platform.Layer1, []Command{
		{CLA: ClaWallet, INS: InsSelect, Data: append([]byte{}, WalletAID...)},
		{CLA: ClaWallet, INS: InsDebit, Data: []byte{0xFF, 0xFF}}, // > balance
		{CLA: ClaWallet, INS: InsBalance, Le: 2},
	})
	if resps[1].SW != SWConditionsNotMet {
		t.Fatalf("overdraft SW=%04X", resps[1].SW)
	}
	if got := uint16(resps[2].Data[0])<<8 | uint16(resps[2].Data[1]); got != 1000 {
		t.Fatalf("balance changed to %d after rejected debit", got)
	}
	if p.EEPROM.Programs() != 0 {
		t.Fatal("EEPROM written despite rejection")
	}
}

func TestWalletProtocolErrors(t *testing.T) {
	resps, _, _ := session(t, platform.Layer1, []Command{
		{CLA: 0x00, INS: InsBalance},                            // wrong class
		{CLA: ClaWallet, INS: InsBalance, Le: 2},                // not selected
		{CLA: ClaWallet, INS: InsSelect, Data: []byte{1, 2, 3}}, // wrong AID
		{CLA: ClaWallet, INS: InsSelect, Data: append([]byte{}, WalletAID...)},
		{CLA: ClaWallet, INS: InsDebit, Data: []byte{1}}, // wrong length
		{CLA: ClaWallet, INS: 0xEE},                      // unknown INS
	})
	want := []uint16{SWClaNotSupported, SWConditionsNotMet, SWFileNotFound,
		SWSuccess, SWWrongLength, SWInsNotSupported}
	for i, sw := range want {
		if resps[i].SW != sw {
			t.Fatalf("command %d SW=%04X, want %04X", i, resps[i].SW, sw)
		}
	}
}

func TestWalletSessionAcrossLayers(t *testing.T) {
	// The same session must produce identical responses at every layer;
	// layer 2's cycle count may differ, its behaviour may not.
	var first []Response
	for _, layer := range []platform.Layer{platform.Layer0, platform.Layer1, platform.Layer2} {
		resps, _, _ := session(t, layer, walletSession())
		if first == nil {
			first = resps
			continue
		}
		for i := range resps {
			if resps[i].SW != first[i].SW || !bytes.Equal(resps[i].Data, first[i].Data) {
				t.Fatalf("%v: response %d differs", layer, i)
			}
		}
	}
}

func TestSessionEnergyDominatedByEEPROMWrites(t *testing.T) {
	// Two debit-heavy sessions: more debits, more EEPROM programming
	// stalls — visible in cycles.
	cycles := func(debits int) uint64 {
		cmds := []Command{{CLA: ClaWallet, INS: InsSelect, Data: append([]byte{}, WalletAID...)}}
		for i := 0; i < debits; i++ {
			cmds = append(cmds, Command{CLA: ClaWallet, INS: InsDebit, Data: []byte{0, 1}})
		}
		_, p, _ := session(t, platform.Layer1, cmds)
		return p.Kernel.Cycle()
	}
	few, many := cycles(1), cycles(6)
	if many <= few {
		t.Fatalf("6 debits (%d cycles) not slower than 1 (%d)", many, few)
	}
}
