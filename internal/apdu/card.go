package apdu

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/periph"
	"repro/internal/sim"
)

// Card is the card-side wallet application. It performs all its I/O and
// persistence through bus transactions — UART SFRs for the contact
// interface, EEPROM for the balance — so a session's cost is fully
// visible to the platform's energy models. Like the Java Card adapters,
// it is an untimed application model that advances the clocked
// simulation until each transaction completes.
type Card struct {
	k          *sim.Kernel
	bus        core.Initiator
	uartBase   uint64
	eepromBase uint64

	ids      uint64
	selected bool

	// Transactions counts the bus transactions the application issued.
	Transactions uint64
}

// NewCard creates the wallet application over the given bus.
func NewCard(k *sim.Kernel, bus core.Initiator, uartBase, eepromBase uint64) *Card {
	return &Card{k: k, bus: bus, uartBase: uartBase, eepromBase: eepromBase}
}

// run drives one transaction to completion.
func (c *Card) run(kind ecbus.Kind, addr uint64, w ecbus.Width, data uint32) (uint32, error) {
	c.ids++
	tr, err := ecbus.NewSingle(c.ids, kind, addr, w, data)
	if err != nil {
		return 0, err
	}
	c.Transactions++
	for i := 0; i < 1_000_000; i++ {
		st := c.bus.Access(tr)
		if st == ecbus.StateOK {
			return tr.Data[0], nil
		}
		if st == ecbus.StateError {
			return 0, fmt.Errorf("card: bus error at %#x", addr)
		}
		c.k.Step()
	}
	return 0, errors.New("card: transaction never completed")
}

// uartInit enables the UART.
func (c *Card) uartInit() error {
	_, err := c.run(ecbus.Write, c.uartBase+periph.UartCtrl, ecbus.W32, 1)
	return err
}

// recvByte blocks (advancing simulation time) until a byte arrives.
func (c *Card) recvByte() (byte, error) {
	for i := 0; i < 1_000_000; i++ {
		st, err := c.run(ecbus.Read, c.uartBase+periph.UartStatus, ecbus.W32, 0)
		if err != nil {
			return 0, err
		}
		if st&4 != 0 { // rx available
			v, err := c.run(ecbus.Read, c.uartBase+periph.UartData, ecbus.W32, 0)
			return byte(v), err
		}
		c.k.Step()
	}
	return 0, errors.New("card: no byte received")
}

// sendByte writes one response byte, respecting the TX FIFO.
func (c *Card) sendByte(b byte) error {
	for i := 0; i < 1_000_000; i++ {
		st, err := c.run(ecbus.Read, c.uartBase+periph.UartStatus, ecbus.W32, 0)
		if err != nil {
			return err
		}
		if st&2 == 0 { // not full
			_, err := c.run(ecbus.Write, c.uartBase+periph.UartData, ecbus.W32, uint32(b))
			return err
		}
		c.k.Step()
	}
	return errors.New("card: tx fifo never drained")
}

// balance reads the persistent balance word from EEPROM.
func (c *Card) balance() (uint32, error) {
	return c.run(ecbus.Read, c.eepromBase, ecbus.W32, 0)
}

// setBalance programs the balance into EEPROM (self-timed write).
func (c *Card) setBalance(v uint32) error {
	_, err := c.run(ecbus.Write, c.eepromBase, ecbus.W32, v)
	return err
}

// Handle executes one command APDU against the wallet state.
func (c *Card) Handle(cmd Command) Response {
	if cmd.CLA != ClaWallet {
		return Response{SW: SWClaNotSupported}
	}
	switch cmd.INS {
	case InsSelect:
		if len(cmd.Data) != len(WalletAID) {
			return Response{SW: SWFileNotFound}
		}
		for i, b := range WalletAID {
			if cmd.Data[i] != b {
				return Response{SW: SWFileNotFound}
			}
		}
		c.selected = true
		return Response{SW: SWSuccess}
	case InsBalance:
		if !c.selected {
			return Response{SW: SWConditionsNotMet}
		}
		bal, err := c.balance()
		if err != nil {
			return Response{SW: SWConditionsNotMet}
		}
		return Response{Data: []byte{byte(bal >> 8), byte(bal)}, SW: SWSuccess}
	case InsDebit, InsCredit:
		if !c.selected {
			return Response{SW: SWConditionsNotMet}
		}
		if len(cmd.Data) != 2 {
			return Response{SW: SWWrongLength}
		}
		amount := uint32(cmd.Data[0])<<8 | uint32(cmd.Data[1])
		bal, err := c.balance()
		if err != nil {
			return Response{SW: SWConditionsNotMet}
		}
		if cmd.INS == InsDebit {
			if bal < amount {
				return Response{SW: SWConditionsNotMet}
			}
			bal -= amount
		} else {
			bal += amount
		}
		if err := c.setBalance(bal); err != nil {
			return Response{SW: SWConditionsNotMet}
		}
		return Response{SW: SWSuccess}
	default:
		return Response{SW: SWInsNotSupported}
	}
}

// injector delivers terminal bytes into the card's UART; satisfied by
// *periph.UART.
type injector interface {
	InjectRx(p []byte)
}

// Session runs a sequence of terminal commands over the UART against
// the card and returns the responses. The terminal injects each command
// into the UART receiver; the card reads it byte by byte over the bus
// (T=0 style: 4-byte header, then Lc and data as announced), executes
// it, and writes the response back through the transmitter.
func (c *Card) Session(uart injector, cmds []Command) ([]Response, error) {
	if err := c.uartInit(); err != nil {
		return nil, err
	}
	var out []Response
	for _, cmd := range cmds {
		uart.InjectRx(cmd.Bytes())

		// Read the header.
		var hdr [4]byte
		for i := range hdr {
			b, err := c.recvByte()
			if err != nil {
				return nil, err
			}
			hdr[i] = b
		}
		raw := hdr[:]
		// Read body as announced (mirrors Parse's case handling; the
		// terminal model sends well-formed frames).
		if len(cmd.Data) > 0 || cmd.Le > 0 {
			rest := len(cmd.Bytes()) - 4
			for i := 0; i < rest; i++ {
				b, err := c.recvByte()
				if err != nil {
					return nil, err
				}
				raw = append(raw, b)
			}
		}
		parsed, err := Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("card: reassembled frame: %w", err)
		}
		resp := c.Handle(parsed)
		for _, b := range resp.Bytes() {
			if err := c.sendByte(b); err != nil {
				return nil, err
			}
		}
		out = append(out, resp)
	}
	return out, nil
}
