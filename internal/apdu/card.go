package apdu

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/journal"
	"repro/internal/periph"
	"repro/internal/sim"
)

// PowerMonitor reports whether the card's supply has been cut — the
// tear injector's view into the application. The card polls it after
// every completed bus transaction, the same observation points the
// exploration harness uses, so a session tears at a deterministic
// transaction boundary.
type PowerMonitor interface {
	Check() bool
}

// Persistent data layout, as byte offsets from the EEPROM base (all
// inside the journal's data window).
const (
	offBalance   = 0x00 // wallet balance word
	offTxCount   = 0x04 // wallet transaction counter word
	offAuthTries = 0x10 // auth applet's tagged try counter

	// authTriesTag marks an initialized try counter; a word without the
	// tag (factory-fresh EEPROM) reads as AuthMaxTries remaining.
	authTriesTag = 0xA500

	// AuthMaxTries is the PIN retry limit.
	AuthMaxTries = 3
)

// DefaultPIN is the reference PIN the auth applet verifies against
// (personalized at "manufacture"; the model keeps it in code).
var DefaultPIN = []byte{0x31, 0x32, 0x33, 0x34}

// DefaultJournalRegion places the transaction journal inside the
// card's EEPROM: the first 0x100 bytes are the journaled data window
// (balance, counters), the following 0x300 bytes the journal area.
func DefaultJournalRegion(eepromBase uint64) journal.Region {
	return journal.Region{
		DataBase:    eepromBase,
		JournalBase: eepromBase + 0x100,
		JournalSize: 0x300,
	}
}

// Selected applet.
type applet int

const (
	selNone applet = iota
	selWallet
	selAuth
)

// Card is the card-side application: a wallet applet and a PIN-auth
// applet behind one APDU dispatcher. It performs all its I/O and
// persistence through bus transactions — UART SFRs for the contact
// interface, EEPROM for the balance and counters — so a session's cost
// is fully visible to the platform's energy models. Like the Java Card
// adapters, it is an untimed application model that advances the
// clocked simulation until each transaction completes.
type Card struct {
	k          *sim.Kernel
	bus        core.Initiator
	uartBase   uint64
	eepromBase uint64

	ids uint64
	sel applet

	// Monitor, when set, is the card-tear power monitor; a latched cut
	// surfaces as journal.ErrPowerLost from the access in flight.
	Monitor PowerMonitor

	strat  journal.Strategy
	region journal.Region
	jw     *journal.Writer

	// Transactions counts the bus transactions the application issued.
	Transactions uint64
}

// NewCard creates the card application over the given bus.
func NewCard(k *sim.Kernel, bus core.Initiator, uartBase, eepromBase uint64) *Card {
	return &Card{k: k, bus: bus, uartBase: uartBase, eepromBase: eepromBase,
		region: DefaultJournalRegion(eepromBase)}
}

// UseJournal routes the card's persistent writes through a transaction
// journal in DefaultJournalRegion. An Empty strategy restores direct
// in-place writes.
func (c *Card) UseJournal(s journal.Strategy) {
	c.strat = s
	if s.Empty() {
		c.jw = nil
		return
	}
	c.jw = journal.NewWriter(s, c.region, c)
}

// Journal exposes the card's journal writer (nil when unjournaled) so
// session runners can attach Obs/OnCommit observers and read Stats.
func (c *Card) Journal() *journal.Writer { return c.jw }

// Committed returns the journaled words durable so far, or nil when
// the card writes in place.
func (c *Card) Committed() map[uint64]uint32 {
	if c.jw == nil {
		return nil
	}
	return c.jw.Committed()
}

// PowerUp replays the journal after a power loss: committed frames are
// re-applied in place, a torn tail is discarded. energy, when non-nil,
// samples the platform's running energy meter for the per-phase
// recovery attribution; obs feeds the persistence checker. Unjournaled
// cards have nothing to replay.
func (c *Card) PowerUp(energy func() float64, obs func(journal.Event)) (journal.Recovery, error) {
	if c.strat.Empty() {
		return journal.Recovery{}, nil
	}
	return journal.Replay(c.strat, c.region, c, energy, obs)
}

// run drives one transaction to completion.
func (c *Card) run(kind ecbus.Kind, addr uint64, w ecbus.Width, data uint32) (uint32, error) {
	c.ids++
	tr, err := ecbus.NewSingle(c.ids, kind, addr, w, data)
	if err != nil {
		return 0, err
	}
	c.Transactions++
	for i := 0; i < 1_000_000; i++ {
		st := c.bus.Access(tr)
		if st == ecbus.StateOK {
			if c.Monitor != nil && c.Monitor.Check() {
				return 0, journal.ErrPowerLost
			}
			return tr.Data[0], nil
		}
		if st == ecbus.StateError {
			return 0, fmt.Errorf("card: bus error at %#x", addr)
		}
		c.k.Step()
	}
	return 0, errors.New("card: transaction never completed")
}

// ReadWord implements journal.BusRW: the journal's traffic is ordinary
// bus transactions of this card.
func (c *Card) ReadWord(addr uint64) (uint32, error) {
	return c.run(ecbus.Read, addr, ecbus.W32, 0)
}

// WriteWord implements journal.BusRW.
func (c *Card) WriteWord(addr uint64, data uint32) error {
	_, err := c.run(ecbus.Write, addr, ecbus.W32, data)
	return err
}

// uartInit enables the UART.
func (c *Card) uartInit() error {
	_, err := c.run(ecbus.Write, c.uartBase+periph.UartCtrl, ecbus.W32, 1)
	return err
}

// recvByte blocks (advancing simulation time) until a byte arrives.
func (c *Card) recvByte() (byte, error) {
	for i := 0; i < 1_000_000; i++ {
		st, err := c.run(ecbus.Read, c.uartBase+periph.UartStatus, ecbus.W32, 0)
		if err != nil {
			return 0, err
		}
		if st&4 != 0 { // rx available
			v, err := c.run(ecbus.Read, c.uartBase+periph.UartData, ecbus.W32, 0)
			return byte(v), err
		}
		c.k.Step()
	}
	return 0, errors.New("card: no byte received")
}

// sendByte writes one response byte, respecting the TX FIFO.
func (c *Card) sendByte(b byte) error {
	for i := 0; i < 1_000_000; i++ {
		st, err := c.run(ecbus.Read, c.uartBase+periph.UartStatus, ecbus.W32, 0)
		if err != nil {
			return err
		}
		if st&2 == 0 { // not full
			_, err := c.run(ecbus.Write, c.uartBase+periph.UartData, ecbus.W32, uint32(b))
			return err
		}
		c.k.Step()
	}
	return errors.New("card: tx fifo never drained")
}

// readPersist reads one persistent word.
func (c *Card) readPersist(off uint64) (uint32, error) {
	return c.run(ecbus.Read, c.eepromBase+off, ecbus.W32, 0)
}

// writePersist updates persistent words as one transaction: journaled
// cards journal it (records, marker, in place), bare cards write in
// place directly — fully exposed to tearing, which is the comparison
// the journaling experiments measure.
func (c *Card) writePersist(entries []journal.Entry) error {
	if c.jw == nil {
		for _, e := range entries {
			if err := c.WriteWord(e.Addr, e.Data); err != nil {
				return err
			}
		}
		return nil
	}
	c.jw.Begin()
	for _, e := range entries {
		if err := c.jw.Write(e.Addr, e.Data); err != nil {
			return err
		}
	}
	return c.jw.Commit()
}

// fail maps an access error to a response: power loss propagates (the
// session is over), everything else is a conditions-not-met status.
func fail(err error) (Response, error) {
	if errors.Is(err, journal.ErrPowerLost) {
		return Response{}, err
	}
	return Response{SW: SWConditionsNotMet}, nil
}

// Handle executes one command APDU against the card state. The error
// is non-nil only for power loss (journal.ErrPowerLost): the supply is
// gone mid-command and no response leaves the card.
func (c *Card) Handle(cmd Command) (Response, error) {
	if cmd.CLA != ClaWallet {
		return Response{SW: SWClaNotSupported}, nil
	}
	if cmd.INS == InsSelect {
		switch {
		case bytes.Equal(cmd.Data, WalletAID):
			c.sel = selWallet
		case bytes.Equal(cmd.Data, AuthAID):
			c.sel = selAuth
		default:
			return Response{SW: SWFileNotFound}, nil
		}
		return Response{SW: SWSuccess}, nil
	}
	switch c.sel {
	case selWallet:
		return c.handleWallet(cmd)
	case selAuth:
		return c.handleAuth(cmd)
	default:
		return Response{SW: SWConditionsNotMet}, nil
	}
}

// handleWallet serves the wallet applet: balance, debit, credit. Every
// balance update also bumps the transaction counter — a two-word
// persistent update, atomic only when journaled.
func (c *Card) handleWallet(cmd Command) (Response, error) {
	switch cmd.INS {
	case InsBalance:
		bal, err := c.readPersist(offBalance)
		if err != nil {
			return fail(err)
		}
		return Response{Data: []byte{byte(bal >> 8), byte(bal)}, SW: SWSuccess}, nil
	case InsDebit, InsCredit:
		if len(cmd.Data) != 2 {
			return Response{SW: SWWrongLength}, nil
		}
		amount := uint32(cmd.Data[0])<<8 | uint32(cmd.Data[1])
		bal, err := c.readPersist(offBalance)
		if err != nil {
			return fail(err)
		}
		if cmd.INS == InsDebit {
			if bal < amount {
				return Response{SW: SWConditionsNotMet}, nil
			}
			bal -= amount
		} else {
			bal += amount
		}
		count, err := c.readPersist(offTxCount)
		if err != nil {
			return fail(err)
		}
		err = c.writePersist([]journal.Entry{
			{Addr: c.eepromBase + offBalance, Data: bal},
			{Addr: c.eepromBase + offTxCount, Data: count + 1},
		})
		if err != nil {
			return fail(err)
		}
		return Response{SW: SWSuccess}, nil
	default:
		return Response{SW: SWInsNotSupported}, nil
	}
}

// tries decodes the persistent try counter; an untagged word is a
// factory-fresh counter with the full retry budget.
func (c *Card) tries() (uint32, error) {
	w, err := c.readPersist(offAuthTries)
	if err != nil {
		return 0, err
	}
	if w>>8 != authTriesTag>>8 {
		return AuthMaxTries, nil
	}
	return w & 0xFF, nil
}

// setTries persists the try counter (tagged, single-word transaction).
func (c *Card) setTries(n uint32) error {
	return c.writePersist([]journal.Entry{
		{Addr: c.eepromBase + offAuthTries, Data: authTriesTag | (n & 0xFF)},
	})
}

// handleAuth serves the PIN applet: VERIFY burns a try on a wrong PIN
// (persisted before the comparison result leaves the card, so tearing
// the response cannot refund the try) and restores the budget on
// success; a drained budget blocks the applet.
func (c *Card) handleAuth(cmd Command) (Response, error) {
	switch cmd.INS {
	case InsVerify:
		n, err := c.tries()
		if err != nil {
			return fail(err)
		}
		if n == 0 {
			return Response{SW: SWAuthBlocked}, nil
		}
		if bytes.Equal(cmd.Data, DefaultPIN) {
			if err := c.setTries(AuthMaxTries); err != nil {
				return fail(err)
			}
			return Response{SW: SWSuccess}, nil
		}
		n--
		if err := c.setTries(n); err != nil {
			return fail(err)
		}
		if n == 0 {
			return Response{SW: SWAuthBlocked}, nil
		}
		return Response{SW: SWAuthFailed | uint16(n&0xF)}, nil
	case InsTries:
		n, err := c.tries()
		if err != nil {
			return fail(err)
		}
		return Response{Data: []byte{byte(n)}, SW: SWSuccess}, nil
	default:
		return Response{SW: SWInsNotSupported}, nil
	}
}

// injector delivers terminal bytes into the card's UART; satisfied by
// *periph.UART.
type injector interface {
	InjectRx(p []byte)
}

// Session runs a sequence of terminal commands over the UART against
// the card and returns the responses. The terminal injects each command
// into the UART receiver; the card reads it byte by byte over the bus
// (T=0 style: 4-byte header, then Lc and data as announced), executes
// it, and writes the response back through the transmitter. A power
// loss (card tear) ends the session early: the responses completed so
// far return alongside journal.ErrPowerLost.
func (c *Card) Session(uart injector, cmds []Command) ([]Response, error) {
	if err := c.uartInit(); err != nil {
		return nil, err
	}
	var out []Response
	for _, cmd := range cmds {
		uart.InjectRx(cmd.Bytes())

		// Read the header.
		var hdr [4]byte
		for i := range hdr {
			b, err := c.recvByte()
			if err != nil {
				return out, err
			}
			hdr[i] = b
		}
		raw := hdr[:]
		// Read body as announced (mirrors Parse's case handling; the
		// terminal model sends well-formed frames).
		if len(cmd.Data) > 0 || cmd.Le > 0 {
			rest := len(cmd.Bytes()) - 4
			for i := 0; i < rest; i++ {
				b, err := c.recvByte()
				if err != nil {
					return out, err
				}
				raw = append(raw, b)
			}
		}
		parsed, err := Parse(raw)
		if err != nil {
			return out, fmt.Errorf("card: reassembled frame: %w", err)
		}
		resp, err := c.Handle(parsed)
		if err != nil {
			return out, err
		}
		for _, b := range resp.Bytes() {
			if err := c.sendByte(b); err != nil {
				return out, err
			}
		}
		out = append(out, resp)
	}
	return out, nil
}
