// Package apdu implements the smart card's command interface: ISO
// 7816-4 style APDUs (the protocol the paper's card speaks over its
// UART to the terminal) and a wallet card application that serves them
// through the platform's bus — UART special function registers for the
// I/O, EEPROM for persistence — so a complete terminal↔card session can
// be simulated and its energy accounted at any abstraction layer.
package apdu

import (
	"errors"
	"fmt"
)

// Status words (SW1SW2).
const (
	SWSuccess          = 0x9000
	SWWrongLength      = 0x6700
	SWConditionsNotMet = 0x6985
	SWFileNotFound     = 0x6A82
	SWInsNotSupported  = 0x6D00
	SWClaNotSupported  = 0x6E00
)

// Command is a command APDU (cases 1-4 supported: header, optional
// command data, optional expected length).
type Command struct {
	CLA, INS, P1, P2 byte
	Data             []byte // Lc bytes
	Le               int    // expected response data length; 0 = none
}

// Bytes serializes the command (short Lc/Le form).
func (c Command) Bytes() []byte {
	out := []byte{c.CLA, c.INS, c.P1, c.P2}
	if len(c.Data) > 0 {
		out = append(out, byte(len(c.Data)))
		out = append(out, c.Data...)
	}
	if c.Le > 0 {
		out = append(out, byte(c.Le))
	}
	return out
}

// String renders the command header for diagnostics.
func (c Command) String() string {
	return fmt.Sprintf("APDU %02X %02X %02X %02X Lc=%d Le=%d", c.CLA, c.INS, c.P1, c.P2, len(c.Data), c.Le)
}

// errTruncated reports a short APDU.
var errTruncated = errors.New("apdu: truncated command")

// Parse decodes a command APDU. Ambiguity between case 2 (Le only) and
// case 3 (Lc+data) follows ISO: a single trailing byte after the header
// is Le; otherwise the byte is Lc and must be followed by exactly Lc
// data bytes, optionally plus one Le byte.
func Parse(b []byte) (Command, error) {
	if len(b) < 4 {
		return Command{}, errTruncated
	}
	c := Command{CLA: b[0], INS: b[1], P1: b[2], P2: b[3]}
	rest := b[4:]
	switch {
	case len(rest) == 0: // case 1
		return c, nil
	case len(rest) == 1: // case 2
		c.Le = int(rest[0])
		if c.Le == 0 {
			c.Le = 256
		}
		return c, nil
	default: // case 3 or 4
		lc := int(rest[0])
		if len(rest) < 1+lc {
			return Command{}, errTruncated
		}
		c.Data = append([]byte(nil), rest[1:1+lc]...)
		tail := rest[1+lc:]
		switch len(tail) {
		case 0:
			return c, nil
		case 1:
			c.Le = int(tail[0])
			if c.Le == 0 {
				c.Le = 256
			}
			return c, nil
		default:
			return Command{}, fmt.Errorf("apdu: %d trailing bytes", len(tail))
		}
	}
}

// Response is a response APDU: optional data plus the status word.
type Response struct {
	Data []byte
	SW   uint16
}

// Bytes serializes the response.
func (r Response) Bytes() []byte {
	out := append([]byte(nil), r.Data...)
	return append(out, byte(r.SW>>8), byte(r.SW))
}

// ParseResponse decodes a response APDU.
func ParseResponse(b []byte) (Response, error) {
	if len(b) < 2 {
		return Response{}, errors.New("apdu: truncated response")
	}
	return Response{
		Data: append([]byte(nil), b[:len(b)-2]...),
		SW:   uint16(b[len(b)-2])<<8 | uint16(b[len(b)-1]),
	}, nil
}

// OK reports whether the status word is SWSuccess.
func (r Response) OK() bool { return r.SW == SWSuccess }

// Wallet applet instruction set (CLA 0x80).
const (
	ClaWallet  = 0x80
	InsSelect  = 0xA4
	InsBalance = 0xB0
	InsDebit   = 0xD0
	InsCredit  = 0xC0
)

// Auth applet instruction set (same class; SELECT switches applets).
const (
	InsVerify = 0x20 // VERIFY: compare the presented PIN, burn a try on mismatch
	InsTries  = 0xCA // GET DATA: remaining PIN tries (1 data byte)
)

// Auth applet status words.
const (
	SWAuthFailed  = 0x63C0 // wrong PIN; low nibble carries the remaining tries
	SWAuthBlocked = 0x6983 // retry budget exhausted, applet blocked
)

// WalletAID is the wallet applet identifier SELECT expects.
var WalletAID = []byte{0xA0, 0x00, 0x00, 0x07, 0x57}

// AuthAID is the PIN-auth applet identifier.
var AuthAID = []byte{0xA0, 0x00, 0x00, 0x07, 0x42}
