// Package crypto provides the cryptographic coprocessor of the
// smart-card platform. The paper's introduction motivates two power
// concerns for such cores: staying inside the supply budget of
// contact-less operation, and resistance against power analysis (SPA /
// DPA). This package supplies both sides of that story: a DES-like
// Feistel block-cipher engine exposed as an EC bus slave, and a
// per-cycle power-leakage trace following the classic Hamming-weight
// leakage model, which package analysis attacks with difference-of-means
// DPA.
//
// The cipher is a 16-round Feistel network on 64-bit blocks with 32-bit
// round keys — structurally DES-shaped (expansion omitted, one 4-bit
// S-box) so that round-1 subkey nibbles are recoverable by textbook DPA,
// while remaining compact and dependency-free. It is NOT a secure
// cipher; it is the reproducible stand-in for the proprietary
// coprocessor of the paper's platform.
package crypto

import (
	"repro/internal/ecbus"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Rounds is the number of Feistel rounds.
const Rounds = 16

// CyclesPerRound is the engine latency per round.
const CyclesPerRound = 2

// sbox4 is a 4-bit S-box (the nonlinear element the DPA attack targets).
var sbox4 = [16]uint32{0xE, 0x4, 0xD, 0x1, 0x2, 0xF, 0xB, 0x8, 0x3, 0xA, 0x6, 0xC, 0x5, 0x9, 0x0, 0x7}

// Sbox exposes the S-box for power-analysis prediction models (package
// analysis guesses key nibbles by predicting S-box output bits).
func Sbox(x uint32) uint32 { return sbox4[x&0xF] }

// F is the Feistel round function: key mix, nibble-wise S-box
// substitution, diffusion rotate.
func F(r, k uint32) uint32 {
	x := r ^ k
	var y uint32
	for i := 0; i < 8; i++ {
		y |= sbox4[(x>>(4*i))&0xF] << (4 * i)
	}
	return y<<11 | y>>21
}

// Subkey returns the 32-bit round key of round i (0-based) for a 64-bit
// key: a rotating key schedule.
func Subkey(key uint64, i int) uint32 {
	rot := uint(7*i+1) % 64
	return uint32(key<<rot | key>>(64-rot))
}

// Encrypt runs the forward cipher on one 64-bit block.
func Encrypt(key, block uint64) uint64 {
	l, r := uint32(block>>32), uint32(block)
	for i := 0; i < Rounds; i++ {
		l, r = r, l^F(r, Subkey(key, i))
	}
	// Final swap-less output, as in DES pre-output.
	return uint64(r)<<32 | uint64(l)
}

// Decrypt inverts Encrypt.
func Decrypt(key, block uint64) uint64 {
	r, l := uint32(block>>32), uint32(block)
	for i := Rounds - 1; i >= 0; i-- {
		l, r = r^F(l, Subkey(key, i)), l
	}
	return uint64(l)<<32 | uint64(r)
}

// SFR byte offsets of the coprocessor register file.
const (
	RegKey0   = 0x00
	RegKey1   = 0x04
	RegData0  = 0x08
	RegData1  = 0x0C
	RegCtrl   = 0x10 // bit0 start, bit1 decrypt
	RegStatus = 0x14 // bit0 busy, bit1 done
	RegRes0   = 0x18
	RegRes1   = 0x1C
)

// LeakConfig parameterizes the Hamming-weight leakage model.
type LeakConfig struct {
	BaseJ     float64 // static per-cycle consumption while busy
	PerBitJ   float64 // leak per set bit of the round register
	NoiseJ    float64 // amplitude of the deterministic pseudo-noise
	NoiseSeed uint64
}

// DefaultLeak returns the leakage parameters used by the examples. The
// signal-to-noise ratio is chosen so single-trace SPA shows the round
// structure while DPA needs tens of traces — the regime the paper's
// power-analysis motivation describes.
func DefaultLeak() LeakConfig {
	return LeakConfig{BaseJ: 18e-12, PerBitJ: 0.85e-12, NoiseJ: 6e-12, NoiseSeed: 0xC0FFEE}
}

// Coprocessor is the memory-mapped crypto engine.
type Coprocessor struct {
	cfg  ecbus.SlaveConfig
	irq  interface{ Raise(int) }
	line int

	key    uint64
	data   uint64
	result uint64
	decr   bool
	busy   int // remaining busy cycles
	done   bool

	// engine state while busy
	l, r  uint32
	round int

	leak  LeakConfig
	noise *logic.LFSR
	trace []float64
	ops   uint64
}

// New creates the coprocessor slave and registers its engine process on
// the kernel's rising edge. irq may be nil; line is the interrupt line
// raised on completion.
func New(k *sim.Kernel, name string, base uint64, leak LeakConfig, irq interface{ Raise(int) }, line int) *Coprocessor {
	c := &Coprocessor{
		cfg: ecbus.SlaveConfig{
			Name: name, Base: base, Size: 0x20,
			AddrWait: 0, ReadWait: 1, WriteWait: 1,
			Readable: true, Writable: true,
		},
		irq:   irq,
		line:  line,
		leak:  leak,
		noise: logic.NewLFSR(leak.NoiseSeed),
	}
	k.At(sim.Rising, name, c.tick)
	return c
}

// Config returns the slave configuration.
func (c *Coprocessor) Config() ecbus.SlaveConfig { return c.cfg }

// Busy reports whether an operation is in progress.
func (c *Coprocessor) Busy() bool { return c.busy > 0 }

// Ops returns the number of completed operations.
func (c *Coprocessor) Ops() uint64 { return c.ops }

// Trace returns the accumulated per-cycle power samples (joules per
// cycle) of all operations so far; ResetTrace clears it.
func (c *Coprocessor) Trace() []float64 { return c.trace }

// ResetTrace clears the recorded power trace.
func (c *Coprocessor) ResetTrace() { c.trace = nil }

// TraceEnergy returns the total engine-internal energy recorded.
func (c *Coprocessor) TraceEnergy() float64 {
	var sum float64
	for _, s := range c.trace {
		sum += s
	}
	return sum
}

func hw32(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// tick advances the engine one cycle while busy and records the leakage
// sample of the cycle.
func (c *Coprocessor) tick(uint64) {
	if c.busy == 0 {
		return
	}
	cycleInRound := (Rounds*CyclesPerRound - c.busy) % CyclesPerRound
	if cycleInRound == 0 {
		// Compute the round on its first cycle.
		i := c.round
		if c.decr {
			i = Rounds - 1 - c.round
		}
		k := Subkey(c.key, i)
		if c.decr {
			c.l, c.r = c.r^F(c.l, k), c.l
		} else {
			c.l, c.r = c.r, c.l^F(c.r, k)
		}
		c.round++
	}
	// Hamming-weight leakage of the freshly written round register plus
	// deterministic pseudo-noise.
	sample := c.leak.BaseJ + float64(hw32(c.r))*c.leak.PerBitJ +
		(float64(c.noise.NextRange(1000))/1000-0.5)*c.leak.NoiseJ
	c.trace = append(c.trace, sample)

	c.busy--
	if c.busy == 0 {
		if c.decr {
			c.result = uint64(c.l)<<32 | uint64(c.r)
		} else {
			c.result = uint64(c.r)<<32 | uint64(c.l)
		}
		c.done = true
		c.ops++
		if c.irq != nil {
			c.irq.Raise(c.line)
		}
	}
}

// start launches an operation.
func (c *Coprocessor) start(decrypt bool) {
	c.decr = decrypt
	c.done = false
	c.round = 0
	c.busy = Rounds * CyclesPerRound
	if decrypt {
		c.r, c.l = uint32(c.data>>32), uint32(c.data)
	} else {
		c.l, c.r = uint32(c.data>>32), uint32(c.data)
	}
}

// ReadWord implements ecbus.Slave.
func (c *Coprocessor) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool) {
	switch addr - c.cfg.Base {
	case RegKey0, RegKey1:
		return 0, true // key register is write-only, reads as zero
	case RegData0:
		return uint32(c.data), true
	case RegData1:
		return uint32(c.data >> 32), true
	case RegCtrl:
		return 0, true
	case RegStatus:
		var s uint32
		if c.busy > 0 {
			s |= 1
		}
		if c.done {
			s |= 2
		}
		return s, true
	case RegRes0:
		return uint32(c.result), true
	case RegRes1:
		return uint32(c.result >> 32), true
	}
	return 0, false
}

// WriteWord implements ecbus.Slave.
func (c *Coprocessor) WriteWord(addr uint64, data uint32, _ ecbus.Width) bool {
	switch addr - c.cfg.Base {
	case RegKey0:
		c.key = c.key&^uint64(0xFFFFFFFF) | uint64(data)
	case RegKey1:
		c.key = c.key&0xFFFFFFFF | uint64(data)<<32
	case RegData0:
		c.data = c.data&^uint64(0xFFFFFFFF) | uint64(data)
	case RegData1:
		c.data = c.data&0xFFFFFFFF | uint64(data)<<32
	case RegCtrl:
		if data&1 != 0 && c.busy == 0 {
			c.start(data&2 != 0)
		}
	case RegStatus, RegRes0, RegRes1:
		// read-only; ignored
	default:
		return false
	}
	return true
}

// AccessEnergy implements ecbus.EnergyReporter (SFR file access cost;
// the engine's own consumption is in the leakage trace).
func (c *Coprocessor) AccessEnergy(ecbus.Kind) float64 { return 2.1e-12 }
