package crypto

import (
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Job is one unit of crypto-master work: Blocks consecutive 64-bit
// blocks read from Src, encrypted under the master's key, written to
// Dst. Src and Dst are word-aligned; each block occupies two 32-bit
// words, low word first.
type Job struct {
	Src, Dst uint64
	Blocks   int
}

// crypto-master states.
const (
	cmIdle = iota
	cmReadLo
	cmReadHi
	cmBusy
	cmWriteLo
	cmWriteHi
)

// Master is the crypto coprocessor as a true bus master: instead of
// the CPU spoon-feeding the memory-mapped Coprocessor SFRs, the engine
// fetches its plaintext blocks and writes back its ciphertext itself,
// contending for the interconnect with the CPU and the DMA engine.
// Each block costs two word reads, Rounds*CyclesPerRound engine-busy
// cycles (the same latency the SFR-mapped Coprocessor models), and two
// word writes. It registers on the kernel's rising edge.
type Master struct {
	bus  core.Initiator
	key  uint64
	jobs []Job

	ji        int // current job
	blk       int // blocks completed within the current job
	state     int
	lo, hi    uint32
	busyUntil uint64
	result    uint64

	tr        ecbus.Transaction
	ids       uint64
	notBefore uint64 // backoff gate after an errored attempt

	// Retry is the bus-error reaction policy. Set it before the first
	// kernel cycle.
	Retry core.RetryPolicy

	// Metrics, when non-nil, receives the master-side retry count.
	Metrics *metrics.Registry

	// Stats.
	Transactions uint64 // bus transactions issued
	Retries      uint64 // errored attempts re-issued
	Errors       uint64 // jobs abandoned after exhausting retries
	Blocks       uint64 // blocks encrypted and written back
}

// NewMaster creates a crypto bus master over bus (a mux port or a bus
// model directly) and registers it on the kernel's rising edge.
func NewMaster(k *sim.Kernel, bus core.Initiator, key uint64, jobs []Job) *Master {
	m := &Master{bus: bus, key: key, jobs: jobs}
	k.AtHinted(sim.Rising, "crypto-master", m.tick, m.hint, nil)
	return m
}

// Done reports whether every job has been processed.
func (m *Master) Done() bool { return m.ji >= len(m.jobs) && m.state == cmIdle }

// hint keeps the master skippable: no cycle once drained, the engine
// completion cycle while encrypting, the backoff cycle after an error.
func (m *Master) hint(now uint64) uint64 {
	if m.Done() {
		return sim.NoEvent
	}
	if m.state == cmBusy && m.busyUntil > now {
		return m.busyUntil
	}
	if m.notBefore > now {
		return m.notBefore
	}
	return now
}

// issue presents a single-word transaction for the current block.
func (m *Master) issue(kind ecbus.Kind, addr uint64, data uint32, next int) {
	m.ids++
	if err := m.tr.ResetSingle(m.ids, kind, addr, ecbus.W32, data); err != nil {
		m.abandon()
		return
	}
	m.state = next
	m.Transactions++
}

// abandon gives up on the current job after an unrecoverable error.
func (m *Master) abandon() {
	m.Errors++
	m.ji, m.blk = m.ji+1, 0
	m.state = cmIdle
}

// advance moves to the next block (or job) after a write-back.
func (m *Master) advance() {
	m.Blocks++
	m.blk++
	if m.blk >= m.jobs[m.ji].Blocks {
		m.ji, m.blk = m.ji+1, 0
	}
	m.state = cmIdle
}

// start launches the next block's read sequence, skipping empty jobs.
func (m *Master) start() {
	for m.ji < len(m.jobs) && m.blk >= m.jobs[m.ji].Blocks {
		m.ji, m.blk = m.ji+1, 0
	}
	if m.ji >= len(m.jobs) {
		return
	}
	j := m.jobs[m.ji]
	m.issue(ecbus.Read, j.Src+uint64(8*m.blk), 0, cmReadLo)
}

// tick advances the master one cycle.
func (m *Master) tick(cycle uint64) {
	if cycle < m.notBefore {
		return
	}
	if m.state == cmBusy {
		if cycle < m.busyUntil {
			return
		}
		// Engine done: write the ciphertext back, low word first.
		j := m.jobs[m.ji]
		m.issue(ecbus.Write, j.Dst+uint64(8*m.blk), uint32(m.result), cmWriteLo)
		if m.state != cmWriteLo {
			return
		}
	}
	if m.state == cmIdle {
		if m.ji >= len(m.jobs) {
			return
		}
		m.start()
		if m.state == cmIdle {
			return
		}
	}
	st := m.bus.Access(&m.tr)
	if !st.Done() {
		return
	}
	if st == ecbus.StateError {
		if int(m.tr.Retries) >= m.Retry.MaxRetries {
			m.abandon()
			return
		}
		m.tr.ResetForRetry()
		m.Retries++
		m.Metrics.Retries(1)
		m.notBefore = cycle + 1 + m.Retry.Backoff
		return
	}
	j := m.jobs[m.ji]
	switch m.state {
	case cmReadLo:
		m.lo = m.tr.Data[0]
		m.issue(ecbus.Read, j.Src+uint64(8*m.blk)+4, 0, cmReadHi)
	case cmReadHi:
		m.hi = m.tr.Data[0]
		m.result = Encrypt(m.key, uint64(m.hi)<<32|uint64(m.lo))
		m.busyUntil = cycle + Rounds*CyclesPerRound
		m.state = cmBusy
	case cmWriteLo:
		m.issue(ecbus.Write, j.Dst+uint64(8*m.blk)+4, uint32(m.result>>32), cmWriteHi)
	case cmWriteHi:
		m.advance()
	}
}
