package crypto

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key, block uint64) bool {
		return Decrypt(key, Encrypt(key, block)) == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptNotIdentity(t *testing.T) {
	f := func(key, block uint64) bool {
		return Encrypt(key, block) != block || block == Encrypt(key, block) && key == 0
	}
	// Spot-check a few fixed vectors instead of a vacuous property.
	_ = f
	if Encrypt(0x0123456789ABCDEF, 0) == 0 {
		t.Fatal("zero block maps to itself")
	}
	if Encrypt(1, 0xFFFFFFFFFFFFFFFF) == Encrypt(2, 0xFFFFFFFFFFFFFFFF) {
		t.Fatal("different keys give same ciphertext")
	}
}

func TestKeyAvalanche(t *testing.T) {
	base := Encrypt(0x1111111111111111, 0xDEADBEEFCAFEF00D)
	flip := Encrypt(0x1111111111111113, 0xDEADBEEFCAFEF00D)
	diff := 0
	for x := base ^ flip; x != 0; x &= x - 1 {
		diff++
	}
	if diff < 16 {
		t.Fatalf("key avalanche too weak: %d differing bits", diff)
	}
}

func TestSubkeyRotates(t *testing.T) {
	key := uint64(0x8000000000000001)
	if Subkey(key, 0) == Subkey(key, 1) {
		t.Fatal("subkeys identical")
	}
}

// driveCoprocessor runs an encryption through the SFR interface over a
// layer-1 bus using a scripted master.
func driveCoprocessor(t *testing.T, key, block uint64) (*Coprocessor, uint64) {
	t.Helper()
	k := sim.New(0)
	cp := New(k, "des", 0xE000, DefaultLeak(), nil, 0)
	bus := tlm1.New(k, ecbus.MustMap(cp))
	id := uint64(0)
	w := func(off uint64, v uint32) core.Item {
		id++
		tr, _ := ecbus.NewSingle(id, ecbus.Write, 0xE000+off, ecbus.W32, v)
		return core.Item{Tr: tr}
	}
	items := []core.Item{
		w(RegKey0, uint32(key)),
		w(RegKey1, uint32(key>>32)),
		w(RegData0, uint32(block)),
		w(RegData1, uint32(block>>32)),
		w(RegCtrl, 1),
	}
	m, _ := core.RunScript(k, bus, items, 10000)
	if !m.Done() || m.Errors() != 0 {
		t.Fatal("SFR programming failed")
	}
	k.RunUntil(10000, func() bool { return !cp.Busy() })

	// Read back the result.
	lo, _ := cp.ReadWord(0xE000+RegRes0, ecbus.W32)
	hi, _ := cp.ReadWord(0xE000+RegRes1, ecbus.W32)
	return cp, uint64(hi)<<32 | uint64(lo)
}

func TestCoprocessorMatchesSoftwareModel(t *testing.T) {
	key, block := uint64(0x0123456789ABCDEF), uint64(0x0011223344556677)
	cp, got := driveCoprocessor(t, key, block)
	want := Encrypt(key, block)
	if got != want {
		t.Fatalf("coprocessor %#x, software %#x", got, want)
	}
	if cp.Ops() != 1 {
		t.Fatalf("ops = %d", cp.Ops())
	}
}

func TestCoprocessorBusyLatency(t *testing.T) {
	k := sim.New(0)
	cp := New(k, "des", 0, DefaultLeak(), nil, 0)
	cp.WriteWord(RegKey0, 1, ecbus.W32)
	cp.WriteWord(RegData0, 2, ecbus.W32)
	cp.WriteWord(RegCtrl, 1, ecbus.W32)
	if !cp.Busy() {
		t.Fatal("not busy after start")
	}
	n := 0
	for cp.Busy() {
		k.Step()
		n++
		if n > 1000 {
			t.Fatal("never finished")
		}
	}
	if n != Rounds*CyclesPerRound {
		t.Fatalf("busy for %d cycles, want %d", n, Rounds*CyclesPerRound)
	}
	s, _ := cp.ReadWord(RegStatus, ecbus.W32)
	if s != 2 { // done, not busy
		t.Fatalf("status = %#x, want 2", s)
	}
}

func TestCoprocessorDecryptOperation(t *testing.T) {
	k := sim.New(0)
	cp := New(k, "des", 0, DefaultLeak(), nil, 0)
	key, pt := uint64(0xA5A5A5A55A5A5A5A), uint64(0x1122334455667788)
	ct := Encrypt(key, pt)
	cp.WriteWord(RegKey0, uint32(key), ecbus.W32)
	cp.WriteWord(RegKey1, uint32(key>>32), ecbus.W32)
	cp.WriteWord(RegData0, uint32(ct), ecbus.W32)
	cp.WriteWord(RegData1, uint32(ct>>32), ecbus.W32)
	cp.WriteWord(RegCtrl, 1|2, ecbus.W32) // start + decrypt
	for cp.Busy() {
		k.Step()
	}
	lo, _ := cp.ReadWord(RegRes0, ecbus.W32)
	hi, _ := cp.ReadWord(RegRes1, ecbus.W32)
	if got := uint64(hi)<<32 | uint64(lo); got != pt {
		t.Fatalf("decrypt = %#x, want %#x", got, pt)
	}
}

func TestLeakageTraceProperties(t *testing.T) {
	cp, _ := driveCoprocessor(t, 0x0123456789ABCDEF, 0x0011223344556677)
	trace := cp.Trace()
	if len(trace) != Rounds*CyclesPerRound {
		t.Fatalf("trace has %d samples, want %d", len(trace), Rounds*CyclesPerRound)
	}
	for i, s := range trace {
		if s <= 0 {
			t.Fatalf("sample %d non-positive: %g", i, s)
		}
	}
	if cp.TraceEnergy() <= 0 {
		t.Fatal("no trace energy")
	}
	// Data dependence: different plaintexts leave different traces.
	cp2, _ := driveCoprocessor(t, 0x0123456789ABCDEF, 0xFFFFFFFFFFFFFFFF)
	t2 := cp2.Trace()
	same := true
	for i := range trace {
		if trace[i] != t2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("leakage trace independent of processed data")
	}
	cp.ResetTrace()
	if len(cp.Trace()) != 0 {
		t.Fatal("ResetTrace did not clear")
	}
}

func TestStartIgnoredWhileBusy(t *testing.T) {
	k := sim.New(0)
	cp := New(k, "des", 0, DefaultLeak(), nil, 0)
	cp.WriteWord(RegCtrl, 1, ecbus.W32)
	k.Step()
	before := cp.busy
	cp.WriteWord(RegCtrl, 1, ecbus.W32) // must be ignored
	if cp.busy != before {
		t.Fatal("restart while busy changed engine state")
	}
}

type fakeIRQ struct{ lines []int }

func (f *fakeIRQ) Raise(n int) { f.lines = append(f.lines, n) }

func TestCompletionInterrupt(t *testing.T) {
	k := sim.New(0)
	irq := &fakeIRQ{}
	cp := New(k, "des", 0, DefaultLeak(), irq, 3)
	cp.WriteWord(RegCtrl, 1, ecbus.W32)
	for cp.Busy() {
		k.Step()
	}
	if len(irq.lines) != 1 || irq.lines[0] != 3 {
		t.Fatalf("irq raises = %v", irq.lines)
	}
}
