package crypto_test

import (
	"testing"

	"repro/internal/arb"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

const (
	ptBase = uint64(0x0000)  // plaintext buffer
	ctBase = uint64(0x10000) // ciphertext buffer
)

// plain returns the deterministic plaintext block b.
func plain(b int) uint64 {
	lo := 0x1111_0000 + uint64(b)
	hi := 0x2222_0000 + uint64(b)
	return hi<<32 | lo
}

// build assembles a tlm1 bus with plaintext pre-loaded, optionally
// fault-wrapping the ciphertext RAM.
func build(t *testing.T, blocks int, plan fault.Plan) (*sim.Kernel, core.Initiator, *mem.RAM) {
	t.Helper()
	pt := mem.NewRAM("pt", ptBase, 0x1000, 0, 0)
	ct := mem.NewRAM("ct", ctBase, 0x1000, 1, 2)
	for b := 0; b < blocks; b++ {
		pt.WriteWord(ptBase+uint64(8*b), uint32(plain(b)), ecbus.W32)
		pt.WriteWord(ptBase+uint64(8*b)+4, uint32(plain(b)>>32), ecbus.W32)
	}
	var ctSlave ecbus.Slave = ct
	if !plan.Empty() {
		ctSlave = fault.Wrap(ct, plan)
	}
	k := sim.New(0)
	bus := tlm1.New(k, ecbus.MustMap(pt, ctSlave))
	return k, bus, ct
}

func run(t *testing.T, k *sim.Kernel, m *crypto.Master) uint64 {
	t.Helper()
	n, done := k.RunUntil(1_000_000, m.Done)
	if !done {
		t.Fatal("crypto master run did not finish")
	}
	return n
}

// checkBlock verifies block b of ct against the pure cipher.
func checkBlock(t *testing.T, ct *mem.RAM, key uint64, b int) {
	t.Helper()
	want := crypto.Encrypt(key, plain(b))
	lo, _ := ct.ReadWord(ctBase+uint64(8*b), ecbus.W32)
	hi, _ := ct.ReadWord(ctBase+uint64(8*b)+4, ecbus.W32)
	if got := uint64(hi)<<32 | uint64(lo); got != want {
		t.Fatalf("block %d: got %#x, want %#x", b, got, want)
	}
}

func TestMasterEncryptsBlocks(t *testing.T) {
	const key = uint64(0x0123_4567_89AB_CDEF)
	jobs := []crypto.Job{
		{Src: ptBase, Dst: ctBase, Blocks: 3},
		{Src: ptBase + 24, Dst: ctBase + 24, Blocks: 0}, // empty
		{Src: ptBase + 24, Dst: ctBase + 24, Blocks: 1},
	}
	k, bus, ct := build(t, 4, fault.Plan{})
	m := crypto.NewMaster(k, bus, key, jobs)
	m.Retry = core.RetryPolicy{MaxRetries: 4, Backoff: 1}
	n := run(t, k, m)

	for b := 0; b < 4; b++ {
		checkBlock(t, ct, key, b)
	}
	if m.Blocks != 4 {
		t.Fatalf("Blocks = %d, want 4", m.Blocks)
	}
	if m.Transactions != 16 {
		t.Fatalf("Transactions = %d, want 16 (4 per block)", m.Transactions)
	}
	if m.Errors != 0 || m.Retries != 0 {
		t.Fatalf("clean run recorded %d errors, %d retries", m.Errors, m.Retries)
	}
	// Latency floor: the engine charges Rounds*CyclesPerRound busy
	// cycles per block on top of its bus traffic.
	if floor := uint64(4 * crypto.Rounds * crypto.CyclesPerRound); n < floor {
		t.Fatalf("finished in %d cycles, below the %d-cycle engine floor", n, floor)
	}
}

func TestMasterBehindMux(t *testing.T) {
	const key = uint64(0xDEAD_BEEF_CAFE_F00D)
	k := sim.New(0)
	mux := arb.NewMux(k, arb.FixedPriority, 1)
	pt := mem.NewRAM("pt", ptBase, 0x1000, 0, 0)
	ct := mem.NewRAM("ct", ctBase, 0x1000, 1, 2)
	for b := 0; b < 2; b++ {
		pt.WriteWord(ptBase+uint64(8*b), uint32(plain(b)), ecbus.W32)
		pt.WriteWord(ptBase+uint64(8*b)+4, uint32(plain(b)>>32), ecbus.W32)
	}
	bus := tlm1.New(k, ecbus.MustMap(pt, ct))
	mux.Bind(bus)
	m := crypto.NewMaster(k, mux.Port(0), key, []crypto.Job{{Src: ptBase, Dst: ctBase, Blocks: 2}})
	run(t, k, m)
	for b := 0; b < 2; b++ {
		checkBlock(t, ct, key, b)
	}
	if !mux.Drained() {
		t.Fatal("mux not drained")
	}
	if mux.TotalGrants() != m.Transactions {
		t.Fatalf("%d grants for %d transactions", mux.TotalGrants(), m.Transactions)
	}
}

func TestMasterRetriesAndAbandons(t *testing.T) {
	const key = uint64(1)
	// Block 0's low ciphertext word: two transient write faults (must
	// retry through); block 1's: unbounded (must abandon the job), and a
	// third job must still complete.
	jobs := []crypto.Job{
		{Src: ptBase, Dst: ctBase, Blocks: 1},
		{Src: ptBase + 8, Dst: ctBase + 8, Blocks: 1},
		{Src: ptBase + 16, Dst: ctBase + 16, Blocks: 1},
	}
	plan := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpWrite, Addr: ctBase, After: 0, Count: 2},
		{Op: fault.OpWrite, Addr: ctBase + 8, After: 0, Count: 0},
	}}
	k, bus, ct := build(t, 3, plan)
	m := crypto.NewMaster(k, bus, key, jobs)
	m.Retry = core.RetryPolicy{MaxRetries: 3, Backoff: 1}
	run(t, k, m)

	checkBlock(t, ct, key, 0)
	checkBlock(t, ct, key, 2)
	if m.Errors != 1 {
		t.Fatalf("Errors = %d, want 1 (job 1 abandoned)", m.Errors)
	}
	if m.Blocks != 2 {
		t.Fatalf("Blocks = %d, want 2", m.Blocks)
	}
	if m.Retries != 2+3 {
		t.Fatalf("Retries = %d, want 5 (2 transient + 3 exhausted)", m.Retries)
	}
}
