package tlm1_test

import (
	"testing"

	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

// The layer-1 bus process must be allocation-free in steady state: the
// ring queues hold value-type entries in fixed arrays, so pumping
// transactions through an already-constructed bus performs zero heap
// allocations (construction and transaction creation excluded).
func TestBusProcessZeroSteadyStateAllocs(t *testing.T) {
	k := sim.New(0)
	b := tlm1.New(k, ecbus.MustMap(
		mem.NewRAM("fast", 0, 0x1000, 0, 0),
		mem.NewRAM("slow", 0x10000, 0x1000, 1, 2),
	)).AttachPower(tlm1.NewPowerModel(gatepower.CharTable{}))

	tr, err := ecbus.NewSingle(1, ecbus.Write, 0x10000, ecbus.W32, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}

	id := uint64(1)
	pump := func() {
		id++
		if err := tr.ResetSingle(id, ecbus.Write, 0x10000+4*(id%8), ecbus.W32, uint32(id)*0x9E37); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if st := b.Access(tr); st.Done() {
				return
			}
			k.Step()
		}
		t.Fatal("transaction did not complete")
	}
	pump() // warm up (lazy state, kernel start)

	if avg := testing.AllocsPerRun(100, pump); avg != 0 {
		t.Fatalf("steady-state allocations per transaction = %v, want 0", avg)
	}
}
