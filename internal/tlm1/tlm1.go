// Package tlm1 implements the paper's transaction-level layer-1 model of
// the EC bus (§3.1): cycle accurate, non-blocking interfaces, internal
// request queues, and a bus process composed of four phases.
//
// Structure (paper Fig. 3): the master-side interfaces store accepted
// requests in the request queue; the bus process runs every falling
// clock edge and executes
//
//	getSlaveState();  // sample slave wait states / rights
//	addressPhase();   // serialized address FSM
//	readPhase();      // read data bus, one beat per cycle
//	writePhase();     // write data bus, one beat per cycle
//
// after which finished requests are "pushed into the finish queue" — here
// marked Done on the transaction — and picked up by the master's next
// interface call. Read and write phases could run in parallel; "in our
// model the two phases are processed sequentially", as in the paper.
//
// The model is cycle-equivalent to the layer-0 model (package rtlbus) by
// construction of the shared protocol rules; equivalence over random
// corpora is enforced by property tests in the layers package.
//
// Energy (§3.3, Fig. 5): an attached PowerModel keeps an old and a new
// value for every bus interface signal; each bus phase updates the new
// values, and after the write phase the bus process invokes the energy
// calculation, which recognizes bit transitions and prices them with the
// characterized average energy per transition — "like a transaction
// level to RTL adapter".
package tlm1

import (
	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// entry is a request in flight, carrying the slave state sampled by
// getSlaveState at its address-phase start.
type entry struct {
	tr    *ecbus.Transaction
	slave ecbus.Slave
	err   bool
	aw    int // address wait states (incl. dynamic extra)
	dw    int // data wait states per beat

	beat    int
	beatCnt int
}

// qCap is the ring-buffer capacity of each request queue. The EC
// protocol caps outstanding transactions at ecbus.MaxOutstanding per
// category (3 categories, 12 total in flight), so 16 — the next power of
// two — statically bounds every queue.
const qCap = 16

// ring is a fixed-capacity FIFO of value-type entries: steady-state bus
// operation allocates nothing.
type ring struct {
	buf  [qCap]entry
	head int
	n    int
}

func (r *ring) empty() bool { return r.n == 0 }

// front returns the head entry; valid until the next popFront.
func (r *ring) front() *entry { return &r.buf[r.head] }

func (r *ring) pushBack(e entry) {
	if r.n == qCap {
		panic("tlm1: request queue overflow (protocol cap exceeded)")
	}
	r.buf[(r.head+r.n)&(qCap-1)] = e
	r.n++
}

// popFront removes the head entry, zeroing its slot so transaction and
// slave references are not retained.
func (r *ring) popFront() {
	r.buf[r.head] = entry{}
	r.head = (r.head + 1) & (qCap - 1)
	r.n--
}

func (r *ring) contains(tr *ecbus.Transaction) bool {
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head+i)&(qCap-1)].tr == tr {
			return true
		}
	}
	return false
}

// Bus is the layer-1 EC bus model (bus interface unit view plus bus
// controller with address decoder).
type Bus struct {
	m     *ecbus.Map
	cycle uint64

	requestQ ring // accepted, address phase pending
	readQ    ring // address done, read beats pending
	writeQ   ring // address done, write beats pending

	addrStarted bool
	addrCnt     int

	outstanding [ecbus.NumCategories]int

	power *PowerModel // nil when energy estimation is disabled

	// Observability. mxKind/mxSlave classify the cycle being executed
	// (reset at the top of busProcess, sampled after calcEnergy); they
	// are only maintained while a registry is attached.
	mx      *metrics.Registry
	mxKind  metrics.PhaseKind
	mxSlave int

	stats Stats
}

// Stats aggregates bus activity counters.
type Stats struct {
	Accepted  uint64
	Completed uint64
	Errors    uint64
	Rejected  uint64
	DataBeats uint64
}

// New creates a layer-1 bus over the address map and registers the bus
// process on the kernel's falling edge, with a quiescence hint so the
// kernel can fast-forward pure wait-state countdowns and idle gaps.
func New(k *sim.Kernel, m *ecbus.Map) *Bus {
	b := &Bus{m: m, cycle: ^uint64(0)}
	k.AtHinted(sim.Falling, "tlm1-bus", b.busProcess, b.hint, b.onSkip)
	return b
}

// hint reports the earliest future cycle with bus activity: the
// completion tick of the head address phase or data beat. It returns now
// whenever this cycle's tick does externally visible work — a phase
// start, a completion, or clearing a strobe signal left high by the
// previous cycle.
func (b *Bus) hint(now uint64) uint64 {
	if b.power != nil && b.power.strobesHigh() {
		return now // a strobe must fall this cycle; its energy is priced then
	}
	next := sim.NoEvent
	if !b.requestQ.empty() {
		e := b.requestQ.front()
		switch {
		case e.tr.IssueCycle > now:
			next = e.tr.IssueCycle
		case !b.addrStarted || b.addrCnt >= e.aw:
			return now // phase start or completion tick
		default:
			next = now + uint64(e.aw-b.addrCnt)
		}
	}
	if !b.readQ.empty() {
		e := b.readQ.front()
		if e.beatCnt >= e.dw {
			return now // beat delivery tick
		}
		if c := now + uint64(e.dw-e.beatCnt); c < next {
			next = c
		}
	}
	if !b.writeQ.empty() {
		e := b.writeQ.front()
		if e.beatCnt >= e.dw {
			return now
		}
		if c := now + uint64(e.dw-e.beatCnt); c < next {
			next = c
		}
	}
	return next
}

// onSkip advances the bus state across n fast-forwarded cycles exactly as
// n ticks of pure countdown would have: the cycle stamp, the head
// counters of each unit, and the power model's last-cycle energy.
func (b *Bus) onSkip(n uint64) {
	b.cycle += n
	if !b.requestQ.empty() && b.addrStarted {
		if e := b.requestQ.front(); b.addrCnt < e.aw {
			b.addrCnt += int(n)
		}
	}
	if !b.readQ.empty() {
		if e := b.readQ.front(); e.beatCnt < e.dw {
			e.beatCnt += int(n)
		}
	}
	if !b.writeQ.empty() {
		if e := b.writeQ.front(); e.beatCnt < e.dw {
			e.beatCnt += int(n)
		}
	}
	if b.power != nil {
		b.power.skipCycles()
	}
}

// AttachPower connects the dedicated power-estimation module; the bus
// process will invoke its energy calculation after the write phase each
// cycle. Returns the bus for chaining.
func (b *Bus) AttachPower(p *PowerModel) *Bus {
	b.power = p
	return b
}

// Power returns the attached power model, or nil.
func (b *Bus) Power() *PowerModel { return b.power }

// AttachMetrics connects an observability registry (nil detaches). The
// per-slave energy table is bound to the address map's decode order.
// Layer 1 samples energy once per executed cycle, after calcEnergy,
// classified by the phase that acted (priority: error > write-data >
// read-data > address); trailing strobe falls are attributed by the
// registry's carry rule. Skipped cycles dissipate nothing at this
// layer, so they need no sample.
func (b *Bus) AttachMetrics(reg *metrics.Registry) *Bus {
	b.mx = reg
	names := make([]string, 0, len(b.m.Slaves()))
	for _, s := range b.m.Slaves() {
		names = append(names, s.Config().Name)
	}
	reg.BindSlaves(names...)
	return b
}

// mark classifies the executing cycle for energy attribution, keeping
// the highest-priority phase kind when several phases act at once.
func (b *Bus) mark(kind metrics.PhaseKind, slave int) {
	if b.mxKind == metrics.PhaseIdle || kind > b.mxKind {
		b.mxKind, b.mxSlave = kind, slave
	}
}

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Idle reports whether no request is in flight.
func (b *Bus) Idle() bool {
	return b.requestQ.empty() && b.readQ.empty() && b.writeQ.empty()
}

// Access is the non-blocking master interface (both the instruction and
// the data interface dispatch here; the transaction kind distinguishes
// them). Semantics per the paper: "request means the request has been
// accepted, wait means the request is in progress, error indicates a bus
// error, ok indicates a finished bus request", and the master keeps
// invoking it until ok or error.
func (b *Bus) Access(tr *ecbus.Transaction) ecbus.BusState {
	if tr.Done {
		if tr.Err {
			return ecbus.StateError
		}
		return ecbus.StateOK
	}
	if tr.IssueCycle != 0 || b.isQueued(tr) {
		return ecbus.StateWait
	}
	cat := tr.Category()
	if b.outstanding[cat] >= ecbus.MaxOutstanding {
		b.stats.Rejected++
		b.mx.TxRejected()
		return ecbus.StateWait
	}
	if err := tr.Validate(); err != nil {
		tr.Done, tr.Err = true, true
		b.stats.Errors++
		b.mx.TxRetired(tr, -1, true)
		return ecbus.StateError
	}
	b.outstanding[cat]++
	tr.IssueCycle = b.cycle + 1
	b.requestQ.pushBack(entry{tr: tr})
	b.stats.Accepted++
	b.mx.TxAccepted(cat, b.outstanding[cat])
	return ecbus.StateRequest
}

func (b *Bus) isQueued(tr *ecbus.Transaction) bool {
	return b.requestQ.contains(tr) || b.readQ.contains(tr) || b.writeQ.contains(tr)
}

// busProcess is the falling-edge SC_METHOD equivalent.
func (b *Bus) busProcess(cycle uint64) {
	b.cycle = cycle
	if b.power != nil {
		b.power.beginCycle()
	}
	if b.mx != nil {
		b.mxKind, b.mxSlave = metrics.PhaseIdle, -1
	}
	b.addressPhase(cycle) // getSlaveState happens at each phase start
	b.readPhase(cycle)
	b.writePhase(cycle)
	if b.power != nil {
		b.power.calcEnergy()
	}
	if b.mx != nil {
		var t float64
		if b.power != nil {
			t = b.power.TotalEnergy()
		}
		b.mx.EnergySample(b.mxKind, b.mxSlave, t)
	}
}

// getSlaveState samples the slave control interface for the request at
// the head of the request queue: "the address range of the slave, wait
// states for address, read, and write phases, and bits to indicate the
// access rights".
func (b *Bus) getSlaveState(e *entry) {
	sl, err := b.m.Check(e.tr.Kind, e.tr.Addr, e.tr.Words()*4)
	if err != nil {
		e.err = true
		e.aw = 0
		return
	}
	e.slave = sl
	cfg := sl.Config()
	e.aw = cfg.AddrWait + ecbus.ExtraWaitOf(sl, e.tr.Kind, e.tr.Addr)
	if e.tr.Kind.IsRead() {
		e.dw = cfg.ReadWait
	} else {
		e.dw = cfg.WriteWait
	}
}

// addressPhase is the serialized address FSM.
func (b *Bus) addressPhase(cycle uint64) {
	if b.requestQ.empty() {
		return
	}
	e := b.requestQ.front()
	if e.tr.IssueCycle > cycle {
		return
	}
	if !b.addrStarted {
		b.addrStarted = true
		b.addrCnt = 0
		b.getSlaveState(e)
	}
	if b.power != nil {
		b.power.driveAddress(e.tr)
	}
	if b.mx != nil {
		b.mark(metrics.PhaseAddress, b.m.Index(e.tr.Addr))
	}
	if b.addrCnt < e.aw {
		b.addrCnt++
		b.mx.WaitCycle()
		return
	}
	e.tr.AddrCycle = cycle
	ent := *e // copy out before the slot is recycled
	b.requestQ.popFront()
	b.addrStarted = false
	if b.power != nil {
		b.power.addressAccepted()
	}
	switch {
	case ent.err:
		b.completeError(&ent, cycle)
	case ent.tr.Kind.IsRead():
		b.readQ.pushBack(ent)
	default:
		b.writeQ.pushBack(ent)
	}
}

func (b *Bus) completeError(e *entry, cycle uint64) {
	e.tr.Done, e.tr.Err = true, true
	e.tr.DataCycle = cycle
	b.outstanding[e.tr.Category()]--
	b.stats.Errors++
	if b.power != nil {
		b.power.driveError(e.tr.Kind)
	}
	if b.mx != nil {
		idx := b.m.Index(e.tr.Addr)
		b.mark(metrics.PhaseError, idx)
		b.mx.TxRetired(e.tr, idx, true)
	}
}

// readPhase serves one read beat per cycle from the head of the read
// queue.
func (b *Bus) readPhase(cycle uint64) {
	if b.readQ.empty() {
		return
	}
	e := b.readQ.front()
	if e.beatCnt < e.dw {
		e.beatCnt++
		b.mx.WaitCycle()
		return
	}
	i := e.beat
	addr := e.tr.Addr + uint64(4*i)
	w := e.tr.Width
	if e.tr.Burst {
		w = ecbus.W32
	}
	data, ok := e.slave.ReadWord(addr, w)
	e.tr.Data[i] = data
	b.stats.DataBeats++
	if b.mx != nil {
		b.mark(metrics.PhaseReadData, b.m.Index(e.tr.Addr))
		b.mx.Beat()
	}
	if b.power != nil {
		if ok {
			b.power.driveReadBeat(data, e.tr.Burst && i == e.tr.Words()-1)
		} else {
			// Errored beat: the slave still drives the (possibly
			// corrupted) word, but the error strobe — raised by the
			// finish path below — replaces the read-valid strobe, and
			// the last-beat marker is not driven.
			b.power.driveReadErrData(data)
		}
	}
	e.beat++
	e.beatCnt = 0
	if !ok {
		b.finishRead(e, cycle, true)
		return
	}
	if e.beat == e.tr.Words() {
		b.finishRead(e, cycle, false)
	}
}

func (b *Bus) finishRead(e *entry, cycle uint64, err bool) {
	e.tr.Done, e.tr.Err = true, err
	e.tr.DataCycle = cycle
	b.outstanding[e.tr.Category()]--
	kind := e.tr.Kind
	tr := e.tr
	b.readQ.popFront() // invalidates e
	if err {
		b.stats.Errors++
		if b.power != nil {
			b.power.driveError(kind)
		}
	} else {
		b.stats.Completed++
	}
	if b.mx != nil {
		idx := b.m.Index(tr.Addr)
		if err {
			b.mark(metrics.PhaseError, idx)
		}
		b.mx.TxRetired(tr, idx, err)
	}
}

// writePhase serves one write beat per cycle from the head of the write
// queue.
func (b *Bus) writePhase(cycle uint64) {
	if b.writeQ.empty() {
		return
	}
	e := b.writeQ.front()
	i := e.beat
	if b.power != nil {
		// The master drives the write data bus while the beat pends.
		b.power.driveWriteData(e.tr.Data[i])
	}
	if b.mx != nil {
		// The write unit drives wires even on wait cycles, so every
		// cycle it acts is classified write-data.
		b.mark(metrics.PhaseWriteData, b.m.Index(e.tr.Addr))
	}
	if e.beatCnt < e.dw {
		e.beatCnt++
		b.mx.WaitCycle()
		return
	}
	addr := e.tr.Addr + uint64(4*i)
	w := e.tr.Width
	if e.tr.Burst {
		w = ecbus.W32
	}
	ok := e.slave.WriteWord(addr, e.tr.Data[i], w)
	b.stats.DataBeats++
	b.mx.Beat()
	if b.power != nil && ok {
		// On an errored beat the error strobe (finish path) replaces
		// the write-accept strobe and no last-beat marker is driven.
		b.power.driveWriteBeat(e.tr.Burst && i == e.tr.Words()-1)
	}
	e.beat++
	e.beatCnt = 0
	if !ok {
		b.finishWrite(e, cycle, true)
		return
	}
	if e.beat == e.tr.Words() {
		b.finishWrite(e, cycle, false)
	}
}

func (b *Bus) finishWrite(e *entry, cycle uint64, err bool) {
	e.tr.Done, e.tr.Err = true, err
	e.tr.DataCycle = cycle
	b.outstanding[e.tr.Category()]--
	kind := e.tr.Kind
	tr := e.tr
	b.writeQ.popFront() // invalidates e
	if err {
		b.stats.Errors++
		if b.power != nil {
			b.power.driveError(kind)
		}
	} else {
		b.stats.Completed++
	}
	if b.mx != nil {
		idx := b.m.Index(tr.Addr)
		if err {
			b.mark(metrics.PhaseError, idx)
		}
		b.mx.TxRetired(tr, idx, err)
	}
}
