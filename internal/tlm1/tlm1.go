// Package tlm1 implements the paper's transaction-level layer-1 model of
// the EC bus (§3.1): cycle accurate, non-blocking interfaces, internal
// request queues, and a bus process composed of four phases.
//
// Structure (paper Fig. 3): the master-side interfaces store accepted
// requests in the request queue; the bus process runs every falling
// clock edge and executes
//
//	getSlaveState();  // sample slave wait states / rights
//	addressPhase();   // serialized address FSM
//	readPhase();      // read data bus, one beat per cycle
//	writePhase();     // write data bus, one beat per cycle
//
// after which finished requests are "pushed into the finish queue" — here
// marked Done on the transaction — and picked up by the master's next
// interface call. Read and write phases could run in parallel; "in our
// model the two phases are processed sequentially", as in the paper.
//
// The model is cycle-equivalent to the layer-0 model (package rtlbus) by
// construction of the shared protocol rules; equivalence over random
// corpora is enforced by property tests in the layers package.
//
// Energy (§3.3, Fig. 5): an attached PowerModel keeps an old and a new
// value for every bus interface signal; each bus phase updates the new
// values, and after the write phase the bus process invokes the energy
// calculation, which recognizes bit transitions and prices them with the
// characterized average energy per transition — "like a transaction
// level to RTL adapter".
package tlm1

import (
	"repro/internal/ecbus"
	"repro/internal/sim"
)

// entry is a request in flight, carrying the slave state sampled by
// getSlaveState at its address-phase start.
type entry struct {
	tr    *ecbus.Transaction
	slave ecbus.Slave
	err   bool
	aw    int // address wait states (incl. dynamic extra)
	dw    int // data wait states per beat

	beat    int
	beatCnt int
}

// Bus is the layer-1 EC bus model (bus interface unit view plus bus
// controller with address decoder).
type Bus struct {
	m     *ecbus.Map
	cycle uint64

	requestQ []*entry // accepted, address phase pending
	readQ    []*entry // address done, read beats pending
	writeQ   []*entry // address done, write beats pending

	addrStarted bool
	addrCnt     int

	outstanding [ecbus.NumCategories]int

	power *PowerModel // nil when energy estimation is disabled

	stats Stats
}

// Stats aggregates bus activity counters.
type Stats struct {
	Accepted  uint64
	Completed uint64
	Errors    uint64
	Rejected  uint64
	DataBeats uint64
}

// New creates a layer-1 bus over the address map and registers the bus
// process on the kernel's falling edge.
func New(k *sim.Kernel, m *ecbus.Map) *Bus {
	b := &Bus{m: m, cycle: ^uint64(0)}
	k.At(sim.Falling, "tlm1-bus", b.busProcess)
	return b
}

// AttachPower connects the dedicated power-estimation module; the bus
// process will invoke its energy calculation after the write phase each
// cycle. Returns the bus for chaining.
func (b *Bus) AttachPower(p *PowerModel) *Bus {
	b.power = p
	return b
}

// Power returns the attached power model, or nil.
func (b *Bus) Power() *PowerModel { return b.power }

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Idle reports whether no request is in flight.
func (b *Bus) Idle() bool {
	return len(b.requestQ) == 0 && len(b.readQ) == 0 && len(b.writeQ) == 0
}

// Access is the non-blocking master interface (both the instruction and
// the data interface dispatch here; the transaction kind distinguishes
// them). Semantics per the paper: "request means the request has been
// accepted, wait means the request is in progress, error indicates a bus
// error, ok indicates a finished bus request", and the master keeps
// invoking it until ok or error.
func (b *Bus) Access(tr *ecbus.Transaction) ecbus.BusState {
	if tr.Done {
		if tr.Err {
			return ecbus.StateError
		}
		return ecbus.StateOK
	}
	if tr.IssueCycle != 0 || b.isQueued(tr) {
		return ecbus.StateWait
	}
	cat := tr.Category()
	if b.outstanding[cat] >= ecbus.MaxOutstanding {
		b.stats.Rejected++
		return ecbus.StateWait
	}
	if err := tr.Validate(); err != nil {
		tr.Done, tr.Err = true, true
		b.stats.Errors++
		return ecbus.StateError
	}
	b.outstanding[cat]++
	tr.IssueCycle = b.cycle + 1
	b.requestQ = append(b.requestQ, &entry{tr: tr})
	b.stats.Accepted++
	return ecbus.StateRequest
}

func (b *Bus) isQueued(tr *ecbus.Transaction) bool {
	for _, q := range [][]*entry{b.requestQ, b.readQ, b.writeQ} {
		for _, e := range q {
			if e.tr == tr {
				return true
			}
		}
	}
	return false
}

// busProcess is the falling-edge SC_METHOD equivalent.
func (b *Bus) busProcess(cycle uint64) {
	b.cycle = cycle
	if b.power != nil {
		b.power.beginCycle()
	}
	b.addressPhase(cycle) // getSlaveState happens at each phase start
	b.readPhase(cycle)
	b.writePhase(cycle)
	if b.power != nil {
		b.power.calcEnergy()
	}
}

// getSlaveState samples the slave control interface for the request at
// the head of the request queue: "the address range of the slave, wait
// states for address, read, and write phases, and bits to indicate the
// access rights".
func (b *Bus) getSlaveState(e *entry) {
	sl, err := b.m.Check(e.tr.Kind, e.tr.Addr, e.tr.Words()*4)
	if err != nil {
		e.err = true
		e.aw = 0
		return
	}
	e.slave = sl
	cfg := sl.Config()
	e.aw = cfg.AddrWait + ecbus.ExtraWaitOf(sl, e.tr.Kind, e.tr.Addr)
	if e.tr.Kind.IsRead() {
		e.dw = cfg.ReadWait
	} else {
		e.dw = cfg.WriteWait
	}
}

// addressPhase is the serialized address FSM.
func (b *Bus) addressPhase(cycle uint64) {
	if len(b.requestQ) == 0 {
		return
	}
	e := b.requestQ[0]
	if e.tr.IssueCycle > cycle {
		return
	}
	if !b.addrStarted {
		b.addrStarted = true
		b.addrCnt = 0
		b.getSlaveState(e)
	}
	if b.power != nil {
		b.power.driveAddress(e.tr)
	}
	if b.addrCnt < e.aw {
		b.addrCnt++
		return
	}
	e.tr.AddrCycle = cycle
	b.requestQ = b.requestQ[1:]
	b.addrStarted = false
	if b.power != nil {
		b.power.addressAccepted()
	}
	switch {
	case e.err:
		b.completeError(e, cycle)
	case e.tr.Kind.IsRead():
		b.readQ = append(b.readQ, e)
	default:
		b.writeQ = append(b.writeQ, e)
	}
}

func (b *Bus) completeError(e *entry, cycle uint64) {
	e.tr.Done, e.tr.Err = true, true
	e.tr.DataCycle = cycle
	b.outstanding[e.tr.Category()]--
	b.stats.Errors++
	if b.power != nil {
		b.power.driveError(e.tr.Kind)
	}
}

// readPhase serves one read beat per cycle from the head of the read
// queue.
func (b *Bus) readPhase(cycle uint64) {
	if len(b.readQ) == 0 {
		return
	}
	e := b.readQ[0]
	if e.beatCnt < e.dw {
		e.beatCnt++
		return
	}
	i := e.beat
	addr := e.tr.Addr + uint64(4*i)
	w := e.tr.Width
	if e.tr.Burst {
		w = ecbus.W32
	}
	data, ok := e.slave.ReadWord(addr, w)
	e.tr.Data[i] = data
	b.stats.DataBeats++
	if b.power != nil {
		b.power.driveReadBeat(data, e.tr.Burst && i == e.tr.Words()-1)
	}
	e.beat++
	e.beatCnt = 0
	if !ok {
		b.finishRead(e, cycle, true)
		return
	}
	if e.beat == e.tr.Words() {
		b.finishRead(e, cycle, false)
	}
}

func (b *Bus) finishRead(e *entry, cycle uint64, err bool) {
	e.tr.Done, e.tr.Err = true, err
	e.tr.DataCycle = cycle
	b.readQ = b.readQ[1:]
	b.outstanding[e.tr.Category()]--
	if err {
		b.stats.Errors++
		if b.power != nil {
			b.power.driveError(e.tr.Kind)
		}
	} else {
		b.stats.Completed++
	}
}

// writePhase serves one write beat per cycle from the head of the write
// queue.
func (b *Bus) writePhase(cycle uint64) {
	if len(b.writeQ) == 0 {
		return
	}
	e := b.writeQ[0]
	i := e.beat
	if b.power != nil {
		// The master drives the write data bus while the beat pends.
		b.power.driveWriteData(e.tr.Data[i])
	}
	if e.beatCnt < e.dw {
		e.beatCnt++
		return
	}
	addr := e.tr.Addr + uint64(4*i)
	w := e.tr.Width
	if e.tr.Burst {
		w = ecbus.W32
	}
	ok := e.slave.WriteWord(addr, e.tr.Data[i], w)
	b.stats.DataBeats++
	if b.power != nil {
		b.power.driveWriteBeat(e.tr.Burst && i == e.tr.Words()-1)
	}
	e.beat++
	e.beatCnt = 0
	if !ok {
		b.finishWrite(e, cycle, true)
		return
	}
	if e.beat == e.tr.Words() {
		b.finishWrite(e, cycle, false)
	}
}

func (b *Bus) finishWrite(e *entry, cycle uint64, err bool) {
	e.tr.Done, e.tr.Err = true, err
	e.tr.DataCycle = cycle
	b.writeQ = b.writeQ[1:]
	b.outstanding[e.tr.Category()]--
	if err {
		b.stats.Errors++
		if b.power != nil {
			b.power.driveError(e.tr.Kind)
		}
	} else {
		b.stats.Completed++
	}
}
