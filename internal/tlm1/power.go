package tlm1

import (
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/logic"
)

// PowerModel is the paper's layer-1 energy model (§3.3, Fig. 5): a
// dedicated module that "defines for each bus interface signal a member
// variable for the new and old value. The new values for all signals are
// set by the different bus phases. The bus process calls the energy
// calculation method after the write phase. [...] Based on these new
// values and the old signal values bit transitions can be recognized and
// energy consumption estimated. This methodology is like a transaction
// level to RTL adapter."
//
// Pricing uses the per-signal average energy per transition from
// gate-level characterization (gatepower.CharTable). The model prices the
// bus interface signals only — the paper's "first model" — so
// controller-internal activity (decoder select and glitching), clock tree
// and leakage are structurally outside its scope; that gap is the main
// source of its underestimation against the gate-level reference
// (Table 2).
type PowerModel struct {
	table gatepower.CharTable

	old, new ecbus.Bundle

	lastCycle float64
	since     float64
	total     float64

	transitions uint64
}

// NewPowerModel creates a layer-1 power model priced with the given
// characterization table.
func NewPowerModel(table gatepower.CharTable) *PowerModel {
	return &PowerModel{table: table}
}

// EnergyLastCycle returns the energy in joules dissipated during the
// last clock cycle — the paper's cycle-accurate profiling method.
func (p *PowerModel) EnergyLastCycle() float64 { return p.lastCycle }

// EnergySince returns the energy in joules dissipated since the last
// EnergySince call.
func (p *PowerModel) EnergySince() float64 {
	e := p.since
	p.since = 0
	return e
}

// TotalEnergy returns the total estimated energy in joules.
func (p *PowerModel) TotalEnergy() float64 { return p.total }

// Transitions returns the total number of priced signal transitions.
func (p *PowerModel) Transitions() uint64 { return p.transitions }

// Bundle returns the reconstructed interface-signal values of the
// current cycle — the "transaction level to RTL adapter" output. The
// equivalence tests compare it wire-for-wire against the layer-0 model.
func (p *PowerModel) Bundle() ecbus.Bundle { return p.new }

// beginCycle resets the strobe signals for the new cycle; bus-value
// signals (address, data, controls) hold their previous values, exactly
// like the registered outputs of the layer-0 model.
func (p *PowerModel) beginCycle() {
	for _, s := range [...]ecbus.SignalID{
		ecbus.SigAValid, ecbus.SigARdy, ecbus.SigRdVal,
		ecbus.SigWDRdy, ecbus.SigRBErr, ecbus.SigWBErr,
	} {
		p.new.SetBool(s, false)
	}
}

// driveAddress reconstructs the address-phase signal values for the
// request at the head of the address FSM.
func (p *PowerModel) driveAddress(tr *ecbus.Transaction) {
	p.new.SetBool(ecbus.SigAValid, true)
	p.new.Set(ecbus.SigA, tr.Addr)
	p.new.SetBool(ecbus.SigInstr, tr.Kind == ecbus.Fetch)
	p.new.SetBool(ecbus.SigWrite, tr.Kind == ecbus.Write)
	p.new.SetBool(ecbus.SigBurst, tr.Burst)
	p.new.SetBool(ecbus.SigBFirst, tr.Burst)
	p.new.SetBool(ecbus.SigBLast, false)
	be := uint8(0b1111)
	if !tr.Burst {
		be, _ = ecbus.ByteEnables(tr.Addr, tr.Width)
	}
	p.new.Set(ecbus.SigBE, uint64(be))
}

// addressAccepted marks the completing cycle of an address phase.
func (p *PowerModel) addressAccepted() {
	p.new.SetBool(ecbus.SigARdy, true)
}

// driveReadBeat reconstructs a delivered read data beat.
func (p *PowerModel) driveReadBeat(data uint32, last bool) {
	p.new.Set(ecbus.SigRData, uint64(data))
	p.new.SetBool(ecbus.SigRdVal, true)
	p.new.SetBool(ecbus.SigBLast, last)
}

// driveWriteData reconstructs the master driving the write data bus
// while a write beat is pending (including its wait cycles).
func (p *PowerModel) driveWriteData(data uint32) {
	p.new.Set(ecbus.SigWData, uint64(data))
}

// driveWriteBeat marks an accepted write data beat.
func (p *PowerModel) driveWriteBeat(last bool) {
	p.new.SetBool(ecbus.SigWDRdy, true)
	p.new.SetBool(ecbus.SigBLast, last)
}

// driveError pulses the bus-error signal of the transaction's direction.
func (p *PowerModel) driveError(k ecbus.Kind) {
	if k.IsRead() {
		p.new.SetBool(ecbus.SigRBErr, true)
	} else {
		p.new.SetBool(ecbus.SigWBErr, true)
	}
}

// calcEnergy is the energy calculation the bus process invokes after the
// write phase: recognize bit transitions between the old and new signal
// values and price them with the characterized average energy per
// transition.
func (p *PowerModel) calcEnergy() {
	var e float64
	for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
		if p.old[id] == p.new[id] {
			continue
		}
		n := logic.Hamming(p.old[id], p.new[id], ecbus.Signals[id].Bits)
		e += float64(n) * p.table.PerTransitionJ[id]
		p.transitions += uint64(n)
	}
	p.old = p.new
	p.lastCycle = e
	p.since += e
	p.total += e
}
