package tlm1

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/logic"
)

// referencePath selects the straightforward full-scan energy calculation
// for power models constructed while it is set. Flipped by
// core.SetReference; golden-equivalence tests prove both paths produce
// byte-identical energies.
var referencePath atomic.Bool

// SetReferencePath switches newly constructed power models between the
// reference (full-scan) and optimized (dirty-mask) transition counters.
func SetReferencePath(on bool) { referencePath.Store(on) }

// interfaceMask precomputes the width mask of every priced interface
// signal (all signals below SigSel).
var interfaceMask = func() (m [ecbus.NumSignals]uint64) {
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		m[id] = ecbus.MaskOf(id)
	}
	return m
}()

// interfaceDirty is the dirty-mask subset covering the priced signals.
const interfaceDirty = uint32(1)<<uint(ecbus.SigSel) - 1

// PowerModel is the paper's layer-1 energy model (§3.3, Fig. 5): a
// dedicated module that "defines for each bus interface signal a member
// variable for the new and old value. The new values for all signals are
// set by the different bus phases. The bus process calls the energy
// calculation method after the write phase. [...] Based on these new
// values and the old signal values bit transitions can be recognized and
// energy consumption estimated. This methodology is like a transaction
// level to RTL adapter."
//
// Pricing uses the per-signal average energy per transition from
// gate-level characterization (gatepower.CharTable). The model prices the
// bus interface signals only — the paper's "first model" — so
// controller-internal activity (decoder select and glitching), clock tree
// and leakage are structurally outside its scope; that gap is the main
// source of its underestimation against the gate-level reference
// (Table 2).
type PowerModel struct {
	table gatepower.CharTable

	old       [ecbus.NumSignals]uint64
	new       ecbus.Bundle
	reference bool

	lastCycle float64
	since     float64
	total     float64

	transitions uint64
}

// NewPowerModel creates a layer-1 power model priced with the given
// characterization table.
func NewPowerModel(table gatepower.CharTable) *PowerModel {
	return &PowerModel{table: table, reference: referencePath.Load()}
}

// EnergyLastCycle returns the energy in joules dissipated during the
// last clock cycle — the paper's cycle-accurate profiling method.
func (p *PowerModel) EnergyLastCycle() float64 { return p.lastCycle }

// EnergySince returns the energy in joules dissipated since the last
// EnergySince call.
func (p *PowerModel) EnergySince() float64 {
	e := p.since
	p.since = 0
	return e
}

// TotalEnergy returns the total estimated energy in joules.
func (p *PowerModel) TotalEnergy() float64 { return p.total }

// Transitions returns the total number of priced signal transitions.
func (p *PowerModel) Transitions() uint64 { return p.transitions }

// Bundle returns the reconstructed interface-signal values of the
// current cycle — the "transaction level to RTL adapter" output. The
// equivalence tests compare it wire-for-wire against the layer-0 model.
func (p *PowerModel) Bundle() ecbus.Bundle { return p.new }

// beginCycle resets the strobe signals for the new cycle; bus-value
// signals (address, data, controls) hold their previous values, exactly
// like the registered outputs of the layer-0 model.
func (p *PowerModel) beginCycle() {
	for _, s := range [...]ecbus.SignalID{
		ecbus.SigAValid, ecbus.SigARdy, ecbus.SigRdVal,
		ecbus.SigWDRdy, ecbus.SigRBErr, ecbus.SigWBErr,
	} {
		p.new.SetBool(s, false)
	}
}

// driveAddress reconstructs the address-phase signal values for the
// request at the head of the address FSM.
func (p *PowerModel) driveAddress(tr *ecbus.Transaction) {
	p.new.SetBool(ecbus.SigAValid, true)
	p.new.Set(ecbus.SigA, tr.Addr)
	p.new.SetBool(ecbus.SigInstr, tr.Kind == ecbus.Fetch)
	p.new.SetBool(ecbus.SigWrite, tr.Kind == ecbus.Write)
	p.new.SetBool(ecbus.SigBurst, tr.Burst)
	p.new.SetBool(ecbus.SigBFirst, tr.Burst)
	p.new.SetBool(ecbus.SigBLast, false)
	be := uint8(0b1111)
	if !tr.Burst {
		be, _ = ecbus.ByteEnables(tr.Addr, tr.Width)
	}
	p.new.Set(ecbus.SigBE, uint64(be))
}

// addressAccepted marks the completing cycle of an address phase.
func (p *PowerModel) addressAccepted() {
	p.new.SetBool(ecbus.SigARdy, true)
}

// driveReadBeat reconstructs a delivered read data beat.
func (p *PowerModel) driveReadBeat(data uint32, last bool) {
	p.new.Set(ecbus.SigRData, uint64(data))
	p.new.SetBool(ecbus.SigRdVal, true)
	p.new.SetBool(ecbus.SigBLast, last)
}

// driveReadErrData reconstructs an error-flagged read beat: the slave
// drives the word on the read data bus but the read-valid strobe stays
// low (driveError raises the error strobe in its place).
func (p *PowerModel) driveReadErrData(data uint32) {
	p.new.Set(ecbus.SigRData, uint64(data))
}

// driveWriteData reconstructs the master driving the write data bus
// while a write beat is pending (including its wait cycles).
func (p *PowerModel) driveWriteData(data uint32) {
	p.new.Set(ecbus.SigWData, uint64(data))
}

// driveWriteBeat marks an accepted write data beat.
func (p *PowerModel) driveWriteBeat(last bool) {
	p.new.SetBool(ecbus.SigWDRdy, true)
	p.new.SetBool(ecbus.SigBLast, last)
}

// driveError pulses the bus-error signal of the transaction's direction.
func (p *PowerModel) driveError(k ecbus.Kind) {
	if k.IsRead() {
		p.new.SetBool(ecbus.SigRBErr, true)
	} else {
		p.new.SetBool(ecbus.SigWBErr, true)
	}
}

// strobesHigh reports whether any strobe signal is still high and must
// fall next cycle — the bus may not declare quiescence while a pending
// falling transition carries energy.
func (p *PowerModel) strobesHigh() bool {
	return p.new.Bool(ecbus.SigARdy) || p.new.Bool(ecbus.SigRdVal) ||
		p.new.Bool(ecbus.SigWDRdy) || p.new.Bool(ecbus.SigRBErr) ||
		p.new.Bool(ecbus.SigWBErr)
}

// skipCycles accounts for fast-forwarded idle cycles: no signal changes,
// so each skipped cycle dissipates zero energy — exactly what calcEnergy
// computes for an unchanged bundle.
func (p *PowerModel) skipCycles() {
	p.lastCycle = 0
}

// calcEnergy is the energy calculation the bus process invokes after the
// write phase: recognize bit transitions between the old and new signal
// values and price them with the characterized average energy per
// transition. The default path iterates only signals marked dirty by
// this cycle's phase drivers; the reference path scans all of them.
func (p *PowerModel) calcEnergy() {
	var e float64
	if p.reference {
		for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
			if p.old[id] == p.new.Get(id) {
				continue
			}
			n := logic.Hamming(p.old[id], p.new.Get(id), ecbus.Signals[id].Bits)
			e += float64(n) * p.table.PerTransitionJ[id]
			p.transitions += uint64(n)
		}
		p.old = p.new.Snapshot()
	} else {
		for m := p.new.TakeDirty() & interfaceDirty; m != 0; m &= m - 1 {
			id := ecbus.SignalID(bits.TrailingZeros32(m))
			new := p.new.Get(id)
			if p.old[id] == new {
				continue
			}
			n := logic.HammingMasked(p.old[id], new, interfaceMask[id])
			e += float64(n) * p.table.PerTransitionJ[id]
			p.transitions += uint64(n)
			p.old[id] = new
		}
	}
	p.lastCycle = e
	p.since += e
	p.total += e
}
